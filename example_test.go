package pathoram_test

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	pathoram "repro"
)

// A minimal oblivious block store: every Read/Write is one random-looking
// path access.
func ExampleNew() {
	oram, err := pathoram.New(pathoram.Config{
		Blocks:    1024,
		BlockSize: 64,
		Rand:      rand.New(rand.NewSource(1)), // deterministic for the example only
	})
	if err != nil {
		log.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x42}, 64)
	if err := oram.Write(17, data); err != nil {
		log.Fatal(err)
	}
	got, err := oram.Read(17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bytes.Equal(got, data))
	// Output: true
}

// The exclusive interface of Section 3.3.1: Load removes a block from the
// ORAM (plus its super-block siblings); Store returns it for free.
func ExampleORAM_Load() {
	oram, err := pathoram.New(pathoram.Config{
		Blocks:         256,
		BlockSize:      16,
		SuperBlockSize: 2,
		Encryption:     pathoram.EncryptNone, // simulation mode
		Rand:           rand.New(rand.NewSource(2)),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := oram.Write(8, bytes.Repeat([]byte{1}, 16)); err != nil {
		log.Fatal(err)
	}
	if err := oram.Write(9, bytes.Repeat([]byte{2}, 16)); err != nil {
		log.Fatal(err)
	}
	data, found, group, err := oram.Load(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(found, data[0], len(group), group[0].Addr)
	// Returning the lines costs no path access.
	if err := oram.Store(8, data); err != nil {
		log.Fatal(err)
	}
	if err := oram.Store(9, group[0].Data); err != nil {
		log.Fatal(err)
	}
	// Output: true 1 1 9
}

// A sharded ORAM partitions the address space over independent Path ORAM
// shards, each behind its own worker goroutine — all methods are safe for
// concurrent use, and batches fan out across shards in parallel.
func ExampleNewSharded() {
	store, err := pathoram.NewSharded(pathoram.ShardedConfig{
		Shards: 4,
		Config: pathoram.Config{
			Blocks:    4096,
			BlockSize: 64,
			Rand:      rand.New(rand.NewSource(4)), // deterministic for the example only
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Distinct residues mod 4, so the batch lands one write on each shard.
	addrs := []uint64{3, 1000, 2049, 4094}
	data := make([][]byte, len(addrs))
	for i, a := range addrs {
		data[i] = bytes.Repeat([]byte{byte(a)}, 64)
	}
	// One batched submission: the four writes run on four shards in parallel.
	if err := store.WriteBatch(addrs, data); err != nil {
		log.Fatal(err)
	}
	got, err := store.ReadBatch(addrs)
	if err != nil {
		log.Fatal(err)
	}
	for i := range addrs {
		if !bytes.Equal(got[i], data[i]) {
			log.Fatalf("mismatch at %d", addrs[i])
		}
	}
	fmt.Println(store.NumShards(), store.Stats().RealAccesses)
	// Output: 4 8
}

// Open composes the design space from one declarative Spec: the same
// client code runs flat, sharded, recursive or timed constructions by
// changing config fields. Here four shards each keep their position map
// in a recursive ORAM chain instead of on-chip memory.
func ExampleOpen() {
	store, err := pathoram.Open(pathoram.Spec{
		Blocks:          1 << 12,
		BlockSize:       32,
		Shards:          4,                        // concurrency axis
		PosMap:          pathoram.PosMapRecursive, // recursion axis
		Backend:         pathoram.BackendMem,      // timing axis (BackendDRAM = modeled cycles)
		PosBlockSize:    16,
		OnChipPosMapMax: 256, // per shard — forces a real chain at this size
		Encryption:      pathoram.EncryptNone,
		Rand:            rand.New(rand.NewSource(5)), // deterministic for the example only
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	if err := store.Write(1234, bytes.Repeat([]byte{9}, 32)); err != nil {
		log.Fatal(err)
	}
	got, err := store.Read(1234)
	if err != nil {
		log.Fatal(err)
	}
	sharded := store.(*pathoram.Sharded)
	fmt.Println(got[0], sharded.NumShards(), sharded.NumORAMs() > 1)
	// Output: 9 4 true
}

// A hierarchical ORAM keeps the position map oblivious too: H ORAMs are
// accessed per request, smallest first (Section 2.3).
func ExampleNewHierarchy() {
	mem, err := pathoram.NewHierarchy(pathoram.HierarchyConfig{
		Blocks:          1 << 12,
		BlockSize:       32,
		PosBlockSize:    16,
		OnChipPosMapMax: 512,
		Rand:            rand.New(rand.NewSource(3)),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mem.Update(100, func(d []byte) { d[0] = 7 }); err != nil {
		log.Fatal(err)
	}
	got, err := mem.Read(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mem.NumORAMs() > 1, got[0])
	// Output: true 7
}
