package pathoram

import (
	"bytes"
	"math/rand"
	"testing"
)

// Tests for the Hierarchy side of the unified Client API: the
// observability surface (aggregate stats, stash size), padding, the
// staged access path through the chain, and the per-level timed backend.
// Named TestHierarchy* for the CI `-run 'Client|Hierarchy'` shard.

func testHierarchy(t *testing.T, mutate func(*HierarchyConfig)) *Hierarchy {
	t.Helper()
	cfg := HierarchyConfig{
		Blocks: 2048, BlockSize: 16,
		PosBlockSize: 16, OnChipPosMapMax: 256,
		Encryption: EncryptNone,
		Rand:       rand.New(rand.NewSource(21)),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestHierarchyAggregateStats pins the new observability surface:
// Stats() is the core.Stats.Merge of LevelStats (counters sum, peaks take
// the worst level), ResetStats clears every level, and StashSize sums the
// chain's stashes.
func TestHierarchyAggregateStats(t *testing.T) {
	h := testHierarchy(t, nil)
	if h.NumORAMs() < 2 {
		t.Fatalf("want a real chain, got %d ORAMs", h.NumORAMs())
	}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 300; i++ {
		if err := h.Write(rng.Uint64()%2048, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	var want Stats
	for _, s := range h.LevelStats() {
		want = want.Merge(s)
	}
	if got := h.Stats(); got != want {
		t.Errorf("Stats() = %+v, merged LevelStats = %+v", got, want)
	}
	// One program access = one real access per level.
	if got := h.Stats().RealAccesses; got != uint64(300*h.NumORAMs()) {
		t.Errorf("merged RealAccesses = %d, want %d", got, 300*h.NumORAMs())
	}
	var stash int
	for i := 0; i < h.NumORAMs(); i++ {
		stash += h.inner.Level(i).StashSize()
	}
	if got := h.StashSize(); got != stash {
		t.Errorf("StashSize() = %d, summed levels = %d", got, stash)
	}
	blocksBefore := h.Stats().BlocksInORAM
	h.ResetStats()
	after := h.Stats()
	if after.RealAccesses != 0 || after.DummyAccesses != 0 || after.StashPeak != 0 {
		t.Errorf("ResetStats left counters: %+v", after)
	}
	if after.BlocksInORAM != blocksBefore {
		t.Errorf("ResetStats clobbered the occupancy gauge: %d -> %d", blocksBefore, after.BlocksInORAM)
	}
	if h.DummyRounds() != 0 {
		t.Error("ResetStats left dummy rounds")
	}
}

// TestHierarchyPaddingTouchesEveryLevel pins the engine-conformance
// property the padded batch mode needs: one PaddingAccess walks the whole
// chain — exactly one padding access per level, in the same smallest-first
// order as a real access — so on the wire it is indistinguishable from
// real traffic.
func TestHierarchyPaddingTouchesEveryLevel(t *testing.T) {
	var order []int
	h := testHierarchy(t, func(cfg *HierarchyConfig) {
		cfg.OnPathAccess = func(level int, _ uint64) { order = append(order, level) }
	})
	hn := h.NumORAMs()
	order = order[:0]
	if err := h.PaddingAccess(); err != nil {
		t.Fatal(err)
	}
	if len(order) != hn {
		t.Fatalf("padding touched %d ORAMs, want %d", len(order), hn)
	}
	for i, lvl := range order {
		if want := hn - 1 - i; lvl != want {
			t.Errorf("padding access %d hit level %d, want %d (smallest first)", i, lvl, want)
		}
	}
	for lvl, s := range h.LevelStats() {
		if s.PaddingAccesses != 1 {
			t.Errorf("level %d counted %d padding accesses, want 1", lvl, s.PaddingAccesses)
		}
		if s.RealAccesses != 0 {
			t.Errorf("level %d counted padding as real", lvl)
		}
	}
	if got := h.Stats().PaddingAccesses; got != uint64(hn) {
		t.Errorf("merged PaddingAccesses = %d, want %d", got, hn)
	}
}

// TestHierarchyAsyncBitIdenticalToSync is the staged-chain acceptance
// test: the same seeded workload through a synchronous and an
// async-eviction hierarchy must touch identical per-level leaf sequences
// and — after the async chain flushes — leave every level's tree
// byte-identical. Write-back deferral through the whole chain changes
// when I/O happens, never what state results.
func TestHierarchyAsyncBitIdenticalToSync(t *testing.T) {
	type access struct {
		level int
		leaf  uint64
	}
	run := func(async bool) (*Hierarchy, *[]access) {
		log := &[]access{}
		h := testHierarchy(t, func(cfg *HierarchyConfig) {
			cfg.AsyncEviction = async
			cfg.MaxDeferredWriteBacks = 3 // small: exercise the cap drain
			cfg.Rand = rand.New(rand.NewSource(33))
			cfg.OnPathAccess = func(level int, leaf uint64) {
				*log = append(*log, access{level, leaf})
			}
		})
		rng := rand.New(rand.NewSource(34))
		for i := 0; i < 600; i++ {
			addr := rng.Uint64() % 2048
			if rng.Intn(2) == 0 {
				d := make([]byte, 16)
				rng.Read(d)
				if err := h.Write(addr, d); err != nil {
					t.Fatal(err)
				}
			} else if _, err := h.Read(addr); err != nil {
				t.Fatal(err)
			}
		}
		return h, log
	}
	syncH, syncLog := run(false)
	asyncH, asyncLog := run(true)
	if asyncH.PendingWriteBacks() == 0 {
		t.Error("async chain deferred nothing; the test exercised no staged path")
	}
	// Drain partly through the background pump, the rest through Flush.
	for i := 0; i < 5; i++ {
		if _, err := asyncH.StepBackground(false); err != nil {
			t.Fatal(err)
		}
	}
	if err := asyncH.Flush(); err != nil {
		t.Fatal(err)
	}
	if asyncH.PendingWriteBacks() != 0 {
		t.Fatalf("pending write-backs after Flush: %d", asyncH.PendingWriteBacks())
	}
	if len(*syncLog) != len(*asyncLog) {
		t.Fatalf("access counts diverge: sync %d, async %d", len(*syncLog), len(*asyncLog))
	}
	for i := range *syncLog {
		if (*syncLog)[i] != (*asyncLog)[i] {
			t.Fatalf("access sequences diverge at %d: sync %+v async %+v", i, (*syncLog)[i], (*asyncLog)[i])
		}
	}
	for lvl := 0; lvl < syncH.NumORAMs(); lvl++ {
		st := treeSnapshot(memTreeOf(t, syncH.inner.Level(lvl).BucketStore()))
		at := treeSnapshot(memTreeOf(t, asyncH.inner.Level(lvl).BucketStore()))
		if len(st) != len(at) {
			t.Fatalf("level %d: block counts diverge (sync %d, async %d)", lvl, len(st), len(at))
		}
		for j := range st {
			if st[j] != at[j] {
				t.Fatalf("level %d: trees diverge at block %d: sync %q async %q", lvl, j, st[j], at[j])
			}
		}
	}
}

// TestHierarchyTimedBackend covers the standalone timed hierarchy: one
// port per level on one bus, chain-serialized modeled time, and charges
// that account for every level's traffic.
func TestHierarchyTimedBackend(t *testing.T) {
	h := testHierarchy(t, func(cfg *HierarchyConfig) {
		cfg.Backend = BackendDRAM
		cfg.DRAMChannels = 2
	})
	if len(h.ports) != h.NumORAMs() {
		t.Fatalf("%d ports for %d levels", len(h.ports), h.NumORAMs())
	}
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 200; i++ {
		if err := h.Write(rng.Uint64()%2048, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	ts, ok := h.TimingStats()
	if !ok {
		t.Fatal("timed hierarchy reported no timing stats")
	}
	st := h.Stats()
	wantReads := st.RealAccesses + st.DummyAccesses + st.PaddingAccesses
	if ts.PathReads != wantReads {
		t.Errorf("PathReads=%d, per-level protocol accesses=%d", ts.PathReads, wantReads)
	}
	if ts.PathWrites != wantReads {
		t.Errorf("PathWrites=%d, want %d (sync mode writes back every path)", ts.PathWrites, wantReads)
	}
	if ts.DRAM.Reads == 0 || ts.Cycles == 0 {
		t.Fatalf("timing stats flat: %+v", ts)
	}
	// Chain serialization: every level's port clock is bounded by the
	// shared frontier, and the per-level regions are disjoint (attach
	// order fixed), so the merged DRAM view reproduces the bus totals.
	var merged TimingStats
	for _, p := range h.ports {
		merged = merged.Merge(p.Stats())
	}
	if merged.DRAM != ts.DRAM {
		t.Errorf("merged port DRAM stats %+v != TimingStats %+v", merged.DRAM, ts.DRAM)
	}
	// Untimed hierarchies report none.
	h2 := testHierarchy(t, nil)
	if _, ok := h2.TimingStats(); ok {
		t.Error("mem-backend hierarchy claimed timing stats")
	}
}

// TestHierarchyReadYourWritesEncrypted smoke-checks the chain with real
// encryption and integrity on every level under the unified constructor
// defaults (counter scheme, derived per-level keys).
func TestHierarchyReadYourWritesEncrypted(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		Blocks: 512, BlockSize: 16,
		PosBlockSize: 16, OnChipPosMapMax: 128,
		Encryption: EncryptCounter, Integrity: true,
		Key:  bytes.Repeat([]byte{7}, 16),
		Rand: rand.New(rand.NewSource(55)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.ExternalMemoryBytes() == 0 {
		t.Error("encrypted chain reported no external footprint")
	}
	shadow := map[uint64]byte{}
	rng := rand.New(rand.NewSource(56))
	for i := 0; i < 400; i++ {
		addr := rng.Uint64() % 512
		if rng.Intn(2) == 0 {
			b := byte(rng.Intn(256))
			if err := h.Write(addr, bytes.Repeat([]byte{b}, 16)); err != nil {
				t.Fatal(err)
			}
			shadow[addr] = b
		} else {
			got, err := h.Read(addr)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != shadow[addr] {
				t.Fatalf("step %d addr %d: got %d want %d", i, addr, got[0], shadow[addr])
			}
		}
	}
}
