// Integrity: demonstrates the Section 5 authentication tree detecting
// tampered and replayed external memory. The external memory starts as
// random garbage ("uninitialized DRAM") — the child-valid bits make that
// safe without any initialization pass.
//
// This example reaches below the public API to the internal store so it
// can corrupt "external memory" the way a physical attacker would.
//
// Run with: go run ./examples/integrity
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/encrypt"
	"repro/internal/integrity"
)

func main() {
	key := make([]byte, encrypt.KeySize)
	scheme, err := encrypt.NewCounterScheme(key, (1<<7)-1) // L=6 tree
	if err != nil {
		log.Fatal(err)
	}
	auth := encrypt.NewAuthTree(6, 4, 64, scheme)
	store, err := encrypt.NewStore(encrypt.StoreConfig{
		LeafLevel: 6, Z: 4, BlockBytes: 64,
		Scheme:          scheme,
		Auth:            auth,
		RandomizeMemory: rand.New(rand.NewSource(1)), // uninitialized DRAM
	})
	if err != nil {
		log.Fatal(err)
	}
	src := core.NewMathLeafSource(rand.New(rand.NewSource(2)))
	pos, err := core.NewOnChipPositionMap(256, 64, src)
	if err != nil {
		log.Fatal(err)
	}
	oram, err := core.New(core.Params{
		LeafLevel: 6, Z: 4, BlockBytes: 64, Blocks: 256,
		StashCapacity: 128, BackgroundEviction: true,
	}, store, pos, src)
	if err != nil {
		log.Fatal(err)
	}

	// Normal operation over garbage-initialized memory.
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	for a := uint64(0); a < 64; a++ {
		if _, err := oram.Access(a, core.OpWrite, payload); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("64 blocks written over uninitialized memory; all paths verified")

	// Attack 1: flip one bit of the root bucket's ciphertext.
	snapshot := store.SnapshotBucket(0)
	store.TamperBucket(0, 0x80)
	_, err = oram.Access(0, core.OpRead, nil)
	fmt.Printf("bit-flip attack detected: %v\n", errors.Is(err, integrity.ErrVerify))
	store.RestoreBucket(0, snapshot) // attacker undoes the damage...
	if _, err := oram.Access(0, core.OpRead, nil); err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	fmt.Println("...and the restored memory verifies again")

	// Attack 2: replay — record a valid bucket now, play it back later.
	stale := store.SnapshotBucket(0)
	for a := uint64(0); a < 32; a++ {
		if _, err := oram.Access(a, core.OpWrite, payload); err != nil {
			log.Fatal(err)
		}
	}
	store.RestoreBucket(0, stale) // perfectly valid ciphertext, just old
	_, err = oram.Access(5, core.OpRead, nil)
	fmt.Printf("replay attack detected:   %v\n", errors.Is(err, integrity.ErrVerify))

	reads, writes, verifications := auth.Stats()
	fmt.Printf("auth-tree traffic: %.1f sibling-hash reads and %.1f hash writes per access (%d verifications)\n",
		float64(reads)/float64(verifications), float64(writes)/float64(verifications), verifications)
}
