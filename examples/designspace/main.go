// Designspace: uses the paper's methodology (Section 4.1) to choose a Path
// ORAM configuration for a deployment: sweep Z and utilization with
// background eviction enabled, evaluate Equation 1 with the measured
// dummy-access rates, and print the trade-off.
//
// Run with: go run ./examples/designspace [-blocks N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	blocks := flag.Uint64("blocks", 1<<14, "working-set size in 128-byte blocks")
	flag.Parse()

	cfg := exp.DefaultFig8()
	cfg.WorkingSetBlocks = *blocks
	cfg.Utilizations = []float64{0.25, 0.50, 0.67, 0.80}
	cfg.Zs = []int{1, 2, 3, 4}
	res, err := exp.RunFig8(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table())

	best := res.Best()
	if best == nil {
		log.Fatal("no feasible configuration")
	}
	fmt.Printf("recommended: Z=%d at %.0f%% utilization (L=%d)\n",
		best.Z, 100*best.Utilization, best.LeafLevel)
	fmt.Printf("  access overhead %.0fx, dummy rate %.3f per real access\n",
		best.Overhead, best.DummyRate)
	fmt.Println("\n(the paper's large-ORAM result is Z=3 at ~50%; small ORAMs" +
		" favor Z=2 — Figure 9 — which this sweep reproduces at small -blocks)")
}
