// Quickstart: a single encrypted Path ORAM as an oblivious block store.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	pathoram "repro"
)

func main() {
	// 4096 blocks of 128 bytes, Z=3 at 50% utilization (the paper's
	// recommended large-ORAM configuration), counter-based randomized
	// encryption, integrity verification on.
	oram, err := pathoram.New(pathoram.Config{
		Blocks:    4096,
		BlockSize: 128,
		Z:         3,
		Integrity: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree: %d levels, %.1f MB external memory\n",
		oram.LeafLevel()+1, float64(oram.ExternalMemoryBytes())/(1<<20))

	// Write and read back a block. Every operation is one oblivious path
	// access: the memory trace is a uniformly random path regardless of
	// which address is touched.
	secret := bytes.Repeat([]byte("secret!!"), 16)
	if err := oram.Write(1234, secret); err != nil {
		log.Fatal(err)
	}
	got, err := oram.Read(1234)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d bytes, match=%v\n", len(got), bytes.Equal(got, secret))

	// Read-modify-write in a single access.
	if err := oram.Update(1234, func(d []byte) { d[0] = 'S' }); err != nil {
		log.Fatal(err)
	}
	got, _ = oram.Read(1234)
	fmt.Printf("after update: %q...\n", got[:8])

	// Hammer one address and scan many: indistinguishable traces, and the
	// background eviction keeps the stash bounded either way.
	for i := 0; i < 500; i++ {
		if err := oram.Write(7, secret); err != nil {
			log.Fatal(err)
		}
	}
	for i := uint64(0); i < 500; i++ {
		if _, err := oram.Read(i % 4096); err != nil {
			log.Fatal(err)
		}
	}
	s := oram.Stats()
	fmt.Printf("accesses: %d real + %d background dummies, stash peak %d blocks\n",
		s.RealAccesses, s.DummyAccesses, s.StashPeak)
}
