// Sharded serving: partition the address space over independent Path ORAM
// shards, each owned by a worker goroutine, and serve concurrent traffic
// through the batched request scheduler.
//
// Run with: go run ./examples/sharded
package main

import (
	"bytes"
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	pathoram "repro"
)

func main() {
	// 16384 blocks of 64 bytes striped over 4 shards. Each shard is a
	// full Path ORAM (counter-encrypted here) with its own derived key,
	// its own tree and stash, and its own worker goroutine; the scheduler
	// in front makes the whole thing safe for any number of callers.
	store, err := pathoram.NewSharded(pathoram.ShardedConfig{
		Shards: 4,
		Config: pathoram.Config{
			Blocks:    16384,
			BlockSize: 64,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharded ORAM: %d shards over %d blocks, %.1f MB external memory\n",
		store.NumShards(), store.Blocks(),
		float64(store.ExternalMemoryBytes())/(1<<20))

	// Single operations work exactly like on a plain ORAM.
	secret := bytes.Repeat([]byte{0xAA}, 64)
	if err := store.Write(12345, secret); err != nil {
		log.Fatal(err)
	}
	got, err := store.Read(12345)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single op: read back match=%v\n", bytes.Equal(got, secret))

	// Batched submission fans out across the shards and joins, returning
	// results in input order — one caller still gets 4-way parallelism.
	addrs := make([]uint64, 256)
	data := make([][]byte, 256)
	for i := range addrs {
		addrs[i] = uint64(i * 57)
		data[i] = bytes.Repeat([]byte{byte(i)}, 64)
	}
	if err := store.WriteBatch(addrs, data); err != nil {
		log.Fatal(err)
	}
	back, err := store.ReadBatch(addrs)
	if err != nil {
		log.Fatal(err)
	}
	ok := true
	for i := range back {
		ok = ok && bytes.Equal(back[i], data[i])
	}
	fmt.Printf("batch of %d: results in order, match=%v\n", len(addrs), ok)

	// Concurrent clients: every method is goroutine-safe; requests queue
	// per shard and execute serially inside each shard, in parallel
	// across shards.
	const clients = 8
	const opsPerClient = 2000
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				addr := uint64((c*opsPerClient + i) % 16384)
				if _, err := store.Read(addr); err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	fmt.Printf("%d clients x %d reads on GOMAXPROCS=%d: %.0f ops/s\n",
		clients, opsPerClient, runtime.GOMAXPROCS(0),
		float64(clients*opsPerClient)/wall.Seconds())

	// Stats aggregate across shards (Merge semantics); the scheduler
	// keeps its own counters, including per-shard load.
	st := store.Stats()
	sched := store.SchedulerStats()
	fmt.Printf("aggregate: %d real accesses, %.3f dummy/real, stash peak %d\n",
		st.RealAccesses, st.DummyPerReal(), st.StashPeak)
	fmt.Printf("scheduler: %d single ops, %d batches, per-shard load %v\n",
		sched.SingleOps, sched.Batches, sched.ExecutedPerShard)

	// Close drains in-flight requests before stopping the workers.
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("closed cleanly")

	// Oblivious routing: with the fixed partitions above, WHICH shard
	// serves a request is a public function of the address. When the
	// routing itself must be hidden, PartitionRandom remaps every block
	// to a fresh uniform shard on each access, and Padded makes every
	// batch touch every shard equally often (dummy-filled). SECURITY.md
	// has the full argument; the cost shows up as pad/real overhead and
	// a two-leg (fetch + relocate) access path.
	hidden, err := pathoram.NewSharded(pathoram.ShardedConfig{
		Shards:    4,
		Partition: pathoram.PartitionRandom,
		Padded:    true,
		Config: pathoram.Config{
			Blocks:    4096,
			BlockSize: 64,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer hidden.Close()
	hAddrs := make([]uint64, 64)
	hData := make([][]byte, 64)
	for i := range hAddrs {
		hAddrs[i] = uint64(i * 13 % 4096)
		hData[i] = bytes.Repeat([]byte{byte(i)}, 64)
	}
	if err := hidden.WriteBatch(hAddrs, hData); err != nil {
		log.Fatal(err)
	}
	if _, err := hidden.ReadBatch(hAddrs); err != nil {
		log.Fatal(err)
	}
	hst := hidden.Stats()
	hsched := hidden.SchedulerStats()
	// On-the-wire traffic is real requests plus scheduler padding;
	// ExecutedPerShard alone shows only the (secret-coin-routed) real legs.
	wire := make([]uint64, len(hsched.ExecutedPerShard))
	for i := range wire {
		wire[i] = hsched.ExecutedPerShard[i] + hsched.PaddingPerShard[i]
	}
	fmt.Printf("oblivious routing: per-shard wire traffic %v (flat by construction), %.2f padding/real\n",
		wire, hst.PaddingPerReal())
}
