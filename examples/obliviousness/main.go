// Obliviousness: reproduces the paper's Section 6.2 argument against
// HIDE-style chunk shuffling. Two programs differ in one secret bit that
// only affects *which chunk* they touch. Under HIDE the adversary recovers
// the bit from the address bus with ~100% accuracy despite the intra-chunk
// shuffling; under Path ORAM the same distinguisher collapses to a coin
// flip.
//
// Run with: go run ./examples/obliviousness
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/hide"
)

const trials = 400

func main() {
	// Attack HIDE (64-block chunks, as in the original 8 KB/128 B setup).
	res, err := hide.RunHIDELeakage(64, trials, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HIDE (chunk shuffling):  adversary recovers the secret bit with %.1f%% accuracy\n",
		100*res.Accuracy())

	// The same distinguisher against Path ORAM path observations.
	rng := rand.New(rand.NewSource(2))
	correct := 0
	for t := 0; t < trials; t++ {
		secret := rng.Intn(2)
		var observed []uint64
		p := core.Params{
			LeafLevel: 7, Z: 4, Blocks: 256,
			StashCapacity: 120, BackgroundEviction: true,
			OnPathAccess: func(leaf uint64, _ core.AccessKind) {
				observed = append(observed, leaf)
			},
		}
		store, err := core.NewMemStore(p.LeafLevel, p.Z, 0)
		if err != nil {
			log.Fatal(err)
		}
		src := core.NewMathLeafSource(rand.New(rand.NewSource(int64(1000 + t))))
		pos, err := core.NewOnChipPositionMap(p.Groups(), 128, src)
		if err != nil {
			log.Fatal(err)
		}
		oram, err := core.New(p, store, pos, src)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			logical := rng.Uint64() % 64
			if i%2 == 1 {
				logical = uint64(1+secret)*64 + rng.Uint64()%64
			}
			if _, err := oram.Access(logical, core.OpWrite, nil); err != nil {
				log.Fatal(err)
			}
		}
		c1, c2 := 0, 0
		for _, leaf := range observed {
			switch leaf / 32 {
			case 1:
				c1++
			case 2:
				c2++
			}
		}
		guess := 0
		if c2 > c1 {
			guess = 1
		}
		if guess == secret {
			correct++
		}
	}
	fmt.Printf("Path ORAM:               the same adversary guesses with %.1f%% accuracy (coin flip)\n",
		100*float64(correct)/trials)
	fmt.Println("\nHIDE hides intra-chunk patterns cheaply, but the chunk index itself leaks;")
	fmt.Println("cryptographic obliviousness needs the full ORAM (paper, Section 6.2).")
}
