// Unified client API: the same workload against three Spec literals —
// flat sharded, sharded with recursive position maps, and sharded +
// recursive + timed DRAM backend. The point of Open is that these are one
// config field apart, not three codebases apart: every client below is
// driven through the identical pathoram.Client interface.
//
// Run with: go run ./examples/recursive-sharded
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	pathoram "repro"
)

// workload drives any Client: batched fill, mixed single ops, readback.
func workload(c pathoram.Client, blocks uint64, blockSize int) (time.Duration, error) {
	start := time.Now()
	const span = 2048
	addrs := make([]uint64, span)
	data := make([][]byte, span)
	for i := range addrs {
		addrs[i] = uint64(i)
		data[i] = bytes.Repeat([]byte{byte(i)}, blockSize)
	}
	if err := c.WriteBatch(addrs, data); err != nil {
		return 0, err
	}
	for i := 0; i < 1024; i++ {
		a := uint64(i*37) % span
		got, err := c.Read(a)
		if err != nil {
			return 0, err
		}
		if got[0] != byte(a) {
			return 0, fmt.Errorf("addr %d: got %x", a, got[0])
		}
	}
	if err := c.Flush(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func main() {
	const blocks = 1 << 13
	const blockSize = 32

	base := pathoram.Spec{
		Blocks:     blocks,
		BlockSize:  blockSize,
		Shards:     4,
		Encryption: pathoram.EncryptCounter,
	}

	// Axis 2: recursion. The position map moves off-chip into a per-shard
	// ORAM chain; on-chip state drops from 4 B/block to a bounded map.
	recursive := base
	recursive.PosMap = pathoram.PosMapRecursive
	recursive.PosBlockSize = 32
	recursive.OnChipPosMapMax = 1 << 10 // per shard

	// Axis 3: timing. Same construction, every bucket of every level now
	// charged to one shared cycle-accurate DDR3 model.
	timed := recursive
	timed.Backend = pathoram.BackendDRAM
	timed.DRAMChannels = 2

	for _, cfg := range []struct {
		name string
		spec pathoram.Spec
	}{
		{"flat sharded              ", base},
		{"sharded + recursive posmap", recursive},
		{"sharded + recursive + dram", timed},
	} {
		c, err := pathoram.Open(cfg.spec)
		if err != nil {
			log.Fatalf("%s: %v", cfg.name, err)
		}
		wall, err := workload(c, blocks, blockSize)
		if err != nil {
			log.Fatalf("%s: %v", cfg.name, err)
		}
		s := c.(*pathoram.Sharded)
		st := c.Stats()
		line := fmt.Sprintf("%s  levels=%d  onchip-posmap=%6dB  accesses=%6d  wall=%v",
			cfg.name, s.NumORAMs(), s.OnChipPositionMapBytes(), st.RealAccesses, wall.Round(time.Millisecond))
		if ts, ok := c.TimingStats(); ok {
			line += fmt.Sprintf("  modeled=%5.1fMcyc  row-hit=%.3f", float64(ts.Cycles)/1e6, ts.RowHitRate())
		}
		fmt.Println(line)
		if err := c.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nsame Client interface, same workload — the Spec literal is the whole difference")
}
