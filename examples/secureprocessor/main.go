// Secure processor: a hierarchical Path ORAM (recursive position maps,
// Section 2.3 of the paper) used exactly as a secure processor's memory
// controller would — through the exclusive Load/Store interface of Section
// 3.3.1, with super blocks prefetching spatially adjacent cache lines
// (Section 3.2).
//
// A toy "last-level cache" holds checked-out lines; on eviction, lines
// return to the ORAM stash without any path access.
//
// Run with: go run ./examples/secureprocessor
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	pathoram "repro"
)

const (
	lines     = 1 << 13 // 8192 cache lines of 128B = 1 MB of protected memory
	lineBytes = 128
	cacheCap  = 256 // toy LLC capacity in lines
)

// llc is a trivial FIFO "cache" of checked-out lines.
type llc struct {
	data  map[uint64][]byte
	order []uint64
}

func main() {
	mem, err := pathoram.NewHierarchy(pathoram.HierarchyConfig{
		Blocks:          lines,
		BlockSize:       lineBytes,
		DataZ:           4, // DZ4Pb32+SB: the paper's best Figure 12 configuration
		PosZ:            3,
		PosBlockSize:    32,
		SuperBlockSize:  2,
		OnChipPosMapMax: 2 << 10,
		Encryption:      pathoram.EncryptCounter,
		Integrity:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchy: %d ORAMs, on-chip position map %d bytes\n",
		mem.NumORAMs(), mem.OnChipPositionMapBytes())
	for i, l := range mem.Layout() {
		fmt.Printf("  ORAM%d: L=%d Z=%d block=%dB holding %d blocks\n",
			i+1, l.LeafLevel, l.Z, l.BlockBytes, l.Blocks)
	}

	cache := &llc{data: map[uint64][]byte{}}

	// The "program": pointer-chase a linked list that we first build in
	// oblivious memory. Every line holds the index of the next line.
	load := func(addr uint64) []byte {
		if d, ok := cache.data[addr]; ok {
			return d
		}
		d, _, group, err := mem.Load(addr)
		if err != nil {
			log.Fatal(err)
		}
		cache.insert(addr, d, mem)
		for _, g := range group { // super-block prefetch
			cache.insert(g.Addr, g.Data, mem)
		}
		return d
	}

	// Build: line i points to (i*2654435761 + 1) mod lines (a scrambled
	// walk), written through the inclusive interface.
	for i := uint64(0); i < lines; i++ {
		buf := make([]byte, lineBytes)
		binary.LittleEndian.PutUint64(buf, (i*2654435761+1)%lines)
		if err := mem.Write(i, buf); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("linked list written through the ORAM")

	// Chase 4000 pointers through the exclusive interface.
	ptr := uint64(0)
	for i := 0; i < 4000; i++ {
		ptr = binary.LittleEndian.Uint64(load(ptr))
	}
	fmt.Printf("walk finished at line %d; cache holds %d lines\n", ptr, len(cache.data))

	for lvl, s := range mem.LevelStats() {
		fmt.Printf("  ORAM%d: %d real accesses, %d dummies, stash peak %d\n",
			lvl+1, s.RealAccesses, s.DummyAccesses, s.StashPeak)
	}
	fmt.Printf("background-eviction rounds: %d (%.3f per access)\n",
		mem.DummyRounds(), mem.DummyPerReal())
}

func (c *llc) insert(addr uint64, d []byte, mem *pathoram.Hierarchy) {
	if _, ok := c.data[addr]; ok {
		return
	}
	c.data[addr] = d
	c.order = append(c.order, addr)
	// Evict FIFO: the line goes back into the ORAM stash — no path access
	// (Section 3.3.1).
	for len(c.order) > cacheCap {
		victim := c.order[0]
		c.order = c.order[1:]
		if d, ok := c.data[victim]; ok {
			delete(c.data, victim)
			if err := mem.Store(victim, d); err != nil {
				log.Fatal(err)
			}
		}
	}
}
