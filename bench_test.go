package pathoram

// One benchmark per table and figure of the paper's evaluation, plus
// primitive-operation benchmarks for the library itself. The figure
// benchmarks run the (scaled) experiment and attach its headline numbers
// as custom benchmark metrics, so `go test -bench=. -benchmem` both
// exercises the code paths and reports the reproduced quantities.
// cmd/oram-experiments prints the full paper-style tables.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/membus"
	"repro/internal/trace"

	cpusim "repro/internal/cpu"
)

// ---------- primitive benchmarks ----------

func benchORAM(b *testing.B, cfg Config) {
	b.Helper()
	cfg.Rand = rand.New(rand.NewSource(1))
	o, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := o.Close(); err != nil {
			b.Error(err)
		}
	})
	buf := make([]byte, cfg.BlockSize)
	rng := rand.New(rand.NewSource(2))
	// Pre-fill so benches measure steady state.
	for a := uint64(0); a < cfg.Blocks; a++ {
		if err := o.Write(a, buf); err != nil {
			b.Fatal(err)
		}
	}
	// ReadInto with a reused destination measures the serving path
	// itself: steady state must be allocation-free (the gate in
	// cmd/oram-benchjson holds these benches to an allocs/op budget).
	dst := make([]byte, cfg.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.ReadInto(rng.Uint64()%cfg.Blocks, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(o.Stats().DummyAccesses)/float64(b.N), "dummies/op")
}

func BenchmarkAccessMetadataOnly(b *testing.B) {
	benchORAM(b, Config{Blocks: 1 << 14, BlockSize: 0, Encryption: EncryptNone})
}

func BenchmarkAccessPlaintext(b *testing.B) {
	benchORAM(b, Config{Blocks: 1 << 12, BlockSize: 128, Encryption: EncryptNone})
}

func BenchmarkAccessCounterEncrypted(b *testing.B) {
	benchORAM(b, Config{Blocks: 1 << 12, BlockSize: 128, Encryption: EncryptCounter})
}

func BenchmarkAccessStrawmanEncrypted(b *testing.B) {
	benchORAM(b, Config{Blocks: 1 << 12, BlockSize: 128, Encryption: EncryptStrawman})
}

func BenchmarkAccessCounterWithIntegrity(b *testing.B) {
	benchORAM(b, Config{Blocks: 1 << 12, BlockSize: 128, Encryption: EncryptCounter, Integrity: true})
}

// ---------- persistent-backend benchmarks ----------
//
// Same geometry as BenchmarkAccessCounterEncrypted, so the numbers read
// as pure storage overhead: every ReadInto rewrites its path, so the
// mmap'd tree file sees Z(L+1) record writes per op and the WAL variant
// additionally appends one log frame per op. scripts/check_bench_pr10.sh
// holds the overhead to relative bounds against the in-memory baseline.

func BenchmarkFileBackendAccess(b *testing.B) {
	benchORAM(b, Config{Blocks: 1 << 12, BlockSize: 128, Encryption: EncryptCounter,
		Backend: BackendFile, Dir: b.TempDir()})
}

func BenchmarkFileBackendWAL(b *testing.B) {
	benchORAM(b, Config{Blocks: 1 << 12, BlockSize: 128, Encryption: EncryptCounter,
		Backend: BackendFile, Dir: b.TempDir(), WAL: true, WALDepth: 64})
}

// BenchmarkFileBackendWALEpochFlush measures the serving path when the
// epoch barrier is paid inline: every 32 accesses, Flush checkpoints the
// WAL (log fsync, apply, msync, truncate) — the durability cadence a
// sync-minded deployment would run.
func BenchmarkFileBackendWALEpochFlush(b *testing.B) {
	cfg := Config{Blocks: 1 << 12, BlockSize: 128, Encryption: EncryptCounter,
		Backend: BackendFile, Dir: b.TempDir(), WAL: true,
		Rand: rand.New(rand.NewSource(1))}
	o, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := o.Close(); err != nil {
			b.Error(err)
		}
	})
	buf := make([]byte, cfg.BlockSize)
	for a := uint64(0); a < cfg.Blocks; a++ {
		if err := o.Write(a, buf); err != nil {
			b.Fatal(err)
		}
	}
	dst := make([]byte, cfg.BlockSize)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.ReadInto(rng.Uint64()%cfg.Blocks, dst); err != nil {
			b.Fatal(err)
		}
		if i%32 == 31 {
			if err := o.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAccessSuperBlock2(b *testing.B) {
	benchORAM(b, Config{Blocks: 1 << 12, BlockSize: 128, Encryption: EncryptNone, SuperBlockSize: 2, Z: 4})
}

// BenchmarkAccessConstantTimeStash prices the fixed-length masked stash
// scans against the default early-exit scans (BenchmarkAccessPlaintext /
// BenchmarkAccessCounterEncrypted are the baselines): every scan touches
// the full scan window regardless of where — or whether — the block sits.
func BenchmarkAccessConstantTimeStash(b *testing.B) {
	b.Run("plaintext", func(b *testing.B) {
		benchORAM(b, Config{Blocks: 1 << 12, BlockSize: 128, Encryption: EncryptNone, ConstantTimeStash: true})
	})
	b.Run("counter", func(b *testing.B) {
		benchORAM(b, Config{Blocks: 1 << 12, BlockSize: 128, Encryption: EncryptCounter, ConstantTimeStash: true})
	})
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h, err := NewHierarchy(HierarchyConfig{
		Blocks: 1 << 12, BlockSize: 128, PosBlockSize: 32,
		OnChipPosMapMax: 1 << 10, Encryption: EncryptNone,
		Rand: rand.New(rand.NewSource(3)),
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 128)
	for a := uint64(0); a < 1<<12; a++ {
		if err := h.Write(a, buf); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Read(rng.Uint64() % (1 << 12)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(h.NumORAMs()), "orams")
}

// BenchmarkAccessRecursivePLBHit measures the PLB hit path: a hot set
// whose labels all fit in the lookaside cache, so after warmup every
// access resolves its leaf in the PLB and touches only the data ORAM.
// The hit path shares the pooled-buffer discipline of the flat hot path,
// so steady state must stay allocation-free (scripts/check_alloc_gate.sh
// holds this bench to the same budget as the other Access benches).
func BenchmarkAccessRecursivePLBHit(b *testing.B) {
	h, err := NewHierarchy(HierarchyConfig{
		Blocks: 1 << 12, BlockSize: 128, PosBlockSize: 32,
		OnChipPosMapMax: 1 << 10, Encryption: EncryptNone,
		PLBBytes: 1 << 14,
		Rand:     rand.New(rand.NewSource(3)),
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 128)
	for a := uint64(0); a < 1<<12; a++ {
		if err := h.Write(a, buf); err != nil {
			b.Fatal(err)
		}
	}
	const hot = 64
	rng := rand.New(rand.NewSource(4))
	dst := make([]byte, 128)
	// Warm the PLB so the measured loop is all hits.
	for a := uint64(0); a < hot; a++ {
		if _, err := h.ReadInto(a, dst); err != nil {
			b.Fatal(err)
		}
	}
	h.ResetStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.ReadInto(rng.Uint64()%hot, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := h.Stats()
	if lookups := st.PLBHits + st.PLBMisses; lookups > 0 {
		b.ReportMetric(float64(st.PLBHits)/float64(lookups), "plb-hitrate")
	}
	b.ReportMetric(st.MeanChainLength(), "chain-len")
}

func BenchmarkExclusiveLoadStore(b *testing.B) {
	o, err := New(Config{Blocks: 1 << 12, BlockSize: 128, Encryption: EncryptNone,
		Rand: rand.New(rand.NewSource(5))})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 128)
	for a := uint64(0); a < 1<<12; a++ {
		if err := o.Write(a, buf); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := rng.Uint64() % (1 << 12)
		d, _, _, err := o.Load(a)
		if err != nil {
			b.Fatal(err)
		}
		if err := o.Store(a, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDRAMPathReadSubtreeVsNaive(b *testing.B) {
	for _, strat := range []string{"naive", "subtree"} {
		strat := strat
		b.Run(strat, func(b *testing.B) {
			var lastCycles float64
			for i := 0; i < b.N; i++ {
				res, err := exp.RunFig11(exp.Fig11Config{
					WorkingSet: 1 << 25, Channels: []int{2},
					Settings: []exp.Setting{exp.DZ3Pb32}, Accesses: 16, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				pt := res.Points[0]
				if strat == "naive" {
					lastCycles = pt.Naive
				} else {
					lastCycles = pt.Subtree
				}
			}
			b.ReportMetric(lastCycles, "DRAMcycles/access")
		})
	}
}

// ---------- sharded serving-layer benchmarks ----------

// newBenchSharded builds and pre-fills a sharded ORAM over the whole
// logical address space so the benchmarks measure steady state.
func newBenchSharded(b *testing.B, cfg ShardedConfig) *Sharded {
	b.Helper()
	s, err := NewSharded(cfg)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, cfg.BlockSize)
	const chunk = 1024
	for lo := uint64(0); lo < cfg.Blocks; lo += chunk {
		hi := lo + chunk
		if hi > cfg.Blocks {
			hi = cfg.Blocks
		}
		addrs := make([]uint64, 0, chunk)
		data := make([][]byte, 0, chunk)
		for a := lo; a < hi; a++ {
			addrs = append(addrs, a)
			data = append(data, buf)
		}
		if err := s.WriteBatch(addrs, data); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkShardedThroughput measures single-op read throughput versus
// shard count under concurrent clients (GOMAXPROCS goroutines via
// RunParallel). ops/s vs shards=1 is the sharding speedup.
func BenchmarkShardedThroughput(b *testing.B) {
	const blocks = 1 << 14
	const blockSize = 64
	for _, shards := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := newBenchSharded(b, ShardedConfig{
				Shards: shards,
				Config: Config{Blocks: blocks, BlockSize: blockSize, Encryption: EncryptNone},
			})
			defer s.Close()
			var seed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(100 + seed.Add(1)))
				dst := make([]byte, blockSize)
				for pb.Next() {
					if _, err := s.ReadInto(rng.Uint64()%blocks, dst); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkShardedHierarchy measures the unified composition the Open
// constructor enables: sharded ORAMs whose position maps recurse
// obliviously (one Hierarchy per shard). Each op walks a whole chain, so
// absolute throughput sits well below the flat sweep — the shard scaling
// and the per-op chain cost (the H× factor of Section 2.3) are the
// numbers of interest. CI runs it once as the composition smoke test.
func BenchmarkShardedHierarchy(b *testing.B) {
	const blocks = 1 << 13
	const blockSize = 32
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := Open(Spec{
				Blocks: blocks, BlockSize: blockSize, Shards: shards,
				PosMap: PosMapRecursive, PosBlockSize: 32, OnChipPosMapMax: 4 << 10,
				Encryption: EncryptNone,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			levels := c.(*Sharded).NumORAMs()
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(300 + seed.Add(1)))
				for pb.Next() {
					if _, err := c.Read(rng.Uint64() % blocks); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
			b.ReportMetric(float64(levels), "levels")
		})
	}
}

// BenchmarkShardedThroughputEncrypted is the same sweep with the
// counter-based encryption on: per-shard AES work parallelizes across
// workers, so sharding gains are larger than in the plaintext sweep.
func BenchmarkShardedThroughputEncrypted(b *testing.B) {
	const blocks = 1 << 13
	const blockSize = 64
	for _, shards := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := newBenchSharded(b, ShardedConfig{
				Shards: shards,
				Config: Config{Blocks: blocks, BlockSize: blockSize, Encryption: EncryptCounter},
			})
			defer s.Close()
			var seed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(200 + seed.Add(1)))
				dst := make([]byte, blockSize)
				for pb.Next() {
					if _, err := s.ReadInto(rng.Uint64()%blocks, dst); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkShardedDRAM measures the timed serving layer: wall-clock
// throughput of DRAM-backed shards on the shared memory scheduler, with
// the modeled currency attached as metrics — DDR3 cycles per op, row-hit
// rate, and achieved bytes per modeled cycle, all diffed against the
// post-pre-fill snapshot so they describe the measured reads only. CI
// runs it once as the timed-backend smoke test.
func BenchmarkShardedDRAM(b *testing.B) {
	const blocks = 1 << 12
	const blockSize = 64
	for _, shards := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := newBenchSharded(b, ShardedConfig{
				Shards: shards,
				Config: Config{
					Blocks: blocks, BlockSize: blockSize,
					Encryption:   EncryptNone,
					Backend:      BackendDRAM,
					DRAMChannels: 2,
				},
			})
			defer s.Close()
			pre, _ := s.TimingStats()
			var seed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(300 + seed.Add(1)))
				dst := make([]byte, blockSize)
				for pb.Next() {
					if _, err := s.ReadInto(rng.Uint64()%blocks, dst); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			post, ok := s.TimingStats()
			if !ok {
				b.Fatal("no timing stats from DRAM backend")
			}
			d := post.Delta(pre)
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
			b.ReportMetric(float64(d.Cycles)/float64(b.N), "cycles/op")
			b.ReportMetric(d.RowHitRate(), "row-hit")
			b.ReportMetric(d.BytesPerCycle(), "B/cycle")
		})
	}
}

// benchmarkSched drives a 2-shard timed instance under concurrent
// single-op reads and reports the modeled columns the PR 9 gate compares:
// cycles/op, row-hit rate, and ops per modeled second. Both scheduling
// policies run the identical load; check_bench_pr9.sh requires the
// FR-FCFS variant to win on all three. The queued hot path is also in
// the allocation gate — the event queue's rings, skip-mask pool, and
// batch scratch must reach steady state without per-op allocation.
func benchmarkSched(b *testing.B, sched MemSched) {
	const blocks = 1 << 12
	const blockSize = 64
	s := newBenchSharded(b, ShardedConfig{
		Shards: 2,
		Config: Config{
			Blocks: blocks, BlockSize: blockSize,
			Encryption:   EncryptNone,
			Backend:      BackendDRAM,
			DRAMChannels: 2,
			DRAMSched:    sched,
		},
	})
	defer s.Close()
	pre, _ := s.TimingStats()
	var seed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(900 + seed.Add(1)))
		dst := make([]byte, blockSize)
		for pb.Next() {
			if _, err := s.ReadInto(rng.Uint64()%blocks, dst); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	post, ok := s.TimingStats()
	if !ok {
		b.Fatal("no timing stats from DRAM backend")
	}
	d := post.Delta(pre)
	b.ReportMetric(float64(d.Cycles)/float64(b.N), "cycles/op")
	b.ReportMetric(d.RowHitRate(), "row-hit")
	if d.Cycles > 0 {
		b.ReportMetric(float64(b.N)*membus.CyclesPerSecond/float64(d.Cycles), "ops/modeled-s")
	}
}

func BenchmarkSchedInorder2Shard(b *testing.B) { benchmarkSched(b, MemSchedInOrder) }

func BenchmarkSchedFRFCFS2Shard(b *testing.B) { benchmarkSched(b, MemSchedFRFCFS) }

// BenchmarkShardedBatch measures batched submission from a single client:
// even one caller gets cross-shard parallelism because the batch fans out
// to all workers.
func BenchmarkShardedBatch(b *testing.B) {
	const blocks = 1 << 14
	const blockSize = 64
	const batch = 64
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := newBenchSharded(b, ShardedConfig{
				Shards: shards,
				Config: Config{Blocks: blocks, BlockSize: blockSize, Encryption: EncryptNone},
			})
			defer s.Close()
			rng := rand.New(rand.NewSource(300))
			addrs := make([]uint64, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range addrs {
					addrs[j] = rng.Uint64() % blocks
				}
				if _, err := s.ReadBatch(addrs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkShardedLatency measures client-visible per-op latency — the
// time from submission to response — in synchronous versus async (staged)
// mode, under open-loop arrivals: the client pauses briefly between
// requests, as real serving traffic does. The async worker answers after
// the path read and stash merge and performs the write-back
// (serialization, encryption, store write) plus background eviction
// during the inter-arrival gap, so the client waits only for the read
// half of each access; the sync worker makes the client wait for the
// whole protocol. Under zero-gap saturation the async mode degrades to
// sync throughput by design (the deferred queue drains inline), which the
// throughput benchmarks above cover. Encryption is on because write-back
// I/O is where the AES cost sits. Timed section excludes the think time.
func BenchmarkShardedLatency(b *testing.B) {
	const blocks = 1 << 13
	const blockSize = 64
	const think = 50 * time.Microsecond // inter-arrival gap (not timed)
	for _, mode := range []string{"sync", "async"} {
		for _, shards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("mode=%s/shards=%d", mode, shards), func(b *testing.B) {
				s := newBenchSharded(b, ShardedConfig{
					Shards: shards,
					Config: Config{Blocks: blocks, BlockSize: blockSize,
						Encryption:    EncryptCounter,
						AsyncEviction: mode == "async"},
				})
				defer s.Close()
				rng := rand.New(rand.NewSource(600))
				lat := make([]time.Duration, 0, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					addr := rng.Uint64() % blocks
					t0 := time.Now()
					if _, err := s.Read(addr); err != nil {
						b.Fatal(err)
					}
					lat = append(lat, time.Since(t0))
					b.StopTimer()
					time.Sleep(think)
					b.StartTimer()
				}
				b.StopTimer()
				sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
				pct := func(p float64) float64 {
					i := int(p * float64(len(lat)-1))
					return float64(lat[i].Nanoseconds())
				}
				b.ReportMetric(pct(0.50), "p50-ns")
				b.ReportMetric(pct(0.99), "p99-ns")
				b.ReportMetric(pct(0.95), "p95-ns")
			})
		}
	}
}

// BenchmarkShardedBatchRandom measures the oblivious routing cost alone:
// plain (unpadded) batches under PartitionRandom, where every logical
// operation becomes a fetch from the block's current shard plus a
// relocation to a fresh uniform shard. Compare against BenchmarkShardedBatch
// at the same shard count for the routing-hiding overhead.
func BenchmarkShardedBatchRandom(b *testing.B) {
	const blocks = 1 << 14
	const blockSize = 64
	const batch = 64
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := newBenchSharded(b, ShardedConfig{
				Shards:    shards,
				Partition: PartitionRandom,
				Config:    Config{Blocks: blocks, BlockSize: blockSize, Encryption: EncryptNone},
			})
			defer s.Close()
			rng := rand.New(rand.NewSource(400))
			addrs := make([]uint64, batch)
			s.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range addrs {
					addrs[j] = rng.Uint64() % blocks
				}
				if _, err := s.ReadBatch(addrs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "ops/s")
			b.ReportMetric(s.Stats().PaddingPerReal(), "pad/real")
		})
	}
}

// BenchmarkShardedBatchPadded measures the fully oblivious mode —
// PartitionRandom plus padded batches, where every batch touches every
// shard equally often — and attaches the padding overhead as a metric.
// ops/s here versus BenchmarkShardedBatch is the total price of an
// input-independent shard schedule.
func BenchmarkShardedBatchPadded(b *testing.B) {
	const blocks = 1 << 14
	const blockSize = 64
	const batch = 64
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := newBenchSharded(b, ShardedConfig{
				Shards:    shards,
				Partition: PartitionRandom,
				Padded:    true,
				Config:    Config{Blocks: blocks, BlockSize: blockSize, Encryption: EncryptNone},
			})
			defer s.Close()
			rng := rand.New(rand.NewSource(500))
			addrs := make([]uint64, batch)
			s.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range addrs {
					addrs[j] = rng.Uint64() % blocks
				}
				if _, err := s.ReadBatch(addrs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "ops/s")
			b.ReportMetric(s.Stats().PaddingPerReal(), "pad/real")
		})
	}
}

// ---------- per-figure benchmarks ----------

func BenchmarkFig03StashOccupancy(b *testing.B) {
	cfg := exp.DefaultFig3()
	cfg.WorkingSetBlocks = 1 << 12
	cfg.Zs = []int{3, 4}
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Histograms[3].Mean(), "Z3_mean_stash")
		b.ReportMetric(res.Histograms[3].TailProb(50), "Z3_P_ge_50")
	}
}

func BenchmarkFig04CPLAttack(b *testing.B) {
	cfg := exp.DefaultFig4()
	cfg.Experiments = 10
	cfg.Accesses = 1000
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Secure.Mean(), "secure_cpl")
		b.ReportMetric(res.InsecureCongested.Mean(), "insecure_cpl")
	}
}

func BenchmarkFig05AccessOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig5(exp.DZ3Pb32, 1<<25, 2, 16, 31)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SeqReturn, "seq_return_cycles")
		b.ReportMetric(res.PipelinedReturn, "pipe_return_cycles")
	}
}

func BenchmarkFig07DummyRatio(b *testing.B) {
	cfg := exp.DefaultFig7()
	cfg.WorkingSetBlocks = 1 << 12
	cfg.AccessesPerBlock = 6
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratio[1][200], "Z1_dummy_ratio")
		b.ReportMetric(res.Ratio[3][200], "Z3_dummy_ratio")
	}
}

func BenchmarkFig08Utilization(b *testing.B) {
	cfg := exp.DefaultFig8()
	cfg.WorkingSetBlocks = 1 << 12
	cfg.AccessesPerBlock = 6
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if best := res.Best(); best != nil {
			b.ReportMetric(float64(best.Z), "best_Z")
			b.ReportMetric(best.Overhead, "best_overhead")
		}
	}
}

func BenchmarkFig09Capacity(b *testing.B) {
	cfg := exp.DefaultFig9()
	cfg.WorkingSets = []uint64{1 << 10, 1 << 13}
	cfg.AccessesPerBlock = 6
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range res.Points {
			if pt.Z == 3 && pt.WorkingSet == 1<<13 {
				b.ReportMetric(pt.Overhead, "Z3_overhead_8k")
			}
		}
	}
}

func BenchmarkFig10Hierarchy(b *testing.B) {
	cfg := exp.DefaultFig10()
	cfg.SimWorkingSet = 1 << 12
	cfg.SimAccesses = 1 << 14
	cfg.Settings = []exp.Setting{exp.DZ3Pb32, exp.BaseORAM}
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		red, err := res.ReductionVsBase("DZ3Pb32")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*red, "overhead_reduction_%")
	}
}

func BenchmarkFig11Placement(b *testing.B) {
	cfg := exp.DefaultFig11()
	cfg.Settings = []exp.Setting{exp.DZ3Pb32}
	cfg.Channels = []int{2}
	cfg.Accesses = 24
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pt := res.Points[0]
		b.ReportMetric(pt.Naive/pt.Theoretical, "naive_vs_theory")
		b.ReportMetric(pt.Subtree/pt.Theoretical, "subtree_vs_theory")
	}
}

func BenchmarkTable2Latency(b *testing.B) {
	cfg := exp.DefaultTable2()
	cfg.Accesses = 24
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if row := res.Find("DZ3Pb32"); row != nil {
			b.ReportMetric(float64(row.ReturnCycles), "DZ3Pb32_return_cyc")
			b.ReportMetric(float64(row.FinishCycles), "DZ3Pb32_finish_cyc")
		}
	}
}

func BenchmarkFig12SPEC(b *testing.B) {
	cfg := exp.DefaultFig12()
	cfg.Instructions = 50_000
	cfg.Warmup = 50_000
	cfg.SimWorkingSet = 1 << 12
	cfg.SimAccesses = 1 << 14
	cfg.Benchmarks = []string{"mcf", "libquantum", "hmmer"}
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		imp, err := res.ImprovementVsBase("DZ4Pb32+SB")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*imp, "improvement_%")
	}
}

func BenchmarkIntegrityOverhead(b *testing.B) {
	cfg := exp.DefaultIntegrity()
	cfg.Accesses = 500
	for i := 0; i < b.N; i++ {
		res, err := exp.RunIntegrity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HashReadsPerAccess, "hash_reads/access")
	}
}

// BenchmarkCPUSimulator measures the timing-model throughput itself.
func BenchmarkCPUSimulator(b *testing.B) {
	p := trace.ProfileByName("mcf")
	gen := p.Generator(1)
	mem := &cpusim.ORAMMemory{ReturnLat: 1848, FinishLat: 3440}
	cfg := cpusim.Default()
	b.ResetTimer()
	if _, err := cpusim.Run(cfg, gen, mem, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N), "instructions")
}

// BenchmarkEvictionPath isolates the greedy eviction + path write cost.
func BenchmarkEvictionPath(b *testing.B) {
	p := core.Params{LeafLevel: 20, Z: 4, Blocks: 1 << 20, StashCapacity: 200, BackgroundEviction: true}
	store, err := core.NewMemStore(p.LeafLevel, p.Z, 0)
	if err != nil {
		b.Fatal(err)
	}
	src := core.NewMathLeafSource(rand.New(rand.NewSource(7)))
	pos, err := core.NewOnChipPositionMap(p.Groups(), 1<<20, src)
	if err != nil {
		b.Fatal(err)
	}
	o, err := core.New(p, store, pos, src)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Access(rng.Uint64()%(1<<20), core.OpWrite, nil); err != nil {
			b.Fatal(err)
		}
	}
}
