package pathoram

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/testutil"
)

// Tests for the timed (DRAM-backed) serving layer. Everything here is
// named TestDRAM* so CI can run the timed-backend suite with
// `-run 'DRAM|Timed'`.

// dramConfig returns a ShardedConfig on the timed backend. Async runs
// disable idle eviction (EvictionsPerIdle: -1): idle-time dummy accesses
// fire on the goroutine scheduler's whim and would consume per-shard
// randomness nondeterministically, while write-back *completions* — the
// only other idle work — never consume randomness and never change the
// post-Flush state (TestStagedBitIdenticalToSync pins that). With them
// off, a single-client replay is fully deterministic, which is what lets
// the equivalence test demand byte-identical trees.
func dramConfig(shards int, blocks uint64, part Partition, async bool, seed int64) ShardedConfig {
	return ShardedConfig{
		Shards:           shards,
		Partition:        part,
		EvictionsPerIdle: -1,
		Config: Config{
			Blocks: blocks, BlockSize: 16,
			Encryption:    EncryptNone,
			Backend:       BackendDRAM,
			DRAMChannels:  2,
			AsyncEviction: async,
			Rand:          rand.New(rand.NewSource(seed)),
		},
	}
}

// memTree reaches through a shard's store wrappers to the underlying
// MemStore (EncryptNone configs only).
func memTree(t *testing.T, o *ORAM) *core.MemStore {
	t.Helper()
	return memTreeOf(t, o.inner.BucketStore())
}

func memTreeOf(t *testing.T, store core.PathStore) *core.MemStore {
	t.Helper()
	if ts, ok := store.(*core.TimedStore); ok {
		store = ts.Inner()
	}
	ms, ok := store.(*core.MemStore)
	if !ok {
		t.Fatalf("shard store is %T, want *core.MemStore", store)
	}
	return ms
}

// shardORAM unwraps shard i's engine as a flat *ORAM (flat configs only).
func shardORAM(t *testing.T, s *Sharded, i int) *ORAM {
	t.Helper()
	e, ok := s.engines[i].(oramEngine)
	if !ok {
		t.Fatalf("shard %d engine is %T, want a flat ORAM", i, s.engines[i])
	}
	return e.ORAM
}

// treeSnapshot serializes a MemStore's full contents (level, position,
// address, leaf, payload of every real block, in scan order).
func treeSnapshot(ms *core.MemStore) []string {
	var out []string
	ms.ForEachBlock(func(slot core.Slot, level int, pos uint64) {
		out = append(out, fmt.Sprintf("%d/%d:%d@%d=%x", level, pos, slot.Addr, slot.Leaf, slot.Data))
	})
	return out
}

// TestDRAMEquivalenceReplay is the timed-backend acceptance test: a trace
// replayed against a MemStore-backed and a DRAM-backed sharded ORAM (same
// seeds) must read identically at every step, touch the exact same leaves
// in the exact same order on every shard (timing never perturbs leaf
// choice), and — after Flush — leave byte-identical trees, across all
// three partitions in both sync and async mode.
func TestDRAMEquivalenceReplay(t *testing.T) {
	const blocks = 300
	const ops = 1500
	const shards = 3
	for _, part := range []Partition{PartitionStripe, PartitionRange, PartitionRandom} {
		for _, async := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/async=%v", partName(part), async), func(t *testing.T) {
				leafLog := func() ([][]uint64, func(int, uint64)) {
					logs := make([][]uint64, shards)
					return logs, func(sh int, leaf uint64) { logs[sh] = append(logs[sh], leaf) }
				}
				memLeaves, memHook := leafLog()
				memCfg := dramConfig(shards, blocks, part, async, 99)
				memCfg.Backend = BackendMem
				memCfg.OnShardPathAccess = memHook
				memS, err := NewSharded(memCfg)
				if err != nil {
					t.Fatal(err)
				}
				defer memS.Close()

				dramLeaves, dramHook := leafLog()
				dramCfg := dramConfig(shards, blocks, part, async, 99)
				dramCfg.OnShardPathAccess = dramHook
				dramS, err := NewSharded(dramCfg)
				if err != nil {
					t.Fatal(err)
				}
				defer dramS.Close()

				shadow := map[uint64][]byte{}
				expect := func(addr uint64) []byte {
					if d, ok := shadow[addr]; ok {
						return d
					}
					return make([]byte, 16)
				}
				rng := rand.New(rand.NewSource(123))
				for i := 0; i < ops; i++ {
					addr := rng.Uint64() % blocks
					if rng.Intn(2) == 0 {
						d := make([]byte, 16)
						rng.Read(d)
						if err := memS.Write(addr, d); err != nil {
							t.Fatal(err)
						}
						if err := dramS.Write(addr, d); err != nil {
							t.Fatal(err)
						}
						shadow[addr] = d
					} else {
						want := expect(addr)
						gotMem, err := memS.Read(addr)
						if err != nil {
							t.Fatal(err)
						}
						gotDram, err := dramS.Read(addr)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(gotMem, want) || !bytes.Equal(gotDram, want) {
							t.Fatalf("op %d: read(%d) mem=%x dram=%x want %x", i, addr, gotMem, gotDram, want)
						}
					}
				}
				if err := memS.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := dramS.Flush(); err != nil {
					t.Fatal(err)
				}
				// Trees must be byte-identical, shard by shard.
				for i := 0; i < shards; i++ {
					mt := treeSnapshot(memTree(t, shardORAM(t, memS, i)))
					dt := treeSnapshot(memTree(t, shardORAM(t, dramS, i)))
					if len(mt) != len(dt) {
						t.Fatalf("shard %d: block counts diverge (mem %d, dram %d)", i, len(mt), len(dt))
					}
					for j := range mt {
						if mt[j] != dt[j] {
							t.Fatalf("shard %d: trees diverge at block %d: mem %q dram %q", i, j, mt[j], dt[j])
						}
					}
				}
				// Identical leaf sequences: the strongest form of "timing
				// never perturbs leaf choice".
				for i := 0; i < shards; i++ {
					if len(memLeaves[i]) != len(dramLeaves[i]) {
						t.Fatalf("shard %d: %d mem accesses vs %d dram accesses",
							i, len(memLeaves[i]), len(dramLeaves[i]))
					}
					for j := range memLeaves[i] {
						if memLeaves[i][j] != dramLeaves[i][j] {
							t.Fatalf("shard %d: leaf sequences diverge at access %d: mem %d, dram %d",
								i, j, memLeaves[i][j], dramLeaves[i][j])
						}
					}
				}
				// The timed run really went through the model.
				ts, ok := dramS.TimingStats()
				if !ok {
					t.Fatal("DRAM backend reported no timing stats")
				}
				if ts.PathReads == 0 || ts.PathWrites == 0 || ts.DRAM.Reads == 0 {
					t.Fatalf("timing stats flat: %+v", ts)
				}
				if async && ts.DeferredWrites == 0 {
					t.Error("async timed run charged no deferred write-backs")
				}
				if _, ok := memS.TimingStats(); ok {
					t.Error("mem backend claimed timing stats")
				}
			})
		}
	}
}

// TestDRAMTimedLeafUniform is the chi-square half of "timing never
// perturbs leaf choice": under the timed backend the per-shard leaf
// histograms must stay uniform, for adversarial workloads included.
func TestDRAMTimedLeafUniform(t *testing.T) {
	const shards = 2
	const blocks = 512
	const leafLevel = 6
	const accesses = 6000
	for name, w := range map[string]func(i int) uint64{
		"hammer": func(i int) uint64 { return 11 },
		"scan":   func(i int) uint64 { return uint64(i) % blocks },
	} {
		t.Run(name, func(t *testing.T) {
			hists := make([][]uint64, shards)
			for i := range hists {
				hists[i] = make([]uint64, 1<<leafLevel)
			}
			s, err := NewSharded(ShardedConfig{
				Shards: shards,
				Config: Config{
					Blocks: blocks, LeafLevel: leafLevel, Z: 4,
					StashCapacity: 150,
					Backend:       BackendDRAM,
					Rand:          rand.New(rand.NewSource(4242)),
				},
				OnShardPathAccess: func(sh int, leaf uint64) { hists[sh][leaf]++ },
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < accesses; i++ {
				if err := s.Write(w(i), nil); err != nil {
					t.Fatal(err)
				}
			}
			for sh, counts := range hists {
				var total uint64
				for _, c := range counts {
					total += c
				}
				if total < 500 {
					continue
				}
				if x2 := testutil.ChiSquare(counts); x2 > testutil.UniformThreshold(len(counts)) {
					t.Errorf("shard %d: timed leaf distribution not uniform under %q: chi2=%.1f (%d samples)",
						sh, name, x2, total)
				}
			}
		})
	}
}

// TestDRAMInterleaveBeatsSerialized is the end-to-end intra-access-overlap
// acceptance result: the same workload on ≥2 shards must finish in fewer
// modeled cycles when the shared memory scheduler interleaves different
// shards' stage-2 reads and stage-5 write-backs than when every stage is
// serialized at the global frontier.
func TestDRAMInterleaveBeatsSerialized(t *testing.T) {
	run := func(serialize bool) uint64 {
		cfg := dramConfig(2, 256, PartitionStripe, false, 7)
		cfg.DRAMSerialize = serialize
		s, err := NewSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		buf := make([]byte, 16)
		for i := 0; i < 600; i++ {
			if err := s.Write(uint64(i)%256, buf); err != nil {
				t.Fatal(err)
			}
		}
		ts, ok := s.TimingStats()
		if !ok {
			t.Fatal("no timing stats")
		}
		return ts.Cycles
	}
	overlapped, serialized := run(false), run(true)
	if overlapped >= serialized {
		t.Errorf("interleaved serving took %d modeled cycles, serialized baseline %d — no overlap win",
			overlapped, serialized)
	}
}

// TestDRAMConcurrentClients hammers a DRAM-backed async sharded ORAM from
// many goroutines: the shared bus must stay race-free (the -race CI shard
// runs this) and read-your-writes must hold through the timed layer.
func TestDRAMConcurrentClients(t *testing.T) {
	const shards = 4
	const blocks = 512
	const clients = 8
	const opsPer = 60
	cfg := dramConfig(shards, blocks, PartitionStripe, true, 31)
	cfg.EvictionsPerIdle = 0 // default idle eviction: exercise every bus path
	s, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint64(c) * (blocks / clients)
			buf := make([]byte, 16)
			for i := 0; i < opsPer; i++ {
				addr := base + uint64(i)%(blocks/clients)
				buf[0] = byte(addr)
				if err := s.Write(addr, buf); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				got, err := s.Read(addr)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if got[0] != byte(addr) {
					t.Errorf("client %d: read-your-writes violated at %d", c, addr)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ts, ok := s.TimingStats()
	if !ok || ts.PathReads == 0 {
		t.Fatalf("timing stats flat after concurrent load: %+v", ts)
	}
	// Aggregation invariant end-to-end: the merged per-shard view must
	// reproduce the shared memory system's own totals.
	if sys := s.bus.SystemStats(); ts.DRAM != sys {
		t.Errorf("merged shard timing %+v != bus system stats %+v", ts.DRAM, sys)
	}
	if hr := ts.RowHitRate(); hr < 0 || hr > 1 {
		t.Errorf("row hit rate %v out of range", hr)
	}
}

// TestDRAMSingleORAMTiming covers the standalone (non-sharded) wiring: a
// DRAM-backed ORAM builds its own private bus, reports timing, and the
// write-buffer mapping charges deferred write-backs on the flush schedule.
func TestDRAMSingleORAMTiming(t *testing.T) {
	o, err := New(Config{
		Blocks: 128, BlockSize: 16,
		Encryption:            EncryptCounter,
		Backend:               BackendDRAM,
		DRAMChannels:          1,
		AsyncEviction:         true,
		MaxDeferredWriteBacks: 4,
		Rand:                  rand.New(rand.NewSource(8)),
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	for a := uint64(0); a < 64; a++ {
		if err := o.Write(a, buf); err != nil {
			t.Fatal(err)
		}
	}
	ts, ok := o.TimingStats()
	if !ok {
		t.Fatal("no timing stats on DRAM backend")
	}
	if ts.PathReads == 0 {
		t.Fatal("no path reads charged")
	}
	// Queue cap 4: most write-backs were charged via the cap drain, all
	// deferred.
	if ts.PathWrites == 0 || ts.DeferredWrites != ts.PathWrites {
		t.Fatalf("async run charged inline writes: %+v", ts)
	}
	before := ts
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	ts, _ = o.TimingStats()
	if ts.PathWrites <= before.PathWrites {
		t.Error("Flush charged no write-back I/O")
	}
	if o.PendingWriteBacks() != 0 {
		t.Error("write-backs pending after Flush")
	}
	if ts.BytesPerCycle() <= 0 {
		t.Errorf("BytesPerCycle = %v", ts.BytesPerCycle())
	}
	// Mem backend reports none.
	o2, err := New(Config{Blocks: 64, BlockSize: 16, Encryption: EncryptNone,
		Rand: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o2.TimingStats(); ok {
		t.Error("mem backend claimed timing stats")
	}
}
