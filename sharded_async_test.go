package pathoram

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/testutil"
)

// Tests for the async (staged) serving mode. Everything here is named
// TestAsync* so CI can run the whole async suite with `-run Async`.

// asyncConfig returns a ShardedConfig with the staged pipeline on.
func asyncConfig(shards int, blocks uint64, part Partition, seed int64) ShardedConfig {
	return ShardedConfig{
		Shards:    shards,
		Partition: part,
		Config: Config{
			Blocks: blocks, BlockSize: 16,
			Encryption:    EncryptCounter,
			AsyncEviction: true,
			Rand:          rand.New(rand.NewSource(seed)),
		},
	}
}

// TestAsyncEquivalenceReplay is the drain-semantics acceptance test: a
// trace replayed against sync-mode and async-mode sharded ORAMs (and a
// plain map) must read identically at every step, and after Flush the
// async instance must hold exactly the same logical contents with nothing
// deferred and every stash drained to the synchronous invariant.
func TestAsyncEquivalenceReplay(t *testing.T) {
	const blocks = 300
	const ops = 2500
	for _, part := range []Partition{PartitionStripe, PartitionRange, PartitionRandom} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", partName(part), shards), func(t *testing.T) {
				syncS, err := NewSharded(ShardedConfig{
					Shards: shards, Partition: part,
					Config: Config{Blocks: blocks, BlockSize: 16,
						Encryption: EncryptCounter,
						Rand:       rand.New(rand.NewSource(11))},
				})
				if err != nil {
					t.Fatal(err)
				}
				defer syncS.Close()
				asyncS, err := NewSharded(asyncConfig(shards, blocks, part, 12))
				if err != nil {
					t.Fatal(err)
				}
				defer asyncS.Close()

				shadow := map[uint64][]byte{}
				expect := func(addr uint64) []byte {
					if d, ok := shadow[addr]; ok {
						return d
					}
					return make([]byte, 16)
				}
				rng := rand.New(rand.NewSource(13))
				for i := 0; i < ops; i++ {
					addr := rng.Uint64() % blocks
					switch rng.Intn(3) {
					case 0:
						d := make([]byte, 16)
						rng.Read(d)
						if err := syncS.Write(addr, d); err != nil {
							t.Fatal(err)
						}
						if err := asyncS.Write(addr, d); err != nil {
							t.Fatal(err)
						}
						shadow[addr] = d
					case 1:
						want := expect(addr)
						gotSync, err := syncS.Read(addr)
						if err != nil {
							t.Fatal(err)
						}
						gotAsync, err := asyncS.Read(addr)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(gotSync, want) || !bytes.Equal(gotAsync, want) {
							t.Fatalf("op %d: read(%d) sync=%x async=%x want %x",
								i, addr, gotSync, gotAsync, want)
						}
					default:
						inc := func(d []byte) { d[3]++ }
						if err := syncS.Update(addr, inc); err != nil {
							t.Fatal(err)
						}
						if err := asyncS.Update(addr, inc); err != nil {
							t.Fatal(err)
						}
						d := append([]byte(nil), expect(addr)...)
						d[3]++
						shadow[addr] = d
					}
				}

				if err := asyncS.Flush(); err != nil {
					t.Fatal(err)
				}
				if n := asyncS.PendingWriteBacks(); n != 0 {
					t.Fatalf("%d write-backs pending after Flush", n)
				}
				// Full-content comparison through both instances.
				addrs := make([]uint64, blocks)
				for a := range addrs {
					addrs[a] = uint64(a)
				}
				gotSync, err := syncS.ReadBatch(addrs)
				if err != nil {
					t.Fatal(err)
				}
				gotAsync, err := asyncS.ReadBatch(addrs)
				if err != nil {
					t.Fatal(err)
				}
				for a := range addrs {
					want := expect(uint64(a))
					if !bytes.Equal(gotSync[a], want) || !bytes.Equal(gotAsync[a], want) {
						t.Fatalf("final contents diverge at %d: sync=%x async=%x want %x",
							a, gotSync[a], gotAsync[a], want)
					}
				}
				// The async run must actually have exercised deferral.
				if st := asyncS.Stats(); st.DeferredWriteBacks == 0 {
					t.Error("async replay recorded no deferred write-backs")
				}
			})
		}
	}
}

func partName(p Partition) string {
	switch p {
	case PartitionRange:
		return "range"
	case PartitionRandom:
		return "random"
	default:
		return "stripe"
	}
}

// TestAsyncConcurrentClientsDrainOnClose hammers an async sharded ORAM
// from many goroutines (the -race half of the drain test), closes it with
// work still in flight, and checks the drain guarantee: after Close every
// shard is fully written back and its stash is at the synchronous
// protocol's between-access invariant.
func TestAsyncConcurrentClientsDrainOnClose(t *testing.T) {
	const shards = 4
	const blocks = 1024
	const clients = 8
	const opsPer = 150
	s, err := NewSharded(asyncConfig(shards, blocks, PartitionStripe, 21))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Disjoint per-client address slices: read-your-writes holds
			// without cross-client coordination.
			base := uint64(c) * (blocks / clients)
			buf := make([]byte, 16)
			for i := 0; i < opsPer; i++ {
				addr := base + uint64(i)%(blocks/clients)
				binary.LittleEndian.PutUint64(buf, addr)
				if err := s.Write(addr, buf); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				got, err := s.Read(addr)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if binary.LittleEndian.Uint64(got) != addr {
					t.Errorf("client %d: read-your-writes violated at %d", c, addr)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-Close inspection reads the quiescent shards directly.
	if n := s.PendingWriteBacks(); n != 0 {
		t.Errorf("%d write-backs pending after Close", n)
	}
	for i, st := range s.ShardStats() {
		if st.DeferredWriteBacks == 0 && st.RealAccesses > 0 {
			t.Errorf("shard %d: async mode never deferred (%d real accesses)", i, st.RealAccesses)
		}
	}
	// Every shard's stash must be at or below the background-eviction
	// threshold, exactly as the synchronous mode leaves it.
	if s.StashSize() > shards*200 {
		t.Errorf("summed stash %d exceeds %d", s.StashSize(), shards*200)
	}
}

// TestAsyncInspectSnapshotsConsistent takes stats snapshots while async
// traffic is in flight: because inspections flush first, the snapshot
// must never show deferred remainders, and the occupancy gauge must stay
// exact.
func TestAsyncInspectSnapshotsConsistent(t *testing.T) {
	const blocks = 256
	s, err := NewSharded(asyncConfig(4, blocks, PartitionStripe, 31))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, 16)
	written := map[uint64]bool{}
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 400; i++ {
		addr := rng.Uint64() % blocks
		if err := s.Write(addr, buf); err != nil {
			t.Fatal(err)
		}
		written[addr] = true
		if i%50 == 49 {
			st := s.Stats()
			if got, want := st.BlocksInORAM, uint64(len(written)); got != want {
				t.Fatalf("op %d: snapshot BlocksInORAM = %d, want %d", i, got, want)
			}
			if n := s.PendingWriteBacks(); n != 0 {
				t.Fatalf("op %d: %d write-backs survived the snapshot flush", i, n)
			}
		}
	}
}

// TestAsyncSingleORAMWiring covers the public single-ORAM staged API:
// AsyncEviction defers, StepBackground drains, Flush quiesces, and
// ResetStats clears the staged counters while keeping the occupancy
// gauge.
func TestAsyncSingleORAMWiring(t *testing.T) {
	o, err := New(Config{
		Blocks: 128, BlockSize: 16,
		Encryption:    EncryptCounter,
		AsyncEviction: true,
		Rand:          rand.New(rand.NewSource(41)),
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	for a := uint64(0); a < 128; a++ {
		if err := o.Write(a, buf); err != nil {
			t.Fatal(err)
		}
	}
	if o.PendingWriteBacks() == 0 {
		t.Fatal("AsyncEviction on, but nothing deferred")
	}
	st := o.Stats()
	if st.DeferredWriteBacks == 0 || st.PendingWriteBackPeak == 0 {
		t.Fatalf("staged counters flat: %+v", st)
	}
	// Manual idle loop: drain until quiescent.
	for {
		w, err := o.StepBackground(true)
		if err != nil {
			t.Fatal(err)
		}
		if w == BgNone {
			break
		}
	}
	if o.PendingWriteBacks() != 0 {
		t.Errorf("%d write-backs pending after StepBackground drained to BgNone", o.PendingWriteBacks())
	}
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	o.ResetStats()
	st = o.Stats()
	if st.DeferredWriteBacks != 0 || st.IdleEvictions != 0 || st.PendingWriteBackPeak != 0 {
		t.Errorf("ResetStats left staged counters: %+v", st)
	}
	if st.BlocksInORAM != 128 {
		t.Errorf("ResetStats lost the occupancy gauge: %d, want 128", st.BlocksInORAM)
	}
	// Contents survive it all.
	got, err := o.Read(17)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Errorf("read after drain = %x, want %x", got, buf)
	}
}

// TestAsyncLeafSequencesUniform is the security half of the async mode:
// with background eviction running on the idle schedule, every shard's
// complete observed path sequence — real accesses, deferred write-backs'
// reads and idle-time dummies alike — must stay uniform over its leaves,
// for adversarial workloads included. (Write-backs re-touch the same
// uniformly drawn leaf the read revealed; idle dummies draw fresh uniform
// leaves on a schedule that depends only on queue and stash occupancy.)
func TestAsyncLeafSequencesUniform(t *testing.T) {
	const shards = 4
	const blocks = 768
	const leafLevel = 6
	const accesses = 8000
	for name, w := range map[string]func(i int) uint64{
		"hammer": func(i int) uint64 { return 7 },
		"scan":   func(i int) uint64 { return uint64(i) % blocks },
	} {
		t.Run(name, func(t *testing.T) {
			hists := make([][]uint64, shards)
			for i := range hists {
				hists[i] = make([]uint64, 1<<leafLevel)
			}
			s, err := NewSharded(ShardedConfig{
				Shards: shards,
				Config: Config{
					Blocks: blocks, LeafLevel: leafLevel, Z: 4,
					StashCapacity: 150,
					AsyncEviction: true,
					Rand:          rand.New(rand.NewSource(9002)),
				},
				OnShardPathAccess: func(sh int, leaf uint64) { hists[sh][leaf]++ },
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < accesses; i++ {
				if err := s.Write(w(i), nil); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil { // include the close-time drain in the histogram
				t.Fatal(err)
			}
			for sh, counts := range hists {
				var total uint64
				for _, c := range counts {
					total += c
				}
				if total < 500 {
					continue
				}
				if x2 := testutil.ChiSquare(counts); x2 > testutil.UniformThreshold(len(counts)) {
					t.Errorf("shard %d: async leaf distribution not uniform under %q: chi2=%.1f (%d samples)",
						sh, name, x2, total)
				}
			}
		})
	}
}
