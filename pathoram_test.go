package pathoram

import (
	"bytes"
	"math/rand"
	"testing"
)

func testRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestNewDefaults(t *testing.T) {
	o, err := New(Config{Blocks: 1000, BlockSize: 64, Rand: testRand(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: Z=3, utilization 0.5 -> tree holding >= 2000 slots.
	if o.LeafLevel() < 8 {
		t.Errorf("leaf level %d suspiciously small", o.LeafLevel())
	}
	if o.ExternalMemoryBytes() == 0 {
		t.Error("encrypted store should report its footprint")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := New(Config{Blocks: 10, Utilization: 1.5}); err == nil {
		t.Error("utilization > 1 accepted")
	}
	if _, err := New(Config{Blocks: 10, BlockSize: 8, Encryption: EncryptNone, Integrity: true}); err == nil {
		t.Error("integrity without encryption accepted")
	}
}

func TestReadWriteAllSchemes(t *testing.T) {
	for _, enc := range []Encryption{EncryptNone, EncryptCounter, EncryptStrawman} {
		for _, withAuth := range []bool{false, true} {
			if withAuth && enc == EncryptNone {
				continue
			}
			o, err := New(Config{
				Blocks: 256, BlockSize: 32,
				Encryption: enc, Integrity: withAuth,
				Rand: testRand(int64(enc)*10 + 3),
			})
			if err != nil {
				t.Fatalf("enc=%d auth=%v: %v", enc, withAuth, err)
			}
			shadow := map[uint64][]byte{}
			rng := testRand(int64(enc) + 99)
			for i := 0; i < 300; i++ {
				addr := rng.Uint64() % 256
				if rng.Intn(2) == 0 {
					d := make([]byte, 32)
					rng.Read(d)
					if err := o.Write(addr, d); err != nil {
						t.Fatal(err)
					}
					shadow[addr] = d
				} else {
					got, err := o.Read(addr)
					if err != nil {
						t.Fatal(err)
					}
					want, ok := shadow[addr]
					if !ok {
						want = make([]byte, 32)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("enc=%d auth=%v step %d: mismatch", enc, withAuth, i)
					}
				}
			}
		}
	}
}

func TestUpdateAndStats(t *testing.T) {
	o, err := New(Config{Blocks: 64, BlockSize: 8, Rand: testRand(5)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := o.Update(7, func(d []byte) { d[0]++ }); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := o.Read(7)
	if got[0] != 5 {
		t.Errorf("counter=%d want 5", got[0])
	}
	if o.Stats().RealAccesses != 6 {
		t.Errorf("RealAccesses=%d want 6", o.Stats().RealAccesses)
	}
}

func TestExclusiveInterfaceWithSuperBlocks(t *testing.T) {
	o, err := New(Config{
		Blocks: 128, BlockSize: 16, SuperBlockSize: 2, Rand: testRand(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte{1}, 16)
	b := bytes.Repeat([]byte{2}, 16)
	if err := o.Write(10, a); err != nil {
		t.Fatal(err)
	}
	if err := o.Write(11, b); err != nil {
		t.Fatal(err)
	}
	data, found, group, err := o.Load(10)
	if err != nil {
		t.Fatal(err)
	}
	if !found || !bytes.Equal(data, a) {
		t.Fatalf("Load: found=%v data=%x", found, data)
	}
	if len(group) != 1 || group[0].Addr != 11 || !bytes.Equal(group[0].Data, b) {
		t.Fatalf("super-block sibling missing: %+v", group)
	}
	if err := o.Store(10, a); err != nil {
		t.Fatal(err)
	}
	if err := o.Store(11, b); err != nil {
		t.Fatal(err)
	}
	got, _ := o.Read(11)
	if !bytes.Equal(got, b) {
		t.Error("sibling lost after Load/Store round trip")
	}
}

func TestMetadataOnlyForcesPlaintext(t *testing.T) {
	o, err := New(Config{Blocks: 100, Rand: testRand(9)})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Write(5, nil); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Error("metadata-only ORAM returned payload")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() Stats {
		o, err := New(Config{Blocks: 200, BlockSize: 8, StashCapacity: 60, Rand: testRand(42)})
		if err != nil {
			t.Fatal(err)
		}
		rng := testRand(43)
		for i := 0; i < 400; i++ {
			if err := o.Write(rng.Uint64()%200, make([]byte, 8)); err != nil {
				t.Fatal(err)
			}
		}
		return o.Stats()
	}
	if run() != run() {
		t.Error("same seeds produced different stats")
	}
}

func TestHierarchyEndToEnd(t *testing.T) {
	for _, enc := range []Encryption{EncryptNone, EncryptCounter} {
		h, err := NewHierarchy(HierarchyConfig{
			Blocks:          4096,
			BlockSize:       16,
			PosBlockSize:    16,
			OnChipPosMapMax: 512,
			Encryption:      enc,
			Integrity:       enc != EncryptNone,
			Rand:            testRand(11),
		})
		if err != nil {
			t.Fatal(err)
		}
		if h.NumORAMs() < 2 {
			t.Fatalf("expected a real chain, got %d ORAMs", h.NumORAMs())
		}
		if h.OnChipPositionMapBytes() > 512 {
			t.Errorf("on-chip map %dB exceeds budget", h.OnChipPositionMapBytes())
		}
		shadow := map[uint64][]byte{}
		rng := testRand(12)
		for i := 0; i < 400; i++ {
			addr := rng.Uint64() % 4096
			if rng.Intn(2) == 0 {
				d := make([]byte, 16)
				rng.Read(d)
				if err := h.Write(addr, d); err != nil {
					t.Fatal(err)
				}
				shadow[addr] = d
			} else {
				got, err := h.Read(addr)
				if err != nil {
					t.Fatal(err)
				}
				want, ok := shadow[addr]
				if !ok {
					want = make([]byte, 16)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("enc=%d step %d addr %d mismatch", enc, i, addr)
				}
			}
		}
		stats := h.LevelStats()
		if len(stats) != h.NumORAMs() || stats[0].RealAccesses == 0 {
			t.Error("level stats missing")
		}
		if len(h.Layout()) != h.NumORAMs() {
			t.Error("layout length mismatch")
		}
	}
}

func TestHierarchyUpdateLoadStore(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		Blocks: 1024, BlockSize: 8, PosBlockSize: 16,
		OnChipPosMapMax: 256, Rand: testRand(21),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Update(77, func(d []byte) { d[0] = 42 }); err != nil {
		t.Fatal(err)
	}
	data, found, _, err := h.Load(77)
	if err != nil || !found || data[0] != 42 {
		t.Fatalf("Load after Update: %v %v %v", data, found, err)
	}
	data[0] = 43
	if err := h.Store(77, data); err != nil {
		t.Fatal(err)
	}
	got, _ := h.Read(77)
	if got[0] != 43 {
		t.Errorf("after Store read %d want 43", got[0])
	}
}

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(HierarchyConfig{}); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := NewHierarchy(HierarchyConfig{Blocks: 10, Encryption: EncryptNone, Integrity: true}); err == nil {
		t.Error("integrity without encryption accepted")
	}
}

func TestDeriveKeyDistinctPerLevel(t *testing.T) {
	master := make([]byte, 16)
	k0, err := deriveKey(master, 0)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := deriveKey(master, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k0, k1) {
		t.Error("levels share a derived key")
	}
}

func TestObliviousness(t *testing.T) {
	// The core security property at the public API level: the observed
	// path sequence for two very different programs is statistically
	// indistinguishable (same uniform leaf distribution). We compare mean
	// CPL of consecutive paths for a scanning program vs a single-block
	// hammering program.
	meanCPL := func(workload func(i int) uint64) float64 {
		o, err := New(Config{Blocks: 512, BlockSize: 0, StashCapacity: 100, Rand: testRand(33)})
		if err != nil {
			t.Fatal(err)
		}
		// Observe paths via stats: metadata mode, use internal counters.
		// Public API does not expose the trace, so use leaf-level stats:
		// approximate by measuring dummy rate + uniformity via stash
		// behaviour; instead simply ensure both programs complete with
		// identical per-access path counts.
		for i := 0; i < 2000; i++ {
			if err := o.Write(workload(i), nil); err != nil {
				t.Fatal(err)
			}
		}
		s := o.Stats()
		return float64(s.RealAccesses+s.DummyAccesses) / float64(s.RealAccesses)
	}
	scan := meanCPL(func(i int) uint64 { return uint64(i) % 512 })
	hammer := meanCPL(func(i int) uint64 { return 7 })
	// Both must complete; the scan may need more dummy accesses (that is
	// the paper's point about background eviction timing), but the path
	// accesses themselves remain uniformly random either way.
	if scan <= 0 || hammer <= 0 {
		t.Error("workloads did not run")
	}
}
