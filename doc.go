// Package pathoram is a Go implementation of Path ORAM optimized for
// secure processors, reproducing Ren, Yu, Fletcher, van Dijk and Devadas,
// "Design Space Exploration and Optimization of Path Oblivious RAM in
// Secure Processors" (ISCA 2013), grown into a concurrent, sharded
// oblivious block-serving layer.
//
// An ORAM stores fixed-size blocks in an untrusted external memory such
// that the sequence of memory locations touched is computationally
// independent of the program's access pattern. This package provides:
//
//   - the single Path ORAM (New) with the paper's optimizations: provably
//     secure background eviction (Section 3.1), static super blocks
//     (Section 3.2) and the exclusive Load/Store interface for
//     cache-attached use (Section 3.3.1);
//   - randomized bucket encryption: the counter-based scheme of Section
//     2.2.2 (default) or the strawman of Section 2.2.1;
//   - integrity verification via the mirrored authentication tree of
//     Section 5 (tamper and replay detection with no initialization pass);
//   - the hierarchical construction of Section 2.3, which stores the
//     position map in recursively smaller ORAMs (see NewHierarchy);
//   - a sharded, concurrency-safe serving layer (NewSharded): the address
//     space partitioned over N independent Path ORAM shards behind a
//     batched request scheduler, with optional oblivious request routing
//     (PartitionRandom) and padded, fixed-shape batch schedules
//     (ShardedConfig.Padded);
//   - a staged access path (Config.AsyncEviction): respond after path
//     read and stash merge, defer write-back I/O and background eviction
//     to idle queue time — Section 3.1.1's background eviction and the
//     Figure 5 phase-overlap study applied to the serving layer;
//   - a timed storage backend (Config.Backend: BackendDRAM): every
//     shard's bucket I/O charged to one shared cycle-accurate DDR3 model
//     behind a memory-channel scheduler, so the serving layer reports
//     modeled hardware cycles, row-hit rates and bandwidth (TimingStats)
//     — the paper's design-space currency — while staying bit-identical
//     to the untimed backend;
//   - a unified client API: the Client interface, satisfied by ORAM,
//     Hierarchy and Sharded alike, and the Open(Spec) constructor whose
//     declarative Spec composes the design-space axes — Shards: N,
//     PosMap: OnChip|Recursive, Backend: mem|dram — so sharded ORAMs
//     with recursive position maps on a shared timed memory bus are one
//     config literal. Hierarchical shards attach one membus port per
//     level, making the recursion's Figure 5 orderings and Table 2
//     latencies come from live recursive traffic;
//   - pluggable persistent storage (Spec.Backend: BackendFile, Spec.WAL):
//     the ciphertext tree in an mmap'd file with an optional write-ahead
//     log, so the deferred write-back pipeline survives crashes — and a
//     multi-tenant HTTP front end (cmd/oram-server) with per-tenant
//     derived keys and graceful SIGTERM drain.
//
// # Architecture
//
// Protocol correctness lives in single-threaded code; concurrency lives in
// one place, the shard scheduler. The package map, with the paper sections
// each piece reproduces:
//
//   - internal/treemath — binary-tree index arithmetic: bucket numbering,
//     path enumeration, the common-path-length metric (Section 2.1).
//   - internal/core — the Path ORAM protocol: stash, greedy path eviction,
//     background eviction (Section 3.1), super blocks (Section 3.2), the
//     exclusive Load/Store interface (Section 3.3.1), position maps and
//     leaf sources. Deliberately lock-free and single-threaded.
//   - internal/encrypt — the two randomized bucket-encryption schemes
//     (Sections 2.2.1 and 2.2.2) and the encrypting path store.
//   - internal/integrity — the mirrored authentication tree (Section 5).
//   - internal/hierarchy — the recursive position-map construction
//     (Sections 2.3 and 3.3.3), a full serving-layer engine: per-level
//     deferred write-backs, chain-order padding accesses, coordinated
//     background rounds.
//   - internal/shard — the serving layer's worker pool and batched request
//     scheduler: one goroutine per shard owning one engine exclusively
//     (flat trees and hierarchies alike), with first-class dummy requests
//     for padded schedules and exclusive Load/Store ops.
//   - internal/placement — bucket-to-DRAM address layouts, including the
//     subtree packing of Section 3.3.4 (Figure 6).
//   - internal/dram — an event-driven DDR3 timing model standing in for
//     DRAMSim2 (Section 4.2, Figure 11).
//   - internal/membus — the shared memory-channel scheduler of the timed
//     serving layer: one dram.System for all trees, per-tree ports with
//     their own modeled clocks and subtree/naive layouts (one port per
//     hierarchy level, chained within a shard), so different shards'
//     path reads and write-backs interleave on the modeled channels
//     (the Figure 5 orderings between shards).
//   - internal/cache, internal/cpu — the processor model of Table 1: the
//     exclusive L1/L2 hierarchy and the in-order core timing model whose
//     line memory is DRAM or ORAM (Sections 3.3.1 and 4.3).
//   - internal/trace — synthetic instruction/memory streams standing in
//     for the SPEC2006 traces (Section 4.3, Figure 12).
//   - internal/hide — the HIDE-style chunk permuter used as the paper's
//     Section 6.2 comparison point.
//   - internal/analysis — the paper's analytical storage/overhead model
//     (Equations 1-2, Sections 2.2-2.4 and 3.1.4).
//   - internal/stats — histograms and running summaries for the
//     experiment harnesses (Figure 3's tail probabilities).
//   - internal/storage — the bucket-granularity persistence seam under
//     internal/encrypt: an in-memory arena, the mmap'd flat tree file,
//     and the write-ahead log that makes acknowledged deferred
//     write-backs crash-durable (checkpoint = log fsync, apply, msync,
//     truncate).
//   - internal/service — the multi-tenant HTTP serving layer behind
//     cmd/oram-server: one Client per tenant under a domain-separated
//     derived key, JSON and streaming NDJSON batch endpoints, graceful
//     drain.
//   - internal/exp — the experiment runners regenerating every figure and
//     table of the evaluation; cmd/* are their command-line drivers, and
//     cmd/oram-serve drives the sharded serving layer.
//
// The serving layer's threat model — what an adversary observing per-shard
// traffic and request routing learns under each partition and batch mode —
// is written out in SECURITY.md; DESIGN.md covers the architecture and
// EXPERIMENTS.md maps the paper's evaluation (and the serving-layer
// additions) to runnable harnesses.
package pathoram
