package pathoram

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/shard"
)

// This file implements PartitionRandom: oblivious request routing in the
// style of Stefanov-Shi-Song partitioned ORAM. The router keeps a second
// position map — block → shard — and remaps every block to a freshly drawn
// uniform shard on each access, so the shard serving a request is a
// function of secret internal coins, never of the logical address. The
// obliviousness argument, what each mode leaks, and the protocol's padded
// batch shape are written out in SECURITY.md; the design trade-offs
// (storage, the single-op correlation leak) in DESIGN.md.
//
// Composition with AsyncEviction: both legs of the two-leg protocol ride
// the shard pool's ordinary request path, so under the staged access path
// each leg's response is released after its path read and stash merge,
// and the legs' write-backs complete on their respective shards' idle
// time. The router map is still updated only after the relocation leg's
// engine has accepted the write (logically complete; its write-back I/O
// may be pending), which is exactly the consistency point the overlay
// guarantees — a re-access fetches through the new home's pending content
// if it arrives before the flush.

// shardDrawer draws uniform shard indices from a LeafSource. LeafSource
// only draws over powers of two, so non-power-of-two shard counts use
// rejection sampling. Draw consumption depends only on the underlying
// random stream, never on the addresses being routed — the property the
// adversary-view tests rely on when they replay different address patterns
// against one seed.
type shardDrawer struct {
	mu   sync.Mutex
	src  core.LeafSource
	n    uint64
	pow2 uint64
}

func newShardDrawer(src core.LeafSource, n int) *shardDrawer {
	p := uint64(1)
	for p < uint64(n) {
		p <<= 1
	}
	return &shardDrawer{src: src, n: uint64(n), pow2: p}
}

// draw returns one uniform shard index.
func (d *shardDrawer) draw() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.drawLocked()
}

func (d *shardDrawer) drawLocked() int {
	for {
		if v := d.src.Leaf(d.pow2); v < d.n {
			return int(v)
		}
	}
}

// drawMany returns k uniform shard indices drawn under one lock, in order.
func (d *shardDrawer) drawMany(k int) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int, k)
	for i := range out {
		out[i] = d.drawLocked()
	}
	return out
}

// unassignedShard marks a block that has never been routed.
const unassignedShard int32 = -1

// randomRouter is the block→shard position map behind PartitionRandom.
//
// Locking: batches take mu exclusively (they read and remap many entries
// and must not interleave with other router traffic); single operations
// take mu shared plus the address's stripe lock, so operations on
// different addresses proceed concurrently while two operations on the
// same address — whose two-leg protocols must not interleave — serialize.
// pmap itself needs no lock of its own: entry addr is only ever touched
// under addr's stripe lock or under the exclusive mu, and concurrent
// writes to distinct slice elements are race-free.
type randomRouter struct {
	mu      sync.RWMutex
	stripes [64]sync.Mutex
	pmap    []int32
	draws   *shardDrawer
}

func newRandomRouter(blocks uint64, draws *shardDrawer) *randomRouter {
	r := &randomRouter{pmap: make([]int32, blocks), draws: draws}
	for i := range r.pmap {
		r.pmap[i] = unassignedShard
	}
	return r
}

// lookup returns the block's current shard assignment. Callers hold
// addr's stripe lock or the exclusive router lock.
func (r *randomRouter) lookup(addr uint64) (shard int, assigned bool) {
	s := r.pmap[addr]
	return int(s), s != unassignedShard
}

// set records the block's new home. Same locking contract as lookup.
func (r *randomRouter) set(addr uint64, sh int) {
	r.pmap[addr] = int32(sh)
}

// randomAccess is the single-operation protocol under PartitionRandom:
//
//  1. read the block from its current home shard (assigned at the previous
//     access; a fresh uniform draw for a never-routed block);
//  2. apply the operation to the fetched value locally;
//  3. write the result to a freshly drawn uniform shard and remap.
//
// Every operation — read, write or update alike — performs exactly one
// path access on each of two uniformly distributed shards, so operation
// types are indistinguishable and the marginal shard distribution carries
// no address information. The remap is what keeps the next access to the
// same block uniform. (A bus adversary can still correlate leg 2 of one
// operation with leg 1 of a re-access of the same block; padded batches
// close that — see SECURITY.md, "random partition".)
func (s *Sharded) randomAccess(addr uint64, op shard.Op, data []byte, fn func([]byte)) ([]byte, error) {
	if err := s.checkAddr(addr); err != nil {
		return nil, err
	}
	if op == shard.OpUpdate && s.blockSize == 0 {
		return nil, fmt.Errorf("pathoram: Update requires payloads (metadata-only ORAM)")
	}
	r := s.router
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := &r.stripes[addr%uint64(len(r.stripes))]
	st.Lock()
	defer st.Unlock()

	home, assigned := r.lookup(addr)
	if !assigned {
		home = r.draws.draw()
	}
	read := shard.Request{Op: shard.OpRead, Addr: addr}
	if err := s.pool.Do(home, &read); err != nil {
		return nil, err
	}
	value := read.Out

	var out []byte
	switch op {
	case shard.OpRead:
		// The fetched copy doubles as the relocated payload; the write
		// leg's engine copies it in, so handing it to the caller is safe.
		out = value
	case shard.OpWrite:
		value = data
	case shard.OpUpdate:
		// fn runs on the caller's goroutine here (unlike the fixed
		// partitions, where it runs on the shard worker): the value is
		// already checked out of the ORAM between the two legs.
		fn(value)
	}

	newHome := r.draws.draw()
	write := shard.Request{Op: shard.OpWrite, Addr: addr, Data: value}
	if err := s.pool.Do(newHome, &write); err != nil {
		// The relocation failed: the block's authoritative copy is still
		// at its old home, so the map is left untouched.
		return nil, err
	}
	r.set(addr, newHome)
	return out, nil
}

// randomBatch executes a homogeneous batch (all reads or all writes) under
// PartitionRandom. Duplicate addresses are coalesced: the block is fetched
// once, the operations apply to it in slice order (so WriteBatch keeps its
// later-write-wins guarantee), and one relocation writes the final value.
// In padded mode every request still produces exactly one leg per phase —
// duplicates contribute dummy legs on fresh uniform shards — and each
// phase's schedule is dummy-filled until every shard is touched the same
// number of times. data is nil for read batches; results is nil for write
// batches.
func (s *Sharded) randomBatch(addrs []uint64, data [][]byte, op shard.Op) ([][]byte, error) {
	for _, a := range addrs {
		if err := s.checkAddr(a); err != nil {
			return nil, err
		}
	}
	k := len(addrs)
	r := s.router
	r.mu.Lock()
	defer r.mu.Unlock()

	// The batch's coin sequence: two draws per request, consumed in
	// request order. Consumption is a function of the batch size alone,
	// so two batches of equal size consume identical coin positions no
	// matter which addresses they name.
	coins := r.draws.drawMany(2 * k)

	// Dedup in first-occurrence order.
	type block struct {
		addr    uint64
		home    int // current shard
		newHome int // fresh draw from the first occurrence
		read    shard.Request
		write   shard.Request
	}
	index := make(map[uint64]int, k)
	blocks := make([]*block, 0, k)
	var readShards []int
	var readReqs []*shard.Request
	var padShards []int // duplicate dummy legs, read phase ... write phase
	var padWriteShards []int
	for i, a := range addrs {
		d1, d2 := coins[2*i], coins[2*i+1]
		if _, seen := index[a]; seen {
			if s.padded {
				padShards = append(padShards, d1)
				padWriteShards = append(padWriteShards, d2)
			}
			continue
		}
		home, assigned := r.lookup(a)
		if !assigned {
			home = d1
		}
		b := &block{addr: a, home: home, newHome: d2}
		b.read = shard.Request{Op: shard.OpRead, Addr: a}
		index[a] = len(blocks)
		blocks = append(blocks, b)
		readShards = append(readShards, home)
		readReqs = append(readReqs, &b.read)
	}

	// Phase 1: fetch every distinct block from its current home.
	for _, sh := range padShards {
		req := &shard.Request{Op: shard.OpPadding}
		readShards = append(readShards, sh)
		readReqs = append(readReqs, req)
	}
	if s.padded {
		readShards, readReqs = s.padSchedule(readShards, readReqs, k)
	}
	if err := s.pool.DoBatch(readShards, readReqs); err != nil {
		// A failed fetch leaves every block at its old home; nothing has
		// been remapped, so the router map is still consistent.
		return nil, err
	}

	// Apply the operations locally. values[j] is block j's content after
	// the batch: for writes, applying payloads in slice order keeps the
	// later-write-wins guarantee.
	values := make([][]byte, len(blocks))
	for i, b := range blocks {
		values[i] = b.read.Out
	}
	if op == shard.OpWrite {
		for i, a := range addrs {
			values[index[a]] = data[i]
		}
	}
	var results [][]byte
	if op == shard.OpRead {
		// Each result slot gets its own copy: the first occurrence takes
		// the fetched buffer, duplicates get fresh copies so callers can
		// mutate results independently.
		results = make([][]byte, k)
		handed := make([]bool, len(blocks))
		for i, a := range addrs {
			bi := index[a]
			switch {
			case !handed[bi]:
				results[i] = values[bi]
				handed[bi] = true
			case values[bi] != nil:
				results[i] = append([]byte(nil), values[bi]...)
			}
		}
	}

	// Phase 2: relocate every distinct block to its fresh home.
	var writeShards []int
	var writeReqs []*shard.Request
	for _, b := range blocks {
		b.write = shard.Request{Op: shard.OpWrite, Addr: b.addr, Data: values[index[b.addr]]}
		writeShards = append(writeShards, b.newHome)
		writeReqs = append(writeReqs, &b.write)
	}
	for _, sh := range padWriteShards {
		req := &shard.Request{Op: shard.OpPadding}
		writeShards = append(writeShards, sh)
		writeReqs = append(writeReqs, req)
	}
	if s.padded {
		writeShards, writeReqs = s.padSchedule(writeShards, writeReqs, k)
	}
	err := s.pool.DoBatch(writeShards, writeReqs)
	for _, b := range blocks {
		if b.write.Err == nil {
			r.set(b.addr, b.newHome)
		}
	}
	if err != nil {
		return results, err
	}
	return results, nil
}

// padSchedule appends OpPadding requests so that every shard appears in
// the schedule exactly the same number of times: the larger of
// ceil(batchSize/shards) and the busiest shard's real demand. The returned
// per-shard counts are therefore equal across shards for any input, and —
// under PartitionRandom, where demand is a function of uniform coins — the
// whole shape is independent of the requested addresses.
func (s *Sharded) padSchedule(shards []int, reqs []*shard.Request, batchSize int) ([]int, []*shard.Request) {
	n := len(s.engines)
	demand := make([]int, n)
	for _, sh := range shards {
		demand[sh]++
	}
	rounds := (batchSize + n - 1) / n
	for _, d := range demand {
		if d > rounds {
			rounds = d
		}
	}
	for sh := 0; sh < n; sh++ {
		for d := demand[sh]; d < rounds; d++ {
			shards = append(shards, sh)
			reqs = append(reqs, &shard.Request{Op: shard.OpPadding})
		}
	}
	return shards, reqs
}

// paddedFixedBatch is the padded batch path for the fixed partitions
// (stripe and range): requests route to their partition-determined shards
// as usual, and the schedule is dummy-filled so that every shard is
// touched equally often. Within the batch the adversary cannot tell which
// slots carried real requests; what remains visible is the shape itself —
// max per-shard demand — which under a fixed partition is still a function
// of the addresses (see the decision table in DESIGN.md).
func (s *Sharded) paddedFixedBatch(addrs []uint64, build func(i int, local uint64) shard.Request) ([]*shard.Request, error) {
	reqs, shards, err := s.batchRequests(addrs, build)
	if err != nil {
		return nil, err
	}
	real := len(reqs)
	shards, reqs = s.padSchedule(shards, reqs, len(addrs))
	if err := s.pool.DoBatch(shards, reqs); err != nil {
		return reqs[:real], err
	}
	return reqs[:real], nil
}
