package pathoram

import (
	crand "crypto/rand"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/encrypt"
	"repro/internal/hierarchy"
	"repro/internal/treemath"
)

// HierarchyConfig describes a hierarchical Path ORAM (Section 2.3): the
// data ORAM's position map lives in a second ORAM, recursively, until the
// final map fits on-chip.
type HierarchyConfig struct {
	// Blocks is the number of addressable data blocks.
	Blocks uint64
	// BlockSize is the data ORAM's block size in bytes (128 in the paper;
	// 0 = metadata-only data ORAM for simulation).
	BlockSize int
	// DataZ / PosZ are bucket capacities (paper: DZ3Pb32 uses 3 and 3).
	DataZ, PosZ int
	// PosBlockSize is the position-map ORAM block size (Section 3.3.3;
	// the paper's best practical choice is 32 bytes).
	PosBlockSize int
	// OnChipPosMapMax bounds the final on-chip position map in bytes
	// (default 200 KB, Section 4.1.5).
	OnChipPosMapMax uint64
	// Utilization sizes the data ORAM tree (default 0.5).
	Utilization float64
	// SuperBlockSize statically merges adjacent data blocks.
	SuperBlockSize int
	// StashCapacity is C per ORAM (default 200).
	StashCapacity int
	// Encryption selects the bucket encryption for every level. Each
	// level gets an independent key derived from Key so one-time pads are
	// never shared across trees.
	Encryption Encryption
	// Key is the 16-byte master key (random if nil).
	Key []byte
	// Integrity enables a Section 5 authentication tree per level.
	Integrity bool
	// Rand makes the construction deterministic (simulation only).
	Rand *rand.Rand
}

// Hierarchy is a hierarchical Path ORAM.
type Hierarchy struct {
	inner *hierarchy.ORAM
	cfg   HierarchyConfig
}

// NewHierarchy builds the chain. Every ORAM in it — the data ORAM and all
// position-map ORAMs — gets its own store with the configured encryption
// and (optionally) integrity layer, and background eviction is coordinated
// across the chain exactly as in Section 3.1.1.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if cfg.Blocks == 0 {
		return nil, fmt.Errorf("pathoram: Blocks must be >= 1")
	}
	if cfg.DataZ == 0 {
		cfg.DataZ = 3
	}
	if cfg.PosZ == 0 {
		cfg.PosZ = 3
	}
	if cfg.PosBlockSize == 0 {
		cfg.PosBlockSize = 32
	}
	if cfg.StashCapacity == 0 {
		cfg.StashCapacity = 200
	}
	if cfg.Integrity && cfg.Encryption == EncryptNone {
		return nil, fmt.Errorf("pathoram: integrity verification requires encryption")
	}
	if cfg.Key == nil {
		cfg.Key = make([]byte, encrypt.KeySize)
		if _, err := crand.Read(cfg.Key); err != nil {
			return nil, fmt.Errorf("pathoram: drawing key: %w", err)
		}
	}
	var leaves core.LeafSource
	if cfg.Rand != nil {
		leaves = core.NewMathLeafSource(cfg.Rand)
	} else {
		leaves = core.NewCryptoLeafSource()
	}
	factory := hierarchy.MemStoreFactory
	if cfg.Encryption != EncryptNone {
		factory = func(level int, leafLevel, z, blockBytes int) (core.PathStore, error) {
			if blockBytes == 0 {
				// Metadata-only data ORAM: nothing to encrypt.
				return core.NewMemStore(leafLevel, z, blockBytes)
			}
			key, err := deriveKey(cfg.Key, level)
			if err != nil {
				return nil, err
			}
			sub := Config{
				Encryption: cfg.Encryption,
				Key:        key,
				Rand:       cfg.Rand,
			}
			scheme, err := sub.buildScheme(treemath.New(leafLevel).NumBuckets())
			if err != nil {
				return nil, err
			}
			scfg := encrypt.StoreConfig{
				LeafLevel: leafLevel, Z: z, BlockBytes: blockBytes, Scheme: scheme,
			}
			if cfg.Integrity {
				scfg.Auth = encrypt.NewAuthTree(leafLevel, z, blockBytes, scheme)
			}
			return encrypt.NewStore(scfg)
		}
	}
	inner, err := hierarchy.New(hierarchy.Config{
		Blocks:             cfg.Blocks,
		DataBlockBytes:     cfg.BlockSize,
		DataZ:              cfg.DataZ,
		PosZ:               cfg.PosZ,
		DataUtilization:    cfg.Utilization,
		PosBlockBytes:      cfg.PosBlockSize,
		OnChipPosMapMax:    cfg.OnChipPosMapMax,
		SuperBlock:         cfg.SuperBlockSize,
		StashCapacity:      cfg.StashCapacity,
		BackgroundEviction: true,
		NewStore:           factory,
		Leaves:             leaves,
	})
	if err != nil {
		return nil, err
	}
	return &Hierarchy{inner: inner, cfg: cfg}, nil
}

// deriveKey expands the master key into an independent per-level key
// (deriveSubKey in the hierarchy domain). Distinct levels therefore never
// share one-time pads even though bucket IDs repeat across trees.
func deriveKey(master []byte, level int) ([]byte, error) {
	return deriveSubKey(master, domainHierarchy, uint64(level))
}

// Read returns a copy of the data block at addr. One path access in every
// ORAM of the chain (position-map ORAMs first, Section 2.3).
func (h *Hierarchy) Read(addr uint64) ([]byte, error) {
	return h.inner.Access(addr, core.OpRead, nil)
}

// Write replaces the data block at addr.
func (h *Hierarchy) Write(addr uint64, data []byte) error {
	_, err := h.inner.Access(addr, core.OpWrite, data)
	return err
}

// Update applies fn to the block in one oblivious read-modify-write.
func (h *Hierarchy) Update(addr uint64, fn func(data []byte)) error {
	return h.inner.Update(addr, fn)
}

// Load is the exclusive read through the hierarchy (Section 3.3.1).
func (h *Hierarchy) Load(addr uint64) (data []byte, found bool, group []Block, err error) {
	data, found, slots, err := h.inner.Load(addr)
	if err != nil {
		return nil, false, nil, err
	}
	for _, s := range slots {
		group = append(group, Block{Addr: s.Addr, Data: s.Data})
	}
	return data, found, group, nil
}

// Store returns a checked-out block to the data ORAM's stash without any
// path access.
func (h *Hierarchy) Store(addr uint64, data []byte) error {
	return h.inner.Store(addr, data)
}

// NumORAMs returns H, the number of ORAMs in the chain.
func (h *Hierarchy) NumORAMs() int { return h.inner.NumORAMs() }

// OnChipPositionMapBytes returns the final position map's size.
func (h *Hierarchy) OnChipPositionMapBytes() uint64 { return h.inner.OnChipPosMapBytes() }

// LevelStats returns per-level protocol counters (index 0 = data ORAM).
func (h *Hierarchy) LevelStats() []Stats { return h.inner.Stats() }

// DummyRounds returns the number of coordinated background-eviction rounds.
func (h *Hierarchy) DummyRounds() uint64 { return h.inner.DummyRounds() }

// DummyPerReal returns the hierarchy-level DA/RA factor of Equation 2.
func (h *Hierarchy) DummyPerReal() float64 { return h.inner.DummyPerReal() }

// Layout describes the sized chain for reporting.
func (h *Hierarchy) Layout() []hierarchy.LevelInfo { return h.inner.Layout() }
