package pathoram

import (
	crand "crypto/rand"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/encrypt"
	"repro/internal/hierarchy"
	"repro/internal/membus"
	"repro/internal/storage"
	"repro/internal/treemath"
)

// HierarchyConfig describes a hierarchical Path ORAM (Section 2.3): the
// data ORAM's position map lives in a second ORAM, recursively, until the
// final map fits on-chip.
type HierarchyConfig struct {
	// Blocks is the number of addressable data blocks.
	Blocks uint64
	// BlockSize is the data ORAM's block size in bytes (128 in the paper;
	// 0 = metadata-only data ORAM for simulation).
	BlockSize int
	// DataZ / PosZ are bucket capacities (paper: DZ3Pb32 uses 3 and 3).
	DataZ, PosZ int
	// PosBlockSize is the position-map ORAM block size (Section 3.3.3;
	// the paper's best practical choice is 32 bytes).
	PosBlockSize int
	// OnChipPosMapMax bounds the final on-chip position map in bytes
	// (default 200 KB, Section 4.1.5).
	OnChipPosMapMax uint64
	// Utilization sizes the data ORAM tree (default 0.5).
	Utilization float64
	// SuperBlockSize statically merges adjacent data blocks.
	SuperBlockSize int
	// StashCapacity is C per ORAM (default 200).
	StashCapacity int
	// Encryption selects the bucket encryption for every level. Each
	// level gets an independent key derived from Key so one-time pads are
	// never shared across trees.
	Encryption Encryption
	// Key is the 16-byte master key (random if nil).
	Key []byte
	// Integrity enables a Section 5 authentication tree per level.
	Integrity bool
	// ConstantTimeStash enables fixed-length masked stash scans on every
	// level of the chain (see Config.ConstantTimeStash).
	ConstantTimeStash bool
	// AsyncEviction enables the staged access path on every level of the
	// chain: Read/Write/Update return once every level's path has been
	// read and merged and its eviction placement computed; the write-back
	// I/O of all levels is deferred onto bounded per-level queues, drained
	// by StepBackground (shard workers call it automatically) and Flush.
	// Stash and position-map state stay bit-identical to the synchronous
	// protocol; logical contents are never stale.
	AsyncEviction bool
	// MaxDeferredWriteBacks caps each level's deferred write-back queue
	// under AsyncEviction (default core.DefaultMaxDeferredWriteBacks).
	// With BackendDRAM each level's queue is that tree's modeled
	// write-buffer depth, exactly as for a flat ORAM.
	MaxDeferredWriteBacks int
	// Backend selects the bucket storage backend for every level (default
	// BackendMem). BackendDRAM attaches one membus port per level — every
	// ORAM of the chain owns a disjoint row-aligned region of one shared
	// DDR3 model — so TimingStats reports modeled cycles for the live
	// recursive traffic: H path reads and H write-backs per access, in
	// chain order (the Figure 5(a) serialized ordering within an access;
	// different shards of a sharded deployment still overlap).
	Backend Backend
	// DRAMChannels is the number of independent DDR3 channels under
	// BackendDRAM (default 2). Inside a sharded deployment every shard —
	// and every level of every shard — shares one memory system.
	DRAMChannels int
	// DRAMLayout selects the bucket-to-row placement under BackendDRAM
	// (default LayoutSubtree).
	DRAMLayout DRAMLayout
	// DRAMSerialize is the no-overlap modeling baseline (see
	// Config.DRAMSerialize).
	DRAMSerialize bool
	// DRAMSched, DRAMQueueDepth, DRAMStarveCap select the controller's
	// command scheduling (see Config.DRAMSched): in-order issue or the
	// open FR-FCFS queue, shared by every level of the chain.
	DRAMSched      MemSched
	DRAMQueueDepth int
	DRAMStarveCap  int
	// PLBBytes provisions the position-map lookaside cache of Section
	// 3.3.3: a small set-associative write-back LRU of group→leaf labels
	// in front of every position-map interface (the byte budget splits
	// evenly across them). A hit makes the cached label authoritative and
	// skips the backing access and every smaller ORAM above it — the
	// chain-shortening acceleration the paper pairs with recursion. Dirty
	// evictions and Flush write the exact cached label back, so logical
	// state stays bit-identical to the uncached protocol. 0 disables.
	PLBBytes uint64
	// PLBConstantShape pads every PLB hit with dummy-shaped accesses to
	// the elided levels so hits and misses are indistinguishable on the
	// wire — the oblivious endpoint of the PLB axis (see SECURITY.md; the
	// default leaks chain length per access). Requires PLBBytes > 0.
	PLBConstantShape bool
	// Overlap enables the Figure 5(b) speculative cross-request overlap
	// under BackendDRAM: the chain scheduler keeps the last Overlap
	// rounds' data-ORAM completions in a window, and a new round's
	// smallest-ORAM stages may issue as soon as the oldest windowed round
	// completed — request t+1's posmap walk overlaps request t's data
	// access. Within one round the Figure 5(a) dependency is preserved: a
	// level never issues before the posmap stage that named its path
	// completed. Each level's port also accepts two stages in flight, so
	// one round's write-back overlaps the next round's read of the same
	// tree. 0 keeps the strictly serial 5(a) chain clock. Requires
	// BackendDRAM without DRAMSerialize.
	Overlap int
	// Dir is the directory holding the per-level tree (and WAL) files
	// under BackendFile: every ORAM of the chain persists in its own
	// file, named <prefix>-l<level>. Required there, rejected elsewhere.
	Dir string
	// WAL wraps every level's tree file in a write-ahead log under
	// BackendFile (see Config.WAL); WALDepth bounds each log between
	// Flushes (see Config.WALDepth).
	WAL      bool
	WALDepth int
	// Rand makes the construction deterministic (simulation only).
	Rand *rand.Rand
	// OnPathAccess, when set, observes every path access in the whole
	// chain, in order: level 0 is the data ORAM, higher levels the
	// recursively smaller position-map ORAMs. This is the adversary's
	// full view of one hierarchy's traffic. It runs synchronously on the
	// accessing goroutine.
	OnPathAccess func(level int, leaf uint64)
	// bus, when set, attaches every level to an existing shared memory
	// scheduler instead of creating one — Open injects the bus it built so
	// all shards (and all their levels) contend for the same channels.
	bus *membus.Bus
	// storeName is the per-chain file-name prefix under BackendFile
	// ("oram" standalone; NewSharded injects a per-shard prefix).
	storeName string
}

// Hierarchy is a hierarchical Path ORAM. Like ORAM it is single-threaded —
// one goroutine owns it — and satisfies Client: the sharded serving layer
// can run one Hierarchy per shard behind its request scheduler (see Open
// with PosMap: PosMapRecursive).
type Hierarchy struct {
	inner *hierarchy.ORAM
	cfg   HierarchyConfig
	// ports holds one membus port per level under BackendDRAM (attach
	// order: smallest position-map ORAM first, data ORAM last — the
	// construction order of the chain).
	ports []*membus.Port
	// footprints collects the per-level external-memory accountants.
	footprints []interface{ MemoryBytes() uint64 }
	// persists holds each level's durable storage under BackendFile, in
	// construction order: Flush syncs them all, Close closes them all.
	persists []storage.Storage
}

// chainSched is the modeled clock of one hierarchy's recursion chain. In
// the default 5(a) mode it is a single monotone clock (chain): every stage
// of every round arrives after the previous stage completed — the strictly
// serial ordering of Figure 5(a). In overlap mode (Figure 5(b)) it keeps
// two pieces of state instead: dep, the completion of the most recent read
// within the current round (the naming dependency — a level's path address
// comes out of the posmap read before it, so its read may not arrive
// earlier); and ring, the data-ORAM completions of the last depth rounds.
// beginRound resets dep to the oldest windowed completion, so a new
// round's smallest-ORAM stages issue while up to depth-1 earlier rounds
// are still in their data stages — cross-request speculation bounded by
// the window. All state is owned by the hierarchy's single goroutine.
type chainSched struct {
	overlap bool
	chain   uint64   // 5(a): shared serial clock
	dep     uint64   // 5(b): naming dependency within the current round
	ring    []uint64 // 5(b): last depth rounds' data-stage completions
	head    int
}

// beginRound opens a new chain round: the round's first stage may issue as
// soon as the oldest in-window round has completed its data stage.
func (s *chainSched) beginRound() {
	if s.overlap {
		s.dep = s.ring[s.head]
	}
}

func (s *chainSched) noteData(done uint64) {
	s.ring[s.head] = done
	s.head = (s.head + 1) % len(s.ring)
}

// levelTimer chains one hierarchy level's port onto the chain's scheduler:
// within one round, a level's path is named by the position-map access
// that preceded it, so its read must not arrive in modeled time before
// that access completed — even though every level keeps its own port (and
// physical region). Flat shards get the same serialization for free from
// their single port's readyAt; this is the multi-port generalization. In
// overlap mode only reads advance the dependency (a write-back publishes
// no label), so one level's write-back overlaps the next level's read —
// and across rounds the scheduler's window lets consecutive requests
// pipeline. The scheduler is owned by the hierarchy's single goroutine;
// the port methods take the bus lock.
type levelTimer struct {
	port     *membus.Port
	sched    *chainSched
	level    int
	lastRead uint64 // this level's latest read completion (overlap mode)
}

func (t *levelTimer) ReadPath(leaf uint64, skip []bool) {
	if !t.sched.overlap {
		t.port.AdvanceTo(t.sched.chain)
		t.port.ReadPath(leaf, skip)
		if r := t.port.ReadyAt(); r > t.sched.chain {
			t.sched.chain = r
		}
		return
	}
	t.port.AdvanceTo(t.sched.dep)
	t.port.ReadPath(leaf, skip)
	done := t.port.ReadyAt()
	t.lastRead = done
	if done > t.sched.dep {
		t.sched.dep = done
	}
	if t.level == 0 {
		t.sched.noteData(done)
	}
}

func (t *levelTimer) WritePath(leaf uint64, deferred bool) {
	if !t.sched.overlap {
		t.port.AdvanceTo(t.sched.chain)
		t.port.WritePath(leaf, deferred)
		if r := t.port.ReadyAt(); r > t.sched.chain {
			t.sched.chain = r
		}
		return
	}
	// A write-back depends only on its own round's read of the same tree
	// (the path content it rewrites); it publishes nothing the chain below
	// waits for, so it does not advance dep.
	t.port.AdvanceTo(t.lastRead)
	t.port.WritePath(leaf, deferred)
}

// NewHierarchy builds the chain. Every ORAM in it — the data ORAM and all
// position-map ORAMs — gets its own store with the configured encryption
// and (optionally) integrity layer, and background eviction is coordinated
// across the chain exactly as in Section 3.1.1. Under BackendDRAM every
// level also gets its own port on the (shared or private) memory bus.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if cfg.Blocks == 0 {
		return nil, fmt.Errorf("pathoram: Blocks must be >= 1")
	}
	if cfg.DataZ == 0 {
		cfg.DataZ = 3
	}
	if cfg.PosZ == 0 {
		cfg.PosZ = 3
	}
	if cfg.PosBlockSize == 0 {
		cfg.PosBlockSize = 32
	}
	if cfg.StashCapacity == 0 {
		cfg.StashCapacity = 200
	}
	if cfg.Integrity && cfg.Encryption == EncryptNone {
		return nil, fmt.Errorf("pathoram: integrity verification requires encryption")
	}
	switch cfg.Backend {
	case BackendMem, BackendDRAM:
		if cfg.Dir != "" || cfg.WAL || cfg.WALDepth != 0 {
			return nil, fmt.Errorf("pathoram: Dir/WAL/WALDepth parameterize the persistent backend; set Backend: BackendFile")
		}
	case BackendFile:
		if cfg.Dir == "" {
			return nil, fmt.Errorf("pathoram: BackendFile needs Dir (where the tree files live)")
		}
		if cfg.BlockSize == 0 {
			return nil, fmt.Errorf("pathoram: BackendFile persists payloads; metadata-only mode (BlockSize 0) has nothing to persist")
		}
		if !cfg.WAL && cfg.WALDepth != 0 {
			return nil, fmt.Errorf("pathoram: WALDepth bounds the write-ahead log; set WAL: true")
		}
	default:
		return nil, fmt.Errorf("pathoram: unknown backend %d", cfg.Backend)
	}
	if cfg.storeName == "" {
		cfg.storeName = "oram"
	}
	switch cfg.DRAMLayout {
	case LayoutSubtree, LayoutNaive:
	default:
		return nil, fmt.Errorf("pathoram: unknown DRAM layout %d", cfg.DRAMLayout)
	}
	switch cfg.DRAMSched {
	case MemSchedInOrder, MemSchedFRFCFS:
	default:
		return nil, fmt.Errorf("pathoram: unknown memory scheduler %d", cfg.DRAMSched)
	}
	if cfg.DRAMQueueDepth < 0 || cfg.DRAMStarveCap < 0 {
		return nil, fmt.Errorf("pathoram: DRAMQueueDepth/DRAMStarveCap must be >= 0")
	}
	if cfg.DRAMSched != MemSchedFRFCFS && (cfg.DRAMQueueDepth != 0 || cfg.DRAMStarveCap != 0) {
		return nil, fmt.Errorf("pathoram: DRAMQueueDepth/DRAMStarveCap parameterize the open queue; set DRAMSched: MemSchedFRFCFS")
	}
	if cfg.Overlap < 0 {
		return nil, fmt.Errorf("pathoram: Overlap must be >= 0")
	}
	if cfg.Overlap > 0 {
		if cfg.Backend != BackendDRAM {
			return nil, fmt.Errorf("pathoram: Overlap schedules modeled memory time; set Backend: BackendDRAM")
		}
		if cfg.DRAMSerialize {
			return nil, fmt.Errorf("pathoram: Overlap and DRAMSerialize are contradictory schedules; drop one")
		}
	}
	if cfg.PLBConstantShape && cfg.PLBBytes == 0 {
		return nil, fmt.Errorf("pathoram: PLBConstantShape pads PLB hits; set PLBBytes > 0")
	}
	if cfg.Key == nil {
		cfg.Key = make([]byte, encrypt.KeySize)
		if _, err := crand.Read(cfg.Key); err != nil {
			return nil, fmt.Errorf("pathoram: drawing key: %w", err)
		}
	} else {
		cfg.Key = append([]byte(nil), cfg.Key...)
	}
	var leaves core.LeafSource
	if cfg.Rand != nil {
		leaves = core.NewMathLeafSource(cfg.Rand)
	} else {
		leaves = core.NewCryptoLeafSource()
	}

	h := &Hierarchy{cfg: cfg}

	// openLevelPersist builds one level's durable storage stack under
	// BackendFile: Dir/<prefix>-l<level>.tree (+ .wal), tracked on the
	// hierarchy for Flush-time sync and Close-time release.
	openLevelPersist := func(level int, numBuckets uint64, stride int) (storage.Storage, error) {
		pc := Config{
			Dir: cfg.Dir, WAL: cfg.WAL, WALDepth: cfg.WALDepth,
			storeName: fmt.Sprintf("%s-l%d", cfg.storeName, level),
		}
		p, err := pc.openPersist(numBuckets, stride)
		if err != nil {
			return nil, err
		}
		h.persists = append(h.persists, p)
		return p, nil
	}

	// makeStore builds one level's bucket store and reports the byte
	// footprint a bucket occupies on the modeled memory bus.
	makeStore := func(level int, leafLevel, z, blockBytes int) (core.PathStore, int, error) {
		if cfg.Encryption == EncryptNone || blockBytes == 0 {
			// Metadata-only data ORAMs have nothing to encrypt; plain
			// stores still move their headers over the modeled bus.
			if cfg.Backend == BackendFile {
				persist, err := openLevelPersist(level, treemath.New(leafLevel).NumBuckets(), storage.PlainRecordBytes(z, blockBytes))
				if err != nil {
					return nil, 0, err
				}
				ps, err := storage.NewPathStore(persist, leafLevel, z, blockBytes)
				if err != nil {
					return nil, 0, err
				}
				h.footprints = append(h.footprints, ps)
				return ps, modeledBucketBytes(nil, z, blockBytes), nil
			}
			ms, err := core.NewMemStore(leafLevel, z, blockBytes)
			return ms, modeledBucketBytes(nil, z, blockBytes), err
		}
		key, err := deriveKey(cfg.Key, level)
		if err != nil {
			return nil, 0, err
		}
		sub := Config{Encryption: cfg.Encryption, Key: key, Rand: cfg.Rand}
		scheme, err := sub.buildScheme(treemath.New(leafLevel).NumBuckets())
		if err != nil {
			return nil, 0, err
		}
		scfg := encrypt.StoreConfig{
			LeafLevel: leafLevel, Z: z, BlockBytes: blockBytes, Scheme: scheme,
		}
		if cfg.Integrity {
			scfg.Auth = encrypt.NewAuthTree(leafLevel, z, blockBytes, scheme)
		}
		if cfg.Backend == BackendFile {
			persist, err := openLevelPersist(level, treemath.New(leafLevel).NumBuckets(), encrypt.PaddedBucketBytes(scheme, z, blockBytes))
			if err != nil {
				return nil, 0, err
			}
			scfg.Backing = persist
		}
		es, err := encrypt.NewStore(scfg)
		if err != nil {
			return nil, 0, err
		}
		h.footprints = append(h.footprints, es)
		return es, modeledBucketBytes(scheme, z, blockBytes), nil
	}

	// Under BackendDRAM, wrap every level's store in a timed layer with
	// its own port on one shared bus: an injected one (sharded
	// deployments) or a private one (standalone hierarchy).
	bus := cfg.bus
	if cfg.Backend == BackendDRAM && bus == nil {
		var err error
		schedCfg := Config{
			DRAMSched:      cfg.DRAMSched,
			DRAMQueueDepth: cfg.DRAMQueueDepth,
			DRAMStarveCap:  cfg.DRAMStarveCap,
		}
		if bus, err = membus.New(membus.Config{
			Channels:  cfg.DRAMChannels,
			Layout:    cfg.DRAMLayout.membusLayout(),
			Serialize: cfg.DRAMSerialize,
			Sched:     schedCfg.dramSchedConfig(),
		}); err != nil {
			return nil, err
		}
	}
	sched := &chainSched{overlap: cfg.Overlap > 0}
	if sched.overlap {
		sched.ring = make([]uint64, cfg.Overlap)
	}
	factory := func(level int, leafLevel, z, blockBytes int) (core.PathStore, error) {
		store, busBytes, err := makeStore(level, leafLevel, z, blockBytes)
		if err != nil {
			return nil, err
		}
		if cfg.Backend != BackendDRAM {
			return store, nil
		}
		port, err := bus.AttachShard(leafLevel, busBytes)
		if err != nil {
			return nil, err
		}
		if sched.overlap {
			// Two stages in flight per tree: one round's write-back and the
			// next round's read of the same level may coexist.
			port.SetMaxInFlight(2)
		}
		h.ports = append(h.ports, port)
		return core.NewTimedStore(store, &levelTimer{port: port, sched: sched, level: level})
	}

	hcfg := hierarchy.Config{
		Blocks:                cfg.Blocks,
		DataBlockBytes:        cfg.BlockSize,
		DataZ:                 cfg.DataZ,
		PosZ:                  cfg.PosZ,
		DataUtilization:       cfg.Utilization,
		PosBlockBytes:         cfg.PosBlockSize,
		OnChipPosMapMax:       cfg.OnChipPosMapMax,
		SuperBlock:            cfg.SuperBlockSize,
		StashCapacity:         cfg.StashCapacity,
		BackgroundEviction:    true,
		DeferWriteBack:        cfg.AsyncEviction,
		MaxDeferredWriteBacks: cfg.MaxDeferredWriteBacks,
		ConstantTimeStash:     cfg.ConstantTimeStash,
		NewStore:              factory,
		Leaves:                leaves,
		PLBBytes:              cfg.PLBBytes,
		PLBConstantShape:      cfg.PLBConstantShape,
	}
	if sched.overlap {
		hcfg.OnRoundStart = sched.beginRound
	}
	if cfg.OnPathAccess != nil {
		hook := cfg.OnPathAccess
		hcfg.OnPathAccess = func(level int, leaf uint64, _ core.AccessKind) { hook(level, leaf) }
	}
	inner, err := hierarchy.New(hcfg)
	if err != nil {
		for _, p := range h.persists {
			p.Close()
		}
		return nil, err
	}
	h.inner = inner
	return h, nil
}

// deriveKey expands the master key into an independent per-level key
// (deriveSubKey in the hierarchy domain). Distinct levels therefore never
// share one-time pads even though bucket IDs repeat across trees.
func deriveKey(master []byte, level int) ([]byte, error) {
	return deriveSubKey(master, domainHierarchy, uint64(level))
}

// Read returns a copy of the data block at addr. One path access in every
// ORAM of the chain (position-map ORAMs first, Section 2.3).
func (h *Hierarchy) Read(addr uint64) ([]byte, error) {
	return h.inner.Access(addr, core.OpRead, nil)
}

// ReadInto reads the data block at addr into the caller-provided dst
// (BlockSize bytes), avoiding the per-read result allocation of Read.
// found reports whether the block was ever written.
func (h *Hierarchy) ReadInto(addr uint64, dst []byte) (found bool, err error) {
	return h.inner.ReadInto(addr, dst)
}

// Write replaces the data block at addr.
func (h *Hierarchy) Write(addr uint64, data []byte) error {
	_, err := h.inner.Access(addr, core.OpWrite, data)
	return err
}

// Update applies fn to the block in one oblivious read-modify-write.
func (h *Hierarchy) Update(addr uint64, fn func(data []byte)) error {
	return h.inner.Update(addr, fn)
}

// Load is the exclusive read through the hierarchy (Section 3.3.1).
func (h *Hierarchy) Load(addr uint64) (data []byte, found bool, group []Block, err error) {
	data, found, slots, err := h.inner.Load(addr)
	if err != nil {
		return nil, false, nil, err
	}
	for _, s := range slots {
		group = append(group, Block{Addr: s.Addr, Data: s.Data})
	}
	return data, found, group, nil
}

// Store returns a checked-out block to the data ORAM's stash without any
// path access.
func (h *Hierarchy) Store(addr uint64, data []byte) error {
	return h.inner.Store(addr, data)
}

// ReadBatch reads every address, back to back on the calling goroutine (a
// single chain has no intra-batch parallelism; Sharded fans hierarchies
// out across shards), under the shared batch contract (see
// serialReadBatch).
func (h *Hierarchy) ReadBatch(addrs []uint64) ([][]byte, error) {
	return serialReadBatch(addrs, h.cfg.Blocks, h.Read)
}

// WriteBatch writes data[i] to addrs[i], back to back on the calling
// goroutine, under the shared batch contract (see serialWriteBatch).
func (h *Hierarchy) WriteBatch(addrs []uint64, data [][]byte) error {
	return serialWriteBatch(addrs, data, h.cfg.Blocks, h.Write)
}

// PaddingAccess performs one dummy-shaped access through the whole chain:
// one freshly drawn uniform path read and written back in every ORAM,
// smallest first — the same ORAMs in the same order as a real access, so
// an observer of the memory traffic cannot tell them apart. Counted as
// scheduler padding in every level's Stats.PaddingAccesses.
func (h *Hierarchy) PaddingAccess() error { return h.inner.PaddingAccess() }

// StepBackground performs one unit of deferred work — completing one
// pending path write-back on some level, or (when allowEviction is set
// and some stash sits above the idle low-water mark) issuing one
// coordinated dummy round through the whole chain — and reports which.
// Under AsyncEviction, call it whenever the hierarchy would otherwise sit
// idle; inside a Sharded the shard workers call it for you.
func (h *Hierarchy) StepBackground(allowEviction bool) (BackgroundWork, error) {
	return h.inner.StepBackground(allowEviction)
}

// Flush completes every level's deferred write-backs and fully drains
// coordinated background eviction, leaving the chain in a state the
// synchronous protocol could have produced. Under BackendFile it is also
// the durability epoch for every level's tree file (msync, WAL
// checkpoint). A no-op without AsyncEviction on volatile backends.
func (h *Hierarchy) Flush() error {
	if err := h.inner.Flush(); err != nil {
		return err
	}
	var first error
	for _, p := range h.persists {
		if err := p.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PendingWriteBacks returns the total deferred path write-backs across
// all levels not yet completed (always 0 without AsyncEviction).
func (h *Hierarchy) PendingWriteBacks() int { return h.inner.PendingWriteBacks() }

// Close quiesces the hierarchy (Flush). On volatile backends it does not
// invalidate the receiver — the chain owns no goroutines; Close is the
// Client interface's quiesce point. Under BackendFile it additionally
// checkpoints and closes every level's tree file (and WAL); the chain
// then rejects further I/O, and the first backend error is the one
// reported even when later levels close cleanly.
func (h *Hierarchy) Close() error {
	err := h.inner.Flush()
	for _, p := range h.persists {
		if e := p.Close(); err == nil {
			err = e
		}
	}
	return err
}

// NumORAMs returns H, the number of ORAMs in the chain.
func (h *Hierarchy) NumORAMs() int { return h.inner.NumORAMs() }

// OnChipPositionMapBytes returns the final position map's size.
func (h *Hierarchy) OnChipPositionMapBytes() uint64 { return h.inner.OnChipPosMapBytes() }

// OnChipBytes returns the total trusted-memory provision of the chain: the
// final on-chip position map, every level's stash bound, plus the PLB's
// tag/label arrays when one is provisioned. Recursion's whole point is
// shrinking the first term; the others grow with the chain — the
// explorer's on-chip-bytes objective captures all three.
func (h *Hierarchy) OnChipBytes() uint64 {
	return h.inner.OnChipPosMapBytes() + h.inner.StashBoundBytes() + h.inner.PLBOnChipBytes()
}

// PLBOnChipBytes returns the provisioned footprint of the position-map
// lookaside caches (0 without HierarchyConfig.PLBBytes).
func (h *Hierarchy) PLBOnChipBytes() uint64 { return h.inner.PLBOnChipBytes() }

// ChainLengthHist returns the chain-length histogram: entry n counts
// program operations whose oblivious access needed n ORAM path accesses.
// Without a PLB every operation lands on n = NumORAMs; PLB hits move mass
// to shorter chains, dirty-eviction write-backs to longer ones.
func (h *Hierarchy) ChainLengthHist() []uint64 { return h.inner.ChainLengthHist() }

// LevelStats returns per-level protocol counters (index 0 = data ORAM).
func (h *Hierarchy) LevelStats() []Stats { return h.inner.Stats() }

// Stats returns the aggregate protocol counters of the whole chain: every
// level's counters merged with core.Stats.Merge semantics (counters sum,
// stash peaks take the worst level). One program access contributes H
// RealAccesses — one per level — so DummyPerReal on the merged view is
// the per-path-access rate; DummyRounds/DummyPerReal report the paper's
// per-program-access Equation 2 factor.
func (h *Hierarchy) Stats() Stats {
	var merged Stats
	for _, s := range h.inner.Stats() {
		merged = merged.Merge(s)
	}
	return merged
}

// ResetStats clears every level's protocol counters and the coordinated
// dummy-round count (peak occupancies included; the BlocksInORAM gauges
// survive, as on ORAM).
func (h *Hierarchy) ResetStats() { h.inner.ResetStats() }

// StashSize returns the summed stash occupancy over every level.
func (h *Hierarchy) StashSize() int { return h.inner.StashSize() }

// ExternalMemoryBytes returns the summed external storage footprint of
// every level (0 for plain in-memory stores).
func (h *Hierarchy) ExternalMemoryBytes() uint64 {
	var total uint64
	for _, f := range h.footprints {
		total += f.MemoryBytes()
	}
	return total
}

// TimingStats returns the modeled memory-timing counters merged over the
// chain's per-level ports (counters sum, the completion frontier takes
// the max). The bool is false under BackendMem. Under AsyncEviction
// deferred write-back charges land on the flush schedule; snapshot after
// Flush for access-complete totals (Sharded's snapshots do this
// automatically).
func (h *Hierarchy) TimingStats() (TimingStats, bool) {
	if len(h.ports) == 0 {
		return TimingStats{}, false
	}
	var merged TimingStats
	for _, p := range h.ports {
		merged = merged.Merge(p.Stats())
	}
	return merged, true
}

// DummyRounds returns the number of coordinated background-eviction rounds.
func (h *Hierarchy) DummyRounds() uint64 { return h.inner.DummyRounds() }

// DummyPerReal returns the hierarchy-level DA/RA factor of Equation 2.
func (h *Hierarchy) DummyPerReal() float64 { return h.inner.DummyPerReal() }

// Layout describes the sized chain for reporting.
func (h *Hierarchy) Layout() []hierarchy.LevelInfo { return h.inner.Layout() }
