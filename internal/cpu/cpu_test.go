package cpu

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/trace"
)

// scripted replays a fixed instruction slice (cycling).
type scripted struct {
	instrs []trace.Instr
	i      int
}

func (s *scripted) Next() trace.Instr {
	in := s.instrs[s.i%len(s.instrs)]
	s.i++
	return in
}

func TestKindLatencies(t *testing.T) {
	cfg := Default()
	// Pure compute: cycles must be the exact sum of kind latencies.
	gen := &scripted{instrs: []trace.Instr{
		{Kind: trace.Arith}, {Kind: trace.Mult}, {Kind: trace.Div},
		{Kind: trace.FPArith}, {Kind: trace.FPMult}, {Kind: trace.FPDiv},
	}}
	res, err := Run(cfg, gen, PerfectMemory{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(1 + 4 + 12 + 2 + 4 + 10)
	if res.Cycles != want {
		t.Errorf("cycles=%d want %d (Table 1 latencies)", res.Cycles, want)
	}
	if res.MemAccesses != 0 {
		t.Error("compute-only run touched memory")
	}
}

func TestCacheLatencies(t *testing.T) {
	cfg := Default()
	// Two loads to the same line: first misses everywhere (perfect
	// memory, zero fill latency), second hits L1.
	gen := &scripted{instrs: []trace.Instr{
		{Kind: trace.Load, Addr: 0}, {Kind: trace.Load, Addr: 8},
	}}
	res, err := Run(cfg, gen, PerfectMemory{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// First: 1 (issue) + 2 (L1) + 1 (miss) + 10 (L2) + 4 (miss) = 18.
	// Second: 1 + 2 = 3.
	if res.Cycles != 21 {
		t.Errorf("cycles=%d want 21", res.Cycles)
	}
	if res.L1Misses != 1 || res.L2Misses != 1 {
		t.Errorf("misses=(%d,%d) want (1,1)", res.L1Misses, res.L2Misses)
	}
}

func TestORAMMemoryOccupancy(t *testing.T) {
	m := &ORAMMemory{ReturnLat: 100, FinishLat: 160}
	r1, sib := m.Fetch(0, 5)
	if r1 != 100 || sib != NoSibling {
		t.Errorf("first fetch ready=%d sib=%d", r1, sib)
	}
	// Immediate second fetch must wait for the first to finish (160).
	r2, _ := m.Fetch(10, 6)
	if r2 != 160+100 {
		t.Errorf("second fetch ready=%d want 260 (ORAM busy)", r2)
	}
	// Idle gap: no queueing.
	r3, _ := m.Fetch(10_000, 7)
	if r3 != 10_100 {
		t.Errorf("idle fetch ready=%d want 10100", r3)
	}
}

func TestORAMMemoryDummyRate(t *testing.T) {
	m := &ORAMMemory{ReturnLat: 100, FinishLat: 100, DummyRate: 0.5}
	m.Fetch(0, 1)
	r2, _ := m.Fetch(0, 2)
	// Occupancy = 100 * 1.5 = 150, so the second access returns at 250.
	if r2 != 250 {
		t.Errorf("ready=%d want 250 with 0.5 dummy rate", r2)
	}
}

func TestORAMMemorySuperBlockSibling(t *testing.T) {
	m := &ORAMMemory{ReturnLat: 10, FinishLat: 20, SuperBlock: true}
	_, sib := m.Fetch(0, 10)
	if sib != 11 {
		t.Errorf("sibling of 10 = %d want 11", sib)
	}
	_, sib = m.Fetch(0, 11)
	if sib != 10 {
		t.Errorf("sibling of 11 = %d want 10", sib)
	}
}

func TestSuperBlockPrefetchTurnsMissesIntoHits(t *testing.T) {
	cfg := Default()
	// Strictly sequential line-sized strides: every second line comes for
	// free with super blocks.
	mk := func() trace.Generator {
		p := trace.Profile{Name: "seq", MemFrac: 1.0, SeqFrac: 1.0, WorkingSet: 64 << 20}
		return p.Generator(1)
	}
	plain := &ORAMMemory{ReturnLat: 100, FinishLat: 160}
	r1, err := Run(cfg, mk(), plain, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	sb := &ORAMMemory{ReturnLat: 100, FinishLat: 160, SuperBlock: true}
	r2, err := Run(cfg, mk(), sb, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	if r2.L2Misses >= r1.L2Misses {
		t.Fatalf("super blocks did not cut misses: %d vs %d", r2.L2Misses, r1.L2Misses)
	}
	ratio := float64(r2.L2Misses) / float64(r1.L2Misses)
	if ratio > 0.65 {
		t.Errorf("sequential super-block miss ratio %.2f, want ~0.5", ratio)
	}
	if r2.Cycles >= r1.Cycles {
		t.Error("super blocks did not speed up a streaming workload")
	}
	if r2.Prefetches == 0 {
		t.Error("no prefetches recorded")
	}
}

func TestDRAMMemoryBaseline(t *testing.T) {
	sys, err := dram.New(dram.MicronGeometry(2), dram.DDR3Micron())
	if err != nil {
		t.Fatal(err)
	}
	m := NewDRAMMemory(sys, 128)
	ready, sib := m.Fetch(400, 3)
	if sib != NoSibling {
		t.Error("DRAM baseline should not prefetch")
	}
	if ready <= 400 {
		t.Error("DRAM fetch cannot be instantaneous")
	}
	// 128B line = 2 accesses of 64B.
	if got := sys.Stats().Reads; got != 2 {
		t.Errorf("reads=%d want 2", got)
	}
	m.Writeback(800, 9, false)
	if sys.Stats().Writes != 0 {
		t.Error("clean victim should not write DRAM")
	}
	m.Writeback(800, 9, true)
	if sys.Stats().Writes != 2 {
		t.Errorf("dirty writeback wrote %d accesses want 2", sys.Stats().Writes)
	}
}

func TestRunWithDRAMAndProfile(t *testing.T) {
	sys, _ := dram.New(dram.MicronGeometry(2), dram.DDR3Micron())
	p := trace.ProfileByName("mcf")
	res, err := Run(Default(), p.Generator(5), NewDRAMMemory(sys, 128), 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPI() < 1 {
		t.Errorf("CPI=%.2f below 1 for an in-order core", res.CPI())
	}
	if res.MPKI() <= 0 {
		t.Error("mcf should miss in the L2")
	}
}

func TestMemoryBoundProfilesMissMore(t *testing.T) {
	// The calibrated split that drives Figure 12: mcf must miss far more
	// than hmmer.
	mpki := func(name string) float64 {
		p := trace.ProfileByName(name)
		if p == nil {
			t.Fatalf("missing profile %s", name)
		}
		res, err := RunWithWarmup(Default(), p.Generator(21), PerfectMemory{}, 500_000, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.MPKI()
	}
	m, h := mpki("mcf"), mpki("hmmer")
	if m < 5*h {
		t.Errorf("mcf MPKI %.2f not clearly above hmmer %.2f", m, h)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{Instructions: 1000, Cycles: 2500, L2Misses: 10}
	if r.CPI() != 2.5 {
		t.Errorf("CPI=%v", r.CPI())
	}
	if r.MPKI() != 10 {
		t.Errorf("MPKI=%v", r.MPKI())
	}
	if (Result{}).CPI() != 0 || (Result{}).MPKI() != 0 {
		t.Error("empty result should report zeros")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Error(err)
	}
	bad := Default()
	bad.LineBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero line accepted")
	}
}

func TestWritebacksReachMemory(t *testing.T) {
	// Stores over a large footprint must generate dirty writebacks.
	p := trace.Profile{Name: "wb", MemFrac: 1.0, StoreFrac: 1.0, SeqFrac: 1.0, WorkingSet: 16 << 20}
	m := &ORAMMemory{ReturnLat: 10, FinishLat: 20}
	res, err := Run(Default(), p.Generator(2), m, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writebacks == 0 || m.Stores == 0 {
		t.Errorf("no writebacks: res=%d mem=%d", res.Writebacks, m.Stores)
	}
}
