// Package cpu implements the paper's processor timing model (Table 1): an
// in-order, single-issue core with per-kind instruction latencies, the
// exclusive L1/L2 hierarchy from internal/cache, and a pluggable line
// memory (DRAM or Path ORAM). This mirrors the paper's methodology: traces
// feed a timing model, and the ORAM appears as its measured return-data /
// finish-access latencies plus the background-eviction dummy rate
// (Section 4.3, Table 2).
package cpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/trace"
)

// NoSibling marks "no prefetched line" in LineMemory.Fetch results.
const NoSibling = ^uint64(0)

// Config carries the Table 1 core parameters. CPU cycles throughout.
type Config struct {
	ArithLat, MultLat, DivLat       uint64 // 1 / 4 / 12
	FPArithLat, FPMultLat, FPDivLat uint64 // 2 / 4 / 10

	L1SizeBytes, L1Ways int // 32 KB, 4-way
	L2SizeBytes, L2Ways int // 1 MB, 16-way
	LineBytes           int // 128

	L1HitLat, L1MissPenalty uint64 // 2 + 1 (data side)
	L2HitLat, L2MissPenalty uint64 // 10 + 4
}

// Default returns the paper's Table 1 configuration.
func Default() Config {
	return Config{
		ArithLat: 1, MultLat: 4, DivLat: 12,
		FPArithLat: 2, FPMultLat: 4, FPDivLat: 10,
		L1SizeBytes: 32 << 10, L1Ways: 4,
		L2SizeBytes: 1 << 20, L2Ways: 16,
		LineBytes: 128,
		L1HitLat:  2, L1MissPenalty: 1,
		L2HitLat: 10, L2MissPenalty: 4,
	}
}

// LineMemory abstracts main memory at cache-line granularity.
type LineMemory interface {
	// Fetch requests a line at CPU-cycle `now`; it returns when the data
	// is available and an optionally prefetched companion line
	// (super blocks), or NoSibling.
	Fetch(now uint64, line uint64) (readyAt uint64, sibling uint64)
	// Writeback hands an evicted line back to memory. For the exclusive
	// ORAM this is a free stash insert (Section 3.3.1); for DRAM it
	// queues write traffic when dirty.
	Writeback(now uint64, line uint64, dirty bool)
}

// Result summarizes one simulation.
type Result struct {
	Instructions uint64
	Cycles       uint64
	MemAccesses  uint64
	L1Misses     uint64
	L2Misses     uint64
	Writebacks   uint64
	Prefetches   uint64 // super-block siblings installed
}

// CPI returns cycles per instruction.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// MPKI returns L2 misses per kilo-instruction.
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(r.L2Misses) / float64(r.Instructions)
}

// Run executes `instructions` instructions from the generator against the
// hierarchy and memory, returning the timing summary.
func Run(cfg Config, gen trace.Generator, mem LineMemory, instructions uint64) (Result, error) {
	return RunWithWarmup(cfg, gen, mem, 0, instructions)
}

// RunWithWarmup first executes `warmup` instructions to populate the
// caches (the paper fast-forwards 1 billion instructions past
// initialization code before measuring, Section 4.3), then measures
// `instructions` instructions.
func RunWithWarmup(cfg Config, gen trace.Generator, mem LineMemory, warmup, instructions uint64) (Result, error) {
	l1, err := cache.New(cfg.L1SizeBytes, cfg.L1Ways, cfg.LineBytes)
	if err != nil {
		return Result{}, err
	}
	l2, err := cache.New(cfg.L2SizeBytes, cfg.L2Ways, cfg.LineBytes)
	if err != nil {
		return Result{}, err
	}
	h, err := cache.NewHierarchy(l1, l2)
	if err != nil {
		return Result{}, err
	}

	var res Result
	var now uint64
	var measureStart uint64
	line := uint64(cfg.LineBytes)
	total := warmup + instructions
	for i := uint64(0); i < total; i++ {
		if i == warmup {
			res = Result{}
			measureStart = now
		}
		in := gen.Next()
		now += cfg.kindLatency(in.Kind)
		if in.Kind != trace.Load && in.Kind != trace.Store {
			continue
		}
		res.MemAccesses++
		la := in.Addr / line
		now += cfg.L1HitLat
		r := h.Access(la, in.Kind == trace.Store)
		if r.L1Hit {
			continue
		}
		res.L1Misses++
		now += cfg.L1MissPenalty + cfg.L2HitLat
		if !r.L2Hit {
			res.L2Misses++
			now += cfg.L2MissPenalty
			ready, sibling := mem.Fetch(now, la)
			now = ready
			if sibling != NoSibling {
				for _, v := range h.InsertPrefetch(sibling) {
					mem.Writeback(now, v.LineAddr, v.Dirty)
					res.Writebacks++
				}
				res.Prefetches++
			}
		}
		for _, v := range r.Victims {
			mem.Writeback(now, v.LineAddr, v.Dirty)
			res.Writebacks++
		}
	}
	res.Instructions = instructions
	res.Cycles = now - measureStart
	return res, nil
}

func (c Config) kindLatency(k trace.Kind) uint64 {
	switch k {
	case trace.Mult:
		return c.MultLat
	case trace.Div:
		return c.DivLat
	case trace.FPArith:
		return c.FPArithLat
	case trace.FPMult:
		return c.FPMultLat
	case trace.FPDiv:
		return c.FPDivLat
	default: // Arith, Load, Store base latency
		return c.ArithLat
	}
}

// ORAMMemory models the Path ORAM interface by its measured latencies
// (Table 2): data returns after ReturnLat; the ORAM is busy for
// FinishLat × (1 + DummyRate) per access, serializing back-to-back misses
// (write-back of the current path must finish before the next read starts,
// Section 3.3.2; dummy accesses add occupancy per Equation 1).
type ORAMMemory struct {
	ReturnLat uint64  // CPU cycles until the requested block is available
	FinishLat uint64  // CPU cycles until the access fully completes
	DummyRate float64 // DA/RA measured by the protocol simulator
	// SuperBlock enables pair prefetching (|S| = 2, adjacent lines).
	SuperBlock bool
	// InclusiveWriteback models the inclusive-ORAM baseline of Section
	// 3.3.1: a dirty line evicted from the last-level cache must update
	// the ORAM's stale copy with a full path access. The exclusive design
	// (default) makes Store a free stash insert.
	InclusiveWriteback bool

	freeAt   uint64
	Accesses uint64
	Stores   uint64
}

var _ LineMemory = (*ORAMMemory)(nil)

// Fetch implements LineMemory.
func (m *ORAMMemory) Fetch(now uint64, line uint64) (uint64, uint64) {
	start := now
	if m.freeAt > start {
		start = m.freeAt
	}
	ready := start + m.ReturnLat
	occupancy := float64(m.FinishLat) * (1 + m.DummyRate)
	m.freeAt = start + uint64(occupancy)
	m.Accesses++
	if m.SuperBlock {
		return ready, line ^ 1
	}
	return ready, NoSibling
}

// Writeback implements LineMemory: an exclusive-ORAM Store is a stash
// insert and costs no path access (its amortized cost is inside DummyRate).
// Under InclusiveWriteback, dirty victims occupy the ORAM for a full
// access instead.
func (m *ORAMMemory) Writeback(now uint64, _ uint64, dirty bool) {
	m.Stores++
	if m.InclusiveWriteback && dirty {
		start := now
		if m.freeAt > start {
			start = m.freeAt
		}
		occupancy := float64(m.FinishLat) * (1 + m.DummyRate)
		m.freeAt = start + uint64(occupancy)
		m.Accesses++
	}
}

// DRAMMemory is the insecure baseline: cache lines map directly to DRAM
// and each miss fetches LineBytes of data.
type DRAMMemory struct {
	Sys *dram.System
	// CPUPerDRAMCycle converts memory cycles to CPU cycles (the paper
	// assumes the CPU runs at 4x the DDR3 frequency).
	CPUPerDRAMCycle uint64
	LineBytes       int

	Fetches, WritebacksN uint64
}

var _ LineMemory = (*DRAMMemory)(nil)

// NewDRAMMemory wires a DRAM system as line memory.
func NewDRAMMemory(sys *dram.System, lineBytes int) *DRAMMemory {
	return &DRAMMemory{Sys: sys, CPUPerDRAMCycle: 4, LineBytes: lineBytes}
}

// Fetch implements LineMemory.
func (m *DRAMMemory) Fetch(now uint64, line uint64) (uint64, uint64) {
	m.Fetches++
	at := now / m.CPUPerDRAMCycle
	base := line * uint64(m.LineBytes)
	g := m.Sys.Geometry().AccessBytes
	var done uint64
	for off := 0; off < m.LineBytes; off += g {
		if d := m.Sys.Access(at, base+uint64(off), false); d > done {
			done = d
		}
	}
	ready := done * m.CPUPerDRAMCycle
	if ready < now {
		ready = now
	}
	return ready, NoSibling
}

// Writeback implements LineMemory: only dirty lines cost DRAM writes; clean
// victims are dropped (the conventional, non-ORAM behaviour).
func (m *DRAMMemory) Writeback(now uint64, line uint64, dirty bool) {
	if !dirty {
		return
	}
	m.WritebacksN++
	at := now / m.CPUPerDRAMCycle
	base := line * uint64(m.LineBytes)
	g := m.Sys.Geometry().AccessBytes
	for off := 0; off < m.LineBytes; off += g {
		m.Sys.Access(at, base+uint64(off), true)
	}
}

// PerfectMemory returns lines instantly; useful for isolating core timing
// in tests.
type PerfectMemory struct{}

var _ LineMemory = PerfectMemory{}

// Fetch implements LineMemory.
func (PerfectMemory) Fetch(now uint64, _ uint64) (uint64, uint64) { return now, NoSibling }

// Writeback implements LineMemory.
func (PerfectMemory) Writeback(uint64, uint64, bool) {}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LineBytes <= 0 {
		return fmt.Errorf("cpu: line size must be positive")
	}
	if c.L1SizeBytes <= 0 || c.L2SizeBytes <= 0 {
		return fmt.Errorf("cpu: cache sizes must be positive")
	}
	return nil
}
