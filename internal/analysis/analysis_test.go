package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddrBits(t *testing.T) {
	cases := []struct {
		n    uint64
		want int
	}{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1 << 25, 25}, {1<<25 + 1, 26},
	}
	for _, c := range cases {
		if got := AddrBits(c.n); got != c.want {
			t.Errorf("AddrBits(%d)=%d want %d", c.n, got, c.want)
		}
	}
}

func TestBucketBitsCounterScheme(t *testing.T) {
	// Section 2.2.2: M = Z(L+U+B) + 64 bits.
	c := ORAMConfig{LeafLevel: 23, Z: 3, BlockBytes: 128, Scheme: SchemeCounter}
	u := AddrBits(c.Slots())
	want := 3*(23+u+1024) + 64
	if got := c.BucketBits(); got != want {
		t.Errorf("BucketBits=%d want %d", got, want)
	}
}

func TestBucketBitsStrawman(t *testing.T) {
	// Section 2.2.1: M = Z(128 + L+U+B) bits.
	c := ORAMConfig{LeafLevel: 23, Z: 4, BlockBytes: 128, Scheme: SchemeStrawman}
	u := AddrBits(c.Slots())
	want := 4 * (128 + 23 + u + 1024)
	if got := c.BucketBits(); got != want {
		t.Errorf("BucketBits=%d want %d", got, want)
	}
}

func TestBucketBytesPadding(t *testing.T) {
	c := ORAMConfig{LeafLevel: 20, Z: 3, BlockBytes: 32, Scheme: SchemeCounter}
	got := c.BucketBytes()
	if got%DRAMGranularity != 0 {
		t.Errorf("BucketBytes=%d not a multiple of %d", got, DRAMGranularity)
	}
	raw := (c.BucketBits() + 7) / 8
	if got < raw || got-raw >= DRAMGranularity {
		t.Errorf("BucketBytes=%d is not the minimal padding of %d", got, raw)
	}
}

func TestSmallPosMapBlocksShareBucketSize(t *testing.T) {
	// Section 4.1.5: 16-byte and 32-byte position map blocks both pad to a
	// 128-byte bucket (Z=3), which is why 16B blocks are not attractive.
	b16 := ORAMConfig{LeafLevel: 21, Z: 3, BlockBytes: 16, Scheme: SchemeCounter}
	b32 := ORAMConfig{LeafLevel: 21, Z: 3, BlockBytes: 32, Scheme: SchemeCounter}
	if b16.BucketBytes() != 128 || b32.BucketBytes() != 128 {
		t.Errorf("16B and 32B posmap buckets should both pad to 128B, got %d and %d",
			b16.BucketBytes(), b32.BucketBytes())
	}
}

func TestAccessOverheadEquation1(t *testing.T) {
	c := ORAMConfig{LeafLevel: 23, Z: 3, BlockBytes: 128, Scheme: SchemeCounter}
	base := 2 * float64(24) * float64(c.BucketBytes()) / 128
	if got := c.AccessOverhead(0); math.Abs(got-base) > 1e-9 {
		t.Errorf("AccessOverhead(0)=%v want %v", got, base)
	}
	// Equation 1 scales by (RA+DA)/RA.
	if got := c.AccessOverhead(0.5); math.Abs(got-1.5*base) > 1e-9 {
		t.Errorf("AccessOverhead(0.5)=%v want %v", got, 1.5*base)
	}
}

func TestPositionMapSizePaperExample(t *testing.T) {
	// Section 2.3: "a 4 GB Path ORAM with a block size of 128 bytes and
	// Z = 4 has a position map of 93 MB". 4GB of data blocks = 2^25 blocks.
	// With leaf level from the paper's convention the map is tens of MB; we
	// check the order of magnitude (the paper's L is not stated exactly).
	n := uint64(1) << 25
	c := ORAMConfig{LeafLevel: PosMapLevels(n), Z: 4, BlockBytes: 128, ValidBlocks: n}
	mb := float64(c.PositionMapBits()) / 8 / (1 << 20)
	if mb < 80 || mb > 110 {
		t.Errorf("position map = %.1f MB, want ~93 MB", mb)
	}
}

func TestUtilization(t *testing.T) {
	c := ORAMConfig{LeafLevel: 3, Z: 4, BlockBytes: 128, ValidBlocks: 30}
	if c.Slots() != 4*15 {
		t.Fatalf("Slots=%d want 60", c.Slots())
	}
	if got := c.Utilization(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Utilization=%v want 0.5", got)
	}
}

func TestValidate(t *testing.T) {
	good := ORAMConfig{LeafLevel: 5, Z: 4, BlockBytes: 128, ValidBlocks: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []ORAMConfig{
		{LeafLevel: -1, Z: 4, BlockBytes: 128},
		{LeafLevel: 31, Z: 4, BlockBytes: 128},
		{LeafLevel: 5, Z: 0, BlockBytes: 128},
		{LeafLevel: 5, Z: 4, BlockBytes: 0},
		{LeafLevel: 1, Z: 1, BlockBytes: 128, ValidBlocks: 100},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLevelsForSlots(t *testing.T) {
	// 2^26 slots at Z=4 => 2^24 buckets => leaf level 23.
	if l := LevelsForSlots(1<<26, 4); l != 23 {
		t.Errorf("LevelsForSlots(2^26, 4)=%d want 23", l)
	}
	if l := LevelsForSlots(0, 4); l != 0 {
		t.Errorf("LevelsForSlots(0,4)=%d want 0", l)
	}
}

func TestMinLevelsForBlocks(t *testing.T) {
	// Smallest tree holding n blocks.
	if l := MinLevelsForBlocks(60, 4); l != 3 {
		t.Errorf("MinLevelsForBlocks(60,4)=%d want 3 (60 slots)", l)
	}
	if l := MinLevelsForBlocks(61, 4); l != 4 {
		t.Errorf("MinLevelsForBlocks(61,4)=%d want 4", l)
	}
	f := func(nRaw uint32, zRaw uint8) bool {
		n := uint64(nRaw%1_000_000) + 1
		z := int(zRaw%8) + 1
		l := MinLevelsForBlocks(n, z)
		fits := uint64(z)*(1<<uint(l+1)-1) >= n
		minimal := l == 0 || uint64(z)*(1<<uint(l)-1) < n
		return fits && minimal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildHierarchyDZ3Pb32(t *testing.T) {
	// The paper's DZ3Pb32 configuration: 4 GB working set (2^25 blocks of
	// 128 B), data Z=3, 32-byte position-map blocks with Z=3, final
	// position map under 200 KB. Table 2 reports a 37 KB on-chip map and a
	// 4-ORAM hierarchy is expected.
	h, err := BuildHierarchy(HierarchyConfig{
		WorkingSetBlocks: 1 << 25,
		DataUtilization:  0.5,
		DataZ:            3,
		DataBlockBytes:   128,
		PosZ:             3,
		PosBlockBytes:    32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumORAMs() < 3 || h.NumORAMs() > 5 {
		t.Errorf("NumORAMs=%d want 3..5 (paper: 4)", h.NumORAMs())
	}
	kb := float64(h.OnChipPosMapBits) / 8 / 1024
	if kb > 200 {
		t.Errorf("on-chip posmap %.1f KB exceeds 200 KB", kb)
	}
	if kb < 5 {
		t.Errorf("on-chip posmap %.1f KB suspiciously small", kb)
	}
	// Data ORAM must be first and hold the working set.
	if h.Levels[0].BlockBytes != 128 || h.Levels[0].ValidBlocks != 1<<25 {
		t.Errorf("data ORAM misconfigured: %+v", h.Levels[0])
	}
	// Each position-map ORAM must shrink.
	for i := 1; i < len(h.Levels); i++ {
		if h.Levels[i].ValidBlocks >= h.Levels[i-1].ValidBlocks {
			t.Errorf("ORAM%d (%d blocks) did not shrink from ORAM%d (%d blocks)",
				i+1, h.Levels[i].ValidBlocks, i, h.Levels[i-1].ValidBlocks)
		}
	}
}

func TestBuildHierarchyBaseORAM(t *testing.T) {
	// baseORAM (Section 4.1.5): 3 ORAMs, all 128-byte blocks, Z=4,
	// strawman encryption. Table 2 reports a 25 KB final position map.
	h, err := BuildHierarchy(HierarchyConfig{
		WorkingSetBlocks: 1 << 25,
		DataUtilization:  0.5,
		DataZ:            4,
		DataBlockBytes:   128,
		PosZ:             4,
		PosBlockBytes:    128,
		DataScheme:       SchemeStrawman,
		PosScheme:        SchemeStrawman,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumORAMs() != 3 {
		t.Errorf("baseORAM NumORAMs=%d want 3", h.NumORAMs())
	}
	kb := float64(h.OnChipPosMapBits) / 8 / 1024
	if kb < 10 || kb > 60 {
		t.Errorf("baseORAM on-chip posmap %.1f KB, paper reports 25 KB", kb)
	}
}

func TestHierarchyOverheadImprovement(t *testing.T) {
	// Figure 10's headline: DZ3Pb32 reduces access overhead by ~41.8%
	// versus baseORAM (before dummy accesses). Require at least a 30%
	// analytical reduction.
	base, err := BuildHierarchy(HierarchyConfig{
		WorkingSetBlocks: 1 << 25, DataUtilization: 0.5,
		DataZ: 4, DataBlockBytes: 128, PosZ: 4, PosBlockBytes: 128,
		DataScheme: SchemeStrawman, PosScheme: SchemeStrawman,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := BuildHierarchy(HierarchyConfig{
		WorkingSetBlocks: 1 << 25, DataUtilization: 0.5,
		DataZ: 3, DataBlockBytes: 128, PosZ: 3, PosBlockBytes: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	ob, oo := base.AccessOverhead(0), opt.AccessOverhead(0)
	if oo >= ob {
		t.Fatalf("optimized overhead %.1f not better than base %.1f", oo, ob)
	}
	if red := 1 - oo/ob; red < 0.30 {
		t.Errorf("overhead reduction %.1f%% below 30%% (paper: 41.8%%)", red*100)
	}
}

func TestOverheadBreakdownSumsToTotal(t *testing.T) {
	h, err := BuildHierarchy(HierarchyConfig{
		WorkingSetBlocks: 1 << 20, DataUtilization: 0.5,
		DataZ: 3, DataBlockBytes: 128, PosZ: 3, PosBlockBytes: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts := h.OverheadBreakdown(0.25)
	var sum float64
	for _, p := range parts {
		sum += p
	}
	if total := h.AccessOverhead(0.25); math.Abs(sum-total) > 1e-9 {
		t.Errorf("breakdown sum %v != total %v", sum, total)
	}
}

func TestHierarchyStashBits(t *testing.T) {
	h, err := BuildHierarchy(HierarchyConfig{
		WorkingSetBlocks: 1 << 25, DataUtilization: 0.5,
		DataZ: 3, DataBlockBytes: 128, PosZ: 3, PosBlockBytes: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: DZ3Pb32 stash is ~47 KB at C=200.
	kb := float64(h.StashBits(200)) / 8 / 1024
	if kb < 30 || kb > 70 {
		t.Errorf("stash=%.1f KB want ~47 KB", kb)
	}
}

func TestBuildHierarchyErrors(t *testing.T) {
	if _, err := BuildHierarchy(HierarchyConfig{}); err == nil {
		t.Error("empty working set should fail")
	}
	// A 1-byte posmap block cannot hold a 20+-bit label.
	_, err := BuildHierarchy(HierarchyConfig{
		WorkingSetBlocks: 1 << 25, DataUtilization: 0.5,
		DataZ: 3, DataBlockBytes: 128, PosZ: 3, PosBlockBytes: 1,
	})
	if err == nil {
		t.Error("1-byte posmap block should fail")
	}
}

func TestPosMapLevels(t *testing.T) {
	cases := []struct {
		n    uint64
		want int
	}{{1, 0}, {2, 0}, {4, 1}, {1 << 20, 19}, {1<<20 + 1, 20}}
	for _, c := range cases {
		if got := PosMapLevels(c.n); got != c.want {
			t.Errorf("PosMapLevels(%d)=%d want %d", c.n, got, c.want)
		}
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeCounter.String() != "counter" || SchemeStrawman.String() != "strawman" {
		t.Error("scheme names wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme should still print")
	}
}

func TestPathAndTreeBytes(t *testing.T) {
	c := ORAMConfig{LeafLevel: 3, Z: 2, BlockBytes: 16, Scheme: SchemeCounter}
	if got, want := c.PathBytes(), 4*c.BucketBytes(); got != want {
		t.Errorf("PathBytes=%d want %d", got, want)
	}
	if got, want := c.TreeBytes(), uint64(15*c.BucketBytes()); got != want {
		t.Errorf("TreeBytes=%d want %d", got, want)
	}
}
