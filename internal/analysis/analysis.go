// Package analysis implements the paper's analytical storage and overhead
// model (Sections 2.2, 2.4 and 3.1.4): per-bucket bit counts under the
// strawman and counter-based randomized-encryption schemes, DRAM padding,
// Access_Overhead (Equations 1 and 2), and the sizing of hierarchical
// position-map ORAM chains (Section 2.3 / 3.3.3).
//
// The formulas here are bit-exact per the paper and are used for the design
// space exploration figures; the functional stores in internal/encrypt use a
// byte-aligned layout whose constants differ slightly (documented there).
package analysis

import (
	"fmt"
	"math"
	"math/bits"
)

// DRAMGranularity is the DRAM access granularity in bytes. Buckets are
// padded to a multiple of it (Section 2.4: "M should be rounded up to a
// multiple of DRAM access granularity (e.g. 64 bytes)").
const DRAMGranularity = 64

// Scheme selects the randomized-encryption layout from Section 2.2.
type Scheme int

const (
	// SchemeCounter is the counter-based scheme (Section 2.2.2):
	// M = Z(L+U+B) + 64 bits.
	SchemeCounter Scheme = iota
	// SchemeStrawman is the strawman scheme (Section 2.2.1):
	// M = Z(128 + L+U+B) bits.
	SchemeStrawman
)

func (s Scheme) String() string {
	switch s {
	case SchemeCounter:
		return "counter"
	case SchemeStrawman:
		return "strawman"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// AddrBits returns U = ceil(log2 n), the number of bits needed to store a
// program address when n addresses exist. AddrBits(0) and AddrBits(1) are 1.
func AddrBits(n uint64) int {
	if n <= 1 {
		return 1
	}
	return bits.Len64(n - 1)
}

// ORAMConfig describes one Path ORAM for analytical purposes.
type ORAMConfig struct {
	LeafLevel   int    // L: leaf level; the tree has L+1 levels
	Z           int    // blocks per bucket
	BlockBytes  int    // B in bytes
	ValidBlocks uint64 // number of real (addressable) data blocks stored
	Scheme      Scheme
}

// Slots returns N, the total number of block slots in the tree:
// Z * (2^(L+1)-1).
func (c ORAMConfig) Slots() uint64 {
	return uint64(c.Z) * (1<<uint(c.LeafLevel+1) - 1)
}

// Utilization returns ValidBlocks / Slots (Section 4.1.3).
func (c ORAMConfig) Utilization() float64 {
	s := c.Slots()
	if s == 0 {
		return 0
	}
	return float64(c.ValidBlocks) / float64(s)
}

// PlainBitsPerBlock returns L + U + B*8: leaf label, program address and
// payload bits for one block (Section 2.2).
func (c ORAMConfig) PlainBitsPerBlock() int {
	return c.LeafLevel + AddrBits(c.Slots()) + 8*c.BlockBytes
}

// BucketBits returns M, the encrypted bucket size in bits, before padding.
func (c ORAMConfig) BucketBits() int {
	plain := c.PlainBitsPerBlock()
	switch c.Scheme {
	case SchemeStrawman:
		return c.Z * (128 + plain)
	default:
		return c.Z*plain + 64
	}
}

// BucketBytes returns M rounded up to a multiple of the DRAM access
// granularity, in bytes.
func (c ORAMConfig) BucketBytes() int {
	bytes := (c.BucketBits() + 7) / 8
	return pad(bytes, DRAMGranularity)
}

// PathBytes returns the number of bytes occupied by one root-to-leaf path:
// (L+1) * BucketBytes.
func (c ORAMConfig) PathBytes() int {
	return (c.LeafLevel + 1) * c.BucketBytes()
}

// TreeBytes returns the external storage of the whole tree:
// (2^(L+1)-1) * BucketBytes.
func (c ORAMConfig) TreeBytes() uint64 {
	return (1<<uint(c.LeafLevel+1) - 1) * uint64(c.BucketBytes())
}

// PositionMapBits returns the size of this ORAM's position map:
// one L-bit leaf label per valid block (Section 2.3).
func (c ORAMConfig) PositionMapBits() uint64 {
	return c.ValidBlocks * uint64(c.LeafLevel)
}

// StashBits returns the on-chip stash storage for capacity C blocks:
// C * (L + U + B) bits (Section 2.4).
func (c ORAMConfig) StashBits(capacity int) uint64 {
	return uint64(capacity) * uint64(c.PlainBitsPerBlock())
}

// AccessOverhead implements Equation 1: the ratio between data moved and
// useful data per access, scaled by the dummy-access rate DA/RA.
func (c ORAMConfig) AccessOverhead(dummyPerReal float64) float64 {
	return (1 + dummyPerReal) * 2 * float64(c.LeafLevel+1) *
		float64(c.BucketBytes()) / float64(c.BlockBytes)
}

// Validate reports configuration errors.
func (c ORAMConfig) Validate() error {
	switch {
	case c.LeafLevel < 0 || c.LeafLevel > 30:
		return fmt.Errorf("analysis: leaf level %d out of range [0,30]", c.LeafLevel)
	case c.Z < 1:
		return fmt.Errorf("analysis: Z=%d must be >= 1", c.Z)
	case c.BlockBytes < 1:
		return fmt.Errorf("analysis: block size %dB must be >= 1", c.BlockBytes)
	case c.ValidBlocks > c.Slots():
		return fmt.Errorf("analysis: %d valid blocks exceed %d slots", c.ValidBlocks, c.Slots())
	}
	return nil
}

func pad(n, multiple int) int {
	if r := n % multiple; r != 0 {
		return n + multiple - r
	}
	return n
}

// LevelsForSlots returns the leaf level L whose tree slot count
// Z*(2^(L+1)-1) is nearest (in log space) to the requested slot count. The
// paper's sweeps quantize ORAM capacity this way; achieved utilization is
// reported alongside requested utilization wherever it matters.
func LevelsForSlots(slots uint64, z int) int {
	if slots == 0 || z <= 0 {
		return 0
	}
	target := float64(slots) / float64(z) // desired bucket count ~ 2^(L+1)
	l := int(math.Round(math.Log2(target))) - 1
	if l < 0 {
		l = 0
	}
	if l > 30 {
		l = 30
	}
	return l
}

// MinLevelsForBlocks returns the smallest leaf level whose tree holds at
// least n blocks with the given Z (used when capacity is a hard floor).
func MinLevelsForBlocks(n uint64, z int) int {
	l := 0
	for uint64(z)*(1<<uint(l+1)-1) < n && l < 30 {
		l++
	}
	return l
}

// ConfigForWorkingSet builds an ORAMConfig that stores wsBlocks valid
// blocks at (approximately) the requested utilization.
func ConfigForWorkingSet(wsBlocks uint64, utilization float64, z, blockBytes int, scheme Scheme) ORAMConfig {
	if utilization <= 0 {
		utilization = 1
	}
	slots := uint64(float64(wsBlocks) / utilization)
	return ORAMConfig{
		LeafLevel:   LevelsForSlots(slots, z),
		Z:           z,
		BlockBytes:  blockBytes,
		ValidBlocks: wsBlocks,
		Scheme:      scheme,
	}
}

// PosMapLevels returns the paper's leaf-level choice for position-map
// ORAMs: L = ceil(log2 N) - 1 (Section 2.3), i.e. roughly one bucket per
// block.
func PosMapLevels(n uint64) int {
	if n <= 2 {
		return 0
	}
	l := bits.Len64(n-1) - 1 // ceil(log2 n) - 1
	if l > 30 {
		l = 30
	}
	return l
}

// HierarchyConfig parameterizes BuildHierarchy.
type HierarchyConfig struct {
	WorkingSetBlocks uint64  // addressable data blocks (position map entries of ORAM1)
	DataUtilization  float64 // data ORAM utilization target (e.g. 0.5)
	DataZ            int
	DataBlockBytes   int
	PosZ             int
	PosBlockBytes    int
	OnChipPosMapMax  uint64 // bytes; recursion stops once the map fits
	DataScheme       Scheme
	PosScheme        Scheme
}

// Hierarchy is a sized chain of ORAMs. Levels[0] is the data ORAM (ORAM1 in
// the paper); subsequent entries are position-map ORAMs.
type Hierarchy struct {
	Levels           []ORAMConfig
	OnChipPosMapBits uint64 // final position map kept on-chip
}

// BuildHierarchy sizes a hierarchical Path ORAM following Section 2.3:
// ORAM(h+1) stores k = floor(B*8 / L_h) leaf labels per block, needs
// N(h+1) = ceil(N_h / k) blocks, and uses leaf level ceil(log2 N)-1. The
// chain stops as soon as the next position map fits in OnChipPosMapMax.
func BuildHierarchy(cfg HierarchyConfig) (Hierarchy, error) {
	if cfg.WorkingSetBlocks == 0 {
		return Hierarchy{}, fmt.Errorf("analysis: working set must be non-empty")
	}
	if cfg.OnChipPosMapMax == 0 {
		cfg.OnChipPosMapMax = 200 << 10 // paper: "final position map smaller than 200 KB"
	}
	data := ConfigForWorkingSet(cfg.WorkingSetBlocks, cfg.DataUtilization,
		cfg.DataZ, cfg.DataBlockBytes, cfg.DataScheme)
	if err := data.Validate(); err != nil {
		return Hierarchy{}, err
	}
	h := Hierarchy{Levels: []ORAMConfig{data}}
	entries := cfg.WorkingSetBlocks // entries of the position map for the last ORAM built
	labelBits := data.LeafLevel
	for entries*uint64(labelBits) > cfg.OnChipPosMapMax*8 {
		if len(h.Levels) > 16 {
			return Hierarchy{}, fmt.Errorf("analysis: hierarchy did not converge (posmap block too small?)")
		}
		k := cfg.PosBlockBytes * 8 / labelBits
		if k < 1 {
			return Hierarchy{}, fmt.Errorf("analysis: position map block of %dB cannot hold a %d-bit label",
				cfg.PosBlockBytes, labelBits)
		}
		n := (entries + uint64(k) - 1) / uint64(k)
		next := ORAMConfig{
			LeafLevel:   PosMapLevels(n),
			Z:           cfg.PosZ,
			BlockBytes:  cfg.PosBlockBytes,
			ValidBlocks: n,
			Scheme:      cfg.PosScheme,
		}
		if err := next.Validate(); err != nil {
			return Hierarchy{}, err
		}
		h.Levels = append(h.Levels, next)
		entries = n
		labelBits = next.LeafLevel
	}
	h.OnChipPosMapBits = entries * uint64(labelBits)
	return h, nil
}

// AccessOverhead implements Equation 2: sum over the hierarchy of
// 2(L_i+1)M_i divided by the data block size, scaled by the dummy rate.
func (h Hierarchy) AccessOverhead(dummyPerReal float64) float64 {
	if len(h.Levels) == 0 {
		return 0
	}
	var pathBytes float64
	for _, l := range h.Levels {
		pathBytes += 2 * float64(l.LeafLevel+1) * float64(l.BucketBytes())
	}
	return (1 + dummyPerReal) * pathBytes / float64(h.Levels[0].BlockBytes)
}

// OverheadBreakdown returns each ORAM's contribution to Equation 2 (used by
// the Figure 10 stacked bars).
func (h Hierarchy) OverheadBreakdown(dummyPerReal float64) []float64 {
	out := make([]float64, len(h.Levels))
	if len(h.Levels) == 0 {
		return out
	}
	for i, l := range h.Levels {
		out[i] = (1 + dummyPerReal) * 2 * float64(l.LeafLevel+1) *
			float64(l.BucketBytes()) / float64(h.Levels[0].BlockBytes)
	}
	return out
}

// PathBytesTotal returns the bytes moved per hierarchical access
// (read + write of one path in every ORAM).
func (h Hierarchy) PathBytesTotal() int {
	total := 0
	for _, l := range h.Levels {
		total += 2 * l.PathBytes()
	}
	return total
}

// StashBits returns the total on-chip stash storage with capacity C blocks
// per ORAM (Section 2.4).
func (h Hierarchy) StashBits(capacity int) uint64 {
	var total uint64
	for _, l := range h.Levels {
		total += l.StashBits(capacity)
	}
	return total
}

// NumORAMs returns H, the number of ORAMs in the chain.
func (h Hierarchy) NumORAMs() int { return len(h.Levels) }
