package encrypt

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/integrity"
)

// buildORAM wires a core ORAM over an encrypting store.
func buildORAM(t *testing.T, scheme Scheme, auth *integrity.Tree, randomize bool, seed int64) (*core.ORAM, *Store) {
	t.Helper()
	p := core.Params{
		LeafLevel: 4, Z: 4, BlockBytes: 16, Blocks: 64,
		StashCapacity:      80,
		BackgroundEviction: true,
	}
	cfg := StoreConfig{LeafLevel: p.LeafLevel, Z: p.Z, BlockBytes: p.BlockBytes, Scheme: scheme, Auth: auth}
	if randomize {
		cfg.RandomizeMemory = rand.New(rand.NewSource(seed + 1000))
	}
	store, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := core.NewMathLeafSource(rand.New(rand.NewSource(seed)))
	pos, err := core.NewOnChipPositionMap(p.Groups(), 1<<uint(p.LeafLevel), src)
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.New(p, store, pos, src)
	if err != nil {
		t.Fatal(err)
	}
	return o, store
}

func fill(b byte, n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestEncryptedORAMEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scheme func(t *testing.T) Scheme
	}{
		{"counter", func(t *testing.T) Scheme {
			s, err := NewCounterScheme(testKey, 31)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"strawman", func(t *testing.T) Scheme {
			s, err := NewStrawmanScheme(testKey, rand.New(rand.NewSource(9)))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o, _ := buildORAM(t, tc.scheme(t), nil, false, 7)
			rng := rand.New(rand.NewSource(3))
			shadow := map[uint64][]byte{}
			for i := 0; i < 600; i++ {
				addr := rng.Uint64() % 64
				if rng.Intn(2) == 0 {
					d := fill(byte(rng.Intn(256)), 16)
					if _, err := o.Access(addr, core.OpWrite, d); err != nil {
						t.Fatal(err)
					}
					shadow[addr] = d
				} else {
					got, err := o.Access(addr, core.OpRead, nil)
					if err != nil {
						t.Fatal(err)
					}
					want, ok := shadow[addr]
					if !ok {
						want = make([]byte, 16)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("step %d addr %d: got % x want % x", i, addr, got, want)
					}
				}
			}
		})
	}
}

func TestEncryptedMatchesMemStore(t *testing.T) {
	// The encrypting store and the plain store must implement identical
	// semantics: same seeds, same operations, same results.
	scheme, _ := NewCounterScheme(testKey, 31)
	enc, _ := buildORAM(t, scheme, nil, false, 11)

	p := enc.Params()
	mem, err := core.NewMemStore(p.LeafLevel, p.Z, p.BlockBytes)
	if err != nil {
		t.Fatal(err)
	}
	src := core.NewMathLeafSource(rand.New(rand.NewSource(11)))
	pos, _ := core.NewOnChipPositionMap(p.Groups(), 1<<uint(p.LeafLevel), src)
	ref, err := core.New(p, mem, pos, src)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 400; i++ {
		addr := rng.Uint64() % p.Blocks
		if rng.Intn(2) == 0 {
			d := fill(byte(i), 16)
			if _, err := enc.Access(addr, core.OpWrite, d); err != nil {
				t.Fatal(err)
			}
			if _, err := ref.Access(addr, core.OpWrite, d); err != nil {
				t.Fatal(err)
			}
		} else {
			a, err := enc.Access(addr, core.OpRead, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ref.Access(addr, core.OpRead, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("step %d: encrypted %x != reference %x", i, a, b)
			}
		}
	}
}

func TestCiphertextChangesEveryWriteback(t *testing.T) {
	// Even a pure read must leave every touched bucket re-randomized, or
	// an observer could tell reads from writes (Section 2).
	scheme, _ := NewCounterScheme(testKey, 31)
	o, store := buildORAM(t, scheme, nil, false, 17)
	if _, err := o.Access(5, core.OpWrite, fill(1, 16)); err != nil {
		t.Fatal(err)
	}
	before := store.SnapshotBucket(0) // root is on every path
	if _, err := o.Access(5, core.OpRead, nil); err != nil {
		t.Fatal(err)
	}
	after := store.SnapshotBucket(0)
	if bytes.Equal(before, after) {
		t.Error("root bucket ciphertext unchanged across an access")
	}
}

func TestAuthenticatedORAMWithUninitializedMemory(t *testing.T) {
	// The Section 5 design goal: no initialization pass. External memory
	// starts as random garbage; the valid bits keep it inert and the ORAM
	// must work and verify from the first access.
	scheme, err := NewCounterScheme(testKey, 31)
	if err != nil {
		t.Fatal(err)
	}
	auth := NewAuthTree(4, 4, 16, scheme)
	o, _ := buildORAM(t, scheme, auth, true, 23)
	shadow := map[uint64][]byte{}
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 500; i++ {
		addr := rng.Uint64() % 64
		if rng.Intn(2) == 0 {
			d := fill(byte(rng.Intn(256)), 16)
			if _, err := o.Access(addr, core.OpWrite, d); err != nil {
				t.Fatal(err)
			}
			shadow[addr] = d
		} else {
			got, err := o.Access(addr, core.OpRead, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := shadow[addr]
			if !ok {
				want = make([]byte, 16)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d addr %d mismatch", i, addr)
			}
		}
	}
	reads, writes, verifs := auth.Stats()
	if verifs == 0 || reads == 0 || writes == 0 {
		t.Error("authentication tree seems unused")
	}
}

func TestTamperDetection(t *testing.T) {
	scheme, _ := NewCounterScheme(testKey, 31)
	auth := NewAuthTree(4, 4, 16, scheme)
	o, store := buildORAM(t, scheme, auth, false, 31)
	for a := uint64(0); a < 32; a++ {
		if _, err := o.Access(a, core.OpWrite, fill(byte(a), 16)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the root bucket: every subsequent access reads it.
	store.TamperBucket(0, 0x01)
	_, err := o.Access(0, core.OpRead, nil)
	if !errors.Is(err, integrity.ErrVerify) {
		t.Errorf("tampered bucket not detected: %v", err)
	}
}

func TestReplayDetection(t *testing.T) {
	scheme, _ := NewCounterScheme(testKey, 31)
	auth := NewAuthTree(4, 4, 16, scheme)
	o, store := buildORAM(t, scheme, auth, false, 37)
	if _, err := o.Access(1, core.OpWrite, fill(1, 16)); err != nil {
		t.Fatal(err)
	}
	snap := store.SnapshotBucket(0)
	// Progress the ORAM so the snapshot goes stale.
	for a := uint64(0); a < 16; a++ {
		if _, err := o.Access(a, core.OpWrite, fill(2, 16)); err != nil {
			t.Fatal(err)
		}
	}
	// Replay the old (validly encrypted, validly hashed at the time)
	// bucket: freshness must catch it via the on-chip root.
	store.RestoreBucket(0, snap)
	_, err := o.Access(1, core.OpRead, nil)
	if !errors.Is(err, integrity.ErrVerify) {
		t.Errorf("replayed bucket not detected: %v", err)
	}
}

func TestStoreValidation(t *testing.T) {
	scheme, _ := NewCounterScheme(testKey, 31)
	if _, err := NewStore(StoreConfig{LeafLevel: 3, Z: 0, BlockBytes: 8, Scheme: scheme}); err == nil {
		t.Error("Z=0 accepted")
	}
	if _, err := NewStore(StoreConfig{LeafLevel: 3, Z: 1, BlockBytes: 0, Scheme: scheme}); err == nil {
		t.Error("metadata-only encrypted store accepted")
	}
	if _, err := NewStore(StoreConfig{LeafLevel: 3, Z: 1, BlockBytes: 8}); err == nil {
		t.Error("nil scheme accepted")
	}
	if _, err := NewStore(StoreConfig{
		LeafLevel: 3, Z: 1, BlockBytes: 8, Scheme: scheme,
		RandomizeMemory: rand.New(rand.NewSource(1)),
	}); err == nil {
		t.Error("randomized memory without integrity accepted")
	}
}

func TestWritePathRequiresMatchingRead(t *testing.T) {
	scheme, _ := NewCounterScheme(testKey, 31)
	store, err := NewStore(StoreConfig{LeafLevel: 4, Z: 2, BlockBytes: 8, Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WritePath(3, make([][]core.Slot, 5)); err == nil {
		t.Error("WritePath without ReadPath accepted")
	}
	if _, err := store.ReadPath(2, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := store.WritePath(3, make([][]core.Slot, 5)); err == nil {
		t.Error("WritePath for a different leaf accepted")
	}
	// The read of 2 is still outstanding, so its (late) write-back lands;
	// a second one must be rejected — writes never outnumber reads.
	if err := store.WritePath(2, make([][]core.Slot, 5)); err != nil {
		t.Errorf("deferred WritePath for outstanding read rejected: %v", err)
	}
	if err := store.WritePath(2, make([][]core.Slot, 5)); err == nil {
		t.Error("double WritePath for a single ReadPath accepted")
	}
}

// TestDeferredWriteBackInterleavingWithAuth drives the store in the
// staged protocol's access order — several path reads outstanding at
// once, write-backs landing late in FIFO order — and checks that
// authenticated round trips keep verifying and block payloads survive.
func TestDeferredWriteBackInterleavingWithAuth(t *testing.T) {
	scheme, _ := NewCounterScheme(testKey, 31)
	auth := NewAuthTree(4, 2, 8, scheme)
	store, err := NewStore(StoreConfig{LeafLevel: 4, Z: 2, BlockBytes: 8, Scheme: scheme, Auth: auth})
	if err != nil {
		t.Fatal(err)
	}
	write := func(leaf uint64, buckets [][]core.Slot) {
		t.Helper()
		if buckets == nil {
			buckets = make([][]core.Slot, 5)
		}
		if err := store.WritePath(leaf, buckets); err != nil {
			t.Fatal(err)
		}
	}
	read := func(leaf uint64) [][]core.Slot {
		t.Helper()
		got, err := store.ReadPath(leaf, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	// Seed a block on leaf 3's deepest bucket.
	read(3)
	seeded := make([][]core.Slot, 5)
	seeded[4] = []core.Slot{{Addr: 7, Leaf: 3, Data: fill(0xAB, 8)}}
	write(3, seeded)

	// Staged order: read 3, read 12, read 5 — then write them back FIFO.
	// The block travels as the stash would carry it: the early write-backs
	// rewrite their paths without it, and the final write-back places it
	// in the shared root bucket.
	got := read(3)
	if len(got[4]) != 1 || !bytes.Equal(got[4][0].Data, fill(0xAB, 8)) {
		t.Fatalf("seeded block lost before deferral: %v", got)
	}
	// ReadPath results alias the store's decode arena and go stale at the
	// next path operation; copy the block out the way the stash would.
	carried := got[4][0]
	carried.Data = append([]byte(nil), carried.Data...)
	read(12)
	read(5)
	write(3, nil)
	write(12, nil)
	relocated := make([][]core.Slot, 5)
	relocated[0] = []core.Slot{carried} // move the block to the shared root bucket
	write(5, relocated)

	// The root bucket is on every path; the block must be visible — and
	// the whole path must verify — wherever we look.
	if got := read(9); len(got[0]) != 1 || got[0][0].Addr != 7 {
		t.Fatalf("relocated block not visible at root via leaf 9: %v", got)
	}
	write(9, nil) // moves it out again (bucket rewritten empty)
	if got := read(3); len(flatten(got)) != 0 {
		t.Fatalf("tree should be empty after root rewrite, saw %v", got)
	}
	write(3, nil)
}

// countingTimer is a minimal core.PathTimer for the wrapper tests.
type countingTimer struct {
	reads, inlineWrites, deferredWrites int
}

func (c *countingTimer) ReadPath(uint64, []bool) { c.reads++ }
func (c *countingTimer) WritePath(_ uint64, deferred bool) {
	if deferred {
		c.deferredWrites++
	} else {
		c.inlineWrites++
	}
}

// TestTimedWrapperPreservesOutstandingPairing drives an encrypting,
// authenticated store through core.TimedStore in the staged access order
// (reads racing ahead of FIFO write-backs) and checks that the timed
// layer leaves the outstanding-path multiset untouched: late write-backs
// still land, writes still never outnumber reads, every path still
// verifies, and the timer sees exactly the store's I/O stream.
func TestTimedWrapperPreservesOutstandingPairing(t *testing.T) {
	scheme, _ := NewCounterScheme(testKey, 31)
	auth := NewAuthTree(4, 2, 8, scheme)
	inner, err := NewStore(StoreConfig{LeafLevel: 4, Z: 2, BlockBytes: 8, Scheme: scheme, Auth: auth})
	if err != nil {
		t.Fatal(err)
	}
	timer := &countingTimer{}
	store, err := core.NewTimedStore(inner, timer)
	if err != nil {
		t.Fatal(err)
	}

	// Three reads outstanding at once, write-backs landing late in FIFO
	// order — the deferred queue's traffic shape. The last one goes
	// through the deferred entry point, as the ORAM's FIFO drain would.
	for _, leaf := range []uint64{3, 12, 5} {
		if _, err := store.ReadPath(leaf, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.WritePath(3, make([][]core.Slot, 5)); err != nil {
		t.Fatalf("late write-back of outstanding read rejected through timed layer: %v", err)
	}
	if err := store.WritePath(12, make([][]core.Slot, 5)); err != nil {
		t.Fatal(err)
	}
	if err := store.WritePathDeferred(5, make([][]core.Slot, 5)); err != nil {
		t.Fatal(err)
	}
	// The multiset is drained: an unmatched write must still be rejected,
	// and the rejection must not be charged.
	if err := store.WritePath(3, make([][]core.Slot, 5)); err == nil {
		t.Error("unmatched WritePath accepted through timed layer")
	}
	if timer.reads != 3 || timer.inlineWrites != 2 || timer.deferredWrites != 1 {
		t.Errorf("timer saw reads=%d inline=%d deferred=%d, want 3/2/1",
			timer.reads, timer.inlineWrites, timer.deferredWrites)
	}
	// Authenticated reads keep verifying through the wrapper.
	if _, err := store.ReadPath(9, nil, nil); err != nil {
		t.Fatalf("authenticated read through timed layer failed: %v", err)
	}
	if err := store.WritePath(9, make([][]core.Slot, 5)); err != nil {
		t.Fatal(err)
	}
	if store.MemoryBytes() != inner.MemoryBytes() {
		t.Errorf("footprint not forwarded: %d vs %d", store.MemoryBytes(), inner.MemoryBytes())
	}
}

func flatten(buckets [][]core.Slot) []core.Slot {
	var out []core.Slot
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}

func TestStoreTrafficAndFootprint(t *testing.T) {
	scheme, _ := NewCounterScheme(testKey, 31)
	store, err := NewStore(StoreConfig{LeafLevel: 4, Z: 2, BlockBytes: 8, Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	stride := PaddedBucketBytes(scheme, 2, 8)
	if got, want := store.MemoryBytes(), uint64(31*stride); got != want {
		t.Errorf("MemoryBytes=%d want %d", got, want)
	}
	if _, err := store.ReadPath(0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := store.WritePath(0, make([][]core.Slot, 5)); err != nil {
		t.Fatal(err)
	}
	r, w := store.Traffic()
	if r != 5 || w != 5 {
		t.Errorf("traffic=(%d,%d) want (5,5) buckets", r, w)
	}
}

func TestOnBucketAccessHook(t *testing.T) {
	scheme, _ := NewCounterScheme(testKey, 31)
	var reads, writes int
	store, err := NewStore(StoreConfig{
		LeafLevel: 4, Z: 2, BlockBytes: 8, Scheme: scheme,
		OnBucketAccess: func(_ uint64, write bool) {
			if write {
				writes++
			} else {
				reads++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.ReadPath(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := store.WritePath(1, make([][]core.Slot, 5)); err != nil {
		t.Fatal(err)
	}
	if reads != 5 || writes != 5 {
		t.Errorf("hook saw (%d,%d) want (5,5)", reads, writes)
	}
}
