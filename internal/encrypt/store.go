package encrypt

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/integrity"
	"repro/internal/storage"
	"repro/internal/treemath"
)

// PadGranularity pads each bucket ciphertext to a multiple of the DRAM
// access granularity (Section 2.4).
const PadGranularity = 64

// slotHeaderBytes is the byte-aligned per-slot header: 8-byte address
// (stored as Addr+1; 0 marks a dummy block, the paper's reserved address)
// plus a 4-byte leaf label.
const slotHeaderBytes = 12

// StoreConfig parameterizes a Store.
type StoreConfig struct {
	LeafLevel  int
	Z          int
	BlockBytes int // must be > 0: ciphertexts need payloads
	Scheme     Scheme
	// Auth, when non-nil, verifies every path read and re-authenticates
	// every write-back (Section 5). Build it with NewAuthTree so the
	// hashed bucket width matches.
	Auth *integrity.Tree
	// RandomizeMemory fills external memory with bytes from this reader at
	// construction, simulating uninitialized DRAM. Requires Auth: the
	// valid bits are what make garbage memory safe to consume.
	RandomizeMemory io.Reader
	// OnBucketAccess observes external-memory traffic (bucket granularity).
	OnBucketAccess func(flat uint64, write bool)
	// Backing, when non-nil, is the storage the padded ciphertext buckets
	// live in (a file, a WAL-wrapped file, ...). Its geometry must match
	// this store: NumBuckets for the leaf level and a stride of
	// PaddedBucketBytes. Nil means a private in-memory arena — the
	// zero-overhead default.
	Backing storage.Storage
}

// Store is a core.PathStore that serializes buckets byte-aligned, encrypts
// them with a randomized Scheme and keeps them in a flat external memory,
// optionally authenticated.
type Store struct {
	cfg    StoreConfig
	tree   treemath.Tree
	z      int
	pbytes int // plaintext bucket bytes
	cbytes int // raw ciphertext bucket bytes
	stride int // padded ciphertext bucket bytes

	backing storage.Storage
	written []bool // per bucket; used instead of valid bits when Auth == nil

	// outstanding counts, per leaf, ReadPaths not yet matched by a
	// WritePath. The protocol only ever writes paths it has read, but with
	// deferred write-backs the write may arrive after reads (and writes)
	// of other paths — a multiset is the strongest pairing the store can
	// still enforce.
	outstanding map[uint64]int

	// Reusable per-path scratch, sized once at construction. plainPath
	// holds one plaintext bucket per level: ReadPath decodes into it and
	// the Slots it returns alias it (valid until the next store
	// operation); WritePath serializes into it before sealing. openRefs
	// selects which levels OpenPath decrypts (nil = skip); idsBuf carries
	// the flat bucket IDs of the current path; reachBuf backs
	// pathReachability when there is no auth tree.
	// sealBufs holds one stride-sized store-owned record per level:
	// WritePath seals into it and then hands the whole path to the
	// backing in one WriteBuckets call — the seam the WAL logs at.
	plainPath [][]byte
	openRefs  [][]byte
	idsBuf    []uint64
	reachBuf  []bool
	ctRefs    [][]byte
	sealBufs  [][]byte

	bucketReads, bucketWrites uint64
}

// PlainBucketBytes returns the serialized plaintext size of one bucket.
func PlainBucketBytes(z, blockBytes int) int { return z * (slotHeaderBytes + blockBytes) }

// CipherBucketBytes returns the raw ciphertext size of one bucket under the
// given scheme.
func CipherBucketBytes(s Scheme, z, blockBytes int) int {
	return PlainBucketBytes(z, blockBytes) + s.Overhead(z)
}

// PaddedBucketBytes returns the external-memory stride of one bucket.
func PaddedBucketBytes(s Scheme, z, blockBytes int) int {
	raw := CipherBucketBytes(s, z, blockBytes)
	if r := raw % PadGranularity; r != 0 {
		raw += PadGranularity - r
	}
	return raw
}

// NewAuthTree builds an authentication tree sized for this store's
// ciphertext buckets.
func NewAuthTree(leafLevel, z, blockBytes int, s Scheme) *integrity.Tree {
	return integrity.New(treemath.New(leafLevel), CipherBucketBytes(s, z, blockBytes))
}

// NewStore allocates the external memory and wires the scheme.
func NewStore(cfg StoreConfig) (*Store, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("encrypt: scheme is required")
	}
	if cfg.Z < 1 {
		return nil, fmt.Errorf("encrypt: Z=%d must be >= 1", cfg.Z)
	}
	if cfg.BlockBytes < 1 {
		return nil, fmt.Errorf("encrypt: encrypted stores need payloads (BlockBytes >= 1)")
	}
	if cfg.RandomizeMemory != nil && cfg.Auth == nil {
		return nil, fmt.Errorf("encrypt: RandomizeMemory requires the integrity layer")
	}
	tree := treemath.New(cfg.LeafLevel)
	s := &Store{
		cfg:    cfg,
		tree:   tree,
		z:      cfg.Z,
		pbytes: PlainBucketBytes(cfg.Z, cfg.BlockBytes),
	}
	s.cbytes = s.pbytes + cfg.Scheme.Overhead(cfg.Z)
	s.stride = s.cbytes
	if r := s.stride % PadGranularity; r != 0 {
		s.stride += PadGranularity - r
	}
	if cfg.Backing != nil {
		if cfg.Backing.NumBuckets() != tree.NumBuckets() || cfg.Backing.Stride() != s.stride {
			return nil, fmt.Errorf("encrypt: backing geometry (%d buckets, stride %d) does not match store (%d buckets, stride %d)",
				cfg.Backing.NumBuckets(), cfg.Backing.Stride(), tree.NumBuckets(), s.stride)
		}
		s.backing = cfg.Backing
	} else {
		mem, err := storage.NewMem(tree.NumBuckets(), s.stride)
		if err != nil {
			return nil, err
		}
		s.backing = mem
	}
	s.written = make([]bool, tree.NumBuckets())
	s.outstanding = make(map[uint64]int)
	s.plainPath = make([][]byte, tree.Levels())
	plainArena := make([]byte, tree.Levels()*s.pbytes)
	for d := range s.plainPath {
		s.plainPath[d] = plainArena[d*s.pbytes : (d+1)*s.pbytes : (d+1)*s.pbytes]
	}
	s.openRefs = make([][]byte, tree.Levels())
	s.idsBuf = make([]uint64, tree.Levels())
	s.reachBuf = make([]bool, tree.Levels())
	s.ctRefs = make([][]byte, tree.Levels())
	s.sealBufs = make([][]byte, tree.Levels())
	sealArena := make([]byte, tree.Levels()*s.stride)
	for d := range s.sealBufs {
		s.sealBufs[d] = sealArena[d*s.stride : (d+1)*s.stride : (d+1)*s.stride]
	}
	if cfg.RandomizeMemory != nil {
		rec := make([]byte, s.stride)
		for flat := uint64(0); flat < tree.NumBuckets(); flat++ {
			if _, err := io.ReadFull(cfg.RandomizeMemory, rec); err != nil {
				return nil, fmt.Errorf("encrypt: randomizing memory: %w", err)
			}
			if err := s.backing.WriteBucket(flat, rec); err != nil {
				return nil, fmt.Errorf("encrypt: randomizing memory: %w", err)
			}
		}
	}
	return s, nil
}

// MemoryBytes returns the external-memory footprint of the tree.
func (s *Store) MemoryBytes() uint64 { return s.backing.MemoryBytes() }

// Backing returns the storage the ciphertext buckets live in.
func (s *Store) Backing() storage.Storage { return s.backing }

// Traffic returns cumulative bucket reads and writes.
func (s *Store) Traffic() (reads, writes uint64) { return s.bucketReads, s.bucketWrites }

// bucketSlice returns the live ciphertext of one bucket, aliasing the
// backing (test hooks only: the hot paths use the batched calls).
func (s *Store) bucketSlice(flat uint64) []byte {
	rec, err := s.backing.ReadBucket(flat)
	if err != nil {
		panic(fmt.Sprintf("encrypt: bucketSlice(%d): %v", flat, err))
	}
	return rec[:s.cbytes]
}

// ReadPath implements core.PathStore: decrypt (and verify) the path,
// emit the real blocks per level into dst. Buckets flagged in skip are
// still read and verified — their ciphertexts are part of the path's
// authentication — but not decrypted or emitted: the caller holds their
// live content in a pending deferred write-back, so the store copy is
// stale.
//
// The returned Slot.Data slices alias the store's per-level decode arena
// and stay valid only until the next ReadPath or WritePath on this store;
// callers that keep block contents longer must copy them out.
func (s *Store) ReadPath(leaf uint64, skip []bool, dst [][]core.Slot) ([][]core.Slot, error) {
	var err error
	if dst, err = core.PrepareReadBuf(dst, s.tree.Levels()); err != nil {
		return dst, err
	}
	if !s.tree.ValidLeaf(leaf) {
		return dst, fmt.Errorf("encrypt: leaf %d out of range", leaf)
	}
	reach := s.pathReachability(leaf)
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		flat := s.tree.PathBucket(leaf, d)
		s.idsBuf[d] = flat
		s.noteAccess(flat, false)
	}
	if err := s.backing.ReadBuckets(s.idsBuf, s.ctRefs); err != nil {
		return dst, err
	}
	for d := range s.ctRefs {
		s.ctRefs[d] = s.ctRefs[d][:s.cbytes]
	}
	if s.cfg.Auth != nil {
		if err := s.cfg.Auth.VerifyPath(leaf, s.ctRefs); err != nil {
			return dst, err
		}
	}
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		switch {
		case !reach[d]:
			// Never written: only garbage (or zeroes) there.
			s.openRefs[d] = nil
		case skip != nil && skip[d]:
			// Live content is in the caller's write buffer.
			s.openRefs[d] = nil
		default:
			s.openRefs[d] = s.plainPath[d]
		}
	}
	if err := s.cfg.Scheme.OpenPath(s.idsBuf, s.ctRefs, s.z, s.openRefs); err != nil {
		return dst, err
	}
	slotBytes := slotHeaderBytes + s.cfg.BlockBytes
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		if s.openRefs[d] == nil {
			continue
		}
		for i := 0; i < s.z; i++ {
			rec := s.plainPath[d][i*slotBytes : (i+1)*slotBytes]
			addr1 := binary.LittleEndian.Uint64(rec[:8])
			if addr1 == 0 {
				continue // dummy block
			}
			dst[d] = append(dst[d], core.Slot{
				Addr: addr1 - 1,
				Leaf: binary.LittleEndian.Uint32(rec[8:12]),
				Data: rec[slotHeaderBytes:slotBytes:slotBytes],
			})
		}
	}
	s.outstanding[leaf]++
	return dst, nil
}

// pathReachability reports, per level, whether the bucket on the path to
// leaf has meaningful (ever-written) content right now. The result aliases
// reachBuf (valid until the next path operation) unless the auth tree
// answers, which allocates per call — the integrity configuration is not
// part of the zero-allocation target.
func (s *Store) pathReachability(leaf uint64) []bool {
	if s.cfg.Auth != nil {
		return s.cfg.Auth.PathReachability(leaf)
	}
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		s.reachBuf[d] = s.written[s.tree.PathBucket(leaf, d)]
	}
	return s.reachBuf
}

// WritePath implements core.PathStore: serialize, pad with dummies,
// re-encrypt under fresh randomness and re-authenticate. The protocol
// only writes paths it has read; the store enforces that pairing as a
// multiset, since deferred write-backs may land after later paths were
// read or written. Reachability is computed at write time — with
// intervening write-backs it can only have improved since the read.
func (s *Store) WritePath(leaf uint64, buckets [][]core.Slot) error {
	if s.outstanding[leaf] == 0 {
		return fmt.Errorf("encrypt: WritePath(%d) without matching ReadPath", leaf)
	}
	if len(buckets) != s.tree.Levels() {
		return fmt.Errorf("encrypt: got %d buckets, want %d", len(buckets), s.tree.Levels())
	}
	reach := s.pathReachability(leaf)
	if s.outstanding[leaf]--; s.outstanding[leaf] == 0 {
		delete(s.outstanding, leaf)
	}
	slotBytes := slotHeaderBytes + s.cfg.BlockBytes
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		if len(buckets[d]) > s.z {
			return fmt.Errorf("encrypt: bucket at level %d overfull (%d > %d)", d, len(buckets[d]), s.z)
		}
		s.idsBuf[d] = s.tree.PathBucket(leaf, d)
		plain := s.plainPath[d]
		for i := 0; i < s.z; i++ {
			rec := plain[i*slotBytes : (i+1)*slotBytes]
			if i < len(buckets[d]) {
				b := buckets[d][i]
				binary.LittleEndian.PutUint64(rec[:8], b.Addr+1)
				binary.LittleEndian.PutUint32(rec[8:12], b.Leaf)
				if len(b.Data) != s.cfg.BlockBytes {
					return fmt.Errorf("encrypt: block %d payload %dB, want %dB", b.Addr, len(b.Data), s.cfg.BlockBytes)
				}
				copy(rec[slotHeaderBytes:slotBytes], b.Data)
			} else {
				// Dummy block: zero header; zero payload keeps plaintext
				// deterministic, the randomized encryption hides it.
				for j := 0; j < slotBytes; j++ {
					rec[j] = 0
				}
			}
		}
		s.ctRefs[d] = s.sealBufs[d][:s.cbytes]
	}
	// Seal the whole path in one call into the store-owned record
	// buffers, then commit it to the backing as one batch — the unit the
	// WAL logs atomically. The pad tail of each sealBuf is never written
	// and stays zero.
	if err := s.cfg.Scheme.SealPath(s.idsBuf, s.plainPath, s.z, s.ctRefs); err != nil {
		return err
	}
	if err := s.backing.WriteBuckets(s.idsBuf, s.sealBufs); err != nil {
		return err
	}
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		s.written[s.idsBuf[d]] = true
		s.noteAccess(s.idsBuf[d], true)
	}
	if s.cfg.Auth != nil {
		return s.cfg.Auth.UpdatePath(leaf, s.ctRefs, reach)
	}
	return nil
}

// TamperBucket XORs mask into a bucket's ciphertext (test hook simulating
// external-memory tampering).
func (s *Store) TamperBucket(flat uint64, mask byte) {
	ct := s.bucketSlice(flat)
	for i := range ct {
		ct[i] ^= mask
	}
}

// SnapshotBucket returns a copy of a bucket's ciphertext, and
// RestoreBucket writes one back — together they simulate a replay attack.
func (s *Store) SnapshotBucket(flat uint64) []byte {
	return append([]byte(nil), s.bucketSlice(flat)...)
}

// RestoreBucket implements the replay half of Snapshot/Restore.
func (s *Store) RestoreBucket(flat uint64, snap []byte) {
	copy(s.bucketSlice(flat), snap)
}

func (s *Store) noteAccess(flat uint64, write bool) {
	if write {
		s.bucketWrites++
	} else {
		s.bucketReads++
	}
	if s.cfg.OnBucketAccess != nil {
		s.cfg.OnBucketAccess(flat, write)
	}
}
