package encrypt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var testKey = []byte("0123456789abcdef")

func TestCounterRoundTrip(t *testing.T) {
	s, err := NewCounterScheme(testKey, 16)
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("the quick brown fox jumps over the lazy dog, twice over!")
	ct := make([]byte, len(plain)+s.Overhead(3))
	if err := s.Seal(5, plain, 3, ct); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(plain))
	if err := s.Open(5, ct, 3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Errorf("round trip mismatch")
	}
}

func TestCounterRandomizes(t *testing.T) {
	// Randomized encryption: sealing identical plaintext twice must give
	// different ciphertexts (Section 2: the bitstring of every block
	// changes with overwhelming probability).
	s, _ := NewCounterScheme(testKey, 4)
	plain := make([]byte, 48)
	a := make([]byte, len(plain)+8)
	b := make([]byte, len(plain)+8)
	if err := s.Seal(1, plain, 2, a); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(1, plain, 2, b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("two seals produced identical ciphertexts")
	}
	if s.Counter(1) != 2 {
		t.Errorf("counter=%d want 2", s.Counter(1))
	}
}

func TestCounterBucketSeparation(t *testing.T) {
	// Seeding the OTP with BucketID keeps pads of distinct buckets
	// distinct: the same plaintext at the same counter value must encrypt
	// differently in different buckets.
	s, _ := NewCounterScheme(testKey, 4)
	plain := make([]byte, 32)
	a := make([]byte, 40)
	b := make([]byte, 40)
	if err := s.Seal(0, plain, 1, a); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(1, plain, 1, b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a[8:], b[8:]) {
		t.Error("same pad used for two distinct buckets")
	}
	// Opening with the wrong bucket ID must not reveal the plaintext.
	got := make([]byte, 32)
	if err := s.Open(2, a, 1, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, plain) {
		t.Error("wrong-bucket decryption yielded the plaintext")
	}
}

func TestCounterValidation(t *testing.T) {
	if _, err := NewCounterScheme([]byte("short"), 4); err == nil {
		t.Error("bad key accepted")
	}
	s, _ := NewCounterScheme(testKey, 4)
	if err := s.Seal(9, make([]byte, 8), 1, make([]byte, 16)); err == nil {
		t.Error("out-of-range bucket accepted")
	}
	if err := s.Seal(0, make([]byte, 8), 1, make([]byte, 15)); err == nil {
		t.Error("wrong seal buffer size accepted")
	}
	if err := s.Open(0, make([]byte, 4), 1, nil); err == nil {
		t.Error("truncated ciphertext accepted")
	}
	if err := s.Open(9, make([]byte, 16), 1, make([]byte, 8)); err == nil {
		t.Error("out-of-range bucket open accepted")
	}
}

func TestStrawmanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := NewStrawmanScheme(testKey, rng)
	if err != nil {
		t.Fatal(err)
	}
	plain := make([]byte, 3*20)
	rng.Read(plain)
	ct := make([]byte, len(plain)+s.Overhead(3))
	if err := s.Seal(0, plain, 3, ct); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(plain))
	if err := s.Open(0, ct, 3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Error("round trip mismatch")
	}
}

func TestStrawmanRandomizes(t *testing.T) {
	s, _ := NewStrawmanScheme(testKey, rand.New(rand.NewSource(2)))
	plain := make([]byte, 32)
	a := make([]byte, 32+16)
	b := make([]byte, 32+16)
	if err := s.Seal(0, plain, 1, a); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(0, plain, 1, b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("strawman reused a per-block key")
	}
}

func TestStrawmanOverheadIs2ZTimesCounter(t *testing.T) {
	// Section 2.2.2: the counter scheme reduces the strawman's overhead by
	// a factor of 2Z. With 64-bit counters: strawman 128 bits/block vs 64
	// bits/bucket.
	straw, _ := NewStrawmanScheme(testKey, rand.New(rand.NewSource(3)))
	ctr, _ := NewCounterScheme(testKey, 1)
	for _, z := range []int{1, 2, 4, 8} {
		if got, want := straw.Overhead(z), 16*z; got != want {
			t.Errorf("strawman overhead(z=%d)=%d want %d", z, got, want)
		}
		if got := ctr.Overhead(z); got != 8 {
			t.Errorf("counter overhead(z=%d)=%d want 8", z, got)
		}
		if straw.Overhead(z) != 2*z*ctr.Overhead(z) {
			t.Errorf("z=%d: overhead ratio is not 2Z", z)
		}
	}
}

func TestStrawmanValidation(t *testing.T) {
	if _, err := NewStrawmanScheme(testKey, nil); err == nil {
		t.Error("nil randomness accepted")
	}
	s, _ := NewStrawmanScheme(testKey, rand.New(rand.NewSource(4)))
	if err := s.Seal(0, make([]byte, 7), 2, make([]byte, 39)); err == nil {
		t.Error("indivisible plaintext accepted")
	}
	if err := s.Seal(0, make([]byte, 8), 2, make([]byte, 10)); err == nil {
		t.Error("wrong output size accepted")
	}
	if err := s.Open(0, make([]byte, 7), 2, nil); err == nil {
		t.Error("indivisible ciphertext accepted")
	}
}

func TestSchemesRoundTripProperty(t *testing.T) {
	ctr, _ := NewCounterScheme(testKey, 64)
	straw, _ := NewStrawmanScheme(testKey, rand.New(rand.NewSource(5)))
	f := func(seed int64, zRaw, lenRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		z := int(zRaw%4) + 1
		slot := int(lenRaw%40) + 1
		plain := make([]byte, z*slot)
		rng.Read(plain)
		bucket := rng.Uint64() % 64
		for _, s := range []Scheme{ctr, straw} {
			ct := make([]byte, len(plain)+s.Overhead(z))
			if err := s.Seal(bucket, plain, z, ct); err != nil {
				return false
			}
			got := make([]byte, len(plain))
			if err := s.Open(bucket, ct, z, got); err != nil {
				return false
			}
			if !bytes.Equal(got, plain) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSchemeNames(t *testing.T) {
	ctr, _ := NewCounterScheme(testKey, 1)
	straw, _ := NewStrawmanScheme(testKey, rand.New(rand.NewSource(6)))
	if ctr.Name() != "counter" || straw.Name() != "strawman" {
		t.Error("scheme names wrong")
	}
}

func TestBucketSizeHelpers(t *testing.T) {
	ctr, _ := NewCounterScheme(testKey, 1)
	if got := PlainBucketBytes(3, 128); got != 3*140 {
		t.Errorf("PlainBucketBytes=%d want 420", got)
	}
	if got := CipherBucketBytes(ctr, 3, 128); got != 3*140+8 {
		t.Errorf("CipherBucketBytes=%d want 428", got)
	}
	if got := PaddedBucketBytes(ctr, 3, 128); got != 448 {
		t.Errorf("PaddedBucketBytes=%d want 448", got)
	}
}
