// Package encrypt implements the paper's two randomized bucket-encryption
// schemes (Section 2.2) and an encrypting PathStore that serializes buckets
// into a flat external memory, optionally verified by the authentication
// tree of internal/integrity (Section 5).
//
// Layout note: the analytical model in internal/analysis uses the paper's
// bit-exact field widths (L-bit leaves, U-bit addresses). The functional
// store here uses byte-aligned fields — 8-byte address (0 reserved for
// dummies, as in the paper), 4-byte leaf — which only changes constants.
package encrypt

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"io"
)

// KeySize is the AES-128 key size used throughout (the paper's processor
// secret key K).
const KeySize = 16

// Scheme is a randomized encryption over whole buckets. Implementations
// must re-randomize on every Seal so an observer cannot tell whether bucket
// contents changed (Section 2).
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Overhead returns the ciphertext bytes added to a z-slot bucket.
	Overhead(z int) int
	// Seal encrypts plain into out, which must be exactly
	// len(plain)+Overhead(z) bytes. bucketID seeds position binding where
	// the scheme requires it.
	Seal(bucketID uint64, plain []byte, z int, out []byte) error
	// Open decrypts ct into out, which must be exactly
	// len(ct)-Overhead(z) bytes.
	Open(bucketID uint64, ct []byte, z int, out []byte) error
	// SealPath seals one bucket per path level in a single call: ids[d],
	// plain[d] and out[d] describe level d, with the same per-bucket size
	// contract as Seal. A path-granularity call lets the scheme derive its
	// cipher state once per path instead of once per bucket, and is the
	// allocation-free entry point the hot access path uses.
	SealPath(ids []uint64, plain [][]byte, z int, out [][]byte) error
	// OpenPath decrypts one bucket per level: ct[d] into out[d]. A nil
	// out[d] skips level d entirely (the caller already holds that bucket,
	// e.g. in its deferred-write-back overlay); ct[d] is not touched.
	OpenPath(ids []uint64, ct [][]byte, z int, out [][]byte) error
}

// CounterScheme is the counter-based scheme of Section 2.2.2: one 64-bit
// per-bucket counter stored in the clear; the bucket plaintext is XORed
// with the one-time pad AES_K(BucketID || BucketCounter || chunk). Because
// buckets are read and written atomically, a (BucketID, counter) pair is
// never reused, and seeding with BucketID keeps pads of distinct buckets
// distinct. Overhead: 8 bytes per bucket (vs. 16 per block for the
// strawman — the paper's 2Z reduction).
type CounterScheme struct {
	block    cipher.Block
	counters []uint64
	// seed/pad are xorPad's AES input/output scratch. Passing stack
	// arrays through the cipher.Block interface makes them escape — two
	// heap allocations per bucket — so the scheme owns them instead.
	// This makes CounterScheme single-goroutine, matching the ownership
	// of every other per-shard container on the hot path.
	seed, pad [aes.BlockSize]byte
}

// NewCounterScheme builds the scheme for a tree of numBuckets buckets under
// the 16-byte processor key. Counters start at zero but, per the paper,
// need no particular initial value.
func NewCounterScheme(key []byte, numBuckets uint64) (*CounterScheme, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("encrypt: %w", err)
	}
	return &CounterScheme{block: b, counters: make([]uint64, numBuckets)}, nil
}

// Name implements Scheme.
func (s *CounterScheme) Name() string { return "counter" }

// Overhead implements Scheme.
func (s *CounterScheme) Overhead(int) int { return 8 }

// Counter returns the current counter of a bucket (for tests and the
// Section 2.2.2 non-rollover discussion).
func (s *CounterScheme) Counter(bucketID uint64) uint64 { return s.counters[bucketID] }

// Seal implements Scheme.
func (s *CounterScheme) Seal(bucketID uint64, plain []byte, z int, out []byte) error {
	if len(out) != len(plain)+8 {
		return fmt.Errorf("encrypt: seal buffer %d want %d", len(out), len(plain)+8)
	}
	if bucketID >= uint64(len(s.counters)) {
		return fmt.Errorf("encrypt: bucket %d out of range", bucketID)
	}
	s.counters[bucketID]++
	ctr := s.counters[bucketID]
	binary.LittleEndian.PutUint64(out[:8], ctr)
	s.xorPad(bucketID, ctr, plain, out[8:])
	return nil
}

// Open implements Scheme.
func (s *CounterScheme) Open(bucketID uint64, ct []byte, z int, out []byte) error {
	if len(ct) < 8 || len(out) != len(ct)-8 {
		return fmt.Errorf("encrypt: open buffer %d for ct %d", len(out), len(ct))
	}
	if bucketID >= uint64(len(s.counters)) {
		return fmt.Errorf("encrypt: bucket %d out of range", bucketID)
	}
	ctr := binary.LittleEndian.Uint64(ct[:8])
	s.xorPad(bucketID, ctr, ct[8:], out)
	return nil
}

// SealPath implements Scheme: one Seal per level, through the concrete
// receiver (no per-bucket interface dispatch). The AES key schedule is
// shared across the whole path — it lives in s.block — and xorPad streams
// the pad word-wise, so the call allocates nothing.
func (s *CounterScheme) SealPath(ids []uint64, plain [][]byte, z int, out [][]byte) error {
	if len(plain) != len(ids) || len(out) != len(ids) {
		return fmt.Errorf("encrypt: seal path of %d ids, %d plain, %d out", len(ids), len(plain), len(out))
	}
	for d := range ids {
		if err := s.Seal(ids[d], plain[d], z, out[d]); err != nil {
			return err
		}
	}
	return nil
}

// OpenPath implements Scheme; out[d] == nil skips level d.
func (s *CounterScheme) OpenPath(ids []uint64, ct [][]byte, z int, out [][]byte) error {
	if len(ct) != len(ids) || len(out) != len(ids) {
		return fmt.Errorf("encrypt: open path of %d ids, %d ct, %d out", len(ids), len(ct), len(out))
	}
	for d := range ids {
		if out[d] == nil {
			continue
		}
		if err := s.Open(ids[d], ct[d], z, out[d]); err != nil {
			return err
		}
	}
	return nil
}

// xorPad XORs src with the OTP stream AES_K(bucketID || ctr || i) into dst.
func (s *CounterScheme) xorPad(bucketID, ctr uint64, src, dst []byte) {
	seed, pad := s.seed[:], s.pad[:]
	// 6 bytes of bucket ID (trees are capped well below 2^48 buckets),
	// 8 bytes of counter, 2 bytes of chunk index.
	seed[0] = byte(bucketID)
	seed[1] = byte(bucketID >> 8)
	seed[2] = byte(bucketID >> 16)
	seed[3] = byte(bucketID >> 24)
	seed[4] = byte(bucketID >> 32)
	seed[5] = byte(bucketID >> 40)
	binary.LittleEndian.PutUint64(seed[6:14], ctr)
	// Full blocks XOR 8 bytes at a time; the pad byte stream is identical
	// to a per-byte XOR, only the grouping changes.
	off, i := 0, uint16(0)
	for ; off+aes.BlockSize <= len(src); off, i = off+aes.BlockSize, i+1 {
		binary.LittleEndian.PutUint16(seed[14:16], i)
		s.block.Encrypt(pad[:], seed[:])
		lo := binary.LittleEndian.Uint64(src[off:]) ^ binary.LittleEndian.Uint64(pad[:8])
		hi := binary.LittleEndian.Uint64(src[off+8:]) ^ binary.LittleEndian.Uint64(pad[8:])
		binary.LittleEndian.PutUint64(dst[off:], lo)
		binary.LittleEndian.PutUint64(dst[off+8:], hi)
	}
	if off < len(src) {
		binary.LittleEndian.PutUint16(seed[14:16], i)
		s.block.Encrypt(pad[:], seed[:])
		for j := 0; off+j < len(src); j++ {
			dst[off+j] = src[off+j] ^ pad[j]
		}
	}
}

// StrawmanScheme is the per-block random-key scheme of Section 2.2.1: each
// block gets a fresh random key K', stored as AES_K(K'), and the block
// plaintext is XORed with the pad AES_K'(i). Overhead: 16 bytes per block.
type StrawmanScheme struct {
	block cipher.Block
	rand  io.Reader
}

// NewStrawmanScheme builds the scheme under the processor key; random reads
// per-block keys from rand (crypto/rand in production, a seeded generator
// in tests).
func NewStrawmanScheme(key []byte, rand io.Reader) (*StrawmanScheme, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("encrypt: %w", err)
	}
	if rand == nil {
		return nil, fmt.Errorf("encrypt: strawman scheme needs a randomness source")
	}
	return &StrawmanScheme{block: b, rand: rand}, nil
}

// Name implements Scheme.
func (s *StrawmanScheme) Name() string { return "strawman" }

// Overhead implements Scheme.
func (s *StrawmanScheme) Overhead(z int) int { return 16 * z }

// Seal implements Scheme. The bucket plaintext is split into z equal slots,
// each encrypted independently (the strawman has no bucket-level state, so
// bucketID is unused).
func (s *StrawmanScheme) Seal(_ uint64, plain []byte, z int, out []byte) error {
	if z < 1 || len(plain)%z != 0 {
		return fmt.Errorf("encrypt: plaintext %dB not divisible into %d slots", len(plain), z)
	}
	if len(out) != len(plain)+16*z {
		return fmt.Errorf("encrypt: seal buffer %d want %d", len(out), len(plain)+16*z)
	}
	slot := len(plain) / z
	for i := 0; i < z; i++ {
		var kPrime [16]byte
		if _, err := io.ReadFull(s.rand, kPrime[:]); err != nil {
			return fmt.Errorf("encrypt: drawing block key: %w", err)
		}
		dst := out[i*(16+slot):]
		s.block.Encrypt(dst[:16], kPrime[:]) // AES_K(K'), invertible for decryption
		blk, err := aes.NewCipher(kPrime[:])
		if err != nil {
			return err
		}
		otp(blk, plain[i*slot:(i+1)*slot], dst[16:16+slot])
	}
	return nil
}

// Open implements Scheme.
func (s *StrawmanScheme) Open(_ uint64, ct []byte, z int, out []byte) error {
	if z < 1 || len(ct)%z != 0 {
		return fmt.Errorf("encrypt: ciphertext %dB not divisible into %d slots", len(ct), z)
	}
	slot := len(ct)/z - 16
	if slot < 0 || len(out) != len(ct)-16*z {
		return fmt.Errorf("encrypt: open buffer %d for ct %d", len(out), len(ct))
	}
	for i := 0; i < z; i++ {
		src := ct[i*(16+slot):]
		var kPrime [16]byte
		s.block.Decrypt(kPrime[:], src[:16])
		blk, err := aes.NewCipher(kPrime[:])
		if err != nil {
			return err
		}
		otp(blk, src[16:16+slot], out[i*slot:(i+1)*slot])
	}
	return nil
}

// SealPath implements Scheme by looping Seal. The strawman re-derives a
// fresh per-block key schedule on every slot by construction (that is the
// scheme), so a path-granularity call cannot amortize anything; it exists
// for interface completeness and is excluded from the zero-allocation
// target.
func (s *StrawmanScheme) SealPath(ids []uint64, plain [][]byte, z int, out [][]byte) error {
	if len(plain) != len(ids) || len(out) != len(ids) {
		return fmt.Errorf("encrypt: seal path of %d ids, %d plain, %d out", len(ids), len(plain), len(out))
	}
	for d := range ids {
		if err := s.Seal(ids[d], plain[d], z, out[d]); err != nil {
			return err
		}
	}
	return nil
}

// OpenPath implements Scheme by looping Open; out[d] == nil skips level d.
func (s *StrawmanScheme) OpenPath(ids []uint64, ct [][]byte, z int, out [][]byte) error {
	if len(ct) != len(ids) || len(out) != len(ids) {
		return fmt.Errorf("encrypt: open path of %d ids, %d ct, %d out", len(ids), len(ct), len(out))
	}
	for d := range ids {
		if out[d] == nil {
			continue
		}
		if err := s.Open(ids[d], ct[d], z, out[d]); err != nil {
			return err
		}
	}
	return nil
}

// otp XORs src with the pad AES_k(i) into dst.
func otp(blk cipher.Block, src, dst []byte) {
	var seed, pad [aes.BlockSize]byte
	for off, i := 0, uint64(0); off < len(src); off, i = off+aes.BlockSize, i+1 {
		binary.LittleEndian.PutUint64(seed[:8], i)
		blk.Encrypt(pad[:], seed[:])
		n := len(src) - off
		if n > aes.BlockSize {
			n = aes.BlockSize
		}
		for j := 0; j < n; j++ {
			dst[off+j] = src[off+j] ^ pad[j]
		}
	}
}
