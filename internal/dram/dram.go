// Package dram is an event-driven DDR3 timing model standing in for the
// DRAMSim2 simulator the paper uses (Section 4.2). It models what the
// Figure 11 experiment depends on: per-bank open-row state (row-buffer hits
// vs. misses), ACT/PRE/CAS timing, data-bus serialization with read/write
// turnaround, independent channels, and periodic refresh. The address
// mapping matches the paper: adjacent addresses first differ in channels,
// then columns, then banks, and lastly rows.
package dram

import (
	"fmt"

	"repro/internal/statmath"
)

// Timing collects DDR3 timing parameters in memory-bus clock cycles.
type Timing struct {
	CL     int // CAS (read) latency
	CWL    int // CAS write latency
	TRCD   int // ACT to CAS
	TRP    int // precharge
	TRAS   int // ACT to precharge
	TBURST int // data-bus occupancy per column access (BL8 -> 4)
	TCCD   int // CAS-to-CAS minimum spacing
	TWR    int // write recovery before precharge
	TWTR   int // write-to-read turnaround
	TRTW   int // read-to-write turnaround (bus gap)
	TRRD   int // ACT-to-ACT across banks
	TREFI  int // refresh interval (0 disables refresh)
	TRFC   int // refresh cycle time
}

// DDR3Micron returns timing close to DRAMSim2's DDR3 micron configuration
// used in the paper (x16 parts, DDR3-1333-class timings).
func DDR3Micron() Timing {
	return Timing{
		CL: 10, CWL: 7, TRCD: 10, TRP: 10, TRAS: 24,
		TBURST: 4, TCCD: 4, TWR: 10, TWTR: 5, TRTW: 2, TRRD: 4,
		TREFI: 5200, TRFC: 88,
	}
}

// Geometry describes the memory system shape.
type Geometry struct {
	Channels    int
	Banks       int // banks per channel
	RowBytes    int // row-buffer size per bank
	AccessBytes int // column access granularity (bytes per burst)
}

// MicronGeometry mirrors the paper's DRAMSim2 setup: 8 banks, 1024 columns
// per row at a 64-bit bus = 8 KB row buffers, 64-byte accesses.
func MicronGeometry(channels int) Geometry {
	return Geometry{Channels: channels, Banks: 8, RowBytes: 8192, AccessBytes: 64}
}

// Validate reports configuration errors.
func (g Geometry) Validate() error {
	switch {
	case g.Channels < 1:
		return fmt.Errorf("dram: need at least one channel")
	case g.Banks < 1:
		return fmt.Errorf("dram: need at least one bank")
	case g.AccessBytes < 1:
		return fmt.Errorf("dram: access granularity must be positive")
	case g.RowBytes < g.AccessBytes || g.RowBytes%g.AccessBytes != 0:
		return fmt.Errorf("dram: row size %d not a multiple of access size %d", g.RowBytes, g.AccessBytes)
	}
	return nil
}

// Location is a decoded physical address.
type Location struct {
	Channel int
	Bank    int
	Row     uint64
	Col     uint64
}

// Request is one column access.
type Request struct {
	Addr  uint64
	Write bool
}

// Stats counts memory-system events.
type Stats struct {
	Reads, Writes       uint64
	RowHits, RowMisses  uint64
	Refreshes           uint64
	DataBusBusyCycles   uint64
	LastCompletionCycle uint64
	// QueueOccupancyPeak is the high-water mark of any channel's open
	// command-queue window (SchedFRFCFS only; the in-order path holds one
	// request per channel by construction and leaves it 0). Like
	// LastCompletionCycle it is a high-water mark: max under Merge, advance
	// under Sub.
	QueueOccupancyPeak uint64
	// BankOverlapActs counts row activations issued while the channel's
	// previous data transfer was still in flight — bank-level parallelism
	// that an open queue (or overlapping ports) exposes and a strictly
	// chained single stream cannot.
	BankOverlapActs uint64
	// StarvationForced counts FR-FCFS issue slots where the starvation cap
	// overrode a younger row-hit candidate to force the oldest request.
	StarvationForced uint64
}

// Merge returns the combination of s and other, mirroring core.Stats.Merge:
// additive counters are summed and LastCompletionCycle — a completion-time
// high-water mark, not a count — takes the maximum. The serving layer uses
// it to aggregate per-shard memory traffic into one view; merging every
// shard's counters reproduces the shared memory system's own totals exactly
// (a property the membus tests pin).
func (s Stats) Merge(other Stats) Stats {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.RowHits += other.RowHits
	s.RowMisses += other.RowMisses
	s.Refreshes += other.Refreshes
	s.DataBusBusyCycles += other.DataBusBusyCycles
	s.BankOverlapActs += other.BankOverlapActs
	s.StarvationForced += other.StarvationForced
	if other.LastCompletionCycle > s.LastCompletionCycle {
		s.LastCompletionCycle = other.LastCompletionCycle
	}
	if other.QueueOccupancyPeak > s.QueueOccupancyPeak {
		s.QueueOccupancyPeak = other.QueueOccupancyPeak
	}
	return s
}

// Sub returns the counters accrued between the prev snapshot and s (prev
// must be an earlier snapshot of the same counters): additive counters
// subtract, and the high-water marks (LastCompletionCycle,
// QueueOccupancyPeak) become their advance over the interval. The field
// enumeration lives in statmath.SubCounters, shared with membus.Stats.Delta
// — membus builds its per-port attribution and pre-fill-excluded deltas on
// Merge and Sub, so a new field added here is aggregated and diffed
// correctly everywhere by construction.
func (s Stats) Sub(prev Stats) Stats {
	return statmath.SubCounters(s, prev)
}

// RowHitRate returns hits / (hits+misses) for this snapshot (0 when the
// snapshot saw no row activations).
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

type bank struct {
	openRow    int64 // -1 = closed
	actAt      uint64
	preReadyAt uint64
	casReadyAt uint64
}

type channel struct {
	banks       []bank
	busFreeAt   uint64
	lastWrite   bool
	lastDataEnd uint64
	lastActAt   uint64
	nextRefresh uint64
}

// System is one memory system instance.
type System struct {
	g       Geometry
	t       Timing
	sched   SchedConfig
	chans   []channel
	stats   Stats
	headBuf []uint64 // AccessAll per-channel arrival clocks (reused)

	// Open-queue scheduler scratch (reused across batches; see sched.go).
	schedStart []int32        // per-channel segment offsets into schedIdx
	schedIdx   []int32        // request indices grouped by channel
	schedAdm   []uint64       // per-request window admission cycles
	timedBuf   []TimedRequest // AccessAll -> AccessAllTimed adapter batch

	// trace, when set, observes every issued column access: the request's
	// index in the submitted batch, its admission cycle, and its completion
	// cycle. Test hook for issue-order and multiset properties; nil in
	// production.
	trace func(reqIdx int, arrival, done uint64)
}

// New builds a memory system with the default in-order scheduling policy.
func New(g Geometry, t Timing) (*System, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	sched, err := SchedConfig{}.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &System{g: g, t: t, sched: sched, chans: make([]channel, g.Channels)}
	s.Reset()
	return s, nil
}

// Reset clears all timing state and statistics.
func (s *System) Reset() {
	for i := range s.chans {
		c := &s.chans[i]
		c.banks = make([]bank, s.g.Banks)
		for b := range c.banks {
			c.banks[b].openRow = -1
		}
		c.busFreeAt, c.lastDataEnd, c.lastActAt = 0, 0, 0
		c.lastWrite = false
		c.nextRefresh = uint64(s.t.TREFI)
	}
	s.stats = Stats{}
}

// Geometry returns the configured shape.
func (s *System) Geometry() Geometry { return s.g }

// Timing returns the configured timing.
func (s *System) Timing() Timing { return s.t }

// Stats returns a snapshot of the counters.
func (s *System) Stats() Stats { return s.stats }

// Map decodes a byte address: channel bits first, then column, bank, row
// (the paper's interleaving, Section 3.3.4).
func (s *System) Map(addr uint64) Location {
	u := addr / uint64(s.g.AccessBytes)
	var loc Location
	loc.Channel = int(u % uint64(s.g.Channels))
	u /= uint64(s.g.Channels)
	cols := uint64(s.g.RowBytes / s.g.AccessBytes)
	loc.Col = u % cols
	u /= cols
	loc.Bank = int(u % uint64(s.g.Banks))
	u /= uint64(s.g.Banks)
	loc.Row = u
	return loc
}

// Access performs one column access arriving at the given cycle and
// returns its completion cycle (data fully transferred).
func (s *System) Access(at uint64, addr uint64, write bool) uint64 {
	loc := s.Map(addr)
	c := &s.chans[loc.Channel]
	t := at

	// Refresh: close every row and stall through the refresh window.
	if s.t.TREFI > 0 {
		for t+0 >= c.nextRefresh {
			if t < c.nextRefresh+uint64(s.t.TRFC) {
				t = c.nextRefresh + uint64(s.t.TRFC)
			}
			for b := range c.banks {
				c.banks[b].openRow = -1
			}
			c.nextRefresh += uint64(s.t.TREFI)
			s.stats.Refreshes++
		}
	}

	b := &c.banks[loc.Bank]
	var casEarliest uint64
	if b.openRow != int64(loc.Row) {
		s.stats.RowMisses++
		act := t
		if b.openRow >= 0 {
			pre := max64(t, b.preReadyAt)
			act = pre + uint64(s.t.TRP)
		}
		act = max64(act, c.lastActAt+uint64(s.t.TRRD))
		if c.lastDataEnd > 0 && act < c.lastDataEnd {
			// This bank activates while another bank's data transfer is
			// still on the channel's bus — bank-level parallelism.
			s.stats.BankOverlapActs++
		}
		b.actAt = act
		c.lastActAt = act
		b.openRow = int64(loc.Row)
		casEarliest = act + uint64(s.t.TRCD)
	} else {
		s.stats.RowHits++
		casEarliest = max64(t, b.actAt+uint64(s.t.TRCD))
	}
	casEarliest = max64(casEarliest, b.casReadyAt)

	lat := uint64(s.t.CL)
	if write {
		lat = uint64(s.t.CWL)
	}
	dataStart := max64(casEarliest+lat, c.busFreeAt)
	// Bus turnaround between reads and writes.
	if c.lastDataEnd > 0 && write != c.lastWrite {
		gap := uint64(s.t.TRTW)
		if c.lastWrite && !write {
			gap = uint64(s.t.TWTR) + uint64(s.t.CL)
		}
		dataStart = max64(dataStart, c.lastDataEnd+gap)
	}
	dataEnd := dataStart + uint64(s.t.TBURST)

	c.busFreeAt = dataEnd
	c.lastWrite = write
	c.lastDataEnd = dataEnd
	b.casReadyAt = dataStart - lat + uint64(s.t.TCCD)
	if write {
		b.preReadyAt = max64(b.actAt+uint64(s.t.TRAS), dataEnd+uint64(s.t.TWR))
		s.stats.Writes++
	} else {
		b.preReadyAt = max64(b.actAt+uint64(s.t.TRAS), dataStart)
		s.stats.Reads++
	}
	s.stats.DataBusBusyCycles += uint64(s.t.TBURST)
	if dataEnd > s.stats.LastCompletionCycle {
		s.stats.LastCompletionCycle = dataEnd
	}
	return dataEnd
}

// AccessAll submits a batch arriving at the given cycle under the
// configured scheduling policy. Under SchedInOrder (the default) requests
// are routed to their channels and queued per channel in slice order: each
// channel's controller holds one request in flight, so request k+1 on a
// channel enters the bank state machine only when request k's data
// transfer has completed. Distinct channels proceed independently — every
// channel's queue starts draining at the batch arrival cycle. Under
// SchedFRFCFS each channel instead holds an open window of QueueDepth
// requests and issues row hits first (see sched.go). It returns the
// completion cycle of the last request.
//
// (Before this queue existed every request was issued at the same arrival
// cycle, so two same-channel requests to different banks would activate
// concurrently as if the controller had unbounded lookahead; the only
// serialization came from the shared data bus. TestDRAMAccessAllQueues
// pins the per-channel chaining.)
func (s *System) AccessAll(at uint64, reqs []Request) uint64 {
	if s.sched.Policy == SchedFRFCFS {
		if cap(s.timedBuf) < len(reqs) {
			s.timedBuf = make([]TimedRequest, len(reqs))
		}
		timed := s.timedBuf[:len(reqs)]
		for i, r := range reqs {
			timed[i] = TimedRequest{Addr: r.Addr, Write: r.Write, At: at}
		}
		return s.AccessAllTimed(timed, nil, nil)
	}
	if cap(s.headBuf) < len(s.chans) {
		s.headBuf = make([]uint64, len(s.chans))
	}
	heads := s.headBuf[:len(s.chans)]
	for i := range heads {
		heads[i] = at
	}
	var done uint64
	for i, r := range reqs {
		ch := s.Map(r.Addr).Channel
		arr := heads[ch]
		d := s.Access(arr, r.Addr, r.Write)
		if s.trace != nil {
			s.trace(i, arr, d)
		}
		heads[ch] = d
		if d > done {
			done = d
		}
	}
	return done
}

// PeakBytesPerCycle returns the theoretical aggregate data-bus bandwidth:
// AccessBytes per TBURST cycles per channel. The paper's "theoretical"
// series in Figure 11 divides total bytes moved by this rate.
func (s *System) PeakBytesPerCycle() float64 {
	return float64(s.g.Channels) * float64(s.g.AccessBytes) / float64(s.t.TBURST)
}

// RowHitRate returns hits / (hits+misses), the quantity subtree placement
// is designed to raise.
func (s *System) RowHitRate() float64 { return s.stats.RowHitRate() }

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
