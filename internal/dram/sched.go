// Open-queue command scheduling. The paper's design-space numbers assume
// a DRAMSim2-class controller that reorders column accesses for
// row-buffer locality and bank-level parallelism; SchedFRFCFS models that
// controller as a bounded per-channel window scheduled first-ready
// first-come-first-served — row hits first, then oldest — with a
// starvation cap that forces the oldest request after a bounded number of
// bypasses. SchedInOrder keeps the strictly chained issue path the model
// started with, bit for bit.
package dram

import "fmt"

// SchedPolicy selects how a batch's column accesses are ordered per
// channel.
type SchedPolicy int

const (
	// SchedInOrder issues each channel's requests strictly in arrival
	// order, one in flight: request k+1 enters the bank state machine only
	// when request k's data transfer has completed. The default, and the
	// pre-open-queue model exactly.
	SchedInOrder SchedPolicy = iota
	// SchedFRFCFS holds an open window of up to QueueDepth decoded
	// requests per channel and each issue slot picks the oldest row-buffer
	// hit in the window, falling back to the oldest request outright. The
	// window admits request k+Q when request k completes, so younger
	// requests activate other banks while an older transfer is still on
	// the bus.
	SchedFRFCFS
)

// Scheduler defaults: an 8-deep window matches small controller command
// queues, and 4 bypasses bounds the extra wait a row-conflict request can
// accrue before the cap forces it (see the starvation-bound property
// test).
const (
	DefaultQueueDepth    = 8
	DefaultStarvationCap = 4
)

// SchedConfig parameterizes the per-channel command queue.
type SchedConfig struct {
	Policy SchedPolicy
	// QueueDepth is the open window per channel under SchedFRFCFS
	// (default 8; ignored in order). Depth 1 degenerates to SchedInOrder
	// exactly: a one-entry window has nothing to reorder.
	QueueDepth int
	// StarvationCap bounds how many times younger row hits may bypass the
	// oldest queued request under SchedFRFCFS: after this many consecutive
	// bypasses the oldest issues regardless (default 4). No request ever
	// waits more than QueueDepth*(StarvationCap+1) issue slots.
	StarvationCap int
}

func (c SchedConfig) withDefaults() (SchedConfig, error) {
	switch c.Policy {
	case SchedInOrder, SchedFRFCFS:
	default:
		return c, fmt.Errorf("dram: unknown scheduling policy %d", c.Policy)
	}
	if c.QueueDepth < 0 {
		return c, fmt.Errorf("dram: queue depth %d must be >= 0 (0 = default)", c.QueueDepth)
	}
	if c.StarvationCap < 0 {
		return c, fmt.Errorf("dram: starvation cap %d must be >= 0 (0 = default)", c.StarvationCap)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.StarvationCap == 0 {
		c.StarvationCap = DefaultStarvationCap
	}
	return c, nil
}

// SetSched configures the scheduling policy (zero fields take defaults).
// Call it before traffic; it does not disturb timing state or counters.
func (s *System) SetSched(cfg SchedConfig) error {
	full, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	s.sched = full
	return nil
}

// Sched returns the active scheduling configuration with defaults filled
// in.
func (s *System) Sched() SchedConfig { return s.sched }

// TimedRequest is one column access with its own earliest-arrival cycle
// and an attribution tag. Batches with heterogeneous arrivals are how the
// bus merges contemporaneous stages from different ports into one
// scheduling window; the tag (a small non-negative index chosen by the
// caller) routes each access's completion and counter delta back to its
// stage.
type TimedRequest struct {
	Addr  uint64
	Write bool
	At    uint64
	Tag   int
}

// AccessAllTimed submits a batch of requests carrying per-request arrival
// floors through the configured policy and returns the completion cycle
// of the last request. When tagDone/tagStats are non-nil they must be
// indexed by every request's Tag; each tag's entry accumulates the max
// completion cycle and the Merge of its requests' counter deltas (with
// the high-water fields carrying absolute values, so merging tags
// reproduces the system totals). Requests should be in nondecreasing
// arrival order per channel — slice order is the queue's arrival order.
func (s *System) AccessAllTimed(reqs []TimedRequest, tagDone []uint64, tagStats []Stats) uint64 {
	nch := len(s.chans)
	if cap(s.schedStart) < nch+1 {
		s.schedStart = make([]int32, nch+1)
	}
	start := s.schedStart[:nch+1]
	for i := range start {
		start[i] = 0
	}
	for i := range reqs {
		start[s.Map(reqs[i].Addr).Channel+1]++
	}
	for c := 0; c < nch; c++ {
		start[c+1] += start[c]
	}
	if cap(s.schedIdx) < len(reqs) {
		s.schedIdx = make([]int32, len(reqs))
		s.schedAdm = make([]uint64, len(reqs))
	}
	idx := s.schedIdx[:len(reqs)]
	// Stable counting sort by channel: cursor[c] runs from start[c] to
	// start[c+1]; reuse the headBuf scratch as the cursor array.
	if cap(s.headBuf) < nch {
		s.headBuf = make([]uint64, nch)
	}
	cur := s.headBuf[:nch]
	for c := range cur {
		cur[c] = uint64(start[c])
	}
	for i := range reqs {
		c := s.Map(reqs[i].Addr).Channel
		idx[cur[c]] = int32(i)
		cur[c]++
	}

	var done uint64
	for c := 0; c < nch; c++ {
		if d := s.drainChannel(reqs, idx[start[c]:start[c+1]], s.schedAdm[start[c]:start[c+1]], tagDone, tagStats); d > done {
			done = d
		}
	}
	return done
}

// drainChannel issues one channel's segment of the batch. pend holds the
// channel's request indices in arrival order; adm is the parallel
// window-admission clock (entry j is valid once j is inside the window).
func (s *System) drainChannel(reqs []TimedRequest, pend []int32, adm []uint64, tagDone []uint64, tagStats []Stats) uint64 {
	q := s.sched.QueueDepth
	cap_ := s.sched.StarvationCap
	if s.sched.Policy == SchedInOrder {
		q, cap_ = 1, 0
	}
	w := q
	if len(pend) < w {
		w = len(pend)
	}
	// The initial window is admitted at batch submission: each entry may
	// issue as soon as its own arrival allows.
	for j := 0; j < w; j++ {
		adm[j] = reqs[pend[j]].At
	}
	bypass := 0
	var done uint64
	for len(pend) > 0 {
		w = q
		if len(pend) < w {
			w = len(pend)
		}
		if uint64(w) > s.stats.QueueOccupancyPeak {
			s.stats.QueueOccupancyPeak = uint64(w)
		}
		before := s.stats
		pick := 0
		if w > 1 {
			hit := -1
			for j := 0; j < w; j++ {
				loc := s.Map(reqs[pend[j]].Addr)
				if s.chans[loc.Channel].banks[loc.Bank].openRow == int64(loc.Row) {
					hit = j
					break
				}
			}
			if bypass >= cap_ {
				// Forced oldest: the cap overrides the row-hit preference.
				if hit > 0 {
					s.stats.StarvationForced++
				}
			} else if hit > 0 {
				pick = hit
			}
		}
		if pick == 0 {
			bypass = 0
		} else {
			bypass++
		}
		ri := pend[pick]
		r := reqs[ri]
		arr := adm[pick]
		if r.At > arr {
			arr = r.At
		}
		d := s.Access(arr, r.Addr, r.Write)
		if s.trace != nil {
			s.trace(int(ri), arr, d)
		}
		if d > done {
			done = d
		}
		if tagDone != nil && d > tagDone[r.Tag] {
			tagDone[r.Tag] = d
		}
		if tagStats != nil {
			diff := s.stats.Sub(before)
			// High-water fields carry absolute values per tag so a Merge
			// over tags reproduces the system's own maxima.
			diff.LastCompletionCycle = d
			diff.QueueOccupancyPeak = s.stats.QueueOccupancyPeak
			tagStats[r.Tag] = tagStats[r.Tag].Merge(diff)
		}
		copy(pend[pick:], pend[pick+1:])
		copy(adm[pick:], adm[pick+1:])
		pend = pend[:len(pend)-1]
		adm = adm[:len(adm)-1]
		// The completed issue admits the next request into the window.
		if len(pend) >= q {
			adm[q-1] = d
		}
	}
	return done
}
