package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newSys(t *testing.T, channels int) *System {
	t.Helper()
	s, err := New(MicronGeometry(channels), DDR3Micron())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{Channels: 0, Banks: 8, RowBytes: 8192, AccessBytes: 64},
		{Channels: 1, Banks: 0, RowBytes: 8192, AccessBytes: 64},
		{Channels: 1, Banks: 8, RowBytes: 8192, AccessBytes: 0},
		{Channels: 1, Banks: 8, RowBytes: 100, AccessBytes: 64},
	}
	for i, g := range bad {
		if _, err := New(g, DDR3Micron()); err == nil {
			t.Errorf("bad geometry %d accepted", i)
		}
	}
}

func TestAddressMappingOrder(t *testing.T) {
	// Paper Section 3.3.4: adjacent addresses differ first in channels,
	// then columns, then banks, then rows.
	s := newSys(t, 2)
	g := s.Geometry()
	a := s.Map(0)
	b := s.Map(uint64(g.AccessBytes)) // next 64B unit -> next channel
	if b.Channel != (a.Channel+1)%2 || b.Col != a.Col || b.Bank != a.Bank || b.Row != a.Row {
		t.Errorf("adjacent unit should switch channels: %+v -> %+v", a, b)
	}
	colsSpan := uint64(g.AccessBytes * g.Channels)
	c := s.Map(colsSpan) // past channels -> next column
	if c.Col != a.Col+1 || c.Channel != a.Channel || c.Bank != a.Bank {
		t.Errorf("expected next column: %+v", c)
	}
	bankSpan := colsSpan * uint64(g.RowBytes/g.AccessBytes)
	d := s.Map(bankSpan)
	if d.Bank != a.Bank+1 || d.Row != a.Row {
		t.Errorf("expected next bank: %+v", d)
	}
	rowSpan := bankSpan * uint64(g.Banks)
	e := s.Map(rowSpan)
	if e.Row != a.Row+1 || e.Bank != a.Bank {
		t.Errorf("expected next row: %+v", e)
	}
}

func TestMappingBijective(t *testing.T) {
	s := newSys(t, 4)
	seen := map[Location]uint64{}
	f := func(raw uint32) bool {
		addr := uint64(raw) / 64 * 64 // align to access units
		loc := s.Map(addr)
		if prev, ok := seen[loc]; ok {
			return prev == addr
		}
		seen[loc] = addr
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	s := newSys(t, 1)
	first := s.Access(0, 0, false) // opens the row
	st := s.stats
	if st.RowMisses != 1 {
		t.Fatalf("first access should miss, stats=%+v", st)
	}
	second := s.Access(first, 64, false) // same row, next column
	if s.stats.RowHits != 1 {
		t.Fatalf("second access should hit, stats=%+v", s.stats)
	}
	hitLat := second - first
	// A row conflict in the same bank: different row, same bank.
	g := s.Geometry()
	conflictAddr := uint64(g.RowBytes) * uint64(g.Channels) * uint64(g.Banks) // row+1, bank 0
	third := s.Access(second, conflictAddr, false)
	missLat := third - second
	if hitLat >= missLat {
		t.Errorf("row hit latency %d should beat conflict latency %d", hitLat, missLat)
	}
}

func TestStreamingIsBusLimited(t *testing.T) {
	// Sequential streaming within open rows must approach one burst per
	// TBURST cycles.
	s := newSys(t, 1)
	const n = 2048
	var done uint64
	for i := 0; i < n; i++ {
		done = s.Access(0, uint64(i*64), false)
	}
	perAccess := float64(done) / n
	if perAccess > 1.5*float64(s.Timing().TBURST) {
		t.Errorf("streaming cost %.2f cycles/access, want close to TBURST=%d",
			perAccess, s.Timing().TBURST)
	}
	if s.RowHitRate() < 0.95 {
		t.Errorf("streaming row hit rate %.2f, want ~1", s.RowHitRate())
	}
}

func TestChannelsParallelize(t *testing.T) {
	// The same request stream spread over 4 channels should finish much
	// faster than on 1 channel.
	run := func(channels int) uint64 {
		s := newSys(t, channels)
		reqs := make([]Request, 1024)
		for i := range reqs {
			reqs[i] = Request{Addr: uint64(i * 64)}
		}
		return s.AccessAll(0, reqs)
	}
	t1, t4 := run(1), run(4)
	if float64(t4) > 0.5*float64(t1) {
		t.Errorf("4-channel run (%d cycles) not meaningfully faster than 1-channel (%d)", t4, t1)
	}
}

func TestRandomAccessesSlowerThanStreaming(t *testing.T) {
	stream := newSys(t, 1)
	var sdone uint64
	for i := 0; i < 1024; i++ {
		sdone = stream.Access(0, uint64(i*64), false)
	}
	randSys := newSys(t, 1)
	rng := rand.New(rand.NewSource(1))
	var rdone uint64
	for i := 0; i < 1024; i++ {
		addr := uint64(rng.Intn(1<<30)) / 64 * 64
		rdone = randSys.Access(0, addr, false)
	}
	if rdone <= sdone {
		t.Errorf("random pattern (%d cycles) should be slower than streaming (%d)", rdone, sdone)
	}
	if randSys.RowHitRate() > 0.2 {
		t.Errorf("random row hit rate %.2f suspiciously high", randSys.RowHitRate())
	}
}

// TestDRAMAccessAllQueues pins the per-channel queuing semantics of
// AccessAll: same-channel requests chain — request k+1 arrives at request
// k's completion — while distinct channels drain independently from the
// batch arrival cycle. The batch must behave exactly like hand-chained
// Access calls, and a same-channel different-bank pair must NOT overlap
// their activations the way simultaneous issue would.
func TestDRAMAccessAllQueues(t *testing.T) {
	g := MicronGeometry(2)
	// Two requests per channel, to different banks (row misses both), plus
	// a row-hit follow-up. Bank stride for this geometry:
	bankSpan := uint64(g.AccessBytes*g.Channels) * uint64(g.RowBytes/g.AccessBytes)
	reqs := []Request{
		{Addr: 0},                // ch 0, bank 0
		{Addr: 64},               // ch 1, bank 0
		{Addr: bankSpan},         // ch 0, bank 1
		{Addr: bankSpan + 64},    // ch 1, bank 1
		{Addr: 128, Write: true}, // ch 0, bank 0 again (turnaround + hit)
	}
	batch, err := New(g, DDR3Micron())
	if err != nil {
		t.Fatal(err)
	}
	got := batch.AccessAll(7, reqs)

	// Reference: hand-chain the same requests per channel on a twin system.
	ref, err := New(g, DDR3Micron())
	if err != nil {
		t.Fatal(err)
	}
	heads := []uint64{7, 7}
	var want uint64
	for _, r := range reqs {
		ch := ref.Map(r.Addr).Channel
		heads[ch] = ref.Access(heads[ch], r.Addr, r.Write)
		if heads[ch] > want {
			want = heads[ch]
		}
	}
	if got != want {
		t.Errorf("AccessAll completed at %d, hand-chained per-channel queue at %d", got, want)
	}
	if batch.Stats() != ref.Stats() {
		t.Errorf("stats diverged: batch=%+v ref=%+v", batch.Stats(), ref.Stats())
	}

	// The queue must actually serialize same-channel requests: the second
	// bank-0-channel-0 miss cannot activate until the first request's data
	// completed, so the batch finishes strictly later than unbounded-
	// lookahead simultaneous issue (the old behavior).
	sim, err := New(g, DDR3Micron())
	if err != nil {
		t.Fatal(err)
	}
	var simDone uint64
	for _, r := range reqs {
		if d := sim.Access(7, r.Addr, r.Write); d > simDone {
			simDone = d
		}
	}
	if got <= simDone {
		t.Errorf("queued batch completed at %d, not later than simultaneous issue (%d)", got, simDone)
	}
}

// TestDRAMStatsMerge covers the per-shard aggregation path: counters sum,
// the completion high-water mark takes the max, and merging with the zero
// value is the identity.
func TestDRAMStatsMerge(t *testing.T) {
	a := Stats{Reads: 3, Writes: 1, RowHits: 2, RowMisses: 2, Refreshes: 1,
		DataBusBusyCycles: 16, LastCompletionCycle: 90}
	b := Stats{Reads: 5, Writes: 4, RowHits: 6, RowMisses: 3, Refreshes: 0,
		DataBusBusyCycles: 36, LastCompletionCycle: 40}
	got := a.Merge(b)
	want := Stats{Reads: 8, Writes: 5, RowHits: 8, RowMisses: 5, Refreshes: 1,
		DataBusBusyCycles: 52, LastCompletionCycle: 90}
	if got != want {
		t.Errorf("Merge = %+v, want %+v", got, want)
	}
	if got := b.Merge(a); got != want {
		t.Errorf("Merge not symmetric: %+v vs %+v", got, want)
	}
	if got := a.Merge(Stats{}); got != a {
		t.Errorf("Merge with zero changed stats: %+v vs %+v", got, a)
	}
	if hr := want.RowHitRate(); hr != 8.0/13.0 {
		t.Errorf("merged RowHitRate = %v, want %v", hr, 8.0/13.0)
	}
	if (Stats{}).RowHitRate() != 0 {
		t.Error("zero-stats RowHitRate should be 0")
	}
}

// TestDRAMStatsResetAfterMergeSource re-pins Reset in the aggregation
// context: a system whose counters were merged out continues from a clean
// slate, and its fresh stats still merge correctly.
func TestDRAMStatsResetAfterMergeSource(t *testing.T) {
	s := newSys(t, 1)
	s.Access(0, 0, false)
	first := s.Stats()
	s.Reset()
	if s.Stats() != (Stats{}) {
		t.Fatalf("Reset left stats: %+v", s.Stats())
	}
	s.Access(0, 0, false)
	again := s.Stats()
	if first != again {
		t.Errorf("post-Reset cold access stats %+v differ from first run %+v", again, first)
	}
	merged := first.Merge(again)
	if merged.Reads != 2 || merged.RowMisses != 2 {
		t.Errorf("merged reset-separated stats wrong: %+v", merged)
	}
}

func TestWritesAndTurnaround(t *testing.T) {
	s := newSys(t, 1)
	end1 := s.Access(0, 0, false)
	end2 := s.Access(end1, 64, true) // read->write turnaround
	end3 := s.Access(end2, 128, false)
	if end2 <= end1 || end3 <= end2 {
		t.Error("time must advance across mixed accesses")
	}
	st := s.Stats()
	if st.Reads != 2 || st.Writes != 1 {
		t.Errorf("stats=%+v want 2 reads / 1 write", st)
	}
}

func TestRefreshOccursAndStalls(t *testing.T) {
	s := newSys(t, 1)
	tm := s.Timing()
	// Access right before the refresh deadline, then right at it.
	s.Access(uint64(tm.TREFI)-10, 0, false)
	if s.Stats().Refreshes != 0 {
		t.Fatal("refresh fired early")
	}
	done := s.Access(uint64(tm.TREFI), 64, false)
	if s.Stats().Refreshes == 0 {
		t.Fatal("refresh did not fire")
	}
	if done < uint64(tm.TREFI)+uint64(tm.TRFC) {
		t.Errorf("access completed at %d, before refresh window closed", done)
	}
}

func TestRefreshDisabled(t *testing.T) {
	tm := DDR3Micron()
	tm.TREFI = 0
	s, err := New(MicronGeometry(1), tm)
	if err != nil {
		t.Fatal(err)
	}
	s.Access(1_000_000, 0, false)
	if s.Stats().Refreshes != 0 {
		t.Error("refresh fired while disabled")
	}
}

func TestResetClearsState(t *testing.T) {
	s := newSys(t, 2)
	s.Access(0, 0, false)
	s.Reset()
	if s.Stats() != (Stats{}) {
		t.Error("Reset left stats")
	}
	// After reset, the same access must behave like a cold start.
	d1 := s.Access(0, 0, false)
	s.Reset()
	d2 := s.Access(0, 0, false)
	if d1 != d2 {
		t.Errorf("cold-start latency changed after reset: %d vs %d", d1, d2)
	}
}

func TestPeakBandwidth(t *testing.T) {
	s := newSys(t, 4)
	want := 4.0 * 64 / float64(s.Timing().TBURST)
	if got := s.PeakBytesPerCycle(); got != want {
		t.Errorf("PeakBytesPerCycle=%v want %v", got, want)
	}
}
