package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newSys(t *testing.T, channels int) *System {
	t.Helper()
	s, err := New(MicronGeometry(channels), DDR3Micron())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{Channels: 0, Banks: 8, RowBytes: 8192, AccessBytes: 64},
		{Channels: 1, Banks: 0, RowBytes: 8192, AccessBytes: 64},
		{Channels: 1, Banks: 8, RowBytes: 8192, AccessBytes: 0},
		{Channels: 1, Banks: 8, RowBytes: 100, AccessBytes: 64},
	}
	for i, g := range bad {
		if _, err := New(g, DDR3Micron()); err == nil {
			t.Errorf("bad geometry %d accepted", i)
		}
	}
}

func TestAddressMappingOrder(t *testing.T) {
	// Paper Section 3.3.4: adjacent addresses differ first in channels,
	// then columns, then banks, then rows.
	s := newSys(t, 2)
	g := s.Geometry()
	a := s.Map(0)
	b := s.Map(uint64(g.AccessBytes)) // next 64B unit -> next channel
	if b.Channel != (a.Channel+1)%2 || b.Col != a.Col || b.Bank != a.Bank || b.Row != a.Row {
		t.Errorf("adjacent unit should switch channels: %+v -> %+v", a, b)
	}
	colsSpan := uint64(g.AccessBytes * g.Channels)
	c := s.Map(colsSpan) // past channels -> next column
	if c.Col != a.Col+1 || c.Channel != a.Channel || c.Bank != a.Bank {
		t.Errorf("expected next column: %+v", c)
	}
	bankSpan := colsSpan * uint64(g.RowBytes/g.AccessBytes)
	d := s.Map(bankSpan)
	if d.Bank != a.Bank+1 || d.Row != a.Row {
		t.Errorf("expected next bank: %+v", d)
	}
	rowSpan := bankSpan * uint64(g.Banks)
	e := s.Map(rowSpan)
	if e.Row != a.Row+1 || e.Bank != a.Bank {
		t.Errorf("expected next row: %+v", e)
	}
}

func TestMappingBijective(t *testing.T) {
	s := newSys(t, 4)
	seen := map[Location]uint64{}
	f := func(raw uint32) bool {
		addr := uint64(raw) / 64 * 64 // align to access units
		loc := s.Map(addr)
		if prev, ok := seen[loc]; ok {
			return prev == addr
		}
		seen[loc] = addr
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	s := newSys(t, 1)
	first := s.Access(0, 0, false) // opens the row
	st := s.stats
	if st.RowMisses != 1 {
		t.Fatalf("first access should miss, stats=%+v", st)
	}
	second := s.Access(first, 64, false) // same row, next column
	if s.stats.RowHits != 1 {
		t.Fatalf("second access should hit, stats=%+v", s.stats)
	}
	hitLat := second - first
	// A row conflict in the same bank: different row, same bank.
	g := s.Geometry()
	conflictAddr := uint64(g.RowBytes) * uint64(g.Channels) * uint64(g.Banks) // row+1, bank 0
	third := s.Access(second, conflictAddr, false)
	missLat := third - second
	if hitLat >= missLat {
		t.Errorf("row hit latency %d should beat conflict latency %d", hitLat, missLat)
	}
}

func TestStreamingIsBusLimited(t *testing.T) {
	// Sequential streaming within open rows must approach one burst per
	// TBURST cycles.
	s := newSys(t, 1)
	const n = 2048
	var done uint64
	for i := 0; i < n; i++ {
		done = s.Access(0, uint64(i*64), false)
	}
	perAccess := float64(done) / n
	if perAccess > 1.5*float64(s.Timing().TBURST) {
		t.Errorf("streaming cost %.2f cycles/access, want close to TBURST=%d",
			perAccess, s.Timing().TBURST)
	}
	if s.RowHitRate() < 0.95 {
		t.Errorf("streaming row hit rate %.2f, want ~1", s.RowHitRate())
	}
}

func TestChannelsParallelize(t *testing.T) {
	// The same request stream spread over 4 channels should finish much
	// faster than on 1 channel.
	run := func(channels int) uint64 {
		s := newSys(t, channels)
		reqs := make([]Request, 1024)
		for i := range reqs {
			reqs[i] = Request{Addr: uint64(i * 64)}
		}
		return s.AccessAll(0, reqs)
	}
	t1, t4 := run(1), run(4)
	if float64(t4) > 0.5*float64(t1) {
		t.Errorf("4-channel run (%d cycles) not meaningfully faster than 1-channel (%d)", t4, t1)
	}
}

func TestRandomAccessesSlowerThanStreaming(t *testing.T) {
	stream := newSys(t, 1)
	var sdone uint64
	for i := 0; i < 1024; i++ {
		sdone = stream.Access(0, uint64(i*64), false)
	}
	randSys := newSys(t, 1)
	rng := rand.New(rand.NewSource(1))
	var rdone uint64
	for i := 0; i < 1024; i++ {
		addr := uint64(rng.Intn(1<<30)) / 64 * 64
		rdone = randSys.Access(0, addr, false)
	}
	if rdone <= sdone {
		t.Errorf("random pattern (%d cycles) should be slower than streaming (%d)", rdone, sdone)
	}
	if randSys.RowHitRate() > 0.2 {
		t.Errorf("random row hit rate %.2f suspiciously high", randSys.RowHitRate())
	}
}

func TestWritesAndTurnaround(t *testing.T) {
	s := newSys(t, 1)
	end1 := s.Access(0, 0, false)
	end2 := s.Access(end1, 64, true) // read->write turnaround
	end3 := s.Access(end2, 128, false)
	if end2 <= end1 || end3 <= end2 {
		t.Error("time must advance across mixed accesses")
	}
	st := s.Stats()
	if st.Reads != 2 || st.Writes != 1 {
		t.Errorf("stats=%+v want 2 reads / 1 write", st)
	}
}

func TestRefreshOccursAndStalls(t *testing.T) {
	s := newSys(t, 1)
	tm := s.Timing()
	// Access right before the refresh deadline, then right at it.
	s.Access(uint64(tm.TREFI)-10, 0, false)
	if s.Stats().Refreshes != 0 {
		t.Fatal("refresh fired early")
	}
	done := s.Access(uint64(tm.TREFI), 64, false)
	if s.Stats().Refreshes == 0 {
		t.Fatal("refresh did not fire")
	}
	if done < uint64(tm.TREFI)+uint64(tm.TRFC) {
		t.Errorf("access completed at %d, before refresh window closed", done)
	}
}

func TestRefreshDisabled(t *testing.T) {
	tm := DDR3Micron()
	tm.TREFI = 0
	s, err := New(MicronGeometry(1), tm)
	if err != nil {
		t.Fatal(err)
	}
	s.Access(1_000_000, 0, false)
	if s.Stats().Refreshes != 0 {
		t.Error("refresh fired while disabled")
	}
}

func TestResetClearsState(t *testing.T) {
	s := newSys(t, 2)
	s.Access(0, 0, false)
	s.Reset()
	if s.Stats() != (Stats{}) {
		t.Error("Reset left stats")
	}
	// After reset, the same access must behave like a cold start.
	d1 := s.Access(0, 0, false)
	s.Reset()
	d2 := s.Access(0, 0, false)
	if d1 != d2 {
		t.Errorf("cold-start latency changed after reset: %d vs %d", d1, d2)
	}
}

func TestPeakBandwidth(t *testing.T) {
	s := newSys(t, 4)
	want := 4.0 * 64 / float64(s.Timing().TBURST)
	if got := s.PeakBytesPerCycle(); got != want {
		t.Errorf("PeakBytesPerCycle=%v want %v", got, want)
	}
}
