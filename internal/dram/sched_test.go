package dram

import (
	"math/rand"
	"testing"
)

// schedSys builds a system with the given scheduling config.
func schedSys(t *testing.T, channels int, cfg SchedConfig) *System {
	t.Helper()
	s := newSys(t, channels)
	if err := s.SetSched(cfg); err != nil {
		t.Fatal(err)
	}
	return s
}

// randomBatch builds a batch mixing row locality (runs within one row)
// with bank and row conflicts, across every channel.
func randomBatch(rng *rand.Rand, s *System, n int) []Request {
	g := s.Geometry()
	unit := uint64(g.AccessBytes)
	cols := uint64(g.RowBytes / g.AccessBytes)
	reqs := make([]Request, 0, n)
	for len(reqs) < n {
		// A short sequential run from a random aligned start.
		start := rng.Uint64() % (1 << 24) * unit
		run := 1 + rng.Intn(6)
		for j := 0; j < run && len(reqs) < n; j++ {
			addr := start + uint64(j)*unit*uint64(g.Channels)
			_ = cols
			reqs = append(reqs, Request{Addr: addr, Write: rng.Intn(2) == 0})
		}
	}
	return reqs
}

// TestFRFCFSQueueDepthOneBitReproducesInOrder pins the degenerate case:
// a one-entry window has nothing to reorder, so FR-FCFS at QueueDepth 1
// must replay the strict in-order chaining bit for bit — identical
// per-request (arrival, completion) pairs and identical timing counters.
func TestFRFCFSQueueDepthOneBitReproducesInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inorder := schedSys(t, 2, SchedConfig{Policy: SchedInOrder})
	frfcfs := schedSys(t, 2, SchedConfig{Policy: SchedFRFCFS, QueueDepth: 1})

	// The drain order over channels differs (the timed path finishes one
	// channel before the next; the legacy loop interleaves), but every
	// request's own (arrival, completion) pair must be identical.
	type ev struct{ arr, done uint64 }
	var a, b map[int]ev
	inorder.trace = func(i int, arr, done uint64) { a[i] = ev{arr, done} }
	frfcfs.trace = func(i int, arr, done uint64) { b[i] = ev{arr, done} }

	var at uint64
	for batch := 0; batch < 20; batch++ {
		reqs := randomBatch(rng, inorder, 1+rng.Intn(40))
		a, b = map[int]ev{}, map[int]ev{}
		d1 := inorder.AccessAll(at, reqs)
		d2 := frfcfs.AccessAll(at, reqs)
		if d1 != d2 {
			t.Fatalf("batch %d: completion %d (inorder) != %d (frfcfs qd=1)", batch, d1, d2)
		}
		if len(a) != len(b) {
			t.Fatalf("batch %d: trace lengths differ: %d vs %d", batch, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("batch %d request %d: inorder %+v != frfcfs %+v", batch, i, a[i], b[i])
			}
		}
		at = d1
	}
	st1, st2 := inorder.Stats(), frfcfs.Stats()
	// The open queue tracks its own occupancy; everything else must match.
	st2.QueueOccupancyPeak = st1.QueueOccupancyPeak
	if st1 != st2 {
		t.Fatalf("stats diverged:\ninorder %+v\nfrfcfs  %+v", st1, st2)
	}
}

// TestFRFCFSDrainsSameMultiset is the conservation property: whatever
// order the open queue picks, it issues exactly the submitted requests —
// each index once — and moves exactly the same read/write traffic as the
// in-order drain of the same batch.
func TestFRFCFSDrainsSameMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	inorder := schedSys(t, 2, SchedConfig{Policy: SchedInOrder})
	frfcfs := schedSys(t, 2, SchedConfig{Policy: SchedFRFCFS})

	for batch := 0; batch < 10; batch++ {
		reqs := randomBatch(rng, inorder, 64)
		issued := make([]int, len(reqs))
		frfcfs.trace = func(i int, arr, done uint64) { issued[i]++ }
		frfcfs.AccessAll(0, reqs)
		frfcfs.trace = nil
		for i, n := range issued {
			if n != 1 {
				t.Fatalf("batch %d: request %d issued %d times", batch, i, n)
			}
		}
		inorder.AccessAll(0, reqs)
	}
	st1, st2 := inorder.Stats(), frfcfs.Stats()
	if st1.Reads != st2.Reads || st1.Writes != st2.Writes ||
		st1.DataBusBusyCycles != st2.DataBusBusyCycles {
		t.Fatalf("traffic conservation violated:\ninorder %+v\nfrfcfs  %+v", st1, st2)
	}
}

// TestFRFCFSStarvationBound is the fairness property behind the cap: no
// request is bypassed forever. A request at arrival position k within
// its channel must issue within k + QueueDepth*(StarvationCap+1) issue
// slots, whatever row-hit traffic the window holds.
func TestFRFCFSStarvationBound(t *testing.T) {
	const (
		qd  = 4
		cap = 3
	)
	rng := rand.New(rand.NewSource(7))
	s := schedSys(t, 1, SchedConfig{Policy: SchedFRFCFS, QueueDepth: qd, StarvationCap: cap})
	g := s.Geometry()
	rowSpan := uint64(g.RowBytes) * uint64(g.Banks) // same bank, next row (1 channel)
	unit := uint64(g.AccessBytes)

	// Adversarial stream: long sequential runs (row hits the scheduler
	// loves) with rare row-conflict requests buried inside them.
	var reqs []Request
	for i := 0; i < 256; i++ {
		addr := uint64(i%64) * unit
		if i%17 == 0 {
			addr += rowSpan * uint64(1+rng.Intn(3))
		}
		reqs = append(reqs, Request{Addr: addr})
	}

	slot := 0
	s.trace = func(i int, arr, done uint64) {
		if wait := slot - i; wait > qd*(cap+1) {
			t.Fatalf("request %d issued at slot %d: waited %d slots, bound is %d",
				i, slot, wait, qd*(cap+1))
		}
		slot++
	}
	s.AccessAll(0, reqs)
	if s.Stats().StarvationForced == 0 {
		t.Fatal("adversarial stream never tripped the starvation cap; the bound was not exercised")
	}
}

// TestFRFCFSBeatsInOrderOnConflictingStreams is the performance claim in
// miniature: two interleaved sequential streams mapping to different
// rows of the same bank are worst-case for in-order issue (every access
// conflicts) and easy for the open queue (group each row's hits). FR-FCFS
// must finish sooner and with a strictly higher row-hit rate.
func TestFRFCFSBeatsInOrderOnConflictingStreams(t *testing.T) {
	inorder := schedSys(t, 1, SchedConfig{Policy: SchedInOrder})
	frfcfs := schedSys(t, 1, SchedConfig{Policy: SchedFRFCFS})
	g := inorder.Geometry()
	unit := uint64(g.AccessBytes)
	rowSpan := uint64(g.RowBytes) * uint64(g.Banks)

	var reqs []Request
	for i := 0; i < 64; i++ {
		reqs = append(reqs, Request{Addr: uint64(i) * unit})         // row 0
		reqs = append(reqs, Request{Addr: rowSpan + uint64(i)*unit}) // row 1, same bank
	}
	d1 := inorder.AccessAll(0, reqs)
	d2 := frfcfs.AccessAll(0, reqs)
	if d2 >= d1 {
		t.Fatalf("frfcfs completion %d not better than inorder %d", d2, d1)
	}
	if h1, h2 := inorder.RowHitRate(), frfcfs.RowHitRate(); h2 <= h1 {
		t.Fatalf("frfcfs row-hit rate %.3f not better than inorder %.3f", h2, h1)
	}
	if frfcfs.Stats().QueueOccupancyPeak != DefaultQueueDepth {
		t.Fatalf("queue occupancy peak %d, want the full window %d",
			frfcfs.Stats().QueueOccupancyPeak, DefaultQueueDepth)
	}
}
