package hierarchy

// plb is the position-map lookaside cache of Section 3.3.3: a small
// set-associative LRU sitting in front of one oramPosMap interface, caching
// group→leaf labels. A hit makes the cached label authoritative (the
// backing ORAM's copy goes stale) and elides the backing access — and with
// it every smaller ORAM above it — cutting the chain short. The cache is
// write-back: a hit remaps the group in place and marks the entry dirty;
// the exact cached label is written into the backing ORAM only when the
// entry is evicted or the hierarchy flushes. Losing a dirty label would
// lose the block it names, so eviction write-backs are not optional.
//
// The structure is flat arrays (no maps) so the hit path stays 0 alloc/op
// under the CI allocation gate, mirroring how a hardware PLB would be a
// plain tag/data RAM next to the stash.
type plb struct {
	ways    int
	setMask uint64
	entries []plbEntry // len = sets*ways; set s occupies [s*ways, (s+1)*ways)
	clock   uint64     // LRU stamp source (monotone per lookup/insert)

	hits       uint64
	misses     uint64
	writeBacks uint64
}

type plbEntry struct {
	group uint64
	leaf  uint32
	valid bool
	dirty bool
	stamp uint64
}

// plbEntryBytes is the modeled on-chip cost of one entry: the 8-byte group
// tag plus the 4-byte leaf label (valid/dirty/LRU bits ride in the tag
// RAM's slack). OnChipBytes accounts the PLB at this rate.
const plbEntryBytes = 12

// plbWays is the associativity. Four ways keeps conflict misses low at
// the tiny capacities a PLB runs at while the victim scan stays a handful
// of comparisons.
const plbWays = 4

// newPLB sizes a cache for a byte budget. The budget rounds down to a
// power-of-two set count (at least one set), so a non-zero budget always
// yields at least plbWays entries — a PLB too small to hold one set is not
// a useful design point and would complicate the index math.
func newPLB(bytes uint64) *plb {
	if bytes == 0 {
		return nil
	}
	sets := 1
	for uint64(2*sets*plbWays)*plbEntryBytes <= bytes {
		sets *= 2
	}
	return &plb{
		ways:    plbWays,
		setMask: uint64(sets - 1),
		entries: make([]plbEntry, sets*plbWays),
	}
}

// sizeBytes returns the provisioned on-chip footprint.
func (c *plb) sizeBytes() uint64 {
	return uint64(len(c.entries)) * plbEntryBytes
}

// lookup probes the cache. On a hit the entry's LRU stamp is refreshed.
func (c *plb) lookup(group uint64) (uint32, bool) {
	base := (group & c.setMask) * uint64(c.ways)
	set := c.entries[base : base+uint64(c.ways)]
	for i := range set {
		if set[i].valid && set[i].group == group {
			c.clock++
			set[i].stamp = c.clock
			return set[i].leaf, true
		}
	}
	return 0, false
}

// update rewrites a present entry's label in place and marks it dirty (the
// backing copy is now stale). The caller must have just hit on group.
func (c *plb) update(group uint64, leaf uint32) {
	base := (group & c.setMask) * uint64(c.ways)
	set := c.entries[base : base+uint64(c.ways)]
	for i := range set {
		if set[i].valid && set[i].group == group {
			set[i].leaf = leaf
			set[i].dirty = true
			return
		}
	}
}

// insert places a clean entry for group (the backing ORAM already holds
// leaf). If the set is full the LRU way is evicted; a dirty victim is
// returned for the caller to write back — exact label, no remap.
func (c *plb) insert(group uint64, leaf uint32) (victim plbEntry, dirty bool) {
	base := (group & c.setMask) * uint64(c.ways)
	set := c.entries[base : base+uint64(c.ways)]
	way := 0
	for i := range set {
		if !set[i].valid {
			way = i
			break
		}
		if set[i].stamp < set[way].stamp {
			way = i
		}
	}
	victim = set[way]
	c.clock++
	set[way] = plbEntry{group: group, leaf: leaf, valid: true, stamp: c.clock}
	return victim, victim.valid && victim.dirty
}

// dirtyEntries appends every dirty entry to dst (flush support).
func (c *plb) dirtyEntries(dst []plbEntry) []plbEntry {
	for i := range c.entries {
		if c.entries[i].valid && c.entries[i].dirty {
			dst = append(dst, c.entries[i])
		}
	}
	return dst
}

// invalidate drops every entry. Counters survive (they are measurement
// state, reset separately by resetStats).
func (c *plb) invalidate() {
	for i := range c.entries {
		c.entries[i] = plbEntry{}
	}
}

// resetStats clears the hit/miss/write-back counters but not the cached
// labels: measurement boundaries must not change protocol state.
func (c *plb) resetStats() {
	c.hits, c.misses, c.writeBacks = 0, 0, 0
}
