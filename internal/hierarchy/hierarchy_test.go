package hierarchy

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func testConfig(seed int64) Config {
	return Config{
		Blocks:             4096,
		DataBlockBytes:     16,
		DataZ:              4,
		PosZ:               4,
		PosBlockBytes:      16, // 4 labels per block
		OnChipPosMapMax:    256,
		StashCapacity:      120,
		BackgroundEviction: true,
		Leaves:             core.NewMathLeafSource(rand.New(rand.NewSource(seed))),
	}
}

func fill(b byte, n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestPlanLevelsShrinks(t *testing.T) {
	h, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	layout := h.Layout()
	if len(layout) < 3 {
		t.Fatalf("expected a deep chain for a 256B on-chip limit, got %d ORAMs", len(layout))
	}
	for i := 1; i < len(layout); i++ {
		if layout[i].Blocks >= layout[i-1].Blocks {
			t.Errorf("level %d (%d blocks) did not shrink from %d", i, layout[i].Blocks, layout[i-1].Blocks)
		}
		if layout[i].BlockBytes != 16 {
			t.Errorf("posmap level %d block size %d", i, layout[i].BlockBytes)
		}
	}
	if got := h.OnChipPosMapBytes(); got > 256 {
		t.Errorf("on-chip map %dB exceeds limit", got)
	}
	if h.NumORAMs() != len(layout) {
		t.Errorf("NumORAMs=%d layout=%d", h.NumORAMs(), len(layout))
	}
}

func TestSingleLevelWhenMapFits(t *testing.T) {
	cfg := testConfig(2)
	cfg.OnChipPosMapMax = 1 << 20 // everything fits on chip
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumORAMs() != 1 {
		t.Errorf("NumORAMs=%d want 1", h.NumORAMs())
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Blocks = 0 },
		func(c *Config) { c.Leaves = nil },
		func(c *Config) { c.DataZ = 0 },
		func(c *Config) { c.PosZ = 0 },
		func(c *Config) { c.PosBlockBytes = 3 },
		func(c *Config) { c.StashCapacity = 5 }, // below Z(L+1)
	}
	for i, mutate := range bad {
		cfg := testConfig(3)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStoreFactoryErrorPropagates(t *testing.T) {
	cfg := testConfig(4)
	cfg.NewStore = func(level int, _, _, _ int) (core.PathStore, error) {
		if level == 1 {
			return nil, fmt.Errorf("boom")
		}
		return MemStoreFactory(level, 0, 1, 1)
	}
	if _, err := New(cfg); err == nil {
		t.Error("factory error swallowed")
	}
}

func TestReadYourWrites(t *testing.T) {
	h, err := New(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	shadow := map[uint64][]byte{}
	for i := 0; i < 1200; i++ {
		addr := rng.Uint64() % 4096
		if rng.Intn(2) == 0 {
			d := fill(byte(rng.Intn(256)), 16)
			if _, err := h.Access(addr, core.OpWrite, d); err != nil {
				t.Fatal(err)
			}
			shadow[addr] = d
		} else {
			got, err := h.Access(addr, core.OpRead, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := shadow[addr]
			if !ok {
				want = make([]byte, 16)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d addr %d: got % x want % x", i, addr, got, want)
			}
		}
	}
}

func TestUpdateThroughHierarchy(t *testing.T) {
	h, err := New(testConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := h.Update(99, func(d []byte) { d[3]++ }); err != nil {
			t.Fatal(err)
		}
	}
	got, err := h.Access(99, core.OpRead, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[3] != 10 {
		t.Errorf("counter=%d want 10", got[3])
	}
}

func TestExclusiveLoadStore(t *testing.T) {
	cfg := testConfig(7)
	cfg.SuperBlock = 2
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Access(10, core.OpWrite, fill(1, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Access(11, core.OpWrite, fill(2, 16)); err != nil {
		t.Fatal(err)
	}
	data, found, group, err := h.Load(10)
	if err != nil {
		t.Fatal(err)
	}
	if !found || !bytes.Equal(data, fill(1, 16)) {
		t.Fatalf("Load found=%v data=% x", found, data)
	}
	if len(group) != 1 || group[0].Addr != 11 {
		t.Fatalf("super block sibling not returned: %+v", group)
	}
	// Store both back without any path access in any ORAM.
	var paths int
	cfgHook := func(level int, leaf uint64, kind core.AccessKind) { paths++ }
	_ = cfgHook // hooks are fixed at construction; count via stats instead
	before := h.Stats()
	if err := h.Store(10, fill(3, 16)); err != nil {
		t.Fatal(err)
	}
	if err := h.Store(11, group[0].Data); err != nil {
		t.Fatal(err)
	}
	after := h.Stats()
	for lvl := range after {
		if after[lvl].RealAccesses != before[lvl].RealAccesses {
			t.Errorf("level %d performed a real access during Store", lvl)
		}
	}
	got, err := h.Access(10, core.OpRead, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(3, 16)) {
		t.Errorf("after Store read % x", got)
	}
}

func TestAccessOrderSmallestFirst(t *testing.T) {
	// Section 2.3 / Figure 5: ORAM_H is accessed first, the data ORAM
	// last. Track the order of per-level path accesses for one data
	// access.
	var order []int
	cfg := testConfig(8)
	cfg.OnPathAccess = func(level int, _ uint64, kind core.AccessKind) {
		if kind == core.KindReal {
			order = append(order, level)
		}
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hn := h.NumORAMs()
	if hn < 3 {
		t.Fatalf("want a deep hierarchy, got %d", hn)
	}
	order = order[:0]
	if _, err := h.Access(123, core.OpRead, nil); err != nil {
		t.Fatal(err)
	}
	if len(order) != hn {
		t.Fatalf("one access touched %d ORAMs, want %d", len(order), hn)
	}
	for i, lvl := range order {
		if want := hn - 1 - i; lvl != want {
			t.Errorf("access %d hit level %d, want %d (smallest first)", i, lvl, want)
		}
	}
}

func TestCoordinatedBackgroundEviction(t *testing.T) {
	cfg := testConfig(9)
	cfg.StashCapacity = 110 // tight enough to force dummy rounds
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 2500; i++ {
		if _, err := h.Access(rng.Uint64()%4096, core.OpWrite, fill(byte(i), 16)); err != nil {
			t.Fatal(err)
		}
		for lvl := 0; lvl < h.NumORAMs(); lvl++ {
			if h.Level(lvl).NeedsBackgroundEviction() {
				t.Fatalf("level %d above threshold after drain", lvl)
			}
		}
	}
	if h.DummyRounds() == 0 {
		t.Skip("config never needed dummy rounds; tighten the stash")
	}
	// A dummy round issues exactly one dummy access per level.
	for lvl, s := range h.Stats() {
		if s.DummyAccesses != h.DummyRounds() {
			t.Errorf("level %d dummy accesses %d != rounds %d", lvl, s.DummyAccesses, h.DummyRounds())
		}
	}
	if h.DummyPerReal() <= 0 {
		t.Error("DummyPerReal should be positive")
	}
}

func TestDeepChainCorrectness(t *testing.T) {
	// Force a 4+-deep chain and hammer it.
	cfg := Config{
		Blocks:             1 << 14,
		DataBlockBytes:     8,
		DataZ:              4,
		PosZ:               4,
		PosBlockBytes:      8, // 2 labels per block -> slow shrink -> deep chain
		OnChipPosMapMax:    64,
		StashCapacity:      150,
		BackgroundEviction: true,
		Leaves:             core.NewMathLeafSource(rand.New(rand.NewSource(10))),
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumORAMs() < 4 {
		t.Fatalf("chain depth %d, want >= 4", h.NumORAMs())
	}
	rng := rand.New(rand.NewSource(11))
	shadow := map[uint64]byte{}
	for i := 0; i < 800; i++ {
		addr := rng.Uint64() % cfg.Blocks
		if rng.Intn(2) == 0 {
			b := byte(rng.Intn(256))
			if _, err := h.Access(addr, core.OpWrite, fill(b, 8)); err != nil {
				t.Fatal(err)
			}
			shadow[addr] = b
		} else {
			got, err := h.Access(addr, core.OpRead, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := byte(0)
			if b, ok := shadow[addr]; ok {
				want = b
			}
			if got[0] != want {
				t.Fatalf("step %d addr %d: got %d want %d", i, addr, got[0], want)
			}
		}
	}
}

func TestStatsAndLayoutAccessors(t *testing.T) {
	h, err := New(testConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Access(0, core.OpWrite, fill(1, 16)); err != nil {
		t.Fatal(err)
	}
	stats := h.Stats()
	if len(stats) != h.NumORAMs() {
		t.Fatalf("stats length %d", len(stats))
	}
	for lvl, s := range stats {
		if s.RealAccesses != 1 {
			t.Errorf("level %d real accesses %d want 1", lvl, s.RealAccesses)
		}
	}
	// Layout must be a copy.
	l := h.Layout()
	l[0].Z = 99
	if h.Layout()[0].Z == 99 {
		t.Error("Layout returned internal state")
	}
}

func TestMetadataOnlyDataORAM(t *testing.T) {
	cfg := testConfig(13)
	cfg.DataBlockBytes = 0
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 300; i++ {
		if _, err := h.Access(rng.Uint64()%4096, core.OpWrite, nil); err != nil {
			t.Fatal(err)
		}
	}
	if h.Stats()[0].RealAccesses != 300 {
		t.Error("metadata-only hierarchy miscounted accesses")
	}
}
