package hierarchy

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// Tests for the position-map lookaside cache (Section 3.3.3). All named
// TestPLB* for the CI `-run 'PLB|Overlap'` shard.

// plbConfig is testConfig plus a PLB; the 256B on-chip bound forces a
// 3+-level chain so the cache actually fronts ORAM-backed interfaces.
func plbConfig(seed int64, plbBytes uint64) Config {
	cfg := testConfig(seed)
	cfg.PLBBytes = plbBytes
	return cfg
}

func TestPLBSizing(t *testing.T) {
	if newPLB(0) != nil {
		t.Error("zero budget built a cache")
	}
	for _, budget := range []uint64{1, 47, 48, 100, 1 << 10, 1 << 16} {
		c := newPLB(budget)
		if len(c.entries) < plbWays {
			t.Errorf("budget %d: %d entries, want at least one full set", budget, len(c.entries))
		}
		if sets := len(c.entries) / plbWays; sets&(sets-1) != 0 {
			t.Errorf("budget %d: %d sets, want a power of two", budget, sets)
		}
		// Above the one-set minimum the provision must respect the budget.
		if budget >= 2*plbWays*plbEntryBytes && c.sizeBytes() > budget {
			t.Errorf("budget %d: provisioned %dB", budget, c.sizeBytes())
		}
	}
}

// TestPLBLRUReplacement drives one set directly: the least-recently-used
// way is the victim, and a lookup refreshes recency.
func TestPLBLRUReplacement(t *testing.T) {
	c := newPLB(plbWays * plbEntryBytes) // exactly one set
	if sets := len(c.entries) / c.ways; sets != 1 {
		t.Fatalf("%d sets, want 1", sets)
	}
	for g := uint64(0); g < uint64(c.ways); g++ {
		if v, dirty := c.insert(g, uint32(g)); dirty {
			t.Fatalf("inserting %d into a non-full set evicted dirty %+v", g, v)
		}
	}
	// Touch group 0 so group 1 becomes LRU, then overflow the set.
	if _, ok := c.lookup(0); !ok {
		t.Fatal("resident group 0 missed")
	}
	if v, dirty := c.insert(99, 99); dirty || !v.valid || v.group != 1 {
		t.Fatalf("victim %+v dirty=%v, want clean group 1 (LRU)", v, dirty)
	}
	if _, ok := c.lookup(1); ok {
		t.Error("evicted group 1 still hits")
	}
	for _, g := range []uint64{0, 2, 3, 99} {
		if _, ok := c.lookup(g); !ok {
			t.Errorf("resident group %d missed", g)
		}
	}
	// update marks dirty in place; the dirty victim must surface on evict.
	c.update(2, 42)
	c.lookup(0)
	c.lookup(3)
	c.lookup(99)
	if v, dirty := c.insert(100, 100); !dirty || v.group != 2 || v.leaf != 42 {
		t.Fatalf("victim %+v dirty=%v, want dirty group 2 leaf 42", v, dirty)
	}
}

// TestPLBHitSkipsChain is the acceleration property: a PLB hit at the
// first interface elides the backing access and every smaller ORAM above
// it, so a re-access of a cached group touches only the data ORAM.
func TestPLBHitSkipsChain(t *testing.T) {
	var realPerOp []int
	real := 0
	cfg := plbConfig(101, 1<<16) // large: no capacity evictions
	cfg.OnPathAccess = func(level int, _ uint64, kind core.AccessKind) {
		if kind == core.KindReal {
			real++
		}
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hn := h.NumORAMs()
	if hn < 3 {
		t.Fatalf("chain depth %d, want >= 3", hn)
	}
	for i := 0; i < 2; i++ {
		real = 0
		if _, err := h.Access(7, core.OpWrite, fill(byte(i), 16)); err != nil {
			t.Fatal(err)
		}
		realPerOp = append(realPerOp, real)
	}
	if realPerOp[0] != hn {
		t.Errorf("cold access touched %d levels, want the full chain %d", realPerOp[0], hn)
	}
	if realPerOp[1] != 1 {
		t.Errorf("cached re-access touched %d levels, want 1 (data ORAM only)", realPerOp[1])
	}
	st := h.Stats()
	var hits, misses uint64
	for _, s := range st {
		hits += s.PLBHits
		misses += s.PLBMisses
	}
	if hits == 0 || misses == 0 {
		t.Errorf("hits=%d misses=%d, want both nonzero", hits, misses)
	}
	// Chain-length accounting: cold op = hn accesses, warm op = 1.
	if st[0].ChainSamples != 2 || st[0].ChainLevels != uint64(hn)+1 {
		t.Errorf("chain samples=%d levels=%d, want 2 and %d", st[0].ChainSamples, st[0].ChainLevels, hn+1)
	}
	hist := h.ChainLengthHist()
	if hist[1] != 1 || hist[hn] != 1 {
		t.Errorf("hist[1]=%d hist[%d]=%d, want 1 and 1 (hist=%v)", hist[1], hn, hist[hn], hist)
	}
}

// TestPLBDirtyEvictionReadYourWrites hammers a deliberately tiny cache so
// dirty entries are constantly evicted: every evicted label must be
// written back verbatim, or the blocks those labels name are lost.
func TestPLBDirtyEvictionReadYourWrites(t *testing.T) {
	h, err := New(plbConfig(102, 48)) // minimum cache: one set per interface
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(103))
	shadow := map[uint64][]byte{}
	for i := 0; i < 1500; i++ {
		addr := rng.Uint64() % 4096
		if rng.Intn(2) == 0 {
			d := fill(byte(rng.Intn(256)), 16)
			if _, err := h.Access(addr, core.OpWrite, d); err != nil {
				t.Fatal(err)
			}
			shadow[addr] = d
		} else {
			got, err := h.Access(addr, core.OpRead, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := shadow[addr]
			if !ok {
				want = make([]byte, 16)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d addr %d: got % x want % x", i, addr, got, want)
			}
		}
	}
	var wb uint64
	for _, s := range h.Stats() {
		wb += s.PLBWriteBacks
	}
	if wb == 0 {
		t.Error("tiny cache under a wide workload evicted no dirty entries; the write-back path went untested")
	}
}

// TestPLBFlushWriteBackAndInvalidate: Flush must write every dirty cached
// label back and leave the caches cold, so the backing trees are
// self-contained and logical content survives.
func TestPLBFlushWriteBackAndInvalidate(t *testing.T) {
	h, err := New(plbConfig(104, 1<<16))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(105))
	shadow := map[uint64]byte{}
	for i := 0; i < 400; i++ {
		addr := rng.Uint64() % 4096
		b := byte(rng.Intn(256))
		if _, err := h.Access(addr, core.OpWrite, fill(b, 16)); err != nil {
			t.Fatal(err)
		}
		shadow[addr] = b
	}
	dirtyBefore := 0
	for _, m := range h.posMaps {
		dirtyBefore += len(m.plb.dirtyEntries(nil))
	}
	if dirtyBefore == 0 {
		t.Fatal("workload left no dirty PLB entries; flush has nothing to prove")
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, m := range h.posMaps {
		if d := m.plb.dirtyEntries(nil); len(d) != 0 {
			t.Errorf("interface %d: %d dirty entries survived Flush", i, len(d))
		}
		for _, e := range m.plb.entries {
			if e.valid {
				t.Errorf("interface %d: entry %+v survived invalidation", i, e)
			}
		}
	}
	var wb uint64
	for _, s := range h.Stats() {
		wb += s.PLBWriteBacks
	}
	if wb < uint64(dirtyBefore) {
		t.Errorf("write-backs %d < dirty entries %d", wb, dirtyBefore)
	}
	for addr, b := range shadow {
		got, err := h.Access(addr, core.OpRead, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != b {
			t.Fatalf("post-flush addr %d: got %d want %d", addr, got[0], b)
		}
	}
}

// TestPLBConstantShapeFullChain pins the oblivious mode: with
// PLBConstantShape every operation touches every level exactly once
// (real or padding), in the same smallest-first wire order as an uncached
// chain, and the chain-length statistic is pinned at H.
func TestPLBConstantShapeFullChain(t *testing.T) {
	type touch struct {
		level int
		kind  core.AccessKind
	}
	var ops [][]touch
	var cur []touch
	cfg := plbConfig(106, 1<<16)
	cfg.PLBConstantShape = true
	cfg.OnPathAccess = func(level int, _ uint64, kind core.AccessKind) {
		if kind != core.KindDummy { // background eviction is orthogonal
			cur = append(cur, touch{level, kind})
		}
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hn := h.NumORAMs()
	rng := rand.New(rand.NewSource(107))
	for i := 0; i < 300; i++ {
		cur = nil
		if _, err := h.Access(rng.Uint64()%64, core.OpWrite, fill(byte(i), 16)); err != nil {
			t.Fatal(err)
		}
		ops = append(ops, cur)
	}
	var hits uint64
	for _, s := range h.Stats() {
		hits += s.PLBHits
	}
	if hits == 0 {
		t.Fatal("narrow workload produced no PLB hits; constant shape went unexercised")
	}
	for i, op := range ops {
		if len(op) != hn {
			t.Fatalf("op %d touched %d levels, want exactly %d: %+v", i, len(op), hn, op)
		}
		for j, tc := range op {
			if want := hn - 1 - j; tc.level != want {
				t.Fatalf("op %d touch %d hit level %d, want %d (smallest first)", i, j, tc.level, want)
			}
		}
	}
	st := h.Stats()
	if st[0].ChainSamples != 300 || st[0].ChainLevels != uint64(300*hn) {
		t.Errorf("chain samples=%d levels=%d, want 300 and %d (pinned at H)",
			st[0].ChainSamples, st[0].ChainLevels, 300*hn)
	}
	if h.ChainLengthHist()[hn] != 300 {
		t.Errorf("hist[%d]=%d, want all 300 ops", hn, h.ChainLengthHist()[hn])
	}
}

// TestPLBStatsPlumbing pins the counter overlay and reset semantics:
// hierarchy Stats attribute each cache to its backing level, ResetStats
// clears counters but keeps cached labels (protocol state).
func TestPLBStatsPlumbing(t *testing.T) {
	h, err := New(plbConfig(108, 1<<16))
	if err != nil {
		t.Fatal(err)
	}
	if h.PLBOnChipBytes() == 0 {
		t.Error("provisioned PLB reports no on-chip bytes")
	}
	for i := 0; i < 50; i++ {
		if _, err := h.Access(uint64(i)%8, core.OpWrite, fill(1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Stats()
	if st[0].PLBHits != 0 || st[0].PLBMisses != 0 {
		t.Error("data level carries PLB counters; they belong to backing levels")
	}
	for i, m := range h.posMaps {
		s := st[m.level+1]
		if s.PLBHits != m.plb.hits || s.PLBMisses != m.plb.misses || s.PLBWriteBacks != m.plb.writeBacks {
			t.Errorf("interface %d counters not overlaid on level %d: %+v", i, m.level+1, s)
		}
	}
	hitsBefore := uint64(0)
	for _, m := range h.posMaps {
		hitsBefore += m.plb.hits
	}
	if hitsBefore == 0 {
		t.Fatal("narrow workload produced no hits")
	}
	h.ResetStats()
	st = h.Stats()
	for lvl, s := range st {
		if s.PLBHits != 0 || s.PLBMisses != 0 || s.PLBWriteBacks != 0 ||
			s.ChainLevels != 0 || s.ChainSamples != 0 {
			t.Errorf("level %d counters survived ResetStats: %+v", lvl, s)
		}
	}
	for _, n := range h.ChainLengthHist() {
		if n != 0 {
			t.Error("chain histogram survived ResetStats")
		}
	}
	// Cached labels must survive: the next re-access still hits.
	if _, err := h.Access(3, core.OpRead, nil); err != nil {
		t.Fatal(err)
	}
	var hitsAfter uint64
	for _, m := range h.posMaps {
		hitsAfter += m.plb.hits
	}
	if hitsAfter == 0 {
		t.Error("ResetStats dropped cached labels; it must only clear counters")
	}
}

// TestPLBConstantShapeRequiresCache pins the config validation.
func TestPLBConstantShapeRequiresCache(t *testing.T) {
	cfg := testConfig(109)
	cfg.PLBConstantShape = true
	if _, err := New(cfg); err == nil {
		t.Error("PLBConstantShape without PLBBytes accepted")
	}
}
