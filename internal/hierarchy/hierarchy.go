// Package hierarchy implements the hierarchical Path ORAM of Section 2.3:
// the data ORAM's position map is stored in a second, smaller ORAM, whose
// position map is stored in a third, and so on until the final map fits in
// on-chip storage. Looking up the data ORAM therefore walks the chain from
// the smallest ORAM (ORAM_H) down to the data ORAM (ORAM_1), exactly the
// access order of the paper — realized naturally here by recursion through
// ORAM-backed position maps.
//
// Background eviction is coordinated across the chain (Section 3.1.1): if
// any stash exceeds its threshold, one dummy request is issued to every
// ORAM in normal access order until all stashes drain.
package hierarchy

import (
	"encoding/binary"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
)

// labelBytes is the byte-aligned width of a leaf label inside position-map
// ORAM blocks (the analytical model uses the paper's bit-exact L-bit
// labels; see internal/analysis).
const labelBytes = 4

// StoreFactory builds the PathStore for one level of the hierarchy.
// level 0 is the data ORAM.
type StoreFactory func(level int, leafLevel, z, blockBytes int) (core.PathStore, error)

// MemStoreFactory is the default factory: plain in-memory stores.
func MemStoreFactory(_ int, leafLevel, z, blockBytes int) (core.PathStore, error) {
	return core.NewMemStore(leafLevel, z, blockBytes)
}

// Config describes a hierarchical ORAM.
type Config struct {
	// Blocks is the number of addressable data blocks.
	Blocks uint64
	// DataBlockBytes is the data ORAM's block size (0 = metadata-only data
	// ORAM; position-map ORAMs always carry payloads).
	DataBlockBytes int
	// DataZ and PosZ are the bucket capacities for the data ORAM and the
	// position-map ORAMs.
	DataZ, PosZ int
	// DataUtilization sizes the data ORAM tree (default 0.5, the paper's
	// sweet spot for Z=3; Section 4.1.3).
	DataUtilization float64
	// DataLeafLevel overrides the derived data-ORAM leaf level when > 0.
	DataLeafLevel int
	// PosBlockBytes is the position-map ORAM block size (Section 3.3.3;
	// the paper's DZ3Pb32 uses 32 bytes). Must hold at least one 4-byte
	// label.
	PosBlockBytes int
	// OnChipPosMapMax bounds the final on-chip position map, in bytes
	// (default 200 KB as in Section 4.1.5; counted at 4 bytes per entry).
	OnChipPosMapMax uint64
	// SuperBlock enables static super blocks on the data ORAM.
	SuperBlock int
	// StashCapacity is C per ORAM (default 200, Section 4.1.2).
	StashCapacity int
	// BackgroundEviction enables coordinated dummy accesses.
	BackgroundEviction bool
	// MaxDummyRun bounds consecutive dummy rounds (livelock guard).
	MaxDummyRun int
	// DeferWriteBack enables the staged access path on every level of the
	// chain (core.Params.DeferWriteBack): each level's path write-back I/O
	// is queued on that level's own bounded FIFO and completed later by
	// StepBackground, Flush or the queue-full inline drain. Stash and
	// position-map state stay bit-identical to the synchronous protocol;
	// someone must drain (shard workers, or the owner calling
	// StepBackground/Flush).
	DeferWriteBack bool
	// MaxDeferredWriteBacks caps each level's deferred FIFO when positive
	// (default core.DefaultMaxDeferredWriteBacks).
	MaxDeferredWriteBacks int
	// ConstantTimeStash enables fixed-length masked stash scans on every
	// level (core.Params.ConstantTimeStash).
	ConstantTimeStash bool
	// NewStore builds each level's bucket store (default MemStoreFactory).
	NewStore StoreFactory
	// Leaves supplies leaf randomness for every level (required).
	Leaves core.LeafSource
	// PLBBytes provisions a position-map lookaside cache (Section 3.3.3):
	// the byte budget is split evenly across the chain's position-map
	// interfaces, each getting a small set-associative write-back LRU of
	// group→leaf labels. A hit elides the backing access — and every
	// smaller ORAM above it — cutting the chain short; dirty evictions and
	// Flush write the exact cached label back. 0 disables the cache. Inert
	// when the chain has a single level (the whole map already fits
	// on-chip).
	PLBBytes uint64
	// PLBConstantShape pads every PLB hit with one dummy-shaped access to
	// each elided level (smallest first), so hits and misses touch the same
	// ORAMs in the same order — the oblivious endpoint of the PLB axis,
	// trading the hit's traffic saving for shape invariance. The padding is
	// counted in Stats.PaddingAccesses. Requires PLBBytes > 0.
	PLBConstantShape bool
	// OnRoundStart, when set, is called at the start of every chain round
	// — each program operation's access, each coordinated dummy round, each
	// padding access and each flush-time PLB write-back — before any level
	// is touched. The timed backend uses it to open a new speculation slot
	// in its overlap scheduler.
	OnRoundStart func()
	// OnPathAccess observes every path access in the whole hierarchy:
	// level 0 is the data ORAM.
	OnPathAccess func(level int, leaf uint64, kind core.AccessKind)
}

// LevelInfo describes one sized level for reporting.
type LevelInfo struct {
	LeafLevel  int
	Z          int
	BlockBytes int
	Blocks     uint64 // valid blocks stored at this level
}

// ORAM is a hierarchical Path ORAM.
type ORAM struct {
	cfg    Config
	levels []*core.ORAM // [0] = data ORAM, last = smallest position-map ORAM
	infos  []LevelInfo
	onChip *core.OnChipPositionMap
	// posMaps holds the ORAM-backed position-map interfaces: posMaps[i]
	// serves level i's lookups out of level i+1 (nil entries never occur;
	// the slice is empty for a single-level chain).
	posMaps []*oramPosMap

	dummyRounds uint64
	maxDummyRun int

	// Chain-length accounting: curChain counts the ORAM path accesses of
	// the operation in flight (the data level plus every backing access the
	// posmap chain actually performed — PLB hits shorten it, dirty-eviction
	// write-backs lengthen it); chainHist[n] counts operations that needed
	// n accesses, with the last bucket absorbing overflow.
	curChain     uint64
	chainLevels  uint64
	chainSamples uint64
	chainHist    []uint64
	plbScratch   []plbEntry // flush-time dirty-entry buffer (reused)
}

// New sizes and assembles the chain.
func New(cfg Config) (*ORAM, error) {
	if cfg.Blocks == 0 {
		return nil, fmt.Errorf("hierarchy: Blocks must be >= 1")
	}
	if cfg.Leaves == nil {
		return nil, fmt.Errorf("hierarchy: leaf source is required")
	}
	if cfg.DataZ < 1 || cfg.PosZ < 1 {
		return nil, fmt.Errorf("hierarchy: Z values must be >= 1")
	}
	if cfg.PosBlockBytes < labelBytes {
		return nil, fmt.Errorf("hierarchy: position-map blocks of %dB cannot hold a %d-byte label",
			cfg.PosBlockBytes, labelBytes)
	}
	if cfg.DataUtilization <= 0 || cfg.DataUtilization > 1 {
		cfg.DataUtilization = 0.5
	}
	if cfg.OnChipPosMapMax == 0 {
		cfg.OnChipPosMapMax = 200 << 10
	}
	if cfg.StashCapacity == 0 {
		cfg.StashCapacity = 200
	}
	if cfg.NewStore == nil {
		cfg.NewStore = MemStoreFactory
	}
	if cfg.PLBConstantShape && cfg.PLBBytes == 0 {
		return nil, fmt.Errorf("hierarchy: PLBConstantShape pads PLB hits; set PLBBytes > 0")
	}

	infos, err := planLevels(cfg)
	if err != nil {
		return nil, err
	}
	h := &ORAM{cfg: cfg, infos: infos, maxDummyRun: cfg.MaxDummyRun}
	if h.maxDummyRun <= 0 {
		h.maxDummyRun = core.DefaultMaxDummyRun
	}

	// Instantiate from the smallest ORAM backwards: each level's position
	// map needs the next level to exist first.
	hn := len(infos)
	h.levels = make([]*core.ORAM, hn)
	h.posMaps = make([]*oramPosMap, hn-1)
	h.chainHist = make([]uint64, 2*hn+2)
	var plbPer uint64
	if cfg.PLBBytes > 0 && hn > 1 {
		// Split the lookaside budget evenly across the chain's interfaces;
		// a non-zero budget always builds every cache (newPLB rounds a
		// tiny share up to one set).
		if plbPer = cfg.PLBBytes / uint64(hn-1); plbPer == 0 {
			plbPer = 1
		}
	}
	var pos core.PositionMap
	for i := hn - 1; i >= 0; i-- {
		info := infos[i]
		groups := info.Blocks
		superBlock := 1
		if i == 0 {
			superBlock = cfg.SuperBlock
			if superBlock < 1 {
				superBlock = 1
			}
			groups = (info.Blocks + uint64(superBlock) - 1) / uint64(superBlock)
		}
		if i == hn-1 {
			onChip, err := core.NewOnChipPositionMap(groups, 1<<uint(info.LeafLevel), cfg.Leaves)
			if err != nil {
				return nil, err
			}
			h.onChip = onChip
			pos = onChip
		} else {
			m := &oramPosMap{
				backing:        h.levels[i+1],
				labelsPerBlock: uint64(infos[i+1].BlockBytes / labelBytes),
				numLeaves:      1 << uint(info.LeafLevel),
				src:            cfg.Leaves,
				shadow:         make(map[uint64]uint32),
				h:              h,
				level:          i,
				plb:            newPLB(plbPer),
			}
			h.posMaps[i] = m
			pos = m
		}
		store, err := cfg.NewStore(i, info.LeafLevel, info.Z, info.BlockBytes)
		if err != nil {
			return nil, fmt.Errorf("hierarchy: building store for level %d: %w", i, err)
		}
		params := core.Params{
			LeafLevel:     info.LeafLevel,
			Z:             info.Z,
			BlockBytes:    info.BlockBytes,
			Blocks:        info.Blocks,
			StashCapacity: cfg.StashCapacity,
			SuperBlock:    superBlock,
			// The hierarchy coordinates eviction itself.
			BackgroundEviction:    false,
			DeferWriteBack:        cfg.DeferWriteBack,
			MaxDeferredWriteBacks: cfg.MaxDeferredWriteBacks,
			ConstantTimeStash:     cfg.ConstantTimeStash,
		}
		if i > 0 {
			// Position-map blocks must read as "unassigned" until written.
			params.FreshFill = 0xFF
		}
		if cfg.OnPathAccess != nil {
			lvl := i
			params.OnPathAccess = func(leaf uint64, kind core.AccessKind) {
				cfg.OnPathAccess(lvl, leaf, kind)
			}
		}
		if params.StashCapacity-params.Z*(params.LeafLevel+1) < 1 {
			return nil, fmt.Errorf("hierarchy: stash capacity %d too small for level %d (Z(L+1)=%d)",
				params.StashCapacity, i, params.Z*(params.LeafLevel+1))
		}
		o, err := core.New(params, store, pos, cfg.Leaves)
		if err != nil {
			return nil, fmt.Errorf("hierarchy: level %d: %w", i, err)
		}
		h.levels[i] = o
	}
	return h, nil
}

// planLevels sizes the chain: ORAM(h+1) stores k = PosBlockBytes/4 labels
// per block and needs ceil(entries_h / k) blocks.
func planLevels(cfg Config) ([]LevelInfo, error) {
	dataLevel := cfg.DataLeafLevel
	if dataLevel <= 0 {
		slots := uint64(float64(cfg.Blocks) / cfg.DataUtilization)
		dataLevel = analysis.LevelsForSlots(slots, cfg.DataZ)
		// Never size the tree below its contents.
		if min := analysis.MinLevelsForBlocks(cfg.Blocks, cfg.DataZ); dataLevel < min {
			dataLevel = min
		}
	}
	infos := []LevelInfo{{
		LeafLevel: dataLevel, Z: cfg.DataZ,
		BlockBytes: cfg.DataBlockBytes, Blocks: cfg.Blocks,
	}}
	sb := cfg.SuperBlock
	if sb < 1 {
		sb = 1
	}
	entries := (cfg.Blocks + uint64(sb) - 1) / uint64(sb) // groups of the data ORAM
	k := uint64(cfg.PosBlockBytes / labelBytes)
	for entries*labelBytes > cfg.OnChipPosMapMax {
		if len(infos) > 16 {
			return nil, fmt.Errorf("hierarchy: position-map chain did not converge")
		}
		n := (entries + k - 1) / k
		l := analysis.PosMapLevels(n)
		// Keep utilization at or below ~2/3 so the stash stays healthy
		// even for small Z (the paper's posmap ORAMs use Z=3, where the
		// ceil(log2 N)-1 rule already lands in this range).
		for uint64(cfg.PosZ)*(1<<uint(l+1)-1)*2 < 3*n {
			l++
		}
		infos = append(infos, LevelInfo{
			LeafLevel: l, Z: cfg.PosZ, BlockBytes: cfg.PosBlockBytes, Blocks: n,
		})
		entries = n
	}
	return infos, nil
}

// NumORAMs returns H, the number of ORAMs in the chain.
func (h *ORAM) NumORAMs() int { return len(h.levels) }

// Layout returns the sized levels (index 0 = data ORAM).
func (h *ORAM) Layout() []LevelInfo { return append([]LevelInfo(nil), h.infos...) }

// OnChipPosMapBytes returns the functional size of the final on-chip
// position map at 4 bytes per entry.
func (h *ORAM) OnChipPosMapBytes() uint64 {
	return h.onChip.SizeBits(8*labelBytes) / 8
}

// StashBoundBytes returns the summed on-chip stash provision over every
// level of the chain (each level owns its own stash of cfg.StashCapacity
// slots, sized for that level's block bytes — payload plus per-entry
// metadata, see core.Params.StashBoundBytes).
func (h *ORAM) StashBoundBytes() uint64 {
	var total uint64
	for _, l := range h.levels {
		total += l.Params().StashBoundBytes()
	}
	return total
}

// Level exposes one member ORAM (for stats and tests).
func (h *ORAM) Level(i int) *core.ORAM { return h.levels[i] }

// Stats returns per-level counters (index 0 = data ORAM). PLB counters are
// attributed to the backing level whose accesses the cache filters (the
// PLB in front of level i+1 shows up in out[i+1]); the chain-length
// aggregate lands on the data level.
func (h *ORAM) Stats() []core.Stats {
	out := make([]core.Stats, len(h.levels))
	for i, o := range h.levels {
		out[i] = o.Stats()
	}
	for _, m := range h.posMaps {
		if m == nil || m.plb == nil {
			continue
		}
		s := &out[m.level+1]
		s.PLBHits += m.plb.hits
		s.PLBMisses += m.plb.misses
		s.PLBWriteBacks += m.plb.writeBacks
	}
	out[0].ChainLevels += h.chainLevels
	out[0].ChainSamples += h.chainSamples
	return out
}

// ChainLengthHist returns a copy of the chain-length histogram: entry n
// counts program operations that needed n ORAM path accesses (the last
// bucket absorbs overflow from dirty-eviction write-back sub-chains).
func (h *ORAM) ChainLengthHist() []uint64 {
	return append([]uint64(nil), h.chainHist...)
}

// PLBOnChipBytes returns the provisioned on-chip footprint of every
// position-map lookaside cache (0 without Config.PLBBytes).
func (h *ORAM) PLBOnChipBytes() uint64 {
	var total uint64
	for _, m := range h.posMaps {
		if m != nil && m.plb != nil {
			total += m.plb.sizeBytes()
		}
	}
	return total
}

// DummyRounds returns how many coordinated dummy rounds (one dummy access
// to every ORAM) background eviction has issued.
func (h *ORAM) DummyRounds() uint64 { return h.dummyRounds }

// ResetStats clears the counters of every level and the dummy-round count
// (used after a fill phase so steady-state rates are measured).
func (h *ORAM) ResetStats() {
	for _, o := range h.levels {
		o.ResetStats()
	}
	h.dummyRounds = 0
	h.chainLevels, h.chainSamples = 0, 0
	for i := range h.chainHist {
		h.chainHist[i] = 0
	}
	for _, m := range h.posMaps {
		if m != nil && m.plb != nil {
			// Counters only: cached labels are protocol state, and dropping
			// them at a measurement boundary would change behavior.
			m.plb.resetStats()
		}
	}
}

// DummyPerReal returns the hierarchy-level DA/RA of Equation 2.
func (h *ORAM) DummyPerReal() float64 {
	real := h.levels[0].Stats().RealAccesses
	if real == 0 {
		return 0
	}
	return float64(h.dummyRounds) / float64(real)
}

// beginOp opens one program operation's chain round: notifies the timing
// scheduler and starts the chain-length count at 1 (the data level's own
// path access; the posmap chain adds every backing access it performs).
func (h *ORAM) beginOp() {
	if h.cfg.OnRoundStart != nil {
		h.cfg.OnRoundStart()
	}
	h.curChain = 1
}

// recordChain closes the count beginOp opened.
func (h *ORAM) recordChain() {
	h.chainSamples++
	h.chainLevels += h.curChain
	idx := h.curChain
	if idx >= uint64(len(h.chainHist)) {
		idx = uint64(len(h.chainHist)) - 1
	}
	h.chainHist[idx]++
}

// Access reads or writes a data block through the whole hierarchy: one
// path access in every ORAM (position-map chain first), then coordinated
// background eviction.
func (h *ORAM) Access(addr uint64, op core.Op, data []byte) ([]byte, error) {
	h.beginOp()
	out, err := h.levels[0].Access(addr, op, data)
	if err != nil {
		return nil, err
	}
	h.recordChain()
	return out, h.drain()
}

// ReadInto reads a data block into the caller-provided dst through the
// whole hierarchy, avoiding the per-read result allocation of Access.
func (h *ORAM) ReadInto(addr uint64, dst []byte) (found bool, err error) {
	h.beginOp()
	found, err = h.levels[0].ReadInto(addr, dst)
	if err != nil {
		return false, err
	}
	h.recordChain()
	return found, h.drain()
}

// Update performs a read-modify-write of a data block.
func (h *ORAM) Update(addr uint64, fn func(data []byte)) error {
	h.beginOp()
	if err := h.levels[0].Update(addr, fn); err != nil {
		return err
	}
	h.recordChain()
	return h.drain()
}

// Load is the exclusive read (Section 3.3.1) through the hierarchy.
func (h *ORAM) Load(addr uint64) (data []byte, found bool, group []core.Slot, err error) {
	h.beginOp()
	data, found, group, err = h.levels[0].Load(addr)
	if err != nil {
		return nil, false, nil, err
	}
	h.recordChain()
	return data, found, group, h.drain()
}

// Store returns a checked-out block to the data ORAM's stash. It touches
// no path in any ORAM.
func (h *ORAM) Store(addr uint64, data []byte) error {
	if err := h.levels[0].Store(addr, data); err != nil {
		return err
	}
	return h.drain()
}

// PaddingAccess performs one dummy-shaped access through the whole chain:
// every ORAM, smallest first, reads and writes back one freshly drawn
// uniform path — on the wire indistinguishable from a real access, since a
// real access touches exactly the same ORAMs in exactly the same order —
// counted as scheduler padding (Stats.PaddingAccesses per level). The
// sharded serving layer's padded batch mode fills the dummy slots of its
// fixed-shape schedule with these.
func (h *ORAM) PaddingAccess() error {
	if h.cfg.OnRoundStart != nil {
		h.cfg.OnRoundStart()
	}
	for i := len(h.levels) - 1; i >= 0; i-- {
		if err := h.levels[i].PaddingAccess(); err != nil {
			return err
		}
	}
	return h.drain()
}

// StashSize returns the summed stash occupancy over every level.
func (h *ORAM) StashSize() int {
	var total int
	for _, o := range h.levels {
		total += o.StashSize()
	}
	return total
}

// PendingWriteBacks returns the total deferred path write-backs across all
// levels that have not yet been completed (always 0 without
// Config.DeferWriteBack).
func (h *ORAM) PendingWriteBacks() int {
	var total int
	for _, o := range h.levels {
		total += o.PendingWriteBacks()
	}
	return total
}

// StepBackground performs one unit of deferred work: completing one
// pending path write-back (levels drain smallest-ORAM first, matching the
// access order their traffic arrived in), or — when no write-backs are
// pending, allowEviction is set and some level's stash sits above the idle
// low-water mark (half its inline threshold) — issuing one coordinated
// dummy round, one dummy access to every ORAM in normal access order.
// core.BgNone means there is nothing useful to do right now.
func (h *ORAM) StepBackground(allowEviction bool) (core.BackgroundWork, error) {
	for i := len(h.levels) - 1; i >= 0; i-- {
		if h.levels[i].PendingWriteBacks() > 0 {
			return h.levels[i].StepBackground(false)
		}
	}
	if allowEviction && h.cfg.BackgroundEviction && h.needsIdleEviction() {
		if h.cfg.OnRoundStart != nil {
			h.cfg.OnRoundStart()
		}
		for i := len(h.levels) - 1; i >= 0; i-- {
			if err := h.levels[i].DummyAccess(); err != nil {
				return core.BgEviction, err
			}
		}
		h.dummyRounds++
		return core.BgEviction, nil
	}
	return core.BgNone, nil
}

// needsIdleEviction reports whether any level's stash is above half its
// inline eviction threshold — the same low-water mark core.StepBackground
// uses, so a burst of subsequent accesses has headroom before any of them
// pays for inline draining.
func (h *ORAM) needsIdleEviction() bool {
	for _, o := range h.levels {
		if t := o.Params().EvictionThreshold(); t >= 0 && o.StashSize() > t/2 {
			return true
		}
	}
	return false
}

// Flush completes every level's pending write-backs and fully drains
// coordinated background eviction, leaving the chain in a state the
// synchronous protocol could have produced: no deferred I/O anywhere,
// every stash at or below its threshold, and — with a PLB — every dirty
// cached label written back and the cache cold, so the backing trees are
// self-contained again.
func (h *ORAM) Flush() error {
	if err := h.plbFlush(); err != nil {
		return err
	}
	for _, o := range h.levels {
		if err := o.Flush(); err != nil {
			return err
		}
	}
	// Coordinated draining issues dummy accesses whose write-backs are
	// themselves deferred in staged mode; flush those too.
	if err := h.drain(); err != nil {
		return err
	}
	for _, o := range h.levels {
		if err := o.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// plbFlush writes every dirty PLB entry back into its backing ORAM and
// invalidates the caches. Interfaces flush data-side first: writing
// interface i's labels walks the chain above it and may dirty interface
// i+1's cache, which the next iteration then flushes. Each write-back is
// its own chain round (one oblivious access at the backing level plus the
// recursion above it).
func (h *ORAM) plbFlush() error {
	for _, m := range h.posMaps {
		if m == nil || m.plb == nil {
			continue
		}
		h.plbScratch = m.plb.dirtyEntries(h.plbScratch[:0])
		for _, e := range h.plbScratch {
			m.plb.writeBacks++
			if h.cfg.OnRoundStart != nil {
				h.cfg.OnRoundStart()
			}
			if err := m.writeLabel(e.group, e.leaf); err != nil {
				return err
			}
		}
		m.plb.invalidate()
	}
	return nil
}

// drain coordinates background eviction: while any stash exceeds its
// threshold, issue one dummy request to each ORAM in normal access order
// (smallest first, data ORAM last — Section 3.1.1).
func (h *ORAM) drain() error {
	if !h.cfg.BackgroundEviction {
		return nil
	}
	run := 0
	for h.needsEviction() {
		if run >= h.maxDummyRun {
			return core.ErrLivelock
		}
		if h.cfg.OnRoundStart != nil {
			h.cfg.OnRoundStart()
		}
		for i := len(h.levels) - 1; i >= 0; i-- {
			if err := h.levels[i].DummyAccess(); err != nil {
				return err
			}
		}
		h.dummyRounds++
		run++
	}
	return nil
}

func (h *ORAM) needsEviction() bool {
	for _, o := range h.levels {
		if o.NeedsBackgroundEviction() {
			return true
		}
	}
	return false
}

// oramPosMap is a core.PositionMap stored inside the next ORAM of the
// chain: each backing block packs labelsPerBlock little-endian 4-byte leaf
// labels; 0xFFFFFFFF (the backing ORAM's fresh fill) means unassigned.
type oramPosMap struct {
	backing        *core.ORAM
	labelsPerBlock uint64
	numLeaves      uint64
	src            core.LeafSource
	// shadow caches the label of every group that currently has blocks
	// checked out, so the exclusive Store path can recover the leaf
	// without an extra oblivious access. In hardware this is the leaf tag
	// the secure processor keeps alongside each cache line.
	shadow map[uint64]uint32
	// plb is the optional lookaside cache in front of this interface; h
	// and level locate it in the chain (backing is h.levels[level+1]) for
	// chain-length accounting and constant-shape padding.
	plb   *plb
	h     *ORAM
	level int
}

// Access implements core.PositionMap. On a PLB hit the cached label is
// authoritative — the group is remapped in the cache alone (entry goes
// dirty) and the backing ORAM is not touched, which elides every smaller
// ORAM above it too. On a miss (or without a PLB) it is a single
// read-modify-write access to the backing ORAM (one path per level,
// recursively); the freshly mapped label is then cached clean, and a dirty
// victim of the insert is written back exactly as cached.
func (m *oramPosMap) Access(group uint64) (old, new uint32, err error) {
	if m.plb != nil {
		if leaf, ok := m.plb.lookup(group); ok {
			m.plb.hits++
			newLeaf := uint32(m.src.Leaf(m.numLeaves))
			m.plb.update(group, newLeaf)
			m.shadow[group] = newLeaf
			if m.h.cfg.PLBConstantShape {
				if err := m.h.padElidedLevels(m.level + 1); err != nil {
					return 0, 0, err
				}
			}
			return leaf, newLeaf, nil
		}
		m.plb.misses++
	}
	newLeaf := uint32(m.src.Leaf(m.numLeaves))
	blk := group / m.labelsPerBlock
	off := (group % m.labelsPerBlock) * labelBytes
	m.h.curChain++
	err = m.backing.Update(blk, func(data []byte) {
		old = binary.LittleEndian.Uint32(data[off : off+labelBytes])
		if old == core.UnassignedLeaf {
			// Never mapped: the paper initializes every entry to a random
			// leaf; drawing it lazily is equivalent.
			old = uint32(m.src.Leaf(m.numLeaves))
		}
		binary.LittleEndian.PutUint32(data[off:off+labelBytes], newLeaf)
	})
	if err != nil {
		return 0, 0, err
	}
	if m.plb != nil {
		if victim, dirty := m.plb.insert(group, newLeaf); dirty {
			// The evicted label is the only live copy of that group's
			// mapping; write it back verbatim (no remap — the group is not
			// being accessed, its block stays on the cached leaf's path).
			m.plb.writeBacks++
			if err := m.writeLabel(victim.group, victim.leaf); err != nil {
				return 0, 0, err
			}
		}
	}
	m.shadow[group] = newLeaf
	return old, newLeaf, nil
}

// writeLabel stores a label into the backing ORAM without consulting this
// interface's PLB — it is the write-back half of the cache, used for dirty
// evictions and flushes. The access recursively walks the chain above the
// backing level like any other backing update.
func (m *oramPosMap) writeLabel(group uint64, leaf uint32) error {
	blk := group / m.labelsPerBlock
	off := (group % m.labelsPerBlock) * labelBytes
	m.h.curChain++
	return m.backing.Update(blk, func(data []byte) {
		binary.LittleEndian.PutUint32(data[off:off+labelBytes], leaf)
	})
}

// padElidedLevels issues one dummy-shaped access to every level a PLB hit
// elided (from..top, smallest first — the order the real chain would have
// touched them), so constant-shape mode keeps hits and misses
// indistinguishable on the wire. Counted as scheduler padding.
func (h *ORAM) padElidedLevels(from int) error {
	for j := len(h.levels) - 1; j >= from; j-- {
		h.curChain++
		if err := h.levels[j].PaddingAccess(); err != nil {
			return err
		}
	}
	return nil
}

// Peek implements core.PositionMap from the shadow tags.
func (m *oramPosMap) Peek(group uint64) (uint32, bool, error) {
	l, ok := m.shadow[group]
	return l, ok, nil
}
