// Package service is the multi-tenant serving layer behind
// cmd/oram-server: a registry of named tenants, each backed by its own
// pathoram.Client opened from a shared construction template, plus the
// HTTP/JSON front-end that exposes read/write/batch traffic and
// per-tenant stats over a socket. Tenant isolation is cryptographic and
// physical: tenant i's master key is derived from the service master
// through the domain-separated KDF ('T' tag, pathoram.DeriveTenantKey),
// and under the file backend each tenant's trees live in their own
// subdirectory. Close drains every tenant — Flush, WAL checkpoint, file
// close — surfacing the first backend error, which is what cmd/oram-server
// runs on SIGTERM before exiting.
package service

import (
	crand "crypto/rand"
	"errors"
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	pathoram "repro"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	ErrExists   = errors.New("service: tenant already exists")
	ErrNoTenant = errors.New("service: no such tenant")
	ErrClosed   = errors.New("service: draining")
	ErrBadName  = errors.New("service: tenant names are 1-64 chars of [a-zA-Z0-9._-], starting alphanumeric")
)

// nameRE keeps tenant names directory-safe: the leading alphanumeric
// rules out "." / ".." / hidden files, the charset rules out separators.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

const masterKeySize = 16 // pathoram.DeriveTenantKey's AES-128 master

// Config configures the service.
type Config struct {
	// Template is the construction every tenant gets — one
	// pathoram.Open(Template) per tenant, specialized per tenant in
	// exactly two ways: Key becomes the tenant's derived master key, and
	// (under BackendFile) Dir becomes Template.Dir/<tenant-name>.
	// Template.Rand must be nil: tenants draw independent crypto
	// randomness, a shared seeded source would race and correlate them.
	Template pathoram.Spec
	// MasterKey is the 16-byte service master every tenant key is derived
	// from. Nil draws a fresh one at startup (fine for a volatile
	// deployment; a durable one must supply the key, or nothing sealed in
	// a previous process can ever be desealed).
	MasterKey []byte
	// MaxTenants bounds Create (0 = 64): each tenant is a full ORAM
	// instance, so admission must be explicit, not driven by request
	// traffic.
	MaxTenants int
}

// Service is the tenant registry. All methods are safe for concurrent
// use; per-tenant request concurrency is the underlying client's
// (the sharded scheduler serializes per shard).
type Service struct {
	template   pathoram.Spec
	master     []byte
	maxTenants int

	mu      sync.RWMutex
	tenants map[string]*Tenant
	nextIdx uint64
	closed  bool
}

// Tenant is one named namespace: an index (fixing its derived key) and
// the client serving it.
type Tenant struct {
	Name   string
	Index  uint64
	Client pathoram.Client
}

// New builds the service. No tenants exist yet; Create admits them.
func New(cfg Config) (*Service, error) {
	if cfg.Template.Rand != nil {
		return nil, fmt.Errorf("service: Template.Rand must be nil; tenants draw independent randomness")
	}
	if cfg.Template.Key != nil {
		return nil, fmt.Errorf("service: set the service master in MasterKey, not Template.Key; per-tenant keys are derived from it")
	}
	master := cfg.MasterKey
	if master == nil {
		master = make([]byte, masterKeySize)
		if _, err := crand.Read(master); err != nil {
			return nil, fmt.Errorf("service: drawing master key: %w", err)
		}
	} else if len(master) != masterKeySize {
		return nil, fmt.Errorf("service: master key is %d bytes, want %d", len(master), masterKeySize)
	}
	maxTenants := cfg.MaxTenants
	if maxTenants == 0 {
		maxTenants = 64
	}
	return &Service{
		template:   cfg.Template,
		master:     master,
		maxTenants: maxTenants,
		tenants:    map[string]*Tenant{},
	}, nil
}

// BlockSize returns the tenant-uniform block payload size in bytes.
func (s *Service) BlockSize() int { return s.template.BlockSize }

// Blocks returns the tenant-uniform logical address space size.
func (s *Service) Blocks() uint64 { return s.template.Blocks }

// Create admits a new tenant: derives its key from the service master at
// the next monotone index (indices are never reused, so a re-created
// name gets a fresh key), opens its client, and registers it.
func (s *Service) Create(name string) (*Tenant, error) {
	if !nameRE.MatchString(name) {
		return nil, ErrBadName
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, ok := s.tenants[name]; ok {
		return nil, ErrExists
	}
	if len(s.tenants) >= s.maxTenants {
		return nil, fmt.Errorf("service: tenant limit %d reached", s.maxTenants)
	}
	spec := s.template
	key, err := pathoram.DeriveTenantKey(s.master, s.nextIdx)
	if err != nil {
		return nil, err
	}
	spec.Key = key
	if spec.Backend == pathoram.BackendFile {
		spec.Dir = filepath.Join(s.template.Dir, name)
	}
	client, err := pathoram.Open(spec)
	if err != nil {
		return nil, fmt.Errorf("service: opening tenant %q: %w", name, err)
	}
	t := &Tenant{Name: name, Index: s.nextIdx, Client: client}
	s.nextIdx++
	s.tenants[name] = t
	return t, nil
}

// Get returns the named tenant, or ErrNoTenant / ErrClosed.
func (s *Service) Get(name string) (*Tenant, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	t, ok := s.tenants[name]
	if !ok {
		return nil, ErrNoTenant
	}
	return t, nil
}

// Drop closes the named tenant (Flush → WAL checkpoint → file close) and
// removes it from the registry. Under BackendFile the tenant's directory
// is left in place — dropping revokes service, it does not shred data.
func (s *Service) Drop(name string) error {
	s.mu.Lock()
	t, ok := s.tenants[name]
	if ok {
		delete(s.tenants, name)
	}
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return ErrNoTenant
	}
	return t.Client.Close()
}

// Names returns the registered tenant names, sorted.
func (s *Service) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close drains the service: no new tenants or requests are admitted, and
// every tenant is closed in name order — each close flushes deferred
// write-backs, checkpoints the WAL and closes the tree files. The first
// backend error is returned even when later tenants close cleanly;
// cmd/oram-server exits non-zero on it. Idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	tenants := s.tenants
	s.tenants = map[string]*Tenant{}
	s.mu.Unlock()
	names := make([]string, 0, len(tenants))
	for n := range tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	var first error
	for _, n := range names {
		if err := tenants[n].Client.Close(); err != nil && first == nil {
			first = fmt.Errorf("closing tenant %q: %w", n, err)
		}
	}
	return first
}
