package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	pathoram "repro"
	"repro/internal/service"
)

// newServer builds a service over the given template and wraps it in an
// httptest server. Cleanup drains the service (asserting a clean close)
// before the listener goes away.
func newServer(t *testing.T, spec pathoram.Spec) (*service.Service, *httptest.Server) {
	t.Helper()
	svc, err := service.New(service.Config{Template: spec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := svc.Close(); err != nil {
			t.Errorf("draining service: %v", err)
		}
	})
	return svc, ts
}

func memSpec() pathoram.Spec {
	return pathoram.Spec{Blocks: 256, BlockSize: 16, Encryption: pathoram.EncryptCounter}
}

func fileSpec(t *testing.T) pathoram.Spec {
	s := memSpec()
	s.Backend = pathoram.BackendFile
	s.Dir = t.TempDir()
	s.WAL = true
	s.AsyncEviction = true
	return s
}

// doJSON posts body to url and decodes the JSON response into out,
// returning the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

type wireOp struct {
	Op   string `json:"op,omitempty"`
	Addr uint64 `json:"addr"`
	Data []byte `json:"data,omitempty"`
}

type wireResult struct {
	Addr  uint64 `json:"addr"`
	Data  []byte `json:"data,omitempty"`
	Error string `json:"error,omitempty"`
}

func TestServerTenantLifecycle(t *testing.T) {
	_, ts := newServer(t, memSpec())

	if got := doJSON(t, "PUT", ts.URL+"/v1/tenants/alice", nil, nil); got != http.StatusCreated {
		t.Fatalf("create alice: status %d, want 201", got)
	}
	if got := doJSON(t, "PUT", ts.URL+"/v1/tenants/alice", nil, nil); got != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", got)
	}
	for _, bad := range []string{".hidden", "a/b", "%2e%2e", strings.Repeat("x", 65)} {
		if got := doJSON(t, "PUT", ts.URL+"/v1/tenants/"+bad, nil, nil); got != http.StatusBadRequest && got != http.StatusNotFound {
			t.Errorf("create %q: status %d, want 400 (or unroutable 404)", bad, got)
		}
	}
	doJSON(t, "PUT", ts.URL+"/v1/tenants/bob", nil, nil)
	var list struct {
		Tenants []string `json:"tenants"`
	}
	if got := doJSON(t, "GET", ts.URL+"/v1/tenants", nil, &list); got != http.StatusOK {
		t.Fatalf("list: status %d", got)
	}
	if want := []string{"alice", "bob"}; fmt.Sprint(list.Tenants) != fmt.Sprint(want) {
		t.Fatalf("tenants = %v, want %v", list.Tenants, want)
	}
	if got := doJSON(t, "DELETE", ts.URL+"/v1/tenants/bob", nil, nil); got != http.StatusOK {
		t.Fatalf("drop bob: status %d", got)
	}
	if got := doJSON(t, "DELETE", ts.URL+"/v1/tenants/bob", nil, nil); got != http.StatusNotFound {
		t.Fatalf("double drop: status %d, want 404", got)
	}
	if got := doJSON(t, "POST", ts.URL+"/v1/t/carol/read", wireOp{Addr: 1}, nil); got != http.StatusNotFound {
		t.Fatalf("read on unknown tenant: status %d, want 404", got)
	}
}

// TestServerReadYourWritesConcurrentTenants is the e2e acceptance test:
// several tenants on a file+WAL backend, each hammered by concurrent
// clients over the socket, every read observing that client's latest
// write (the scheduler serializes per tenant), and tenants never seeing
// each other's blocks.
func TestServerReadYourWritesConcurrentTenants(t *testing.T) {
	spec := fileSpec(t)
	_, ts := newServer(t, spec)

	tenants := []string{"alice", "bob", "carol"}
	for _, name := range tenants {
		if got := doJSON(t, "PUT", ts.URL+"/v1/tenants/"+name, nil, nil); got != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, got)
		}
	}
	const (
		clientsPerTenant = 4
		opsPerClient     = 24
	)
	var wg sync.WaitGroup
	errc := make(chan error, len(tenants)*clientsPerTenant)
	for ti, name := range tenants {
		for cl := 0; cl < clientsPerTenant; cl++ {
			wg.Add(1)
			go func(ti, cl int, name string) {
				defer wg.Done()
				for i := 0; i < opsPerClient; i++ {
					// Clients of one tenant write disjoint addresses, so
					// read-your-writes is deterministic under concurrency.
					addr := uint64(cl*opsPerClient + i)
					payload := []byte(fmt.Sprintf("%s-%02d-%011d", name[:1], cl, i))
					if got := doJSON(t, "POST", ts.URL+"/v1/t/"+name+"/write", wireOp{Addr: addr, Data: payload}, nil); got != http.StatusOK {
						errc <- fmt.Errorf("%s write %d: status %d", name, addr, got)
						return
					}
					var res wireResult
					if got := doJSON(t, "POST", ts.URL+"/v1/t/"+name+"/read", wireOp{Addr: addr}, &res); got != http.StatusOK {
						errc <- fmt.Errorf("%s read %d: status %d", name, addr, got)
						return
					}
					if !bytes.Equal(res.Data, payload) {
						errc <- fmt.Errorf("%s addr %d: read %q, want %q", name, addr, res.Data, payload)
						return
					}
				}
				_ = ti
			}(ti, cl, name)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// Isolation: an address alice wrote reads as never-written under a
	// tenant that did not write it (fresh zero block), not alice's data.
	var res wireResult
	probe := uint64(clientsPerTenant*opsPerClient + 7)
	doJSON(t, "POST", ts.URL+"/v1/t/alice/write", wireOp{Addr: probe, Data: []byte("alice-secret-nnn")}, nil)
	if got := doJSON(t, "POST", ts.URL+"/v1/t/bob/read", wireOp{Addr: probe}, &res); got != http.StatusOK {
		t.Fatalf("bob probe read: status %d", got)
	}
	if bytes.Contains(res.Data, []byte("alice")) {
		t.Fatalf("tenant isolation broken: bob read %q", res.Data)
	}
}

func TestServerBatchNDJSON(t *testing.T) {
	_, ts := newServer(t, memSpec())
	doJSON(t, "PUT", ts.URL+"/v1/tenants/alice", nil, nil)

	// Mixed stream: a run of writes, then reads of the same addresses,
	// then one more write — exercising the run-grouped submission.
	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	const n = 20
	for i := 0; i < n; i++ {
		enc.Encode(wireOp{Op: "write", Addr: uint64(i), Data: []byte(fmt.Sprintf("batch-%010d", i))})
	}
	for i := 0; i < n; i++ {
		enc.Encode(wireOp{Op: "read", Addr: uint64(i)})
	}
	enc.Encode(wireOp{Op: "write", Addr: 99, Data: bytes.Repeat([]byte("z"), 16)})

	resp, err := http.Post(ts.URL+"/v1/t/alice/batch", "application/x-ndjson", &in)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var results []wireResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r wireResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad result line %q: %v", sc.Text(), err)
		}
		if r.Error != "" {
			t.Fatalf("batch error: %s", r.Error)
		}
		results = append(results, r)
	}
	if len(results) != 2*n+1 {
		t.Fatalf("got %d result lines, want %d", len(results), 2*n+1)
	}
	for i := 0; i < n; i++ {
		r := results[n+i]
		if want := fmt.Sprintf("batch-%010d", i); r.Addr != uint64(i) || string(r.Data) != want {
			t.Fatalf("read result %d = addr %d data %q, want addr %d data %q", i, r.Addr, r.Data, i, want)
		}
	}

	// A malformed op ends the stream with one error line.
	resp2, err := http.Post(ts.URL+"/v1/t/alice/batch", "application/x-ndjson",
		strings.NewReader(`{"op":"transmute","addr":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var errLine wireResult
	if err := json.NewDecoder(resp2.Body).Decode(&errLine); err != nil || errLine.Error == "" {
		t.Fatalf("malformed op: got line %+v err %v, want an error line", errLine, err)
	}
}

func TestServerStatsEndpoint(t *testing.T) {
	_, ts := newServer(t, memSpec())
	doJSON(t, "PUT", ts.URL+"/v1/tenants/alice", nil, nil)
	doJSON(t, "POST", ts.URL+"/v1/t/alice/write", wireOp{Addr: 1, Data: bytes.Repeat([]byte("a"), 16)}, nil)

	var body struct {
		Tenant string `json:"tenant"`
		Stats  struct {
			RealAccesses uint64
		} `json:"stats"`
		OnChipBytes uint64 `json:"onchip_bytes"`
	}
	if got := doJSON(t, "GET", ts.URL+"/v1/t/alice/stats", nil, &body); got != http.StatusOK {
		t.Fatalf("stats: status %d", got)
	}
	if body.Tenant != "alice" || body.Stats.RealAccesses == 0 || body.OnChipBytes == 0 {
		t.Fatalf("stats body looks empty: %+v", body)
	}
}

// TestServerDrainCheckpointsTenants pins the drain protocol: after Close
// every endpoint answers 503, and each file-backed tenant's WAL has been
// checkpointed into its tree file (empty log on disk).
func TestServerDrainCheckpointsTenants(t *testing.T) {
	spec := fileSpec(t)
	svc, err := service.New(service.Config{Template: spec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	doJSON(t, "PUT", ts.URL+"/v1/tenants/alice", nil, nil)
	for i := 0; i < 16; i++ {
		doJSON(t, "POST", ts.URL+"/v1/t/alice/write", wireOp{Addr: uint64(i), Data: bytes.Repeat([]byte("d"), 16)}, nil)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("second drain not idempotent: %v", err)
	}
	if got := doJSON(t, "POST", ts.URL+"/v1/t/alice/read", wireOp{Addr: 1}, nil); got != http.StatusServiceUnavailable {
		t.Fatalf("read after drain: status %d, want 503", got)
	}
	if got := doJSON(t, "PUT", ts.URL+"/v1/tenants/late", nil, nil); got != http.StatusServiceUnavailable {
		t.Fatalf("create after drain: status %d, want 503", got)
	}
	wals, err := filepath.Glob(filepath.Join(spec.Dir, "alice", "*.wal"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no WAL files under the tenant dir (err=%v)", err)
	}
	for _, w := range wals {
		st, err := os.Stat(w)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != 0 {
			t.Fatalf("%s: %d bytes after drain, want 0 (checkpoint truncates)", w, st.Size())
		}
	}
}

// TestServerTenantKeysAreDomainSeparated pins the KDF wiring: distinct
// indices give distinct tenant keys, and the master itself is rejected
// at the wrong size.
func TestServerTenantKeysAreDomainSeparated(t *testing.T) {
	master := bytes.Repeat([]byte{7}, 16)
	k0, err := pathoram.DeriveTenantKey(master, 0)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := pathoram.DeriveTenantKey(master, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k0, k1) || bytes.Equal(k0, master) {
		t.Fatal("tenant keys must be pairwise distinct and distinct from the master")
	}
	if _, err := pathoram.DeriveTenantKey(master[:8], 0); err == nil {
		t.Fatal("short master accepted")
	}
}
