package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	pathoram "repro"
)

// Wire types. Data rides as base64 (encoding/json's []byte convention);
// every block is exactly the service's BlockSize.
type opRequest struct {
	// Op selects the operation on the batch endpoint ("read" | "write");
	// the single-op endpoints fix it by URL and ignore the field.
	Op   string `json:"op,omitempty"`
	Addr uint64 `json:"addr"`
	Data []byte `json:"data,omitempty"`
}

type opResult struct {
	Addr uint64 `json:"addr"`
	Data []byte `json:"data,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

type statsBody struct {
	Tenant            string                `json:"tenant"`
	Stats             pathoram.Stats        `json:"stats"`
	Timing            *pathoram.TimingStats `json:"timing,omitempty"`
	StashSize         int                   `json:"stash_size"`
	PendingWriteBacks int                   `json:"pending_writebacks"`
	OnChipBytes       uint64                `json:"onchip_bytes"`
	ExternalBytes     uint64                `json:"external_bytes"`
}

// Handler returns the service's HTTP API:
//
//	GET    /healthz                 liveness
//	GET    /v1/tenants              list tenant names
//	PUT    /v1/tenants/{name}       create a tenant (201; 409 if present)
//	DELETE /v1/tenants/{name}       drop a tenant (flush + close its trees)
//	POST   /v1/t/{name}/read        {"addr":N} → {"addr":N,"data":base64}
//	POST   /v1/t/{name}/write       {"addr":N,"data":base64} → {"addr":N}
//	POST   /v1/t/{name}/batch       NDJSON op stream → NDJSON result stream
//	GET    /v1/t/{name}/stats       protocol + timing counters (admin)
//
// Errors are {"error":...} with 400 (malformed), 404 (no tenant), 409
// (exists), 503 (draining).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"tenants": s.Names()})
	})
	mux.HandleFunc("PUT /v1/tenants/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		t, err := s.Create(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{"tenant": t.Name, "index": t.Index})
	})
	mux.HandleFunc("DELETE /v1/tenants/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Drop(r.PathValue("name")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "dropped"})
	})
	mux.HandleFunc("POST /v1/t/{name}/read", s.tenantHandler(s.handleRead))
	mux.HandleFunc("POST /v1/t/{name}/write", s.tenantHandler(s.handleWrite))
	mux.HandleFunc("POST /v1/t/{name}/batch", s.tenantHandler(s.handleBatch))
	mux.HandleFunc("GET /v1/t/{name}/stats", s.tenantHandler(s.handleStats))
	return mux
}

// tenantHandler resolves {name} and maps registry errors before the
// per-endpoint logic runs.
func (s *Service) tenantHandler(fn func(w http.ResponseWriter, r *http.Request, t *Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.Get(r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		fn(w, r, t)
	}
}

func (s *Service) handleRead(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req opRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed request: " + err.Error()})
		return
	}
	data, err := t.Client.Read(req.Addr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, opResult{Addr: req.Addr, Data: data})
}

func (s *Service) handleWrite(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req opRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed request: " + err.Error()})
		return
	}
	if len(req.Data) != s.template.BlockSize {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("data is %d bytes, want the block size %d", len(req.Data), s.template.BlockSize)})
		return
	}
	if err := t.Client.Write(req.Addr, req.Data); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, opResult{Addr: req.Addr})
}

// batchRun caps how many decoded ops a same-op run accumulates before it
// is submitted to the scheduler — bounding memory for unbounded streams
// while keeping submissions large enough to fan out across shards.
const batchRun = 256

// handleBatch streams NDJSON ops in and NDJSON results out, in input
// order. Maximal runs of the same op are submitted as one ReadBatch /
// WriteBatch, so a streamed batch enters the sharded scheduler exactly
// like a native batched client. A malformed line or failed submission
// emits one {"error":...} line and ends the stream (results already
// emitted stand).
func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request, t *Tenant) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	dec := json.NewDecoder(r.Body)
	enc := json.NewEncoder(w)
	fail := func(err error) { enc.Encode(errorBody{Error: err.Error()}) } //nolint:errcheck // stream already ends here

	var (
		op    string
		addrs []uint64
		data  [][]byte
	)
	flush := func() error {
		if len(addrs) == 0 {
			return nil
		}
		if op == "write" {
			if err := t.Client.WriteBatch(addrs, data); err != nil {
				return err
			}
			for _, a := range addrs {
				if err := enc.Encode(opResult{Addr: a}); err != nil {
					return err
				}
			}
		} else {
			results, err := t.Client.ReadBatch(addrs)
			if err != nil {
				return err
			}
			for i, a := range addrs {
				if err := enc.Encode(opResult{Addr: a, Data: results[i]}); err != nil {
					return err
				}
			}
		}
		addrs, data = addrs[:0], data[:0]
		return nil
	}
	for {
		var req opRequest
		if err := dec.Decode(&req); err == io.EOF {
			break
		} else if err != nil {
			fail(fmt.Errorf("malformed op: %w", err))
			return
		}
		switch req.Op {
		case "read":
			if len(req.Data) != 0 {
				fail(fmt.Errorf("read op for addr %d carries data", req.Addr))
				return
			}
		case "write":
			if len(req.Data) != s.template.BlockSize {
				fail(fmt.Errorf("write op for addr %d: data is %d bytes, want %d", req.Addr, len(req.Data), s.template.BlockSize))
				return
			}
		default:
			fail(fmt.Errorf("unknown op %q (want read|write)", req.Op))
			return
		}
		if req.Op != op || len(addrs) >= batchRun {
			if err := flush(); err != nil {
				fail(err)
				return
			}
			op = req.Op
		}
		addrs = append(addrs, req.Addr)
		if req.Op == "write" {
			data = append(data, req.Data)
		}
	}
	if err := flush(); err != nil {
		fail(err)
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request, t *Tenant) {
	body := statsBody{
		Tenant:            t.Name,
		Stats:             t.Client.Stats(),
		StashSize:         t.Client.StashSize(),
		PendingWriteBacks: t.Client.PendingWriteBacks(),
		OnChipBytes:       t.Client.OnChipBytes(),
		ExternalBytes:     t.Client.ExternalMemoryBytes(),
	}
	if ts, ok := t.Client.TimingStats(); ok {
		body.Timing = &ts
	}
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body) //nolint:errcheck // response already committed
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNoTenant):
		status = http.StatusNotFound
	case errors.Is(err, ErrExists):
		status = http.StatusConflict
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}
