package explore

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	pathoram "repro"
)

// Grid is the declarative sweep description: one slice per construction
// axis, enumerated as a cartesian product. Empty axes collapse to their
// single default value, so a grid names only the axes it varies. Grids
// load from JSON (see LoadGrid) or from the built-in presets.
type Grid struct {
	// Blocks / BlockSize fix the working set for every point; the
	// design-space axes below vary the construction around it.
	Blocks    uint64 `json:"blocks"`
	BlockSize int    `json:"blocksize"`

	Shards     []int    `json:"shards"`     // default [1]
	PosMaps    []string `json:"posmaps"`    // "flat" | "recursive"; default ["flat"]
	Backends   []string `json:"backends"`   // "mem" | "dram"; default ["mem"]
	Partitions []string `json:"partitions"` // "stripe" | "range" | "random"; default ["stripe"]
	Padded     []bool   `json:"padded"`     // default [false]; true points run batched submission
	CTStash    []bool   `json:"ctstash"`    // default [false]
	// MaxDeferred sweeps the staged write-back queue depth; 0 means the
	// fully synchronous protocol (AsyncEviction off).
	MaxDeferred []int `json:"maxdeferred"` // default [0]
	// IdleEvictions sweeps the background-eviction budget per idle gap.
	// Inert on synchronous points, where it is canonicalized to 0 so the
	// product contains no duplicate configurations.
	IdleEvictions []int `json:"idleevictions"` // default [0]
	// PLBBytes sweeps the position-map lookaside cache budget; inert on
	// flat-posmap points (canonicalized to 0, like IdleEvictions above).
	PLBBytes []uint64 `json:"plbbytes"` // default [0]
	// PLBConstShape sweeps the constant-shape padding mode; inert when the
	// point carries no PLB (canonicalized to false).
	PLBConstShape []bool `json:"plbconstshape"` // default [false]
	// Overlaps sweeps the Figure 5(b) speculative chain depth; inert
	// unless the point is recursive AND dram-backed (canonicalized to 0).
	Overlaps []int `json:"overlaps"` // default [0]
	// MemScheds sweeps the memory-controller scheduling policy; inert on
	// mem-backed points (canonicalized to "inorder").
	MemScheds []string `json:"memscheds"` // "inorder" | "frfcfs"; default ["inorder"]
	// QueueDepths sweeps the FR-FCFS per-channel command-queue depth
	// (0 = the default 8); inert on inorder points (canonicalized to 0).
	QueueDepths []int `json:"queuedepths"` // default [0]
	// Storages sweeps the bucket-storage substrate: "file" points run on
	// real mmap'd tree files (a fresh per-point temp directory under Dir),
	// so their latencies include real I/O. Inert on dram-backed points
	// (canonicalized to "mem") — the timed model and real files are
	// different substrates of the same Backend axis.
	Storages []string `json:"storages"` // "mem" | "file"; default ["mem"]
	// WALs sweeps write-ahead logging on file-storage points (inert —
	// canonicalized to false — on mem-storage points).
	WALs []bool `json:"wals"` // default [false]
	// Dir is the base directory for file-storage points ("" = the OS temp
	// directory). Each point runs in its own fresh subdirectory, removed
	// after the point completes.
	Dir string `json:"dir"`

	// OnChipMax / PosBlock parameterize recursive-posmap points only.
	OnChipMax uint64 `json:"onchipmax"` // default 2048 B
	PosBlock  int    `json:"posblock"`  // default 32 B

	Workloads []string `json:"workloads"` // default ["uniform"]
}

// Point is one enumerated configuration: a human-readable name encoding
// the axis values, the Spec that builds it, and whether the runner must
// use padded batched submission.
type Point struct {
	Name   string
	Flags  SpecFlags
	Shards int
	Padded bool
}

// Spec builds a fresh pathoram.Spec for the point. Fresh matters: the
// Spec carries the seeded randomness source, which must not be shared
// between instances.
func (p Point) Spec() (pathoram.Spec, error) { return p.Flags.Spec(p.Shards) }

func (g *Grid) normalize() {
	if g.Blocks == 0 {
		g.Blocks = 4096
	}
	if g.BlockSize == 0 {
		g.BlockSize = 32
	}
	if len(g.Shards) == 0 {
		g.Shards = []int{1}
	}
	if len(g.PosMaps) == 0 {
		g.PosMaps = []string{"flat"}
	}
	if len(g.Backends) == 0 {
		g.Backends = []string{"mem"}
	}
	if len(g.Partitions) == 0 {
		g.Partitions = []string{"stripe"}
	}
	if len(g.Padded) == 0 {
		g.Padded = []bool{false}
	}
	if len(g.CTStash) == 0 {
		g.CTStash = []bool{false}
	}
	if len(g.MaxDeferred) == 0 {
		g.MaxDeferred = []int{0}
	}
	if len(g.IdleEvictions) == 0 {
		g.IdleEvictions = []int{0}
	}
	if len(g.PLBBytes) == 0 {
		g.PLBBytes = []uint64{0}
	}
	if len(g.PLBConstShape) == 0 {
		g.PLBConstShape = []bool{false}
	}
	if len(g.Overlaps) == 0 {
		g.Overlaps = []int{0}
	}
	if len(g.MemScheds) == 0 {
		g.MemScheds = []string{"inorder"}
	}
	if len(g.QueueDepths) == 0 {
		g.QueueDepths = []int{0}
	}
	if len(g.Storages) == 0 {
		g.Storages = []string{"mem"}
	}
	if len(g.WALs) == 0 {
		g.WALs = []bool{false}
	}
	if g.OnChipMax == 0 {
		g.OnChipMax = 2048
	}
	if g.PosBlock == 0 {
		g.PosBlock = 32
	}
	if len(g.Workloads) == 0 {
		g.Workloads = []string{"uniform"}
	}
}

// Points enumerates the grid. Every returned point builds a Spec that
// Open accepts; axis values Open would reject (unknown names, inert-knob
// combinations) surface as errors here, before any measurement runs.
func (g Grid) Points(seed int64) ([]Point, error) {
	g.normalize()
	for _, w := range g.Workloads {
		if WorkloadByName(w) == nil {
			return nil, fmt.Errorf("unknown workload %q", w)
		}
	}
	var points []Point
	seen := map[string]bool{}
	for _, shards := range g.Shards {
		for _, pm := range g.PosMaps {
			for _, be := range g.Backends {
				for _, part := range g.Partitions {
					for _, padded := range g.Padded {
						for _, ct := range g.CTStash {
							for _, md := range g.MaxDeferred {
								for _, idle := range g.IdleEvictions {
									if md == 0 {
										// Synchronous points have no idle
										// pipeline; canonicalize so the idle
										// axis does not duplicate them.
										idle = 0
									}
									for _, plb := range g.PLBBytes {
										for _, pcs := range g.PLBConstShape {
											for _, ov := range g.Overlaps {
												if pm != "recursive" {
													// Flat posmaps have no chain to
													// cache or pipeline; canonicalize
													// all three axes.
													plb, pcs, ov = 0, false, 0
												}
												if plb == 0 {
													pcs = false
												}
												if be != "dram" {
													ov = 0
												}
												for _, sched := range g.MemScheds {
													for _, qd := range g.QueueDepths {
														if be != "dram" {
															// No timed controller to
															// schedule; canonicalize both
															// axes.
															sched, qd = "inorder", 0
														}
														if sched != "frfcfs" {
															qd = 0
														}
														for _, stor := range g.Storages {
															for _, wal := range g.WALs {
																if be != "mem" {
																	// The timed model and real files
																	// are different substrates;
																	// canonicalize both axes.
																	stor = "mem"
																}
																if stor != "file" {
																	wal = false
																}
																p, err := g.point(shards, pm, be, part, padded, ct, md, idle, plb, pcs, ov, sched, qd, stor, wal, seed, len(points))
																if err != nil {
																	return nil, err
																}
																if seen[p.Name] {
																	continue
																}
																seen[p.Name] = true
																points = append(points, p)
															}
														}
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return points, nil
}

func (g Grid) point(shards int, pm, be, part string, padded, ct bool, md, idle int, plb uint64, pcs bool, ov int, sched string, qd int, stor string, wal bool, seed int64, idx int) (Point, error) {
	// The mode-dependent knobs (recursion, DRAM) are populated
	// unconditionally: SpecFlags.Spec copies them into the Spec only when
	// their mode is selected, exactly as the flag defaults behave.
	sf := SpecFlags{
		Blocks: g.Blocks, BlockSize: g.BlockSize,
		Encrypt:   "counter",
		Partition: part,
		PosMap:    pm,
		PosBlock:  g.PosBlock,
		OnChipMax: g.OnChipMax,
		Padded:    padded,
		Queue:     128,
		// Distinct deterministic seed per point: neighboring configs stay
		// reproducible without sharing a randomness stream.
		Seed:     seed + int64(idx)*7919,
		Backend:  be,
		Channels: 2,
		Layout:   "subtree",
		CTStash:  ct,
	}
	if md > 0 {
		sf.Async = true
		sf.MaxDefer = md
		sf.IdleEv = idle
	}
	sf.PLBBytes = plb
	sf.PLBConst = pcs
	sf.Overlap = ov
	sf.MemSched = sched
	if sched == "frfcfs" {
		sf.MemQueue = qd
	}
	sf.Storage = stor
	if stor == "file" {
		sf.WAL = wal
		// Placeholder for validation only: the runner substitutes a fresh
		// per-point temp directory before Open (see runPoint).
		sf.Dir = g.Dir
		if sf.Dir == "" {
			sf.Dir = os.TempDir()
		}
	}
	// Validate the axis values now by building a Spec once; the runner
	// builds its own fresh one per Open.
	if _, err := sf.Spec(shards); err != nil {
		return Point{}, err
	}
	name := fmt.Sprintf("shards=%d/pm=%s/be=%s/part=%s", shards, pm, be, part)
	if padded {
		name += "/padded"
	}
	if ct {
		name += "/ct"
	}
	if md > 0 {
		name += fmt.Sprintf("/defer=%d", md)
		if idle != 0 {
			name += fmt.Sprintf("/idle=%d", idle)
		}
	}
	if plb > 0 {
		name += fmt.Sprintf("/plb=%d", plb)
		if pcs {
			name += "+cs"
		}
	}
	if ov > 0 {
		name += fmt.Sprintf("/ov=%d", ov)
	}
	if sched == "frfcfs" {
		name += "/sched=frfcfs"
		if qd > 0 {
			name += fmt.Sprintf("/qd=%d", qd)
		}
	}
	if stor == "file" {
		name += "/stor=file"
		if wal {
			name += "+wal"
		}
	}
	return Point{Name: name, Flags: sf, Shards: shards, Padded: padded}, nil
}

// Presets are the named grids cmd/oram-explore accepts in place of a
// JSON file. "smoke" is the CI grid: 8 points, two workloads, seconds of
// runtime. "full" is the EXPERIMENTS.md grid: every axis the paper
// explores, 64 points across three workloads. "pr8" is the position-map
// acceleration grid: PLB budget x overlap depth on a recursive
// dram-backed chain. "pr9" is the memory-controller grid: inorder vs
// FR-FCFS at two queue depths on a 2-shard dram point. "pr10" is the
// persistence grid: mem vs file storage x WAL x write-back mode, where
// the async win is measured against real I/O instead of modeled cycles.
var Presets = map[string]Grid{
	"smoke": {
		Blocks: 1024, BlockSize: 32,
		Shards:    []int{1, 4},
		PosMaps:   []string{"flat", "recursive"},
		Backends:  []string{"mem", "dram"},
		OnChipMax: 512,
		Workloads: []string{"uniform", "zipf"},
	},
	"full": {
		Blocks: 4096, BlockSize: 32,
		Shards:      []int{1, 4},
		PosMaps:     []string{"flat", "recursive"},
		Backends:    []string{"mem", "dram"},
		Partitions:  []string{"stripe", "random"},
		Padded:      []bool{false, true},
		MaxDeferred: []int{0, 8},
		OnChipMax:   2048,
		Workloads:   []string{"uniform", "zipf", "hammer"},
	},
	// "pr8" isolates the position-map acceleration axes: a recursive
	// dram-backed chain swept over PLB budget x overlap depth, on the two
	// workloads where the PLB's locality sensitivity shows (zipf hits,
	// uniform mostly misses).
	"pr8": {
		Blocks: 1024, BlockSize: 32,
		Shards:    []int{1},
		PosMaps:   []string{"recursive"},
		Backends:  []string{"dram"},
		OnChipMax: 512,
		PLBBytes:  []uint64{0, 4096},
		Overlaps:  []int{0, 4},
		Workloads: []string{"uniform", "zipf"},
	},
	// "pr9" isolates the memory-controller scheduling axes: a 2-shard
	// dram-backed sweep over inorder vs the FR-FCFS open queue at two
	// depths, on both workload shapes. The qd axis canonicalizes to 0 on
	// inorder points, so the product is 3 configs x 2 workloads.
	"pr9": {
		Blocks: 1024, BlockSize: 32,
		Shards:      []int{2},
		PosMaps:     []string{"flat"},
		Backends:    []string{"dram"},
		MemScheds:   []string{"inorder", "frfcfs"},
		QueueDepths: []int{0, 16},
		Workloads:   []string{"uniform", "zipf"},
	},
	// "pr10" isolates the persistence axes: mem vs file storage, WAL on
	// and off, sync vs deferred write-back — 6 configs after the wal axis
	// canonicalizes to false on mem points. File-point latencies include
	// real mmap/msync I/O, which is where async should show a much larger
	// win than it did against modeled cycles.
	"pr10": {
		Blocks: 1024, BlockSize: 32,
		Shards:      []int{1},
		PosMaps:     []string{"flat"},
		Storages:    []string{"mem", "file"},
		WALs:        []bool{false, true},
		MaxDeferred: []int{0, 8},
		Workloads:   []string{"uniform"},
	},
}

// LoadGrid resolves name either as a preset or as a path to a JSON grid
// description (unknown JSON fields are rejected to catch typoed axes).
func LoadGrid(name string) (Grid, error) {
	if g, ok := Presets[name]; ok {
		return g, nil
	}
	f, err := os.Open(name)
	if err != nil {
		if !strings.ContainsAny(name, "./\\") {
			return Grid{}, fmt.Errorf("unknown preset %q (have: smoke, full, pr8, pr9, pr10) and no such file", name)
		}
		return Grid{}, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("parsing grid %s: %w", name, err)
	}
	return g, nil
}
