package explore

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	pathoram "repro"
	"repro/internal/membus"
)

// Options are the measurement knobs shared by every point in a sweep.
type Options struct {
	Ops    int   // measured operations per (point, workload)
	Warmup int   // unmeasured operations run first to reach steady state
	Batch  int   // submission batch size for padded points
	Seed   int64 // base seed; points and workloads derive their own
}

// Row is one measured (configuration, workload) cell: the axis-encoded
// config name, the leakage class SECURITY.md assigns the composition,
// and the metric map (same key conventions as cmd/oram-benchjson
// metrics). Pareto is set by MarkPareto.
type Row struct {
	Config   string             `json:"config"`
	Workload string             `json:"workload"`
	Leakage  string             `json:"leakage"`
	Ops      int                `json:"ops"`
	Metrics  map[string]float64 `json:"metrics"`
	Pareto   bool               `json:"pareto"`
}

// Run measures every (point, workload) cell of the grid. Each point is
// opened and pre-filled once and reused across all workloads — the
// construction and fill dominate small sweeps, and the paper's
// comparisons want neighboring workloads over identical steady-state
// instances. Workload boundaries re-establish a clean baseline anyway:
// stats reset and the timing snapshot flushes deferred write-backs, so
// no cell is charged for its predecessor's debt. logf (optional)
// receives one progress line per point.
func Run(g Grid, opts Options, logf func(format string, args ...any)) ([]Row, error) {
	g.normalize()
	if opts.Ops <= 0 {
		opts.Ops = 2048
	}
	if opts.Warmup < 0 {
		opts.Warmup = 0
	}
	if opts.Batch <= 0 {
		opts.Batch = 16
	}
	points, err := g.Points(opts.Seed)
	if err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var rows []Row
	for pi, p := range points {
		logf("[%d/%d] %s", pi+1, len(points), p.Name)
		prs, err := runPoint(g, p, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		rows = append(rows, prs...)
	}
	return rows, nil
}

func runPoint(g Grid, p Point, opts Options) ([]Row, error) {
	spec, err := p.Spec()
	if err != nil {
		return nil, err
	}
	if spec.Backend == pathoram.BackendFile {
		// Fresh directory per point: tree files carry no client state
		// (position map, stash), so a point must never decode another
		// run's leftovers. Removed when the point completes.
		dir, err := os.MkdirTemp(g.Dir, "oram-point-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		spec.Dir = dir
	}
	client, err := pathoram.Open(spec)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	leak := spec.LeakageClass().String()

	// Pre-fill the whole working set so every workload measures steady
	// state, not cold-map behavior.
	buf := make([]byte, g.BlockSize)
	const chunk = 1024
	for lo := uint64(0); lo < g.Blocks; lo += chunk {
		hi := min(lo+chunk, g.Blocks)
		addrs := make([]uint64, 0, chunk)
		data := make([][]byte, 0, chunk)
		for a := lo; a < hi; a++ {
			addrs = append(addrs, a)
			data = append(data, buf)
		}
		if err := client.WriteBatch(addrs, data); err != nil {
			return nil, err
		}
	}

	var rows []Row
	for wi, wname := range g.Workloads {
		w := WorkloadByName(wname)
		rng := rand.New(rand.NewSource(opts.Seed + int64(wi)*104729 + 1))
		gen := w.New(rng, g.Blocks)
		row, err := runCell(client, spec, p, gen, opts)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", wname, err)
		}
		row.Config = p.Name
		row.Workload = wname
		row.Leakage = leak
		rows = append(rows, row)
	}
	return rows, nil
}

// runCell measures one workload against an already-filled client:
// warm-up phase, baseline reset (the timing snapshot flushes, charging
// any warm-up debt before measurement), then the measured phase with
// per-submission latencies.
func runCell(client pathoram.Client, spec pathoram.Spec, p Point, gen Gen, opts Options) (Row, error) {
	payload := make([]byte, spec.BlockSize)
	i := 0
	for ; i < opts.Warmup; i++ {
		if err := step(client, gen, i, payload); err != nil {
			return Row{}, err
		}
	}
	client.ResetStats()
	preTiming, timed := client.TimingStats()

	var lats []time.Duration
	start := time.Now()
	if p.Padded {
		// Padded mode pads batch schedules; submit whole batches so the
		// padding machinery actually engages. Latencies are per batch.
		addrs := make([]uint64, opts.Batch)
		data := make([][]byte, opts.Batch)
		for j := range data {
			data[j] = payload
		}
		for done := 0; done < opts.Ops; done += opts.Batch {
			var write bool
			for j := range addrs {
				a, w := gen(i)
				addrs[j] = a
				if j == 0 {
					write = w
				}
				i++
			}
			t0 := time.Now()
			if write {
				if err := client.WriteBatch(addrs, data); err != nil {
					return Row{}, err
				}
			} else if _, err := client.ReadBatch(addrs); err != nil {
				return Row{}, err
			}
			lats = append(lats, time.Since(t0))
		}
	} else {
		for n := 0; n < opts.Ops; n++ {
			t0 := time.Now()
			if err := step(client, gen, i, payload); err != nil {
				return Row{}, err
			}
			lats = append(lats, time.Since(t0))
			i++
		}
	}
	wall := time.Since(start)
	measured := opts.Ops
	if p.Padded {
		// Batches round up to whole submissions.
		measured = (opts.Ops + opts.Batch - 1) / opts.Batch * opts.Batch
	}

	st := client.Stats()
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return float64(lats[int(q*float64(len(lats)-1))])
	}
	m := map[string]float64{
		"ns/op":      float64(wall.Nanoseconds()) / float64(measured),
		"p50-ns":     pct(0.50),
		"p95-ns":     pct(0.95),
		"p99-ns":     pct(0.99),
		"onchip-B":   float64(client.OnChipBytes()),
		"ext-blowup": float64(client.ExternalMemoryBytes()) / float64(spec.Blocks*uint64(spec.BlockSize)),
		"dummy/real": st.DummyPerReal(),
		"pad/real":   st.PaddingPerReal(),
		"stash-peak": float64(st.StashPeak),
	}
	if p.Padded {
		m["batch"] = float64(opts.Batch)
	}
	if p.Flags.Recursive() {
		// Mean posmap-chain length per op: H with no PLB, shrinking toward
		// 1.0 as hits skip levels (or pinned at H under constant shape).
		m["chain-len"] = st.MeanChainLength()
		if p.Flags.PLBBytes > 0 {
			m["plb-hit"] = st.PLBHitRate()
		}
	}
	if timed {
		// Diff against the post-warm-up snapshot so the modeled columns
		// describe the measured traffic only; the closing snapshot
		// flushes first, charging every deferred write-back the traffic
		// owed.
		post, _ := client.TimingStats()
		d := post.Delta(preTiming)
		m["cycles/op"] = float64(d.Cycles) / float64(measured)
		m["row-hit"] = d.RowHitRate()
		if d.Cycles > 0 {
			// Throughput on the modeled clock: how many ops fit in one
			// second of DDR3 bus time. The headline metric for the paced
			// closed loop — wall-clock ns/op measures the simulator, this
			// measures the modeled machine.
			m["ops/modeled-s"] = float64(measured) * membus.CyclesPerSecond / float64(d.Cycles)
		}
	}
	return Row{Ops: measured, Metrics: m}, nil
}

func step(client pathoram.Client, gen Gen, i int, payload []byte) error {
	addr, write := gen(i)
	if write {
		return client.Write(addr, payload)
	}
	_, err := client.Read(addr)
	return err
}
