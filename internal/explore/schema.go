package explore

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"runtime"
)

// SchemaJSON is the formal description of the report format (JSON
// Schema, draft 2020-12), embedded so -check and the docs ship the exact
// constraints ValidateReport enforces.
//
//go:embed schema.json
var SchemaJSON []byte

// Benchmark is one report entry, following cmd/oram-benchjson's shape
// (name + iterations + flat float metrics) with the explorer's row
// annotations alongside.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	Config     string             `json:"config"`
	Workload   string             `json:"workload"`
	Leakage    string             `json:"leakage"`
	Pareto     bool               `json:"pareto"`
}

// Report is the top-level BENCH_pr7.json document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Grid       string      `json:"grid,omitempty"`
	Objectives []string    `json:"objectives,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// NewReport assembles the report from measured, Pareto-marked rows.
func NewReport(grid string, objectives []string, rows []Row) Report {
	r := Report{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Pkg:  "repro/internal/explore",
		Grid: grid, Objectives: objectives,
	}
	for _, row := range rows {
		r.Benchmarks = append(r.Benchmarks, Benchmark{
			Name:       "grid/" + row.Config + "/" + row.Workload,
			Iterations: int64(row.Ops),
			Metrics:    row.Metrics,
			Config:     row.Config,
			Workload:   row.Workload,
			Leakage:    row.Leakage,
			Pareto:     row.Pareto,
		})
	}
	return r
}

// ValidateReport checks data against the embedded schema's constraints:
// required top-level strings, a non-empty benchmarks array, and per
// entry a non-empty name/config/workload/leakage, iterations >= 1 and a
// non-empty numeric metric map. It decodes into a generic map (not
// Report) so missing fields cannot hide behind Go zero values.
func ValidateReport(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("report is not a JSON object: %w", err)
	}
	for _, key := range []string{"goos", "goarch", "pkg"} {
		s, ok := doc[key].(string)
		if !ok || s == "" {
			return fmt.Errorf("report: missing or empty %q", key)
		}
	}
	benches, ok := doc["benchmarks"].([]any)
	if !ok {
		return fmt.Errorf("report: missing benchmarks array")
	}
	if len(benches) == 0 {
		return fmt.Errorf("report: benchmarks array is empty")
	}
	for i, b := range benches {
		entry, ok := b.(map[string]any)
		if !ok {
			return fmt.Errorf("benchmarks[%d]: not an object", i)
		}
		for _, key := range []string{"name", "config", "workload", "leakage"} {
			s, ok := entry[key].(string)
			if !ok || s == "" {
				return fmt.Errorf("benchmarks[%d]: missing or empty %q", i, key)
			}
		}
		iters, ok := entry["iterations"].(float64)
		if !ok || iters < 1 || iters != float64(int64(iters)) {
			return fmt.Errorf("benchmarks[%d]: iterations must be an integer >= 1", i)
		}
		metrics, ok := entry["metrics"].(map[string]any)
		if !ok || len(metrics) == 0 {
			return fmt.Errorf("benchmarks[%d]: missing or empty metrics map", i)
		}
		for k, v := range metrics {
			if _, ok := v.(float64); !ok {
				return fmt.Errorf("benchmarks[%d]: metric %q is not a number", i, k)
			}
		}
		if p, present := entry["pareto"]; present {
			if _, ok := p.(bool); !ok {
				return fmt.Errorf("benchmarks[%d]: pareto must be a boolean", i)
			}
		}
	}
	return nil
}
