package explore

import (
	"flag"
	"strings"
	"testing"

	pathoram "repro"
)

// parse runs args through a fresh FlagSet the way the binaries do and
// returns the decoded flags plus the explicit set.
func parse(t *testing.T, args ...string) (*SpecFlags, map[string]bool) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var sf SpecFlags
	sf.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return &sf, Explicit(fs)
}

func TestSpecFlagsTable(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		checkErr   string // substring of the CheckExplicit error, "" = ok
		specErr    string // substring of the Spec error, "" = ok
		shards     int
		wantSpec   func(t *testing.T, s pathoram.Spec)
		wantOpenOK bool // additionally Open a small instance and close it
	}{
		{
			name:   "defaults build a flat mem spec",
			args:   nil,
			shards: 2,
			wantSpec: func(t *testing.T, s pathoram.Spec) {
				if s.Shards != 2 || s.Backend != pathoram.BackendMem {
					t.Errorf("got shards=%d backend=%v", s.Shards, s.Backend)
				}
				if s.Encryption != pathoram.EncryptCounter {
					t.Errorf("default encryption = %v, want counter", s.Encryption)
				}
			},
		},
		{
			// The PR 6 regression: under -backend mem the DRAM knobs must
			// NOT be copied into the Spec even at their flag defaults
			// (channels=2, layout=subtree) — Open rejects inert knobs, so a
			// mem spec carrying them fails construction.
			name:   "mem backend leaves DRAM knobs zero so Open accepts",
			args:   []string{"-blocks", "256", "-blocksize", "16", "-backend", "mem"},
			shards: 1,
			wantSpec: func(t *testing.T, s pathoram.Spec) {
				if s.DRAMChannels != 0 || s.DRAMLayout != 0 || s.DRAMSerialize {
					t.Errorf("mem spec carries DRAM knobs: channels=%d layout=%v serialize=%v",
						s.DRAMChannels, s.DRAMLayout, s.DRAMSerialize)
				}
			},
			wantOpenOK: true,
		},
		{
			name:   "dram backend carries its knobs",
			args:   []string{"-backend", "dram", "-channels", "4", "-layout", "naive", "-dram-serialize"},
			shards: 2,
			wantSpec: func(t *testing.T, s pathoram.Spec) {
				if s.Backend != pathoram.BackendDRAM || s.DRAMChannels != 4 ||
					s.DRAMLayout != pathoram.LayoutNaive || !s.DRAMSerialize {
					t.Errorf("dram knobs not carried: %+v", s)
				}
			},
		},
		{
			name:   "flat posmap leaves recursion knobs zero",
			args:   []string{"-posmap", "flat"},
			shards: 1,
			wantSpec: func(t *testing.T, s pathoram.Spec) {
				if s.PosMap != pathoram.PosMapOnChip || s.PosBlockSize != 0 || s.OnChipPosMapMax != 0 {
					t.Errorf("flat spec carries recursion knobs: %+v", s)
				}
			},
		},
		{
			name:   "recursive posmap carries its knobs",
			args:   []string{"-posmap", "recursive", "-pos-block", "64", "-onchip-max", "1024"},
			shards: 1,
			wantSpec: func(t *testing.T, s pathoram.Spec) {
				if s.PosMap != pathoram.PosMapRecursive || s.PosBlockSize != 64 || s.OnChipPosMapMax != 1024 {
					t.Errorf("recursion knobs not carried: %+v", s)
				}
			},
		},
		{
			name:   "seed makes deterministic randomness",
			args:   []string{"-seed", "7"},
			shards: 1,
			wantSpec: func(t *testing.T, s pathoram.Spec) {
				if s.Rand == nil {
					t.Error("seeded flags left Spec.Rand nil")
				}
			},
		},
		{
			name:     "explicit channels under mem rejected",
			args:     []string{"-channels", "4"},
			shards:   1,
			checkErr: "-channels only affects the timed backend",
		},
		{
			name:     "explicit layout under mem rejected",
			args:     []string{"-layout", "naive"},
			shards:   1,
			checkErr: "-layout only affects the timed backend",
		},
		{
			name:     "explicit pos-block under flat posmap rejected",
			args:     []string{"-pos-block", "64"},
			shards:   1,
			checkErr: "-pos-block parameterizes the recursive position map",
		},
		{
			name:     "max-deferred without async rejected",
			args:     []string{"-max-deferred", "4"},
			shards:   1,
			checkErr: "-max-deferred sizes the deferred write-back queue",
		},
		{
			name:   "max-deferred with async carried",
			args:   []string{"-async", "-max-deferred", "4"},
			shards: 1,
			wantSpec: func(t *testing.T, s pathoram.Spec) {
				if !s.AsyncEviction || s.MaxDeferredWriteBacks != 4 {
					t.Errorf("async knobs not carried: %+v", s)
				}
			},
		},
		{
			name:     "explicit plb-bytes under flat posmap rejected",
			args:     []string{"-plb-bytes", "4096"},
			shards:   1,
			checkErr: "-plb-bytes parameterizes the recursive position map",
		},
		{
			name:     "plb-constant-shape without a PLB rejected",
			args:     []string{"-posmap", "recursive", "-plb-constant-shape"},
			shards:   1,
			checkErr: "-plb-constant-shape pads PLB hits, but there is no PLB",
		},
		{
			name:     "explicit overlap under mem backend rejected",
			args:     []string{"-posmap", "recursive", "-overlap", "4"},
			shards:   1,
			checkErr: "-overlap schedules modeled memory time",
		},
		{
			name: "full acceleration flags carried and Open accepts",
			args: []string{"-blocks", "256", "-blocksize", "16", "-posmap", "recursive",
				"-onchip-max", "128", "-backend", "dram",
				"-plb-bytes", "2048", "-plb-constant-shape", "-overlap", "4"},
			shards: 1,
			wantSpec: func(t *testing.T, s pathoram.Spec) {
				if s.PLBBytes != 2048 || !s.PLBConstantShape || s.Overlap != 4 {
					t.Errorf("acceleration knobs not carried: plb=%d cs=%v ov=%d",
						s.PLBBytes, s.PLBConstantShape, s.Overlap)
				}
			},
			wantOpenOK: true,
		},
		{
			// Like the PR 6 DRAM-knob regression: a mem/flat spec must not
			// carry the acceleration knobs even at explicit-free defaults.
			name:   "flat posmap leaves acceleration knobs zero",
			args:   []string{"-blocks", "256", "-blocksize", "16"},
			shards: 1,
			wantSpec: func(t *testing.T, s pathoram.Spec) {
				if s.PLBBytes != 0 || s.PLBConstantShape || s.Overlap != 0 {
					t.Errorf("flat spec carries acceleration knobs: plb=%d cs=%v ov=%d",
						s.PLBBytes, s.PLBConstantShape, s.Overlap)
				}
			},
			wantOpenOK: true,
		},
		{
			name:    "unknown encryption rejected",
			args:    []string{"-encrypt", "rot13"},
			shards:  1,
			specErr: `unknown -encrypt "rot13"`,
		},
		{
			name:    "unknown partition rejected",
			args:    []string{"-partition", "hash"},
			shards:  1,
			specErr: `unknown -partition "hash"`,
		},
		{
			name:    "unknown posmap rejected",
			args:    []string{"-posmap", "cuckoo"},
			shards:  1,
			specErr: `unknown -posmap "cuckoo"`,
		},
		{
			name:    "unknown backend rejected",
			args:    []string{"-backend", "disk"},
			shards:  1,
			specErr: `unknown -backend "disk"`,
		},
		{
			name:    "unknown layout rejected",
			args:    []string{"-backend", "dram", "-layout", "spiral"},
			shards:  1,
			specErr: `unknown -layout "spiral"`,
		},
		{
			name:   "file storage carries its knobs and Open accepts",
			args:   []string{"-blocks", "256", "-blocksize", "16", "-storage", "file", "-dir", "@TMP", "-wal", "-wal-depth", "4"},
			shards: 2,
			wantSpec: func(t *testing.T, s pathoram.Spec) {
				if s.Backend != pathoram.BackendFile || s.Dir == "" || !s.WAL || s.WALDepth != 4 {
					t.Errorf("file knobs not carried: backend=%v dir=%q wal=%v depth=%d",
						s.Backend, s.Dir, s.WAL, s.WALDepth)
				}
			},
			wantOpenOK: true,
		},
		{
			// The inert-knob regression for the persistence axis: mem
			// storage must leave Dir/WAL/WALDepth zero so Open accepts.
			name:   "mem storage leaves persistence knobs zero",
			args:   []string{"-blocks", "256", "-blocksize", "16"},
			shards: 1,
			wantSpec: func(t *testing.T, s pathoram.Spec) {
				if s.Dir != "" || s.WAL || s.WALDepth != 0 {
					t.Errorf("mem spec carries persistence knobs: dir=%q wal=%v depth=%d",
						s.Dir, s.WAL, s.WALDepth)
				}
			},
			wantOpenOK: true,
		},
		{
			name:     "explicit wal without file storage rejected",
			args:     []string{"-wal"},
			shards:   1,
			checkErr: "-wal parameterizes the persistent backend",
		},
		{
			name:     "explicit dir without file storage rejected",
			args:     []string{"-dir", "@TMP"},
			shards:   1,
			checkErr: "-dir parameterizes the persistent backend",
		},
		{
			name:     "wal-depth without wal rejected",
			args:     []string{"-storage", "file", "-dir", "@TMP", "-wal-depth", "8"},
			shards:   1,
			checkErr: "-wal-depth bounds the write-ahead log",
		},
		{
			name:    "file storage without dir rejected",
			args:    []string{"-storage", "file"},
			shards:  1,
			specErr: "-storage file needs -dir",
		},
		{
			name:    "file storage under dram backend rejected",
			args:    []string{"-backend", "dram", "-storage", "file", "-dir", "@TMP"},
			shards:  1,
			specErr: "pick one",
		},
		{
			name:    "unknown storage rejected",
			args:    []string{"-storage", "tape"},
			shards:  1,
			specErr: `unknown -storage "tape"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := make([]string, len(tc.args))
			for i, a := range tc.args {
				if a == "@TMP" {
					a = t.TempDir()
				}
				args[i] = a
			}
			sf, explicit := parse(t, args...)
			err := sf.CheckExplicit(explicit)
			if tc.checkErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.checkErr) {
					t.Fatalf("CheckExplicit = %v, want error containing %q", err, tc.checkErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("CheckExplicit: %v", err)
			}
			spec, err := sf.Spec(tc.shards)
			if tc.specErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.specErr) {
					t.Fatalf("Spec = %v, want error containing %q", err, tc.specErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Spec: %v", err)
			}
			if tc.wantSpec != nil {
				tc.wantSpec(t, spec)
			}
			if tc.wantOpenOK {
				c, err := pathoram.Open(spec)
				if err != nil {
					t.Fatalf("Open rejected the built spec: %v", err)
				}
				if err := c.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
			}
		})
	}
}
