// Package explore is the design-space exploration engine behind
// cmd/oram-explore -grid: a workload generator suite, a sweep runner that
// drives every configuration point through the public Client API, and a
// Pareto pass over the collected metrics (latency, modeled cycles,
// on-chip bytes). It also owns the Spec-building flag set shared with
// cmd/oram-serve, so the two binaries cannot drift on flag names,
// defaults, or the inert-knob rejection rules.
package explore

import (
	"flag"
	"fmt"
	"math/rand"

	pathoram "repro"
)

// SpecFlags is the command-line surface of pathoram.Spec: one field per
// construction axis, registered with AddFlags and decoded with Spec.
// cmd/oram-serve and cmd/oram-explore both embed it, which keeps flag
// names, defaults and help text identical across binaries.
type SpecFlags struct {
	Blocks    uint64
	BlockSize int
	Encrypt   string
	Integrity bool
	Partition string
	PosMap    string
	PosBlock  int
	OnChipMax uint64
	Padded    bool
	Queue     int
	Seed      int64
	Async     bool
	IdleEv    int
	Backend   string
	Channels  int
	Layout    string
	DRAMSer   bool
	MemSched  string
	MemQueue  int
	StarveCap int
	MaxDefer  int
	CTStash   bool
	PLBBytes  uint64
	PLBConst  bool
	Overlap   int
	Storage   string
	Dir       string
	WAL       bool
	WALDepth  int
}

// AddFlags registers every Spec axis on fs. The shard count is
// deliberately absent: both binaries sweep it, so it is a parameter of
// Spec(), not a flag.
func (sf *SpecFlags) AddFlags(fs *flag.FlagSet) {
	fs.Uint64Var(&sf.Blocks, "blocks", 1<<14, "total logical blocks")
	fs.IntVar(&sf.BlockSize, "blocksize", 64, "block payload bytes")
	fs.StringVar(&sf.Encrypt, "encrypt", "counter", "bucket encryption: none|counter|strawman")
	fs.BoolVar(&sf.Integrity, "integrity", false, "enable the authentication tree")
	fs.StringVar(&sf.Partition, "partition", "stripe", "address partition: stripe|range|random (random hides request->shard routing)")
	fs.StringVar(&sf.PosMap, "posmap", "flat", "position map: flat (on-chip, 4B/block) | recursive (per-shard hierarchical ORAM chain, Section 2.3)")
	fs.IntVar(&sf.PosBlock, "pos-block", 32, "position-map ORAM block size in bytes (with -posmap recursive)")
	fs.Uint64Var(&sf.OnChipMax, "onchip-max", 200<<10, "per-shard bound on the final on-chip position map in bytes (with -posmap recursive)")
	fs.BoolVar(&sf.Padded, "padded", false, "padded batch mode: every batch touches every shard equally often (requires batched submission)")
	fs.IntVar(&sf.Queue, "queue", 128, "per-shard request queue depth")
	fs.Int64Var(&sf.Seed, "seed", 0, "deterministic ORAM randomness when != 0")
	fs.BoolVar(&sf.Async, "async", false, "staged access path: respond after the path read, write back and evict during idle queue time")
	fs.IntVar(&sf.IdleEv, "idle-evictions", 0, "max background evictions per idle gap (0 = default, negative disables; with -async)")
	fs.StringVar(&sf.Backend, "backend", "mem", "storage backend: mem (untimed) | dram (shared cycle-accurate DDR3 model; adds the modeled-cycle columns)")
	fs.IntVar(&sf.Channels, "channels", 2, "independent DDR3 channels shared by all shards (with -backend dram)")
	fs.StringVar(&sf.Layout, "layout", "subtree", "bucket-to-row placement: subtree|naive (with -backend dram)")
	fs.BoolVar(&sf.DRAMSer, "dram-serialize", false, "modeling baseline: forbid inter-shard overlap on the memory channels (with -backend dram)")
	fs.StringVar(&sf.MemSched, "mem-sched", "inorder", "memory-controller scheduling: inorder | frfcfs (open per-channel command queue, row hits first; with -backend dram)")
	fs.IntVar(&sf.MemQueue, "mem-queue", 0, "per-channel command-queue depth (0 = default 8; depth 1 reproduces inorder exactly; with -mem-sched frfcfs)")
	fs.IntVar(&sf.StarveCap, "starve-cap", 0, "row-hit bypasses before the oldest request is forced (0 = default 4; with -mem-sched frfcfs)")
	fs.IntVar(&sf.MaxDefer, "max-deferred", 0, "deferred write-back queue depth = modeled write-buffer depth (0 = default 8; with -async)")
	fs.BoolVar(&sf.CTStash, "ct-stash", false, "constant-time stash scans: fixed-length masked lookups on every tree (closes the stash timing channel)")
	fs.Uint64Var(&sf.PLBBytes, "plb-bytes", 0, "position-map lookaside cache budget per shard in bytes, split across the chain's interfaces; hits skip the elided levels (0 = off; with -posmap recursive)")
	fs.BoolVar(&sf.PLBConst, "plb-constant-shape", false, "pad PLB hits with dummy accesses to the elided levels so hits and misses look identical on the wire (with -plb-bytes)")
	fs.IntVar(&sf.Overlap, "overlap", 0, "Figure 5(b) speculative chain overlap: up to N consecutive requests pipeline across the recursion chain (0 = serial 5(a); with -posmap recursive -backend dram)")
	fs.StringVar(&sf.Storage, "storage", "mem", "bucket storage: mem (in-process arena) | file (one mmap'd tree file per ORAM under -dir, msync on Flush)")
	fs.StringVar(&sf.Dir, "dir", "", "directory holding the tree files (with -storage file)")
	fs.BoolVar(&sf.WAL, "wal", false, "write-ahead log: path writes are logged before ack and checkpointed into the tree file on Flush, making the deferred write-back pipeline crash-consistent (with -storage file)")
	fs.IntVar(&sf.WALDepth, "wal-depth", 0, "auto-checkpoint after this many logged path writes (0 = checkpoint only on Flush/close; with -wal)")
}

// Explicit returns the set of flag names the user actually passed on fs.
// It must be called after fs.Parse; CheckExplicit consumes the result.
func Explicit(fs *flag.FlagSet) map[string]bool {
	m := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { m[f.Name] = true })
	return m
}

// CheckExplicit rejects flags that would be silently inert in the
// selected mode, so a sweep never varies a knob that changes nothing.
// explicit is the set of flag names the user passed (see Explicit).
func (sf *SpecFlags) CheckExplicit(explicit map[string]bool) error {
	if sf.Backend != "dram" {
		for _, name := range []string{"channels", "layout", "dram-serialize", "mem-sched"} {
			if explicit[name] {
				return fmt.Errorf("-%s only affects the timed backend; combine it with -backend dram", name)
			}
		}
	}
	if sf.MemSched != "frfcfs" {
		for _, name := range []string{"mem-queue", "starve-cap"} {
			if explicit[name] {
				return fmt.Errorf("-%s parameterizes the open command queue; combine it with -mem-sched frfcfs", name)
			}
		}
	}
	if sf.PosMap != "recursive" {
		for _, name := range []string{"pos-block", "onchip-max", "plb-bytes", "plb-constant-shape", "overlap"} {
			if explicit[name] {
				return fmt.Errorf("-%s parameterizes the recursive position map; combine it with -posmap recursive", name)
			}
		}
	}
	if explicit["plb-constant-shape"] && sf.PLBBytes == 0 {
		return fmt.Errorf("-plb-constant-shape pads PLB hits, but there is no PLB; combine it with -plb-bytes")
	}
	if explicit["overlap"] && sf.Backend != "dram" {
		return fmt.Errorf("-overlap schedules modeled memory time; combine it with -backend dram")
	}
	if explicit["max-deferred"] && !sf.Async {
		// Meaningful with or without -backend dram (it bounds the staged
		// path's pinned memory either way) — but only under -async.
		return fmt.Errorf("-max-deferred sizes the deferred write-back queue; combine it with -async")
	}
	if sf.Storage != "file" {
		for _, name := range []string{"dir", "wal", "wal-depth"} {
			if explicit[name] {
				return fmt.Errorf("-%s parameterizes the persistent backend; combine it with -storage file", name)
			}
		}
	}
	if explicit["wal-depth"] && !sf.WAL {
		return fmt.Errorf("-wal-depth bounds the write-ahead log; combine it with -wal")
	}
	return nil
}

// Spec decodes the flag values into a pathoram.Spec for the given shard
// count. The DRAM and recursion knobs ride along only when their mode is
// selected — Open rejects them (even at their flag defaults) otherwise,
// which is exactly the regression this conditional encodes.
func (sf *SpecFlags) Spec(shards int) (pathoram.Spec, error) {
	var enc pathoram.Encryption
	switch sf.Encrypt {
	case "none":
		enc = pathoram.EncryptNone
	case "counter":
		enc = pathoram.EncryptCounter
	case "strawman":
		enc = pathoram.EncryptStrawman
	default:
		return pathoram.Spec{}, fmt.Errorf("unknown -encrypt %q", sf.Encrypt)
	}
	var part pathoram.Partition
	switch sf.Partition {
	case "stripe":
		part = pathoram.PartitionStripe
	case "range":
		part = pathoram.PartitionRange
	case "random":
		part = pathoram.PartitionRandom
	default:
		return pathoram.Spec{}, fmt.Errorf("unknown -partition %q", sf.Partition)
	}
	switch sf.PosMap {
	case "flat", "recursive":
	default:
		return pathoram.Spec{}, fmt.Errorf("unknown -posmap %q", sf.PosMap)
	}
	var back pathoram.Backend
	switch sf.Backend {
	case "mem":
		back = pathoram.BackendMem
	case "dram":
		back = pathoram.BackendDRAM
	default:
		return pathoram.Spec{}, fmt.Errorf("unknown -backend %q", sf.Backend)
	}
	switch sf.Storage {
	case "mem":
	case "file":
		// The timed model and the persistent backend are different
		// substrates of the same Backend axis: pick one.
		if back == pathoram.BackendDRAM {
			return pathoram.Spec{}, fmt.Errorf("-storage file persists on real files, -backend dram simulates DDR3 timing; pick one")
		}
		if sf.Dir == "" {
			return pathoram.Spec{}, fmt.Errorf("-storage file needs -dir (where the tree files live)")
		}
		back = pathoram.BackendFile
	default:
		return pathoram.Spec{}, fmt.Errorf("unknown -storage %q", sf.Storage)
	}
	var lay pathoram.DRAMLayout
	switch sf.Layout {
	case "subtree":
		lay = pathoram.LayoutSubtree
	case "naive":
		lay = pathoram.LayoutNaive
	default:
		return pathoram.Spec{}, fmt.Errorf("unknown -layout %q", sf.Layout)
	}
	var sched pathoram.MemSched
	switch sf.MemSched {
	case "inorder":
		sched = pathoram.MemSchedInOrder
	case "frfcfs":
		sched = pathoram.MemSchedFRFCFS
	default:
		return pathoram.Spec{}, fmt.Errorf("unknown -mem-sched %q", sf.MemSched)
	}
	spec := pathoram.Spec{
		Blocks: sf.Blocks, BlockSize: sf.BlockSize,
		Shards:           shards,
		Partition:        part,
		Padded:           sf.Padded,
		QueueDepth:       sf.Queue,
		EvictionsPerIdle: sf.IdleEv,
		Encryption:       enc, Integrity: sf.Integrity,
		ConstantTimeStash:     sf.CTStash,
		AsyncEviction:         sf.Async,
		MaxDeferredWriteBacks: sf.MaxDefer,
		Backend:               back,
	}
	if back == pathoram.BackendFile {
		spec.Dir = sf.Dir
		spec.WAL = sf.WAL
		spec.WALDepth = sf.WALDepth
	}
	if back == pathoram.BackendDRAM {
		spec.DRAMChannels = sf.Channels
		spec.DRAMLayout = lay
		spec.DRAMSerialize = sf.DRAMSer
		spec.DRAMSched = sched
		if sched == pathoram.MemSchedFRFCFS {
			spec.DRAMQueueDepth = sf.MemQueue
			spec.DRAMStarveCap = sf.StarveCap
		}
	}
	if sf.PosMap == "recursive" {
		spec.PosMap = pathoram.PosMapRecursive
		spec.PosBlockSize = sf.PosBlock
		spec.OnChipPosMapMax = sf.OnChipMax
		spec.PLBBytes = sf.PLBBytes
		spec.PLBConstantShape = sf.PLBConst
		if back == pathoram.BackendDRAM {
			spec.Overlap = sf.Overlap
		}
	}
	if sf.Seed != 0 {
		spec.Rand = rand.New(rand.NewSource(sf.Seed))
	}
	return spec, nil
}

// Recursive reports whether the recursive position map is selected —
// callers use it for mode-dependent output, not Spec construction.
func (sf *SpecFlags) Recursive() bool { return sf.PosMap == "recursive" }
