package explore

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	pathoram "repro"
	"repro/internal/testutil"
)

func TestGridPointsSmokePreset(t *testing.T) {
	g := Presets["smoke"]
	points, err := g.Points(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("smoke preset enumerates %d points, want 8 (2 shards x 2 posmaps x 2 backends)", len(points))
	}
	seen := map[string]bool{}
	for _, p := range points {
		if seen[p.Name] {
			t.Errorf("duplicate point %q", p.Name)
		}
		seen[p.Name] = true
		spec, err := p.Spec()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		c, err := pathoram.Open(spec)
		if err != nil {
			t.Fatalf("%s: Open: %v", p.Name, err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("%s: Close: %v", p.Name, err)
		}
	}
}

func TestGridSyncPointsCanonicalizeIdleAxis(t *testing.T) {
	g := Grid{
		Blocks: 256, BlockSize: 16,
		MaxDeferred:   []int{0, 4},
		IdleEvictions: []int{0, 2},
	}
	points, err := g.Points(1)
	if err != nil {
		t.Fatal(err)
	}
	// The idle axis is inert on synchronous points: 1 sync point (idle
	// collapsed) + 2 async points.
	if len(points) != 3 {
		names := make([]string, len(points))
		for i, p := range points {
			names[i] = p.Name
		}
		t.Fatalf("got %d points %v, want 3 (sync idle axis canonicalized away)", len(points), names)
	}
}

// TestPLBOverlapGridCanonicalization pins the inert-axis collapse for the
// position-map acceleration axes: flat points carry no PLB or overlap,
// constant-shape rides only on a non-zero PLB, and overlap rides only on
// dram-backed recursion — so the product never enumerates duplicate
// configurations.
func TestPLBOverlapGridCanonicalization(t *testing.T) {
	g := Grid{
		Blocks: 256, BlockSize: 16,
		PosMaps:       []string{"flat", "recursive"},
		Backends:      []string{"mem", "dram"},
		OnChipMax:     128,
		PLBBytes:      []uint64{0, 2048},
		PLBConstShape: []bool{false, true},
		Overlaps:      []int{0, 2},
	}
	points, err := g.Points(1)
	if err != nil {
		t.Fatal(err)
	}
	// flat/mem 1, flat/dram 1 (all three axes inert), recursive/mem 3
	// (plb=0, plb, plb+cs; overlap inert), recursive/dram 6 (those three
	// x overlap {0,2}).
	if len(points) != 11 {
		names := make([]string, len(points))
		for i, p := range points {
			names[i] = p.Name
		}
		t.Fatalf("got %d points %v, want 11 (inert acceleration axes canonicalized away)", len(points), names)
	}
	seen := map[string]bool{}
	for _, p := range points {
		if seen[p.Name] {
			t.Errorf("duplicate point %q", p.Name)
		}
		seen[p.Name] = true
		if strings.Contains(p.Name, "pm=flat") &&
			(strings.Contains(p.Name, "/plb=") || strings.Contains(p.Name, "/ov=")) {
			t.Errorf("flat point %q carries an acceleration suffix", p.Name)
		}
		if strings.Contains(p.Name, "/ov=") && !strings.Contains(p.Name, "be=dram") {
			t.Errorf("point %q overlaps without a timed backend", p.Name)
		}
	}
}

// TestPR8PresetOpens checks the pr8 preset enumerates the PLB x overlap
// sweep and that every point constructs.
func TestPR8PresetOpens(t *testing.T) {
	points, err := Presets["pr8"].Points(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("pr8 preset enumerates %d points, want 4 (plb {0,4096} x ov {0,4})", len(points))
	}
	for _, p := range points {
		spec, err := p.Spec()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		c, err := pathoram.Open(spec)
		if err != nil {
			t.Fatalf("%s: Open: %v", p.Name, err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("%s: Close: %v", p.Name, err)
		}
	}
}

// TestStorageGridCanonicalization pins the inert-axis collapse for the
// persistence axes: the wal axis rides only on file-storage points, and
// the storage axis collapses to mem on dram-backed points.
func TestStorageGridCanonicalization(t *testing.T) {
	g := Grid{
		Blocks: 256, BlockSize: 16,
		Backends: []string{"mem", "dram"},
		Storages: []string{"mem", "file"},
		WALs:     []bool{false, true},
		Dir:      t.TempDir(),
	}
	points, err := g.Points(1)
	if err != nil {
		t.Fatal(err)
	}
	// be=mem: stor=mem 1 (wal inert) + stor=file 2 (wal {off,on}); be=dram:
	// 1 (both axes inert).
	if len(points) != 4 {
		names := make([]string, len(points))
		for i, p := range points {
			names[i] = p.Name
		}
		t.Fatalf("got %d points %v, want 4 (inert persistence axes canonicalized away)", len(points), names)
	}
	for _, p := range points {
		if strings.Contains(p.Name, "be=dram") && strings.Contains(p.Name, "stor=file") {
			t.Errorf("dram point %q carries file storage", p.Name)
		}
		if strings.Contains(p.Name, "+wal") && !strings.Contains(p.Name, "stor=file") {
			t.Errorf("point %q logs without file storage", p.Name)
		}
	}
}

// TestPR10PresetOpens checks the pr10 persistence preset enumerates the
// mem/file x wal x write-back sweep and that every point constructs (each
// in its own directory, the way the runner isolates them).
func TestPR10PresetOpens(t *testing.T) {
	points, err := Presets["pr10"].Points(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("pr10 preset enumerates %d points, want 6 (stor {mem,file+wal axis} x defer {0,8})", len(points))
	}
	for _, p := range points {
		spec, err := p.Spec()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if spec.Backend == pathoram.BackendFile {
			spec.Dir = t.TempDir()
		}
		c, err := pathoram.Open(spec)
		if err != nil {
			t.Fatalf("%s: Open: %v", p.Name, err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("%s: Close: %v", p.Name, err)
		}
	}
}

func TestGridRejectsUnknownAxisValues(t *testing.T) {
	for _, g := range []Grid{
		{Backends: []string{"disk"}},
		{PosMaps: []string{"cuckoo"}},
		{Partitions: []string{"hash"}},
		{Workloads: []string{"nosuch"}},
		{Storages: []string{"tape"}},
	} {
		if _, err := g.Points(1); err == nil {
			t.Errorf("grid %+v: Points accepted an unknown axis value", g)
		}
	}
}

func TestLoadGridJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.json")
	src := Grid{Blocks: 512, BlockSize: 16, Shards: []int{1, 2}, Backends: []string{"mem"}}
	data, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Blocks != 512 || len(g.Shards) != 2 {
		t.Errorf("loaded grid %+v, want %+v", g, src)
	}
	// Typoed axes must be rejected, not silently ignored.
	if err := os.WriteFile(path, []byte(`{"sharts": [1]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGrid(path); err == nil {
		t.Error("LoadGrid accepted a grid with an unknown field")
	}
	if _, err := LoadGrid("nosuchpreset"); err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Errorf("LoadGrid(nosuchpreset) = %v, want unknown-preset error", err)
	}
}

func TestMarkParetoDominance(t *testing.T) {
	mk := func(w string, p99, cyc, chip float64) Row {
		m := map[string]float64{"p99-ns": p99, "onchip-B": chip}
		if cyc >= 0 {
			m["cycles/op"] = cyc
		}
		return Row{Workload: w, Metrics: m}
	}
	rows := []Row{
		mk("u", 100, 10, 1000), // 0: dominated by 1 on all three
		mk("u", 90, 9, 900),    // 1: frontier
		mk("u", 200, 1, 2000),  // 2: frontier (best cycles)
		mk("u", 80, -1, 5000),  // 3: untimed group — frontier (only small-chip rival is 4)
		mk("u", 70, -1, 4000),  // 4: untimed group — dominates 3
		mk("v", 100, 10, 1000), // 5: other workload, alone -> frontier
	}
	MarkPareto(rows, Objectives)
	want := []bool{false, true, true, false, true, true}
	for i, r := range rows {
		if r.Pareto != want[i] {
			t.Errorf("row %d: pareto=%v, want %v", i, r.Pareto, want[i])
		}
	}
}

func TestMarkParetoTiesBothSurvive(t *testing.T) {
	rows := []Row{
		{Workload: "u", Metrics: map[string]float64{"p99-ns": 1, "onchip-B": 2}},
		{Workload: "u", Metrics: map[string]float64{"p99-ns": 1, "onchip-B": 2}},
	}
	MarkPareto(rows, Objectives)
	if !rows[0].Pareto || !rows[1].Pareto {
		t.Error("equal rows dominate each other — ties must both stay on the frontier")
	}
}

func TestValidateReport(t *testing.T) {
	good := NewReport("smoke", Objectives, []Row{{
		Config: "c", Workload: "w", Leakage: "routing=none,stash=scan-timing",
		Ops: 10, Metrics: map[string]float64{"p99-ns": 1}, Pareto: true,
	}})
	data, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(data); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := []struct {
		name string
		doc  string
	}{
		{"not json", `nope`},
		{"missing goos", `{"goarch":"a","pkg":"p","benchmarks":[]}`},
		{"empty benchmarks", `{"goos":"l","goarch":"a","pkg":"p","benchmarks":[]}`},
		{"missing config", `{"goos":"l","goarch":"a","pkg":"p","benchmarks":[{"name":"n","iterations":1,"metrics":{"m":1},"workload":"w","leakage":"x"}]}`},
		{"zero iterations", `{"goos":"l","goarch":"a","pkg":"p","benchmarks":[{"name":"n","iterations":0,"metrics":{"m":1},"config":"c","workload":"w","leakage":"x"}]}`},
		{"empty metrics", `{"goos":"l","goarch":"a","pkg":"p","benchmarks":[{"name":"n","iterations":1,"metrics":{},"config":"c","workload":"w","leakage":"x"}]}`},
		{"string metric", `{"goos":"l","goarch":"a","pkg":"p","benchmarks":[{"name":"n","iterations":1,"metrics":{"m":"fast"},"config":"c","workload":"w","leakage":"x"}]}`},
	}
	for _, tc := range bad {
		if err := ValidateReport([]byte(tc.doc)); err == nil {
			t.Errorf("%s: ValidateReport accepted it", tc.name)
		}
	}
}

func TestSchemaJSONIsValidJSON(t *testing.T) {
	var doc map[string]any
	if err := json.Unmarshal(SchemaJSON, &doc); err != nil {
		t.Fatalf("embedded schema.json does not parse: %v", err)
	}
	if doc["type"] != "object" {
		t.Error("schema root should describe an object")
	}
}

func TestWorkloadGeneratorsInRangeAndDistinct(t *testing.T) {
	const blocks = 128
	const n = 4000
	hists := map[string][]uint64{}
	for _, w := range Workloads() {
		gen := w.New(rand.New(rand.NewSource(5)), blocks)
		counts := make([]uint64, blocks)
		writes := 0
		for i := 0; i < n; i++ {
			addr, wr := gen(i)
			if addr >= blocks {
				t.Fatalf("%s: address %d out of range", w.Name, addr)
			}
			counts[addr]++
			if wr {
				writes++
			}
		}
		if writes == 0 || writes == n {
			t.Errorf("%s: degenerate write mix %d/%d", w.Name, writes, n)
		}
		hists[w.Name] = counts
	}
	// The suite exists to stress different shapes: uniform must pass the
	// shared uniformity test, the skewed generators must fail it.
	if x2 := testutil.ChiSquare(hists["uniform"]); x2 > testutil.UniformThreshold(blocks) {
		t.Errorf("uniform workload not uniform: chi2=%.1f", x2)
	}
	for _, skewed := range []string{"zipf", "hammer"} {
		if x2 := testutil.ChiSquare(hists[skewed]); x2 <= testutil.UniformThreshold(blocks) {
			t.Errorf("%s workload indistinguishable from uniform: chi2=%.1f", skewed, x2)
		}
	}
}

// TestStashOccupancyBoundedUnderAllWorkloads is the stash-occupancy-vs-
// load property test: whatever the workload shape — uniform, skewed,
// scanning, hammering, read-mostly — the stash never exceeds its
// configured capacity (the protocol would error) and, with background
// eviction holding the invariant, its peak stays well below the paper's
// overflow regime.
func TestStashOccupancyBoundedUnderAllWorkloads(t *testing.T) {
	const blocks = 512
	const capacity = 150
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			spec := pathoram.Spec{
				Blocks: blocks, BlockSize: 16,
				StashCapacity: capacity,
				Rand:          rand.New(rand.NewSource(31)),
			}
			c, err := pathoram.Open(spec)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			// Fill the working set first: an empty tree lets even a
			// hammering workload drain the stash completely, and the
			// occupancy property is about steady state.
			payload := make([]byte, 16)
			addrs := make([]uint64, blocks)
			data := make([][]byte, blocks)
			for a := range addrs {
				addrs[a], data[a] = uint64(a), payload
			}
			if err := c.WriteBatch(addrs, data); err != nil {
				t.Fatal(err)
			}
			c.ResetStats()
			gen := w.New(rand.New(rand.NewSource(32)), blocks)
			for i := 0; i < 4000; i++ {
				if err := step(c, gen, i, payload); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			st := c.Stats()
			if st.StashPeak > capacity {
				t.Errorf("stash peak %d exceeds capacity %d", st.StashPeak, capacity)
			}
			if st.RealAccesses != 4000 {
				t.Errorf("measured %d real accesses, want 4000", st.RealAccesses)
			}
		})
	}
}
