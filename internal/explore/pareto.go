package explore

import (
	"sort"
	"strings"
)

// Objectives is the default frontier the paper's design-space argument
// is made over: client-visible tail latency, modeled memory cycles per
// operation, and the trusted on-chip provision. Lower is better for all
// explorer metrics, so dominance needs no per-objective direction.
var Objectives = []string{"p99-ns", "cycles/op", "onchip-B"}

// MarkPareto sets Row.Pareto on every non-dominated row, comparing rows
// within comparison groups: rows compete only against rows of the same
// workload that carry the same subset of the requested objectives.
// (Untimed points have no cycles/op; comparing them against timed points
// on a frontier that ignores cycles would crown them for free, so they
// form their own group over the objectives they do have.) Rows carrying
// none of the objectives are left unmarked.
func MarkPareto(rows []Row, objectives []string) {
	groups := map[string][]int{}
	for i, r := range rows {
		var have []string
		for _, o := range objectives {
			if _, ok := r.Metrics[o]; ok {
				have = append(have, o)
			}
		}
		if len(have) == 0 {
			rows[i].Pareto = false
			continue
		}
		key := r.Workload + "|" + strings.Join(have, ",")
		groups[key] = append(groups[key], i)
	}
	for key, idxs := range groups {
		objs := strings.Split(strings.SplitN(key, "|", 2)[1], ",")
		for _, i := range idxs {
			dominated := false
			for _, j := range idxs {
				if i != j && dominates(rows[j], rows[i], objs) {
					dominated = true
					break
				}
			}
			rows[i].Pareto = !dominated
		}
	}
}

// dominates reports whether a is at least as good as b on every
// objective and strictly better on at least one (lower is better).
func dominates(a, b Row, objectives []string) bool {
	strict := false
	for _, o := range objectives {
		av, bv := a.Metrics[o], b.Metrics[o]
		if av > bv {
			return false
		}
		if av < bv {
			strict = true
		}
	}
	return strict
}

// Frontier returns the Pareto-marked rows sorted by workload then by the
// first objective, for the human-readable frontier table.
func Frontier(rows []Row) []Row {
	var out []Row
	for _, r := range rows {
		if r.Pareto {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].Metrics[Objectives[0]] < out[j].Metrics[Objectives[0]]
	})
	return out
}
