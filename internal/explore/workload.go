package explore

import "math/rand"

// Gen produces the i-th operation of a workload: the address to touch
// and whether the operation is a write.
type Gen func(i int) (addr uint64, write bool)

// Workload is a named address-stream generator. New builds a fresh
// generator over a working set of blocks addresses, drawing any
// randomness from rng so runs are reproducible per seed.
type Workload struct {
	Name string
	New  func(rng *rand.Rand, blocks uint64) Gen
}

// Workloads is the explorer's suite, chosen to stress different parts of
// the design space: uniform (the paper's measurement workload), a skewed
// zipf(1.2) mix, a sequential scan (row-buffer friendly, adversarial to
// range partitioning), a hammer loop (the adversarial re-access pattern
// the security tests use), and a read-mostly uniform mix (write-back
// pressure off, deferral queues mostly idle).
func Workloads() []Workload {
	return []Workload{
		{Name: "uniform", New: func(rng *rand.Rand, blocks uint64) Gen {
			return func(i int) (uint64, bool) {
				return rng.Uint64() % blocks, rng.Float64() < 0.5
			}
		}},
		{Name: "zipf", New: func(rng *rand.Rand, blocks uint64) Gen {
			z := rand.NewZipf(rng, 1.2, 1, blocks-1)
			return func(i int) (uint64, bool) {
				return z.Uint64(), rng.Float64() < 0.5
			}
		}},
		{Name: "scan", New: func(rng *rand.Rand, blocks uint64) Gen {
			return func(i int) (uint64, bool) {
				// Sequential passes over the working set, alternating a
				// write pass with a read pass.
				addr := uint64(i) % blocks
				return addr, (uint64(i)/blocks)%2 == 0
			}
		}},
		{Name: "hammer", New: func(rng *rand.Rand, blocks uint64) Gen {
			hot := rng.Uint64() % blocks
			return func(i int) (uint64, bool) {
				// 90% of traffic re-touches one hot block — the pattern an
				// access-pattern attack would inject.
				if rng.Float64() < 0.9 {
					return hot, rng.Float64() < 0.5
				}
				return rng.Uint64() % blocks, rng.Float64() < 0.5
			}
		}},
		{Name: "readmostly", New: func(rng *rand.Rand, blocks uint64) Gen {
			return func(i int) (uint64, bool) {
				return rng.Uint64() % blocks, rng.Float64() < 0.1
			}
		}},
	}
}

// WorkloadByName returns the named workload from the suite (nil if
// unknown).
func WorkloadByName(name string) *Workload {
	for _, w := range Workloads() {
		if w.Name == name {
			return &w
		}
	}
	return nil
}
