package core

import "crypto/subtle"

// Constant-time stash scans (Params.ConstantTimeStash).
//
// Threat model (SECURITY.md): in the secure-processor setting the stash
// lookup runs on the critical path of every memory access, and an
// early-return scan makes the access latency a function of *where* (and
// whether) the block sits in the stash — a timing channel on secret
// addresses. The scans here execute a fixed number of slot visits per
// lookup — the window size, a public constant fixed at construction — and
// combine per-slot address-match masks with crypto/subtle selects, so hit
// position and hit-vs-miss change neither the instruction count nor the
// memory-touch count.
//
// What stays public: the live entry count (stash occupancy drives the
// publicly observable background-eviction schedule, Section 3.1), the scan
// window, and block sizes. Branching on those is fine; branching on
// addresses, match results or payload bytes is not.
//
// The dense entries layout evolves exactly as in legacy mode, so a
// constant-time ORAM replays bit-identically to a legacy one.

// initCT switches the stash into constant-time mode with the given fixed
// scan window (capacity in slots). The backing array carries one extra
// dump slot at index window, the masked-discard target of compactCT.
func (s *stash) initCT(window int) {
	s.ct = true
	s.window = window
	s.all = make([]Slot, window+1)
	s.entries = s.all[:0:window]
	if s.blockBytes > 0 {
		s.deadScratch = make([]byte, s.blockBytes)
		// Preallocate the payload pool: one buffer per window slot, carved
		// from a single arena, so the steady state never allocates.
		arena := make([]byte, window*s.blockBytes)
		s.free = make([][]byte, 0, window)
		for i := 0; i < window; i++ {
			s.free = append(s.free, arena[i*s.blockBytes:(i+1)*s.blockBytes:(i+1)*s.blockBytes])
		}
	}
}

// growCT doubles the window when the stash overflows it (possible only
// with capacity-exceeding workloads; Validate requires a bounded stash, so
// the window normally covers the worst mid-access occupancy C + Z(L+1)).
// Growth is driven by occupancy — public — and trades the fixed window for
// correctness until the next growth.
func (s *stash) growCT() {
	n := len(s.entries)
	window := 2 * s.window
	all := make([]Slot, window+1)
	copy(all, s.all[:n])
	s.all = all
	s.window = window
	s.entries = s.all[:n:window]
}

// ctLiveMask returns 1 if i indexes a live entry (i < n), else 0. Both
// values are public; the masked form keeps the per-slot instruction
// sequence uniform.
func ctLiveMask(i, n int) int {
	return subtle.ConstantTimeLessOrEq(i+1, n)
}

// ctEq64 returns 1 if a == b, in constant time, as the AND of two 32-bit
// halves (crypto/subtle exposes only 32-bit equality).
func ctEq64(a, b uint64) int {
	lo := subtle.ConstantTimeEq(int32(uint32(a)), int32(uint32(b)))
	hi := subtle.ConstantTimeEq(int32(uint32(a>>32)), int32(uint32(b>>32)))
	return lo & hi
}

// ctLess64 returns 1 if a < b (unsigned, constant time): the borrow bit of
// the subtraction a - b.
func ctLess64(a, b uint64) int {
	borrow := ((^a & b) | ((^a | b) & (a - b))) >> 63
	return int(borrow)
}

// ctFind returns the index of addr, or -1, visiting every window slot.
func (s *stash) ctFind(addr uint64) int {
	n := len(s.entries)
	full := s.all[:s.window]
	s.scanSlots += uint64(s.window)
	idx, found := -1, 0
	for i := range full {
		eq := ctEq64(full[i].Addr, addr) & ctLiveMask(i, n)
		take := eq & (found ^ 1) // first match wins, like the legacy scan
		idx = subtle.ConstantTimeSelect(take, i, idx)
		found |= eq
	}
	return idx
}

// ctReadInto copies the payload of addr into dst with a fixed-length
// masked scan; dst is untouched on a miss (callers prefill it with the
// fresh-fill pattern, so hit and miss leave no branch at all). Returns 1
// on hit, 0 on miss.
func (s *stash) ctReadInto(addr uint64, dst []byte) int {
	n := len(s.entries)
	full := s.all[:s.window]
	s.scanSlots += uint64(s.window)
	found := 0
	for i := range full {
		mask := 0
		src := s.deadScratch
		if i < n { // public liveness: occupancy is not a secret
			mask = ctEq64(full[i].Addr, addr)
			src = full[i].Data
		}
		if len(dst) > 0 {
			subtle.ConstantTimeCopy(mask, dst, src)
		}
		found |= mask
	}
	return found
}

// ctWriteData copies data into the payload of addr with a fixed-length
// masked scan. Returns 1 on hit, 0 on miss (the caller then appends a new
// entry; occupancy changes are public).
func (s *stash) ctWriteData(addr uint64, data []byte) int {
	n := len(s.entries)
	full := s.all[:s.window]
	s.scanSlots += uint64(s.window)
	found := 0
	for i := range full {
		mask := 0
		dst := s.deadScratch
		if i < n {
			mask = ctEq64(full[i].Addr, addr)
			dst = full[i].Data
		}
		if len(data) > 0 {
			subtle.ConstantTimeCopy(mask, dst, data)
		}
		found |= mask
	}
	return found
}

// ctRemapRange sets the leaf of every entry with lo <= Addr < hi with a
// fixed-length masked scan (the super-block group remap of realAccess).
func (s *stash) ctRemapRange(lo, hi uint64, newLeaf uint32) {
	n := len(s.entries)
	full := s.all[:s.window]
	s.scanSlots += uint64(s.window)
	for i := range full {
		e := &full[i]
		in := (ctLess64(e.Addr, lo) ^ 1) & ctLess64(e.Addr, hi) & ctLiveMask(i, n)
		e.Leaf = uint32(subtle.ConstantTimeSelect(in, int(newLeaf), int(e.Leaf)))
	}
}

// compactCT removes all entries whose placed mask is 1, preserving stable
// order exactly like compact, with a uniform per-entry memory-touch count:
// every live entry is read once and written once — kept entries to the
// write cursor, discarded entries to the dump slot at index window,
// selected by mask. The iteration count is the (public) occupancy; which
// addresses the cursor touches varies, but not how many.
func (s *stash) compactCT(placed []int) {
	n := len(s.entries)
	s.scanSlots += uint64(n)
	k := 0
	for i := 0; i < n; i++ {
		keepMask := placed[i] ^ 1
		dst := subtle.ConstantTimeSelect(keepMask, k, s.window)
		s.all[dst] = s.all[i]
		k += keepMask
	}
	// Zero the vacated tail and the dump slot so stale entries don't pin
	// payload buffers (the placed payloads are recycled by writeBack).
	for i := k; i < n; i++ {
		s.all[i] = Slot{}
	}
	s.all[s.window] = Slot{}
	s.entries = s.all[:k:s.window]
}
