package core

import "fmt"

// PathTimer is the seam between the protocol and a cycle-accurate storage
// cost model: it charges path-granularity I/O — every bucket read and
// write the protocol performs — against modeled hardware time without ever
// touching the data. internal/membus implements it with a shared DDR3
// timing model; tests implement it with recording stubs.
//
// The two methods carry the staged protocol's stage metadata
// (see ORAM.pathAccess):
//
//	ReadPath  — stage 2, the path read. skip has the same meaning as in
//	            PathStore.ReadPath: a set flag marks a bucket whose live
//	            content sits in a pending deferred write-back, so its read
//	            is served from the write buffer and generates NO storage
//	            traffic. skip is only valid for the duration of the call.
//	WritePath — stage 5, the path write-back. deferred reports whether the
//	            write was issued from the deferred FIFO (the modeled memory
//	            controller's write buffer, drained by StepBackground/Flush
//	            or the queue-full inline drain) rather than inline during
//	            the access. Cost models use the flag to attribute write
//	            traffic to the flush schedule instead of the access itself.
//
// Implementations must be safe for use from the single goroutine owning
// the ORAM; cross-ORAM serialization (many shards charging one shared
// memory system) is the model's own business — internal/membus takes a bus
// lock per charge. A charge is a submission, not a completion: the model
// may buffer the stage and retire it later in event order (membus queues
// stages per port and drains them in global arrival order), so modeled
// clocks observed through the model's query surface are only current at
// those queries' quiesce points.
type PathTimer interface {
	ReadPath(leaf uint64, skip []bool)
	WritePath(leaf uint64, deferred bool)
}

// TimedStore wraps a PathStore and charges every completed path read and
// write to a PathTimer. Timing is observation-only: the wrapped store sees
// exactly the same call sequence it would see unwrapped — same leaves,
// same skip masks, same bucket contents, same read/write pairing (so an
// encrypt.Store's outstanding-path multiset is untouched) — and therefore
// the protocol's logical state evolves bit-identically to an untimed run.
// Failed operations are not charged: a path that never landed moved no
// modeled data.
type TimedStore struct {
	inner PathStore
	timer PathTimer
}

// NewTimedStore wraps inner so every successful path operation is charged
// to timer.
func NewTimedStore(inner PathStore, timer PathTimer) (*TimedStore, error) {
	if inner == nil || timer == nil {
		return nil, fmt.Errorf("core: timed store needs both a store and a timer")
	}
	return &TimedStore{inner: inner, timer: timer}, nil
}

// Inner returns the wrapped store (tests compare tree contents through it).
func (t *TimedStore) Inner() PathStore { return t.inner }

// ReadPath implements PathStore: forward, then charge the stage-2 read.
func (t *TimedStore) ReadPath(leaf uint64, skip []bool, dst [][]Slot) ([][]Slot, error) {
	dst, err := t.inner.ReadPath(leaf, skip, dst)
	if err != nil {
		return dst, err
	}
	t.timer.ReadPath(leaf, skip)
	return dst, nil
}

// WritePath implements PathStore: forward, then charge an inline stage-5
// write-back.
func (t *TimedStore) WritePath(leaf uint64, buckets [][]Slot) error {
	if err := t.inner.WritePath(leaf, buckets); err != nil {
		return err
	}
	t.timer.WritePath(leaf, false)
	return nil
}

// WritePathDeferred is WritePath for write-backs issued from the deferred
// FIFO: the ORAM calls it (through the deferredWriter interface) instead
// of WritePath when completing a queued entry, so the cost model sees the
// write as write-buffer drain traffic. The wrapped store cannot tell the
// difference — it receives a plain WritePath either way.
func (t *TimedStore) WritePathDeferred(leaf uint64, buckets [][]Slot) error {
	if err := t.inner.WritePath(leaf, buckets); err != nil {
		return err
	}
	t.timer.WritePath(leaf, true)
	return nil
}

// MemoryBytes forwards the external-memory footprint when the wrapped
// store reports one (0 otherwise), so a timed store slots into footprint
// accounting unchanged.
func (t *TimedStore) MemoryBytes() uint64 {
	if m, ok := t.inner.(interface{ MemoryBytes() uint64 }); ok {
		return m.MemoryBytes()
	}
	return 0
}
