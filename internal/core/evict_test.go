package core

import (
	"math/rand"
	"testing"
)

// TestEvictionGreedyMaximality verifies the "shuffle" guarantee of Section
// 2.1 step 5: after a path write-back, every block remaining in the stash
// must be blocked by fullness — each bucket it could legally occupy on the
// just-written path holds Z blocks.
func TestEvictionGreedyMaximality(t *testing.T) {
	p := Params{
		LeafLevel: 6, Z: 2, BlockBytes: 0, Blocks: 200,
		StashCapacity: 0, // unbounded: lets the stash accumulate
	}
	var lastLeaf uint64
	p.OnPathAccess = func(leaf uint64, _ AccessKind) { lastLeaf = leaf }
	o, store, _ := newTestORAM(t, p, 777)
	tree := o.Tree()
	rng := rand.New(rand.NewSource(778))

	occupancy := func(leaf uint64) []int {
		counts := make([]int, tree.Levels())
		store.ForEachBlock(func(s Slot, level int, pos uint64) {
			if tree.PathBucket(leaf, level) == tree.FlatIndex(level, pos) {
				counts[level]++
			}
		})
		return counts
	}

	for i := 0; i < 1000; i++ {
		if _, err := o.Access(rng.Uint64()%p.Blocks, OpWrite, nil); err != nil {
			t.Fatal(err)
		}
		if i%50 != 0 {
			continue
		}
		counts := occupancy(lastLeaf)
		for _, e := range o.stash.entries {
			deepest := tree.DeepestLevel(uint64(e.Leaf), lastLeaf)
			for d := 0; d <= deepest; d++ {
				if counts[d] < p.Z {
					t.Fatalf("step %d: stash block %d (leaf %d) could occupy level %d "+
						"of path %d (only %d/%d full) — eviction not maximal",
						i, e.Addr, e.Leaf, d, lastLeaf, counts[d], p.Z)
				}
			}
		}
	}
}

// TestDummyAccessRestoresPath verifies the Section 3.1.1 argument that a
// dummy access can always return every block it read: after a dummy access
// on a freshly stable ORAM, no block that was on the path may remain in
// the stash unless it was displaced by a strictly deeper-eligible block.
func TestDummyAccessNetNonIncreasing(t *testing.T) {
	p := Params{
		LeafLevel: 7, Z: 3, BlockBytes: 0, Blocks: 500,
		StashCapacity: 0,
	}
	o, _, _ := newTestORAM(t, p, 779)
	rng := rand.New(rand.NewSource(780))
	for i := 0; i < 2000; i++ {
		if _, err := o.Access(rng.Uint64()%p.Blocks, OpWrite, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		before := o.StashSize()
		if err := o.DummyAccess(); err != nil {
			t.Fatal(err)
		}
		if o.StashSize() > before {
			t.Fatalf("dummy access %d grew the stash %d -> %d", i, before, o.StashSize())
		}
	}
}

// TestEvictionPrefersDeepPlacement checks that on an otherwise empty tree
// a freshly written block lands exactly at the deepest level its (new)
// leaf shares with the written (old) path — never shallower.
func TestEvictionPrefersDeepPlacement(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := Params{
			LeafLevel: 4, Z: 1, BlockBytes: 0, Blocks: 31,
			StashCapacity: 0,
		}
		var written uint64
		p.OnPathAccess = func(leaf uint64, _ AccessKind) { written = leaf }
		o, store, pos := newTestORAM(t, p, 781+seed)
		if _, err := o.Access(3, OpWrite, nil); err != nil {
			t.Fatal(err)
		}
		newLeaf, ok, err := pos.Peek(3)
		if err != nil || !ok {
			t.Fatalf("no position: %v %v", ok, err)
		}
		if o.StashSize() != 0 {
			t.Fatalf("block stuck in the stash of an empty tree")
		}
		placedLevel := -1
		store.ForEachBlock(func(s Slot, level int, _ uint64) {
			if s.Addr == 3 {
				placedLevel = level
			}
		})
		want := o.Tree().DeepestLevel(uint64(newLeaf), written)
		if placedLevel != want {
			t.Errorf("seed %d: block at level %d, want deepest shared level %d "+
				"(new leaf %d, written path %d)", seed, placedLevel, want, newLeaf, written)
		}
	}
}
