package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// checkInvariant verifies the Path ORAM invariant (Section 2.1): every
// block in the tree lies on the path to its group's current position-map
// leaf, every stash block's recorded leaf matches the position map, and no
// address appears twice.
func checkInvariant(t *testing.T, o *ORAM, store *MemStore, pos *OnChipPositionMap) {
	t.Helper()
	tree := o.Tree()
	seen := make(map[uint64]string)
	note := func(addr uint64, where string) {
		if prev, dup := seen[addr]; dup {
			t.Fatalf("address %d appears twice: %s and %s", addr, prev, where)
		}
		seen[addr] = where
	}
	store.ForEachBlock(func(s Slot, level int, bucketPos uint64) {
		note(s.Addr, fmt.Sprintf("tree level %d", level))
		leaf, ok, err := pos.Peek(o.group(s.Addr))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("tree block %d has no position map entry", s.Addr)
		}
		if leaf != s.Leaf {
			t.Fatalf("tree block %d carries leaf %d, position map says %d", s.Addr, s.Leaf, leaf)
		}
		// The bucket must be on the path to the block's leaf.
		if tree.PathBucket(uint64(leaf), level) != tree.FlatIndex(level, bucketPos) {
			t.Fatalf("block %d (leaf %d) stored off its path at level %d pos %d",
				s.Addr, leaf, level, bucketPos)
		}
	})
	for _, e := range o.stash.entries {
		note(e.Addr, "stash")
		leaf, ok, err := pos.Peek(o.group(e.Addr))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || leaf != e.Leaf {
			t.Fatalf("stash block %d leaf %d, posmap %d (ok=%v)", e.Addr, e.Leaf, leaf, ok)
		}
	}
	if got := store.CountBlocks() + uint64(o.StashSize()); got != o.Stats().BlocksInORAM {
		t.Fatalf("resident blocks %d != accounted %d", got, o.Stats().BlocksInORAM)
	}
}

func TestInvariantUnderRandomWorkload(t *testing.T) {
	for _, sb := range []int{1, 2, 4} {
		sb := sb
		t.Run(fmt.Sprintf("superblock=%d", sb), func(t *testing.T) {
			p := Params{
				LeafLevel: 5, Z: 4, BlockBytes: 8, Blocks: 100,
				StashCapacity:      120,
				BackgroundEviction: true,
				SuperBlock:         sb,
			}
			o, store, pos := newTestORAM(t, p, int64(400+sb))
			rng := rand.New(rand.NewSource(int64(sb)))
			for i := 0; i < 1500; i++ {
				addr := rng.Uint64() % p.Blocks
				if o.CheckedOut(addr) {
					continue
				}
				var err error
				switch rng.Intn(3) {
				case 0:
					_, err = o.Access(addr, OpWrite, blockOf(byte(i), 8))
				case 1:
					_, err = o.Access(addr, OpRead, nil)
				case 2:
					err = o.Update(addr, func(d []byte) { d[0]++ })
				}
				if err != nil {
					t.Fatal(err)
				}
				if i%100 == 0 {
					checkInvariant(t, o, store, pos)
				}
			}
			checkInvariant(t, o, store, pos)
		})
	}
}

// TestShadowModel replays a random mixed workload (inclusive accesses,
// updates, exclusive load/store round trips) against a plain map and
// requires every read to match, with super blocks on and off.
func TestShadowModel(t *testing.T) {
	for _, sb := range []int{1, 2} {
		sb := sb
		t.Run(fmt.Sprintf("superblock=%d", sb), func(t *testing.T) {
			const blocks = 200
			p := Params{
				LeafLevel: 6, Z: 4, BlockBytes: 8, Blocks: blocks,
				StashCapacity:      150,
				BackgroundEviction: true,
				SuperBlock:         sb,
				FreshFill:          0x00,
			}
			o, store, pos := newTestORAM(t, p, int64(31+sb))
			rng := rand.New(rand.NewSource(int64(71 + sb)))
			shadow := map[uint64][]byte{} // what each address should read as
			cache := map[uint64][]byte{}  // checked-out blocks (the "processor cache")
			expect := func(addr uint64) []byte {
				if d, ok := shadow[addr]; ok {
					return d
				}
				return make([]byte, 8) // fresh fill 0
			}
			for i := 0; i < 4000; i++ {
				addr := rng.Uint64() % blocks
				switch rng.Intn(5) {
				case 0: // oblivious write
					if _, held := cache[addr]; held {
						continue
					}
					d := blockOf(byte(rng.Intn(256)), 8)
					if _, err := o.Access(addr, OpWrite, d); err != nil {
						t.Fatal(err)
					}
					shadow[addr] = d
				case 1: // oblivious read
					if _, held := cache[addr]; held {
						continue
					}
					got, err := o.Access(addr, OpRead, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, expect(addr)) {
						t.Fatalf("step %d: read(%d)=% x want % x", i, addr, got, expect(addr))
					}
				case 2: // update
					if _, held := cache[addr]; held {
						continue
					}
					if err := o.Update(addr, func(d []byte) { d[7] ^= 0x55 }); err != nil {
						t.Fatal(err)
					}
					d := append([]byte(nil), expect(addr)...)
					d[7] ^= 0x55
					shadow[addr] = d
				case 3: // exclusive load (also pulls super-block siblings)
					if _, held := cache[addr]; held {
						continue
					}
					data, found, group, err := o.Load(addr)
					if err != nil {
						t.Fatal(err)
					}
					if _, written := shadow[addr]; found != written {
						t.Fatalf("step %d: Load(%d) found=%v shadow=%v", i, addr, found, written)
					}
					if !bytes.Equal(data, expect(addr)) {
						t.Fatalf("step %d: Load(%d)=% x want % x", i, addr, data, expect(addr))
					}
					cache[addr] = data
					for _, g := range group {
						if !bytes.Equal(g.Data, expect(g.Addr)) {
							t.Fatalf("step %d: group member %d=% x want % x",
								i, g.Addr, g.Data, expect(g.Addr))
						}
						cache[g.Addr] = g.Data
					}
				case 4: // write back one random cached block, possibly dirty
					for a, d := range cache { // first map key; order irrelevant
						if rng.Intn(2) == 0 {
							d = blockOf(byte(rng.Intn(256)), 8)
						}
						if err := o.Store(a, d); err != nil {
							t.Fatal(err)
						}
						shadow[a] = append([]byte(nil), d...)
						delete(cache, a)
						break
					}
				}
			}
			// Flush the cache and verify everything end to end.
			for a, d := range cache {
				if err := o.Store(a, d); err != nil {
					t.Fatal(err)
				}
				shadow[a] = append([]byte(nil), d...)
			}
			checkInvariant(t, o, store, pos)
			for a := uint64(0); a < blocks; a++ {
				got, err := o.Access(a, OpRead, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, expect(a)) {
					t.Fatalf("final read(%d)=% x want % x", a, got, expect(a))
				}
			}
		})
	}
}

func TestSuperBlockCoLocation(t *testing.T) {
	// Section 3.2: members of a super block share one position-map entry,
	// so loading any member must return every ORAM-resident member.
	p := Params{
		LeafLevel: 5, Z: 4, BlockBytes: 4, Blocks: 64,
		StashCapacity:      100,
		BackgroundEviction: true,
		SuperBlock:         2,
	}
	o, _, pos := newTestORAM(t, p, 55)
	// Write both members of super block 5 (addresses 10, 11).
	if _, err := o.Access(10, OpWrite, blockOf(1, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Access(11, OpWrite, blockOf(2, 4)); err != nil {
		t.Fatal(err)
	}
	_, _, group, err := o.Load(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 1 || group[0].Addr != 11 || !bytes.Equal(group[0].Data, blockOf(2, 4)) {
		t.Fatalf("Load(10) group=%+v want the sibling 11", group)
	}
	if !o.CheckedOut(11) {
		t.Error("prefetched sibling not checked out")
	}
	// Both members map through one entry: remapping one moves both.
	if _, _, err := pos.Peek(5); err != nil {
		t.Fatal(err)
	}
}

func TestSuperBlockSharedLeafInTree(t *testing.T) {
	// After write-back, resident members of a super block always sit on
	// the path of the shared leaf — verified via the invariant checker
	// plus an explicit leaf-equality scan.
	p := Params{
		LeafLevel: 6, Z: 4, BlockBytes: 0, Blocks: 128,
		StashCapacity:      120,
		BackgroundEviction: true,
		SuperBlock:         4,
	}
	o, store, pos := newTestORAM(t, p, 66)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		if _, err := o.Access(rng.Uint64()%p.Blocks, OpWrite, nil); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariant(t, o, store, pos)
	leafOf := map[uint64]uint32{}
	store.ForEachBlock(func(s Slot, _ int, _ uint64) {
		g := o.group(s.Addr)
		if prev, ok := leafOf[g]; ok && prev != s.Leaf {
			t.Fatalf("group %d members on different leaves: %d vs %d", g, prev, s.Leaf)
		}
		leafOf[g] = s.Leaf
	})
}
