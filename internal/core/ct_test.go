package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestCTScanCountInvariant pins the constant-time contract at the scan
// level: every lookup visits exactly window slots — a function of the
// stash capacity fixed at construction, never of where the block sits or
// whether it is present at all.
func TestCTScanCountInvariant(t *testing.T) {
	for _, window := range []int{16, 64} {
		t.Run(fmt.Sprintf("window=%d", window), func(t *testing.T) {
			var s stash
			s.blockBytes = 16
			s.initCT(window)
			// Ten live entries at addresses 100..109.
			for i := 0; i < 10; i++ {
				s.insert(uint64(100+i), 0, s.take())
			}
			scans := func(f func()) uint64 {
				before := s.scanSlots
				f()
				return s.scanSlots - before
			}
			dst := make([]byte, 16)
			cases := []struct {
				name string
				op   func()
			}{
				{"find-hit-first", func() { s.ctFind(100) }},
				{"find-hit-last", func() { s.ctFind(109) }},
				{"find-miss", func() { s.ctFind(999) }},
				{"read-hit-first", func() { s.ctReadInto(100, dst) }},
				{"read-hit-last", func() { s.ctReadInto(109, dst) }},
				{"read-miss", func() { s.ctReadInto(999, dst) }},
				{"write-hit-first", func() { s.ctWriteData(100, dst) }},
				{"write-hit-last", func() { s.ctWriteData(109, dst) }},
				{"write-miss", func() { s.ctWriteData(999, dst) }},
			}
			for _, c := range cases {
				if got := scans(c.op); got != uint64(window) {
					t.Errorf("%s scanned %d slots, want the full window %d", c.name, got, window)
				}
			}
		})
	}
}

// TestCTScanResults checks that the masked scans compute the same answers
// as the legacy early-exit scans they replace.
func TestCTScanResults(t *testing.T) {
	var s stash
	s.blockBytes = 8
	s.initCT(16)
	payload := []byte("01234567")
	for i := 0; i < 5; i++ {
		d := s.take()
		copy(d, payload)
		d[0] = byte('a' + i)
		s.insert(uint64(10+i), uint32(i), d)
	}
	if got := s.ctFind(12); got != 2 {
		t.Errorf("ctFind(12) = %d, want 2", got)
	}
	if got := s.ctFind(99); got != -1 {
		t.Errorf("ctFind(99) = %d, want -1", got)
	}
	dst := bytes.Repeat([]byte{0xEE}, 8)
	if hit := s.ctReadInto(13, dst); hit != 1 || dst[0] != 'd' {
		t.Errorf("ctReadInto hit=%d dst=%q", hit, dst)
	}
	miss := bytes.Repeat([]byte{0xEE}, 8)
	if hit := s.ctReadInto(99, miss); hit != 0 || !bytes.Equal(miss, bytes.Repeat([]byte{0xEE}, 8)) {
		t.Errorf("ctReadInto miss touched dst: hit=%d dst=%q", hit, miss)
	}
	if hit := s.ctWriteData(11, []byte("ZZZZZZZZ")); hit != 1 {
		t.Errorf("ctWriteData hit = %d, want 1", hit)
	}
	out := make([]byte, 8)
	s.ctReadInto(11, out)
	if string(out) != "ZZZZZZZZ" {
		t.Errorf("payload after ctWriteData = %q", out)
	}
	if hit := s.ctWriteData(99, []byte("ZZZZZZZZ")); hit != 0 {
		t.Errorf("ctWriteData miss hit = %d, want 0", hit)
	}
	s.ctRemapRange(11, 14, 77)
	for i, e := range s.entries {
		want := uint32(i)
		if e.Addr >= 11 && e.Addr < 14 {
			want = 77
		}
		if e.Leaf != want {
			t.Errorf("entry %d (addr %d) leaf = %d, want %d", i, e.Addr, e.Leaf, want)
		}
	}
}

// TestCTCompactMatchesLegacy replays the same placement mask through
// compact and compactCT and requires identical surviving entries in
// identical order — the bit-identical evolution the equivalence replays
// rely on.
func TestCTCompactMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var legacy, ct stash
		ct.initCT(32)
		n := 1 + rng.Intn(20)
		placed := make([]int, n)
		for i := 0; i < n; i++ {
			addr, leaf := rng.Uint64()%1000, rng.Uint32()%64
			legacy.insert(addr, leaf, nil)
			ct.insert(addr, leaf, nil)
			placed[i] = rng.Intn(2)
		}
		legacy.compact(placed)
		ct.compactCT(placed)
		if legacy.len() != ct.len() {
			t.Fatalf("trial %d: legacy kept %d, ct kept %d", trial, legacy.len(), ct.len())
		}
		for i := range legacy.entries {
			l, c := legacy.entries[i], ct.entries[i]
			if l.Addr != c.Addr || l.Leaf != c.Leaf {
				t.Fatalf("trial %d entry %d: legacy {%d,%d} ct {%d,%d}",
					trial, i, l.Addr, l.Leaf, c.Addr, c.Leaf)
			}
		}
	}
}

// TestCTEquivalenceBitIdentical runs the same seeded workload through a
// legacy and a constant-time ORAM and requires every result — and the
// final external tree, byte for byte — to be identical: the constant-time
// mode changes how scans execute, never what they compute.
func TestCTEquivalenceBitIdentical(t *testing.T) {
	for _, deferred := range []bool{false, true} {
		name := "sync"
		if deferred {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			build := func(ct bool) (*ORAM, *MemStore) {
				p := smallParams()
				p.ConstantTimeStash = ct
				if deferred {
					p.DeferWriteBack = true
					p.MaxDeferredWriteBacks = 4
				}
				o, store, _ := newTestORAM(t, p, 77)
				return o, store
			}
			legacy, legacyStore := build(false)
			ct, ctStore := build(true)
			rng := rand.New(rand.NewSource(78))
			dst := make([]byte, 16)
			for i := 0; i < 600; i++ {
				addr := rng.Uint64() % 128
				switch rng.Intn(4) {
				case 0:
					data := blockOf(byte(i), 16)
					if _, err := legacy.Access(addr, OpWrite, data); err != nil {
						t.Fatal(err)
					}
					if _, err := ct.Access(addr, OpWrite, data); err != nil {
						t.Fatal(err)
					}
				case 1:
					a, err := legacy.Access(addr, OpRead, nil)
					if err != nil {
						t.Fatal(err)
					}
					b, err := ct.Access(addr, OpRead, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(a, b) {
						t.Fatalf("op %d: read(%d) diverged: % x vs % x", i, addr, a, b)
					}
				case 2:
					fa, err := legacy.ReadInto(addr, dst)
					if err != nil {
						t.Fatal(err)
					}
					got := append([]byte(nil), dst...)
					fb, err := ct.ReadInto(addr, dst)
					if err != nil {
						t.Fatal(err)
					}
					if fa != fb || !bytes.Equal(got, dst) {
						t.Fatalf("op %d: ReadInto(%d) diverged: found %v/%v, % x vs % x", i, addr, fa, fb, got, dst)
					}
				case 3:
					if deferred {
						if _, err := legacy.StepBackground(true); err != nil {
							t.Fatal(err)
						}
						if _, err := ct.StepBackground(true); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			if err := legacy.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := ct.Flush(); err != nil {
				t.Fatal(err)
			}
			type cell struct {
				addr uint64
				leaf uint32
				data string
			}
			dump := func(s *MemStore) []cell {
				var out []cell
				s.ForEachBlock(func(sl Slot, level int, pos uint64) {
					out = append(out, cell{sl.Addr, sl.Leaf, string(sl.Data)})
				})
				return out
			}
			a, b := dump(legacyStore), dump(ctStore)
			if len(a) != len(b) {
				t.Fatalf("tree block counts diverged: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("tree block %d diverged: %+v vs %+v", i, a[i], b[i])
				}
			}
		})
	}
}
