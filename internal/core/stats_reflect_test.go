package core

import (
	"reflect"
	"testing"

	"repro/internal/testutil"
)

// Completeness tests for the stats plumbing: every field of Stats must be
// carried by Merge and cleared by ResetStats (except the occupancy gauge).
// They are reflection-based so that adding a field to Stats without
// updating Merge or ResetStats fails here instead of silently dropping
// counters in aggregated views.

func TestStatsMergeCoversAllFields(t *testing.T) {
	var b Stats
	n := testutil.FillDistinct(&b)
	if n != reflect.TypeOf(b).NumField() {
		t.Fatalf("FillDistinct set %d fields, Stats has %d", n, reflect.TypeOf(b).NumField())
	}
	// Identity under merge-with-zero holds for every merge semantic in
	// use (sum, max, first-nonzero), so a forgotten field — which would
	// come back zero on one side — breaks equality.
	if got := (Stats{}).Merge(b); !reflect.DeepEqual(got, b) {
		t.Errorf("Stats{}.Merge(b) = %+v, want %+v — Merge drops a field", got, b)
	}
	if got := b.Merge(Stats{}); !reflect.DeepEqual(got, b) {
		t.Errorf("b.Merge(Stats{}) = %+v, want %+v — Merge drops a field", got, b)
	}
}

func TestResetStatsCoversAllFields(t *testing.T) {
	o, _, _ := newTestORAM(t, Params{LeafLevel: 4, Z: 4, Blocks: 32, StashCapacity: 100}, 77)
	var filled Stats
	testutil.FillDistinct(&filled)
	o.stats = filled
	o.ResetStats()
	got := reflect.ValueOf(o.stats)
	typ := got.Type()
	for i := 0; i < typ.NumField(); i++ {
		f := got.Field(i)
		name := typ.Field(i).Name
		if name == "BlocksInORAM" {
			// The occupancy gauge survives a reset by design: it tracks
			// current contents, not accrued traffic.
			if !reflect.DeepEqual(f.Interface(), reflect.ValueOf(filled).Field(i).Interface()) {
				t.Errorf("ResetStats lost the occupancy gauge %s", name)
			}
			continue
		}
		if !f.IsZero() {
			t.Errorf("ResetStats left field %s = %v — new counters must be cleared", name, f.Interface())
		}
	}
}
