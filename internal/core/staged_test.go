package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// stagedParams is smallParams with the staged access path enabled.
func stagedParams(maxDefer int) Params {
	p := smallParams()
	p.DeferWriteBack = true
	p.MaxDeferredWriteBacks = maxDefer
	return p
}

// treeSnapshot flattens a MemStore into a comparable string: every block
// with its exact bucket position, in scan order.
func treeSnapshot(s *MemStore) string {
	var b bytes.Buffer
	s.ForEachBlock(func(sl Slot, level int, pos uint64) {
		fmt.Fprintf(&b, "%d@%d.%d leaf=%d data=%x\n", sl.Addr, level, pos, sl.Leaf, sl.Data)
	})
	return b.String()
}

// TestStagedBitIdenticalToSync is the strongest equivalence statement the
// staged design makes: because eviction placement is computed eagerly —
// only the write I/O is deferred — a staged ORAM that is flushed at the
// end consumes the same random draws and produces the *bit-identical*
// tree, stash and position map as the synchronous protocol, for the same
// seed and workload. (Idle-time StepBackground eviction would change the
// dummy schedule; this test exercises pure deferral.)
func TestStagedBitIdenticalToSync(t *testing.T) {
	for _, maxDefer := range []int{1, 4, 64} {
		t.Run(fmt.Sprintf("maxDefer=%d", maxDefer), func(t *testing.T) {
			const seed = 1234
			sync, syncStore, syncPos := newTestORAM(t, smallParams(), seed)
			staged, stagedStore, stagedPos := newTestORAM(t, stagedParams(maxDefer), seed)

			rng := rand.New(rand.NewSource(77))
			for i := 0; i < 2500; i++ {
				addr := rng.Uint64() % smallParams().Blocks
				op, data := rng.Intn(3), blockOf(byte(i), 16)
				run := func(o *ORAM) error {
					switch op {
					case 0:
						_, err := o.Access(addr, OpWrite, data)
						return err
					case 1:
						_, err := o.Access(addr, OpRead, nil)
						return err
					default:
						return o.Update(addr, func(d []byte) { d[0]++ })
					}
				}
				if err := run(sync); err != nil {
					t.Fatal(err)
				}
				if err := run(staged); err != nil {
					t.Fatal(err)
				}
			}
			if err := staged.Flush(); err != nil {
				t.Fatal(err)
			}
			if staged.PendingWriteBacks() != 0 {
				t.Fatalf("%d write-backs pending after Flush", staged.PendingWriteBacks())
			}
			if got, want := treeSnapshot(stagedStore), treeSnapshot(syncStore); got != want {
				t.Fatalf("trees diverge after flush:\nstaged:\n%s\nsync:\n%s", got, want)
			}
			if got, want := fmt.Sprint(staged.stash.entries), fmt.Sprint(sync.stash.entries); got != want {
				t.Fatalf("stashes diverge:\nstaged: %s\nsync:   %s", got, want)
			}
			for g := uint64(0); g < smallParams().Groups(); g++ {
				a, aok, _ := stagedPos.Peek(g)
				b, bok, _ := syncPos.Peek(g)
				if a != b || aok != bok {
					t.Fatalf("position maps diverge at group %d: %d/%v vs %d/%v", g, a, aok, b, bok)
				}
			}
			ss, ys := staged.Stats(), sync.Stats()
			if ss.RealAccesses != ys.RealAccesses || ss.DummyAccesses != ys.DummyAccesses ||
				ss.StashPeak != ys.StashPeak || ss.BlocksInORAM != ys.BlocksInORAM {
				t.Fatalf("protocol counters diverge:\nstaged: %+v\nsync:   %+v", ss, ys)
			}
			if ss.DeferredWriteBacks == 0 || ss.PendingWriteBackPeak == 0 {
				t.Errorf("staged run recorded no deferral: %+v", ss)
			}
			if max := ss.PendingWriteBackPeak; max > maxDefer {
				t.Errorf("pending peak %d exceeds cap %d", max, maxDefer)
			}
			checkInvariant(t, staged, stagedStore, stagedPos)
		})
	}
}

// TestStagedShadowModelWithBackgroundSteps replays a mixed workload —
// inclusive accesses, updates, exclusive load/store round trips — against
// a plain map while randomly interleaving StepBackground calls, so reads
// hit every combination of pending, partially flushed and idle-evicted
// state. This is the read-your-writes property of the write-buffer
// overlay.
func TestStagedShadowModelWithBackgroundSteps(t *testing.T) {
	p := stagedParams(6)
	o, store, pos := newTestORAM(t, p, 99)
	rng := rand.New(rand.NewSource(101))
	shadow := map[uint64][]byte{}
	expect := func(addr uint64) []byte {
		if d, ok := shadow[addr]; ok {
			return d
		}
		return make([]byte, 16)
	}
	for i := 0; i < 4000; i++ {
		addr := rng.Uint64() % p.Blocks
		if o.CheckedOut(addr) {
			continue
		}
		switch rng.Intn(4) {
		case 0:
			d := blockOf(byte(rng.Intn(256)), 16)
			if _, err := o.Access(addr, OpWrite, d); err != nil {
				t.Fatal(err)
			}
			shadow[addr] = d
		case 1:
			got, err := o.Access(addr, OpRead, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, expect(addr)) {
				t.Fatalf("op %d: read(%d) = %x, want %x (pending=%d)",
					i, addr, got, expect(addr), o.PendingWriteBacks())
			}
		case 2:
			if err := o.Update(addr, func(d []byte) { d[1]++ }); err != nil {
				t.Fatal(err)
			}
			d := append([]byte(nil), expect(addr)...)
			d[1]++
			shadow[addr] = d
		default:
			d, _, _, err := o.Load(addr)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(d, expect(addr)) {
				t.Fatalf("op %d: load(%d) = %x, want %x", i, addr, d, expect(addr))
			}
			d[2]++
			if err := o.Store(addr, d); err != nil {
				t.Fatal(err)
			}
			shadow[addr] = append([]byte(nil), d...)
		}
		// Random idle behavior: sometimes fall behind entirely, sometimes
		// keep up, sometimes drain with evictions allowed.
		for steps := rng.Intn(4); steps > 0; steps-- {
			if _, err := o.StepBackground(rng.Intn(2) == 0); err != nil {
				t.Fatal(err)
			}
		}
		if i%500 == 499 {
			if err := o.Flush(); err != nil {
				t.Fatal(err)
			}
			checkInvariant(t, o, store, pos)
		}
	}
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, o, store, pos)
	for addr, want := range shadow {
		got, err := o.Access(addr, OpRead, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("final read(%d) = %x, want %x", addr, got, want)
		}
	}
}

// TestStepBackgroundSemantics pins down the idle-work contract: pending
// write-backs drain first (and are never blocked by allowEviction=false),
// evictions only run when permitted and above the low-water mark, and
// BgNone means a quiescent engine.
func TestStepBackgroundSemantics(t *testing.T) {
	p := stagedParams(64)
	o, _, _ := newTestORAM(t, p, 7)
	for a := uint64(0); a < p.Blocks; a++ {
		if _, err := o.Access(a, OpWrite, blockOf(1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if o.PendingWriteBacks() == 0 {
		t.Fatal("workload left nothing pending; test needs deferred work")
	}
	for o.PendingWriteBacks() > 0 {
		w, err := o.StepBackground(false)
		if err != nil {
			t.Fatal(err)
		}
		if w != BgWriteBack {
			t.Fatalf("StepBackground = %v with %d write-backs pending, want BgWriteBack",
				w, o.PendingWriteBacks())
		}
	}
	// With write-backs drained and evictions forbidden, nothing to do.
	if w, _ := o.StepBackground(false); w != BgNone {
		t.Fatalf("StepBackground(false) = %v on drained queue, want BgNone", w)
	}
	// Allowed evictions drain the stash to the low-water mark (half the
	// inline threshold), each one deferring its own write-back.
	low := p.EvictionThreshold() / 2
	sawEviction := false
	for i := 0; ; i++ {
		if i > DefaultMaxDummyRun {
			t.Fatal("idle eviction never converged")
		}
		w, err := o.StepBackground(true)
		if err != nil {
			t.Fatal(err)
		}
		if w == BgNone {
			break
		}
		sawEviction = sawEviction || w == BgEviction
	}
	if st := o.Stats(); sawEviction {
		if o.StashSize() > low {
			t.Errorf("stash at %d after idle draining, want <= low-water %d", o.StashSize(), low)
		}
		if st.IdleEvictions == 0 {
			t.Error("IdleEvictions not counted")
		}
	} else if o.StashSize() > low {
		t.Errorf("no evictions ran yet stash (%d) is above low-water %d", o.StashSize(), low)
	}
	if o.PendingWriteBacks() != 0 {
		t.Errorf("%d write-backs pending after draining to BgNone", o.PendingWriteBacks())
	}
	// ResetStats must clear the new counters like any others.
	o.ResetStats()
	if st := o.Stats(); st.DeferredWriteBacks != 0 || st.IdleEvictions != 0 || st.PendingWriteBackPeak != 0 {
		t.Errorf("ResetStats left staged counters: %+v", st)
	}
}

// TestStagedQueueCapBoundsPending hammers an ORAM with a tiny deferral cap
// and no background stepping: the inline cap-drain must keep the queue at
// or below the cap at all times.
func TestStagedQueueCapBoundsPending(t *testing.T) {
	p := stagedParams(2)
	o, _, _ := newTestORAM(t, p, 5)
	for i := 0; i < 500; i++ {
		if _, err := o.Access(uint64(i)%p.Blocks, OpWrite, blockOf(byte(i), 16)); err != nil {
			t.Fatal(err)
		}
		if n := o.PendingWriteBacks(); n > 2 {
			t.Fatalf("op %d: pending queue at %d, cap is 2", i, n)
		}
	}
	if st := o.Stats(); st.PendingWriteBackPeak > 2 {
		t.Errorf("pending peak %d exceeds cap 2", st.PendingWriteBackPeak)
	}
}
