// Package core implements the Path ORAM protocol of Ren et al. (ISCA 2013):
// the binary-tree external memory, the stash, greedy path eviction, the
// background-eviction schemes of Section 3.1 (including the insecure
// block-remapping variant used by the Figure 4 attack), super blocks
// (Section 3.2) and the exclusive Load/Store interface (Section 3.3.1).
//
// The protocol logic is independent of how buckets are stored: it talks to
// a PathStore (plain in-memory for fast metadata-only simulation, or the
// encrypting/integrity-verifying store in internal/encrypt) and to a
// PositionMap (an on-chip table, or a map backed by another ORAM as in the
// hierarchical construction of internal/hierarchy).
package core

import (
	"errors"
	"fmt"

	"repro/internal/treemath"
)

// Op selects the operation of an Access, mirroring the paper's
// accessORAM(u, op, b') interface.
type Op int

const (
	// OpRead returns the block's current content.
	OpRead Op = iota
	// OpWrite replaces the block's content.
	OpWrite
)

// EvictionPolicy selects what the ORAM does when the stash exceeds the
// background-eviction threshold (Section 3.1).
type EvictionPolicy int

const (
	// EvictBackgroundDummy is the paper's provably secure scheme: issue
	// dummy accesses (random path read + write-back, no remap) until the
	// stash drains below the threshold.
	EvictBackgroundDummy EvictionPolicy = iota
	// EvictInsecureRemap is the insecure block-remapping scheme of
	// Section 3.1.3, implemented solely so the Figure 4 CPL attack can be
	// reproduced. Do not use it for anything else.
	EvictInsecureRemap
)

// UnassignedLeaf is the sentinel stored in position maps for blocks that
// have never been mapped. Valid leaves are < 2^30 (treemath.MaxLeafLevel),
// so the all-ones value is never a real label.
const UnassignedLeaf = ^uint32(0)

// DefaultMaxDummyRun bounds consecutive dummy accesses. Background-eviction
// livelock is astronomically unlikely (Section 3.1.1 estimates ~1e-100);
// the guard turns an impossible hang into a diagnosable error.
const DefaultMaxDummyRun = 1 << 20

// DefaultMaxDeferredWriteBacks bounds the deferred write-back queue in
// staged mode (Params.DeferWriteBack). Each pending entry pins at most
// Z(L+1) block copies, so the default keeps memory overhead to a handful
// of paths while still letting a burst of requests respond before any
// write-back I/O happens.
const DefaultMaxDeferredWriteBacks = 8

// ErrLivelock is returned if background eviction issues MaxDummyRun dummy
// accesses without draining the stash.
var ErrLivelock = errors.New("core: background eviction livelock guard tripped")

// Params configures an ORAM.
type Params struct {
	// LeafLevel is L: the tree has L+1 levels and 2^L leaves.
	LeafLevel int
	// Z is the bucket capacity in blocks.
	Z int
	// BlockBytes is the payload size B. Zero selects metadata-only mode:
	// no payloads are stored and Access returns nil data, which makes the
	// design-space simulations fast.
	BlockBytes int
	// Blocks is the number of addressable program blocks; valid addresses
	// are 0..Blocks-1. (The paper reserves internal address 0 for dummy
	// blocks; that shift happens inside the stores.)
	Blocks uint64
	// StashCapacity is C, the stash size in blocks. Zero means unbounded
	// (used by the Figure 3 stash-occupancy study). When non-zero,
	// background eviction keeps occupancy at or below C - Z(L+1) between
	// accesses, so the stash can never overflow mid-access.
	StashCapacity int
	// SuperBlock is |S|, the static super block size of Section 3.2:
	// groups of SuperBlock adjacent addresses share one position-map entry
	// and move together. 0 or 1 disables merging.
	SuperBlock int
	// BackgroundEviction enables automatic draining after each operation.
	// Hierarchies disable it and coordinate dummy accesses across levels
	// themselves (Section 3.1.1).
	BackgroundEviction bool
	// Policy selects the eviction scheme when BackgroundEviction is on.
	Policy EvictionPolicy
	// MaxDummyRun overrides DefaultMaxDummyRun when positive.
	MaxDummyRun int
	// FreshFill is the byte replicated into a block the first time it is
	// accessed before ever being written. Data ORAMs use 0; ORAMs holding
	// position-map labels use 0xFF so fresh labels read as UnassignedLeaf.
	FreshFill byte
	// OnPathAccess, when set, observes every path the ORAM touches in
	// order, tagged with what triggered the access. This is the
	// adversary's view used by the Figure 4 attack.
	OnPathAccess func(leaf uint64, kind AccessKind)
	// AfterAccess, when set, observes the stash occupancy (in blocks)
	// after each completed path access. Used by the Figure 3 study.
	AfterAccess func(stashBlocks int, kind AccessKind)
	// DeferWriteBack enables the staged access path: each access performs
	// position lookup, path read, stash merge and eviction *placement*
	// synchronously (so stash and position-map state are identical to the
	// synchronous protocol), but the path write-back I/O — serialization,
	// re-encryption, authentication and the store write — is queued and
	// completed later by StepBackground or Flush. Reads
	// of paths whose write-back is still pending are served from the
	// pending buckets (the write buffer), so logical contents are never
	// stale. The caller is responsible for draining: shard workers do it
	// during idle queue time, and Flush drains everything.
	DeferWriteBack bool
	// MaxDeferredWriteBacks caps the deferred queue length when positive
	// (default DefaultMaxDeferredWriteBacks). Pushing onto a full queue
	// first completes the oldest pending write-back inline, so the queue —
	// and the memory it pins — stays bounded even under sustained load
	// with no idle time.
	MaxDeferredWriteBacks int
	// ConstantTimeStash replaces the stash's early-return scans with
	// fixed-length masked scans over a preallocated window (see
	// stash_ct.go and SECURITY.md): hit position and hit-vs-miss change
	// neither the instruction count nor the memory-touch count of the
	// lookup, write and group-remap scans, closing the stash timing
	// channel of the secure-processor threat model. Requires a bounded
	// stash (StashCapacity > 0) to size the window. The stash evolves
	// bit-identically to the default mode; only how scans execute differs.
	ConstantTimeStash bool
}

// GroupSize returns the effective super block size (at least 1).
func (p Params) GroupSize() int {
	if p.SuperBlock < 1 {
		return 1
	}
	return p.SuperBlock
}

// Groups returns the number of position-map entries: ceil(Blocks / |S|).
func (p Params) Groups() uint64 {
	s := uint64(p.GroupSize())
	return (p.Blocks + s - 1) / s
}

// StashEntryOverheadBytes models the on-chip metadata one stash slot
// carries besides its payload: the 64-bit logical address plus the 32-bit
// leaf label. The paper sizes the stash in blocks (Section 4.1.2); the
// design-space explorer's on-chip byte accounting needs the per-entry
// footprint, so the model is fixed here next to the stash parameters.
const StashEntryOverheadBytes = 12

// StashBoundBytes returns the on-chip bytes the stash is provisioned for:
// C slots of payload plus per-entry metadata. This is a static bound fixed
// at construction — the secure processor must reserve it whether or not the
// stash ever fills. 0 when the stash is unbounded (simulation only: an
// unbounded stash has no static provision to account).
func (p Params) StashBoundBytes() uint64 {
	if p.StashCapacity <= 0 {
		return 0
	}
	return uint64(p.StashCapacity) * uint64(p.BlockBytes+StashEntryOverheadBytes)
}

// EvictionThreshold returns the paper's background-eviction threshold
// C - Z(L+1), or -1 when the stash is unbounded.
func (p Params) EvictionThreshold() int {
	if p.StashCapacity == 0 {
		return -1
	}
	return p.StashCapacity - p.Z*(p.LeafLevel+1)
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.LeafLevel < 0 || p.LeafLevel > treemath.MaxLeafLevel:
		return fmt.Errorf("core: leaf level %d out of range [0,%d]", p.LeafLevel, treemath.MaxLeafLevel)
	case p.Z < 1:
		return fmt.Errorf("core: Z=%d must be >= 1", p.Z)
	case p.Blocks < 1:
		return fmt.Errorf("core: Blocks must be >= 1")
	case p.BlockBytes < 0:
		return fmt.Errorf("core: negative block size")
	case p.SuperBlock < 0:
		return fmt.Errorf("core: negative super block size")
	case p.StashCapacity < 0:
		return fmt.Errorf("core: negative stash capacity")
	}
	if p.BackgroundEviction {
		if p.StashCapacity == 0 {
			return fmt.Errorf("core: background eviction requires a bounded stash")
		}
		if p.EvictionThreshold() < 1 {
			return fmt.Errorf("core: stash capacity %d leaves no headroom above Z(L+1)=%d",
				p.StashCapacity, p.Z*(p.LeafLevel+1))
		}
	}
	if p.ConstantTimeStash && p.StashCapacity == 0 {
		return fmt.Errorf("core: constant-time stash scans need a bounded stash to size their fixed window")
	}
	return nil
}

// Stats counts ORAM activity. DummyAccesses / RealAccesses is the DA/RA
// factor of Equation 1.
type Stats struct {
	// RealAccesses counts program-initiated path accesses (Access, Update,
	// Load). Store does not access a path (Section 3.3.1) and is counted
	// separately.
	RealAccesses uint64
	// DummyAccesses counts background-eviction dummy path accesses.
	DummyAccesses uint64
	// PaddingAccesses counts scheduler-issued padding accesses: the dummy
	// path accesses the sharded serving layer injects to give padded
	// batches a fixed, input-independent shard schedule. They are path
	// accesses like any other on the bus; the separate counter makes the
	// padding overhead (PaddingPerReal) measurable.
	PaddingAccesses uint64
	// EvictionAccesses counts insecure block-remapping eviction accesses
	// (only under EvictInsecureRemap).
	EvictionAccesses uint64
	// Stores counts exclusive write-backs into the stash.
	Stores uint64
	// StashPeak is the largest stash occupancy (blocks) ever observed.
	StashPeak int
	// BlocksInORAM tracks how many real blocks currently live in the tree
	// plus stash (i.e. not checked out).
	BlocksInORAM uint64
	// MaxDummyRun is the longest run of consecutive dummy accesses needed
	// to drain the stash.
	MaxDummyRun int
	// DeferredWriteBacks counts path write-backs whose I/O was deferred
	// past the response (staged mode only). Every deferred write-back is
	// eventually completed by StepBackground, Flush or the queue-full
	// inline drain.
	DeferredWriteBacks uint64
	// IdleEvictions counts background-eviction dummy accesses issued by
	// StepBackground during idle time — a subset of DummyAccesses. The
	// remainder were issued inline by drainBackground when an access left
	// the stash above the eviction threshold.
	IdleEvictions uint64
	// PendingWriteBackPeak is the largest deferred write-back queue length
	// ever observed (staged mode only).
	PendingWriteBackPeak int
	// PLBHits / PLBMisses count position-map lookaside cache lookups
	// (Section 3.3.3) against this ORAM: a hit elides the oblivious access
	// this ORAM would otherwise have served, a miss performed it. Always 0
	// outside a hierarchy with a PLB; attributed to the backing level whose
	// traffic the cache filters.
	PLBHits   uint64
	PLBMisses uint64
	// PLBWriteBacks counts dirty PLB entries written back into this ORAM
	// (evictions of modified labels, plus flush-time write-backs). Each one
	// is an extra oblivious access on top of the miss traffic.
	PLBWriteBacks uint64
	// ChainLevels / ChainSamples describe the recursion chain length of
	// program accesses in a hierarchy: ChainSamples counts sampled program
	// operations, ChainLevels sums the ORAM path accesses each needed, so
	// ChainLevels/ChainSamples is the mean chain length (H without a PLB,
	// shorter with one). Recorded on the data level (level 0) only.
	ChainLevels  uint64
	ChainSamples uint64
}

// Merge returns the combination of s and other: additive counters are
// summed, high-water marks take the maximum. The sharded serving layer
// uses it to aggregate per-shard counters into one view; note StashPeak
// then reports the worst single shard, not a sum — per-shard stashes are
// independent on-chip structures.
func (s Stats) Merge(other Stats) Stats {
	s.RealAccesses += other.RealAccesses
	s.DummyAccesses += other.DummyAccesses
	s.PaddingAccesses += other.PaddingAccesses
	s.EvictionAccesses += other.EvictionAccesses
	s.Stores += other.Stores
	s.BlocksInORAM += other.BlocksInORAM
	s.DeferredWriteBacks += other.DeferredWriteBacks
	s.IdleEvictions += other.IdleEvictions
	s.PLBHits += other.PLBHits
	s.PLBMisses += other.PLBMisses
	s.PLBWriteBacks += other.PLBWriteBacks
	s.ChainLevels += other.ChainLevels
	s.ChainSamples += other.ChainSamples
	if other.StashPeak > s.StashPeak {
		s.StashPeak = other.StashPeak
	}
	if other.MaxDummyRun > s.MaxDummyRun {
		s.MaxDummyRun = other.MaxDummyRun
	}
	if other.PendingWriteBackPeak > s.PendingWriteBackPeak {
		s.PendingWriteBackPeak = other.PendingWriteBackPeak
	}
	return s
}

// DummyPerReal returns DA/RA (0 when no real accesses happened).
func (s Stats) DummyPerReal() float64 {
	if s.RealAccesses == 0 {
		return 0
	}
	return float64(s.DummyAccesses) / float64(s.RealAccesses)
}

// PaddingPerReal returns the padded-batch overhead: scheduler padding
// accesses per real access (0 when no real accesses happened).
func (s Stats) PaddingPerReal() float64 {
	if s.RealAccesses == 0 {
		return 0
	}
	return float64(s.PaddingAccesses) / float64(s.RealAccesses)
}

// PLBHitRate returns the position-map lookaside cache hit rate (0 when no
// PLB lookups happened, i.e. the construction has no PLB).
func (s Stats) PLBHitRate() float64 {
	lookups := s.PLBHits + s.PLBMisses
	if lookups == 0 {
		return 0
	}
	return float64(s.PLBHits) / float64(lookups)
}

// MeanChainLength returns the mean number of ORAM path accesses one
// program operation needed (0 outside a hierarchy). Without a PLB this is
// exactly H; PLB hits shorten it.
func (s Stats) MeanChainLength() float64 {
	if s.ChainSamples == 0 {
		return 0
	}
	return float64(s.ChainLevels) / float64(s.ChainSamples)
}

// ORAM is a single Path ORAM.
type ORAM struct {
	p         Params
	tree      treemath.Tree
	store     PathStore
	pos       PositionMap
	leaves    LeafSource
	stash     stash
	threshold int
	maxDummy  int

	checkedOut map[uint64]struct{} // addresses held by the processor (exclusive mode)

	// deferredStore is store when it distinguishes deferred write-backs
	// (TimedStore tagging stage-5 write-buffer traffic); nil otherwise.
	// Resolved once at construction so the flush hot path skips the type
	// assertion.
	deferredStore deferredWriter

	stats Stats

	// Deferred write-back state (staged mode, Params.DeferWriteBack).
	// pending is the FIFO of computed-but-unwritten paths, stored as a
	// head-indexed ring over one backing slice (bounded by maxDefer, so
	// popping advances pendingHead instead of reslicing — no regrow churn
	// on the hot path); overlay maps a bucket's flat tree index to the
	// pending entry holding its live content, so path reads never see the
	// store's stale copy.
	maxDefer    int
	pending     []*pendingPath
	pendingHead int
	freePending []*pendingPath // recycled entries; bounded by maxDefer+1
	overlay     map[uint64]overlayRef

	// reusable buffers
	bucketBuf [][]Slot
	readBuf   [][]Slot
	byDepth   [][]int
	poolBuf   []int
	placed    []int
	skipBuf   []bool
}

// New assembles an ORAM from a validated parameter set, a bucket store, a
// position map and a leaf randomness source.
func New(p Params, store PathStore, pos PositionMap, leaves LeafSource) (*ORAM, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if store == nil || pos == nil || leaves == nil {
		return nil, fmt.Errorf("core: store, position map and leaf source are required")
	}
	tree := treemath.New(p.LeafLevel)
	o := &ORAM{
		p:          p,
		tree:       tree,
		store:      store,
		pos:        pos,
		leaves:     leaves,
		threshold:  p.EvictionThreshold(),
		maxDummy:   p.MaxDummyRun,
		checkedOut: make(map[uint64]struct{}),
		bucketBuf:  make([][]Slot, tree.Levels()),
		byDepth:    make([][]int, tree.Levels()),
	}
	if o.maxDummy <= 0 {
		o.maxDummy = DefaultMaxDummyRun
	}
	o.deferredStore, _ = store.(deferredWriter)
	if p.DeferWriteBack {
		o.maxDefer = p.MaxDeferredWriteBacks
		if o.maxDefer <= 0 {
			o.maxDefer = DefaultMaxDeferredWriteBacks
		}
		o.overlay = make(map[uint64]overlayRef)
		o.skipBuf = make([]bool, tree.Levels())
	}
	for i := range o.bucketBuf {
		o.bucketBuf[i] = make([]Slot, 0, p.Z)
	}
	o.stash.blockBytes = p.BlockBytes
	if p.StashCapacity > 0 {
		// Worst mid-access occupancy: a full stash plus one whole path.
		window := p.StashCapacity + p.Z*(p.LeafLevel+1)
		if p.ConstantTimeStash {
			o.stash.initCT(window)
		}
		// Presize the eviction scratch so the hot path never grows it.
		for d := range o.byDepth {
			o.byDepth[d] = make([]int, 0, window)
		}
		o.poolBuf = make([]int, 0, window)
		o.placed = make([]int, window)
	}
	return o, nil
}

// Params returns the configuration.
func (o *ORAM) Params() Params { return o.p }

// Tree returns the tree geometry.
func (o *ORAM) Tree() treemath.Tree { return o.tree }

// BucketStore returns the PathStore the ORAM was assembled with. Callers
// must not mutate it behind the protocol's back; the accessor exists so
// wiring and equivalence tests can reach through wrappers
// (TimedStore.Inner) to compare tree contents.
func (o *ORAM) BucketStore() PathStore { return o.store }

// Stats returns a snapshot of the activity counters.
func (o *ORAM) Stats() Stats { return o.stats }

// ResetStats clears the activity counters (peak occupancy included).
// BlocksInORAM is a live occupancy gauge, not a counter — it survives the
// reset, or the next Load of a resident block would underflow it.
func (o *ORAM) ResetStats() { o.stats = Stats{BlocksInORAM: o.stats.BlocksInORAM} }

// StashSize returns the current stash occupancy in blocks.
func (o *ORAM) StashSize() int { return o.stash.len() }

// PendingWriteBacks returns the number of path write-backs whose I/O has
// been deferred and not yet completed (always 0 outside staged mode).
func (o *ORAM) PendingWriteBacks() int { return o.pendingLen() }

// group returns the position-map entry index for a program address.
func (o *ORAM) group(addr uint64) uint64 {
	return addr / uint64(o.p.GroupSize())
}

func (o *ORAM) checkAddr(addr uint64) error {
	if addr >= o.p.Blocks {
		return fmt.Errorf("core: address %d out of range [0,%d)", addr, o.p.Blocks)
	}
	return nil
}
