package core

import (
	"errors"
	"fmt"
)

// AccessKind tags the paths an observer sees (Params.OnPathAccess).
type AccessKind int

const (
	// KindReal is a program-initiated access.
	KindReal AccessKind = iota
	// KindDummy is a background-eviction dummy access (Section 3.1.1).
	KindDummy
	// KindEviction is an insecure block-remapping eviction access
	// (Section 3.1.3); it exists only for the Figure 4 attack study.
	KindEviction
	// KindPadding is a scheduler-issued padding access: a dummy path
	// access injected by the sharded serving layer to give a batch a
	// fixed, input-independent shard schedule (see Sharded's padded batch
	// mode and SECURITY.md). On the memory bus it is indistinguishable
	// from every other kind; the tag exists so tests and stats can
	// account for the padding overhead separately from background
	// eviction.
	KindPadding
)

// ErrStashOverflow reports Path ORAM failure: the stash exceeded its
// capacity with background eviction disabled (Section 2.5.1).
var ErrStashOverflow = errors.New("core: stash overflow (Path ORAM failure)")

// Access performs the paper's accessORAM(u, op, b'): one oblivious path
// access that reads or writes the block at addr. For OpRead it returns a
// copy of the block's content (fresh-fill bytes if the block was never
// written; the paper returns nil here, we return the deterministic fill for
// convenience). For OpWrite, data must be exactly BlockBytes long (or nil
// in metadata-only mode) and is copied in.
func (o *ORAM) Access(addr uint64, op Op, data []byte) ([]byte, error) {
	if err := o.checkAddr(addr); err != nil {
		return nil, err
	}
	if _, out := o.checkedOut[addr]; out {
		return nil, fmt.Errorf("core: address %d is checked out; use Store to return it", addr)
	}
	if op == OpWrite {
		if err := o.checkData(data); err != nil {
			return nil, err
		}
	}
	var result []byte
	err := o.realAccess(addr, KindReal, func(newLeaf uint32) error {
		switch op {
		case OpRead:
			if o.p.BlockBytes > 0 {
				result = make([]byte, o.p.BlockBytes)
			}
			o.stashReadInto(addr, result)
		case OpWrite:
			o.stashWrite(addr, newLeaf, data)
		default:
			return fmt.Errorf("core: unknown op %d", op)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return result, o.drainBackground()
}

// ReadInto performs the same oblivious access as Access(addr, OpRead, nil)
// but writes the block's content into the caller-provided dst (which must be
// BlockBytes long, or nil in metadata-only mode) instead of allocating a
// result — the allocation-free form of the hot-path read. found reports
// whether the block had ever been written; on a miss dst holds the
// deterministic fresh-fill pattern.
func (o *ORAM) ReadInto(addr uint64, dst []byte) (found bool, err error) {
	if err := o.checkAddr(addr); err != nil {
		return false, err
	}
	if _, out := o.checkedOut[addr]; out {
		return false, fmt.Errorf("core: address %d is checked out; use Store to return it", addr)
	}
	if err := o.checkData(dst); err != nil {
		return false, err
	}
	err = o.realAccess(addr, KindReal, func(uint32) error {
		found = o.stashReadInto(addr, dst)
		return nil
	})
	if err != nil {
		return false, err
	}
	return found, o.drainBackground()
}

// Update performs a read-modify-write in a single oblivious access: fn
// mutates the block's content in place. A block that was never written is
// materialized filled with FreshFill before fn runs (the hierarchical
// position map relies on this to distinguish unassigned labels). Update
// requires a payload-carrying ORAM (BlockBytes > 0).
func (o *ORAM) Update(addr uint64, fn func(data []byte)) error {
	if err := o.checkAddr(addr); err != nil {
		return err
	}
	if o.p.BlockBytes == 0 {
		return fmt.Errorf("core: Update requires payloads (metadata-only ORAM)")
	}
	if _, out := o.checkedOut[addr]; out {
		return fmt.Errorf("core: address %d is checked out; use Store to return it", addr)
	}
	err := o.realAccess(addr, KindReal, func(newLeaf uint32) error {
		// The hit/miss branch is public here: whether a block exists is
		// revealed to the caller anyway (see SECURITY.md on the residual
		// Update channel); the lookup itself still uses the fixed-length
		// scan in constant-time mode.
		if i := o.stashFind(addr); i >= 0 {
			fn(o.stash.entries[i].Data)
			return nil
		}
		d := o.stash.take()
		o.fillFresh(d)
		fn(d)
		o.stash.insert(addr, newLeaf, d)
		o.stats.BlocksInORAM++
		return nil
	})
	if err != nil {
		return err
	}
	return o.drainBackground()
}

// Load is the exclusive-ORAM read of Section 3.3.1: one oblivious access
// that removes the requested block — and, with super blocks enabled, every
// other resident member of its group (Section 3.2) — from the ORAM and
// hands them to the processor. found is false if addr was never written
// (data is then a fresh-filled buffer). The returned blocks are "checked
// out": they must come back via Store before they can be accessed again.
func (o *ORAM) Load(addr uint64) (data []byte, found bool, group []Slot, err error) {
	if err := o.checkAddr(addr); err != nil {
		return nil, false, nil, err
	}
	if _, out := o.checkedOut[addr]; out {
		return nil, false, nil, fmt.Errorf("core: address %d already checked out", addr)
	}
	lo, hi := o.groupRange(o.group(addr))
	err = o.realAccess(addr, KindReal, func(newLeaf uint32) error {
		// A single stable sweep (extractRange) removes every resident group
		// member; the earlier index-walk over removeAt's swap-delete could
		// skip entries when removal moved an unvisited group member into the
		// just-vacated index. The extracted payloads leave stash ownership
		// and travel to the processor with the checked-out blocks.
		o.stash.extractRange(lo, hi, func(e Slot) {
			o.checkedOut[e.Addr] = struct{}{}
			o.stats.BlocksInORAM--
			if e.Addr == addr {
				data, found = e.Data, true
			} else {
				group = append(group, e)
			}
		})
		return nil
	})
	if err != nil {
		return nil, false, nil, err
	}
	if !found {
		data = o.freshData()
		o.checkedOut[addr] = struct{}{}
	}
	return data, found, group, o.drainBackground()
}

// Store returns a checked-out block to the ORAM. Because the ORAM is
// exclusive it holds no stale copy, so the block goes straight into the
// stash with its group's current leaf — no path access (Section 3.3.1).
func (o *ORAM) Store(addr uint64, data []byte) error {
	if err := o.checkAddr(addr); err != nil {
		return err
	}
	if _, out := o.checkedOut[addr]; !out {
		return fmt.Errorf("core: address %d is not checked out; use Access for inclusive writes", addr)
	}
	if err := o.checkData(data); err != nil {
		return err
	}
	leaf, ok, err := o.pos.Peek(o.group(addr))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("core: no position for checked-out address %d", addr)
	}
	o.stash.addCopy(addr, leaf, data)
	delete(o.checkedOut, addr)
	o.stats.Stores++
	o.stats.BlocksInORAM++
	o.notePeak()
	if o.p.StashCapacity > 0 && !o.p.BackgroundEviction && o.stash.len() > o.p.StashCapacity {
		return ErrStashOverflow
	}
	return o.drainBackground()
}

// CheckedOut reports whether addr is currently held by the processor.
func (o *ORAM) CheckedOut(addr uint64) bool {
	_, ok := o.checkedOut[addr]
	return ok
}

// NeedsBackgroundEviction reports whether stash occupancy exceeds the
// C - Z(L+1) threshold. Hierarchies poll this to coordinate dummy requests
// across all their ORAMs (Section 3.1.1).
func (o *ORAM) NeedsBackgroundEviction() bool {
	return o.threshold >= 0 && o.stash.len() > o.threshold
}

// DummyAccess reads a uniformly random path and writes back as many blocks
// as possible, without remapping anything — indistinguishable from a real
// access to an observer, and guaranteed not to grow the stash.
func (o *ORAM) DummyAccess() error {
	leaf := o.leaves.Leaf(o.tree.NumLeaves())
	if err := o.pathAccess(leaf, KindDummy, nil); err != nil {
		return err
	}
	o.stats.DummyAccesses++
	return nil
}

// PaddingAccess reads a uniformly random path and writes back as many
// blocks as possible, exactly like DummyAccess, but counts as scheduler
// padding rather than background eviction. The sharded serving layer's
// padded batch mode issues these to fill the dummy slots of a fixed-shape
// batch schedule; keeping the counter separate lets Stats report the
// padding overhead (PaddingAccesses / RealAccesses) without conflating it
// with the stash-draining dummies of Section 3.1.
func (o *ORAM) PaddingAccess() error {
	leaf := o.leaves.Leaf(o.tree.NumLeaves())
	if err := o.pathAccess(leaf, KindPadding, nil); err != nil {
		return err
	}
	o.stats.PaddingAccesses++
	return nil
}

// realAccess is the shared body of Access/Update/Load and of insecure
// eviction accesses: position-map lookup + remap, then one path access
// during which all stash-resident group members are moved to the new leaf
// and fn applies the caller's block operation.
func (o *ORAM) realAccess(addr uint64, kind AccessKind, fn func(newLeaf uint32) error) error {
	g := o.group(addr)
	oldLeaf, newLeaf, err := o.pos.Access(g)
	if err != nil {
		return err
	}
	lo, hi := o.groupRange(g)
	err = o.pathAccess(uint64(oldLeaf), kind, func() error {
		if o.stash.ct {
			o.stash.ctRemapRange(lo, hi, newLeaf)
		} else {
			for i := range o.stash.entries {
				if e := &o.stash.entries[i]; e.Addr >= lo && e.Addr < hi {
					e.Leaf = newLeaf
				}
			}
		}
		return fn(newLeaf)
	})
	if err != nil {
		return err
	}
	if kind == KindEviction {
		o.stats.EvictionAccesses++
	} else {
		o.stats.RealAccesses++
	}
	if o.p.StashCapacity > 0 && !o.p.BackgroundEviction && o.stash.len() > o.p.StashCapacity {
		return ErrStashOverflow
	}
	return nil
}

// pathAccess is the staged protocol shared by every path access:
//
//	stage 1 (position lookup)      — done by the caller (realAccess)
//	stage 2 (path read)            — readPathIntoStash
//	stage 3 (decrypt/stash merge)  — readPathIntoStash
//	stage 4 (respond)              — mutate computes the caller's answer
//	stage 5 (write-back)           — writeBack
//
// In synchronous mode the stages run back to back, exactly steps 2 and 5
// of accessORAM. In staged mode (Params.DeferWriteBack) stage 5 computes
// the eviction placement eagerly — stash and position-map state never
// diverge from the synchronous protocol — but the write I/O is queued, so
// pathAccess (and with it the caller's response) returns without paying
// for serialization, re-encryption, authentication or the store write.
func (o *ORAM) pathAccess(leaf uint64, kind AccessKind, mutate func() error) error {
	if err := o.readPathIntoStash(leaf); err != nil {
		return err
	}
	if mutate != nil {
		if err := mutate(); err != nil {
			return err
		}
	}
	if err := o.writeBack(leaf); err != nil {
		return err
	}
	// Peak is the paper's notion of occupancy: blocks resident in the
	// stash after the access completes (Figure 3 samples exactly this).
	// Blocks streaming through during a path read/write are not counted.
	o.notePeak()
	if o.p.OnPathAccess != nil {
		o.p.OnPathAccess(leaf, kind)
	}
	if o.p.AfterAccess != nil {
		o.p.AfterAccess(o.stash.len(), kind)
	}
	return nil
}

// readPathIntoStash performs stages 2 and 3: read every real block on the
// path to leaf and merge it into the stash, in root-to-leaf bucket order.
// Buckets whose live content is still sitting in a pending write-back
// (the overlay) are not read from the store — their blocks are moved out
// of the pending entry instead, so the store's stale copies are never
// observed and every block keeps exactly one live home (stash, store, or
// one pending bucket). Because the merge order is the same whether a
// bucket came from the store or from the overlay, the stash — and with it
// every downstream eviction decision — evolves bit-identically to the
// synchronous protocol.
func (o *ORAM) readPathIntoStash(leaf uint64) error {
	var skip []bool
	if len(o.overlay) > 0 {
		skip = o.skipBuf
		for d := range skip {
			_, skip[d] = o.overlay[o.tree.PathBucket(leaf, d)]
		}
	}
	buckets, err := o.store.ReadPath(leaf, skip, o.readBuf)
	if err != nil {
		return err
	}
	o.readBuf = buckets // keep grown capacity for reuse
	for d, bucket := range buckets {
		if skip != nil && skip[d] {
			ref := o.overlay[o.tree.PathBucket(leaf, d)]
			pb := ref.entry.buckets[ref.level]
			for i := range pb {
				o.stash.addCopy(pb[i].Addr, pb[i].Leaf, pb[i].Data)
			}
			// The pending bucket's blocks now live in the stash; emptying
			// it keeps the eventual flush from writing duplicates. The
			// truncation keeps the entry-owned payload buffers in the
			// backing capacity for the next deferWriteBack copy. The
			// overlay keeps redirecting reads of this bucket to the (now
			// empty) pending content until this access's own write-back —
			// which covers the same bucket — supersedes it.
			ref.entry.buckets[ref.level] = pb[:0]
			continue
		}
		// Copy at the ownership boundary: the store's Slot.Data slices
		// alias its decode arena and are only valid until its next
		// operation; the stash copies them into its own recycled buffers.
		for i := range bucket {
			o.stash.addCopy(bucket[i].Addr, bucket[i].Leaf, bucket[i].Data)
		}
	}
	return nil
}

// writeBack performs stage 5: place each stash block as deep on the path
// to leaf as its own leaf allows (the ORAM "shuffle" of Section 2.1,
// step 5), then write the path — immediately in synchronous mode, or onto
// the deferred queue in staged mode.
func (o *ORAM) writeBack(leaf uint64) error {
	l := o.tree.LeafLevel()
	for d := range o.byDepth {
		o.byDepth[d] = o.byDepth[d][:0]
	}
	for i := range o.stash.entries {
		d := o.tree.DeepestLevel(uint64(o.stash.entries[i].Leaf), leaf)
		o.byDepth[d] = append(o.byDepth[d], i)
	}
	placed := o.placedBuf(o.stash.len())
	for d := range o.bucketBuf {
		o.bucketBuf[d] = o.bucketBuf[d][:0]
	}
	pool := o.poolBuf[:0]
	for d := l; d >= 0; d-- {
		pool = append(pool, o.byDepth[d]...)
		for len(o.bucketBuf[d]) < o.p.Z && len(pool) > 0 {
			idx := pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			o.bucketBuf[d] = append(o.bucketBuf[d], o.stash.entries[idx])
			placed[idx] = 1
		}
	}
	o.poolBuf = pool[:0]
	if o.p.DeferWriteBack {
		if err := o.deferWriteBack(leaf); err != nil {
			return err
		}
	} else if err := o.store.WritePath(leaf, o.bucketBuf); err != nil {
		return err
	}
	// The store serialized (or the pending entry copied) every placed
	// payload above, so the stash-owned buffers can go back on the freelist
	// before compaction drops their entries.
	for d := range o.bucketBuf {
		for i := range o.bucketBuf[d] {
			o.stash.recycle(o.bucketBuf[d][i].Data)
			o.bucketBuf[d][i] = Slot{}
		}
		o.bucketBuf[d] = o.bucketBuf[d][:0]
	}
	if o.stash.ct {
		o.stash.compactCT(placed)
	} else {
		o.stash.compact(placed)
	}
	return nil
}

// drainBackground applies the configured eviction policy until the stash is
// at or below the threshold.
func (o *ORAM) drainBackground() error {
	if !o.p.BackgroundEviction {
		return nil
	}
	switch o.p.Policy {
	case EvictBackgroundDummy:
		run := 0
		for o.NeedsBackgroundEviction() {
			if run >= o.maxDummy {
				return ErrLivelock
			}
			if err := o.DummyAccess(); err != nil {
				return err
			}
			run++
		}
		if run > o.stats.MaxDummyRun {
			o.stats.MaxDummyRun = run
		}
	case EvictInsecureRemap:
		run := 0
		for o.NeedsBackgroundEviction() {
			if run >= o.maxDummy {
				return ErrLivelock
			}
			// Remap a random stash block: this "escapes" congested paths
			// but correlates consecutive accessed paths — the leak the
			// Figure 4 attack detects.
			idx := uniformIndex(o.leaves, o.stash.len())
			addr := o.stash.entries[idx].Addr
			if err := o.realAccess(addr, KindEviction, func(uint32) error { return nil }); err != nil {
				return err
			}
			run++
		}
	default:
		return fmt.Errorf("core: unknown eviction policy %d", o.p.Policy)
	}
	return nil
}

// ---------- staged mode: deferred write-backs and background work ----------

// pendingPath is one computed-but-unwritten path write-back. Its buckets
// are authoritative for their tree positions until the flush: later reads
// of an overlaid bucket move the blocks out (emptying the slice), so a
// block never has two live copies.
type pendingPath struct {
	leaf    uint64
	buckets [][]Slot
}

// overlayRef points a flat bucket index at the pending entry (and level
// within it) holding the bucket's live content.
type overlayRef struct {
	entry *pendingPath
	level int
}

// deferredWriter lets a store distinguish write-backs issued from the
// deferred FIFO — the modeled memory controller's write buffer — from
// inline stage-5 writes. TimedStore implements it to tag the charge;
// stores that don't care (every plain PathStore) simply receive WritePath.
type deferredWriter interface {
	WritePathDeferred(leaf uint64, buckets [][]Slot) error
}

// BackgroundWork reports what one StepBackground call did.
type BackgroundWork int

const (
	// BgNone: no deferred write-backs pending and the stash is already at
	// or below the idle low-water mark.
	BgNone BackgroundWork = iota
	// BgWriteBack: one pending path write-back was completed.
	BgWriteBack
	// BgEviction: one background-eviction dummy access was issued.
	BgEviction
)

// deferWriteBack queues the just-computed eviction (o.bucketBuf) for the
// path to leaf instead of writing it. If the queue is full the oldest
// entry is completed first, bounding both queue length and pinned memory.
// Entries are recycled through a freelist (the staged hot path must not
// generate steady-state garbage the synchronous path does not).
func (o *ORAM) deferWriteBack(leaf uint64) error {
	for o.pendingLen() >= o.maxDefer {
		if err := o.completeOldestWriteBack(); err != nil {
			return err
		}
	}
	var e *pendingPath
	if n := len(o.freePending); n > 0 {
		e = o.freePending[n-1]
		o.freePending[n-1] = nil
		o.freePending = o.freePending[:n-1]
		e.leaf = leaf
	} else {
		e = &pendingPath{leaf: leaf, buckets: make([][]Slot, len(o.bucketBuf))}
	}
	// Deep-copy the eviction into entry-owned payload buffers: the slots in
	// bucketBuf alias stash-owned buffers that writeBack recycles as soon as
	// this call returns. appendSlotCopy reuses buffers retained in the
	// bucket's backing capacity, so the steady state copies without
	// allocating.
	for d, b := range o.bucketBuf {
		dst := e.buckets[d][:0]
		for i := range b {
			dst = appendSlotCopy(dst, b[i], o.p.BlockBytes)
		}
		e.buckets[d] = dst
	}
	o.pending = append(o.pending, e)
	for d := range e.buckets {
		o.overlay[o.tree.PathBucket(leaf, d)] = overlayRef{entry: e, level: d}
	}
	o.stats.DeferredWriteBacks++
	if n := o.pendingLen(); n > o.stats.PendingWriteBackPeak {
		o.stats.PendingWriteBackPeak = n
	}
	return nil
}

// completeOldestWriteBack pops the FIFO head and performs its store write.
// Overlay entries that still point at the flushed path are released: the
// store copy is fresh from here on. (An overlay entry superseded by a
// later pending path stays, so reads keep seeing the newest content.)
func (o *ORAM) completeOldestWriteBack() error {
	e := o.pending[o.pendingHead]
	var err error
	if o.deferredStore != nil {
		err = o.deferredStore.WritePathDeferred(e.leaf, e.buckets)
	} else {
		err = o.store.WritePath(e.leaf, e.buckets)
	}
	if err != nil {
		return err
	}
	// Ring pop: advance the head instead of reslicing, so the backing array
	// is reused instead of regrown; reset once the ring empties.
	o.pending[o.pendingHead] = nil
	o.pendingHead++
	if o.pendingHead == len(o.pending) {
		o.pending = o.pending[:0]
		o.pendingHead = 0
	}
	for d := range e.buckets {
		b := o.tree.PathBucket(e.leaf, d)
		if ref, ok := o.overlay[b]; ok && ref.entry == e {
			delete(o.overlay, b)
		}
	}
	// Recycle: truncate each bucket but keep the entry-owned payload
	// buffers in the backing capacity — appendSlotCopy reuses them on the
	// next deferWriteBack, so the staged steady state allocates nothing.
	for d := range e.buckets {
		e.buckets[d] = e.buckets[d][:0]
	}
	o.freePending = append(o.freePending, e)
	return nil
}

// StepBackground performs one unit of deferred work: completing the oldest
// pending write-back, or — when the queue is empty, allowEviction is set
// and the stash sits above the idle low-water mark — issuing one
// background-eviction dummy access. Shard workers call it in a loop during
// idle queue time; BgNone means there is nothing useful left to do.
//
// Idle eviction drains to half the inline threshold (rather than the
// threshold itself) so that a burst of subsequent accesses has headroom
// before any of them must pay for inline draining. The schedule on which
// these dummies are issued depends only on queue occupancy and stash
// occupancy — both functions of the access *count*, never of addresses —
// so the background path sequence leaks nothing beyond uniformly random
// leaves (see SECURITY.md).
func (o *ORAM) StepBackground(allowEviction bool) (BackgroundWork, error) {
	if o.pendingLen() > 0 {
		return BgWriteBack, o.completeOldestWriteBack()
	}
	// Idle eviction exists only for the paper's secure scheme: under
	// EvictInsecureRemap (the Figure 4 attack study) speculative dummy
	// draining would mix two eviction schemes into the observed trace and
	// corrupt the study, so that policy drains inline only.
	if allowEviction && o.p.BackgroundEviction && o.p.Policy == EvictBackgroundDummy &&
		o.threshold >= 0 && o.stash.len() > o.threshold/2 {
		if err := o.DummyAccess(); err != nil {
			return BgEviction, err
		}
		o.stats.IdleEvictions++
		return BgEviction, nil
	}
	return BgNone, nil
}

// Flush completes every pending write-back and fully drains background
// eviction, leaving the ORAM in a state a synchronous engine could have
// reached: no deferred I/O, stash at or below the eviction threshold.
func (o *ORAM) Flush() error {
	for o.pendingLen() > 0 {
		if err := o.completeOldestWriteBack(); err != nil {
			return err
		}
	}
	if o.p.BackgroundEviction {
		// Inline draining issues dummy accesses whose write-backs are
		// themselves deferred in staged mode; flush those too.
		if err := o.drainBackground(); err != nil {
			return err
		}
		for o.pendingLen() > 0 {
			if err := o.completeOldestWriteBack(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (o *ORAM) groupRange(g uint64) (lo, hi uint64) {
	s := uint64(o.p.GroupSize())
	lo = g * s
	hi = lo + s
	if hi > o.p.Blocks {
		hi = o.p.Blocks
	}
	return lo, hi
}

func (o *ORAM) freshData() []byte {
	if o.p.BlockBytes == 0 {
		return nil
	}
	d := make([]byte, o.p.BlockBytes)
	if o.p.FreshFill != 0 {
		for i := range d {
			d[i] = o.p.FreshFill
		}
	}
	return d
}

func (o *ORAM) checkData(data []byte) error {
	if o.p.BlockBytes == 0 {
		return nil // metadata-only: payloads ignored
	}
	if len(data) != o.p.BlockBytes {
		return fmt.Errorf("core: data length %d, want block size %d", len(data), o.p.BlockBytes)
	}
	return nil
}

func (o *ORAM) notePeak() {
	if n := o.stash.len(); n > o.stats.StashPeak {
		o.stats.StashPeak = n
	}
}

// placedBuf returns a zeroed placement mask of length n, reusing prior
// capacity. Mask form (0/1 ints, not bools) so the constant-time compaction
// can consume it without branching on its values.
func (o *ORAM) placedBuf(n int) []int {
	if cap(o.placed) < n {
		o.placed = make([]int, n)
	}
	o.placed = o.placed[:n]
	for i := range o.placed {
		o.placed[i] = 0
	}
	return o.placed
}

// stashFind dispatches to the fixed-window scan in constant-time mode.
func (o *ORAM) stashFind(addr uint64) int {
	if o.stash.ct {
		return o.stash.ctFind(addr)
	}
	return o.stash.find(addr)
}

// stashReadInto writes the stash-resident content of addr into dst, or the
// fresh-fill pattern on a miss, and reports whether the block existed. In
// constant-time mode dst is prefilled and then masked-copied over, so hit
// and miss execute identically.
func (o *ORAM) stashReadInto(addr uint64, dst []byte) bool {
	if o.stash.ct {
		o.fillFresh(dst)
		return o.stash.ctReadInto(addr, dst) == 1
	}
	if i := o.stash.find(addr); i >= 0 {
		copy(dst, o.stash.entries[i].Data)
		return true
	}
	o.fillFresh(dst)
	return false
}

// stashWrite replaces the content of addr in the stash, inserting a new
// entry (mapped to leaf) if the block is absent. Occupancy changes are
// public, so the append-on-miss branch is fine in constant-time mode; the
// lookup itself is the fixed-length masked scan there.
func (o *ORAM) stashWrite(addr uint64, leaf uint32, data []byte) {
	if o.stash.ct {
		if o.stash.ctWriteData(addr, data) == 0 {
			o.stash.addCopy(addr, leaf, data)
			o.stats.BlocksInORAM++
		}
		return
	}
	if i := o.stash.find(addr); i >= 0 {
		copy(o.stash.entries[i].Data, data)
		return
	}
	o.stash.addCopy(addr, leaf, data)
	o.stats.BlocksInORAM++
}

// fillFresh sets every byte of d to the fresh-fill pattern.
func (o *ORAM) fillFresh(d []byte) {
	if o.p.FreshFill == 0 {
		for i := range d {
			d[i] = 0
		}
		return
	}
	for i := range d {
		d[i] = o.p.FreshFill
	}
}

// pendingLen returns the live length of the deferred write-back ring.
func (o *ORAM) pendingLen() int { return len(o.pending) - o.pendingHead }

// appendSlotCopy appends a deep copy of s to dst, reusing a payload buffer
// retained in dst's backing capacity when one is there (the pending-entry
// recycling protocol: truncation keeps the buffers, this put-back reuses
// them).
func appendSlotCopy(dst []Slot, s Slot, blockBytes int) []Slot {
	var buf []byte
	if n := len(dst); n < cap(dst) {
		buf = dst[: n+1 : cap(dst)][n].Data
	}
	if s.Data != nil {
		if cap(buf) < blockBytes {
			buf = make([]byte, blockBytes)
		}
		buf = buf[:blockBytes]
		copy(buf, s.Data)
	} else {
		buf = nil
	}
	return append(dst, Slot{Addr: s.Addr, Leaf: s.Leaf, Data: buf})
}

// uniformIndex draws a uniform index in [0, n) from a power-of-two
// LeafSource by rejection sampling.
func uniformIndex(src LeafSource, n int) int {
	if n <= 1 {
		return 0
	}
	// next power of two >= n
	p := uint64(1)
	for p < uint64(n) {
		p <<= 1
	}
	for {
		if v := src.Leaf(p); v < uint64(n) {
			return int(v)
		}
	}
}
