package core

import (
	"errors"
	"fmt"
)

// AccessKind tags the paths an observer sees (Params.OnPathAccess).
type AccessKind int

const (
	// KindReal is a program-initiated access.
	KindReal AccessKind = iota
	// KindDummy is a background-eviction dummy access (Section 3.1.1).
	KindDummy
	// KindEviction is an insecure block-remapping eviction access
	// (Section 3.1.3); it exists only for the Figure 4 attack study.
	KindEviction
	// KindPadding is a scheduler-issued padding access: a dummy path
	// access injected by the sharded serving layer to give a batch a
	// fixed, input-independent shard schedule (see Sharded's padded batch
	// mode and SECURITY.md). On the memory bus it is indistinguishable
	// from every other kind; the tag exists so tests and stats can
	// account for the padding overhead separately from background
	// eviction.
	KindPadding
)

// ErrStashOverflow reports Path ORAM failure: the stash exceeded its
// capacity with background eviction disabled (Section 2.5.1).
var ErrStashOverflow = errors.New("core: stash overflow (Path ORAM failure)")

// Access performs the paper's accessORAM(u, op, b'): one oblivious path
// access that reads or writes the block at addr. For OpRead it returns a
// copy of the block's content (fresh-fill bytes if the block was never
// written; the paper returns nil here, we return the deterministic fill for
// convenience). For OpWrite, data must be exactly BlockBytes long (or nil
// in metadata-only mode) and is copied in.
func (o *ORAM) Access(addr uint64, op Op, data []byte) ([]byte, error) {
	if err := o.checkAddr(addr); err != nil {
		return nil, err
	}
	if _, out := o.checkedOut[addr]; out {
		return nil, fmt.Errorf("core: address %d is checked out; use Store to return it", addr)
	}
	if op == OpWrite {
		if err := o.checkData(data); err != nil {
			return nil, err
		}
	}
	var result []byte
	err := o.realAccess(addr, KindReal, func(newLeaf uint32) error {
		i := o.stash.find(addr)
		switch op {
		case OpRead:
			if i >= 0 {
				result = append([]byte(nil), o.stash.entries[i].Data...)
			} else {
				result = o.freshData()
			}
		case OpWrite:
			if i >= 0 {
				o.stash.entries[i].Data = copyData(o.stash.entries[i].Data, data)
			} else {
				o.stash.add(Slot{Addr: addr, Leaf: newLeaf, Data: copyData(nil, data)})
				o.stats.BlocksInORAM++
			}
		default:
			return fmt.Errorf("core: unknown op %d", op)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return result, o.drainBackground()
}

// Update performs a read-modify-write in a single oblivious access: fn
// mutates the block's content in place. A block that was never written is
// materialized filled with FreshFill before fn runs (the hierarchical
// position map relies on this to distinguish unassigned labels). Update
// requires a payload-carrying ORAM (BlockBytes > 0).
func (o *ORAM) Update(addr uint64, fn func(data []byte)) error {
	if err := o.checkAddr(addr); err != nil {
		return err
	}
	if o.p.BlockBytes == 0 {
		return fmt.Errorf("core: Update requires payloads (metadata-only ORAM)")
	}
	if _, out := o.checkedOut[addr]; out {
		return fmt.Errorf("core: address %d is checked out; use Store to return it", addr)
	}
	err := o.realAccess(addr, KindReal, func(newLeaf uint32) error {
		if i := o.stash.find(addr); i >= 0 {
			fn(o.stash.entries[i].Data)
			return nil
		}
		d := o.freshData()
		fn(d)
		o.stash.add(Slot{Addr: addr, Leaf: newLeaf, Data: d})
		o.stats.BlocksInORAM++
		return nil
	})
	if err != nil {
		return err
	}
	return o.drainBackground()
}

// Load is the exclusive-ORAM read of Section 3.3.1: one oblivious access
// that removes the requested block — and, with super blocks enabled, every
// other resident member of its group (Section 3.2) — from the ORAM and
// hands them to the processor. found is false if addr was never written
// (data is then a fresh-filled buffer). The returned blocks are "checked
// out": they must come back via Store before they can be accessed again.
func (o *ORAM) Load(addr uint64) (data []byte, found bool, group []Slot, err error) {
	if err := o.checkAddr(addr); err != nil {
		return nil, false, nil, err
	}
	if _, out := o.checkedOut[addr]; out {
		return nil, false, nil, fmt.Errorf("core: address %d already checked out", addr)
	}
	lo, hi := o.groupRange(o.group(addr))
	err = o.realAccess(addr, KindReal, func(newLeaf uint32) error {
		for i := 0; i < o.stash.len(); {
			e := o.stash.entries[i]
			if e.Addr < lo || e.Addr >= hi {
				i++
				continue
			}
			o.stash.removeAt(i)
			o.checkedOut[e.Addr] = struct{}{}
			o.stats.BlocksInORAM--
			if e.Addr == addr {
				data, found = e.Data, true
			} else {
				group = append(group, e)
			}
		}
		return nil
	})
	if err != nil {
		return nil, false, nil, err
	}
	if !found {
		data = o.freshData()
		o.checkedOut[addr] = struct{}{}
	}
	return data, found, group, o.drainBackground()
}

// Store returns a checked-out block to the ORAM. Because the ORAM is
// exclusive it holds no stale copy, so the block goes straight into the
// stash with its group's current leaf — no path access (Section 3.3.1).
func (o *ORAM) Store(addr uint64, data []byte) error {
	if err := o.checkAddr(addr); err != nil {
		return err
	}
	if _, out := o.checkedOut[addr]; !out {
		return fmt.Errorf("core: address %d is not checked out; use Access for inclusive writes", addr)
	}
	if err := o.checkData(data); err != nil {
		return err
	}
	leaf, ok, err := o.pos.Peek(o.group(addr))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("core: no position for checked-out address %d", addr)
	}
	o.stash.add(Slot{Addr: addr, Leaf: leaf, Data: copyData(nil, data)})
	delete(o.checkedOut, addr)
	o.stats.Stores++
	o.stats.BlocksInORAM++
	o.notePeak()
	if o.p.StashCapacity > 0 && !o.p.BackgroundEviction && o.stash.len() > o.p.StashCapacity {
		return ErrStashOverflow
	}
	return o.drainBackground()
}

// CheckedOut reports whether addr is currently held by the processor.
func (o *ORAM) CheckedOut(addr uint64) bool {
	_, ok := o.checkedOut[addr]
	return ok
}

// NeedsBackgroundEviction reports whether stash occupancy exceeds the
// C - Z(L+1) threshold. Hierarchies poll this to coordinate dummy requests
// across all their ORAMs (Section 3.1.1).
func (o *ORAM) NeedsBackgroundEviction() bool {
	return o.threshold >= 0 && o.stash.len() > o.threshold
}

// DummyAccess reads a uniformly random path and writes back as many blocks
// as possible, without remapping anything — indistinguishable from a real
// access to an observer, and guaranteed not to grow the stash.
func (o *ORAM) DummyAccess() error {
	leaf := o.leaves.Leaf(o.tree.NumLeaves())
	if err := o.pathAccess(leaf, KindDummy, nil); err != nil {
		return err
	}
	o.stats.DummyAccesses++
	return nil
}

// PaddingAccess reads a uniformly random path and writes back as many
// blocks as possible, exactly like DummyAccess, but counts as scheduler
// padding rather than background eviction. The sharded serving layer's
// padded batch mode issues these to fill the dummy slots of a fixed-shape
// batch schedule; keeping the counter separate lets Stats report the
// padding overhead (PaddingAccesses / RealAccesses) without conflating it
// with the stash-draining dummies of Section 3.1.
func (o *ORAM) PaddingAccess() error {
	leaf := o.leaves.Leaf(o.tree.NumLeaves())
	if err := o.pathAccess(leaf, KindPadding, nil); err != nil {
		return err
	}
	o.stats.PaddingAccesses++
	return nil
}

// realAccess is the shared body of Access/Update/Load and of insecure
// eviction accesses: position-map lookup + remap, then one path access
// during which all stash-resident group members are moved to the new leaf
// and fn applies the caller's block operation.
func (o *ORAM) realAccess(addr uint64, kind AccessKind, fn func(newLeaf uint32) error) error {
	g := o.group(addr)
	oldLeaf, newLeaf, err := o.pos.Access(g)
	if err != nil {
		return err
	}
	lo, hi := o.groupRange(g)
	err = o.pathAccess(uint64(oldLeaf), kind, func() error {
		for i := range o.stash.entries {
			if e := &o.stash.entries[i]; e.Addr >= lo && e.Addr < hi {
				e.Leaf = newLeaf
			}
		}
		return fn(newLeaf)
	})
	if err != nil {
		return err
	}
	if kind == KindEviction {
		o.stats.EvictionAccesses++
	} else {
		o.stats.RealAccesses++
	}
	if o.p.StashCapacity > 0 && !o.p.BackgroundEviction && o.stash.len() > o.p.StashCapacity {
		return ErrStashOverflow
	}
	return nil
}

// pathAccess implements steps 2 and 5 of accessORAM: read the whole path
// into the stash, run the mutation, then evict greedily back onto the same
// path.
func (o *ORAM) pathAccess(leaf uint64, kind AccessKind, mutate func() error) error {
	o.slotBuf = o.slotBuf[:0]
	slots, err := o.store.ReadPath(leaf, o.slotBuf)
	if err != nil {
		return err
	}
	o.slotBuf = slots // keep grown capacity for reuse
	for _, sl := range slots {
		o.stash.add(sl)
	}
	if mutate != nil {
		if err := mutate(); err != nil {
			return err
		}
	}
	if err := o.evictTo(leaf); err != nil {
		return err
	}
	// Peak is the paper's notion of occupancy: blocks resident in the
	// stash after the access completes (Figure 3 samples exactly this).
	// Blocks streaming through during a path read/write are not counted.
	o.notePeak()
	if o.p.OnPathAccess != nil {
		o.p.OnPathAccess(leaf, kind)
	}
	if o.p.AfterAccess != nil {
		o.p.AfterAccess(o.stash.len(), kind)
	}
	return nil
}

// evictTo writes back the path to leaf, placing each stash block as deep as
// its own leaf allows (the ORAM "shuffle" of Section 2.1, step 5).
func (o *ORAM) evictTo(leaf uint64) error {
	l := o.tree.LeafLevel()
	for d := range o.byDepth {
		o.byDepth[d] = o.byDepth[d][:0]
	}
	for i := range o.stash.entries {
		d := o.tree.DeepestLevel(uint64(o.stash.entries[i].Leaf), leaf)
		o.byDepth[d] = append(o.byDepth[d], i)
	}
	placed := o.placedBuf(o.stash.len())
	for d := range o.bucketBuf {
		o.bucketBuf[d] = o.bucketBuf[d][:0]
	}
	pool := o.poolBuf[:0]
	for d := l; d >= 0; d-- {
		pool = append(pool, o.byDepth[d]...)
		for len(o.bucketBuf[d]) < o.p.Z && len(pool) > 0 {
			idx := pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			o.bucketBuf[d] = append(o.bucketBuf[d], o.stash.entries[idx])
			placed[idx] = true
		}
	}
	o.poolBuf = pool[:0]
	if err := o.store.WritePath(leaf, o.bucketBuf); err != nil {
		return err
	}
	o.stash.compact(placed)
	return nil
}

// drainBackground applies the configured eviction policy until the stash is
// at or below the threshold.
func (o *ORAM) drainBackground() error {
	if !o.p.BackgroundEviction {
		return nil
	}
	switch o.p.Policy {
	case EvictBackgroundDummy:
		run := 0
		for o.NeedsBackgroundEviction() {
			if run >= o.maxDummy {
				return ErrLivelock
			}
			if err := o.DummyAccess(); err != nil {
				return err
			}
			run++
		}
		if run > o.stats.MaxDummyRun {
			o.stats.MaxDummyRun = run
		}
	case EvictInsecureRemap:
		run := 0
		for o.NeedsBackgroundEviction() {
			if run >= o.maxDummy {
				return ErrLivelock
			}
			// Remap a random stash block: this "escapes" congested paths
			// but correlates consecutive accessed paths — the leak the
			// Figure 4 attack detects.
			idx := uniformIndex(o.leaves, o.stash.len())
			addr := o.stash.entries[idx].Addr
			if err := o.realAccess(addr, KindEviction, func(uint32) error { return nil }); err != nil {
				return err
			}
			run++
		}
	default:
		return fmt.Errorf("core: unknown eviction policy %d", o.p.Policy)
	}
	return nil
}

func (o *ORAM) groupRange(g uint64) (lo, hi uint64) {
	s := uint64(o.p.GroupSize())
	lo = g * s
	hi = lo + s
	if hi > o.p.Blocks {
		hi = o.p.Blocks
	}
	return lo, hi
}

func (o *ORAM) freshData() []byte {
	if o.p.BlockBytes == 0 {
		return nil
	}
	d := make([]byte, o.p.BlockBytes)
	if o.p.FreshFill != 0 {
		for i := range d {
			d[i] = o.p.FreshFill
		}
	}
	return d
}

func (o *ORAM) checkData(data []byte) error {
	if o.p.BlockBytes == 0 {
		return nil // metadata-only: payloads ignored
	}
	if len(data) != o.p.BlockBytes {
		return fmt.Errorf("core: data length %d, want block size %d", len(data), o.p.BlockBytes)
	}
	return nil
}

func (o *ORAM) notePeak() {
	if n := o.stash.len(); n > o.stats.StashPeak {
		o.stats.StashPeak = n
	}
}

// placedBuf returns a zeroed []bool of length n, reusing prior capacity.
func (o *ORAM) placedBuf(n int) []bool {
	if cap(o.placed) < n {
		o.placed = make([]bool, n)
	}
	o.placed = o.placed[:n]
	for i := range o.placed {
		o.placed[i] = false
	}
	return o.placed
}

// copyData copies src into dst (reusing dst's storage when possible).
// A nil src yields nil, preserving metadata-only mode.
func copyData(dst, src []byte) []byte {
	if src == nil {
		return nil
	}
	if cap(dst) < len(src) {
		dst = make([]byte, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

// uniformIndex draws a uniform index in [0, n) from a power-of-two
// LeafSource by rejection sampling.
func uniformIndex(src LeafSource, n int) int {
	if n <= 1 {
		return 0
	}
	// next power of two >= n
	p := uint64(1)
	for p < uint64(n) {
		p <<= 1
	}
	for {
		if v := src.Leaf(p); v < uint64(n) {
			return int(v)
		}
	}
}
