package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/testutil"
	"repro/internal/treemath"
)

// These tests check the statistical heart of the security argument
// (Section 3.1.2): the observed path sequence is uniform over leaves and
// independent of the program's access pattern, with background eviction
// enabled.

// observeLeaves runs a workload and returns the per-leaf histogram of
// observed paths plus the lag-1 mean CPL.
func observeLeaves(t *testing.T, workload func(i int) uint64, accesses int, seed int64) (counts []uint64, meanCPL float64) {
	t.Helper()
	const leafLevel = 6
	tree := treemath.New(leafLevel)
	counts = make([]uint64, tree.NumLeaves())
	var prev uint64
	var have bool
	var cplSum float64
	var cplN int
	p := Params{
		LeafLevel: leafLevel, Z: 4, Blocks: 192,
		StashCapacity:      100,
		BackgroundEviction: true,
		OnPathAccess: func(leaf uint64, _ AccessKind) {
			counts[leaf]++
			if have {
				cplSum += float64(tree.CommonPathLength(prev, leaf))
				cplN++
			}
			prev, have = leaf, true
		},
	}
	o, _, _ := newTestORAM(t, p, seed)
	for i := 0; i < accesses; i++ {
		if _, err := o.Access(workload(i), OpWrite, nil); err != nil {
			t.Fatal(err)
		}
	}
	return counts, cplSum / float64(cplN)
}

func TestObservedPathsUniform(t *testing.T) {
	// 64 leaves -> 63 degrees of freedom; the 99.9% chi-square quantile is
	// ~103. Use a generous 120 to keep the test robust across seeds while
	// still catching any real bias.
	workloads := map[string]func(i int) uint64{
		"scan":    func(i int) uint64 { return uint64(i) % 192 },
		"hammer":  func(i int) uint64 { return 7 },
		"strided": func(i int) uint64 { return uint64(i*17) % 192 },
	}
	for name, w := range workloads {
		name, w := name, w
		t.Run(name, func(t *testing.T) {
			counts, _ := observeLeaves(t, w, 6000, 9001)
			if x2 := testutil.ChiSquare(counts); x2 > testutil.UniformThreshold(len(counts)) {
				t.Errorf("observed leaf distribution not uniform: chi2=%.1f (63 dof)", x2)
			}
		})
	}
}

func TestObservedPathsIndependent(t *testing.T) {
	// Lag-1 independence: mean CPL of consecutive paths must match the
	// uniform-pair expectation 2 - 1/2^L regardless of workload.
	expect := treemath.New(6).ExpectedCPL()
	for i, w := range []func(i int) uint64{
		func(i int) uint64 { return uint64(i) % 192 },
		func(i int) uint64 { return 7 },
	} {
		_, mean := observeLeaves(t, w, 8000, int64(9100+i))
		if math.Abs(mean-expect) > 0.04 {
			t.Errorf("workload %d: lag-1 mean CPL %.4f vs expected %.4f", i, mean, expect)
		}
	}
}

func TestWorkloadsIndistinguishableByLeafCounts(t *testing.T) {
	// Two very different programs produce leaf histograms whose
	// difference is within sampling noise: compare via a two-sample
	// chi-square-like statistic.
	a, _ := observeLeaves(t, func(i int) uint64 { return uint64(i) % 192 }, 6000, 9200)
	b, _ := observeLeaves(t, func(i int) uint64 { return 7 }, 6000, 9300)
	var na, nb float64
	for i := range a {
		na += float64(a[i])
		nb += float64(b[i])
	}
	var x2 float64
	for i := range a {
		pa := float64(a[i]) / na
		pb := float64(b[i]) / nb
		avg := (pa + pb) / 2
		if avg == 0 {
			continue
		}
		d := pa - pb
		x2 += d * d / avg
	}
	// Scale by the harmonic sample size; the statistic is ~chi2(63).
	x2 *= 2 * na * nb / (na + nb)
	if x2 > 130 {
		t.Errorf("scan and hammer leaf distributions distinguishable: stat=%.1f", x2)
	}
}

func TestRemapIsFreshUniform(t *testing.T) {
	// Every access assigns a fresh uniform leaf: track the leaves
	// assigned to one hammered block across accesses.
	p := Params{
		LeafLevel: 6, Z: 4, Blocks: 64,
		StashCapacity: 100, BackgroundEviction: true,
	}
	o, _, pos := newTestORAM(t, p, 9400)
	counts := make([]uint64, 64)
	for i := 0; i < 12800; i++ {
		if _, err := o.Access(3, OpWrite, nil); err != nil {
			t.Fatal(err)
		}
		leaf, ok, err := pos.Peek(3)
		if err != nil || !ok {
			t.Fatal("no position after access")
		}
		counts[leaf]++
	}
	if x2 := testutil.ChiSquare(counts); x2 > testutil.UniformThreshold(len(counts)) {
		t.Errorf("remapped leaves not uniform: chi2=%.1f", x2)
	}
}

func TestCiphertextIndistinguishabilityOfOps(t *testing.T) {
	// Reads and writes must be externally identical: same number of path
	// accesses, same bucket traffic. Compare two ORAMs fed pure reads vs
	// pure writes over the same addresses and seeds.
	run := func(write bool) (paths uint64) {
		p := Params{
			LeafLevel: 5, Z: 4, Blocks: 64,
			StashCapacity: 100, BackgroundEviction: true,
			OnPathAccess: func(uint64, AccessKind) { paths++ },
		}
		o, _, _ := newTestORAM(t, p, 9500)
		rng := rand.New(rand.NewSource(9501))
		for i := 0; i < 500; i++ {
			addr := rng.Uint64() % 64
			var err error
			if write {
				_, err = o.Access(addr, OpWrite, nil)
			} else {
				_, err = o.Access(addr, OpRead, nil)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return paths
	}
	if r, w := run(false), run(true); r != w {
		t.Errorf("reads produced %d paths, writes %d — externally distinguishable", r, w)
	}
}

func ExampleORAM_noLeakage() {
	// Not a runnable doc example (internal package); kept as a named test
	// helper illustrating the adversary's view.
	fmt.Println("see TestObservedPathsUniform")
	// Output: see TestObservedPathsUniform
}
