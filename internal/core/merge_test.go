package core

import "testing"

func TestStatsMerge(t *testing.T) {
	a := Stats{
		RealAccesses: 10, DummyAccesses: 4, PaddingAccesses: 8, EvictionAccesses: 1,
		Stores: 2, StashPeak: 30, BlocksInORAM: 100, MaxDummyRun: 3,
	}
	b := Stats{
		RealAccesses: 5, DummyAccesses: 6, PaddingAccesses: 2, EvictionAccesses: 0,
		Stores: 1, StashPeak: 25, BlocksInORAM: 50, MaxDummyRun: 7,
	}
	m := a.Merge(b)
	want := Stats{
		RealAccesses: 15, DummyAccesses: 10, PaddingAccesses: 10, EvictionAccesses: 1,
		Stores: 3, StashPeak: 30, BlocksInORAM: 150, MaxDummyRun: 7,
	}
	if m != want {
		t.Errorf("Merge = %+v, want %+v", m, want)
	}
	if r := b.Merge(a); r != want {
		t.Errorf("Merge is not commutative: %+v vs %+v", r, want)
	}
	if z := (Stats{}).Merge(Stats{}); z != (Stats{}) {
		t.Errorf("zero merge = %+v", z)
	}
	// Merging a zero value is the identity.
	if id := a.Merge(Stats{}); id != a {
		t.Errorf("identity merge = %+v, want %+v", id, a)
	}
}

// ResetStats must preserve the BlocksInORAM occupancy gauge: zeroing it
// would let the next Load of a resident block underflow the counter.
func TestResetStatsPreservesOccupancy(t *testing.T) {
	p := Params{LeafLevel: 4, Z: 4, Blocks: 32, StashCapacity: 60, BackgroundEviction: true}
	o, _, _ := newTestORAM(t, p, 11)
	if _, err := o.Access(1, OpWrite, nil); err != nil {
		t.Fatal(err)
	}
	o.ResetStats()
	st := o.Stats()
	if st.BlocksInORAM != 1 {
		t.Fatalf("BlocksInORAM after reset = %d, want 1", st.BlocksInORAM)
	}
	if st.RealAccesses != 0 || st.StashPeak != 0 {
		t.Errorf("counters not cleared: %+v", st)
	}
	if _, _, _, err := o.Load(1); err != nil {
		t.Fatal(err)
	}
	if got := o.Stats().BlocksInORAM; got != 0 {
		t.Errorf("BlocksInORAM after Load = %d, want 0 (underflow if huge)", got)
	}
}
