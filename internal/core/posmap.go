package core

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand"
)

// LeafSource supplies uniformly random leaf labels. The ORAM's security
// rests on these draws being uniform and independent (Section 3.1.2).
type LeafSource interface {
	// Leaf returns a uniform label in [0, n). n is always a power of two.
	Leaf(n uint64) uint64
}

// mathLeafSource draws from a seeded math/rand generator; experiments use
// it for reproducibility.
type mathLeafSource struct{ rng *rand.Rand }

// NewMathLeafSource returns a deterministic LeafSource for simulations.
func NewMathLeafSource(rng *rand.Rand) LeafSource { return mathLeafSource{rng} }

func (s mathLeafSource) Leaf(n uint64) uint64 { return s.rng.Uint64() & (n - 1) }

// cryptoLeafSource draws from crypto/rand in 8-byte batches. It is the
// default for the public library so real deployments get cryptographic
// randomness.
type cryptoLeafSource struct {
	buf  [512]byte
	next int
}

// NewCryptoLeafSource returns a LeafSource backed by crypto/rand.
func NewCryptoLeafSource() LeafSource { return &cryptoLeafSource{next: 512} }

func (s *cryptoLeafSource) Leaf(n uint64) uint64 {
	if s.next+8 > len(s.buf) {
		if _, err := crand.Read(s.buf[:]); err != nil {
			// crypto/rand never fails on supported platforms; if it does,
			// the process has no business continuing to emit "random" paths.
			panic(fmt.Sprintf("core: crypto/rand failed: %v", err))
		}
		s.next = 0
	}
	v := binary.LittleEndian.Uint64(s.buf[s.next:])
	s.next += 8
	return v & (n - 1)
}

// PositionMap associates each super block (group of adjacent program
// addresses, Section 3.2) with its current leaf.
type PositionMap interface {
	// Access returns the group's current leaf and atomically remaps the
	// group to a fresh uniformly random leaf (step 4 of the paper's
	// accessORAM). For a group that was never mapped, the "current" leaf
	// is a fresh uniform draw, matching the paper's initialization rule.
	Access(group uint64) (old, new uint32, err error)
	// Peek returns the current leaf without remapping, used by the
	// exclusive Store path, which inserts into the stash without a path
	// access (Section 3.3.1). ok is false if the group was never mapped.
	Peek(group uint64) (leaf uint32, ok bool, err error)
}

// OnChipPositionMap is the flat N-entry lookup table of Section 2.1: one
// label per group, held "on chip".
type OnChipPositionMap struct {
	leaves    []uint32
	numLeaves uint64
	src       LeafSource
}

// NewOnChipPositionMap builds a position map for the given number of groups
// over a tree with numLeaves leaves.
func NewOnChipPositionMap(groups uint64, numLeaves uint64, src LeafSource) (*OnChipPositionMap, error) {
	if groups == 0 {
		return nil, fmt.Errorf("core: position map needs at least one group")
	}
	if numLeaves == 0 || numLeaves&(numLeaves-1) != 0 {
		return nil, fmt.Errorf("core: numLeaves=%d must be a power of two", numLeaves)
	}
	m := &OnChipPositionMap{
		leaves:    make([]uint32, groups),
		numLeaves: numLeaves,
		src:       src,
	}
	for i := range m.leaves {
		m.leaves[i] = UnassignedLeaf
	}
	return m, nil
}

// Access implements PositionMap.
func (m *OnChipPositionMap) Access(group uint64) (old, new uint32, err error) {
	if group >= uint64(len(m.leaves)) {
		return 0, 0, fmt.Errorf("core: position map group %d out of range", group)
	}
	old = m.leaves[group]
	if old == UnassignedLeaf {
		old = uint32(m.src.Leaf(m.numLeaves))
	}
	new = uint32(m.src.Leaf(m.numLeaves))
	m.leaves[group] = new
	return old, new, nil
}

// Peek implements PositionMap.
func (m *OnChipPositionMap) Peek(group uint64) (uint32, bool, error) {
	if group >= uint64(len(m.leaves)) {
		return 0, false, fmt.Errorf("core: position map group %d out of range", group)
	}
	l := m.leaves[group]
	if l == UnassignedLeaf {
		return 0, false, nil
	}
	return l, true, nil
}

// SizeBits returns the on-chip storage the table needs with labelBits-bit
// labels (the paper's N*L accounting, Section 2.3).
func (m *OnChipPositionMap) SizeBits(labelBits int) uint64 {
	return uint64(len(m.leaves)) * uint64(labelBits)
}
