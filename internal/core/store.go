package core

import (
	"fmt"

	"repro/internal/treemath"
)

// Slot is one real block as it travels between the tree, the stash and the
// caller: program address, currently assigned leaf, and payload (nil in
// metadata-only mode).
type Slot struct {
	Addr uint64
	Leaf uint32
	Data []byte
}

// PathStore abstracts the external-memory tree at path granularity, the
// unit of every Path ORAM operation.
//
// ReadPath appends every real block stored on the path to the given leaf to
// dst and returns the extended slice (bucket boundaries are irrelevant to
// the protocol on reads). WritePath replaces the whole path: buckets[d]
// holds the blocks for the level-d bucket (at most Z); unfilled slots
// become dummy blocks.
type PathStore interface {
	ReadPath(leaf uint64, dst []Slot) ([]Slot, error)
	WritePath(leaf uint64, buckets [][]Slot) error
}

// MemStore is the plain in-memory PathStore: no serialization, no
// encryption. It backs the design-space simulations, where only metadata
// matters, and the fast functional tests. Slot storage is flat (two parallel
// arrays plus an optional payload array) to keep paper-scale trees tractable.
type MemStore struct {
	tree treemath.Tree
	z    int
	// addr1[i] == 0 marks an empty slot; otherwise it stores Addr+1
	// (the paper reserves address 0 for dummy blocks; the same trick
	// gives us a zero-initialized empty tree).
	addr1  []uint64
	leaves []uint32
	data   [][]byte // nil in metadata-only mode
}

// NewMemStore allocates an empty tree with the given leaf level and bucket
// capacity. If blockBytes > 0 payloads are stored; otherwise the store is
// metadata-only.
func NewMemStore(leafLevel, z, blockBytes int) (*MemStore, error) {
	if z < 1 {
		return nil, fmt.Errorf("core: Z=%d must be >= 1", z)
	}
	tree := treemath.New(leafLevel)
	slots := tree.NumBuckets() * uint64(z)
	s := &MemStore{
		tree:   tree,
		z:      z,
		addr1:  make([]uint64, slots),
		leaves: make([]uint32, slots),
	}
	if blockBytes > 0 {
		s.data = make([][]byte, slots)
	}
	return s, nil
}

// ReadPath implements PathStore.
func (s *MemStore) ReadPath(leaf uint64, dst []Slot) ([]Slot, error) {
	if !s.tree.ValidLeaf(leaf) {
		return dst, fmt.Errorf("core: leaf %d out of range", leaf)
	}
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		base := s.tree.PathBucket(leaf, d) * uint64(s.z)
		for i := uint64(0); i < uint64(s.z); i++ {
			if a := s.addr1[base+i]; a != 0 {
				slot := Slot{Addr: a - 1, Leaf: s.leaves[base+i]}
				if s.data != nil {
					slot.Data = s.data[base+i]
				}
				dst = append(dst, slot)
			}
		}
	}
	return dst, nil
}

// WritePath implements PathStore.
func (s *MemStore) WritePath(leaf uint64, buckets [][]Slot) error {
	if !s.tree.ValidLeaf(leaf) {
		return fmt.Errorf("core: leaf %d out of range", leaf)
	}
	if len(buckets) != s.tree.Levels() {
		return fmt.Errorf("core: WritePath got %d buckets, want %d", len(buckets), s.tree.Levels())
	}
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		if len(buckets[d]) > s.z {
			return fmt.Errorf("core: bucket at level %d holds %d > Z=%d blocks", d, len(buckets[d]), s.z)
		}
		base := s.tree.PathBucket(leaf, d) * uint64(s.z)
		for i := 0; i < s.z; i++ {
			idx := base + uint64(i)
			if i < len(buckets[d]) {
				b := buckets[d][i]
				s.addr1[idx] = b.Addr + 1
				s.leaves[idx] = b.Leaf
				if s.data != nil {
					s.data[idx] = b.Data
				}
			} else {
				s.addr1[idx] = 0
				s.leaves[idx] = 0
				if s.data != nil {
					s.data[idx] = nil
				}
			}
		}
	}
	return nil
}

// CountBlocks scans the whole tree and returns the number of real blocks
// stored. It exists for tests and invariant checks; it is O(tree size).
func (s *MemStore) CountBlocks() uint64 {
	var n uint64
	for _, a := range s.addr1 {
		if a != 0 {
			n++
		}
	}
	return n
}

// ForEachBlock invokes fn for every real block in the tree with its bucket
// level. Intended for invariant checking in tests.
func (s *MemStore) ForEachBlock(fn func(slot Slot, level int, bucketPos uint64)) {
	for flat := uint64(0); flat < s.tree.NumBuckets(); flat++ {
		base := flat * uint64(s.z)
		for i := 0; i < s.z; i++ {
			if a := s.addr1[base+uint64(i)]; a != 0 {
				slot := Slot{Addr: a - 1, Leaf: s.leaves[base+uint64(i)]}
				if s.data != nil {
					slot.Data = s.data[base+uint64(i)]
				}
				fn(slot, s.tree.LevelOf(flat), s.tree.PosOf(flat))
			}
		}
	}
}
