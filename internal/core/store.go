package core

import (
	"fmt"

	"repro/internal/treemath"
)

// Slot is one real block as it travels between the tree, the stash and the
// caller: program address, currently assigned leaf, and payload (nil in
// metadata-only mode).
type Slot struct {
	Addr uint64
	Leaf uint32
	Data []byte
}

// PathStore abstracts the external-memory tree at path granularity, the
// unit of every Path ORAM operation.
//
// ReadPath returns the real blocks stored on the path to the given leaf,
// one bucket per level in root-to-leaf order (dst[d] holds the level-d
// bucket's blocks; the per-level shape mirrors WritePath, and the staged
// access path depends on it to merge store buckets and pending write-back
// buckets into the stash in exact bucket order). dst, when non-nil, is
// reused: each dst[d] is truncated and appended to. skip, when non-nil,
// has one flag per level; a set flag means the caller already holds that
// bucket's live content (it sits in a pending deferred write-back) and
// the store must not emit the bucket's — stale — blocks. Implementations
// are free to still touch the skipped ciphertexts for verification; they
// just don't decode them.
//
// WritePath replaces the whole path: buckets[d] holds the blocks for the
// level-d bucket (at most Z); unfilled slots become dummy blocks. With
// deferred write-backs the write for a path may arrive after reads (and
// write-backs) of other paths; stores must not assume strict read/write
// alternation, only that every write was preceded by a read of the same
// path at some earlier point.
type PathStore interface {
	ReadPath(leaf uint64, skip []bool, dst [][]Slot) ([][]Slot, error)
	WritePath(leaf uint64, buckets [][]Slot) error
}

// MemStore is the plain in-memory PathStore: no serialization, no
// encryption. It backs the design-space simulations, where only metadata
// matters, and the fast functional tests. Slot storage is flat (two parallel
// arrays plus one payload arena) to keep paper-scale trees tractable.
//
// Ownership contract (shared with the encrypting store): WritePath copies
// incoming payloads into the store's arena, so callers keep — and may
// immediately recycle — their buffers; ReadPath emits Slot.Data slices that
// alias the arena and stay valid only until a later WritePath overwrites
// that slot.
type MemStore struct {
	tree treemath.Tree
	z    int
	// addr1[i] == 0 marks an empty slot; otherwise it stores Addr+1
	// (the paper reserves address 0 for dummy blocks; the same trick
	// gives us a zero-initialized empty tree).
	addr1  []uint64
	leaves []uint32
	// arena holds blockBytes of payload per slot, flat over all slots
	// (nil in metadata-only mode).
	arena      []byte
	blockBytes int
}

// NewMemStore allocates an empty tree with the given leaf level and bucket
// capacity. If blockBytes > 0 payloads are stored; otherwise the store is
// metadata-only.
func NewMemStore(leafLevel, z, blockBytes int) (*MemStore, error) {
	if z < 1 {
		return nil, fmt.Errorf("core: Z=%d must be >= 1", z)
	}
	tree := treemath.New(leafLevel)
	slots := tree.NumBuckets() * uint64(z)
	s := &MemStore{
		tree:   tree,
		z:      z,
		addr1:  make([]uint64, slots),
		leaves: make([]uint32, slots),
	}
	if blockBytes > 0 {
		s.blockBytes = blockBytes
		s.arena = make([]byte, slots*uint64(blockBytes))
	}
	return s, nil
}

// slotData returns the arena sub-slice of slot idx (nil in metadata-only
// mode).
func (s *MemStore) slotData(idx uint64) []byte {
	if s.blockBytes == 0 {
		return nil
	}
	off := idx * uint64(s.blockBytes)
	return s.arena[off : off+uint64(s.blockBytes) : off+uint64(s.blockBytes)]
}

// ReadPath implements PathStore.
func (s *MemStore) ReadPath(leaf uint64, skip []bool, dst [][]Slot) ([][]Slot, error) {
	var err error
	if dst, err = prepareReadBuf(dst, s.tree.Levels()); err != nil {
		return dst, err
	}
	if !s.tree.ValidLeaf(leaf) {
		return dst, fmt.Errorf("core: leaf %d out of range", leaf)
	}
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		if skip != nil && skip[d] {
			continue
		}
		base := s.tree.PathBucket(leaf, d) * uint64(s.z)
		for i := uint64(0); i < uint64(s.z); i++ {
			if a := s.addr1[base+i]; a != 0 {
				dst[d] = append(dst[d], Slot{
					Addr: a - 1,
					Leaf: s.leaves[base+i],
					Data: s.slotData(base + i),
				})
			}
		}
	}
	return dst, nil
}

// PrepareReadBuf sizes dst for a ReadPath over levels buckets, truncating
// reused per-level slices. Store implementations share it so the
// buffer-reuse contract stays uniform.
func PrepareReadBuf(dst [][]Slot, levels int) ([][]Slot, error) {
	return prepareReadBuf(dst, levels)
}

func prepareReadBuf(dst [][]Slot, levels int) ([][]Slot, error) {
	if dst == nil {
		return make([][]Slot, levels), nil
	}
	if len(dst) != levels {
		return dst, fmt.Errorf("core: read buffer has %d buckets, want %d", len(dst), levels)
	}
	for d := range dst {
		dst[d] = dst[d][:0]
	}
	return dst, nil
}

// WritePath implements PathStore.
func (s *MemStore) WritePath(leaf uint64, buckets [][]Slot) error {
	if !s.tree.ValidLeaf(leaf) {
		return fmt.Errorf("core: leaf %d out of range", leaf)
	}
	if len(buckets) != s.tree.Levels() {
		return fmt.Errorf("core: WritePath got %d buckets, want %d", len(buckets), s.tree.Levels())
	}
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		if len(buckets[d]) > s.z {
			return fmt.Errorf("core: bucket at level %d holds %d > Z=%d blocks", d, len(buckets[d]), s.z)
		}
		base := s.tree.PathBucket(leaf, d) * uint64(s.z)
		for i := 0; i < s.z; i++ {
			idx := base + uint64(i)
			if i < len(buckets[d]) {
				b := buckets[d][i]
				s.addr1[idx] = b.Addr + 1
				s.leaves[idx] = b.Leaf
				copy(s.slotData(idx), b.Data)
			} else {
				// Empty slots are never emitted (addr1 == 0), so their
				// stale arena bytes need no scrub.
				s.addr1[idx] = 0
				s.leaves[idx] = 0
			}
		}
	}
	return nil
}

// CountBlocks scans the whole tree and returns the number of real blocks
// stored. It exists for tests and invariant checks; it is O(tree size).
func (s *MemStore) CountBlocks() uint64 {
	var n uint64
	for _, a := range s.addr1 {
		if a != 0 {
			n++
		}
	}
	return n
}

// ForEachBlock invokes fn for every real block in the tree with its bucket
// level. Intended for invariant checking in tests.
func (s *MemStore) ForEachBlock(fn func(slot Slot, level int, bucketPos uint64)) {
	for flat := uint64(0); flat < s.tree.NumBuckets(); flat++ {
		base := flat * uint64(s.z)
		for i := 0; i < s.z; i++ {
			if a := s.addr1[base+uint64(i)]; a != 0 {
				slot := Slot{
					Addr: a - 1,
					Leaf: s.leaves[base+uint64(i)],
					Data: s.slotData(base + uint64(i)),
				}
				fn(slot, s.tree.LevelOf(flat), s.tree.PosOf(flat))
			}
		}
	}
}
