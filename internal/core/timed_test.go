package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// recordingTimer logs every charge so tests can pin the stage stream.
type timerEvent struct {
	leaf     uint64
	write    bool
	deferred bool
	skipped  int
}

type recordingTimer struct {
	events []timerEvent
}

func (r *recordingTimer) ReadPath(leaf uint64, skip []bool) {
	n := 0
	for _, s := range skip {
		if s {
			n++
		}
	}
	r.events = append(r.events, timerEvent{leaf: leaf, skipped: n})
}

func (r *recordingTimer) WritePath(leaf uint64, deferred bool) {
	r.events = append(r.events, timerEvent{leaf: leaf, write: true, deferred: deferred})
}

func timedParams(defer_ bool) Params {
	p := Params{
		LeafLevel: 4, Z: 4, BlockBytes: 8, Blocks: 48,
		StashCapacity: 80, BackgroundEviction: true,
	}
	p.DeferWriteBack = defer_
	return p
}

func buildTimed(t *testing.T, p Params, seed int64) (*ORAM, *MemStore, *recordingTimer) {
	t.Helper()
	ms, err := NewMemStore(p.LeafLevel, p.Z, p.BlockBytes)
	if err != nil {
		t.Fatal(err)
	}
	timer := &recordingTimer{}
	ts, err := NewTimedStore(ms, timer)
	if err != nil {
		t.Fatal(err)
	}
	src := NewMathLeafSource(rand.New(rand.NewSource(seed)))
	pos, err := NewOnChipPositionMap(p.Groups(), 1<<uint(p.LeafLevel), src)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(p, ts, pos, src)
	if err != nil {
		t.Fatal(err)
	}
	return o, ms, timer
}

func buildPlain(t *testing.T, p Params, seed int64) (*ORAM, *MemStore) {
	t.Helper()
	ms, err := NewMemStore(p.LeafLevel, p.Z, p.BlockBytes)
	if err != nil {
		t.Fatal(err)
	}
	src := NewMathLeafSource(rand.New(rand.NewSource(seed)))
	pos, err := NewOnChipPositionMap(p.Groups(), 1<<uint(p.LeafLevel), src)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(p, ms, pos, src)
	if err != nil {
		t.Fatal(err)
	}
	return o, ms
}

func snapshotTree(ms *MemStore) []string {
	var out []string
	ms.ForEachBlock(func(slot Slot, level int, pos uint64) {
		out = append(out, fmt.Sprintf("%d/%d:%d@%d=%x", level, pos, slot.Addr, slot.Leaf, slot.Data))
	})
	return out
}

// TestTimedStoreObservationOnly is the core equivalence property: a run
// through a TimedStore must leave the underlying MemStore byte-identical
// to an untimed run with the same seed — the timer observes, it never
// perturbs — in both synchronous and staged (deferred write-back) mode.
func TestTimedStoreObservationOnly(t *testing.T) {
	for _, deferred := range []bool{false, true} {
		t.Run(fmt.Sprintf("defer=%v", deferred), func(t *testing.T) {
			p := timedParams(deferred)
			timed, timedMS, timer := buildTimed(t, p, 42)
			plain, plainMS := buildPlain(t, p, 42)
			rng := rand.New(rand.NewSource(77))
			buf := make([]byte, p.BlockBytes)
			for i := 0; i < 600; i++ {
				addr := rng.Uint64() % p.Blocks
				rng.Read(buf)
				var gt, gp []byte
				var et, ep error
				if i%3 == 0 {
					gt, et = timed.Access(addr, OpWrite, buf)
					gp, ep = plain.Access(addr, OpWrite, buf)
				} else {
					gt, et = timed.Access(addr, OpRead, nil)
					gp, ep = plain.Access(addr, OpRead, nil)
				}
				if et != nil || ep != nil {
					t.Fatalf("op %d: timed err %v, plain err %v", i, et, ep)
				}
				if !bytes.Equal(gt, gp) {
					t.Fatalf("op %d: timed read %x, plain read %x", i, gt, gp)
				}
				if deferred && i%17 == 0 {
					// Drain a bit mid-stream, like an idle worker would.
					if _, err := timed.StepBackground(false); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := timed.Flush(); err != nil {
				t.Fatal(err)
			}
			if deferred {
				if err := plain.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			ts, ps := snapshotTree(timedMS), snapshotTree(plainMS)
			if len(ts) != len(ps) {
				t.Fatalf("tree block counts diverge: timed %d, plain %d", len(ts), len(ps))
			}
			for i := range ts {
				if ts[i] != ps[i] {
					t.Fatalf("trees diverge at block %d: timed %q, plain %q", i, ts[i], ps[i])
				}
			}
			if len(timer.events) == 0 {
				t.Fatal("timer recorded nothing")
			}
		})
	}
}

// TestTimedStoreStageTagging pins the stage metadata: synchronous runs
// charge only inline write-backs, staged runs charge deferred ones (via
// WritePathDeferred) for every FIFO completion, and reads report their
// write-buffer skip counts.
func TestTimedStoreStageTagging(t *testing.T) {
	// Synchronous: strict read/write alternation, never deferred.
	p := timedParams(false)
	o, _, timer := buildTimed(t, p, 1)
	if _, err := o.Access(3, OpWrite, make([]byte, p.BlockBytes)); err != nil {
		t.Fatal(err)
	}
	for i, ev := range timer.events {
		if ev.write != (i%2 == 1) {
			t.Fatalf("sync event %d: unexpected kind %+v", i, ev)
		}
		if ev.deferred {
			t.Fatalf("sync event %d tagged deferred", i)
		}
	}

	// Staged: the write-back arrives only when the FIFO is drained, tagged
	// deferred.
	p = timedParams(true)
	o, _, timer = buildTimed(t, p, 2)
	if _, err := o.Access(3, OpWrite, make([]byte, p.BlockBytes)); err != nil {
		t.Fatal(err)
	}
	for _, ev := range timer.events {
		if ev.write {
			t.Fatalf("staged access charged a write before any drain: %+v", timer.events)
		}
	}
	if w, err := o.StepBackground(false); err != nil || w != BgWriteBack {
		t.Fatalf("StepBackground = %v, %v", w, err)
	}
	last := timer.events[len(timer.events)-1]
	if !last.write || !last.deferred {
		t.Fatalf("drained write-back not tagged deferred: %+v", last)
	}

	// Overfill the queue so the cap drains inline: those completions still
	// come from the FIFO and must be tagged deferred too.
	p = timedParams(true)
	p.MaxDeferredWriteBacks = 2
	o, _, timer = buildTimed(t, p, 3)
	for a := uint64(0); a < 10; a++ {
		if _, err := o.Access(a, OpWrite, make([]byte, p.BlockBytes)); err != nil {
			t.Fatal(err)
		}
	}
	sawDeferred := false
	for _, ev := range timer.events {
		if ev.write {
			if !ev.deferred {
				t.Fatalf("staged run charged an inline write: %+v", ev)
			}
			sawDeferred = true
		}
	}
	if !sawDeferred {
		t.Fatal("queue cap never drained")
	}

	// Reads of pending paths must report write-buffer hits.
	skips := 0
	for _, ev := range timer.events {
		skips += ev.skipped
	}
	if skips == 0 {
		t.Error("no read ever skipped a write-buffer bucket (expected overlay hits)")
	}
}

// TestTimedStoreErrorsNotCharged: a failed path operation moved no modeled
// data, so the timer must not see it.
func TestTimedStoreErrorsNotCharged(t *testing.T) {
	ms, err := NewMemStore(3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	timer := &recordingTimer{}
	ts, err := NewTimedStore(ms, timer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.ReadPath(1<<10, nil, nil); err == nil {
		t.Fatal("out-of-range leaf accepted")
	}
	if err := ts.WritePath(1<<10, make([][]Slot, 4)); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if len(timer.events) != 0 {
		t.Errorf("failed ops were charged: %+v", timer.events)
	}
	if _, err := NewTimedStore(nil, timer); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewTimedStore(ms, nil); err == nil {
		t.Error("nil timer accepted")
	}
	if ts.Inner() != ms {
		t.Error("Inner() does not return the wrapped store")
	}
	if ts.MemoryBytes() != 0 {
		t.Error("MemStore-backed TimedStore should report 0 footprint")
	}
}
