package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// newTestORAM builds an ORAM over a MemStore with an on-chip position map
// and a deterministic leaf source.
func newTestORAM(t *testing.T, p Params, seed int64) (*ORAM, *MemStore, *OnChipPositionMap) {
	t.Helper()
	store, err := NewMemStore(p.LeafLevel, p.Z, p.BlockBytes)
	if err != nil {
		t.Fatal(err)
	}
	src := NewMathLeafSource(rand.New(rand.NewSource(seed)))
	pos, err := NewOnChipPositionMap(p.Groups(), 1<<uint(p.LeafLevel), src)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(p, store, pos, src)
	if err != nil {
		t.Fatal(err)
	}
	return o, store, pos
}

func smallParams() Params {
	return Params{
		LeafLevel:          6,
		Z:                  4,
		BlockBytes:         16,
		Blocks:             128,
		StashCapacity:      100,
		BackgroundEviction: true,
	}
}

func blockOf(b byte, n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestReadNeverWritten(t *testing.T) {
	p := smallParams()
	p.FreshFill = 0xAB
	o, _, _ := newTestORAM(t, p, 1)
	got, err := o.Access(7, OpRead, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blockOf(0xAB, 16)) {
		t.Errorf("fresh read = % x, want fill 0xAB", got)
	}
	// A fresh read must not materialize the block.
	if o.Stats().BlocksInORAM != 0 {
		t.Errorf("fresh read inserted a block")
	}
}

func TestWriteThenRead(t *testing.T) {
	o, _, _ := newTestORAM(t, smallParams(), 2)
	want := blockOf(0x5C, 16)
	if _, err := o.Access(42, OpWrite, want); err != nil {
		t.Fatal(err)
	}
	got, err := o.Access(42, OpRead, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read back % x want % x", got, want)
	}
	if o.Stats().RealAccesses != 2 {
		t.Errorf("RealAccesses=%d want 2", o.Stats().RealAccesses)
	}
}

func TestOverwrite(t *testing.T) {
	o, _, _ := newTestORAM(t, smallParams(), 3)
	for round := byte(0); round < 5; round++ {
		if _, err := o.Access(9, OpWrite, blockOf(round, 16)); err != nil {
			t.Fatal(err)
		}
		got, err := o.Access(9, OpRead, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blockOf(round, 16)) {
			t.Fatalf("round %d: read % x", round, got)
		}
	}
	if n := o.Stats().BlocksInORAM; n != 1 {
		t.Errorf("BlocksInORAM=%d want 1 (no duplicates on overwrite)", n)
	}
}

func TestReadIsACopy(t *testing.T) {
	o, _, _ := newTestORAM(t, smallParams(), 4)
	if _, err := o.Access(3, OpWrite, blockOf(1, 16)); err != nil {
		t.Fatal(err)
	}
	got, _ := o.Access(3, OpRead, nil)
	got[0] = 0xFF // must not corrupt the stored block
	again, _ := o.Access(3, OpRead, nil)
	if !bytes.Equal(again, blockOf(1, 16)) {
		t.Error("mutating a returned read buffer corrupted the ORAM")
	}
}

func TestWriteCopiesCallerBuffer(t *testing.T) {
	o, _, _ := newTestORAM(t, smallParams(), 5)
	buf := blockOf(7, 16)
	if _, err := o.Access(3, OpWrite, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 0xEE
	got, _ := o.Access(3, OpRead, nil)
	if got[0] != 7 {
		t.Error("ORAM aliased the caller's write buffer")
	}
}

func TestWriteWrongSize(t *testing.T) {
	o, _, _ := newTestORAM(t, smallParams(), 6)
	if _, err := o.Access(0, OpWrite, make([]byte, 15)); err == nil {
		t.Error("short write accepted")
	}
	if _, err := o.Access(0, OpWrite, nil); err == nil {
		t.Error("nil write accepted on payload ORAM")
	}
}

func TestAddressOutOfRange(t *testing.T) {
	o, _, _ := newTestORAM(t, smallParams(), 7)
	if _, err := o.Access(128, OpRead, nil); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := o.Update(1<<40, func([]byte) {}); err == nil {
		t.Error("out-of-range update accepted")
	}
	if _, _, _, err := o.Load(999); err == nil {
		t.Error("out-of-range load accepted")
	}
	if err := o.Store(999, nil); err == nil {
		t.Error("out-of-range store accepted")
	}
}

func TestUpdateReadModifyWrite(t *testing.T) {
	o, _, _ := newTestORAM(t, smallParams(), 8)
	if err := o.Update(5, func(d []byte) { d[0] = 10 }); err != nil {
		t.Fatal(err)
	}
	if err := o.Update(5, func(d []byte) { d[0] += 32 }); err != nil {
		t.Fatal(err)
	}
	got, _ := o.Access(5, OpRead, nil)
	if got[0] != 42 {
		t.Errorf("RMW result %d want 42", got[0])
	}
}

func TestUpdateFreshFill(t *testing.T) {
	p := smallParams()
	p.FreshFill = 0xFF
	o, _, _ := newTestORAM(t, p, 9)
	var seen []byte
	if err := o.Update(1, func(d []byte) { seen = append([]byte(nil), d...) }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seen, blockOf(0xFF, 16)) {
		t.Errorf("fresh Update saw % x want all-0xFF", seen)
	}
}

func TestUpdateRequiresPayloads(t *testing.T) {
	p := smallParams()
	p.BlockBytes = 0
	o, _, _ := newTestORAM(t, p, 10)
	if err := o.Update(0, func([]byte) {}); err == nil {
		t.Error("Update on metadata-only ORAM accepted")
	}
}

func TestMetadataOnlyMode(t *testing.T) {
	p := smallParams()
	p.BlockBytes = 0
	o, _, _ := newTestORAM(t, p, 11)
	if _, err := o.Access(1, OpWrite, nil); err != nil {
		t.Fatal(err)
	}
	got, err := o.Access(1, OpRead, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("metadata-only read returned data %v", got)
	}
	if o.Stats().BlocksInORAM != 1 {
		t.Errorf("metadata block not tracked")
	}
}

func TestExclusiveLoadStore(t *testing.T) {
	o, store, _ := newTestORAM(t, smallParams(), 12)
	if _, err := o.Access(20, OpWrite, blockOf(9, 16)); err != nil {
		t.Fatal(err)
	}
	data, found, group, err := o.Load(20)
	if err != nil {
		t.Fatal(err)
	}
	if !found || !bytes.Equal(data, blockOf(9, 16)) {
		t.Fatalf("Load found=%v data=% x", found, data)
	}
	if len(group) != 0 {
		t.Errorf("no super blocks configured but got %d group members", len(group))
	}
	// Exclusivity: the block must be gone from tree and stash.
	if store.CountBlocks()+uint64(o.StashSize()) != 0 {
		t.Errorf("block still resident after Load (tree=%d stash=%d)",
			store.CountBlocks(), o.StashSize())
	}
	if !o.CheckedOut(20) {
		t.Error("loaded block not marked checked out")
	}
	// Double load must fail.
	if _, _, _, err := o.Load(20); err == nil {
		t.Error("double Load accepted")
	}
	// Access while checked out must fail.
	if _, err := o.Access(20, OpRead, nil); err == nil {
		t.Error("Access of checked-out block accepted")
	}
	// Store it back modified; then read through the oblivious interface.
	if err := o.Store(20, blockOf(10, 16)); err != nil {
		t.Fatal(err)
	}
	if o.CheckedOut(20) {
		t.Error("stored block still marked checked out")
	}
	got, _ := o.Access(20, OpRead, nil)
	if !bytes.Equal(got, blockOf(10, 16)) {
		t.Errorf("after Store, read % x want 0x0A fill", got)
	}
}

func TestStoreWithoutLoadRejected(t *testing.T) {
	o, _, _ := newTestORAM(t, smallParams(), 13)
	if err := o.Store(4, blockOf(1, 16)); err == nil {
		t.Error("Store of a block that was never checked out accepted")
	}
}

func TestLoadNeverWritten(t *testing.T) {
	p := smallParams()
	p.FreshFill = 0x11
	o, _, _ := newTestORAM(t, p, 14)
	data, found, _, err := o.Load(33)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("never-written block reported found")
	}
	if !bytes.Equal(data, blockOf(0x11, 16)) {
		t.Errorf("fresh Load data % x", data)
	}
	// The processor now owns it; Store must work.
	if err := o.Store(33, blockOf(0x22, 16)); err != nil {
		t.Fatal(err)
	}
	got, _ := o.Access(33, OpRead, nil)
	if !bytes.Equal(got, blockOf(0x22, 16)) {
		t.Errorf("after fresh Load+Store read % x", got)
	}
}

func TestStoreDoesNotAccessPath(t *testing.T) {
	// Section 3.3.1: returning an evicted line costs no path access.
	o, _, _ := newTestORAM(t, smallParams(), 15)
	if _, err := o.Access(2, OpWrite, blockOf(1, 16)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := o.Load(2); err != nil {
		t.Fatal(err)
	}
	paths := 0
	o.p.OnPathAccess = func(uint64, AccessKind) { paths++ }
	if err := o.Store(2, blockOf(2, 16)); err != nil {
		t.Fatal(err)
	}
	if paths != 0 {
		t.Errorf("Store touched %d paths, want 0", paths)
	}
	if o.Stats().Stores != 1 {
		t.Errorf("Stores=%d want 1", o.Stats().Stores)
	}
}

func TestDummyAccessNeverGrowsStash(t *testing.T) {
	p := smallParams()
	p.BackgroundEviction = false // drive dummies by hand
	p.StashCapacity = 0
	o, _, _ := newTestORAM(t, p, 16)
	for i := uint64(0); i < 64; i++ {
		if _, err := o.Access(i, OpWrite, blockOf(byte(i), 16)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		before := o.StashSize()
		if err := o.DummyAccess(); err != nil {
			t.Fatal(err)
		}
		if after := o.StashSize(); after > before {
			t.Fatalf("dummy access grew stash %d -> %d", before, after)
		}
	}
	if o.Stats().DummyAccesses != 200 {
		t.Errorf("DummyAccesses=%d want 200", o.Stats().DummyAccesses)
	}
}

func TestBackgroundEvictionBoundsStash(t *testing.T) {
	p := Params{
		LeafLevel: 5, Z: 1, BlockBytes: 0, Blocks: 48,
		StashCapacity:      1*(5+1) + 8, // threshold 8
		BackgroundEviction: true,
	}
	o, _, _ := newTestORAM(t, p, 17)
	thr := p.EvictionThreshold()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		if _, err := o.Access(rng.Uint64()%p.Blocks, OpWrite, nil); err != nil {
			t.Fatal(err)
		}
		if o.StashSize() > thr {
			t.Fatalf("stash %d above threshold %d after drain", o.StashSize(), thr)
		}
	}
	if o.Stats().DummyAccesses == 0 {
		t.Error("this aggressive config should have needed dummy accesses")
	}
	if o.Stats().StashPeak > p.StashCapacity {
		t.Errorf("stash peak %d exceeded capacity %d", o.Stats().StashPeak, p.StashCapacity)
	}
}

func TestStashOverflowFailsWithoutBackgroundEviction(t *testing.T) {
	p := Params{
		LeafLevel: 5, Z: 1, BlockBytes: 0, Blocks: 48,
		StashCapacity:      8,
		BackgroundEviction: false,
	}
	o, _, _ := newTestORAM(t, p, 18)
	rng := rand.New(rand.NewSource(100))
	var sawOverflow bool
	for i := 0; i < 5000; i++ {
		if _, err := o.Access(rng.Uint64()%p.Blocks, OpWrite, nil); err != nil {
			if errors.Is(err, ErrStashOverflow) {
				sawOverflow = true
				break
			}
			t.Fatal(err)
		}
	}
	if !sawOverflow {
		t.Error("Z=1 with an 8-block stash should overflow (paper Fig. 3)")
	}
}

func TestLivelockGuard(t *testing.T) {
	// Force the livelock of Section 3.1.1: a constant leaf source maps
	// every block to leaf 0, so path 0 fills up and dummies cannot drain
	// the stash. The guard must trip instead of hanging.
	p := Params{
		LeafLevel: 1, Z: 1, BlockBytes: 0, Blocks: 16,
		StashCapacity:      1*(1+1) + 1, // threshold 1
		BackgroundEviction: true,
		MaxDummyRun:        16,
	}
	store, _ := NewMemStore(p.LeafLevel, p.Z, p.BlockBytes)
	src := constantLeafSource{}
	pos, _ := NewOnChipPositionMap(p.Groups(), 1<<uint(p.LeafLevel), src)
	o, err := New(p, store, pos, src)
	if err != nil {
		t.Fatal(err)
	}
	var last error
	for i := uint64(0); i < 8; i++ {
		if _, last = o.Access(i, OpWrite, nil); last != nil {
			break
		}
	}
	if !errors.Is(last, ErrLivelock) {
		t.Errorf("expected ErrLivelock, got %v", last)
	}
}

type constantLeafSource struct{}

func (constantLeafSource) Leaf(uint64) uint64 { return 0 }

func TestInsecureRemapPolicyDrains(t *testing.T) {
	p := Params{
		LeafLevel: 5, Z: 1, BlockBytes: 0, Blocks: 48,
		StashCapacity:      1*(5+1) + 4,
		BackgroundEviction: true,
		Policy:             EvictInsecureRemap,
	}
	o, _, _ := newTestORAM(t, p, 19)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		if _, err := o.Access(rng.Uint64()%p.Blocks, OpWrite, nil); err != nil {
			t.Fatal(err)
		}
		if o.StashSize() > p.EvictionThreshold() {
			t.Fatalf("stash above threshold under remap policy")
		}
	}
	s := o.Stats()
	if s.EvictionAccesses == 0 {
		t.Error("remap policy never issued eviction accesses")
	}
	if s.DummyAccesses != 0 {
		t.Error("remap policy must not issue dummy accesses")
	}
}

func TestOnPathAccessKinds(t *testing.T) {
	p := Params{
		LeafLevel: 5, Z: 1, BlockBytes: 0, Blocks: 32,
		StashCapacity:      1*(5+1) + 6,
		BackgroundEviction: true,
	}
	counts := map[AccessKind]int{}
	p.OnPathAccess = func(_ uint64, k AccessKind) { counts[k]++ }
	o, _, _ := newTestORAM(t, p, 20)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 1000; i++ {
		if _, err := o.Access(rng.Uint64()%p.Blocks, OpWrite, nil); err != nil {
			t.Fatal(err)
		}
	}
	if counts[KindReal] != 1000 {
		t.Errorf("real paths=%d want 1000", counts[KindReal])
	}
	if counts[KindDummy] == 0 {
		t.Error("expected some dummy paths in this tight config")
	}
	if uint64(counts[KindDummy]) != o.Stats().DummyAccesses {
		t.Errorf("hook dummy count %d != stats %d", counts[KindDummy], o.Stats().DummyAccesses)
	}
}

// TestPaddingAccess checks the scheduler-padding dummy: it performs a path
// access observers see as KindPadding, counts separately from background
// eviction, and never grows the stash.
func TestPaddingAccess(t *testing.T) {
	p := Params{LeafLevel: 5, Z: 2, Blocks: 64, StashCapacity: 50, BackgroundEviction: true}
	counts := map[AccessKind]int{}
	p.OnPathAccess = func(_ uint64, k AccessKind) { counts[k]++ }
	o, _, _ := newTestORAM(t, p, 22)
	for i := uint64(0); i < 32; i++ {
		if _, err := o.Access(i, OpWrite, nil); err != nil {
			t.Fatal(err)
		}
	}
	occupancy := o.StashSize()
	for i := 0; i < 100; i++ {
		if err := o.PaddingAccess(); err != nil {
			t.Fatal(err)
		}
		if o.StashSize() > occupancy {
			t.Fatalf("padding access %d grew the stash (%d -> %d)", i, occupancy, o.StashSize())
		}
		occupancy = o.StashSize()
	}
	st := o.Stats()
	if st.PaddingAccesses != 100 {
		t.Errorf("PaddingAccesses = %d, want 100", st.PaddingAccesses)
	}
	if counts[KindPadding] != 100 {
		t.Errorf("hook padding count = %d, want 100", counts[KindPadding])
	}
	if st.PaddingPerReal() != 100.0/32 {
		t.Errorf("PaddingPerReal = %v, want %v", st.PaddingPerReal(), 100.0/32)
	}
	o.ResetStats()
	if o.Stats().PaddingAccesses != 0 {
		t.Error("ResetStats kept PaddingAccesses")
	}
}

func TestValidate(t *testing.T) {
	base := smallParams()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	mut := func(f func(*Params)) Params { p := base; f(&p); return p }
	bad := []Params{
		mut(func(p *Params) { p.LeafLevel = -1 }),
		mut(func(p *Params) { p.LeafLevel = 31 }),
		mut(func(p *Params) { p.Z = 0 }),
		mut(func(p *Params) { p.Blocks = 0 }),
		mut(func(p *Params) { p.StashCapacity = -1 }),
		mut(func(p *Params) { p.SuperBlock = -1 }),
		mut(func(p *Params) { p.StashCapacity = 0 }), // bg eviction needs bound
		mut(func(p *Params) { p.StashCapacity = p.Z * (p.LeafLevel + 1) }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestNewRejectsNilDeps(t *testing.T) {
	p := smallParams()
	store, _ := NewMemStore(p.LeafLevel, p.Z, p.BlockBytes)
	src := NewMathLeafSource(rand.New(rand.NewSource(1)))
	pos, _ := NewOnChipPositionMap(p.Groups(), 1<<uint(p.LeafLevel), src)
	if _, err := New(p, nil, pos, src); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := New(p, store, nil, src); err == nil {
		t.Error("nil posmap accepted")
	}
	if _, err := New(p, store, pos, nil); err == nil {
		t.Error("nil leaf source accepted")
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Params{Blocks: 10, SuperBlock: 4, Z: 2, LeafLevel: 3, StashCapacity: 20}
	if p.GroupSize() != 4 {
		t.Errorf("GroupSize=%d want 4", p.GroupSize())
	}
	if p.Groups() != 3 {
		t.Errorf("Groups=%d want 3", p.Groups())
	}
	if p.EvictionThreshold() != 20-2*4 {
		t.Errorf("threshold=%d want 12", p.EvictionThreshold())
	}
	p.StashCapacity = 0
	if p.EvictionThreshold() != -1 {
		t.Error("unbounded stash should report threshold -1")
	}
	p.SuperBlock = 0
	if p.GroupSize() != 1 {
		t.Error("SuperBlock=0 should mean size 1")
	}
}

func TestStatsDummyPerReal(t *testing.T) {
	s := Stats{RealAccesses: 4, DummyAccesses: 6}
	if got := s.DummyPerReal(); got != 1.5 {
		t.Errorf("DummyPerReal=%v want 1.5", got)
	}
	if (Stats{}).DummyPerReal() != 0 {
		t.Error("empty stats should report 0")
	}
}

func TestResetStats(t *testing.T) {
	o, _, _ := newTestORAM(t, smallParams(), 22)
	if _, err := o.Access(0, OpWrite, blockOf(1, 16)); err != nil {
		t.Fatal(err)
	}
	o.ResetStats()
	// Counters clear; the BlocksInORAM occupancy gauge survives (one block
	// is still resident — zeroing it would underflow on the next Load).
	if got := o.Stats(); got != (Stats{BlocksInORAM: 1}) {
		t.Errorf("ResetStats left %+v, want only the occupancy gauge", got)
	}
}

func TestUniformIndex(t *testing.T) {
	src := NewMathLeafSource(rand.New(rand.NewSource(77)))
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		idx := uniformIndex(src, 5)
		if idx < 0 || idx >= 5 {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("index %d drawn %d times, want ~10000", v, c)
		}
	}
	if uniformIndex(src, 1) != 0 {
		t.Error("n=1 must return 0")
	}
}
