package core

// stash is the ORAM interface's on-chip block buffer (the paper's term for
// the "local cache" of the original Path ORAM paper). It is a small flat
// slice: with realistic capacities (~200 blocks, Section 4.1.2) linear
// scans beat map overhead and keep iteration deterministic.
type stash struct {
	entries []Slot
}

func (s *stash) len() int { return len(s.entries) }

// find returns the index of addr, or -1.
func (s *stash) find(addr uint64) int {
	for i := range s.entries {
		if s.entries[i].Addr == addr {
			return i
		}
	}
	return -1
}

// add inserts a block. The caller guarantees addr is not already present
// (the Path ORAM invariant makes tree and stash disjoint).
func (s *stash) add(b Slot) {
	s.entries = append(s.entries, b)
}

// removeAt deletes the entry at index i (order is not preserved).
func (s *stash) removeAt(i int) Slot {
	e := s.entries[i]
	last := len(s.entries) - 1
	s.entries[i] = s.entries[last]
	s.entries[last] = Slot{}
	s.entries = s.entries[:last]
	return e
}

// compact removes all entries marked in placed (parallel to entries) and
// keeps the rest, preserving nothing about order.
func (s *stash) compact(placed []bool) {
	keep := s.entries[:0]
	for i := range s.entries {
		if !placed[i] {
			keep = append(keep, s.entries[i])
		}
	}
	// Zero the tail so payload buffers can be collected.
	for i := len(keep); i < len(s.entries); i++ {
		s.entries[i] = Slot{}
	}
	s.entries = keep
}
