package core

// stash is the ORAM interface's on-chip block buffer (the paper's term for
// the "local cache" of the original Path ORAM paper). It is a small flat
// slice: with realistic capacities (~200 blocks, Section 4.1.2) linear
// scans beat map overhead and keep iteration deterministic.
//
// Memory discipline (see DESIGN.md "Hot-path memory discipline"): the stash
// owns every payload buffer it holds. Blocks enter by copy (addCopy) — the
// source may be a store decode arena or a pending write-back bucket, both
// of which recycle their bytes — and payloads of evicted blocks are
// recycled through an internal freelist, so the steady-state access path
// allocates nothing. The only buffers that escape are those handed to the
// processor by the exclusive Load interface (removeAt/extractRange), which
// leave stash ownership for good.
//
// With ct set (Params.ConstantTimeStash) the lookup scans run in fixed
// length over a preallocated window using crypto/subtle selects — see
// stash_ct.go. The dense entries layout and its evolution are identical in
// both modes; only how the scans execute differs.
type stash struct {
	// entries is the dense live view. In constant-time mode it is a
	// prefix of the preallocated backing `all` (capacity = window).
	entries []Slot
	// free recycles payload buffers (blockBytes each) of evicted blocks.
	free       [][]byte
	blockBytes int

	// Constant-time mode state (stash_ct.go). window is the fixed scan
	// length; all is the backing array with one extra dump slot at index
	// window for masked discards; deadScratch absorbs masked copies aimed
	// at dead slots.
	ct          bool
	window      int
	all         []Slot
	deadScratch []byte

	// scanSlots counts slots examined by constant-time scans; tests use it
	// to pin the iteration count as a function of capacity alone.
	scanSlots uint64
}

func (s *stash) len() int { return len(s.entries) }

// find returns the index of addr, or -1 (legacy early-return scan; the
// constant-time mode uses ctFind).
func (s *stash) find(addr uint64) int {
	for i := range s.entries {
		if s.entries[i].Addr == addr {
			return i
		}
	}
	return -1
}

// take returns a payload buffer of blockBytes (nil in metadata-only mode),
// reusing the freelist when possible. The contents are unspecified.
func (s *stash) take() []byte {
	if s.blockBytes == 0 {
		return nil
	}
	if n := len(s.free); n > 0 {
		buf := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return buf
	}
	return make([]byte, s.blockBytes)
}

// recycle returns a payload buffer to the freelist. Only buffers sized for
// this stash are accepted; anything else is left to the collector.
func (s *stash) recycle(buf []byte) {
	if s.blockBytes == 0 || cap(buf) < s.blockBytes {
		return
	}
	s.free = append(s.free, buf[:s.blockBytes])
}

// insert appends a block, taking ownership of data (which must be a
// blockBytes buffer, or nil in metadata-only mode).
func (s *stash) insert(addr uint64, leaf uint32, data []byte) {
	if s.ct && len(s.entries) == cap(s.entries) {
		s.growCT()
	}
	s.entries = append(s.entries, Slot{Addr: addr, Leaf: leaf, Data: data})
}

// addCopy inserts a block by copying data into a stash-owned buffer. The
// caller keeps ownership of data; this is the boundary crossing for blocks
// arriving from store decode arenas and pending write-back buckets. The
// caller guarantees addr is not already present (the Path ORAM invariant
// makes tree and stash disjoint).
func (s *stash) addCopy(addr uint64, leaf uint32, data []byte) {
	buf := s.take()
	copy(buf, data)
	s.insert(addr, leaf, buf)
}

// removeAt deletes the entry at index i (order is not preserved). The
// returned Slot's payload leaves stash ownership.
func (s *stash) removeAt(i int) Slot {
	e := s.entries[i]
	last := len(s.entries) - 1
	s.entries[i] = s.entries[last]
	s.entries[last] = Slot{}
	s.entries = s.entries[:last]
	return e
}

// extractRange removes every entry with lo <= Addr < hi, passing each to
// fn in stash order; the payloads leave stash ownership. A single stable
// left-to-right sweep cannot skip or revisit entries the way a swap-delete
// loop can when removal reorders the tail.
func (s *stash) extractRange(lo, hi uint64, fn func(Slot)) {
	keep := s.entries[:0]
	for i := range s.entries {
		e := s.entries[i]
		if e.Addr >= lo && e.Addr < hi {
			fn(e)
			continue
		}
		keep = append(keep, e)
	}
	for i := len(keep); i < len(s.entries); i++ {
		s.entries[i] = Slot{}
	}
	s.entries = keep
}

// compact removes all entries whose placed mask (parallel to entries) is
// 1 and keeps the rest in stable order. The payload buffers of placed
// entries are NOT recycled here: they are still referenced from the
// write-back bucket buffers; writeBack recycles them once the store (or
// the pending copy) has consumed them.
func (s *stash) compact(placed []int) {
	keep := s.entries[:0]
	for i := range s.entries {
		if placed[i] == 0 {
			keep = append(keep, s.entries[i])
		}
	}
	// Zero the tail so stale entries don't pin payload buffers.
	for i := len(keep); i < len(s.entries); i++ {
		s.entries[i] = Slot{}
	}
	s.entries = keep
}
