package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemStoreEmptyRead(t *testing.T) {
	s, err := NewMemStore(4, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPath(7, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("ReadPath returned %d buckets, want one per level (5)", len(got))
	}
	if n := len(flatSlots(got)); n != 0 {
		t.Errorf("empty tree returned %d blocks", n)
	}
	if s.CountBlocks() != 0 {
		t.Errorf("empty tree counts %d blocks", s.CountBlocks())
	}
}

func TestMemStoreRejectsBadGeometry(t *testing.T) {
	if _, err := NewMemStore(4, 0, 0); err == nil {
		t.Error("Z=0 accepted")
	}
	s, _ := NewMemStore(3, 2, 0)
	if _, err := s.ReadPath(8, nil, nil); err == nil {
		t.Error("out-of-range leaf read accepted")
	}
	if err := s.WritePath(8, make([][]Slot, 4)); err == nil {
		t.Error("out-of-range leaf write accepted")
	}
	if err := s.WritePath(0, make([][]Slot, 3)); err == nil {
		t.Error("wrong bucket count accepted")
	}
	over := make([][]Slot, 4)
	over[0] = []Slot{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	if err := s.WritePath(0, over); err == nil {
		t.Error("overfull bucket accepted")
	}
}

func TestMemStoreWriteReadRoundTrip(t *testing.T) {
	s, _ := NewMemStore(3, 2, 8)
	buckets := make([][]Slot, 4)
	buckets[0] = []Slot{{Addr: 0, Leaf: 5, Data: blockOf(1, 8)}} // address 0 is a valid program address
	buckets[2] = []Slot{{Addr: 7, Leaf: 5, Data: blockOf(2, 8)}, {Addr: 9, Leaf: 4, Data: blockOf(3, 8)}}
	if err := s.WritePath(5, buckets); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPath(5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(flatSlots(got)); n != 3 {
		t.Fatalf("read %d blocks want 3", n)
	}
	if len(got[0]) != 1 || len(got[2]) != 2 {
		t.Fatalf("per-level shape wrong: %v", got)
	}
	byAddr := map[uint64]Slot{}
	for _, b := range flatSlots(got) {
		byAddr[b.Addr] = b
	}
	if b, ok := byAddr[0]; !ok || b.Leaf != 5 || !bytes.Equal(b.Data, blockOf(1, 8)) {
		t.Errorf("block 0 wrong: %+v", b)
	}
	if b, ok := byAddr[9]; !ok || b.Leaf != 4 || !bytes.Equal(b.Data, blockOf(3, 8)) {
		t.Errorf("block 9 wrong: %+v", b)
	}
	// Reading a disjoint path sees only the shared root bucket.
	// Leaf 5 = 101b; leaf 2 = 010b diverges at the root's children.
	other, err := s.ReadPath(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flat := flatSlots(other); len(flat) != 1 || flat[0].Addr != 0 {
		t.Errorf("disjoint path read %+v, want only root block 0", other)
	}
	// A skip mask suppresses exactly the flagged buckets.
	skipped, err := s.ReadPath(5, []bool{true, false, false, false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped[0]) != 0 || len(skipped[2]) != 2 {
		t.Errorf("skip mask misapplied: %v", skipped)
	}
}

// flatSlots flattens a per-level ReadPath result for shape-agnostic checks.
func flatSlots(buckets [][]Slot) []Slot {
	var out []Slot
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}

func TestMemStoreOverwriteClearsOldBlocks(t *testing.T) {
	s, _ := NewMemStore(2, 2, 0)
	b := make([][]Slot, 3)
	b[1] = []Slot{{Addr: 3, Leaf: 1}, {Addr: 4, Leaf: 0}}
	if err := s.WritePath(1, b); err != nil {
		t.Fatal(err)
	}
	if s.CountBlocks() != 2 {
		t.Fatalf("CountBlocks=%d want 2", s.CountBlocks())
	}
	// Rewrite the same path with a single block: the other slot must clear.
	b2 := make([][]Slot, 3)
	b2[1] = []Slot{{Addr: 3, Leaf: 1}}
	if err := s.WritePath(1, b2); err != nil {
		t.Fatal(err)
	}
	if s.CountBlocks() != 1 {
		t.Errorf("CountBlocks=%d want 1 after shrink", s.CountBlocks())
	}
}

func TestMemStoreForEachBlockLevels(t *testing.T) {
	s, _ := NewMemStore(2, 1, 0)
	b := make([][]Slot, 3)
	b[0] = []Slot{{Addr: 1, Leaf: 3}}
	b[2] = []Slot{{Addr: 2, Leaf: 3}}
	if err := s.WritePath(3, b); err != nil {
		t.Fatal(err)
	}
	levels := map[uint64]int{}
	s.ForEachBlock(func(sl Slot, level int, _ uint64) { levels[sl.Addr] = level })
	if levels[1] != 0 || levels[2] != 2 {
		t.Errorf("levels=%v want {1:0, 2:2}", levels)
	}
}

func TestMemStorePathCoverageProperty(t *testing.T) {
	// Property: a block written to the deepest bucket of path p is visible
	// exactly on paths sharing that leaf bucket, i.e. only path p itself.
	s, _ := NewMemStore(5, 1, 0)
	f := func(leafRaw, probeRaw uint8) bool {
		leaf := uint64(leafRaw) % 32
		probe := uint64(probeRaw) % 32
		b := make([][]Slot, 6)
		b[5] = []Slot{{Addr: leaf + 1, Leaf: uint32(leaf)}}
		if err := s.WritePath(leaf, b); err != nil {
			return false
		}
		got, err := s.ReadPath(probe, nil, nil)
		if err != nil {
			return false
		}
		found := false
		for _, bl := range flatSlots(got) {
			if bl.Addr == leaf+1 {
				found = true
			}
		}
		// Clean up for the next iteration.
		if err := s.WritePath(leaf, make([][]Slot, 6)); err != nil {
			return false
		}
		return found == (probe == leaf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOnChipPositionMap(t *testing.T) {
	src := NewMathLeafSource(rand.New(rand.NewSource(8)))
	m, err := NewOnChipPositionMap(10, 64, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Peek(3); ok {
		t.Error("unassigned entry peeked as assigned")
	}
	old, cur, err := m.Access(3)
	if err != nil {
		t.Fatal(err)
	}
	if old >= 64 || cur >= 64 {
		t.Errorf("leaves out of range: old=%d new=%d", old, cur)
	}
	leaf, ok, err := m.Peek(3)
	if err != nil || !ok || leaf != cur {
		t.Errorf("Peek=%d,%v want %d,true", leaf, ok, cur)
	}
	// Next Access must report the previously assigned leaf as old.
	old2, _, _ := m.Access(3)
	if old2 != cur {
		t.Errorf("second Access old=%d want %d", old2, cur)
	}
	if _, _, err := m.Access(10); err == nil {
		t.Error("out-of-range group accepted")
	}
	if _, _, err := m.Peek(10); err == nil {
		t.Error("out-of-range peek accepted")
	}
	if m.SizeBits(20) != 200 {
		t.Errorf("SizeBits=%d want 200", m.SizeBits(20))
	}
}

func TestOnChipPositionMapValidation(t *testing.T) {
	src := NewMathLeafSource(rand.New(rand.NewSource(8)))
	if _, err := NewOnChipPositionMap(0, 64, src); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := NewOnChipPositionMap(4, 63, src); err == nil {
		t.Error("non-power-of-two leaves accepted")
	}
	if _, err := NewOnChipPositionMap(4, 0, src); err == nil {
		t.Error("zero leaves accepted")
	}
}

func TestLeafSources(t *testing.T) {
	a := NewMathLeafSource(rand.New(rand.NewSource(42)))
	b := NewMathLeafSource(rand.New(rand.NewSource(42)))
	for i := 0; i < 100; i++ {
		if a.Leaf(1024) != b.Leaf(1024) {
			t.Fatal("math leaf source not deterministic for equal seeds")
		}
	}
	c := NewCryptoLeafSource()
	seen := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		v := c.Leaf(1 << 20)
		if v >= 1<<20 {
			t.Fatalf("crypto leaf %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 1900 {
		t.Errorf("crypto leaf source produced only %d distinct values in 2000 draws", len(seen))
	}
}

func TestLeafSourceUniformity(t *testing.T) {
	src := NewMathLeafSource(rand.New(rand.NewSource(12)))
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[src.Leaf(n)]++
	}
	for v, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Errorf("leaf %d drawn %d times, want ~%d", v, c, draws/n)
		}
	}
}

func TestStash(t *testing.T) {
	var s stash
	s.insert(1, 0, nil)
	s.insert(2, 0, nil)
	s.insert(3, 0, nil)
	if s.len() != 3 {
		t.Fatalf("len=%d want 3", s.len())
	}
	if s.find(2) < 0 || s.find(9) >= 0 {
		t.Error("find misbehaves")
	}
	got := s.removeAt(s.find(2))
	if got.Addr != 2 || s.len() != 2 || s.find(2) >= 0 {
		t.Error("removeAt misbehaves")
	}
	placed := []int{1, 0}
	s.compact(placed)
	if s.len() != 1 {
		t.Errorf("compact left %d entries want 1", s.len())
	}
}
