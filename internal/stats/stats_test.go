package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{0, 1, 1, 2, 5, 10} {
		h.Observe(v)
	}
	if h.Total() != 6 {
		t.Fatalf("Total=%d want 6", h.Total())
	}
	if h.Count(1) != 2 {
		t.Errorf("Count(1)=%d want 2", h.Count(1))
	}
	if h.Max() != 10 {
		t.Errorf("Max=%d want 10", h.Max())
	}
	if got := h.Mean(); math.Abs(got-19.0/6) > 1e-12 {
		t.Errorf("Mean=%v want %v", got, 19.0/6)
	}
}

func TestHistogramTailProb(t *testing.T) {
	h := NewHistogram(4)
	for v := 0; v <= 4; v++ {
		h.Observe(v)
	}
	cases := []struct {
		m    int
		want float64
	}{
		{-1, 1}, {0, 1}, {1, 0.8}, {4, 0.2}, {5, 0},
	}
	for _, c := range cases {
		if got := h.TailProb(c.m); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("TailProb(%d)=%v want %v", c.m, got, c.want)
		}
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(3)
	h.Observe(100)
	h.Observe(2)
	if got := h.TailProb(4); got != 0.5 {
		t.Errorf("TailProb(4)=%v want 0.5 (overflowed value counts)", got)
	}
	if h.Max() != 100 {
		t.Errorf("Max=%d want 100", h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(3)
	h.Observe(-5)
	if h.Count(0) != 1 {
		t.Errorf("negative observation should clamp to 0")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(100)
	for v := 1; v <= 100; v++ {
		h.Observe(v)
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Errorf("Quantile(0.5)=%d want 50", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Errorf("Quantile(1.0)=%d want 100", q)
	}
	if q := h.Quantile(0.0); q != 1 {
		t.Errorf("Quantile(0)=%d want 1", q)
	}
}

func TestTailProbMonotone(t *testing.T) {
	h := NewHistogram(64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		h.Observe(rng.Intn(80))
	}
	f := func(a, b uint8) bool {
		m1, m2 := int(a%90), int(b%90)
		if m1 > m2 {
			m1, m2 = m2, m1
		}
		return h.TailProb(m1) >= h.TailProb(m2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunning(t *testing.T) {
	var r Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Observe(x)
	}
	if r.N() != 8 {
		t.Fatalf("N=%d want 8", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean=%v want 5", r.Mean())
	}
	if math.Abs(r.Std()-2) > 1e-12 {
		t.Errorf("Std=%v want 2", r.Std())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max=%v/%v want 2/9", r.Min(), r.Max())
	}
	if r.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Std() != 0 || r.N() != 0 {
		t.Error("empty Running should report zeros")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("Median odd=%v want 2", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("Median even=%v want 2.5", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("Median nil=%v want 0", m)
	}
	// Median must not mutate its argument.
	xs := []float64{9, 1, 5}
	Median(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Error("Median mutated input")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean=%v want 2", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean nil=%v want 0", g)
	}
	if g := GeoMean([]float64{1, -1}); g != 0 {
		t.Errorf("GeoMean with nonpositive=%v want 0", g)
	}
}
