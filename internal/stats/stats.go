// Package stats provides the small statistical helpers the experiment
// harnesses need: integer histograms with tail probabilities (for the stash
// occupancy study, Figure 3) and running scalar summaries (for latency and
// CPL averages).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts observations of small non-negative integers. Values
// larger than the configured maximum are accumulated in an overflow bin so
// tail probabilities remain correct.
type Histogram struct {
	counts   []uint64
	overflow uint64
	total    uint64
	max      int // largest value observed
}

// NewHistogram returns a histogram tracking values in [0, maxValue]
// individually; larger observations land in a single overflow bin.
func NewHistogram(maxValue int) *Histogram {
	if maxValue < 0 {
		maxValue = 0
	}
	return &Histogram{counts: make([]uint64, maxValue+1)}
}

// Observe records one occurrence of v. Negative values are clamped to 0.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v > h.max {
		h.max = v
	}
	if v < len(h.counts) {
		h.counts[v]++
	} else {
		h.overflow++
	}
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Max returns the largest observed value (0 if empty).
func (h *Histogram) Max() int { return h.max }

// Count returns the number of observations equal to v.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// TailProb returns P(X >= m): the fraction of observations at or above m.
// This is the quantity plotted in Figure 3 of the paper (the probability
// that stash occupancy reaches m, i.e. the failure probability of a stash
// of capacity m-1... sized C = m).
func (h *Histogram) TailProb(m int) float64 {
	if h.total == 0 {
		return 0
	}
	if m <= 0 {
		return 1
	}
	var tail uint64 = h.overflow
	for v := m; v < len(h.counts); v++ {
		tail += h.counts[v]
	}
	return float64(tail) / float64(h.total)
}

// Mean returns the arithmetic mean of the observations (overflow bin
// observations are excluded from the numerator but counted in the
// denominator, so Mean is a lower bound if overflow occurred).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Quantile returns the smallest value q such that P(X <= q) >= p.
// The overflow bin maps to maxValue+1.
func (h *Histogram) Quantile(p float64) int {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for v, c := range h.counts {
		cum += c
		if cum >= target {
			return v
		}
	}
	return len(h.counts)
}

// Running accumulates a streaming scalar summary: count, mean, variance
// (Welford's algorithm), min and max.
type Running struct {
	n          uint64
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Observe adds x to the summary.
func (r *Running) Observe(x float64) {
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
	if !r.hasExtrema || x < r.min {
		r.min = x
	}
	if !r.hasExtrema || x > r.max {
		r.max = x
	}
	r.hasExtrema = true
}

// N returns the number of observations.
func (r *Running) N() uint64 { return r.n }

// Mean returns the arithmetic mean (0 if empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the population variance (0 if fewer than 2 observations).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (0 if empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 if empty).
func (r *Running) Max() float64 { return r.max }

// String summarizes the distribution for logs.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		r.n, r.Mean(), r.Std(), r.min, r.max)
}

// Median returns the median of a copy of xs (0 if empty). It is a
// convenience for small result sets in the experiment harnesses.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// GeoMean returns the geometric mean of xs (0 if empty or any x <= 0).
// Figure 12 style normalized-slowdown averages conventionally use it.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
