package placement

import (
	"testing"

	"repro/internal/treemath"
)

func TestNaiveLayout(t *testing.T) {
	tr := treemath.New(3)
	m := NewNaive(tr, 128, 4096)
	if m.Name() != "naive" {
		t.Error("name")
	}
	if m.BucketAddr(0) != 4096 || m.BucketAddr(5) != 4096+5*128 {
		t.Error("naive addressing wrong")
	}
	if m.Size() != 15*128 {
		t.Errorf("Size=%d want %d", m.Size(), 15*128)
	}
}

func TestSubtreeK(t *testing.T) {
	tr := treemath.New(10)
	// Node of 8 KB, buckets of 448 B: (2^k - 1)*448 <= 8192 -> k = 4.
	s, err := NewSubtree(tr, 448, 8192, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 4 {
		t.Errorf("K=%d want 4", s.K())
	}
	// 2-channel node (16 KB): (2^5 - 1)*448 = 13888 <= 16384 -> k = 5.
	s2, _ := NewSubtree(tr, 448, 16384, 0)
	if s2.K() != 5 {
		t.Errorf("K=%d want 5", s2.K())
	}
}

func TestSubtreeValidation(t *testing.T) {
	tr := treemath.New(4)
	if _, err := NewSubtree(tr, 0, 4096, 0); err == nil {
		t.Error("zero bucket accepted")
	}
	if _, err := NewSubtree(tr, 512, 256, 0); err == nil {
		t.Error("node smaller than bucket accepted")
	}
}

func TestSubtreeNoOverlap(t *testing.T) {
	tr := treemath.New(8)
	for _, nodeBytes := range []int{1024, 4096, 8192} {
		s, err := NewSubtree(tr, 128, nodeBytes, 0)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]uint64{}
		for flat := uint64(0); flat < tr.NumBuckets(); flat++ {
			base := s.BucketAddr(flat)
			if base+128 > s.Size() {
				t.Fatalf("node=%d: bucket %d at %d spills past size %d", nodeBytes, flat, base, s.Size())
			}
			if prev, dup := seen[base]; dup {
				t.Fatalf("node=%d: buckets %d and %d collide at %d", nodeBytes, prev, flat, base)
			}
			seen[base] = flat
			if base%128 != 0 {
				t.Fatalf("bucket %d not bucket-aligned: %d", flat, base)
			}
		}
	}
}

func TestSubtreeGroupsShareNode(t *testing.T) {
	// All buckets of one k-level subtree must land inside one node-stride
	// window; buckets of different subtrees must not share a window.
	tr := treemath.New(9)
	s, err := NewSubtree(tr, 128, 2048, 0) // k = 4: (2^4-1)*128 = 1920 <= 2048
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 4 {
		t.Fatalf("K=%d want 4", s.K())
	}
	nodeOf := func(flat uint64) uint64 { return s.BucketAddr(flat) / 2048 }
	// Walk a path: within each group of k levels the node must not change;
	// across groups it must.
	for leaf := uint64(0); leaf < tr.NumLeaves(); leaf += 37 {
		var prevNode uint64
		for d := 0; d <= tr.LeafLevel(); d++ {
			n := nodeOf(tr.PathBucket(leaf, d))
			if d == 0 {
				prevNode = n
				continue
			}
			sameGroup := d/s.K() == (d-1)/s.K()
			if sameGroup && n != prevNode {
				t.Fatalf("leaf %d level %d: node changed within a group", leaf, d)
			}
			if !sameGroup && n == prevNode {
				t.Fatalf("leaf %d level %d: node did not change across groups", leaf, d)
			}
			prevNode = n
		}
	}
}

func TestSubtreePathTouchesFewNodes(t *testing.T) {
	// The point of the layout: a path of L+1 buckets touches only
	// ceil((L+1)/k) nodes, versus up to L+1 under the naive layout.
	tr := treemath.New(9)
	sub, err := NewSubtree(tr, 128, 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	naive := NewNaive(tr, 128, 0)
	countNodes := func(m Mapper, leaf uint64) int {
		nodes := map[uint64]bool{}
		for _, a := range PathAddrs(m, tr, leaf, nil) {
			nodes[a/2048] = true
		}
		return len(nodes)
	}
	wantSub := (tr.Levels() + sub.K() - 1) / sub.K()
	for leaf := uint64(0); leaf < tr.NumLeaves(); leaf += 41 {
		if got := countNodes(sub, leaf); got != wantSub {
			t.Errorf("leaf %d: subtree path touches %d nodes want %d", leaf, got, wantSub)
		}
		if got := countNodes(naive, leaf); got <= wantSub {
			t.Errorf("leaf %d: naive path touches %d nodes, expected more than %d", leaf, got, wantSub)
		}
	}
}

func TestPathAddrsLength(t *testing.T) {
	tr := treemath.New(6)
	m := NewNaive(tr, 64, 0)
	addrs := PathAddrs(m, tr, 13, nil)
	if len(addrs) != 7 {
		t.Fatalf("path length %d want 7", len(addrs))
	}
	if addrs[0] != 0 {
		t.Errorf("root should be at 0")
	}
}

func TestSubtreeSizeCoversDeepTrees(t *testing.T) {
	// Size must cover the deepest bucket even when L+1 is not a multiple
	// of k.
	for _, l := range []int{5, 6, 7, 8} {
		tr := treemath.New(l)
		s, err := NewSubtree(tr, 100, 1024, 0)
		if err != nil {
			t.Fatal(err)
		}
		var maxEnd uint64
		for flat := uint64(0); flat < tr.NumBuckets(); flat++ {
			if end := s.BucketAddr(flat) + 100; end > maxEnd {
				maxEnd = end
			}
		}
		if maxEnd > s.Size() {
			t.Errorf("L=%d: max end %d exceeds Size %d", l, maxEnd, s.Size())
		}
	}
}
