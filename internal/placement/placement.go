// Package placement maps ORAM tree buckets to physical byte addresses.
// The naive layout stores buckets as a flat array, which destroys row-
// buffer locality: two consecutive buckets on a path land in unrelated
// rows. The subtree layout of Section 3.3.4 (Figure 6) packs each k-level
// subtree contiguously into one "node" sized to the aggregate row-buffer
// footprint (row bytes × channels), so a path read touches one row per
// channel per k levels.
package placement

import (
	"fmt"

	"repro/internal/treemath"
)

// Mapper places buckets in physical memory.
type Mapper interface {
	// Name identifies the strategy in reports.
	Name() string
	// BucketAddr returns the base byte address of a bucket (flat index).
	BucketAddr(flat uint64) uint64
	// Size returns the total bytes the layout spans.
	Size() uint64
}

// Naive lays buckets out flat in heap order.
type Naive struct {
	base        uint64
	bucketBytes uint64
	buckets     uint64
}

// NewNaive builds the flat layout starting at base.
func NewNaive(tree treemath.Tree, bucketBytes int, base uint64) *Naive {
	return &Naive{base: base, bucketBytes: uint64(bucketBytes), buckets: tree.NumBuckets()}
}

// Name implements Mapper.
func (n *Naive) Name() string { return "naive" }

// BucketAddr implements Mapper.
func (n *Naive) BucketAddr(flat uint64) uint64 { return n.base + flat*n.bucketBytes }

// Size implements Mapper.
func (n *Naive) Size() uint64 { return n.buckets * n.bucketBytes }

// Subtree packs each k-level subtree into one node of nodeStride bytes.
type Subtree struct {
	tree        treemath.Tree
	base        uint64
	bucketBytes uint64
	k           int    // levels per packed subtree
	nodeStride  uint64 // bytes per packed subtree (aligned container)
	groups      int    // ceil(levels / k)
}

// NewSubtree builds the packed layout. nodeBytes is the target node size
// (the paper uses rowBytes × channels); k is derived as the largest number
// of levels whose subtree fits, and the node stride is padded up to
// nodeBytes so nodes align with row-buffer boundaries.
func NewSubtree(tree treemath.Tree, bucketBytes int, nodeBytes int, base uint64) (*Subtree, error) {
	if bucketBytes <= 0 {
		return nil, fmt.Errorf("placement: bucket size must be positive")
	}
	if nodeBytes < bucketBytes {
		return nil, fmt.Errorf("placement: node size %d smaller than one bucket (%d)", nodeBytes, bucketBytes)
	}
	k := 1
	for (uint64(1)<<uint(k+1)-1)*uint64(bucketBytes) <= uint64(nodeBytes) && k < tree.Levels() {
		k++
	}
	s := &Subtree{
		tree:        tree,
		base:        base,
		bucketBytes: uint64(bucketBytes),
		k:           k,
		nodeStride:  uint64(nodeBytes),
		groups:      (tree.Levels() + k - 1) / k,
	}
	// If the whole tree fits in fewer bytes than one node, shrink the
	// stride to the actual subtree footprint (still bucket-aligned).
	if minBytes := (uint64(1)<<uint(k) - 1) * uint64(bucketBytes); s.nodeStride < minBytes {
		return nil, fmt.Errorf("placement: internal stride error")
	}
	return s, nil
}

// K returns the number of tree levels packed per node.
func (s *Subtree) K() int { return s.k }

// Name implements Mapper.
func (s *Subtree) Name() string { return "subtree" }

// BucketAddr implements Mapper. A bucket at (level d, position i) belongs
// to the group g = d/k; its subtree root is at level g·k with position
// i >> (d mod k); within the subtree it occupies local heap position
// 2^(d mod k) - 1 + (i & (2^(d mod k) - 1)).
func (s *Subtree) BucketAddr(flat uint64) uint64 {
	d := s.tree.LevelOf(flat)
	i := s.tree.PosOf(flat)
	g := d / s.k
	r := uint(d % s.k)
	rootPos := i >> r
	// Subtrees are numbered breadth-first over the 2^k-ary tree: groups
	// above g contribute (2^(g·k) - 1) / (2^k - 1) nodes.
	nodesAbove := ((uint64(1) << uint(g*s.k)) - 1) / ((uint64(1) << uint(s.k)) - 1)
	nodeID := nodesAbove + rootPos
	local := (uint64(1) << r) - 1 + (i & ((uint64(1) << r) - 1))
	return s.base + nodeID*s.nodeStride + local*s.bucketBytes
}

// Size implements Mapper.
func (s *Subtree) Size() uint64 {
	var nodes uint64
	for g := 0; g < s.groups; g++ {
		nodes += uint64(1) << uint(g*s.k)
	}
	return nodes * s.nodeStride
}

// PathAddrs appends the base byte address of every bucket on the path to
// leaf (root first) to dst.
func PathAddrs(m Mapper, tree treemath.Tree, leaf uint64, dst []uint64) []uint64 {
	for d := 0; d <= tree.LeafLevel(); d++ {
		dst = append(dst, m.BucketAddr(tree.PathBucket(leaf, d)))
	}
	return dst
}
