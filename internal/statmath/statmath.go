// Package statmath holds the snapshot-diff arithmetic shared by the
// timed layer's counter structs (dram.Stats, membus.Stats). Both keep
// "subtract an earlier snapshot of the same counters" methods whose field
// enumeration used to be written out twice; SubCounters is the single
// reflective implementation both delegate to, so a field added to either
// struct is diffed correctly by construction.
package statmath

import (
	"fmt"
	"reflect"
)

// SubCounters returns cur minus prev, field by field: uint64 fields
// subtract (plain counters become interval counts; monotone frontiers and
// high-water marks become their advance over the interval), nested structs
// recurse, and int fields — configuration constants carried in snapshots,
// like an access granularity — are kept from cur unchanged. Any other
// field kind panics: the counter structs are closed-world, and a new kind
// must decide its diff semantics here explicitly.
func SubCounters[T any](cur, prev T) T {
	cv := reflect.ValueOf(&cur).Elem()
	subStruct(cv, reflect.ValueOf(prev))
	return cur
}

func subStruct(cv, pv reflect.Value) {
	for i := 0; i < cv.NumField(); i++ {
		f := cv.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(f.Uint() - pv.Field(i).Uint())
		case reflect.Struct:
			subStruct(f, pv.Field(i))
		case reflect.Int:
			// Configuration constant (e.g. AccessBytes): carried, not diffed.
		default:
			panic(fmt.Sprintf("statmath: field %s has unsupported kind %s",
				cv.Type().Field(i).Name, f.Kind()))
		}
	}
}
