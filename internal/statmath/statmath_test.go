package statmath

import "testing"

type inner struct {
	Hits, Frontier uint64
}

type outer struct {
	In    inner
	Count uint64
	Bytes int
}

func TestSubCountersDiffsNestedCounters(t *testing.T) {
	cur := outer{In: inner{Hits: 10, Frontier: 900}, Count: 7, Bytes: 64}
	prev := outer{In: inner{Hits: 4, Frontier: 300}, Count: 2, Bytes: 64}
	got := SubCounters(cur, prev)
	want := outer{In: inner{Hits: 6, Frontier: 600}, Count: 5, Bytes: 64}
	if got != want {
		t.Errorf("SubCounters = %+v, want %+v", got, want)
	}
	// Inputs are passed by value: cur must be untouched.
	if cur.Count != 7 || cur.In.Hits != 10 {
		t.Errorf("SubCounters mutated its input: %+v", cur)
	}
}

func TestSubCountersSelfIsZeroExceptConfig(t *testing.T) {
	s := outer{In: inner{Hits: 3, Frontier: 5}, Count: 9, Bytes: 32}
	got := SubCounters(s, s)
	if got.In.Hits != 0 || got.In.Frontier != 0 || got.Count != 0 {
		t.Errorf("self-diff left nonzero counters: %+v", got)
	}
	if got.Bytes != 32 {
		t.Errorf("self-diff dropped the config constant: %+v", got)
	}
}

func TestSubCountersRejectsUnknownKinds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SubCounters accepted a float field without deciding its semantics")
		}
	}()
	type bad struct{ Rate float64 }
	SubCounters(bad{Rate: 1}, bad{Rate: 2})
}
