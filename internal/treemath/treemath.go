// Package treemath provides index arithmetic for the complete binary trees
// used throughout the Path ORAM implementation: bucket numbering, path
// enumeration and the common-path-length (CPL) metric from the paper.
//
// Terminology follows Ren et al. (ISCA 2013), Section 2.1: the tree has
// L+1 levels, the root is level 0 and the leaves are level L. Leaves are
// labeled 0..2^L-1 (the paper numbers them 1..2^L; we use 0-based labels
// internally). Buckets are addressed either by (level, position-in-level)
// or by a flat index in heap order: flat = 2^level - 1 + position.
package treemath

import (
	"fmt"
	"math/bits"
)

// MaxLeafLevel bounds L so that leaf labels and flat bucket indices fit
// comfortably in uint64 and position-map labels fit in uint32 with room for
// a sentinel.
const MaxLeafLevel = 30

// Tree describes a complete binary tree with leaf level L (L+1 levels in
// total). The zero value is a degenerate single-bucket tree (L = 0).
type Tree struct {
	leafLevel int
}

// New returns a Tree with the given leaf level L. It panics if L is
// negative or exceeds MaxLeafLevel; configuration validation belongs to the
// callers, and an invalid level here is always a programming error.
func New(leafLevel int) Tree {
	if leafLevel < 0 || leafLevel > MaxLeafLevel {
		panic(fmt.Sprintf("treemath: leaf level %d out of range [0,%d]", leafLevel, MaxLeafLevel))
	}
	return Tree{leafLevel: leafLevel}
}

// LeafLevel returns L, the level index of the leaves.
func (t Tree) LeafLevel() int { return t.leafLevel }

// Levels returns the number of levels, L+1.
func (t Tree) Levels() int { return t.leafLevel + 1 }

// NumLeaves returns 2^L.
func (t Tree) NumLeaves() uint64 { return 1 << uint(t.leafLevel) }

// NumBuckets returns the total number of buckets, 2^(L+1) - 1.
func (t Tree) NumBuckets() uint64 { return 1<<uint(t.leafLevel+1) - 1 }

// FlatIndex converts (level, position) to the flat heap-order bucket index.
func (t Tree) FlatIndex(level int, pos uint64) uint64 {
	return 1<<uint(level) - 1 + pos
}

// LevelOf returns the level of the bucket with the given flat index.
func (t Tree) LevelOf(flat uint64) int {
	return bits.Len64(flat+1) - 1
}

// PosOf returns the position within its level of the bucket with the given
// flat index.
func (t Tree) PosOf(flat uint64) uint64 {
	level := t.LevelOf(flat)
	return flat + 1 - 1<<uint(level)
}

// PathBucket returns the flat index of the bucket on the path to leaf at the
// given level. At level d the path to leaf l passes through position
// l >> (L - d).
func (t Tree) PathBucket(leaf uint64, level int) uint64 {
	pos := leaf >> uint(t.leafLevel-level)
	return t.FlatIndex(level, pos)
}

// AppendPath appends the flat indices of the buckets on the path from the
// root to the given leaf (in root-to-leaf order) to dst and returns the
// extended slice. The path always has exactly L+1 buckets.
func (t Tree) AppendPath(leaf uint64, dst []uint64) []uint64 {
	for d := 0; d <= t.leafLevel; d++ {
		dst = append(dst, t.PathBucket(leaf, d))
	}
	return dst
}

// Parent returns the flat index of the parent bucket. The root (index 0) is
// its own parent.
func (t Tree) Parent(flat uint64) uint64 {
	if flat == 0 {
		return 0
	}
	return (flat - 1) / 2
}

// LeftChild returns the flat index of the left child of the given bucket.
func (t Tree) LeftChild(flat uint64) uint64 { return 2*flat + 1 }

// RightChild returns the flat index of the right child of the given bucket.
func (t Tree) RightChild(flat uint64) uint64 { return 2*flat + 2 }

// Sibling returns the flat index of the other child of flat's parent. The
// root is returned unchanged.
func (t Tree) Sibling(flat uint64) uint64 {
	if flat == 0 {
		return 0
	}
	if flat%2 == 1 { // left child
		return flat + 1
	}
	return flat - 1
}

// IsLeafBucket reports whether the flat index denotes a leaf-level bucket.
func (t Tree) IsLeafBucket(flat uint64) bool {
	return t.LevelOf(flat) == t.leafLevel
}

// CommonPathLength returns CPL(a, b): the number of buckets shared by the
// paths to leaves a and b. It is between 1 (only the root) and L+1
// (identical leaves), matching Section 3.1.3 of the paper.
func (t Tree) CommonPathLength(a, b uint64) int {
	diff := a ^ b
	if diff == 0 {
		return t.leafLevel + 1
	}
	// The paths diverge below the level of the highest differing bit.
	return t.leafLevel + 1 - bits.Len64(diff)
}

// DeepestLevel returns the deepest level at which a block mapped to
// blockLeaf may be placed when evicting along the path to pathLeaf.
// It equals CommonPathLength - 1 (levels are 0-based).
func (t Tree) DeepestLevel(blockLeaf, pathLeaf uint64) int {
	return t.CommonPathLength(blockLeaf, pathLeaf) - 1
}

// ExpectedCPL returns E[CPL(p, p')] = 2 - 1/2^L for two uniformly random
// leaves, the reference value used by the Figure 4 attack analysis.
func (t Tree) ExpectedCPL() float64 {
	return 2 - 1/float64(uint64(1)<<uint(t.leafLevel))
}

// ValidLeaf reports whether the label is a valid leaf of this tree.
func (t Tree) ValidLeaf(leaf uint64) bool { return leaf < t.NumLeaves() }
