package treemath

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, l := range []int{-1, MaxLeafLevel + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", l)
				}
			}()
			New(l)
		}()
	}
}

func TestCounts(t *testing.T) {
	cases := []struct {
		L       int
		leaves  uint64
		buckets uint64
	}{
		{0, 1, 1},
		{1, 2, 3},
		{3, 8, 15},
		{10, 1024, 2047},
	}
	for _, c := range cases {
		tr := New(c.L)
		if got := tr.NumLeaves(); got != c.leaves {
			t.Errorf("L=%d NumLeaves=%d want %d", c.L, got, c.leaves)
		}
		if got := tr.NumBuckets(); got != c.buckets {
			t.Errorf("L=%d NumBuckets=%d want %d", c.L, got, c.buckets)
		}
		if got := tr.Levels(); got != c.L+1 {
			t.Errorf("L=%d Levels=%d want %d", c.L, got, c.L+1)
		}
	}
}

func TestFlatIndexRoundTrip(t *testing.T) {
	tr := New(6)
	var flat uint64
	for level := 0; level <= 6; level++ {
		for pos := uint64(0); pos < 1<<uint(level); pos++ {
			got := tr.FlatIndex(level, pos)
			if got != flat {
				t.Fatalf("FlatIndex(%d,%d)=%d want %d", level, pos, got, flat)
			}
			if l := tr.LevelOf(flat); l != level {
				t.Fatalf("LevelOf(%d)=%d want %d", flat, l, level)
			}
			if p := tr.PosOf(flat); p != pos {
				t.Fatalf("PosOf(%d)=%d want %d", flat, p, pos)
			}
			flat++
		}
	}
	if flat != tr.NumBuckets() {
		t.Fatalf("enumerated %d buckets want %d", flat, tr.NumBuckets())
	}
}

func TestPathStructure(t *testing.T) {
	tr := New(3) // paper Figure 1 geometry: L=3, 8 leaves
	path := tr.AppendPath(5, nil)
	if len(path) != 4 {
		t.Fatalf("path length %d want 4", len(path))
	}
	if path[0] != 0 {
		t.Errorf("path[0]=%d want root 0", path[0])
	}
	// Each successive bucket must be a child of the previous one.
	for i := 1; i < len(path); i++ {
		if tr.Parent(path[i]) != path[i-1] {
			t.Errorf("path[%d]=%d is not a child of %d", i, path[i], path[i-1])
		}
	}
	// The last bucket is the leaf bucket for label 5.
	if !tr.IsLeafBucket(path[3]) {
		t.Errorf("path end %d is not a leaf bucket", path[3])
	}
	if tr.PosOf(path[3]) != 5 {
		t.Errorf("leaf bucket position %d want 5", tr.PosOf(path[3]))
	}
}

func TestParentChildSibling(t *testing.T) {
	tr := New(4)
	if tr.Parent(0) != 0 {
		t.Errorf("root parent should be root")
	}
	if tr.Sibling(0) != 0 {
		t.Errorf("root sibling should be root")
	}
	for flat := uint64(0); flat < tr.NumBuckets()/2; flat++ {
		l, r := tr.LeftChild(flat), tr.RightChild(flat)
		if tr.Parent(l) != flat || tr.Parent(r) != flat {
			t.Fatalf("parent(children of %d) mismatch", flat)
		}
		if tr.Sibling(l) != r || tr.Sibling(r) != l {
			t.Fatalf("sibling mismatch at %d", flat)
		}
		if tr.LevelOf(l) != tr.LevelOf(flat)+1 {
			t.Fatalf("child level mismatch at %d", flat)
		}
	}
}

func TestCommonPathLengthExamples(t *testing.T) {
	// Paper Section 3.1.3 uses Figure 1 (L=3) examples with 1-based leaves:
	// CPL(1,2)=3 and CPL(3,8)=1. Our leaves are 0-based: (0,1) and (2,7).
	tr := New(3)
	if got := tr.CommonPathLength(0, 1); got != 3 {
		t.Errorf("CPL(0,1)=%d want 3", got)
	}
	if got := tr.CommonPathLength(2, 7); got != 1 {
		t.Errorf("CPL(2,7)=%d want 1", got)
	}
	if got := tr.CommonPathLength(6, 6); got != 4 {
		t.Errorf("CPL(6,6)=%d want L+1=4", got)
	}
}

func TestCommonPathLengthMatchesPathIntersection(t *testing.T) {
	tr := New(7)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := rng.Uint64() % tr.NumLeaves()
		b := rng.Uint64() % tr.NumLeaves()
		pa := tr.AppendPath(a, nil)
		pb := tr.AppendPath(b, nil)
		shared := 0
		for j := range pa {
			if pa[j] == pb[j] {
				shared++
			}
		}
		if got := tr.CommonPathLength(a, b); got != shared {
			t.Fatalf("CPL(%d,%d)=%d want %d", a, b, got, shared)
		}
	}
}

func TestCPLDistribution(t *testing.T) {
	// P(CPL = l) = 2^-l for 1 <= l <= L, and 2^-L for l = L+1 (paper 3.1.3).
	// Check the empirical mean against E[CPL] = 2 - 2^-L.
	tr := New(5)
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(tr.CommonPathLength(rng.Uint64()%32, rng.Uint64()%32))
	}
	mean := sum / n
	want := tr.ExpectedCPL()
	if mean < want-0.02 || mean > want+0.02 {
		t.Errorf("empirical mean CPL %.4f want %.4f +- 0.02", mean, want)
	}
}

func TestDeepestLevelProperty(t *testing.T) {
	tr := New(9)
	// The bucket at DeepestLevel must lie on both paths; one level deeper
	// must not (unless the leaves are equal).
	f := func(a, b uint16) bool {
		la := uint64(a) % tr.NumLeaves()
		lb := uint64(b) % tr.NumLeaves()
		d := tr.DeepestLevel(la, lb)
		if tr.PathBucket(la, d) != tr.PathBucket(lb, d) {
			return false
		}
		if la != lb && d < tr.LeafLevel() {
			if tr.PathBucket(la, d+1) == tr.PathBucket(lb, d+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidLeaf(t *testing.T) {
	tr := New(4)
	if !tr.ValidLeaf(0) || !tr.ValidLeaf(15) {
		t.Error("leaves 0 and 15 should be valid for L=4")
	}
	if tr.ValidLeaf(16) {
		t.Error("leaf 16 should be invalid for L=4")
	}
}

func TestExpectedCPL(t *testing.T) {
	if got := New(5).ExpectedCPL(); got != 2-1.0/32 {
		t.Errorf("ExpectedCPL(L=5)=%v want %v", got, 2-1.0/32)
	}
}
