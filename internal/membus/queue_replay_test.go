package membus

import (
	"testing"

	"repro/internal/dram"
)

// TestQueueInOrderHandChainedReplay is the opt-in regression pin: with
// the default in-order policy, the event-ordered bus must bit-reproduce
// a hand-built reference that replays the same per-port stage streams
// into a bare dram.System in global (arrival, port index) key order,
// with arrival = max(floor at submission, previous stage's completion).
// If this holds, enabling the event queue did not perturb a single
// modeled cycle of the pre-existing in-order model — the FR-FCFS
// scheduler is opt-in.
func TestQueueInOrderHandChainedReplay(t *testing.T) {
	const nPorts, nOps = 3, 50
	streams := queueStreams(nPorts, nOps, 77)

	// The bus under test: interleaved submission, no intermediate quiesce.
	b := newBus(t, Config{Channels: 2, Sched: dram.SchedConfig{Policy: dram.SchedInOrder}})
	ports := make([]*Port, nPorts)
	for s := range ports {
		ports[s] = attach(t, b, 5, 256)
	}
	for i := 0; i < nOps; i++ {
		for s := 0; s < nPorts; s++ {
			playStream(ports[s], streams[s][i])
		}
	}
	got := b.SystemStats()
	gotFrontier := b.Cycles()

	// The reference: a bare system fed whole stages in key order.
	ref, err := dram.New(dram.MicronGeometry(2), dram.DDR3Micron())
	if err != nil {
		t.Fatal(err)
	}
	next := make([]int, nPorts) // next stage index per port
	prevDone := make([]uint64, nPorts)
	var frontier uint64
	// A stage's arrival is max(floor at submission, the port's previous
	// completion) — the depth-1 in-flight ring — so arrivals materialize
	// one retirement at a time; pick the minimum key each round.
	g := uint64(ref.Geometry().AccessBytes)
	var reqs []dram.Request
	for {
		// Pick the pending head with the smallest (arrival, port) key.
		best, bestArr := -1, uint64(0)
		for s := 0; s < nPorts; s++ {
			if next[s] >= nOps {
				continue
			}
			arr := streams[s][next[s]].floor
			if prevDone[s] > arr {
				arr = prevDone[s]
			}
			if best == -1 || arr < bestArr {
				best, bestArr = s, arr
			}
		}
		if best == -1 {
			break
		}
		ev := streams[best][next[best]]
		p := ports[best]
		leaf := ev.leaf % p.tree.NumLeaves()
		reqs = reqs[:0]
		for d := 0; d <= p.tree.LeafLevel(); d++ {
			base := p.mapper.BucketAddr(p.tree.PathBucket(leaf, d))
			for off := uint64(0); off < uint64(p.bucketBytes); off += g {
				reqs = append(reqs, dram.Request{Addr: base + off, Write: ev.write})
			}
		}
		done := ref.AccessAll(bestArr, reqs)
		prevDone[best] = done
		if done > frontier {
			frontier = done
		}
		next[best]++
	}

	if refStats := ref.Stats(); got != refStats {
		t.Fatalf("bus system stats diverged from hand-chained replay:\nbus %+v\nref %+v", got, refStats)
	}
	if gotFrontier != frontier {
		t.Fatalf("bus frontier %d != hand-chained frontier %d", gotFrontier, frontier)
	}
	// Per-port clocks: each port's ReadyAt is its own last completion.
	for s, p := range ports {
		if r := p.ReadyAt(); r != prevDone[s] {
			t.Fatalf("port %d ReadyAt %d != hand-chained completion %d", s, r, prevDone[s])
		}
	}
}
