package membus

import (
	"math/rand"
	"testing"

	"repro/internal/dram"
)

func newBus(t *testing.T, cfg Config) *Bus {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func attach(t *testing.T, b *Bus, leafLevel, bucketBytes int) *Port {
	t.Helper()
	p, err := b.AttachShard(leafLevel, bucketBytes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDRAMBusPortStatsMergeToSystem pins the aggregation invariant the
// serving layer depends on: merging every port's DRAM counters reproduces
// the shared memory system's own totals exactly — per-shard attribution
// loses nothing and double-counts nothing.
func TestDRAMBusPortStatsMergeToSystem(t *testing.T) {
	b := newBus(t, Config{Channels: 2})
	ports := []*Port{
		attach(t, b, 4, 256),
		attach(t, b, 4, 256),
		attach(t, b, 3, 512),
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		p := ports[rng.Intn(len(ports))]
		leaf := rng.Uint64() % p.tree.NumLeaves()
		if rng.Intn(2) == 0 {
			p.ReadPath(leaf, nil)
		} else {
			p.WritePath(leaf, rng.Intn(2) == 0)
		}
	}
	var merged dram.Stats
	for _, st := range b.ShardStats() {
		merged = merged.Merge(st.DRAM)
	}
	if sys := b.SystemStats(); merged != sys {
		t.Errorf("merged port stats %+v != system stats %+v", merged, sys)
	}
	bus := b.Stats()
	if bus.DRAM != b.SystemStats() {
		t.Errorf("Bus.Stats DRAM side %+v != system %+v", bus.DRAM, b.SystemStats())
	}
	if bus.Cycles != b.Cycles() {
		t.Errorf("merged Cycles %d != frontier %d", bus.Cycles, b.Cycles())
	}
	if bus.PathReads+bus.PathWrites != 200 {
		t.Errorf("charged %d stages, want 200", bus.PathReads+bus.PathWrites)
	}
}

// TestDRAMBusShardsGetDisjointAddressRegions checks the physical layout:
// two attached shards must never map a bucket to overlapping byte ranges,
// and the subtree layout must keep every bucket inside the shard's region.
func TestDRAMBusShardsGetDisjointAddressRegions(t *testing.T) {
	for _, layout := range []Layout{LayoutSubtree, LayoutNaive} {
		b := newBus(t, Config{Channels: 2, Layout: layout})
		p1 := attach(t, b, 5, 256)
		p2 := attach(t, b, 5, 256)
		hi1 := uint64(0)
		for flat := uint64(0); flat < p1.tree.NumBuckets(); flat++ {
			if end := p1.mapper.BucketAddr(flat) + uint64(p1.bucketBytes); end > hi1 {
				hi1 = end
			}
		}
		lo2 := ^uint64(0)
		for flat := uint64(0); flat < p2.tree.NumBuckets(); flat++ {
			if a := p2.mapper.BucketAddr(flat); a < lo2 {
				lo2 = a
			}
		}
		if hi1 > lo2 {
			t.Errorf("layout %d: shard 0 region ends at %d, shard 1 starts at %d (overlap)", layout, hi1, lo2)
		}
	}
}

// TestDRAMBusSubtreeLayoutRaisesRowHits reproduces the Figure 11 premise
// at the serving layer: the packed-subtree placement must achieve a
// strictly higher row-buffer hit rate than the naive flat layout on the
// same random path workload.
func TestDRAMBusSubtreeLayoutRaisesRowHits(t *testing.T) {
	run := func(layout Layout) float64 {
		b := newBus(t, Config{Channels: 1, Layout: layout})
		p := attach(t, b, 10, 256)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 400; i++ {
			leaf := rng.Uint64() % p.tree.NumLeaves()
			p.ReadPath(leaf, nil)
			p.WritePath(leaf, false)
		}
		return b.Stats().RowHitRate()
	}
	naive, subtree := run(LayoutNaive), run(LayoutSubtree)
	if subtree <= naive {
		t.Errorf("subtree row-hit rate %.3f not above naive %.3f", subtree, naive)
	}
}

// TestDRAMBusInterleaveBeatsSerialized is the intra-access-overlap
// acceptance property: with two shards issuing identical stage streams,
// the shared scheduler's per-port clocks (shard A's write-backs
// overlapping shard B's reads in modeled time) must finish in fewer
// cycles than the serialized baseline, which issues every stage at the
// global completion frontier.
func TestDRAMBusInterleaveBeatsSerialized(t *testing.T) {
	run := func(serialize bool) uint64 {
		b := newBus(t, Config{Channels: 2, Serialize: serialize})
		ports := []*Port{attach(t, b, 8, 256), attach(t, b, 8, 256)}
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 100; i++ {
			for _, p := range ports {
				leaf := rng.Uint64() % p.tree.NumLeaves()
				p.ReadPath(leaf, nil)
				p.WritePath(leaf, false)
			}
		}
		return b.Cycles()
	}
	overlapped, serialized := run(false), run(true)
	if overlapped >= serialized {
		t.Errorf("interleaved run took %d cycles, serialized baseline %d — no overlap win", overlapped, serialized)
	}
}

// TestDRAMBusSkipMaskChargesNothing: buckets served from the write buffer
// (skip flags) must generate no DRAM traffic, only a skip count.
func TestDRAMBusSkipMaskChargesNothing(t *testing.T) {
	b := newBus(t, Config{Channels: 1})
	p := attach(t, b, 3, 256)
	skip := []bool{true, true, true, true}
	p.ReadPath(2, skip)
	st := p.Stats()
	if st.DRAM.Reads != 0 || st.DRAM.Writes != 0 {
		t.Errorf("fully skipped path still moved data: %+v", st.DRAM)
	}
	if st.SkippedBuckets != 4 {
		t.Errorf("SkippedBuckets = %d, want 4", st.SkippedBuckets)
	}
	if st.PathReads != 1 {
		t.Errorf("PathReads = %d, want 1", st.PathReads)
	}
	// A partial skip charges only the unskipped levels.
	p.ReadPath(2, []bool{false, true, true, true})
	st = p.Stats()
	perBucket := uint64(256 / b.Geometry().AccessBytes)
	if st.DRAM.Reads != perBucket {
		t.Errorf("partial skip read %d columns, want %d", st.DRAM.Reads, perBucket)
	}
}

// TestDRAMBusStatsMergeAndDerived covers membus.Stats arithmetic: Merge
// sums counters and maxes the frontier, and the derived rates stay sane.
func TestDRAMBusStatsMergeAndDerived(t *testing.T) {
	a := Stats{
		DRAM:      dram.Stats{Reads: 8, Writes: 4, RowHits: 6, RowMisses: 6},
		PathReads: 2, PathWrites: 1, DeferredWrites: 1, SkippedBuckets: 3,
		ReadCycles: 200, WriteCycles: 100, Cycles: 500, AccessBytes: 64,
	}
	b := Stats{
		DRAM:      dram.Stats{Reads: 2, Writes: 2, RowHits: 2, RowMisses: 2},
		PathReads: 1, PathWrites: 2, ReadCycles: 50, WriteCycles: 150, Cycles: 400,
	}
	m := a.Merge(b)
	if m.PathReads != 3 || m.PathWrites != 3 || m.DeferredWrites != 1 || m.SkippedBuckets != 3 {
		t.Errorf("merged stage counters wrong: %+v", m)
	}
	if m.Cycles != 500 {
		t.Errorf("Cycles = %d, want max 500", m.Cycles)
	}
	if m.AccessBytes != 64 {
		t.Errorf("AccessBytes not carried: %d", m.AccessBytes)
	}
	if got, want := m.RowHitRate(), 0.5; got != want {
		t.Errorf("RowHitRate = %v, want %v", got, want)
	}
	if got, want := m.BytesPerCycle(), float64(16*64)/500; got != want {
		t.Errorf("BytesPerCycle = %v, want %v", got, want)
	}
	if got := m.MeanReadCycles(); got != 250.0/3 {
		t.Errorf("MeanReadCycles = %v", got)
	}
	if got := m.MeanWriteCycles(); got != 250.0/3 {
		t.Errorf("MeanWriteCycles = %v", got)
	}
	var zero Stats
	if zero.BytesPerCycle() != 0 || zero.MeanReadCycles() != 0 || zero.MeanWriteCycles() != 0 {
		t.Error("zero stats must derive zero rates")
	}

	// Delta inverts accumulation: (earlier snapshot).Merge-style growth
	// diffed back out leaves exactly the interval's counters, with the
	// frontier fields as advances.
	later := a
	later.DRAM.Reads += 10
	later.DRAM.RowHits += 4
	later.DRAM.RowMisses += 6
	later.PathReads += 2
	later.ReadCycles += 300
	later.Cycles += 250
	d := later.Delta(a)
	if d.DRAM.Reads != 10 || d.DRAM.RowHits != 4 || d.DRAM.RowMisses != 6 {
		t.Errorf("Delta DRAM counters wrong: %+v", d.DRAM)
	}
	if d.PathReads != 2 || d.ReadCycles != 300 || d.Cycles != 250 {
		t.Errorf("Delta stage counters wrong: %+v", d)
	}
	if d.PathWrites != 0 || d.DeferredWrites != 0 || d.SkippedBuckets != 0 || d.WriteCycles != 0 {
		t.Errorf("Delta invented counters: %+v", d)
	}
	if d.AccessBytes != 64 {
		t.Errorf("Delta dropped AccessBytes: %d", d.AccessBytes)
	}
	if got, want := d.RowHitRate(), 0.4; got != want {
		t.Errorf("interval RowHitRate = %v, want %v", got, want)
	}
	if d2 := a.Delta(a); d2 != (Stats{AccessBytes: 64}) {
		t.Errorf("self-Delta not zero: %+v", d2)
	}
}

// TestDRAMBusRejectsBadConfig covers construction errors.
func TestDRAMBusRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Layout: Layout(99)}); err == nil {
		t.Error("unknown layout accepted")
	}
	b := newBus(t, Config{})
	if b.Geometry().Channels != 2 {
		t.Errorf("default channels = %d, want 2", b.Geometry().Channels)
	}
	if _, err := b.AttachShard(3, 0); err == nil {
		t.Error("zero bucket size accepted")
	}
}
