package membus

import (
	"reflect"
	"testing"

	"repro/internal/testutil"
)

// Completeness tests mirroring internal/core's: every field of the timing
// Stats (including the nested dram.Stats) must be carried by Merge and
// subtracted by Delta, so that adding a counter without updating either
// fails here instead of silently corrupting aggregated or interval views.

func TestTimingStatsMergeCoversAllFields(t *testing.T) {
	var b Stats
	testutil.FillDistinct(&b) // recurses into the nested dram.Stats
	// Identity under merge-with-zero holds for every merge semantic in
	// use (sum, max for the completion frontiers, first-nonzero for
	// AccessBytes), so a forgotten field breaks equality.
	if got := (Stats{}).Merge(b); !reflect.DeepEqual(got, b) {
		t.Errorf("Stats{}.Merge(b) = %+v, want %+v — Merge drops a field", got, b)
	}
	if got := b.Merge(Stats{}); !reflect.DeepEqual(got, b) {
		t.Errorf("b.Merge(Stats{}) = %+v, want %+v — Merge drops a field", got, b)
	}
}

func TestTimingStatsDeltaCoversAllFields(t *testing.T) {
	var b Stats
	testutil.FillDistinct(&b)
	// A snapshot minus itself must be all-zero except AccessBytes, which
	// is a configuration constant carried through intervals, not a
	// counter. A field Delta forgets to subtract survives with its
	// distinct non-zero value and is reported by name.
	got := b.Delta(b)
	checkZeroExcept(t, reflect.ValueOf(got), "", map[string]bool{"AccessBytes": true})
}

func checkZeroExcept(t *testing.T, v reflect.Value, prefix string, allow map[string]bool) {
	t.Helper()
	typ := v.Type()
	for i := 0; i < typ.NumField(); i++ {
		f := v.Field(i)
		name := prefix + typ.Field(i).Name
		if f.Kind() == reflect.Struct {
			checkZeroExcept(t, f, name+".", allow)
			continue
		}
		if allow[name] {
			continue
		}
		if !f.IsZero() {
			t.Errorf("Delta left field %s = %v — new counters must be subtracted", name, f.Interface())
		}
	}
}
