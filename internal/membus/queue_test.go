package membus

import (
	"math/rand"
	"testing"

	"repro/internal/dram"
)

// queueStream is one port's deterministic stage stream: the per-port
// program order the event queue's determinism argument is stated over.
type queueStream struct {
	leaf  uint64
	write bool
	floor uint64
}

func queueStreams(ports, n int, seed int64) [][]queueStream {
	out := make([][]queueStream, ports)
	for s := range out {
		rng := rand.New(rand.NewSource(seed + int64(s)*31))
		var floor uint64
		for i := 0; i < n; i++ {
			floor += uint64(rng.Intn(400))
			out[s] = append(out[s], queueStream{
				leaf:  rng.Uint64(), // reduced mod NumLeaves at play time
				write: rng.Intn(2) == 0,
				floor: floor,
			})
		}
	}
	return out
}

func playStream(p *Port, ev queueStream) {
	p.AdvanceTo(ev.floor)
	leaf := ev.leaf % p.tree.NumLeaves()
	if ev.write {
		p.WritePath(leaf, false)
	} else {
		p.ReadPath(leaf, nil)
	}
}

// TestQueueOrderIndependentOfSubmissionInterleaving pins the tentpole
// determinism property at the membus level: the shared system's totals
// are a function of the per-port stage streams alone, not of the global
// interleaving in which the ports happened to reach the bus. Two buses
// see identical per-port streams submitted in very different global
// orders (all-of-A-then-B vs alternating vs reversed round-robin); every
// port counter and the system totals must match exactly, under both
// policies.
func TestQueueOrderIndependentOfSubmissionInterleaving(t *testing.T) {
	for _, policy := range []dram.SchedPolicy{dram.SchedInOrder, dram.SchedFRFCFS} {
		const nPorts, nOps = 3, 40
		streams := queueStreams(nPorts, nOps, 17)

		run := func(interleave func(play func(port, i int))) (Stats, []Stats) {
			b := newBus(t, Config{Channels: 2, Sched: dram.SchedConfig{Policy: policy}})
			ports := make([]*Port, nPorts)
			for s := range ports {
				ports[s] = attach(t, b, 4, 256)
			}
			interleave(func(port, i int) { playStream(ports[port], streams[port][i]) })
			return b.Stats(), b.ShardStats()
		}

		refTotal, refShards := run(func(play func(port, i int)) {
			for s := 0; s < nPorts; s++ { // all of port 0, then 1, then 2
				for i := 0; i < nOps; i++ {
					play(s, i)
				}
			}
		})
		interleavings := []func(play func(port, i int)){
			func(play func(port, i int)) { // alternating
				for i := 0; i < nOps; i++ {
					for s := 0; s < nPorts; s++ {
						play(s, i)
					}
				}
			},
			func(play func(port, i int)) { // reversed round-robin
				for i := 0; i < nOps; i++ {
					for s := nPorts - 1; s >= 0; s-- {
						play(s, i)
					}
				}
			},
		}
		for k, il := range interleavings {
			total, shards := run(il)
			if total != refTotal {
				t.Errorf("policy %d interleaving %d: totals diverged\nref %+v\ngot %+v",
					policy, k, refTotal, total)
			}
			for s := range shards {
				if shards[s] != refShards[s] {
					t.Errorf("policy %d interleaving %d: port %d stats diverged\nref %+v\ngot %+v",
						policy, k, s, refShards[s], shards[s])
				}
			}
		}
	}
}

// TestQueueFRFCFSBeatsInOrderAcrossPorts is the cross-port payoff the
// open queue exists for: with two shards charging contemporaneous stages,
// the merged scheduling window interleaves their column accesses — row
// hits first preserves one port's still-open prefix rows instead of
// letting the other port's arrival-order traffic close them — so FR-FCFS
// must finish the same per-port streams in fewer modeled cycles and with
// a higher row-hit rate than in-order event-ordered retirement. The
// trees must be big enough that the two shards' regions share banks
// (leafLevel 8 spans every bank at this geometry).
func TestQueueFRFCFSBeatsInOrderAcrossPorts(t *testing.T) {
	const nPorts, nOps = 2, 200
	streams := queueStreams(nPorts, nOps, 23)
	run := func(policy dram.SchedPolicy) (uint64, float64) {
		b := newBus(t, Config{Channels: 2, Sched: dram.SchedConfig{Policy: policy}})
		ports := make([]*Port, nPorts)
		for s := range ports {
			ports[s] = attach(t, b, 8, 256)
		}
		for i := 0; i < nOps; i++ {
			for s := 0; s < nPorts; s++ {
				playStream(ports[s], streams[s][i])
			}
		}
		return b.Cycles(), b.SystemStats().RowHitRate()
	}
	inCycles, inHit := run(dram.SchedInOrder)
	frCycles, frHit := run(dram.SchedFRFCFS)
	if frCycles >= inCycles {
		t.Errorf("frfcfs frontier %d not below inorder %d", frCycles, inCycles)
	}
	if frHit <= inHit {
		t.Errorf("frfcfs row-hit %.3f not above inorder %.3f", frHit, inHit)
	}
}

// TestQueueOverflowValveBounds pins the memory bound: a port that keeps
// submitting while no one quiesces cannot grow the event queue past
// maxQueuedStages — the valve force-drains instead.
func TestQueueOverflowValveBounds(t *testing.T) {
	b := newBus(t, Config{Channels: 1})
	p := attach(t, b, 2, 64)
	q := attach(t, b, 2, 64)
	_ = q // an idle second port keeps the first port's stages unprovable, so they queue
	for i := 0; i < maxQueuedStages+100; i++ {
		p.ReadPath(uint64(i)%4, nil)
	}
	b.mu.Lock()
	queued, valved := b.queued, b.valveCount
	b.mu.Unlock()
	if queued > maxQueuedStages {
		t.Errorf("queued %d stages, valve should cap at %d", queued, maxQueuedStages)
	}
	if valved == 0 {
		t.Error("valve never fired despite sustained one-sided submission")
	}
	// The force-drain is a quiesce, not a loss: every stage is charged.
	if st := b.Stats(); st.PathReads != maxQueuedStages+100 {
		t.Errorf("charged %d reads, want %d", st.PathReads, maxQueuedStages+100)
	}
}
