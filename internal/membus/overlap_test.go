package membus

import (
	"math/rand"
	"testing"
)

// Tests for the bounded in-flight port window behind the Figure 5(b)
// overlap mode. Named TestOverlap* for the CI `-run 'PLB|Overlap'` shard.

// TestOverlapPortClockMonotonic pins the clock contract chaining depends
// on: AdvanceTo only ever raises ReadyAt, charges only ever raise it, and
// a stale (backward) AdvanceTo is a no-op.
func TestOverlapPortClockMonotonic(t *testing.T) {
	b := newBus(t, Config{Channels: 2})
	p := attach(t, b, 4, 256)
	p.AdvanceTo(100)
	if got := p.ReadyAt(); got != 100 {
		t.Fatalf("ReadyAt=%d after AdvanceTo(100)", got)
	}
	p.AdvanceTo(50) // backward: must not lower the clock
	if got := p.ReadyAt(); got != 100 {
		t.Fatalf("backward AdvanceTo lowered the clock to %d", got)
	}
	rng := rand.New(rand.NewSource(1))
	prev := p.ReadyAt()
	for i := 0; i < 100; i++ {
		leaf := rng.Uint64() % p.tree.NumLeaves()
		if i%2 == 0 {
			p.ReadPath(leaf, nil)
		} else {
			p.WritePath(leaf, false)
		}
		now := p.ReadyAt()
		if now < prev {
			t.Fatalf("stage %d lowered the clock: %d -> %d", i, prev, now)
		}
		prev = now
	}
	// Every stage arrived at or after the AdvanceTo floor.
	if st := p.Stats(); st.Cycles < 100 {
		t.Errorf("completion frontier %d below the explicit floor", st.Cycles)
	}
}

// TestOverlapPortBoundedInFlight pins the window semantics: depth 1
// reproduces the default strictly serial port exactly, and depth 2 lets
// stages pipeline so the same traffic completes no later — strictly
// earlier for any non-trivial run.
func TestOverlapPortBoundedInFlight(t *testing.T) {
	replay := func(depth int) Stats {
		b := newBus(t, Config{Channels: 2})
		p := attach(t, b, 6, 512)
		if depth > 0 {
			p.SetMaxInFlight(depth)
		}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 200; i++ {
			leaf := rng.Uint64() % p.tree.NumLeaves()
			p.ReadPath(leaf, nil)
			p.WritePath(leaf, false)
		}
		return p.Stats()
	}
	legacy := replay(0) // default port, no SetMaxInFlight call
	serial := replay(1)
	if legacy != serial {
		t.Errorf("depth 1 diverges from the default port:\n default %+v\n depth 1 %+v", legacy, serial)
	}
	piped := replay(2)
	if piped.Cycles > serial.Cycles {
		t.Errorf("depth 2 frontier %d exceeds serial %d", piped.Cycles, serial.Cycles)
	}
	if piped.Cycles == serial.Cycles {
		t.Errorf("depth 2 frontier %d did not improve on serial; the window never engaged", piped.Cycles)
	}
	// The window reorders nothing: the same requests hit DRAM either way.
	if piped.DRAM.Reads != serial.DRAM.Reads || piped.DRAM.Writes != serial.DRAM.Writes {
		t.Errorf("depth 2 moved different traffic: %+v vs %+v", piped.DRAM, serial.DRAM)
	}
}

// TestOverlapHandChainedReplay replays one recursion chain's traffic
// through per-level ports twice — once under the serialized Figure 5(a)
// clock, once under the Figure 5(b) dependency rule (a level's read waits
// only for the posmap read that named its path; a new round starts behind
// the oldest windowed round's data stage) — and checks the overlap
// frontier is strictly earlier. This is the scheduling model the
// hierarchy's levelTimer implements, reproduced by hand against raw
// ports.
func TestOverlapHandChainedReplay(t *testing.T) {
	const levels = 3
	const rounds = 50
	leafLevels := []int{6, 4, 3} // data ORAM largest, posmap ORAMs shrink

	// Pre-draw every round's leaves so both replays move identical traffic.
	rng := rand.New(rand.NewSource(3))
	leaves := make([][]uint64, rounds)
	for r := range leaves {
		leaves[r] = make([]uint64, levels)
		for l, ll := range leafLevels {
			leaves[r][l] = rng.Uint64() % (1 << uint(ll))
		}
	}

	setup := func() []*Port {
		b := newBus(t, Config{Channels: 2})
		ports := make([]*Port, levels)
		for l, ll := range leafLevels {
			ports[l] = attach(t, b, ll, 256)
		}
		return ports
	}

	// Figure 5(a): one shared chain clock; every stage of every round
	// serializes behind the previous stage's completion.
	serialPorts := setup()
	var chain uint64
	stage := func(p *Port, leaf uint64, write bool) {
		p.AdvanceTo(chain)
		if write {
			p.WritePath(leaf, false)
		} else {
			p.ReadPath(leaf, nil)
		}
		if r := p.ReadyAt(); r > chain {
			chain = r
		}
	}
	for r := 0; r < rounds; r++ {
		for l := levels - 1; l >= 0; l-- {
			stage(serialPorts[l], leaves[r][l], false)
			stage(serialPorts[l], leaves[r][l], true)
		}
	}
	serialFrontier := chain

	// Figure 5(b): reads carry the naming dependency, writes don't; a new
	// round begins behind the data-stage completion of the round `depth`
	// rounds earlier.
	const depth = 4
	overlapPorts := setup()
	for _, p := range overlapPorts {
		p.SetMaxInFlight(2)
	}
	ring := make([]uint64, depth)
	head := 0
	lastRead := make([]uint64, levels)
	var overlapFrontier uint64
	for r := 0; r < rounds; r++ {
		dep := ring[head]
		for l := levels - 1; l >= 0; l-- {
			p := overlapPorts[l]
			p.AdvanceTo(dep)
			p.ReadPath(leaves[r][l], nil)
			done := p.ReadyAt()
			lastRead[l] = done
			if done > dep {
				dep = done
			}
			if l == 0 {
				ring[head] = done
				head = (head + 1) % depth
			}
			p.AdvanceTo(lastRead[l])
			p.WritePath(leaves[r][l], false)
			if w := p.ReadyAt(); w > overlapFrontier {
				overlapFrontier = w
			}
		}
		if dep > overlapFrontier {
			overlapFrontier = dep
		}
	}

	if overlapFrontier >= serialFrontier {
		t.Errorf("overlap frontier %d not earlier than serial %d", overlapFrontier, serialFrontier)
	}
	// Identical traffic: the schedules move the same bytes.
	var sr, or Stats
	for l := 0; l < levels; l++ {
		sr = sr.Merge(serialPorts[l].Stats())
		or = or.Merge(overlapPorts[l].Stats())
	}
	if sr.PathReads != or.PathReads || sr.PathWrites != or.PathWrites ||
		sr.DRAM.Reads != or.DRAM.Reads || sr.DRAM.Writes != or.DRAM.Writes {
		t.Errorf("schedules moved different traffic:\n serial  %+v\n overlap %+v", sr, or)
	}
}
