// Event-ordered arbitration. Charges do not touch the shared bank state
// at submission: each stage is enqueued on its port's FIFO carrying the
// arrival floor captured at submission, and stages retire into the
// dram.System in global (arrival cycle, port index) order.
//
// Determinism argument. A queued stage's arrival is a function of its
// port's own stream alone: max(the AdvanceTo floor at submission, the
// completion of the stage maxInFlight retirements back). A stage retires
// only when it holds the minimum key among present heads AND every port
// with an empty FIFO is provably unable to submit an earlier-keyed stage:
// that port's next arrival is bounded below by max(its current floor, the
// minimum of its in-flight window), both monotone in its own stream. So
// the retirement sequence — and with it every bank/bus/row interaction in
// the shared dram.System — is a function of the per-port stage streams,
// not of which goroutine won the bus lock; deterministic per-shard
// streams give bit-identical cycle totals across runs and GOMAXPROCS
// settings.
//
// Under the FR-FCFS policy retirement additionally merges contemporaneous
// heads — every head within reorderWindowCycles of the minimum — into one
// scheduling window submitted as a single per-request-arrival batch, so
// the open queue can interleave different ports' stages (a write-back's
// row hits can beat another shard's conflicting activate). The window
// only forms once every non-contributing port is provably beyond it,
// which keeps the batch composition schedule-independent by the same
// argument.
//
// Two documented caveats bound the guarantee: (1) stats/ReadyAt queries
// are quiesce points that retire everything present, so drivers that
// query at schedule-dependent instants (concurrent hierarchy chains
// polling mid-flight) reintroduce schedule dependence; (2) if a port goes
// quiet without a quiesce point while others keep submitting, the
// overflow valve force-drains at maxQueuedStages to bound memory.
package membus

import "repro/internal/dram"

const (
	// reorderWindowCycles is the merged-window span under FR-FCFS: heads
	// within this many cycles of the oldest head schedule as one batch.
	// It approximates how far apart in modeled time two stages can be and
	// still coexist in a real controller's command queue (a path stage
	// spans roughly 1-3k cycles).
	reorderWindowCycles = 4096
	// maxQueuedStages is the overflow valve on the total number of
	// enqueued, unretired stages across all ports.
	maxQueuedStages = 1 << 15
)

// stageEvent is one pending charge: the stage's protocol content plus the
// arrival floor captured at submission.
type stageEvent struct {
	leaf     uint64
	skip     []bool // pooled copy; nil when nothing is skipped
	write    bool
	deferred bool
	floor    uint64
}

// enqueue appends one stage to the port's FIFO. Caller holds the bus lock.
func (p *Port) enqueue(leaf uint64, skip []bool, write, deferred bool) {
	if p.evCount == len(p.evq) {
		n := len(p.evq) * 2
		if n == 0 {
			n = 8
		}
		grown := make([]stageEvent, n)
		for i := 0; i < p.evCount; i++ {
			grown[i] = p.evq[(p.evHead+i)%len(p.evq)]
		}
		p.evq = grown
		p.evHead = 0
	}
	ev := &p.evq[(p.evHead+p.evCount)%len(p.evq)]
	*ev = stageEvent{leaf: leaf, write: write, deferred: deferred, floor: p.floor}
	if skip != nil {
		var buf []bool
		if n := len(p.skipPool); n > 0 {
			buf = p.skipPool[n-1][:0]
			p.skipPool = p.skipPool[:n-1]
		}
		ev.skip = append(buf, skip...)
	}
	p.evCount++
	p.bus.queued++
}

// popHead discards the port's head event after retirement, recycling its
// skip mask. Caller holds the bus lock.
func (p *Port) popHead() {
	ev := &p.evq[p.evHead]
	if ev.skip != nil {
		p.skipPool = append(p.skipPool, ev.skip)
		ev.skip = nil
	}
	p.evHead = (p.evHead + 1) % len(p.evq)
	p.evCount--
	p.bus.queued--
}

// headArrival returns the arrival cycle of the port's oldest queued
// stage: its submission floor, no earlier than the completion of the
// stage maxInFlight retirements back. Caller holds the bus lock.
func (p *Port) headArrival() uint64 {
	arr := p.evq[p.evHead].floor
	if oldest := p.doneRing[p.ringHead]; oldest > arr {
		arr = oldest
	}
	return arr
}

// lowerBound bounds from below the arrival of any stage this port may
// submit in the future: its floor only rises, and a future stage's
// in-flight-window constraint is at least the minimum completion
// currently in the ring. Caller holds the bus lock.
func (p *Port) lowerBound() uint64 {
	lb := p.floor
	ringMin := p.doneRing[0]
	for _, d := range p.doneRing[1:] {
		if d < ringMin {
			ringMin = d
		}
	}
	if ringMin > lb {
		lb = ringMin
	}
	return lb
}

// minHeadLocked returns the port whose head stage has the globally
// smallest (arrival, port index) key, with its arrival. Caller holds the
// bus lock; at least one port must have a queued stage.
func (b *Bus) minHeadLocked() (*Port, uint64) {
	var best *Port
	var bestArr uint64
	for _, p := range b.ports {
		if p.evCount == 0 {
			continue
		}
		arr := p.headArrival()
		if best == nil || arr < bestArr {
			best, bestArr = p, arr
		}
	}
	return best, bestArr
}

// drainReadyLocked retires every stage that is provably next in global
// key order, stopping at the first stage some idle port could still
// preempt. Caller holds the bus lock.
func (b *Bus) drainReadyLocked() {
	for b.queued > 0 {
		if b.frfcfs {
			if !b.retireWindowLocked(true) {
				return
			}
			continue
		}
		cand, arr := b.minHeadLocked()
		if !b.safeToRetire(cand, arr) {
			return
		}
		b.retireHeadLocked(cand)
	}
}

// drainAllLocked retires everything present in key order — the quiesce
// path behind every stats/clock query, where "no earlier submission is
// coming" is the caller's barrier, not something to prove. Caller holds
// the bus lock.
func (b *Bus) drainAllLocked() {
	for b.queued > 0 {
		if b.frfcfs {
			b.retireWindowLocked(false)
			continue
		}
		cand, _ := b.minHeadLocked()
		b.retireHeadLocked(cand)
	}
}

// safeToRetire reports whether no idle port can still submit a stage with
// a smaller key than (arr, cand): every event-less port's lower bound
// must be beyond arr, or at arr with a larger port index. Caller holds
// the bus lock.
func (b *Bus) safeToRetire(cand *Port, arr uint64) bool {
	for _, q := range b.ports {
		if q == cand || q.evCount > 0 {
			continue
		}
		lb := q.lowerBound()
		if lb < arr || (lb == arr && q.shard < cand.shard) {
			return false
		}
	}
	return true
}

// retireHeadLocked applies one port's head stage at its arrival cycle.
// Caller holds the bus lock.
func (b *Bus) retireHeadLocked(p *Port) {
	ev := &p.evq[p.evHead]
	p.applyStage(p.headArrival(), ev.leaf, ev.skip, ev.write, ev.deferred)
	p.popHead()
}

// retireWindowLocked forms and retires the FR-FCFS merged scheduling
// window: every head within reorderWindowCycles of the minimum head
// arrival, submitted to the controller as one batch with per-request
// arrival floors so the open queue can interleave the member stages. When
// require is true the window only forms if every non-member port is
// provably beyond it (idle ports' lower bounds past the window edge);
// quiesce drains pass false. Returns whether a window retired. Caller
// holds the bus lock.
func (b *Bus) retireWindowLocked(require bool) bool {
	_, m := b.minHeadLocked()
	edge := m + reorderWindowCycles
	if require {
		for _, q := range b.ports {
			if q.evCount == 0 && q.lowerBound() <= edge {
				return false
			}
		}
	}
	if b.tagDone == nil {
		n := len(b.ports)
		b.batchPorts = make([]*Port, 0, n)
		b.batchArr = make([]uint64, 0, n)
		b.tagDone = make([]uint64, n)
		b.tagStats = make([]dram.Stats, n)
	}
	members := b.batchPorts[:0]
	arrs := b.batchArr[:0]
	for _, p := range b.ports {
		if p.evCount == 0 {
			continue
		}
		if arr := p.headArrival(); arr <= edge {
			members = append(members, p)
			arrs = append(arrs, arr)
		}
	}
	// Oldest first, ties by port index (the global key order); insertion
	// sort is stable and the batch is at most one head per port.
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && arrs[j] < arrs[j-1]; j-- {
			arrs[j], arrs[j-1] = arrs[j-1], arrs[j]
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	b.batchPorts, b.batchArr = members, arrs

	g := uint64(b.sys.Geometry().AccessBytes)
	reqs := b.timedBuf[:0]
	for slot, p := range members {
		ev := &p.evq[p.evHead]
		b.tagDone[slot] = arrs[slot] // a fully skipped stage completes at arrival
		b.tagStats[slot] = dram.Stats{}
		for d := 0; d <= p.tree.LeafLevel(); d++ {
			if ev.skip != nil && ev.skip[d] {
				p.stats.SkippedBuckets++
				continue
			}
			base := p.mapper.BucketAddr(p.tree.PathBucket(ev.leaf, d))
			for off := uint64(0); off < uint64(p.bucketBytes); off += g {
				reqs = append(reqs, dram.TimedRequest{
					Addr: base + off, Write: ev.write, At: arrs[slot], Tag: slot,
				})
			}
		}
	}
	b.timedBuf = reqs
	if len(reqs) > 0 {
		b.sys.AccessAllTimed(reqs, b.tagDone, b.tagStats)
	}
	peak := b.sys.Stats().QueueOccupancyPeak
	for slot, p := range members {
		ev := &p.evq[p.evHead]
		delta := b.tagStats[slot]
		// Same high-water convention as applyStage: the port's own stage
		// completion and the system's cumulative queue peak.
		delta.LastCompletionCycle = b.tagDone[slot]
		delta.QueueOccupancyPeak = peak
		p.finishStage(arrs[slot], b.tagDone[slot], delta, ev.write, ev.deferred)
		p.popHead()
	}
	return true
}
