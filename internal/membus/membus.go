// Package membus is the shared memory-channel scheduler of the timed
// serving layer: one DDR3 timing model (internal/dram) owned by a Bus,
// with one Port per ORAM tree. Each port lays its tree's buckets out in
// the shared physical address space (naive or packed-subtree placement,
// Section 3.3.4 of the paper) and charges the tree's path reads and
// write-backs — at column-access granularity — onto the shared channels
// and banks.
//
// A flat shard attaches exactly one port. A hierarchical shard (recursive
// position map, Section 2.3) attaches one port per level of its chain, so
// every ORAM of the hierarchy owns a disjoint row-aligned region of the
// same physical address space and the chain's recursive traffic contends
// on the shared banks like any other tree's. Levels of one hierarchy
// chain their ports (AdvanceTo/ReadyAt): a level's path is named by the
// position-map level before it, so its stage may not arrive earlier in
// modeled time than the chain's previous stage completed — the serialized
// Figure 5(a) ordering within one access, while different shards'
// accesses still interleave freely.
//
// Time is modeled, not measured: every port carries its own modeled clock
// (the completion cycle of its last submitted stage), and a stage's
// requests arrive at that clock regardless of when the shard's worker
// goroutine got scheduled in real time. Because all ports share one
// dram.System, requests from different shards contend for the same banks
// and data buses — so shard A's stage-5 write-backs and shard B's stage-2
// path reads interleave *within* each other's accesses, the Figure 5
// overlap the paper studies between hierarchy levels, reproduced here
// between shards. Config.Serialize disables the overlap (every stage then
// arrives at the global completion frontier), giving the baseline the
// intra-access-overlap experiment compares against.
//
// The deferred write-back FIFO of the staged access path maps directly
// onto a memory controller's write buffer: deferred stage-5 charges arrive
// on the port's clock whenever the flush schedule issues them, reads of
// buckets still sitting in the buffer are skipped (no DRAM traffic), and
// the queue depth (core.Params.MaxDeferredWriteBacks) becomes the
// write-buffer-depth experiment in EXPERIMENTS.md.
//
// Concurrency: shard workers call their ports concurrently; every charge
// takes the bus lock, so the dram.System only ever sees one request stream.
// The lock serializes real time, not modeled time — modeled interleaving
// comes from the per-port arrival clocks. Arbitration is event-ordered:
// a charge enqueues its stage (with the arrival floor captured at
// submission) on the port's FIFO, and stages retire into the shared
// dram.System in global (arrival cycle, port index) order — a stage is
// applied only once every other port either exposes a later-keyed head or
// is provably unable to submit an earlier one (its floor and in-flight
// window bound its next arrival from below). Retirement order is therefore
// a function of the per-port stage streams alone, not of the goroutine
// schedule: with deterministic per-shard streams, multi-shard cycle totals
// are exactly reproducible across runs and GOMAXPROCS settings (see
// eventq.go for the argument and its two documented caveats: explicit
// drains at stats/ReadyAt queries, and the overflow valve).
package membus

import (
	"fmt"
	"sync"

	"repro/internal/dram"
	"repro/internal/placement"
	"repro/internal/treemath"
)

// Layout selects how each shard's buckets map to physical addresses.
type Layout int

const (
	// LayoutSubtree packs each k-level subtree into one node sized to the
	// aggregate row-buffer footprint (rows × channels) — the paper's
	// Figure 6 placement, which raises the row-hit rate of path accesses.
	// The default.
	LayoutSubtree Layout = iota
	// LayoutNaive lays buckets out flat in heap order; consecutive path
	// buckets land in unrelated rows. The baseline the placement
	// experiment compares against.
	LayoutNaive
)

// Config parameterizes a Bus.
type Config struct {
	// Channels is the number of independent DDR3 channels (default 2; the
	// paper sweeps 1/2/4 in Figure 11). Geometry and timing follow the
	// paper's DRAMSim2 setup (dram.MicronGeometry / dram.DDR3Micron).
	Channels int
	// Layout selects the bucket-to-row placement for every attached shard.
	Layout Layout
	// Serialize issues every stage at the global completion frontier
	// instead of the submitting port's own clock: no two stages ever
	// overlap in modeled time, across or within shards. It exists as the
	// measurement baseline for the intra-access overlap result; leave it
	// false for the actual model.
	Serialize bool
	// Sched selects the shared controller's command scheduling
	// (dram.SchedConfig). The zero value is the strictly in-order issue
	// path; Policy dram.SchedFRFCFS turns on the open per-channel queue,
	// and additionally lets the bus merge contemporaneous stages from
	// different ports into one scheduling window (see eventq.go).
	Sched dram.SchedConfig
}

// CyclesPerSecond converts modeled memory cycles to modeled seconds:
// every Timing parameter is denominated in DDR3-1333 bus clocks at
// 666.67 MHz. Paced serving divides ops by (frontier advance /
// CyclesPerSecond) to report ops per modeled second.
const CyclesPerSecond = 666_666_667

// Stats is one port's (or, merged, the whole bus's) modeled-timing view.
type Stats struct {
	// DRAM holds the memory-system counters attributable to this port's
	// requests. Merging every port's DRAM stats reproduces the shared
	// system's own totals.
	DRAM dram.Stats
	// PathReads / PathWrites count stage-2 path reads and stage-5 path
	// write-backs submitted; DeferredWrites is the subset of PathWrites
	// issued from the deferred FIFO (the write buffer) rather than inline.
	PathReads      uint64
	PathWrites     uint64
	DeferredWrites uint64
	// SkippedBuckets counts path-read buckets served from the write buffer
	// instead of DRAM (their live content sat in a pending write-back).
	SkippedBuckets uint64
	// ReadCycles / WriteCycles are the summed stage latencies in memory
	// cycles (completion minus arrival); ReadCycles/PathReads is the
	// modeled latency a client waits on, since the response is computed
	// after stage 2.
	ReadCycles  uint64
	WriteCycles uint64
	// Cycles is the completion frontier: the cycle at which the last
	// charged request finished (max under Merge).
	Cycles uint64
	// AccessBytes is the column-access granularity, carried so bandwidth
	// can be derived from a snapshot alone.
	AccessBytes int
}

// Merge combines two snapshots: counters sum, Cycles takes the max
// (mirroring core.Stats.Merge / dram.Stats.Merge).
func (s Stats) Merge(other Stats) Stats {
	s.DRAM = s.DRAM.Merge(other.DRAM)
	s.PathReads += other.PathReads
	s.PathWrites += other.PathWrites
	s.DeferredWrites += other.DeferredWrites
	s.SkippedBuckets += other.SkippedBuckets
	s.ReadCycles += other.ReadCycles
	s.WriteCycles += other.WriteCycles
	if other.Cycles > s.Cycles {
		s.Cycles = other.Cycles
	}
	if s.AccessBytes == 0 {
		s.AccessBytes = other.AccessBytes
	}
	return s
}

// Delta returns the stats accrued since the prev snapshot (which must be
// an earlier snapshot of the same counters): counters subtract, and the
// frontier fields become the frontier *advance* over the interval, so
// derived rates (RowHitRate, BytesPerCycle, Mean*Cycles) describe the
// interval's traffic alone. Measurement drivers use it to exclude
// pre-fill phases.
func (s Stats) Delta(prev Stats) Stats {
	s.DRAM = s.DRAM.Sub(prev.DRAM)
	s.PathReads -= prev.PathReads
	s.PathWrites -= prev.PathWrites
	s.DeferredWrites -= prev.DeferredWrites
	s.SkippedBuckets -= prev.SkippedBuckets
	s.ReadCycles -= prev.ReadCycles
	s.WriteCycles -= prev.WriteCycles
	s.Cycles -= prev.Cycles
	return s
}

// RowHitRate returns the row-buffer hit rate of this snapshot's traffic.
func (s Stats) RowHitRate() float64 { return s.DRAM.RowHitRate() }

// BytesPerCycle returns achieved bandwidth: bytes moved over the modeled
// wall-clock (the completion frontier). 0 before any traffic.
func (s Stats) BytesPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64((s.DRAM.Reads+s.DRAM.Writes)*uint64(s.AccessBytes)) / float64(s.Cycles)
}

// MeanReadCycles returns the mean modeled stage-2 (path read) latency —
// the memory-cycle cost on an access's critical path.
func (s Stats) MeanReadCycles() float64 {
	if s.PathReads == 0 {
		return 0
	}
	return float64(s.ReadCycles) / float64(s.PathReads)
}

// MeanWriteCycles returns the mean modeled stage-5 (write-back) latency.
func (s Stats) MeanWriteCycles() float64 {
	if s.PathWrites == 0 {
		return 0
	}
	return float64(s.WriteCycles) / float64(s.PathWrites)
}

// Bus owns the shared memory system. Create one per deployment, attach one
// port per shard, and hand each port to its shard's TimedStore.
type Bus struct {
	mu        sync.Mutex
	sys       *dram.System
	layout    Layout
	serialize bool
	frfcfs    bool   // controller policy is dram.SchedFRFCFS
	frontier  uint64 // global last completion cycle
	nextBase  uint64 // physical base address for the next attached shard
	ports     []*Port

	// Event-ordered arbitration state (see eventq.go).
	queued     int // stages enqueued across all ports, not yet retired
	valveCount uint64
	timedBuf   []dram.TimedRequest // merged-window request batch (reused)
	batchPorts []*Port             // merged-window members (reused)
	batchArr   []uint64
	tagDone    []uint64
	tagStats   []dram.Stats
}

// New builds a bus with the paper's DDR3 geometry and timing.
func New(cfg Config) (*Bus, error) {
	if cfg.Channels == 0 {
		cfg.Channels = 2
	}
	switch cfg.Layout {
	case LayoutSubtree, LayoutNaive:
	default:
		return nil, fmt.Errorf("membus: unknown layout %d", cfg.Layout)
	}
	sys, err := dram.New(dram.MicronGeometry(cfg.Channels), dram.DDR3Micron())
	if err != nil {
		return nil, err
	}
	if err := sys.SetSched(cfg.Sched); err != nil {
		return nil, err
	}
	return &Bus{
		sys:       sys,
		layout:    cfg.Layout,
		serialize: cfg.Serialize,
		frfcfs:    cfg.Sched.Policy == dram.SchedFRFCFS,
	}, nil
}

// Geometry returns the shared memory system's shape.
func (b *Bus) Geometry() dram.Geometry { return b.sys.Geometry() }

// AttachShard carves out the next region of the physical address space for
// one bucket tree (leafLevel levels, bucketBytes per bucket on the bus)
// and returns the tree's port. The region starts on an aggregate-row
// boundary so the subtree layout's nodes align with row buffers. Flat
// shards attach once; hierarchical shards attach once per level of the
// chain, giving every level its own disjoint region. Attach every tree
// before traffic starts; construction order fixes the address map, so a
// fixed shard (and per-shard level) order gives a reproducible layout.
func (b *Bus) AttachShard(leafLevel, bucketBytes int) (*Port, error) {
	if bucketBytes < 1 {
		return nil, fmt.Errorf("membus: bucket size %d must be >= 1", bucketBytes)
	}
	tree := treemath.New(leafLevel)
	g := b.sys.Geometry()
	nodeBytes := g.RowBytes * g.Channels
	b.mu.Lock()
	defer b.mu.Unlock()
	var m placement.Mapper
	switch {
	case b.layout == LayoutSubtree && bucketBytes <= nodeBytes:
		sm, err := placement.NewSubtree(tree, bucketBytes, nodeBytes, b.nextBase)
		if err != nil {
			return nil, err
		}
		m = sm
	default:
		// Naive layout, also the fallback when one bucket outgrows the
		// aggregate row (packing cannot help there).
		m = placement.NewNaive(tree, bucketBytes, b.nextBase)
	}
	stride := uint64(nodeBytes)
	b.nextBase += (m.Size() + stride - 1) / stride * stride
	p := &Port{
		bus:         b,
		shard:       len(b.ports),
		tree:        tree,
		mapper:      m,
		bucketBytes: bucketBytes,
		doneRing:    make([]uint64, 1),
	}
	p.stats.AccessBytes = g.AccessBytes
	b.ports = append(b.ports, p)
	return p, nil
}

// Stats returns the bus-wide view: every port's counters merged. Equal to
// the underlying dram.System's totals on the DRAM side. Like every stats
// query it is a quiesce point: all enqueued stages retire first.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drainAllLocked()
	var merged Stats
	for _, p := range b.ports {
		merged = merged.Merge(p.stats)
	}
	merged.AccessBytes = b.sys.Geometry().AccessBytes
	return merged
}

// ShardStats returns each port's own counters, index-aligned with the
// attach order.
func (b *Bus) ShardStats() []Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drainAllLocked()
	out := make([]Stats, len(b.ports))
	for i, p := range b.ports {
		out[i] = p.stats
	}
	return out
}

// SystemStats exposes the shared memory system's own counters (tests pin
// them against the merged port view).
func (b *Bus) SystemStats() dram.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drainAllLocked()
	return b.sys.Stats()
}

// Cycles returns the global completion frontier: the modeled cycle at
// which the last charged request of any shard finished.
func (b *Bus) Cycles() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drainAllLocked()
	return b.frontier
}

// Frontier returns the completion frontier of the stages retired so far
// without forcing queued stages through — a cheap, slightly stale modeled
// clock for pacing loops (Cycles is the exact, quiescing read).
func (b *Bus) Frontier() uint64 { b.mu.Lock(); defer b.mu.Unlock(); return b.frontier }

// Port is one shard's window onto the bus. It implements core.PathTimer:
// the shard's TimedStore charges stage-2 path reads and stage-5 path
// write-backs through it. A port is owned by its shard's worker goroutine;
// the bus lock makes concurrent ports safe.
type Port struct {
	bus         *Bus
	shard       int
	tree        treemath.Tree
	mapper      placement.Mapper
	bucketBytes int
	readyAt     uint64 // modeled completion cycle of this shard's last stage
	floor       uint64 // explicit arrival floor (high-water mark of AdvanceTo)
	// doneRing holds the completion cycles of the last maxInFlight stages:
	// a new stage may not arrive before the oldest of them completed, so at
	// most maxInFlight stages of this port are ever in flight in modeled
	// time. Depth 1 (the default) reproduces the strictly serial port of
	// the Figure 5(a) model — each stage waits for the previous one.
	doneRing []uint64
	ringHead int
	stats    Stats
	reqBuf   []dram.Request // per-stage column-access batch (reused)

	// Pending-stage FIFO for event-ordered arbitration: charges enqueue
	// here and retire in global key order (see eventq.go). evq is a ring
	// buffer; skipPool recycles the copied skip masks.
	evq      []stageEvent
	evHead   int
	evCount  int
	skipPool [][]bool
}

// Shard returns the port's attach index.
func (p *Port) Shard() int { return p.shard }

// ReadyAt returns the port's modeled clock: the completion cycle of its
// last charged stage (0 before any traffic). A quiesce point: all
// enqueued stages retire first, so chained single-threaded drivers (the
// hierarchy's levelTimer) observe exactly the pre-event-queue model.
func (p *Port) ReadyAt() uint64 {
	p.bus.mu.Lock()
	defer p.bus.mu.Unlock()
	p.bus.drainAllLocked()
	return p.readyAt
}

// AdvanceTo raises the port's modeled clock to at least cycle: the next
// charged stage arrives no earlier. Hierarchies use it to chain their
// levels' ports — a level's path address comes out of the preceding
// position-map access, so its stage must not be charged before that
// access's completion even though each level keeps its own port.
func (p *Port) AdvanceTo(cycle uint64) {
	p.bus.mu.Lock()
	defer p.bus.mu.Unlock()
	if p.floor < cycle {
		p.floor = cycle
	}
	if p.readyAt < cycle {
		p.readyAt = cycle
	}
}

// SetMaxInFlight bounds how many of this port's stages may overlap in
// modeled time: a stage's arrival is floored at the completion of the
// stage depth submissions earlier (plus any explicit AdvanceTo floor), so
// up to depth stages pipeline and the depth+1-th stalls. Depth 1 — the
// default — is the strictly serial port every construction used before
// overlap existed: each stage waits for its predecessor's completion.
// Call it before the port carries traffic; the hierarchy's Figure 5(b)
// overlap mode uses depth 2 so one round's write-back and the next
// round's read coexist on the same tree.
func (p *Port) SetMaxInFlight(depth int) {
	if depth < 1 {
		depth = 1
	}
	p.bus.mu.Lock()
	defer p.bus.mu.Unlock()
	p.bus.drainAllLocked()
	p.doneRing = make([]uint64, depth)
	for i := range p.doneRing {
		p.doneRing[i] = p.readyAt
	}
	p.ringHead = 0
}

// Stats returns a snapshot of this port's counters (a quiesce point: all
// enqueued stages retire first).
func (p *Port) Stats() Stats {
	p.bus.mu.Lock()
	defer p.bus.mu.Unlock()
	p.bus.drainAllLocked()
	return p.stats
}

// ReadPath implements core.PathTimer (stage 2): charge one column access
// per AccessBytes of every non-skipped bucket on the path. Skipped buckets
// are write-buffer hits — their content never touches DRAM.
func (p *Port) ReadPath(leaf uint64, skip []bool) { p.charge(leaf, skip, false, false) }

// WritePath implements core.PathTimer (stage 5): charge the full path
// write-back. deferred write-backs arrive on the port's clock at whatever
// point the flush schedule issued them — grouping them is exactly what a
// deeper write buffer buys (fewer read/write bus turnarounds).
func (p *Port) WritePath(leaf uint64, deferred bool) { p.charge(leaf, nil, true, deferred) }

// charge submits one stage's column accesses. The stage does not touch
// the shared bank state here: it is enqueued on this port's FIFO with the
// arrival floor captured at submission, and retires in global (arrival,
// port) order once no other port can contribute an earlier stage — the
// event-ordered arbitration of eventq.go. Under Serialize the stage
// arrives at the global frontier, which is only meaningful at application
// time, so serialized buses quiesce and apply in submission order (the
// legacy baseline semantics).
func (p *Port) charge(leaf uint64, skip []bool, write, deferred bool) {
	b := p.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.serialize {
		b.drainAllLocked()
		at := p.floor
		if oldest := p.doneRing[p.ringHead]; oldest > at {
			at = oldest
		}
		if b.frontier > at {
			at = b.frontier
		}
		p.applyStage(at, leaf, skip, write, deferred)
		return
	}
	p.enqueue(leaf, skip, write, deferred)
	b.drainReadyLocked()
	if b.queued > maxQueuedStages {
		// Overflow valve: a port has gone quiet without a quiesce point
		// while others keep submitting. Forcing the backlog through keeps
		// memory bounded at the cost of the determinism guarantee for this
		// (unsupported) driving pattern.
		b.valveCount++
		b.drainAllLocked()
	}
}

// applyStage plays one stage's column accesses into the shared memory
// system at the given arrival cycle and does the port's completion and
// attribution bookkeeping. Caller holds the bus lock.
func (p *Port) applyStage(at uint64, leaf uint64, skip []bool, write, deferred bool) {
	b := p.bus
	g := uint64(b.sys.Geometry().AccessBytes)
	reqs := p.reqBuf[:0]
	for d := 0; d <= p.tree.LeafLevel(); d++ {
		if skip != nil && skip[d] {
			p.stats.SkippedBuckets++
			continue
		}
		base := p.mapper.BucketAddr(p.tree.PathBucket(leaf, d))
		for off := uint64(0); off < uint64(p.bucketBytes); off += g {
			reqs = append(reqs, dram.Request{Addr: base + off, Write: write})
		}
	}
	p.reqBuf = reqs
	before := b.sys.Stats()
	done := at
	if len(reqs) > 0 {
		done = b.sys.AccessAll(at, reqs)
	}
	after := b.sys.Stats()
	delta := after.Sub(before)
	// The high-water fields carry this port's own view: its stage's
	// completion (a fully skipped stage advances nothing globally) and the
	// system's cumulative queue peak, so merging ports reproduces the
	// system maxima.
	delta.LastCompletionCycle = done
	delta.QueueOccupancyPeak = after.QueueOccupancyPeak
	p.finishStage(at, done, delta, write, deferred)
}

// finishStage records one retired stage's completion and counters.
// Caller holds the bus lock.
func (p *Port) finishStage(at, done uint64, delta dram.Stats, write, deferred bool) {
	b := p.bus
	p.doneRing[p.ringHead] = done
	p.ringHead = (p.ringHead + 1) % len(p.doneRing)
	if done > p.readyAt {
		p.readyAt = done
	}
	if done > b.frontier {
		b.frontier = done
	}
	p.stats.DRAM = p.stats.DRAM.Merge(delta)
	if p.stats.Cycles < done {
		p.stats.Cycles = done
	}
	if write {
		p.stats.PathWrites++
		if deferred {
			p.stats.DeferredWrites++
		}
		p.stats.WriteCycles += done - at
	} else {
		p.stats.PathReads++
		p.stats.ReadCycles += done - at
	}
}
