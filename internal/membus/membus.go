// Package membus is the shared memory-channel scheduler of the timed
// serving layer: one DDR3 timing model (internal/dram) owned by a Bus,
// with one Port per ORAM tree. Each port lays its tree's buckets out in
// the shared physical address space (naive or packed-subtree placement,
// Section 3.3.4 of the paper) and charges the tree's path reads and
// write-backs — at column-access granularity — onto the shared channels
// and banks.
//
// A flat shard attaches exactly one port. A hierarchical shard (recursive
// position map, Section 2.3) attaches one port per level of its chain, so
// every ORAM of the hierarchy owns a disjoint row-aligned region of the
// same physical address space and the chain's recursive traffic contends
// on the shared banks like any other tree's. Levels of one hierarchy
// chain their ports (AdvanceTo/ReadyAt): a level's path is named by the
// position-map level before it, so its stage may not arrive earlier in
// modeled time than the chain's previous stage completed — the serialized
// Figure 5(a) ordering within one access, while different shards'
// accesses still interleave freely.
//
// Time is modeled, not measured: every port carries its own modeled clock
// (the completion cycle of its last submitted stage), and a stage's
// requests arrive at that clock regardless of when the shard's worker
// goroutine got scheduled in real time. Because all ports share one
// dram.System, requests from different shards contend for the same banks
// and data buses — so shard A's stage-5 write-backs and shard B's stage-2
// path reads interleave *within* each other's accesses, the Figure 5
// overlap the paper studies between hierarchy levels, reproduced here
// between shards. Config.Serialize disables the overlap (every stage then
// arrives at the global completion frontier), giving the baseline the
// intra-access-overlap experiment compares against.
//
// The deferred write-back FIFO of the staged access path maps directly
// onto a memory controller's write buffer: deferred stage-5 charges arrive
// on the port's clock whenever the flush schedule issues them, reads of
// buckets still sitting in the buffer are skipped (no DRAM traffic), and
// the queue depth (core.Params.MaxDeferredWriteBacks) becomes the
// write-buffer-depth experiment in EXPERIMENTS.md.
//
// Concurrency: shard workers call their ports concurrently; every charge
// takes the bus lock, so the dram.System only ever sees one request stream.
// The lock serializes real time, not modeled time — modeled interleaving
// comes from the per-port arrival clocks. One honesty note: the shared
// bank/bus state is mutated in real submission order, so under concurrent
// clients the goroutine schedule picks which shard's stage shapes the row
// and turnaround state first, and cross-shard contention — and with it the
// exact cycle totals — varies slightly run to run even with fixed seeds.
// Each shard's own pipeline (its arrival clocks and leaf sequence) stays
// deterministic, and single-client replays are exactly reproducible; a
// fully order-independent bus needs the event-ordered controller queue on
// the ROADMAP.
package membus

import (
	"fmt"
	"sync"

	"repro/internal/dram"
	"repro/internal/placement"
	"repro/internal/treemath"
)

// Layout selects how each shard's buckets map to physical addresses.
type Layout int

const (
	// LayoutSubtree packs each k-level subtree into one node sized to the
	// aggregate row-buffer footprint (rows × channels) — the paper's
	// Figure 6 placement, which raises the row-hit rate of path accesses.
	// The default.
	LayoutSubtree Layout = iota
	// LayoutNaive lays buckets out flat in heap order; consecutive path
	// buckets land in unrelated rows. The baseline the placement
	// experiment compares against.
	LayoutNaive
)

// Config parameterizes a Bus.
type Config struct {
	// Channels is the number of independent DDR3 channels (default 2; the
	// paper sweeps 1/2/4 in Figure 11). Geometry and timing follow the
	// paper's DRAMSim2 setup (dram.MicronGeometry / dram.DDR3Micron).
	Channels int
	// Layout selects the bucket-to-row placement for every attached shard.
	Layout Layout
	// Serialize issues every stage at the global completion frontier
	// instead of the submitting port's own clock: no two stages ever
	// overlap in modeled time, across or within shards. It exists as the
	// measurement baseline for the intra-access overlap result; leave it
	// false for the actual model.
	Serialize bool
}

// Stats is one port's (or, merged, the whole bus's) modeled-timing view.
type Stats struct {
	// DRAM holds the memory-system counters attributable to this port's
	// requests. Merging every port's DRAM stats reproduces the shared
	// system's own totals.
	DRAM dram.Stats
	// PathReads / PathWrites count stage-2 path reads and stage-5 path
	// write-backs submitted; DeferredWrites is the subset of PathWrites
	// issued from the deferred FIFO (the write buffer) rather than inline.
	PathReads      uint64
	PathWrites     uint64
	DeferredWrites uint64
	// SkippedBuckets counts path-read buckets served from the write buffer
	// instead of DRAM (their live content sat in a pending write-back).
	SkippedBuckets uint64
	// ReadCycles / WriteCycles are the summed stage latencies in memory
	// cycles (completion minus arrival); ReadCycles/PathReads is the
	// modeled latency a client waits on, since the response is computed
	// after stage 2.
	ReadCycles  uint64
	WriteCycles uint64
	// Cycles is the completion frontier: the cycle at which the last
	// charged request finished (max under Merge).
	Cycles uint64
	// AccessBytes is the column-access granularity, carried so bandwidth
	// can be derived from a snapshot alone.
	AccessBytes int
}

// Merge combines two snapshots: counters sum, Cycles takes the max
// (mirroring core.Stats.Merge / dram.Stats.Merge).
func (s Stats) Merge(other Stats) Stats {
	s.DRAM = s.DRAM.Merge(other.DRAM)
	s.PathReads += other.PathReads
	s.PathWrites += other.PathWrites
	s.DeferredWrites += other.DeferredWrites
	s.SkippedBuckets += other.SkippedBuckets
	s.ReadCycles += other.ReadCycles
	s.WriteCycles += other.WriteCycles
	if other.Cycles > s.Cycles {
		s.Cycles = other.Cycles
	}
	if s.AccessBytes == 0 {
		s.AccessBytes = other.AccessBytes
	}
	return s
}

// Delta returns the stats accrued since the prev snapshot (which must be
// an earlier snapshot of the same counters): counters subtract, and the
// frontier fields become the frontier *advance* over the interval, so
// derived rates (RowHitRate, BytesPerCycle, Mean*Cycles) describe the
// interval's traffic alone. Measurement drivers use it to exclude
// pre-fill phases.
func (s Stats) Delta(prev Stats) Stats {
	s.DRAM = s.DRAM.Sub(prev.DRAM)
	s.PathReads -= prev.PathReads
	s.PathWrites -= prev.PathWrites
	s.DeferredWrites -= prev.DeferredWrites
	s.SkippedBuckets -= prev.SkippedBuckets
	s.ReadCycles -= prev.ReadCycles
	s.WriteCycles -= prev.WriteCycles
	s.Cycles -= prev.Cycles
	return s
}

// RowHitRate returns the row-buffer hit rate of this snapshot's traffic.
func (s Stats) RowHitRate() float64 { return s.DRAM.RowHitRate() }

// BytesPerCycle returns achieved bandwidth: bytes moved over the modeled
// wall-clock (the completion frontier). 0 before any traffic.
func (s Stats) BytesPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64((s.DRAM.Reads+s.DRAM.Writes)*uint64(s.AccessBytes)) / float64(s.Cycles)
}

// MeanReadCycles returns the mean modeled stage-2 (path read) latency —
// the memory-cycle cost on an access's critical path.
func (s Stats) MeanReadCycles() float64 {
	if s.PathReads == 0 {
		return 0
	}
	return float64(s.ReadCycles) / float64(s.PathReads)
}

// MeanWriteCycles returns the mean modeled stage-5 (write-back) latency.
func (s Stats) MeanWriteCycles() float64 {
	if s.PathWrites == 0 {
		return 0
	}
	return float64(s.WriteCycles) / float64(s.PathWrites)
}

// Bus owns the shared memory system. Create one per deployment, attach one
// port per shard, and hand each port to its shard's TimedStore.
type Bus struct {
	mu        sync.Mutex
	sys       *dram.System
	layout    Layout
	serialize bool
	frontier  uint64 // global last completion cycle
	nextBase  uint64 // physical base address for the next attached shard
	ports     []*Port
}

// New builds a bus with the paper's DDR3 geometry and timing.
func New(cfg Config) (*Bus, error) {
	if cfg.Channels == 0 {
		cfg.Channels = 2
	}
	switch cfg.Layout {
	case LayoutSubtree, LayoutNaive:
	default:
		return nil, fmt.Errorf("membus: unknown layout %d", cfg.Layout)
	}
	sys, err := dram.New(dram.MicronGeometry(cfg.Channels), dram.DDR3Micron())
	if err != nil {
		return nil, err
	}
	return &Bus{sys: sys, layout: cfg.Layout, serialize: cfg.Serialize}, nil
}

// Geometry returns the shared memory system's shape.
func (b *Bus) Geometry() dram.Geometry { return b.sys.Geometry() }

// AttachShard carves out the next region of the physical address space for
// one bucket tree (leafLevel levels, bucketBytes per bucket on the bus)
// and returns the tree's port. The region starts on an aggregate-row
// boundary so the subtree layout's nodes align with row buffers. Flat
// shards attach once; hierarchical shards attach once per level of the
// chain, giving every level its own disjoint region. Attach every tree
// before traffic starts; construction order fixes the address map, so a
// fixed shard (and per-shard level) order gives a reproducible layout.
func (b *Bus) AttachShard(leafLevel, bucketBytes int) (*Port, error) {
	if bucketBytes < 1 {
		return nil, fmt.Errorf("membus: bucket size %d must be >= 1", bucketBytes)
	}
	tree := treemath.New(leafLevel)
	g := b.sys.Geometry()
	nodeBytes := g.RowBytes * g.Channels
	b.mu.Lock()
	defer b.mu.Unlock()
	var m placement.Mapper
	switch {
	case b.layout == LayoutSubtree && bucketBytes <= nodeBytes:
		sm, err := placement.NewSubtree(tree, bucketBytes, nodeBytes, b.nextBase)
		if err != nil {
			return nil, err
		}
		m = sm
	default:
		// Naive layout, also the fallback when one bucket outgrows the
		// aggregate row (packing cannot help there).
		m = placement.NewNaive(tree, bucketBytes, b.nextBase)
	}
	stride := uint64(nodeBytes)
	b.nextBase += (m.Size() + stride - 1) / stride * stride
	p := &Port{
		bus:         b,
		shard:       len(b.ports),
		tree:        tree,
		mapper:      m,
		bucketBytes: bucketBytes,
		doneRing:    make([]uint64, 1),
	}
	p.stats.AccessBytes = g.AccessBytes
	b.ports = append(b.ports, p)
	return p, nil
}

// Stats returns the bus-wide view: every port's counters merged. Equal to
// the underlying dram.System's totals on the DRAM side.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	var merged Stats
	for _, p := range b.ports {
		merged = merged.Merge(p.stats)
	}
	merged.AccessBytes = b.sys.Geometry().AccessBytes
	return merged
}

// ShardStats returns each port's own counters, index-aligned with the
// attach order.
func (b *Bus) ShardStats() []Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Stats, len(b.ports))
	for i, p := range b.ports {
		out[i] = p.stats
	}
	return out
}

// SystemStats exposes the shared memory system's own counters (tests pin
// them against the merged port view).
func (b *Bus) SystemStats() dram.Stats { b.mu.Lock(); defer b.mu.Unlock(); return b.sys.Stats() }

// Cycles returns the global completion frontier: the modeled cycle at
// which the last charged request of any shard finished.
func (b *Bus) Cycles() uint64 { b.mu.Lock(); defer b.mu.Unlock(); return b.frontier }

// Port is one shard's window onto the bus. It implements core.PathTimer:
// the shard's TimedStore charges stage-2 path reads and stage-5 path
// write-backs through it. A port is owned by its shard's worker goroutine;
// the bus lock makes concurrent ports safe.
type Port struct {
	bus         *Bus
	shard       int
	tree        treemath.Tree
	mapper      placement.Mapper
	bucketBytes int
	readyAt     uint64 // modeled completion cycle of this shard's last stage
	floor       uint64 // explicit arrival floor (high-water mark of AdvanceTo)
	// doneRing holds the completion cycles of the last maxInFlight stages:
	// a new stage may not arrive before the oldest of them completed, so at
	// most maxInFlight stages of this port are ever in flight in modeled
	// time. Depth 1 (the default) reproduces the strictly serial port of
	// the Figure 5(a) model — each stage waits for the previous one.
	doneRing []uint64
	ringHead int
	stats    Stats
	reqBuf   []dram.Request // per-stage column-access batch (reused)
}

// Shard returns the port's attach index.
func (p *Port) Shard() int { return p.shard }

// ReadyAt returns the port's modeled clock: the completion cycle of its
// last charged stage (0 before any traffic).
func (p *Port) ReadyAt() uint64 {
	p.bus.mu.Lock()
	defer p.bus.mu.Unlock()
	return p.readyAt
}

// AdvanceTo raises the port's modeled clock to at least cycle: the next
// charged stage arrives no earlier. Hierarchies use it to chain their
// levels' ports — a level's path address comes out of the preceding
// position-map access, so its stage must not be charged before that
// access's completion even though each level keeps its own port.
func (p *Port) AdvanceTo(cycle uint64) {
	p.bus.mu.Lock()
	defer p.bus.mu.Unlock()
	if p.floor < cycle {
		p.floor = cycle
	}
	if p.readyAt < cycle {
		p.readyAt = cycle
	}
}

// SetMaxInFlight bounds how many of this port's stages may overlap in
// modeled time: a stage's arrival is floored at the completion of the
// stage depth submissions earlier (plus any explicit AdvanceTo floor), so
// up to depth stages pipeline and the depth+1-th stalls. Depth 1 — the
// default — is the strictly serial port every construction used before
// overlap existed: each stage waits for its predecessor's completion.
// Call it before the port carries traffic; the hierarchy's Figure 5(b)
// overlap mode uses depth 2 so one round's write-back and the next
// round's read coexist on the same tree.
func (p *Port) SetMaxInFlight(depth int) {
	if depth < 1 {
		depth = 1
	}
	p.bus.mu.Lock()
	defer p.bus.mu.Unlock()
	p.doneRing = make([]uint64, depth)
	for i := range p.doneRing {
		p.doneRing[i] = p.readyAt
	}
	p.ringHead = 0
}

// Stats returns a snapshot of this port's counters.
func (p *Port) Stats() Stats {
	p.bus.mu.Lock()
	defer p.bus.mu.Unlock()
	return p.stats
}

// ReadPath implements core.PathTimer (stage 2): charge one column access
// per AccessBytes of every non-skipped bucket on the path. Skipped buckets
// are write-buffer hits — their content never touches DRAM.
func (p *Port) ReadPath(leaf uint64, skip []bool) { p.charge(leaf, skip, false, false) }

// WritePath implements core.PathTimer (stage 5): charge the full path
// write-back. deferred write-backs arrive on the port's clock at whatever
// point the flush schedule issued them — grouping them is exactly what a
// deeper write buffer buys (fewer read/write bus turnarounds).
func (p *Port) WritePath(leaf uint64, deferred bool) { p.charge(leaf, nil, true, deferred) }

// charge submits one stage's column accesses. Within the stage, requests
// go through dram.System.AccessAll's per-channel in-order queue — a
// controller issues a path's accesses one after another per channel, it
// does not activate every bank of a path simultaneously — while the
// arrival cycle of the whole stage is this port's modeled clock (or the
// global frontier under Serialize).
func (p *Port) charge(leaf uint64, skip []bool, write, deferred bool) {
	b := p.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	// Arrival: the explicit floor (AdvanceTo high-water mark), no earlier
	// than the completion of the stage maxInFlight submissions back — the
	// bounded in-flight window. With the default depth 1 the ring holds the
	// previous stage's completion, i.e. the strictly serial readyAt model.
	at := p.floor
	if oldest := p.doneRing[p.ringHead]; oldest > at {
		at = oldest
	}
	if b.serialize && b.frontier > at {
		at = b.frontier
	}
	g := uint64(b.sys.Geometry().AccessBytes)
	reqs := p.reqBuf[:0]
	for d := 0; d <= p.tree.LeafLevel(); d++ {
		if skip != nil && skip[d] {
			p.stats.SkippedBuckets++
			continue
		}
		base := p.mapper.BucketAddr(p.tree.PathBucket(leaf, d))
		for off := uint64(0); off < uint64(p.bucketBytes); off += g {
			reqs = append(reqs, dram.Request{Addr: base + off, Write: write})
		}
	}
	p.reqBuf = reqs
	before := b.sys.Stats()
	done := at
	if len(reqs) > 0 {
		done = b.sys.AccessAll(at, reqs)
	}
	after := b.sys.Stats()
	p.doneRing[p.ringHead] = done
	p.ringHead = (p.ringHead + 1) % len(p.doneRing)
	if done > p.readyAt {
		p.readyAt = done
	}
	if done > b.frontier {
		b.frontier = done
	}
	delta := after.Sub(before)
	// The port's completion high-water mark is its own stage's completion,
	// not the interval arithmetic (a fully skipped stage advances nothing).
	delta.LastCompletionCycle = done
	p.stats.DRAM = p.stats.DRAM.Merge(delta)
	if p.stats.Cycles < done {
		p.stats.Cycles = done
	}
	if write {
		p.stats.PathWrites++
		if deferred {
			p.stats.DeferredWrites++
		}
		p.stats.WriteCycles += done - at
	} else {
		p.stats.PathReads++
		p.stats.ReadCycles += done - at
	}
}
