package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/membus"
)

// fakeEngine is a deliberately non-thread-safe map engine: if the pool ever
// touched it from two goroutines, the race detector would fire. With
// deferring set, every operation enqueues one fake deferred write-back, so
// idle-work scheduling can be observed without a real ORAM.
type fakeEngine struct {
	blocks   map[uint64][]byte
	ops      []uint64 // addresses in execution order
	paddings int      // PaddingAccess calls
	delay    time.Duration
	failAddr uint64 // Read/Write of this address fails
	hasFail  bool

	deferring bool // ops enqueue fake deferred write-backs
	pending   int  // outstanding fake write-backs
	evictable int  // fake background-eviction budget
	wbDone    int  // write-backs completed via StepBackground
	evDone    int  // evictions performed via StepBackground
	flushes   int  // Flush calls
}

var errFake = errors.New("fake engine failure")

func newFakeEngine() *fakeEngine {
	return &fakeEngine{blocks: make(map[uint64][]byte)}
}

func (e *fakeEngine) Read(addr uint64) ([]byte, error) {
	e.noteOp(addr)
	if e.hasFail && addr == e.failAddr {
		return nil, errFake
	}
	return append([]byte(nil), e.blocks[addr]...), nil
}

func (e *fakeEngine) ReadInto(addr uint64, dst []byte) (bool, error) {
	e.noteOp(addr)
	if e.hasFail && addr == e.failAddr {
		return false, errFake
	}
	d, ok := e.blocks[addr]
	copy(dst, d)
	return ok, nil
}

func (e *fakeEngine) Write(addr uint64, data []byte) error {
	e.noteOp(addr)
	if e.hasFail && addr == e.failAddr {
		return errFake
	}
	e.blocks[addr] = append([]byte(nil), data...)
	return nil
}

func (e *fakeEngine) Update(addr uint64, fn func([]byte)) error {
	e.noteOp(addr)
	d := e.blocks[addr]
	fn(d)
	e.blocks[addr] = d
	return nil
}

func (e *fakeEngine) Load(addr uint64) ([]byte, bool, []core.Slot, error) {
	e.noteOp(addr)
	if e.hasFail && addr == e.failAddr {
		return nil, false, nil, errFake
	}
	d, ok := e.blocks[addr]
	delete(e.blocks, addr)
	return append([]byte(nil), d...), ok, nil, nil
}

func (e *fakeEngine) Store(addr uint64, data []byte) error {
	e.noteOp(addr)
	e.blocks[addr] = append([]byte(nil), data...)
	return nil
}

func (e *fakeEngine) PaddingAccess() error {
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	e.paddings++
	return nil
}

func (e *fakeEngine) StepBackground(allowEviction bool) (core.BackgroundWork, error) {
	if e.pending > 0 {
		e.pending--
		e.wbDone++
		return core.BgWriteBack, nil
	}
	if allowEviction && e.evictable > 0 {
		e.evictable--
		e.evDone++
		return core.BgEviction, nil
	}
	return core.BgNone, nil
}

func (e *fakeEngine) Flush() error {
	e.flushes++
	e.pending = 0
	return nil
}

func (e *fakeEngine) noteOp(addr uint64) {
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	e.ops = append(e.ops, addr)
	if e.deferring {
		e.pending++
	}
}

func newTestPool(t *testing.T, n, depth int) (*Pool, []*fakeEngine) {
	t.Helper()
	return newConfiguredPool(t, n, Config{QueueDepth: depth})
}

func newConfiguredPool(t *testing.T, n int, cfg Config) (*Pool, []*fakeEngine) {
	t.Helper()
	fakes := make([]*fakeEngine, n)
	engines := make([]Engine, n)
	for i := range fakes {
		fakes[i] = newFakeEngine()
		engines[i] = fakes[i]
	}
	p, err := NewPool(engines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, fakes
}

func val(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(nil, Config{}); err == nil {
		t.Error("empty engine list accepted")
	}
	if _, err := NewPool([]Engine{nil}, Config{}); err == nil {
		t.Error("nil engine accepted")
	}
	p, _ := newTestPool(t, 2, 0)
	defer p.Close()
	if err := p.Do(5, &Request{Op: OpRead}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := p.DoBatch([]int{0, 1}, []*Request{{Op: OpRead}}); err == nil {
		t.Error("mismatched batch lengths accepted")
	}
}

func TestDoRoundTrip(t *testing.T) {
	p, _ := newTestPool(t, 3, 4)
	defer p.Close()
	for i := uint64(0); i < 30; i++ {
		s := int(i % 3)
		if err := p.Do(s, &Request{Op: OpWrite, Addr: i, Data: val(i)}); err != nil {
			t.Fatal(err)
		}
		req := &Request{Op: OpRead, Addr: i}
		if err := p.Do(s, req); err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(req.Out); got != i {
			t.Fatalf("read back %d, want %d", got, i)
		}
	}
	st := p.Stats()
	if st.SingleOps != 60 {
		t.Errorf("SingleOps = %d, want 60", st.SingleOps)
	}
	var executed uint64
	for _, n := range st.ExecutedPerShard {
		executed += n
	}
	if executed != 60 {
		t.Errorf("executed = %d, want 60", executed)
	}
}

func TestPerShardFIFO(t *testing.T) {
	p, fakes := newTestPool(t, 1, 64)
	reqs := make([]*Request, 50)
	shards := make([]int, 50)
	for i := range reqs {
		reqs[i] = &Request{Op: OpWrite, Addr: uint64(i), Data: val(uint64(i))}
	}
	if err := p.DoBatch(shards, reqs); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for i, a := range fakes[0].ops {
		if a != uint64(i) {
			t.Fatalf("shard executed addr %d at position %d; queue is not FIFO", a, i)
		}
	}
}

func TestDoBatchOrderAndErrors(t *testing.T) {
	p, fakes := newTestPool(t, 4, 8)
	defer p.Close()

	n := 40
	reqs := make([]*Request, n)
	shards := make([]int, n)
	for i := 0; i < n; i++ {
		shards[i] = i % 4
		reqs[i] = &Request{Op: OpWrite, Addr: uint64(i), Data: val(uint64(i))}
	}
	if err := p.DoBatch(shards, reqs); err != nil {
		t.Fatal(err)
	}

	// Read everything back in one batch; shard 2 now fails on addr 6
	// (global index 6 routes to shard 6%4 == 2).
	fakes[2].hasFail = true
	fakes[2].failAddr = 6
	rr := make([]*Request, n)
	for i := 0; i < n; i++ {
		rr[i] = &Request{Op: OpRead, Addr: uint64(i)}
	}
	err := p.DoBatch(shards, rr)
	var failures int
	for i, r := range rr {
		if shards[i] == 2 && r.Addr == 6 {
			if !errors.Is(r.Err, errFake) {
				t.Errorf("request %d: err = %v, want fake failure", i, r.Err)
			}
			failures++
			continue
		}
		if r.Err != nil {
			t.Errorf("request %d: unexpected error %v", i, r.Err)
			continue
		}
		if got := binary.LittleEndian.Uint64(r.Out); got != uint64(i) {
			t.Errorf("request %d: out of order result %d", i, got)
		}
	}
	if failures == 0 {
		t.Fatal("test never exercised the failing address")
	}
	if !errors.Is(err, errFake) {
		t.Errorf("batch error = %v, want the per-request failure surfaced", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	p, _ := newTestPool(t, 4, 16)
	defer p.Close()
	const clients = 8
	const opsPer = 200
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client owns a disjoint address slice per shard.
			for i := 0; i < opsPer; i++ {
				addr := uint64(c*opsPer + i)
				s := int(addr % 4)
				if err := p.Do(s, &Request{Op: OpWrite, Addr: addr, Data: val(addr)}); err != nil {
					t.Errorf("client %d write: %v", c, err)
					return
				}
				req := &Request{Op: OpRead, Addr: addr}
				if err := p.Do(s, req); err != nil {
					t.Errorf("client %d read: %v", c, err)
					return
				}
				if got := binary.LittleEndian.Uint64(req.Out); got != addr {
					t.Errorf("client %d: read %d want %d", c, got, addr)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestCloseDrainsAcceptedRequests(t *testing.T) {
	p, fakes := newTestPool(t, 2, 64)
	for _, f := range fakes {
		f.delay = 100 * time.Microsecond
	}
	var accepted, closedErrs atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				addr := uint64(c*100 + i)
				err := p.Do(int(addr%2), &Request{Op: OpWrite, Addr: addr, Data: val(addr)})
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrClosed):
					closedErrs.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(c)
	}
	time.Sleep(2 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Every accepted request must have executed: Close drains, never drops.
	executed := uint64(len(fakes[0].ops) + len(fakes[1].ops))
	if executed != accepted.Load() {
		t.Errorf("accepted %d requests but executed %d", accepted.Load(), executed)
	}
	if accepted.Load() == 0 {
		t.Error("test closed before any request was accepted")
	}
	// Second close is a harmless no-op.
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := p.Do(0, &Request{Op: OpRead}); !errors.Is(err, ErrClosed) {
		t.Errorf("Do after Close = %v, want ErrClosed", err)
	}
	before := p.Stats()
	if err := p.DoBatch([]int{0}, []*Request{{Op: OpRead}}); !errors.Is(err, ErrClosed) {
		t.Errorf("DoBatch after Close = %v, want ErrClosed", err)
	}
	after := p.Stats()
	if after.Batches != before.Batches || after.BatchedOps != before.BatchedOps {
		t.Errorf("fully-rejected batch moved counters: %+v -> %+v", before, after)
	}
}

func TestInspectSerializesWithRequests(t *testing.T) {
	p, fakes := newTestPool(t, 1, 32)
	var before int
	if err := p.Inspect(0, func() { before = len(fakes[0].ops) }); err != nil {
		t.Fatal(err)
	}
	if before != 0 {
		t.Errorf("inspect before work saw %d ops", before)
	}
	for i := uint64(0); i < 10; i++ {
		if err := p.Do(0, &Request{Op: OpWrite, Addr: i, Data: val(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var during int
	if err := p.Inspect(0, func() { during = len(fakes[0].ops) }); err != nil {
		t.Fatal(err)
	}
	if during != 10 {
		t.Errorf("inspect saw %d ops, want 10", during)
	}
	// After Close, Inspect falls back to direct (quiescent) access.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	var after int
	if err := p.Inspect(0, func() { after = len(fakes[0].ops) }); err != nil {
		t.Fatal(err)
	}
	if after != 10 {
		t.Errorf("post-close inspect saw %d ops, want 10", after)
	}
	if err := p.Inspect(99, func() {}); err == nil {
		t.Error("post-close inspect accepted out-of-range shard")
	}
	// Concurrent post-close inspectors must stay serialized: the workers
	// are gone, so the pool itself has to provide the mutual exclusion.
	var counter int
	var cwg sync.WaitGroup
	for g := 0; g < 8; g++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for k := 0; k < 50; k++ {
				if err := p.Inspect(0, func() { counter++ }); err != nil {
					t.Errorf("post-close inspect: %v", err)
					return
				}
			}
		}()
	}
	cwg.Wait()
	if counter != 400 {
		t.Errorf("post-close inspectors raced: counter = %d, want 400", counter)
	}
}

// TestLoadStoreOps covers the exclusive-checkout scheduler ops: OpLoad
// removes the block (results in Out/Found/Group) and OpStore returns it,
// both executing on the worker and counting as real traffic.
func TestLoadStoreOps(t *testing.T) {
	p, fakes := newTestPool(t, 2, 8)
	defer p.Close()
	if err := p.Do(1, &Request{Op: OpWrite, Addr: 5, Data: val(5)}); err != nil {
		t.Fatal(err)
	}
	load := &Request{Op: OpLoad, Addr: 5}
	if err := p.Do(1, load); err != nil {
		t.Fatal(err)
	}
	if !load.Found || string(load.Out) != string(val(5)) {
		t.Fatalf("load: found=%v out=%x", load.Found, load.Out)
	}
	// The fake engine removed the block; a second load finds nothing.
	reload := &Request{Op: OpLoad, Addr: 5}
	if err := p.Do(1, reload); err != nil {
		t.Fatal(err)
	}
	if reload.Found {
		t.Error("load after checkout still found the block")
	}
	if err := p.Do(1, &Request{Op: OpStore, Addr: 5, Data: load.Out}); err != nil {
		t.Fatal(err)
	}
	back := &Request{Op: OpRead, Addr: 5}
	if err := p.Do(1, back); err != nil {
		t.Fatal(err)
	}
	if string(back.Out) != string(val(5)) {
		t.Fatalf("read after store: %x", back.Out)
	}
	st := p.Stats()
	if st.ExecutedPerShard[1] != 5 {
		t.Errorf("executed on shard 1 = %d, want 5 (load/store count as real traffic)", st.ExecutedPerShard[1])
	}
	if len(fakes[0].ops) != 0 {
		t.Error("shard 0 saw traffic")
	}
}

// TestPeekSkipsConsistencyFlush pins the difference between Inspect and
// Peek on an idle-work pool: Inspect flushes the engine first, Peek
// observes the deferred state as-is.
func TestPeekSkipsConsistencyFlush(t *testing.T) {
	p, fakes := newConfiguredPool(t, 1, Config{QueueDepth: 4, IdleWork: true, EvictionsPerIdle: -1})
	defer p.Close()
	fakes[0].deferring = true
	// Submit work and immediately peek: the flush count must not move.
	if err := p.Do(0, &Request{Op: OpWrite, Addr: 1, Data: val(1)}); err != nil {
		t.Fatal(err)
	}
	var flushesAtPeek int
	if err := p.Peek(0, func() { flushesAtPeek = fakes[0].flushes }); err != nil {
		t.Fatal(err)
	}
	if flushesAtPeek != 0 {
		t.Errorf("peek triggered %d flushes", flushesAtPeek)
	}
	var flushesAtInspect int
	if err := p.Inspect(0, func() { flushesAtInspect = fakes[0].flushes }); err != nil {
		t.Fatal(err)
	}
	if flushesAtInspect == 0 {
		t.Error("inspect did not flush first")
	}
}

func TestInspectAllFansOut(t *testing.T) {
	p, fakes := newTestPool(t, 3, 8)
	for i := uint64(0); i < 9; i++ {
		if err := p.Do(int(i%3), &Request{Op: OpWrite, Addr: i, Data: val(i)}); err != nil {
			t.Fatal(err)
		}
	}
	counts := make([]int, 3)
	fns := make([]func(), 3)
	for i := range fns {
		fns[i] = func() { counts[i] = len(fakes[i].ops) }
	}
	if err := p.InspectAll(fns); err != nil {
		t.Fatal(err)
	}
	for i, n := range counts {
		if n != 3 {
			t.Errorf("shard %d: inspector saw %d ops, want 3", i, n)
		}
	}
	if err := p.InspectAll(fns[:2]); err == nil {
		t.Error("mismatched inspector count accepted")
	}
	// Inspections are monitoring, not load: counters must not move.
	st := p.Stats()
	if st.SingleOps != 9 {
		t.Errorf("SingleOps = %d, want 9 (inspects must not count)", st.SingleOps)
	}
	for i, n := range st.ExecutedPerShard {
		if n != 3 {
			t.Errorf("shard %d executed = %d, want 3 (inspects must not count)", i, n)
		}
	}
	// After Close, InspectAll reads the quiescent engines directly.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.InspectAll(fns); err != nil {
		t.Fatal(err)
	}
	for i, n := range counts {
		if n != 3 {
			t.Errorf("post-close shard %d: inspector saw %d ops, want 3", i, n)
		}
	}
}

func TestUpdateOp(t *testing.T) {
	p, _ := newTestPool(t, 2, 4)
	defer p.Close()
	if err := p.Do(1, &Request{Op: OpWrite, Addr: 3, Data: val(41)}); err != nil {
		t.Fatal(err)
	}
	err := p.Do(1, &Request{Op: OpUpdate, Addr: 3, Fn: func(d []byte) {
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)+1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Op: OpRead, Addr: 3}
	if err := p.Do(1, req); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(req.Out); got != 42 {
		t.Errorf("update result %d, want 42", got)
	}
	if err := p.Do(0, &Request{Op: Op(99)}); err == nil {
		t.Error("unknown op accepted")
	}
}

// TestPaddingOp checks the first-class dummy request: OpPadding reaches
// the engine's PaddingAccess and is tallied in Stats.PaddingOps — and
// ONLY there. ExecutedPerShard must count real client traffic alone, so
// padding-heavy schedules don't skew it as a load measure (regression:
// padding used to be double-counted into executed).
func TestPaddingOp(t *testing.T) {
	p, fakes := newTestPool(t, 2, 4)
	defer p.Close()
	reqs := []*Request{
		{Op: OpWrite, Addr: 1, Data: val(1)},
		{Op: OpPadding},
		{Op: OpPadding},
	}
	if err := p.DoBatch([]int{0, 0, 1}, reqs); err != nil {
		t.Fatal(err)
	}
	if fakes[0].paddings != 1 || fakes[1].paddings != 1 {
		t.Errorf("engine padding calls = %d,%d, want 1,1", fakes[0].paddings, fakes[1].paddings)
	}
	st := p.Stats()
	if st.PaddingOps != 2 {
		t.Errorf("PaddingOps = %d, want 2", st.PaddingOps)
	}
	if fmt.Sprint(st.ExecutedPerShard) != "[1 0]" {
		t.Errorf("per-shard executed = %v, want [1 0] (padding must not count as executed)", st.ExecutedPerShard)
	}
	var executed uint64
	for _, n := range st.ExecutedPerShard {
		executed += n
	}
	if executed+st.PaddingOps != 3 {
		t.Errorf("executed %d + padding %d != 3 submitted requests", executed, st.PaddingOps)
	}
}

func TestPoolStatsCounters(t *testing.T) {
	p, _ := newTestPool(t, 2, 4)
	defer p.Close()
	for i := 0; i < 5; i++ {
		if err := p.Do(0, &Request{Op: OpWrite, Addr: 1, Data: val(1)}); err != nil {
			t.Fatal(err)
		}
	}
	reqs := []*Request{{Op: OpRead, Addr: 1}, {Op: OpRead, Addr: 1}}
	if err := p.DoBatch([]int{0, 1}, reqs); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.SingleOps != 5 || st.Batches != 1 || st.BatchedOps != 2 {
		t.Errorf("stats = %+v, want 5 single / 1 batch / 2 batched", st)
	}
	if fmt.Sprint(st.ExecutedPerShard) != "[6 1]" {
		t.Errorf("per-shard executed = %v, want [6 1]", st.ExecutedPerShard)
	}
}

// pendingTotal reads every engine's outstanding fake write-backs through
// the pool's peek path (serialized with the workers, no flush).
func pendingTotal(t *testing.T, p *Pool, fakes []*fakeEngine) int {
	t.Helper()
	counts := make([]int, len(fakes))
	fns := make([]func(), len(fakes))
	for i := range fns {
		fns[i] = func() { counts[i] = fakes[i].pending }
	}
	if err := p.PeekAll(fns); err != nil {
		t.Fatal(err)
	}
	var total int
	for _, n := range counts {
		total += n
	}
	return total
}

// TestAsyncIdleWorkDrainsWriteBacks submits deferring operations and
// checks that the workers complete the deferred write-backs on their own
// during idle queue time — no Flush, Inspect or Close involved.
func TestAsyncIdleWorkDrainsWriteBacks(t *testing.T) {
	p, fakes := newConfiguredPool(t, 2, Config{QueueDepth: 8, IdleWork: true})
	defer p.Close()
	for _, f := range fakes {
		f.deferring = true
	}
	for i := uint64(0); i < 20; i++ {
		if err := p.Do(int(i%2), &Request{Op: OpWrite, Addr: i, Data: val(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for pendingTotal(t, p, fakes) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle workers never drained: %d write-backs still pending", pendingTotal(t, p, fakes))
		}
		time.Sleep(time.Millisecond)
	}
	st := p.Stats()
	if st.IdleWriteBacks == 0 {
		t.Error("IdleWriteBacks = 0; background work was not counted")
	}
}

// TestAsyncCloseFlushes checks the drain guarantee: Close leaves every
// engine flushed even when deferred write-backs were outstanding.
func TestAsyncCloseFlushes(t *testing.T) {
	p, fakes := newConfiguredPool(t, 2, Config{QueueDepth: 64, IdleWork: true})
	for _, f := range fakes {
		f.deferring = true
	}
	for i := uint64(0); i < 40; i++ {
		if err := p.Do(int(i%2), &Request{Op: OpWrite, Addr: i, Data: val(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range fakes {
		if f.pending != 0 {
			t.Errorf("engine %d: %d write-backs pending after Close", i, f.pending)
		}
		if f.flushes == 0 {
			t.Errorf("engine %d: never flushed on Close", i)
		}
	}
}

// TestAsyncInspectFlushesFirst checks that inspections observe a
// consistent (fully written-back) snapshot, while peeks observe the
// deferred state as-is.
func TestAsyncInspectFlushesFirst(t *testing.T) {
	// Queue several ops back to back so the worker plausibly still holds
	// deferred work when the inspection runs; either way the inspection
	// itself must observe pending == 0.
	p, fakes := newConfiguredPool(t, 1, Config{QueueDepth: 16, IdleWork: true})
	defer p.Close()
	fakes[0].deferring = true
	for i := uint64(0); i < 8; i++ {
		if err := p.Do(0, &Request{Op: OpWrite, Addr: i, Data: val(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var pendingSeen, flushesSeen int
	if err := p.Inspect(0, func() {
		pendingSeen = fakes[0].pending
		flushesSeen = fakes[0].flushes
	}); err != nil {
		t.Fatal(err)
	}
	if pendingSeen != 0 {
		t.Errorf("inspection saw %d pending write-backs; Inspect must flush first", pendingSeen)
	}
	if flushesSeen == 0 {
		t.Error("inspection ran without a preceding flush")
	}
}

// TestAsyncEvictionsPerIdleCap checks that a worker issues at most
// EvictionsPerIdle background evictions per idle gap and then goes back to
// blocking on the queue.
func TestAsyncEvictionsPerIdleCap(t *testing.T) {
	p, fakes := newConfiguredPool(t, 1, Config{QueueDepth: 4, IdleWork: true, EvictionsPerIdle: 3})
	fakes[0].evictable = 100
	if err := p.Do(0, &Request{Op: OpWrite, Addr: 1, Data: val(1)}); err != nil {
		t.Fatal(err)
	}
	// Give the worker ample time to (wrongly) keep evicting past the cap.
	time.Sleep(20 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if fakes[0].evDone != 3 {
		t.Errorf("worker performed %d idle evictions, want exactly the cap of 3", fakes[0].evDone)
	}
	if st := p.Stats(); st.IdleEvictions != 3 {
		t.Errorf("Stats.IdleEvictions = %d, want 3", st.IdleEvictions)
	}
}

// TestSyncPoolNeverTouchesBackground checks that without IdleWork the pool
// never calls StepBackground mid-run — synchronous engines keep their
// exact pre-pipelining request behavior. Close still drains through one
// engine-owned Flush: deferred state is not exclusive to idle-work mode
// (a position-map lookaside cache holds dirty labels even under the
// synchronous protocol), and Flush is a no-op when nothing is owed.
func TestSyncPoolNeverTouchesBackground(t *testing.T) {
	p, fakes := newTestPool(t, 1, 4)
	fakes[0].evictable = 5
	for i := uint64(0); i < 10; i++ {
		if err := p.Do(0, &Request{Op: OpWrite, Addr: i, Data: val(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(5 * time.Millisecond)
	if fakes[0].flushes != 0 {
		t.Errorf("sync pool flushed mid-run: flushes=%d", fakes[0].flushes)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if fakes[0].evDone != 0 || fakes[0].wbDone != 0 {
		t.Errorf("sync pool ran background work: ev=%d wb=%d", fakes[0].evDone, fakes[0].wbDone)
	}
	if fakes[0].flushes != 1 {
		t.Errorf("close-time drain ran %d flushes, want exactly 1", fakes[0].flushes)
	}
}

// fakeTimedEngine is a fakeEngine that also reports modeled timing — the
// TimedEngine capability — with a flush-sensitive cycle count so the test
// can verify TimingStats snapshots ride the serialized Inspect path.
type fakeTimedEngine struct {
	*fakeEngine
	stats        membus.Stats
	statsOnFlush membus.Stats // replaces stats on Flush (simulates drain charges)
	hasTiming    bool
}

func (e *fakeTimedEngine) TimingStats() (membus.Stats, bool) { return e.stats, e.hasTiming }

func (e *fakeTimedEngine) Flush() error {
	if e.statsOnFlush.Cycles != 0 {
		e.stats = e.statsOnFlush
	}
	return e.fakeEngine.Flush()
}

// TestTimedPoolAggregatesTimingStats: Pool.TimingStats must merge timed
// engines' counters (sums + frontier max), skip untimed shards, and — with
// idle work on — observe post-flush numbers, so deferred write-backs are
// charged before the snapshot.
func TestTimedPoolAggregatesTimingStats(t *testing.T) {
	a := &fakeTimedEngine{fakeEngine: newFakeEngine(), hasTiming: true,
		stats: membus.Stats{PathReads: 2, ReadCycles: 100, Cycles: 500, AccessBytes: 64}}
	a.statsOnFlush = membus.Stats{PathReads: 2, PathWrites: 2, DeferredWrites: 2,
		ReadCycles: 100, WriteCycles: 80, Cycles: 700, AccessBytes: 64}
	b := &fakeTimedEngine{fakeEngine: newFakeEngine(), hasTiming: true,
		stats: membus.Stats{PathReads: 1, ReadCycles: 40, Cycles: 900, AccessBytes: 64}}
	untimed := newFakeEngine()
	p, err := NewPool([]Engine{a, b, untimed}, Config{IdleWork: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got, any := p.TimingStats()
	if !any {
		t.Fatal("pool with timed engines reported none")
	}
	if got.PathReads != 3 || got.PathWrites != 2 || got.DeferredWrites != 2 {
		t.Errorf("merged stage counters wrong: %+v", got)
	}
	if got.Cycles != 900 {
		t.Errorf("Cycles = %d, want frontier max 900", got.Cycles)
	}
	if got.ReadCycles != 140 || got.WriteCycles != 80 {
		t.Errorf("latency sums wrong: %+v", got)
	}
	// The snapshot must have flushed engine a first (statsOnFlush applied).
	if a.flushes == 0 {
		t.Error("TimingStats snapshot did not flush the engines")
	}

	// An all-untimed pool reports none.
	p2, err := NewPool([]Engine{newFakeEngine()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, any := p2.TimingStats(); any {
		t.Error("untimed pool claimed timing stats")
	}
}
