// Package shard implements the concurrency layer of the sharded ORAM
// serving stack: a pool of worker goroutines, one per shard, each owning a
// single-threaded ORAM engine exclusively and draining a buffered request
// queue.
//
// The Path ORAM protocol in internal/core is deliberately single-threaded
// and lock-free: an access mutates the stash, the position map, the bucket
// counters and the authentication tree together, so fine-grained locking
// inside one tree buys nothing but contention. Parallelism instead comes
// from running N independent trees (Stefanov et al. observe that disjoint
// trees are accessed independently without weakening obliviousness; Palermo
// builds its throughput on the same structure). The pool enforces the
// one-goroutine-per-tree ownership discipline: engines are handed over at
// construction and are only ever touched from their worker goroutine, which
// is what lets the whole stack stay mutex-free on the hot path.
//
// Requests are submitted either singly (Do: enqueue and wait) or as a batch
// (DoBatch: fan out across shards, join, preserve input order). Close
// drains every request already accepted before the workers exit, so no
// caller is ever left waiting on an abandoned request.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Engine is one single-threaded ORAM instance. The pool takes exclusive
// ownership: after NewPool returns, an engine must only be used by its
// worker goroutine (or through Inspect requests, which run on the worker).
type Engine interface {
	// Read returns a copy of the block at addr.
	Read(addr uint64) ([]byte, error)
	// Write replaces the block at addr.
	Write(addr uint64, data []byte) error
	// Update applies fn to the block in one read-modify-write access.
	Update(addr uint64, fn func(data []byte)) error
	// PaddingAccess performs one dummy access that is indistinguishable
	// from a real one to an observer of the engine's memory traffic. The
	// padded batch mode fills its fixed-shape schedule with these.
	PaddingAccess() error
}

// Op selects what a Request does on its shard's engine.
type Op int

const (
	// OpRead reads Addr; the result lands in Request.Out.
	OpRead Op = iota
	// OpWrite writes Data to Addr.
	OpWrite
	// OpUpdate applies Fn to Addr in a single oblivious access.
	OpUpdate
	// OpPadding performs one dummy access (Engine.PaddingAccess): a real
	// random-path access that touches no block. Padded batches use it to
	// fill the dummy slots of their fixed shard schedule, so an observer
	// sees the same per-shard traffic regardless of which slots carried
	// real requests.
	OpPadding
	// OpInspect runs Run on the worker goroutine with exclusive access to
	// the engine and nothing else in flight on that shard. Used to take
	// consistent stats snapshots without stopping the world.
	OpInspect
)

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("shard: pool is closed")

// Request is one operation bound for a shard worker. The Op-specific input
// fields must be set before submission; Out and Err are written by the
// worker and must only be read after Do/DoBatch returns.
type Request struct {
	Op   Op
	Addr uint64            // engine-local address (OpRead/OpWrite/OpUpdate)
	Data []byte            // OpWrite payload
	Fn   func(data []byte) // OpUpdate mutator
	Run  func()            // OpInspect body

	Out []byte // OpRead result
	Err error  // operation outcome

	wg *sync.WaitGroup
}

// Stats are the scheduler's own counters (the ORAM protocol counters live
// in the engines).
type Stats struct {
	// SingleOps counts requests submitted through Do.
	SingleOps uint64
	// Batches counts DoBatch calls; BatchedOps counts the requests they
	// carried.
	Batches    uint64
	BatchedOps uint64
	// PaddingOps counts OpPadding requests executed: the dummy accesses
	// injected by padded batches. They are also included in
	// ExecutedPerShard, since on the wire they are shard traffic like any
	// other.
	PaddingOps uint64
	// ExecutedPerShard counts requests completed by each worker.
	ExecutedPerShard []uint64
}

// paddedCounter is an atomic counter padded to its own cache line so
// per-shard counters don't false-share under concurrent load.
type paddedCounter struct {
	atomic.Uint64
	_ [56]byte
}

// Pool owns N engines and runs one worker goroutine per engine.
type Pool struct {
	engines []Engine
	queues  []chan *Request
	workers sync.WaitGroup

	// mu guards closed against concurrent Close: submitters hold the read
	// lock across the channel send, so Close (write lock) cannot close a
	// channel out from under an in-flight send.
	mu     sync.RWMutex
	closed bool

	// inspectMu serializes post-Close direct inspections: once the workers
	// have exited, concurrent Inspect/InspectAll callers would otherwise
	// touch the engines from their own goroutines simultaneously.
	inspectMu sync.Mutex

	singleOps  atomic.Uint64
	batches    atomic.Uint64
	batchedOps atomic.Uint64
	paddingOps atomic.Uint64
	executed   []paddedCounter
}

// NewPool starts one worker per engine. queueDepth is the per-shard buffer
// (default 128 when <= 0): deep enough to absorb bursts, shallow enough to
// bound the work Close must drain.
func NewPool(engines []Engine, queueDepth int) (*Pool, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("shard: pool needs at least one engine")
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("shard: engine %d is nil", i)
		}
	}
	if queueDepth <= 0 {
		queueDepth = 128
	}
	p := &Pool{
		engines:  engines,
		queues:   make([]chan *Request, len(engines)),
		executed: make([]paddedCounter, len(engines)),
	}
	for i := range engines {
		p.queues[i] = make(chan *Request, queueDepth)
		p.workers.Add(1)
		go p.run(i)
	}
	return p, nil
}

// NumShards returns the number of engines.
func (p *Pool) NumShards() int { return len(p.engines) }

// run is the worker loop: serially apply every request routed to shard i.
// Ranging over the queue makes Close-time draining automatic — the loop
// only exits once the closed channel is empty.
func (p *Pool) run(i int) {
	defer p.workers.Done()
	e := p.engines[i]
	for req := range p.queues[i] {
		switch req.Op {
		case OpRead:
			req.Out, req.Err = e.Read(req.Addr)
		case OpWrite:
			req.Err = e.Write(req.Addr, req.Data)
		case OpUpdate:
			req.Err = e.Update(req.Addr, req.Fn)
		case OpPadding:
			req.Err = e.PaddingAccess()
			p.paddingOps.Add(1)
		case OpInspect:
			if req.Run != nil {
				req.Run()
			}
		default:
			req.Err = fmt.Errorf("shard: unknown op %d", req.Op)
		}
		if req.Op != OpInspect {
			// Inspections are internal monitoring, not load: keeping them
			// out of the counters means ExecutedPerShard measures ORAM
			// traffic even when Stats() is polled frequently.
			p.executed[i].Add(1)
		}
		req.wg.Done()
	}
}

// submit enqueues req on shard s. req.wg must be armed by the caller.
func (p *Pool) submit(s int, req *Request) error {
	if s < 0 || s >= len(p.queues) {
		return fmt.Errorf("shard: shard %d out of range [0,%d)", s, len(p.queues))
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	// Blocking on a full queue while holding the read lock is safe: the
	// worker keeps draining, and Close merely waits until the send lands.
	p.queues[s] <- req
	return nil
}

// Do submits req to shard s and waits for the worker to complete it.
// The returned error is the request's own Err (nil on success), or
// ErrClosed if the pool no longer accepts work.
func (p *Pool) Do(s int, req *Request) error {
	var wg sync.WaitGroup
	wg.Add(1)
	req.wg = &wg
	if err := p.submit(s, req); err != nil {
		req.Err = err
		return err
	}
	wg.Wait()
	if req.Op != OpInspect {
		p.singleOps.Add(1)
	}
	return req.Err
}

// DoBatch submits reqs[i] to shards[i] for all i, then waits for every
// request to finish. Results stay in input order because each request
// carries its own result slot. Per-request outcomes are in reqs[i].Err;
// the returned error is the first non-nil one (submission errors
// included), so callers with homogeneous batches can check one value.
func (p *Pool) DoBatch(shards []int, reqs []*Request) error {
	if len(shards) != len(reqs) {
		return fmt.Errorf("shard: %d shard routes for %d requests", len(shards), len(reqs))
	}
	var wg sync.WaitGroup
	wg.Add(len(reqs))
	enqueued := 0
	for i, r := range reqs {
		r.wg = &wg
		if err := p.submit(shards[i], r); err != nil {
			// Nothing from i on was enqueued: fail the remainder locally
			// and release their waits so the join below still fires.
			for j := i; j < len(reqs); j++ {
				reqs[j].Err = err
				wg.Done()
			}
			break
		}
		enqueued++
	}
	wg.Wait()
	// Count only work that reached a worker, so BatchedOps stays
	// reconcilable with ExecutedPerShard even when submission fails.
	if enqueued > 0 {
		p.batches.Add(1)
		p.batchedOps.Add(uint64(enqueued))
	}
	for _, r := range reqs {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Inspect runs fn on shard s's worker goroutine, serialized with that
// shard's request stream, giving fn exclusive access to the engine. If the
// pool is closed it waits for the workers to exit and then runs fn
// directly — the engine is quiescent either way.
func (p *Pool) Inspect(s int, fn func()) error {
	req := &Request{Op: OpInspect, Run: fn}
	err := p.Do(s, req)
	if errors.Is(err, ErrClosed) {
		if s < 0 || s >= len(p.engines) {
			return fmt.Errorf("shard: shard %d out of range [0,%d)", s, len(p.engines))
		}
		// closed was observed, so Close already closed the queues; the
		// workers exit once drained. Wait, then run fn with the post-close
		// inspection lock so concurrent inspectors stay serialized.
		p.workers.Wait()
		p.inspectMu.Lock()
		fn()
		p.inspectMu.Unlock()
		return nil
	}
	return err
}

// InspectAll runs fns[i] on shard i's worker for every shard, fanned out
// concurrently (one queue wait in parallel per shard, not summed) while
// still serializing each fn with its shard's request stream. Shards whose
// submission raced with Close are handled like Inspect: wait for the
// drain, then run directly on the quiescent engine.
func (p *Pool) InspectAll(fns []func()) error {
	if len(fns) != len(p.engines) {
		return fmt.Errorf("shard: %d inspectors for %d shards", len(fns), len(p.engines))
	}
	var wg sync.WaitGroup
	backing := make([]Request, len(fns))
	var direct []int
	for i, fn := range fns {
		backing[i] = Request{Op: OpInspect, Run: fn, wg: &wg}
		wg.Add(1)
		if err := p.submit(i, &backing[i]); err != nil {
			wg.Done()
			if errors.Is(err, ErrClosed) {
				direct = append(direct, i)
				continue
			}
			return err
		}
	}
	wg.Wait()
	if len(direct) > 0 {
		p.workers.Wait()
		p.inspectMu.Lock()
		for _, i := range direct {
			fns[i]()
		}
		p.inspectMu.Unlock()
	}
	return nil
}

// Stats returns a snapshot of the scheduler counters.
func (p *Pool) Stats() Stats {
	s := Stats{
		SingleOps:        p.singleOps.Load(),
		Batches:          p.batches.Load(),
		BatchedOps:       p.batchedOps.Load(),
		PaddingOps:       p.paddingOps.Load(),
		ExecutedPerShard: make([]uint64, len(p.executed)),
	}
	for i := range p.executed {
		s.ExecutedPerShard[i] = p.executed[i].Load()
	}
	return s
}

// Close stops accepting requests, waits for every already-accepted request
// to complete, and stops the workers. Safe to call more than once; later
// calls wait for the drain and return nil.
func (p *Pool) Close() error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for _, q := range p.queues {
			close(q)
		}
	}
	p.mu.Unlock()
	p.workers.Wait()
	return nil
}
