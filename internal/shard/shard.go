// Package shard implements the concurrency layer of the sharded ORAM
// serving stack: a pool of worker goroutines, one per shard, each owning a
// single-threaded ORAM engine exclusively and draining a buffered request
// queue.
//
// The Path ORAM protocol in internal/core is deliberately single-threaded
// and lock-free: an access mutates the stash, the position map, the bucket
// counters and the authentication tree together, so fine-grained locking
// inside one tree buys nothing but contention. Parallelism instead comes
// from running N independent trees (Stefanov et al. observe that disjoint
// trees are accessed independently without weakening obliviousness; Palermo
// builds its throughput on the same structure). The pool enforces the
// one-goroutine-per-tree ownership discipline: engines are handed over at
// construction and are only ever touched from their worker goroutine, which
// is what lets the whole stack stay mutex-free on the hot path.
//
// Requests are submitted either singly (Do: enqueue and wait) or as a batch
// (DoBatch: fan out across shards, join, preserve input order). Close
// drains every request already accepted before the workers exit, so no
// caller is ever left waiting on an abandoned request.
//
// With Config.IdleWork enabled the worker loop becomes a two-stage
// pipeline: after answering a request it performs the engine's deferred
// work — completing queued path write-backs and running background
// eviction — during idle queue time, yielding to the next request the
// moment one arrives. Close and Inspect flush first, so the engines are
// always observed (and left) in a fully written-back state.
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/membus"
)

// Engine is one single-threaded ORAM instance. The pool takes exclusive
// ownership: after NewPool returns, an engine must only be used by its
// worker goroutine (or through Inspect requests, which run on the worker).
type Engine interface {
	// Read returns a copy of the block at addr.
	Read(addr uint64) ([]byte, error)
	// ReadInto reads the block at addr into the caller-provided dst,
	// avoiding Read's per-result allocation; found reports whether the
	// block was ever written. The worker writes into dst before completing
	// the request, so the caller may reuse dst as soon as Do returns.
	ReadInto(addr uint64, dst []byte) (found bool, err error)
	// Write replaces the block at addr.
	Write(addr uint64, data []byte) error
	// Update applies fn to the block in one read-modify-write access.
	Update(addr uint64, fn func(data []byte)) error
	// Load is the exclusive read of Section 3.3.1: one oblivious access
	// that removes the block (and its resident super-block group members)
	// from the engine and hands them to the caller. Addresses are
	// engine-local; the serving layer translates group members back to
	// global addresses.
	Load(addr uint64) (data []byte, found bool, group []core.Slot, err error)
	// Store returns a checked-out block straight into the engine's stash —
	// no path access.
	Store(addr uint64, data []byte) error
	// PaddingAccess performs one dummy access that is indistinguishable
	// from a real one to an observer of the engine's memory traffic. The
	// padded batch mode fills its fixed-shape schedule with these.
	PaddingAccess() error
	// StepBackground performs one unit of deferred work — completing one
	// pending path write-back, or (when allowEviction is set) issuing one
	// background-eviction dummy access — and reports which. Workers call
	// it in a loop during idle queue time; core.BgNone ends the loop.
	StepBackground(allowEviction bool) (core.BackgroundWork, error)
	// Flush completes every pending write-back and fully drains
	// background eviction, leaving the engine in a state the synchronous
	// protocol could have produced.
	Flush() error
}

// TimedEngine is an Engine whose storage backend charges a cycle-accurate
// memory model (a membus port behind a core.TimedStore). Engines report
// their port's modeled-timing counters so the pool can aggregate
// cycle/latency stats through the same serialized snapshot path as the
// protocol counters. The bool is false when the engine runs untimed (a
// plain in-memory backend), letting mixed pools skip those shards.
type TimedEngine interface {
	Engine
	TimingStats() (membus.Stats, bool)
}

// Op selects what a Request does on its shard's engine.
type Op int

const (
	// OpRead reads Addr; the result lands in Request.Out.
	OpRead Op = iota
	// OpWrite writes Data to Addr.
	OpWrite
	// OpUpdate applies Fn to Addr in a single oblivious access.
	OpUpdate
	// OpLoad is the exclusive read: the block (and its super-block group)
	// is removed from the engine; results land in Out, Found and Group.
	OpLoad
	// OpStore returns a checked-out block (Data) to Addr's stash slot.
	OpStore
	// OpPadding performs one dummy access (Engine.PaddingAccess): a real
	// random-path access that touches no block. Padded batches use it to
	// fill the dummy slots of their fixed shard schedule, so an observer
	// sees the same per-shard traffic regardless of which slots carried
	// real requests.
	OpPadding
	// OpInspect runs Run on the worker goroutine with exclusive access to
	// the engine and nothing else in flight on that shard. Used to take
	// consistent stats snapshots without stopping the world.
	OpInspect
)

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("shard: pool is closed")

// Request is one operation bound for a shard worker. The Op-specific input
// fields must be set before submission; Out and Err are written by the
// worker and must only be read after Do/DoBatch returns.
type Request struct {
	Op   Op
	Addr uint64            // engine-local address (OpRead/OpWrite/OpUpdate/OpLoad/OpStore)
	Data []byte            // OpWrite/OpStore payload
	Dst  []byte            // OpRead: when set, the result is written here (Engine.ReadInto) and Out stays nil
	Fn   func(data []byte) // OpUpdate mutator
	Run  func()            // OpInspect body
	Peek bool              // OpInspect: skip the consistency flush (observe deferred state as-is)

	Out   []byte      // OpRead/OpLoad result
	Found bool        // OpRead with Dst, OpLoad: the block had been written before
	Group []core.Slot // OpLoad: checked-out super-block group members (engine-local addresses)
	Err   error       // operation outcome

	wg *sync.WaitGroup
}

// Stats are the scheduler's own counters (the ORAM protocol counters live
// in the engines).
type Stats struct {
	// SingleOps counts requests submitted through Do.
	SingleOps uint64
	// Batches counts DoBatch calls; BatchedOps counts the requests they
	// carried.
	Batches    uint64
	BatchedOps uint64
	// PaddingOps counts OpPadding requests executed: the dummy accesses
	// injected by padded batches. They are deliberately NOT included in
	// ExecutedPerShard, so that ExecutedPerShard measures real client
	// traffic; PaddingPerShard carries the per-shard breakdown, and
	// on-the-wire per-shard traffic is executed plus padding.
	PaddingOps      uint64
	PaddingPerShard []uint64
	// IdleWriteBacks and IdleEvictions count the background work units the
	// workers performed during idle queue time (Config.IdleWork): deferred
	// path write-backs completed, and background-eviction dummy accesses
	// issued.
	IdleWriteBacks uint64
	IdleEvictions  uint64
	// ExecutedPerShard counts real (non-padding, non-inspect) requests
	// completed by each worker.
	ExecutedPerShard []uint64
}

// paddedCounter is an atomic counter padded to its own cache line so
// per-shard counters don't false-share under concurrent load.
type paddedCounter struct {
	atomic.Uint64
	_ [56]byte
}

// DefaultEvictionsPerIdle caps the background-eviction dummy accesses a
// worker issues per idle gap. The cap bounds how long a worker can be busy
// with speculative draining when a request arrives (it yields between
// units), and keeps an idle pool from endlessly polishing its stashes.
// Deferred write-backs are never capped: they are owed work, not
// speculation.
const DefaultEvictionsPerIdle = 4

// Config parameterizes a Pool.
type Config struct {
	// QueueDepth is the per-shard request buffer (default 128): deep
	// enough to absorb bursts, shallow enough to bound the work Close must
	// drain.
	QueueDepth int
	// IdleWork enables the idle-time background scheduler: after
	// answering a request, the worker completes deferred write-backs and
	// runs background eviction until the queue has work again. Close and
	// Inspect flush the engines first, so snapshots and the final state
	// are always fully written back.
	IdleWork bool
	// EvictionsPerIdle caps background-eviction dummy accesses per idle
	// gap (default DefaultEvictionsPerIdle; negative disables idle
	// eviction, leaving only write-back completion).
	EvictionsPerIdle int
}

// Pool owns N engines and runs one worker goroutine per engine.
type Pool struct {
	engines []Engine
	queues  []chan *Request
	workers sync.WaitGroup

	idleWork         bool
	evictionsPerIdle int

	// mu guards closed against concurrent Close: submitters hold the read
	// lock across the channel send, so Close (write lock) cannot close a
	// channel out from under an in-flight send.
	mu     sync.RWMutex
	closed bool

	// inspectMu serializes post-Close direct inspections: once the workers
	// have exited, concurrent Inspect/InspectAll callers would otherwise
	// touch the engines from their own goroutines simultaneously.
	inspectMu sync.Mutex

	singleOps      atomic.Uint64
	batches        atomic.Uint64
	batchedOps     atomic.Uint64
	paddingOps     atomic.Uint64
	idleWriteBacks atomic.Uint64
	idleEvictions  atomic.Uint64
	executed       []paddedCounter
	padded         []paddedCounter

	// bgErrMu/bgErr record the first background-work or close-time flush
	// error; Close surfaces it (request errors travel with their requests,
	// but background work has no caller to report to).
	bgErrMu sync.Mutex
	bgErr   error
}

// NewPool starts one worker per engine.
func NewPool(engines []Engine, cfg Config) (*Pool, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("shard: pool needs at least one engine")
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("shard: engine %d is nil", i)
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 128
	}
	if cfg.EvictionsPerIdle == 0 {
		cfg.EvictionsPerIdle = DefaultEvictionsPerIdle
	} else if cfg.EvictionsPerIdle < 0 {
		cfg.EvictionsPerIdle = 0
	}
	p := &Pool{
		engines:          engines,
		queues:           make([]chan *Request, len(engines)),
		executed:         make([]paddedCounter, len(engines)),
		padded:           make([]paddedCounter, len(engines)),
		idleWork:         cfg.IdleWork,
		evictionsPerIdle: cfg.EvictionsPerIdle,
	}
	for i := range engines {
		p.queues[i] = make(chan *Request, cfg.QueueDepth)
		p.workers.Add(1)
		go p.run(i)
	}
	return p, nil
}

// NumShards returns the number of engines.
func (p *Pool) NumShards() int { return len(p.engines) }

// handle applies one request to shard i's engine.
func (p *Pool) handle(i int, e Engine, req *Request) {
	switch req.Op {
	case OpRead:
		if req.Dst != nil {
			req.Found, req.Err = e.ReadInto(req.Addr, req.Dst)
		} else {
			req.Out, req.Err = e.Read(req.Addr)
		}
	case OpWrite:
		req.Err = e.Write(req.Addr, req.Data)
	case OpUpdate:
		req.Err = e.Update(req.Addr, req.Fn)
	case OpLoad:
		req.Out, req.Found, req.Group, req.Err = e.Load(req.Addr)
	case OpStore:
		req.Err = e.Store(req.Addr, req.Data)
	case OpPadding:
		req.Err = e.PaddingAccess()
		p.paddingOps.Add(1)
		p.padded[i].Add(1)
	case OpInspect:
		// Inspections observe a consistent snapshot: with idle work on,
		// deferred write-backs and pending evictions are flushed first, so
		// the snapshot matches what the synchronous path would show. Peek
		// inspections opt out to observe the deferred state itself. A
		// flush failure travels on the request AND is recorded for Close:
		// several snapshot callers (Stats, StashSize) have no error return
		// and would otherwise silently observe an engine holding deferred
		// state.
		if p.idleWork && !req.Peek {
			if req.Err = e.Flush(); req.Err != nil {
				p.noteBackgroundErr(req.Err)
			}
		}
		if req.Run != nil {
			req.Run()
		}
	default:
		req.Err = fmt.Errorf("shard: unknown op %d", req.Op)
	}
	if req.Op != OpInspect && req.Op != OpPadding {
		// Inspections are monitoring, not load, and padding is scheduler
		// overhead counted in PaddingOps: keeping both out means
		// ExecutedPerShard measures real client traffic per shard.
		p.executed[i].Add(1)
	}
	req.wg.Done()
}

// run is the worker loop: serially apply every request routed to shard i.
// Receiving from the queue makes Close-time draining automatic — receive
// only fails once the closed channel is empty. Between requests, idle-work
// pools run the engine's deferred write-backs and background eviction,
// yielding the moment the queue has a request (requests always win the
// select, so background work never delays an already-queued client).
func (p *Pool) run(i int) {
	defer p.workers.Done()
	e := p.engines[i]
	q := p.queues[i]
	for {
		req, ok := <-q
		if !ok {
			break
		}
		p.handle(i, e, req)
		if !p.idleWork {
			continue
		}
		// Yield before touching background work: the goroutine just
		// unblocked by the response must get the processor first, or —
		// with few processors — the response's delivery would silently
		// absorb the cost of the write-back it was supposed to skip.
		runtime.Gosched()
		evictions := 0
	idle:
		for {
			select {
			case req, ok := <-q:
				if !ok {
					break idle
				}
				p.handle(i, e, req)
				evictions = 0
				runtime.Gosched()
			default:
				w, err := e.StepBackground(evictions < p.evictionsPerIdle)
				if err != nil {
					p.noteBackgroundErr(err)
					break idle
				}
				switch w {
				case core.BgWriteBack:
					p.idleWriteBacks.Add(1)
				case core.BgEviction:
					p.idleEvictions.Add(1)
					evictions++
				default:
					break idle
				}
			}
		}
		// A break out of the idle loop with the queue still open simply
		// returns to the blocking receive above; if the queue was closed
		// the receive observes it and the worker exits through the drain
		// path below.
	}
	// Close-time drain: leave the engine fully written back. Unconditional
	// because deferred state is not exclusive to idle-work mode — engines
	// with a position-map lookaside cache hold dirty labels even under the
	// synchronous protocol; Flush is a cheap no-op when nothing is owed.
	if err := e.Flush(); err != nil {
		p.noteBackgroundErr(err)
	}
}

func (p *Pool) noteBackgroundErr(err error) {
	p.bgErrMu.Lock()
	if p.bgErr == nil {
		p.bgErr = err
	}
	p.bgErrMu.Unlock()
}

// submit enqueues req on shard s. req.wg must be armed by the caller.
func (p *Pool) submit(s int, req *Request) error {
	if s < 0 || s >= len(p.queues) {
		return fmt.Errorf("shard: shard %d out of range [0,%d)", s, len(p.queues))
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	// Blocking on a full queue while holding the read lock is safe: the
	// worker keeps draining, and Close merely waits until the send lands.
	p.queues[s] <- req
	return nil
}

// Do submits req to shard s and waits for the worker to complete it.
// The returned error is the request's own Err (nil on success), or
// ErrClosed if the pool no longer accepts work.
func (p *Pool) Do(s int, req *Request) error {
	var wg sync.WaitGroup
	return p.DoWith(s, req, &wg)
}

// DoWith is Do with a caller-supplied WaitGroup: throughput-sensitive
// callers recycle the request and its wait state together (e.g. through a
// sync.Pool), making single-operation submission allocation-free. wg must
// be idle (its counter at zero) and is left idle again on return.
func (p *Pool) DoWith(s int, req *Request, wg *sync.WaitGroup) error {
	wg.Add(1)
	req.wg = wg
	if err := p.submit(s, req); err != nil {
		wg.Done()
		req.Err = err
		return err
	}
	wg.Wait()
	if req.Op != OpInspect {
		p.singleOps.Add(1)
	}
	return req.Err
}

// DoBatch submits reqs[i] to shards[i] for all i, then waits for every
// request to finish. Results stay in input order because each request
// carries its own result slot. Per-request outcomes are in reqs[i].Err;
// the returned error is the first non-nil one (submission errors
// included), so callers with homogeneous batches can check one value.
func (p *Pool) DoBatch(shards []int, reqs []*Request) error {
	if len(shards) != len(reqs) {
		return fmt.Errorf("shard: %d shard routes for %d requests", len(shards), len(reqs))
	}
	var wg sync.WaitGroup
	wg.Add(len(reqs))
	enqueued := 0
	for i, r := range reqs {
		r.wg = &wg
		if err := p.submit(shards[i], r); err != nil {
			// Nothing from i on was enqueued: fail the remainder locally
			// and release their waits so the join below still fires.
			for j := i; j < len(reqs); j++ {
				reqs[j].Err = err
				wg.Done()
			}
			break
		}
		enqueued++
	}
	wg.Wait()
	// Count only work that reached a worker, so BatchedOps stays
	// reconcilable with ExecutedPerShard even when submission fails.
	if enqueued > 0 {
		p.batches.Add(1)
		p.batchedOps.Add(uint64(enqueued))
	}
	for _, r := range reqs {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Inspect runs fn on shard s's worker goroutine, serialized with that
// shard's request stream, giving fn exclusive access to the engine. If the
// pool is closed it waits for the workers to exit and then runs fn
// directly — the engine is quiescent either way.
func (p *Pool) Inspect(s int, fn func()) error { return p.inspect(s, fn, false) }

// Peek is Inspect without the idle-work consistency flush: fn observes
// (and may advance, e.g. via StepBackground) the engine's deferred state
// as-is. Background pumps and backlog gauges use it so observing the
// pipeline does not drain it.
func (p *Pool) Peek(s int, fn func()) error { return p.inspect(s, fn, true) }

func (p *Pool) inspect(s int, fn func(), peek bool) error {
	req := &Request{Op: OpInspect, Run: fn, Peek: peek}
	err := p.Do(s, req)
	if errors.Is(err, ErrClosed) {
		if s < 0 || s >= len(p.engines) {
			return fmt.Errorf("shard: shard %d out of range [0,%d)", s, len(p.engines))
		}
		// closed was observed, so Close already closed the queues; the
		// workers exit once drained. Wait, then run fn with the post-close
		// inspection lock so concurrent inspectors stay serialized.
		p.workers.Wait()
		p.inspectMu.Lock()
		fn()
		p.inspectMu.Unlock()
		return nil
	}
	return err
}

// InspectAll runs fns[i] on shard i's worker for every shard, fanned out
// concurrently (one queue wait in parallel per shard, not summed) while
// still serializing each fn with its shard's request stream. Shards whose
// submission raced with Close are handled like Inspect: wait for the
// drain, then run directly on the quiescent engine.
func (p *Pool) InspectAll(fns []func()) error { return p.inspectAll(fns, false) }

// PeekAll is InspectAll without the idle-work consistency flush: fns
// observe each engine's deferred state as-is (pending write-backs
// included). Monitoring that must not perturb the pipeline uses this.
func (p *Pool) PeekAll(fns []func()) error { return p.inspectAll(fns, true) }

func (p *Pool) inspectAll(fns []func(), peek bool) error {
	if len(fns) != len(p.engines) {
		return fmt.Errorf("shard: %d inspectors for %d shards", len(fns), len(p.engines))
	}
	var wg sync.WaitGroup
	backing := make([]Request, len(fns))
	var direct []int
	for i, fn := range fns {
		backing[i] = Request{Op: OpInspect, Run: fn, Peek: peek, wg: &wg}
		wg.Add(1)
		if err := p.submit(i, &backing[i]); err != nil {
			wg.Done()
			if errors.Is(err, ErrClosed) {
				direct = append(direct, i)
				continue
			}
			return err
		}
	}
	wg.Wait()
	if len(direct) > 0 {
		p.workers.Wait()
		p.inspectMu.Lock()
		for _, i := range direct {
			fns[i]()
		}
		p.inspectMu.Unlock()
	}
	// Surface per-shard flush failures (the inspections themselves cannot
	// fail): the snapshot still ran, but on an engine that may hold
	// deferred state.
	for i := range backing {
		if backing[i].Err != nil {
			return backing[i].Err
		}
	}
	return nil
}

// TimingStats merges every timed engine's modeled memory-timing counters
// (counters sum, the completion frontier takes the max). Snapshots are
// taken on the workers, serialized with each shard's request stream; under
// idle work the engines flush first, so deferred write-backs are charged
// before the snapshot — the numbers always describe a state the
// synchronous protocol could have produced. Like every other snapshot
// (Stats, StashSize), a pre-snapshot flush failure cannot be reported
// here: it is recorded and surfaced by Close, and the affected shard's
// stats may then be missing its still-deferred write-back charges. The
// bool is false when no engine is timed.
func (p *Pool) TimingStats() (membus.Stats, bool) {
	snaps := make([]membus.Stats, len(p.engines))
	timed := make([]bool, len(p.engines))
	fns := make([]func(), len(p.engines))
	for i, e := range p.engines {
		te, ok := e.(TimedEngine)
		if !ok {
			fns[i] = func() {}
			continue
		}
		i := i
		fns[i] = func() { snaps[i], timed[i] = te.TimingStats() }
	}
	_ = p.inspectAll(fns, false)
	var merged membus.Stats
	any := false
	for i := range snaps {
		if timed[i] {
			merged = merged.Merge(snaps[i])
			any = true
		}
	}
	return merged, any
}

// Stats returns a snapshot of the scheduler counters.
func (p *Pool) Stats() Stats {
	s := Stats{
		SingleOps:        p.singleOps.Load(),
		Batches:          p.batches.Load(),
		BatchedOps:       p.batchedOps.Load(),
		PaddingOps:       p.paddingOps.Load(),
		IdleWriteBacks:   p.idleWriteBacks.Load(),
		IdleEvictions:    p.idleEvictions.Load(),
		ExecutedPerShard: make([]uint64, len(p.executed)),
		PaddingPerShard:  make([]uint64, len(p.padded)),
	}
	for i := range p.executed {
		s.ExecutedPerShard[i] = p.executed[i].Load()
		s.PaddingPerShard[i] = p.padded[i].Load()
	}
	return s
}

// Close stops accepting requests, waits for every already-accepted request
// to complete, flushes each engine's deferred work (idle-work pools), and
// stops the workers. It returns the first background-work or flush error
// encountered over the pool's lifetime — such errors have no request to
// travel with. Safe to call more than once; later calls wait for the
// drain and report the same error.
func (p *Pool) Close() error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for _, q := range p.queues {
			close(q)
		}
	}
	p.mu.Unlock()
	p.workers.Wait()
	p.bgErrMu.Lock()
	defer p.bgErrMu.Unlock()
	return p.bgErr
}
