package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	p := ProfileByName("mcf")
	orig := Record(p.Generator(9), 5000)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("length %d want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("instr %d: %+v != %+v", i, got[i], orig[i])
		}
	}
}

func TestReplayerCycles(t *testing.T) {
	r, err := NewReplayer([]Instr{{Kind: Arith}, {Kind: Load, Addr: 64}})
	if err != nil {
		t.Fatal(err)
	}
	seq := []Instr{r.Next(), r.Next(), r.Next()}
	if seq[0].Kind != Arith || seq[1].Addr != 64 || seq[2].Kind != Arith {
		t.Errorf("replay order wrong: %+v", seq)
	}
	if r.Wrapped != 1 {
		t.Errorf("Wrapped=%d want 1", r.Wrapped)
	}
	if _, err := NewReplayer(nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid magic, truncated body.
	if _, err := Read(bytes.NewReader([]byte{'P', 'O', 'T', '1', 200})); err == nil {
		t.Error("truncated count accepted")
	}
	// Unknown instruction kind.
	var buf bytes.Buffer
	buf.Write(traceMagic[:])
	buf.WriteByte(1)  // one instruction
	buf.WriteByte(99) // kind 99
	if _, err := Read(&buf); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestTraceEncodingCompact(t *testing.T) {
	// Streaming traces must encode to ~1-2 bytes per instruction thanks
	// to delta encoding.
	p := Profile{Name: "s", MemFrac: 1.0, SeqFrac: 1.0, WorkingSet: 1 << 20}
	instrs := Record(p.Generator(3), 10000)
	var buf bytes.Buffer
	if err := Write(&buf, instrs); err != nil {
		t.Fatal(err)
	}
	perInstr := float64(buf.Len()) / float64(len(instrs))
	if perInstr > 3 {
		t.Errorf("%.1f bytes/instruction for a streaming trace, want < 3", perInstr)
	}
}

func TestZigZagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCPUConsumesReplayedTrace(t *testing.T) {
	// End-to-end: a recorded trace replays identically through Record.
	p := ProfileByName("gcc")
	a := Record(p.Generator(4), 2000)
	r, err := NewReplayer(a)
	if err != nil {
		t.Fatal(err)
	}
	b := Record(r, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
