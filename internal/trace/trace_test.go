package trace

import (
	"testing"
)

func TestDeterministic(t *testing.T) {
	p := SPEC06()[0]
	a, b := p.Generator(42), p.Generator(42)
	for i := 0; i < 5000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("step %d: %+v != %+v", i, x, y)
		}
	}
}

func TestMemFraction(t *testing.T) {
	for _, p := range SPEC06() {
		g := p.Generator(7)
		const n = 200000
		mem := 0
		for i := 0; i < n; i++ {
			in := g.Next()
			if in.Kind == Load || in.Kind == Store {
				mem++
			}
		}
		got := float64(mem) / n
		// Multi-line chase nodes add pending accesses beyond MemFrac, so
		// allow generous slack upward.
		if got < p.MemFrac*0.85 || got > p.MemFrac*1.3+0.05 {
			t.Errorf("%s: mem fraction %.3f want ~%.3f", p.Name, got, p.MemFrac)
		}
	}
}

func TestStoreShare(t *testing.T) {
	p := Profile{Name: "x", MemFrac: 0.5, StoreFrac: 0.4, WorkingSet: 1 << 20}
	g := p.Generator(3)
	loads, stores := 0, 0
	for i := 0; i < 100000; i++ {
		switch g.Next().Kind {
		case Load:
			loads++
		case Store:
			stores++
		}
	}
	share := float64(stores) / float64(loads+stores)
	if share < 0.35 || share > 0.45 {
		t.Errorf("store share %.3f want ~0.4", share)
	}
}

func TestAddressesWithinRegions(t *testing.T) {
	p := Profile{
		Name: "y", MemFrac: 1.0, SeqFrac: 0.4, ChaseFrac: 0.4,
		WorkingSet: 1 << 20, HotBytes: 64 << 10, ChaseNodeLines: 2,
	}
	g := p.Generator(5)
	const hotBase = uint64(1) << 40
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Kind != Load && in.Kind != Store {
			continue
		}
		if in.Addr >= hotBase {
			if in.Addr >= hotBase+(64<<10) {
				t.Fatalf("hot address %#x outside region", in.Addr)
			}
		} else if in.Addr >= 1<<20 {
			t.Fatalf("ws address %#x outside region", in.Addr)
		}
	}
}

func TestStackRegionIsTiny(t *testing.T) {
	p := Profile{Name: "st", MemFrac: 1.0, StackFrac: 1.0, StackBytes: 4 << 10}
	g := p.Generator(17)
	const stackBase = uint64(1) << 41
	for i := 0; i < 20000; i++ {
		a := g.Next().Addr
		if a < stackBase || a >= stackBase+(4<<10) {
			t.Fatalf("stack address %#x outside its 4KB region", a)
		}
	}
}

func TestChaseNodeSpatialLocality(t *testing.T) {
	// A 2-line chase node must touch both of its adjacent lines.
	p := Profile{Name: "z", MemFrac: 1.0, ChaseFrac: 1.0,
		WorkingSet: 1 << 24, ChaseNodeLines: 2, LineBytes: 128}
	g := p.Generator(9)
	pairHits := 0
	var prevLine uint64
	const n = 20000
	for i := 0; i < n; i++ {
		in := g.Next()
		line := in.Addr / 128
		if i > 0 && line == prevLine^1 {
			pairHits++
		}
		prevLine = line
	}
	if pairHits < n/3 {
		t.Errorf("only %d/%d consecutive pair accesses; chase nodes lack locality", pairHits, n)
	}
}

func TestSequentialPatternAdvances(t *testing.T) {
	p := Profile{Name: "s", MemFrac: 1.0, SeqFrac: 1.0, WorkingSet: 1 << 16}
	g := p.Generator(11)
	var prev uint64
	wrapped := false
	for i := 0; i < 20000; i++ {
		a := g.Next().Addr
		if i > 0 && a != prev+8 {
			if a == 0 {
				wrapped = true
			} else {
				t.Fatalf("sequential stream jumped from %d to %d", prev, a)
			}
		}
		prev = a
	}
	if !wrapped {
		t.Error("stream never wrapped a 64KB working set in 20k accesses")
	}
}

func TestInstructionMixKinds(t *testing.T) {
	p := Profile{Name: "m", MemFrac: 0.0, MultFrac: 0.3, DivFrac: 0.1, FPFrac: 0.5}
	g := p.Generator(13)
	counts := map[Kind]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	if counts[Load]+counts[Store] != 0 {
		t.Error("MemFrac=0 produced memory ops")
	}
	divs := counts[Div] + counts[FPDiv]
	if float64(divs)/n < 0.07 || float64(divs)/n > 0.13 {
		t.Errorf("div fraction %.3f want ~0.1", float64(divs)/n)
	}
	if counts[FPArith] == 0 || counts[FPMult] == 0 {
		t.Error("FP kinds missing")
	}
}

func TestProfileByName(t *testing.T) {
	if p := ProfileByName("mcf"); p == nil || p.Name != "mcf" {
		t.Error("mcf lookup failed")
	}
	if ProfileByName("nope") != nil {
		t.Error("unknown profile found")
	}
	// Mutating the returned profile must not affect the table.
	p := ProfileByName("mcf")
	p.MemFrac = 0
	if ProfileByName("mcf").MemFrac == 0 {
		t.Error("ProfileByName returned shared state")
	}
}

func TestSPEC06Coverage(t *testing.T) {
	ps := SPEC06()
	if len(ps) < 9 {
		t.Fatalf("only %d profiles", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.MemFrac <= 0 || p.MemFrac >= 1 {
			t.Errorf("%s: MemFrac %v out of range", p.Name, p.MemFrac)
		}
		if p.SeqFrac+p.ChaseFrac+p.StackFrac > 1 {
			t.Errorf("%s: pattern fractions exceed 1", p.Name)
		}
	}
	for _, name := range []string{"mcf", "libquantum", "bzip2", "hmmer", "sjeng"} {
		if !seen[name] {
			t.Errorf("missing paper benchmark %s", name)
		}
	}
}
