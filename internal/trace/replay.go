package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file provides trace recording and replay: a Generator's stream can
// be serialized compactly and replayed later, so experiments can be
// repeated bit-identically across machines, or real program traces
// (converted to the same format) can be substituted for the synthetic
// models.

// traceMagic guards the serialization format.
var traceMagic = [4]byte{'P', 'O', 'T', '1'} // Path Oram Trace v1

// Record pulls n instructions from a generator into a slice.
func Record(g Generator, n int) []Instr {
	out := make([]Instr, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Write serializes instructions: a 4-byte magic, a varint count, then one
// varint kind and (for memory ops) a varint address delta per instruction.
// Address deltas are zig-zag encoded, which keeps streaming and strided
// traces small.
func Write(w io.Writer, instrs []Instr) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(instrs))); err != nil {
		return err
	}
	var prevAddr uint64
	for _, in := range instrs {
		if err := put(uint64(in.Kind)); err != nil {
			return err
		}
		if in.Kind == Load || in.Kind == Store {
			delta := int64(in.Addr) - int64(prevAddr)
			if err := put(zigzag(delta)); err != nil {
				return err
			}
			prevAddr = in.Addr
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) ([]Instr, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxTrace = 1 << 30
	if count > maxTrace {
		return nil, fmt.Errorf("trace: implausible instruction count %d", count)
	}
	out := make([]Instr, 0, count)
	var prevAddr uint64
	for i := uint64(0); i < count; i++ {
		k, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: instruction %d: %w", i, err)
		}
		if k > uint64(Store) {
			return nil, fmt.Errorf("trace: instruction %d: unknown kind %d", i, k)
		}
		in := Instr{Kind: Kind(k)}
		if in.Kind == Load || in.Kind == Store {
			zz, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: address %d: %w", i, err)
			}
			prevAddr = uint64(int64(prevAddr) + unzigzag(zz))
			in.Addr = prevAddr
		}
		out = append(out, in)
	}
	return out, nil
}

// Replayer replays a recorded trace as a Generator, cycling at the end.
type Replayer struct {
	instrs []Instr
	pos    int
	// Wrapped counts how many times the trace restarted.
	Wrapped int
}

// NewReplayer wraps a recorded instruction slice.
func NewReplayer(instrs []Instr) (*Replayer, error) {
	if len(instrs) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return &Replayer{instrs: instrs}, nil
}

// Next implements Generator.
func (r *Replayer) Next() Instr {
	in := r.instrs[r.pos]
	r.pos++
	if r.pos == len(r.instrs) {
		r.pos = 0
		r.Wrapped++
	}
	return in
}

func zigzag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}
