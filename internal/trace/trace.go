// Package trace generates synthetic instruction/memory streams that stand
// in for the paper's SPEC2006-int traces (Section 4.3). The real traces are
// not redistributable; each profile instead models what drives Figure 12 —
// the instruction mix, the L2 miss rate, and the spatial locality that
// super blocks exploit — with explicitly controlled access patterns:
//
//   - seq:    streaming over a large array (libquantum-style); adjacent
//     lines are touched in order, so super blocks halve misses.
//   - chase:  dependent pointer chasing over a large pool (mcf-style);
//     each node spans two adjacent lines, giving super blocks
//     pair locality without streaming.
//   - hot:    a small working set that caches well (the compute-bound
//     benchmarks' dominant behaviour).
//
// The per-benchmark parameters are calibrated (see trace_test.go and
// EXPERIMENTS.md) so the simulated L2 MPKI band reproduces the paper's
// qualitative split: mcf/libquantum/bzip2 memory-bound, hmmer/sjeng/
// h264ref compute-bound.
package trace

import "math/rand"

// Kind classifies instructions for the Table 1 latency model.
type Kind int

// Instruction kinds.
const (
	Arith Kind = iota
	Mult
	Div
	FPArith
	FPMult
	FPDiv
	Load
	Store
)

// Instr is one instruction of the synthetic stream.
type Instr struct {
	Kind Kind
	Addr uint64 // byte address; meaningful for Load/Store only
}

// Generator produces an instruction stream.
type Generator interface {
	Next() Instr
}

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string

	// MemFrac is the fraction of instructions that access memory;
	// StoreFrac is the store share of those.
	MemFrac   float64
	StoreFrac float64

	// Pattern mix (fractions of memory accesses; the remainder goes to
	// the hot set).
	SeqFrac   float64
	ChaseFrac float64
	// StackFrac of memory accesses hit a tiny L1-resident region
	// (stack/locals), keeping baseline CPI realistic for an in-order
	// core.
	StackFrac float64

	// Footprints.
	WorkingSet uint64 // bytes of the large region (seq + chase)
	HotBytes   uint64 // bytes of the cache-friendly (L2-resident) hot region
	StackBytes uint64 // bytes of the L1-resident region (default 8 KB)

	// ChaseNodeLines is how many adjacent cache lines one chased node
	// spans (2 gives super blocks something to prefetch).
	ChaseNodeLines int

	// Non-memory instruction mix (fractions of non-memory instructions).
	MultFrac, DivFrac, FPFrac float64

	// LineBytes for node/stream stepping (default 128).
	LineBytes int
}

// Generator builds a deterministic stream for the profile.
func (p Profile) Generator(seed int64) Generator {
	line := p.LineBytes
	if line == 0 {
		line = 128
	}
	ws := p.WorkingSet
	if ws == 0 {
		ws = 64 << 20
	}
	hot := p.HotBytes
	if hot == 0 {
		hot = 256 << 10
	}
	nodeLines := p.ChaseNodeLines
	if nodeLines == 0 {
		nodeLines = 1
	}
	stack := p.StackBytes
	if stack == 0 {
		stack = 8 << 10
	}
	return &generator{
		p:          p,
		rng:        rand.New(rand.NewSource(seed)),
		line:       uint64(line),
		wsLines:    ws / uint64(line),
		hotLines:   hot / uint64(line),
		stackLines: stack / uint64(line),
		nodeLines:  uint64(nodeLines),
		hotBase:    1 << 40, // keep regions disjoint
		stackBase:  1 << 41,
	}
}

type generator struct {
	p          Profile
	rng        *rand.Rand
	line       uint64
	wsLines    uint64
	hotLines   uint64
	stackLines uint64
	nodeLines  uint64
	hotBase    uint64
	stackBase  uint64

	seqPos  uint64
	pending []uint64 // queued follow-up addresses (rest of a chased node)
}

// Next implements Generator.
func (g *generator) Next() Instr {
	if g.rng.Float64() >= g.p.MemFrac {
		return Instr{Kind: g.nonMemKind()}
	}
	kind := Load
	if g.rng.Float64() < g.p.StoreFrac {
		kind = Store
	}
	return Instr{Kind: kind, Addr: g.nextAddr()}
}

func (g *generator) nonMemKind() Kind {
	r := g.rng.Float64()
	switch {
	case r < g.p.DivFrac:
		if g.rng.Float64() < g.p.FPFrac {
			return FPDiv
		}
		return Div
	case r < g.p.DivFrac+g.p.MultFrac:
		if g.rng.Float64() < g.p.FPFrac {
			return FPMult
		}
		return Mult
	default:
		if g.rng.Float64() < g.p.FPFrac {
			return FPArith
		}
		return Arith
	}
}

func (g *generator) nextAddr() uint64 {
	// Finish a multi-line node first: the follow-up accesses are what
	// gives pointer-chasing spatial locality.
	if n := len(g.pending); n > 0 {
		a := g.pending[n-1]
		g.pending = g.pending[:n-1]
		return a
	}
	r := g.rng.Float64()
	switch {
	case r < g.p.StackFrac:
		// L1-resident stack/locals traffic.
		if g.stackLines == 0 {
			return g.stackBase
		}
		return g.stackBase + (g.rng.Uint64()%g.stackLines)*g.line + (g.rng.Uint64()%g.line)&^7
	case r < g.p.StackFrac+g.p.SeqFrac:
		// Stream through the working set word by word.
		g.seqPos += 8
		if g.seqPos >= g.wsLines*g.line {
			g.seqPos = 0
		}
		return g.seqPos
	case r < g.p.StackFrac+g.p.SeqFrac+g.p.ChaseFrac:
		// Jump to a random node and touch each of its lines.
		nodeCount := g.wsLines / g.nodeLines
		if nodeCount == 0 {
			nodeCount = 1
		}
		base := (g.rng.Uint64() % nodeCount) * g.nodeLines * g.line
		for l := g.nodeLines - 1; l >= 1; l-- {
			g.pending = append(g.pending, base+l*g.line)
		}
		return base
	default:
		// Hot set: uniform within a cache-friendly region.
		if g.hotLines == 0 {
			return g.hotBase
		}
		return g.hotBase + (g.rng.Uint64()%g.hotLines)*g.line + (g.rng.Uint64()%g.line)&^7
	}
}

// SPEC06 returns the synthetic stand-ins for the SPEC2006-int subset shown
// in Figure 12, ordered as plotted. The MemFrac/pattern parameters are
// calibrated against the paper's qualitative behaviour (see package
// comment); they are not claimed to match real SPEC microarchitectural
// profiles.
func SPEC06() []Profile {
	return []Profile{
		{Name: "astar", MemFrac: 0.30, StoreFrac: 0.2, SeqFrac: 0.02, ChaseFrac: 0.012, StackFrac: 0.5,
			WorkingSet: 256 << 20, HotBytes: 512 << 10, ChaseNodeLines: 2, MultFrac: 0.05},
		{Name: "bzip2", MemFrac: 0.32, StoreFrac: 0.3, SeqFrac: 0.28, ChaseFrac: 0.008, StackFrac: 0.4,
			WorkingSet: 128 << 20, HotBytes: 640 << 10, ChaseNodeLines: 1, MultFrac: 0.04},
		{Name: "gcc", MemFrac: 0.33, StoreFrac: 0.3, SeqFrac: 0.05, ChaseFrac: 0.006, StackFrac: 0.55,
			WorkingSet: 128 << 20, HotBytes: 512 << 10, ChaseNodeLines: 2, MultFrac: 0.03},
		{Name: "gobmk", MemFrac: 0.28, StoreFrac: 0.25, SeqFrac: 0.01, ChaseFrac: 0.003, StackFrac: 0.6,
			WorkingSet: 64 << 20, HotBytes: 512 << 10, ChaseNodeLines: 1, MultFrac: 0.06},
		{Name: "h264ref", MemFrac: 0.35, StoreFrac: 0.25, SeqFrac: 0.04, ChaseFrac: 0.001, StackFrac: 0.65,
			WorkingSet: 64 << 20, HotBytes: 640 << 10, ChaseNodeLines: 1, MultFrac: 0.10},
		{Name: "hmmer", MemFrac: 0.40, StoreFrac: 0.3, SeqFrac: 0.004, ChaseFrac: 0.0, StackFrac: 0.7,
			WorkingSet: 32 << 20, HotBytes: 512 << 10, ChaseNodeLines: 1, MultFrac: 0.12},
		{Name: "libquantum", MemFrac: 0.28, StoreFrac: 0.25, SeqFrac: 0.55, ChaseFrac: 0.0, StackFrac: 0.25,
			WorkingSet: 512 << 20, HotBytes: 128 << 10, ChaseNodeLines: 1, MultFrac: 0.08},
		{Name: "mcf", MemFrac: 0.35, StoreFrac: 0.2, SeqFrac: 0.03, ChaseFrac: 0.035, StackFrac: 0.35,
			WorkingSet: 1 << 30, HotBytes: 256 << 10, ChaseNodeLines: 2, MultFrac: 0.03},
		{Name: "omnetpp", MemFrac: 0.33, StoreFrac: 0.3, SeqFrac: 0.02, ChaseFrac: 0.015, StackFrac: 0.45,
			WorkingSet: 256 << 20, HotBytes: 512 << 10, ChaseNodeLines: 2, MultFrac: 0.04},
		{Name: "perlbench", MemFrac: 0.35, StoreFrac: 0.35, SeqFrac: 0.02, ChaseFrac: 0.002, StackFrac: 0.6,
			WorkingSet: 64 << 20, HotBytes: 640 << 10, ChaseNodeLines: 1, MultFrac: 0.04},
		{Name: "sjeng", MemFrac: 0.27, StoreFrac: 0.25, SeqFrac: 0.01, ChaseFrac: 0.002, StackFrac: 0.6,
			WorkingSet: 64 << 20, HotBytes: 512 << 10, ChaseNodeLines: 1, MultFrac: 0.07},
	}
}

// ProfileByName finds a SPEC06 profile (nil if unknown).
func ProfileByName(name string) *Profile {
	for _, p := range SPEC06() {
		if p.Name == name {
			q := p
			return &q
		}
	}
	return nil
}
