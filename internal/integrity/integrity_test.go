package integrity

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/treemath"
)

const bucketBytes = 32

// randomCts returns garbage ciphertexts for a whole path, simulating
// uninitialized DRAM.
func randomCts(rng *rand.Rand, levels int) [][]byte {
	cts := make([][]byte, levels)
	for i := range cts {
		cts[i] = make([]byte, bucketBytes)
		rng.Read(cts[i])
	}
	return cts
}

// doAccess verifies then updates one path, as the ORAM interface does.
func doAccess(t *testing.T, at *Tree, leaf uint64, cts [][]byte) {
	t.Helper()
	reach := at.PathReachability(leaf)
	if err := at.VerifyPath(leaf, cts); err != nil {
		t.Fatalf("verify leaf %d: %v", leaf, err)
	}
	if err := at.UpdatePath(leaf, cts, reach); err != nil {
		t.Fatalf("update leaf %d: %v", leaf, err)
	}
}

// memModel models persistent external memory: an ORAM rewrites only the
// buckets of the accessed path, so verification must always be run against
// the current bucket contents.
type memModel struct {
	tr  treemath.Tree
	mem [][]byte
	rng *rand.Rand
}

func newMemModel(tr treemath.Tree, rng *rand.Rand) *memModel {
	m := &memModel{tr: tr, mem: make([][]byte, tr.NumBuckets()), rng: rng}
	for i := range m.mem {
		m.mem[i] = make([]byte, bucketBytes)
		rng.Read(m.mem[i]) // uninitialized DRAM
	}
	return m
}

func (m *memModel) path(leaf uint64) [][]byte {
	cts := make([][]byte, m.tr.Levels())
	for d := 0; d < m.tr.Levels(); d++ {
		cts[d] = m.mem[m.tr.PathBucket(leaf, d)]
	}
	return cts
}

// access verifies the current path contents, rewrites the path with fresh
// bytes (as randomized re-encryption would) and updates the auth tree.
func (m *memModel) access(t *testing.T, at *Tree, leaf uint64) {
	t.Helper()
	reach := at.PathReachability(leaf)
	if err := at.VerifyPath(leaf, m.path(leaf)); err != nil {
		t.Fatalf("verify leaf %d: %v", leaf, err)
	}
	for d := 0; d < m.tr.Levels(); d++ {
		m.rng.Read(m.mem[m.tr.PathBucket(leaf, d)])
	}
	if err := at.UpdatePath(leaf, m.path(leaf), reach); err != nil {
		t.Fatalf("update leaf %d: %v", leaf, err)
	}
}

func TestFreshTreeVerifiesGarbage(t *testing.T) {
	// No initialization pass: with all valid bits clear, any memory
	// contents must verify (they are masked out of the hashes).
	tr := treemath.New(4)
	at := New(tr, bucketBytes)
	rng := rand.New(rand.NewSource(1))
	for leaf := uint64(0); leaf < tr.NumLeaves(); leaf++ {
		if err := at.VerifyPath(leaf, randomCts(rng, tr.Levels())); err != nil {
			t.Fatalf("fresh verify leaf %d failed: %v", leaf, err)
		}
	}
}

func TestWriteThenVerify(t *testing.T) {
	tr := treemath.New(4)
	at := New(tr, bucketBytes)
	rng := rand.New(rand.NewSource(2))
	cts := randomCts(rng, tr.Levels())
	doAccess(t, at, 6, cts)
	// Same data must verify again.
	if err := at.VerifyPath(6, cts); err != nil {
		t.Fatalf("re-verify failed: %v", err)
	}
}

func TestCrossPathConsistency(t *testing.T) {
	// Update many random paths, then verify that every previously written
	// path still verifies with what was written there: sibling hashes and
	// valid bits must stay mutually consistent across paths.
	tr := treemath.New(5)
	at := New(tr, bucketBytes)
	rng := rand.New(rand.NewSource(3))
	latest := map[uint64][][]byte{}
	// Persistent bucket contents: a real ORAM rewrites only the accessed
	// path, so model external memory explicitly.
	mem := make([][]byte, tr.NumBuckets())
	for i := range mem {
		mem[i] = make([]byte, bucketBytes)
		rng.Read(mem[i]) // uninitialized DRAM
	}
	pathCts := func(leaf uint64) [][]byte {
		cts := make([][]byte, tr.Levels())
		for d := 0; d < tr.Levels(); d++ {
			cts[d] = mem[tr.PathBucket(leaf, d)]
		}
		return cts
	}
	for i := 0; i < 200; i++ {
		leaf := rng.Uint64() % tr.NumLeaves()
		cts := pathCts(leaf)
		reach := at.PathReachability(leaf)
		if err := at.VerifyPath(leaf, cts); err != nil {
			t.Fatalf("step %d: verify leaf %d: %v", i, leaf, err)
		}
		// Rewrite the path with fresh contents (as re-encryption would).
		for d := 0; d < tr.Levels(); d++ {
			rng.Read(mem[tr.PathBucket(leaf, d)])
		}
		cts = pathCts(leaf)
		if err := at.UpdatePath(leaf, cts, reach); err != nil {
			t.Fatal(err)
		}
		latest[leaf] = cts
	}
	for leaf := range latest {
		if err := at.VerifyPath(leaf, pathCts(leaf)); err != nil {
			t.Fatalf("final verify leaf %d: %v", leaf, err)
		}
	}
}

func TestDetectsContentTamper(t *testing.T) {
	tr := treemath.New(4)
	at := New(tr, bucketBytes)
	rng := rand.New(rand.NewSource(4))
	cts := randomCts(rng, tr.Levels())
	doAccess(t, at, 3, cts)
	for level := 0; level < tr.Levels(); level++ {
		tampered := make([][]byte, len(cts))
		for i := range cts {
			tampered[i] = append([]byte(nil), cts[i]...)
		}
		tampered[level][5] ^= 0x80
		if err := at.VerifyPath(3, tampered); !errors.Is(err, ErrVerify) {
			t.Errorf("tamper at level %d not detected: %v", level, err)
		}
	}
}

func TestDetectsHashTamper(t *testing.T) {
	tr := treemath.New(4)
	at := New(tr, bucketBytes)
	mem := newMemModel(tr, rand.New(rand.NewSource(5)))
	// Touch both halves of the tree so the root's two child-valid bits are
	// set and sibling hashes genuinely participate in verification.
	mem.access(t, at, 0)
	mem.access(t, at, 15)
	// Corrupt the stored hash of path 15's level-1 spine node — it is the
	// sibling hash path 0 reads.
	sib := tr.Sibling(tr.PathBucket(0, 1))
	at.CorruptHash(sib, Hash{0xde, 0xad})
	if err := at.VerifyPath(0, mem.path(0)); !errors.Is(err, ErrVerify) {
		t.Errorf("hash tamper not detected: %v", err)
	}
}

func TestDetectsValidBitTamper(t *testing.T) {
	tr := treemath.New(4)
	at := New(tr, bucketBytes)
	rng := rand.New(rand.NewSource(6))
	cts := randomCts(rng, tr.Levels())
	doAccess(t, at, 9, cts)
	// The valid bits live in untrusted memory; flipping one must break
	// verification because the bits are hash inputs.
	at.CorruptValid(tr.PathBucket(9, 1), 0)
	if err := at.VerifyPath(9, cts); !errors.Is(err, ErrVerify) {
		t.Errorf("valid-bit tamper not detected: %v", err)
	}
}

func TestDetectsBucketSwap(t *testing.T) {
	// Moving a validly hashed bucket elsewhere in the tree must fail:
	// position is bound by the tree structure.
	tr := treemath.New(3)
	at := New(tr, bucketBytes)
	mem := newMemModel(tr, rand.New(rand.NewSource(7)))
	mem.access(t, at, 0)
	mem.access(t, at, 7)
	// Present path 0 with path 7's (validly hashed) leaf bucket.
	swapped := mem.path(0)
	swapped[tr.LeafLevel()] = mem.mem[tr.PathBucket(7, tr.LeafLevel())]
	if err := at.VerifyPath(0, swapped); !errors.Is(err, ErrVerify) {
		t.Errorf("bucket swap not detected: %v", err)
	}
}

func TestReachabilityFrontier(t *testing.T) {
	tr := treemath.New(3)
	at := New(tr, bucketBytes)
	// Nothing reachable at first (root content itself is masked).
	reach := at.PathReachability(5)
	for d, r := range reach {
		if r {
			t.Errorf("fresh tree: level %d reachable", d)
		}
	}
	rng := rand.New(rand.NewSource(8))
	doAccess(t, at, 5, randomCts(rng, tr.Levels()))
	// Whole path 5 is now reachable.
	for d, r := range at.PathReachability(5) {
		if !r {
			t.Errorf("after access: level %d of path 5 not reachable", d)
		}
	}
	// Path 2 (leaf 010) shares only the root with path 5 (leaf 101).
	reach2 := at.PathReachability(2)
	if !reach2[0] {
		t.Error("root should be reachable after first access")
	}
	for d := 1; d < len(reach2); d++ {
		if reach2[d] {
			t.Errorf("level %d of untouched path 2 reachable", d)
		}
	}
	if !at.Reachable(tr.PathBucket(5, 3)) {
		t.Error("leaf bucket of path 5 should be reachable")
	}
	if at.Reachable(tr.PathBucket(2, 2)) {
		t.Error("level-2 bucket of path 2 should not be reachable")
	}
}

func TestHashTrafficBounds(t *testing.T) {
	// Section 5: at most L sibling hashes read per verification and L
	// hashes written per update.
	tr := treemath.New(6)
	at := New(tr, bucketBytes)
	rng := rand.New(rand.NewSource(9))
	mem := newMemModel(tr, rng)
	const accesses = 50
	for i := 0; i < accesses; i++ {
		mem.access(t, at, rng.Uint64()%tr.NumLeaves())
	}
	reads, writes, verifs := at.Stats()
	l := uint64(tr.LeafLevel())
	if verifs != accesses {
		t.Errorf("verifications=%d want %d", verifs, accesses)
	}
	// VerifyPath and UpdatePath each read at most L sibling hashes.
	if reads > 2*l*accesses {
		t.Errorf("hash reads %d exceed 2L per access", reads)
	}
	if writes > l*accesses+accesses {
		t.Errorf("hash writes %d exceed ~L per access", writes)
	}
}

func TestDegenerateSingleBucketTree(t *testing.T) {
	tr := treemath.New(0)
	at := New(tr, bucketBytes)
	rng := rand.New(rand.NewSource(10))
	garbage := randomCts(rng, 1)
	if err := at.VerifyPath(0, garbage); err != nil {
		t.Fatalf("fresh single-bucket verify failed: %v", err)
	}
	doAccess(t, at, 0, garbage)
	if err := at.VerifyPath(0, garbage); err != nil {
		t.Fatalf("re-verify failed: %v", err)
	}
	tampered := [][]byte{append([]byte(nil), garbage[0]...)}
	tampered[0][0] ^= 1
	if err := at.VerifyPath(0, tampered); !errors.Is(err, ErrVerify) {
		t.Errorf("single-bucket tamper not detected: %v", err)
	}
}

func TestVerifyPathArgumentChecks(t *testing.T) {
	at := New(treemath.New(2), bucketBytes)
	if err := at.VerifyPath(0, make([][]byte, 2)); err == nil {
		t.Error("short path accepted")
	}
	if err := at.UpdatePath(0, make([][]byte, 2), make([]bool, 3)); err == nil {
		t.Error("short update accepted")
	}
	if err := at.UpdatePath(0, make([][]byte, 3), make([]bool, 1)); err == nil {
		t.Error("short reach accepted")
	}
}
