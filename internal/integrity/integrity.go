// Package integrity implements the paper's Path ORAM integrity-verification
// layer (Section 5, Figure 13): an authentication tree that mirrors the
// ORAM tree, with two child-valid bits per bucket so the tree never has to
// be initialized — uninitialized ("random DRAM") buckets are masked out of
// every hash until they are first written.
//
// Per ORAM access the layer reads at most L sibling hashes and the path's
// valid bits, recomputes the path hashes bottom-up, compares against the
// on-chip root hash, and after write-back stores L updated hashes — far
// cheaper than the strawman Merkle tree over data blocks, which needs
// Z(L+1)^2 hashes per access.
package integrity

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/treemath"
)

// HashSize is the truncated hash width in bytes (the paper uses 128-bit
// hashes; we truncate SHA-256).
const HashSize = 16

// Hash is one authentication-tree node value.
type Hash [HashSize]byte

// ErrVerify reports an authenticity or freshness violation: the external
// memory does not match what the processor wrote.
var ErrVerify = errors.New("integrity: path verification failed (tampered or stale external memory)")

// Tree is the authentication tree. hashes and valid live in external
// memory conceptually (alongside each ORAM bucket); only the root hash and
// the root's child-valid flags are trusted on-chip state.
type Tree struct {
	tree        treemath.Tree
	bucketBytes int // ciphertext bytes hashed per bucket

	hashes []Hash  // external: one per bucket
	valid  []uint8 // external: bit0 = left child valid, bit1 = right child valid

	rootHash   Hash // on-chip
	rootValid  uint8
	havePrefix bool

	// Stats
	hashReads, hashWrites, verifications uint64
}

// New builds an authentication tree for an ORAM tree whose (encrypted)
// buckets are bucketBytes long. No initialization pass over external
// memory is needed — that is the point of the valid bits.
func New(tr treemath.Tree, bucketBytes int) *Tree {
	t := &Tree{
		tree:        tr,
		bucketBytes: bucketBytes,
		hashes:      make([]Hash, tr.NumBuckets()),
		valid:       make([]uint8, tr.NumBuckets()),
	}
	// h0 starts as the hash of an all-invalid, all-masked root (the
	// paper's "h0 = H(0)"): both flags zero, content and children masked.
	t.rootHash = t.hashNode(0, make([]byte, bucketBytes), Hash{}, Hash{})
	return t
}

// Reachable reports whether every valid bit on the path from the root to
// the bucket (exclusive of the bucket's own child bits) is set — i.e. the
// bucket has been written through ORAM operations at some point
// (Section 5's reachable()).
func (t *Tree) Reachable(flat uint64) bool {
	// Walk from the bucket up to the root checking the parent's bit.
	for flat != 0 {
		parent := (flat - 1) / 2
		bit := uint8(1) << uint((flat-1)%2) // left child has odd flat index
		var flags uint8
		if parent == 0 {
			flags = t.rootValid
		} else {
			flags = t.valid[parent]
		}
		if flags&bit == 0 {
			return false
		}
		flat = parent
	}
	return true
}

// PathReachability returns, for each level of the path to leaf, whether the
// bucket was reachable at the start of the access. The root is always
// reachable.
func (t *Tree) PathReachability(leaf uint64) []bool {
	out := make([]bool, t.tree.Levels())
	// The root's content is masked by (f00 ∨ f01) ∧ B0 in the hash, so its
	// content is only meaningful after the first write-back.
	out[0] = t.rootValid != 0
	flags := t.rootValid
	for d := 1; d <= t.tree.LeafLevel(); d++ {
		flat := t.tree.PathBucket(leaf, d)
		bit := uint8(1) << uint((flat-1)%2)
		out[d] = out[d-1] && flags&bit != 0
		if flat == 0 {
			flags = t.rootValid
		} else {
			flags = t.valid[flat]
		}
	}
	return out
}

// VerifyPath checks the authenticity and freshness of the ciphertext
// buckets just read along the path to leaf (cts[d] is the level-d bucket).
// It must be called before UpdatePath for the same access.
func (t *Tree) VerifyPath(leaf uint64, cts [][]byte) error {
	if len(cts) != t.tree.Levels() {
		return fmt.Errorf("integrity: got %d buckets, want %d", len(cts), t.tree.Levels())
	}
	t.verifications++
	l := t.tree.LeafLevel()
	if l == 0 {
		// Degenerate single-bucket tree: the root doubles as the leaf and
		// keeps the interior masking so pristine memory verifies.
		if t.hashNode(t.rootValid, cts[0], Hash{}, Hash{}) != t.rootHash {
			return ErrVerify
		}
		return nil
	}
	// Compute hashes bottom-up. Only reachable buckets contribute real
	// content; below the reachable frontier everything is masked, exactly
	// reproducing the on-chip root for untouched memory.
	h := t.leafHash(cts[l])
	for d := l - 1; d >= 0; d-- {
		flat := t.tree.PathBucket(leaf, d)
		child := t.tree.PathBucket(leaf, d+1)
		sib := t.tree.Sibling(child)
		var flags uint8
		if flat == 0 {
			flags = t.rootValid
		} else {
			flags = t.valid[flat]
		}
		var hl, hr Hash
		if child < sib { // path child is the left child
			hl = h
			hr = t.siblingHash(sib)
		} else {
			hl = t.siblingHash(sib)
			hr = h
		}
		// Mask invalid children (f ∧ h in the paper).
		if flags&1 == 0 {
			hl = Hash{}
		}
		if flags&2 == 0 {
			hr = Hash{}
		}
		h = t.hashNode(flags, cts[d], hl, hr)
	}
	if h != t.rootHash {
		return ErrVerify
	}
	return nil
}

// UpdatePath recomputes and stores the authentication state after the
// write-back of the path to leaf. reach must be the PathReachability
// observed at the start of the access (before valid bits were updated);
// newCts are the freshly written ciphertexts.
func (t *Tree) UpdatePath(leaf uint64, newCts [][]byte, reach []bool) error {
	if len(newCts) != t.tree.Levels() || len(reach) != t.tree.Levels() {
		return fmt.Errorf("integrity: got %d buckets / %d reach flags, want %d",
			len(newCts), len(reach), t.tree.Levels())
	}
	l := t.tree.LeafLevel()
	if l == 0 {
		t.rootValid = 3 // mark the root's content as written
		t.rootHash = t.hashNode(t.rootValid, newCts[0], Hash{}, Hash{})
		return nil
	}
	// Step 5 of the paper: along the path, the child-valid bit pointing at
	// the next path bucket becomes 1; the other child keeps its old bit
	// only if this bucket was reachable (otherwise its bits are garbage).
	for d := 0; d < l; d++ {
		flat := t.tree.PathBucket(leaf, d)
		child := t.tree.PathBucket(leaf, d+1)
		pathBit := uint8(1) << uint((child-1)%2)
		var old uint8
		if flat == 0 {
			old = t.rootValid
		} else {
			old = t.valid[flat]
		}
		newFlags := pathBit
		if reach[d] {
			newFlags |= old &^ pathBit
		}
		if flat == 0 {
			t.rootValid = newFlags
		} else {
			t.valid[flat] = newFlags
		}
	}
	// Leaf bucket has no children; force its bits clean once written.
	if l > 0 {
		t.valid[t.tree.PathBucket(leaf, l)] = 0
	}
	// Recompute hashes bottom-up and store them (the paper writes back the
	// L non-root hashes; the root hash stays on-chip).
	h := t.leafHash(newCts[l])
	if l > 0 {
		t.storeHash(t.tree.PathBucket(leaf, l), h)
	}
	for d := l - 1; d >= 0; d-- {
		flat := t.tree.PathBucket(leaf, d)
		child := t.tree.PathBucket(leaf, d+1)
		sib := t.tree.Sibling(child)
		var flags uint8
		if flat == 0 {
			flags = t.rootValid
		} else {
			flags = t.valid[flat]
		}
		var hl, hr Hash
		if child < sib {
			hl, hr = h, t.siblingHash(sib)
		} else {
			hl, hr = t.siblingHash(sib), h
		}
		if flags&1 == 0 {
			hl = Hash{}
		}
		if flags&2 == 0 {
			hr = Hash{}
		}
		h = t.hashNode(flags, newCts[d], hl, hr)
		if flat != 0 {
			t.storeHash(flat, h)
		}
	}
	t.rootHash = h
	return nil
}

// siblingHash reads a sibling hash from external memory (counted toward
// the per-access hash-read budget the paper reports).
func (t *Tree) siblingHash(flat uint64) Hash {
	t.hashReads++
	return t.hashes[flat]
}

func (t *Tree) storeHash(flat uint64, h Hash) {
	t.hashWrites++
	t.hashes[flat] = h
}

// leafHash is H(B) for leaf buckets (Figure 13).
func (t *Tree) leafHash(ct []byte) Hash {
	sum := sha256.Sum256(ct)
	var h Hash
	copy(h[:], sum[:HashSize])
	return h
}

// hashNode is H(f0 || f1 || ((f0 ∨ f1) ∧ B) || hl || hr) for interior
// nodes. Children hashes arrive pre-masked by the caller.
func (t *Tree) hashNode(flags uint8, ct []byte, hl, hr Hash) Hash {
	hsh := sha256.New()
	var fb [2]byte
	fb[0] = flags & 1
	fb[1] = (flags >> 1) & 1
	hsh.Write(fb[:])
	if flags&3 != 0 {
		hsh.Write(ct)
	} else {
		// (f0 ∨ f1) ∧ B: an unreachable interior node contributes zeros,
		// making the pristine root hash independent of memory contents.
		zero := make([]byte, len(ct))
		hsh.Write(zero)
	}
	hsh.Write(hl[:])
	hsh.Write(hr[:])
	var lenb [8]byte
	binary.LittleEndian.PutUint64(lenb[:], uint64(len(ct)))
	hsh.Write(lenb[:])
	var h Hash
	copy(h[:], hsh.Sum(nil)[:HashSize])
	return h
}

// Stats reports cumulative external hash traffic and verification count.
// Per access the paper's bound is at most L sibling-hash reads and L hash
// writes.
func (t *Tree) Stats() (hashReads, hashWrites, verifications uint64) {
	return t.hashReads, t.hashWrites, t.verifications
}

// CorruptHash overwrites a stored hash (test hook simulating external
// memory tampering).
func (t *Tree) CorruptHash(flat uint64, h Hash) { t.hashes[flat] = h }

// CorruptValid overwrites a bucket's stored child-valid bits (test hook:
// the bits live in untrusted memory and must be covered by the hashes).
func (t *Tree) CorruptValid(flat uint64, flags uint8) {
	if flat == 0 {
		return // the root's flags are on-chip and not corruptible
	}
	t.valid[flat] = flags & 3
}

// HashAt returns the stored hash for a bucket (test hook).
func (t *Tree) HashAt(flat uint64) Hash { return t.hashes[flat] }
