// Package hide implements a HIDE-style address obfuscator (Zhuang, Zhang,
// Pande, ASPLOS 2004) as the comparison point of the paper's Section 6.2:
// addresses are randomly permuted *within* fixed-size chunks and each chunk
// is re-shuffled after it is touched, which hides intra-chunk patterns
// cheaply — but the chunk index itself remains visible on the address bus.
// The paper's argument is that in the secure-processor threat model
// (adversary-supplied programs) this inter-chunk leakage gives everything
// away, and only a full ORAM closes the channel. LeakageExperiment makes
// that concrete and testable.
package hide

import (
	"fmt"
	"math/rand"
)

// Obfuscator permutes block addresses within chunks, modeling HIDE's
// random shuffling (8-64 KB chunks in the original work).
type Obfuscator struct {
	blocks      uint64
	chunkBlocks uint64
	perms       [][]uint32 // per chunk: logical offset -> physical offset
	rng         *rand.Rand

	// Accesses counts traffic; Shuffles counts chunk re-permutations.
	Accesses, Shuffles uint64
}

// New builds an obfuscator over the given number of blocks with
// chunkBlocks blocks per chunk.
func New(blocks uint64, chunkBlocks int, rng *rand.Rand) (*Obfuscator, error) {
	if blocks == 0 || chunkBlocks <= 0 {
		return nil, fmt.Errorf("hide: need positive blocks and chunk size")
	}
	if chunkBlocks > 1<<31 {
		return nil, fmt.Errorf("hide: chunk too large")
	}
	o := &Obfuscator{
		blocks:      blocks,
		chunkBlocks: uint64(chunkBlocks),
		rng:         rng,
	}
	nChunks := (blocks + o.chunkBlocks - 1) / o.chunkBlocks
	o.perms = make([][]uint32, nChunks)
	for i := range o.perms {
		o.perms[i] = identity(chunkBlocks)
		o.shuffle(uint64(i))
	}
	return o, nil
}

func identity(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	return p
}

func (o *Obfuscator) shuffle(chunk uint64) {
	p := o.perms[chunk]
	o.rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	o.Shuffles++
}

// Access translates a logical block address to the physical address an
// adversary observes on the bus, then re-shuffles the chunk (HIDE shuffles
// between accesses so repeated intra-chunk patterns do not repeat
// physically).
func (o *Obfuscator) Access(addr uint64) (observed uint64, err error) {
	if addr >= o.blocks {
		return 0, fmt.Errorf("hide: address %d out of range", addr)
	}
	chunk := addr / o.chunkBlocks
	off := addr % o.chunkBlocks
	observed = chunk*o.chunkBlocks + uint64(o.perms[chunk][off])
	o.shuffle(chunk)
	o.Accesses++
	return observed, nil
}

// Chunk returns the chunk index an observed address belongs to — exactly
// the information HIDE does not hide.
func (o *Obfuscator) Chunk(observed uint64) uint64 { return observed / o.chunkBlocks }

// NumChunks returns the number of chunks.
func (o *Obfuscator) NumChunks() uint64 { return uint64(len(o.perms)) }

// LeakageExperiment mounts the Section 6.2 attack: a curious program
// encodes one secret bit in its *inter-chunk* access pattern (bit 0 touches
// chunk pairs (0,1), bit 1 touches (0,2)). The adversary watches only
// physical addresses. Under HIDE the chunk sequence re-encodes the bit
// perfectly; under an ORAM the observed distribution is independent of it.
type LeakageExperiment struct {
	// Guesses counts how often the adversary recovered the secret bit.
	Trials, Correct int
}

// RunHIDELeakage runs trials of the attack against the obfuscator and
// returns the adversary's accuracy (1.0 = total leakage).
func RunHIDELeakage(chunkBlocks int, trials int, rng *rand.Rand) (*LeakageExperiment, error) {
	const accessesPerTrial = 32
	res := &LeakageExperiment{}
	obf, err := New(4*uint64(chunkBlocks), chunkBlocks, rng)
	if err != nil {
		return nil, err
	}
	for t := 0; t < trials; t++ {
		secret := rng.Intn(2)
		counts := map[uint64]int{}
		for i := 0; i < accessesPerTrial; i++ {
			// The program: alternate chunk 0 with chunk 1+secret.
			var logical uint64
			if i%2 == 0 {
				logical = uint64(rng.Intn(chunkBlocks))
			} else {
				logical = uint64(1+secret)*uint64(chunkBlocks) + uint64(rng.Intn(chunkBlocks))
			}
			obs, err := obf.Access(logical)
			if err != nil {
				return nil, err
			}
			counts[obf.Chunk(obs)]++
		}
		// Adversary: which of chunks 1 and 2 was touched?
		guess := 0
		if counts[2] > counts[1] {
			guess = 1
		}
		res.Trials++
		if guess == secret {
			res.Correct++
		}
	}
	return res, nil
}

// Accuracy returns Correct/Trials.
func (l *LeakageExperiment) Accuracy() float64 {
	if l.Trials == 0 {
		return 0
	}
	return float64(l.Correct) / float64(l.Trials)
}
