package hide

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/treemath"
)

func TestObfuscatorBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o, err := New(256, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	if o.NumChunks() != 4 {
		t.Fatalf("NumChunks=%d want 4", o.NumChunks())
	}
	// Physical address always stays inside the logical chunk.
	for i := 0; i < 1000; i++ {
		addr := rng.Uint64() % 256
		obs, err := o.Access(addr)
		if err != nil {
			t.Fatal(err)
		}
		if o.Chunk(obs) != addr/64 {
			t.Fatalf("address %d escaped its chunk: observed %d", addr, obs)
		}
	}
	if _, err := o.Access(256); err == nil {
		t.Error("out-of-range access accepted")
	}
}

func TestObfuscatorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := New(0, 8, rng); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := New(8, 0, rng); err == nil {
		t.Error("zero chunk accepted")
	}
}

func TestIntraChunkShuffling(t *testing.T) {
	// HIDE does hide *intra-chunk* patterns: repeatedly accessing the same
	// logical block must not produce a constant physical address.
	rng := rand.New(rand.NewSource(3))
	o, err := New(64, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		obs, err := o.Access(7)
		if err != nil {
			t.Fatal(err)
		}
		seen[obs] = true
	}
	if len(seen) < 16 {
		t.Errorf("hammering one block produced only %d distinct physical addresses", len(seen))
	}
}

func TestHIDELeaksInterChunkPattern(t *testing.T) {
	// The Section 6.2 point: the adversary recovers the secret bit with
	// essentially perfect accuracy despite the shuffling.
	res, err := RunHIDELeakage(64, 200, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() < 0.99 {
		t.Errorf("HIDE leakage accuracy %.2f, expected ~1.0", res.Accuracy())
	}
}

func TestPathORAMDoesNotLeakTheSamePattern(t *testing.T) {
	// The same two programs run over a Path ORAM: the adversary sees
	// uniformly random paths either way. Mount the identical
	// distinguisher on the observed leaf of every access; accuracy must
	// collapse to a coin flip.
	const blocks = 256
	tr := treemath.New(7)
	mk := func(seed int64) (*core.ORAM, *[]uint64) {
		var observed []uint64
		p := core.Params{
			LeafLevel: 7, Z: 4, BlockBytes: 0, Blocks: blocks,
			StashCapacity: 120, BackgroundEviction: true,
			OnPathAccess: func(leaf uint64, _ core.AccessKind) {
				observed = append(observed, leaf)
			},
		}
		store, err := core.NewMemStore(p.LeafLevel, p.Z, 0)
		if err != nil {
			t.Fatal(err)
		}
		src := core.NewMathLeafSource(rand.New(rand.NewSource(seed)))
		pos, err := core.NewOnChipPositionMap(p.Groups(), tr.NumLeaves(), src)
		if err != nil {
			t.Fatal(err)
		}
		o, err := core.New(p, store, pos, src)
		if err != nil {
			t.Fatal(err)
		}
		// The hook closure must observe the slice we return.
		return o, &observed
	}
	rng := rand.New(rand.NewSource(5))
	correct, trials := 0, 200
	for tIdx := 0; tIdx < trials; tIdx++ {
		secret := rng.Intn(2)
		o, observed := mk(int64(100 + tIdx))
		for i := 0; i < 32; i++ {
			var logical uint64
			if i%2 == 0 {
				logical = rng.Uint64() % 64
			} else {
				logical = uint64(1+secret)*64 + rng.Uint64()%64
			}
			if _, err := o.Access(logical, core.OpWrite, nil); err != nil {
				t.Fatal(err)
			}
		}
		// Same distinguisher as the HIDE attack, now over leaves: compare
		// accesses landing in the "chunk 1" vs "chunk 2" leaf ranges.
		c1, c2 := 0, 0
		for _, leaf := range *observed {
			switch leaf / 32 { // 128 leaves -> 4 "chunks" of 32
			case 1:
				c1++
			case 2:
				c2++
			}
		}
		guess := 0
		if c2 > c1 {
			guess = 1
		}
		if guess == secret {
			correct++
		}
	}
	acc := float64(correct) / float64(trials)
	if acc > 0.62 || acc < 0.38 {
		t.Errorf("ORAM distinguisher accuracy %.2f, want ~0.5 (coin flip)", acc)
	}
}
