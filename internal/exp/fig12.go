package exp

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig12Config parameterizes the secure-processor benchmark study: SPEC-like
// workloads on the Table 1 core, with main memory being either DRAM
// (insecure baseline) or one of the Path ORAM configurations.
type Fig12Config struct {
	Benchmarks   []string
	Settings     []Setting
	Instructions uint64
	Warmup       uint64
	Channels     int
	// WorkingSet sizes the ORAM latency computation (paper scale).
	WorkingSet uint64
	// SimWorkingSet / SimAccesses size the dummy-rate measurement.
	SimWorkingSet uint64
	SimAccesses   int
	Stash         int
	Table2        Table2Config
	Seed          int64
}

// DefaultFig12 returns the paper's Figure 12 setup with scaled instruction
// counts.
func DefaultFig12() Fig12Config {
	var names []string
	for _, p := range trace.SPEC06() {
		names = append(names, p.Name)
	}
	t2 := DefaultTable2()
	t2.Settings = []Setting{BaseORAM, DZ3Pb32, DZ3Pb32SB, DZ4Pb32, DZ4Pb32SB}
	return Fig12Config{
		Benchmarks:    names,
		Settings:      []Setting{BaseORAM, DZ3Pb32, DZ3Pb32SB, DZ4Pb32SB},
		Instructions:  400_000,
		Warmup:        400_000,
		Channels:      4,
		WorkingSet:    1 << 25,
		SimWorkingSet: 1 << 14,
		SimAccesses:   1 << 16,
		Stash:         200,
		Table2:        t2,
		Seed:          23,
	}
}

// ORAMModel is the reduced ORAM description the CPU model consumes.
type ORAMModel struct {
	Setting   Setting
	Return    uint64
	Finish    uint64
	DummyRate float64
}

// BuildORAMModels derives {return, finish, dummy-rate} for each setting
// (the Table 2 -> Section 4.3 pipeline).
func BuildORAMModels(cfg Fig12Config) ([]ORAMModel, error) {
	t2cfg := cfg.Table2
	t2cfg.Settings = nil
	// Deduplicate latency measurements: the +SB variants share latencies
	// with their base configs (same tree shapes; the extra dummies are
	// captured by the dummy rate).
	latencyName := func(s Setting) Setting {
		b := s
		b.SuperBlock = 1
		b.Name = fmt.Sprintf("DZ%dPb%d", s.DataZ, s.PosBlockBytes)
		if s.Name == "baseORAM" {
			b = BaseORAM
		}
		return b
	}
	seen := map[string]bool{}
	for _, s := range cfg.Settings {
		b := latencyName(s)
		if !seen[b.Name] {
			seen[b.Name] = true
			t2cfg.Settings = append(t2cfg.Settings, b)
		}
	}
	t2, err := RunTable2(t2cfg)
	if err != nil {
		return nil, err
	}
	var models []ORAMModel
	for i, s := range cfg.Settings {
		base := latencyName(s)
		row := t2.Find(base.Name)
		if row == nil {
			return nil, fmt.Errorf("exp: no Table 2 row for %s", base.Name)
		}
		rate, err := s.MeasureDummyRate(cfg.SimWorkingSet, cfg.Stash, cfg.SimAccesses, cfg.Seed+int64(i)*101)
		if err != nil {
			return nil, err
		}
		models = append(models, ORAMModel{
			Setting:   s,
			Return:    row.ReturnCycles,
			Finish:    row.FinishCycles,
			DummyRate: rate,
		})
	}
	return models, nil
}

// Fig12Row is one benchmark's slowdowns.
type Fig12Row struct {
	Benchmark    string
	BaselineCPI  float64
	BaselineMPKI float64
	Slowdowns    []float64 // per setting, normalized to the DRAM baseline
}

// Fig12Result holds the study.
type Fig12Result struct {
	Config  Fig12Config
	Models  []ORAMModel
	Rows    []Fig12Row
	Average []float64 // per setting (arithmetic mean, as the paper reports)
	GeoMean []float64
}

// RunFig12 executes every benchmark against the DRAM baseline and each
// ORAM configuration.
func RunFig12(cfg Fig12Config) (*Fig12Result, error) {
	models, err := BuildORAMModels(cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{Config: cfg, Models: models}
	coreCfg := cpu.Default()
	sums := make([]float64, len(models))
	geos := make([][]float64, len(models))
	for _, name := range cfg.Benchmarks {
		prof := trace.ProfileByName(name)
		if prof == nil {
			return nil, fmt.Errorf("exp: unknown benchmark %q", name)
		}
		sys, err := dram.New(dram.MicronGeometry(cfg.Channels), dram.DDR3Micron())
		if err != nil {
			return nil, err
		}
		baseRes, err := cpu.RunWithWarmup(coreCfg, prof.Generator(cfg.Seed),
			cpu.NewDRAMMemory(sys, coreCfg.LineBytes), cfg.Warmup, cfg.Instructions)
		if err != nil {
			return nil, err
		}
		row := Fig12Row{Benchmark: name, BaselineCPI: baseRes.CPI(), BaselineMPKI: baseRes.MPKI()}
		for i, m := range models {
			mem := &cpu.ORAMMemory{
				ReturnLat:  m.Return,
				FinishLat:  m.Finish,
				DummyRate:  m.DummyRate,
				SuperBlock: m.Setting.SuperBlock > 1,
			}
			r, err := cpu.RunWithWarmup(coreCfg, prof.Generator(cfg.Seed), mem, cfg.Warmup, cfg.Instructions)
			if err != nil {
				return nil, err
			}
			slow := float64(r.Cycles) / float64(baseRes.Cycles)
			row.Slowdowns = append(row.Slowdowns, slow)
			sums[i] += slow
			geos[i] = append(geos[i], slow)
		}
		res.Rows = append(res.Rows, row)
	}
	for i := range models {
		res.Average = append(res.Average, sums[i]/float64(len(res.Rows)))
		res.GeoMean = append(res.GeoMean, stats.GeoMean(geos[i]))
	}
	return res, nil
}

// Table renders Figure 12: slowdown versus the insecure DRAM baseline.
func (r *Fig12Result) Table() *Table {
	t := &Table{
		Title:  "Figure 12: benchmark slowdown vs insecure processor with DRAM",
		Header: []string{"benchmark", "base CPI", "MPKI"},
		Note:   "synthetic SPEC06-int stand-ins (see internal/trace); slowdown = cycles / DRAM cycles",
	}
	for _, m := range r.Models {
		t.Header = append(t.Header, m.Setting.Name)
	}
	for _, row := range r.Rows {
		cells := []string{row.Benchmark, f2(row.BaselineCPI), f2(row.BaselineMPKI)}
		for _, s := range row.Slowdowns {
			cells = append(cells, f2(s))
		}
		t.AddRow(cells...)
	}
	avg := []string{"average", "", ""}
	for _, a := range r.Average {
		avg = append(avg, f2(a))
	}
	t.AddRow(avg...)
	return t
}

// ImprovementVsBase returns 1 - avg(setting)/avg(baseORAM): the paper's
// headline 43.9% (DZ3Pb32) and 52.4% (DZ4Pb32+SB) numbers.
func (r *Fig12Result) ImprovementVsBase(name string) (float64, error) {
	bi, ni := -1, -1
	for i, m := range r.Models {
		if m.Setting.Name == "baseORAM" {
			bi = i
		}
		if m.Setting.Name == name {
			ni = i
		}
	}
	if bi < 0 || ni < 0 {
		return 0, fmt.Errorf("exp: missing models for improvement (%q vs baseORAM)", name)
	}
	return 1 - r.Average[ni]/r.Average[bi], nil
}
