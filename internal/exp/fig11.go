package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/dram"
	"repro/internal/placement"
	"repro/internal/treemath"
)

// hierSim lays a sized hierarchy out in DRAM and replays whole hierarchical
// ORAM accesses as request streams, reproducing the Figure 11 methodology.
type hierSim struct {
	levels  []analysis.ORAMConfig
	trees   []treemath.Tree
	mappers []placement.Mapper
	sys     *dram.System
	rng     *rand.Rand
	reqBuf  []uint64
}

// newHierSim builds the DRAM image of a hierarchy under one placement
// strategy ("naive" or "subtree").
func newHierSim(h analysis.Hierarchy, channels int, strategy string, seed int64) (*hierSim, error) {
	sys, err := dram.New(dram.MicronGeometry(channels), dram.DDR3Micron())
	if err != nil {
		return nil, err
	}
	g := sys.Geometry()
	nodeBytes := g.RowBytes * g.Channels
	s := &hierSim{sys: sys, rng: rand.New(rand.NewSource(seed))}
	var base uint64
	for _, lv := range h.Levels {
		tree := treemath.New(lv.LeafLevel)
		var m placement.Mapper
		switch strategy {
		case "naive":
			m = placement.NewNaive(tree, lv.BucketBytes(), base)
		case "subtree":
			sm, err := placement.NewSubtree(tree, lv.BucketBytes(), nodeBytes, base)
			if err != nil {
				return nil, err
			}
			m = sm
		default:
			return nil, fmt.Errorf("exp: unknown placement strategy %q", strategy)
		}
		s.levels = append(s.levels, lv)
		s.trees = append(s.trees, tree)
		s.mappers = append(s.mappers, m)
		// Next region, aligned to the aggregate row span.
		base += (m.Size() + uint64(nodeBytes) - 1) / uint64(nodeBytes) * uint64(nodeBytes)
	}
	return s, nil
}

// access simulates one full hierarchical access starting at cycle `at`
// using the pipelined ordering of Figure 5(b): read every ORAM's path
// (smallest ORAM first, data ORAM last), then write every path back.
// It returns when the data ORAM's path read completed (return data) and
// when the last write completed (finish access).
func (s *hierSim) access(at uint64) (dataReadDone, finish uint64) {
	g := uint64(s.sys.Geometry().AccessBytes)
	leaves := make([]uint64, len(s.levels))
	var readsDone uint64
	for h := len(s.levels) - 1; h >= 0; h-- {
		leaves[h] = s.rng.Uint64() % s.trees[h].NumLeaves()
		var done uint64
		for _, bucketBase := range s.pathAddrs(h, leaves[h]) {
			for off := uint64(0); off < uint64(s.levels[h].BucketBytes()); off += g {
				if d := s.sys.Access(at, bucketBase+off, false); d > done {
					done = d
				}
			}
		}
		if h == 0 {
			dataReadDone = done
		}
		if done > readsDone {
			readsDone = done
		}
	}
	finish = readsDone
	for h := len(s.levels) - 1; h >= 0; h-- {
		for _, bucketBase := range s.pathAddrs(h, leaves[h]) {
			for off := uint64(0); off < uint64(s.levels[h].BucketBytes()); off += g {
				if d := s.sys.Access(readsDone, bucketBase+off, true); d > finish {
					finish = d
				}
			}
		}
	}
	return dataReadDone, finish
}

// accessSequential replays the naive ordering of Figure 5(a): each ORAM is
// fully read and written before the next ORAM starts.
func (s *hierSim) accessSequential(at uint64) (dataReadDone, finish uint64) {
	g := uint64(s.sys.Geometry().AccessBytes)
	t := at
	for h := len(s.levels) - 1; h >= 0; h-- {
		leaf := s.rng.Uint64() % s.trees[h].NumLeaves()
		var readDone uint64
		for _, bucketBase := range s.pathAddrs(h, leaf) {
			for off := uint64(0); off < uint64(s.levels[h].BucketBytes()); off += g {
				if d := s.sys.Access(t, bucketBase+off, false); d > readDone {
					readDone = d
				}
			}
		}
		if h == 0 {
			dataReadDone = readDone
		}
		var writeDone uint64
		for _, bucketBase := range s.pathAddrs(h, leaf) {
			for off := uint64(0); off < uint64(s.levels[h].BucketBytes()); off += g {
				if d := s.sys.Access(readDone, bucketBase+off, true); d > writeDone {
					writeDone = d
				}
			}
		}
		t = writeDone
	}
	return dataReadDone, t
}

func (s *hierSim) pathAddrs(level int, leaf uint64) []uint64 {
	s.reqBuf = s.reqBuf[:0]
	for d := 0; d <= s.trees[level].LeafLevel(); d++ {
		s.reqBuf = append(s.reqBuf, s.mappers[level].BucketAddr(s.trees[level].PathBucket(leaf, d)))
	}
	return s.reqBuf
}

// measure runs n back-to-back accesses and returns mean return-data and
// finish latencies in DRAM cycles.
func (s *hierSim) measure(n int, sequential bool) (meanReturn, meanFinish float64) {
	var at uint64
	var sumR, sumF float64
	for i := 0; i < n; i++ {
		var r, f uint64
		if sequential {
			r, f = s.accessSequential(at)
		} else {
			r, f = s.access(at)
		}
		sumR += float64(r - at)
		sumF += float64(f - at)
		at = f
	}
	return sumR / float64(n), sumF / float64(n)
}

// TheoreticalLatency returns the paper's "theoretical" series: total bytes
// moved per access divided by peak bandwidth.
func TheoreticalLatency(h analysis.Hierarchy, channels int) float64 {
	sys, err := dram.New(dram.MicronGeometry(channels), dram.DDR3Micron())
	if err != nil {
		return 0
	}
	return float64(h.PathBytesTotal()) / sys.PeakBytesPerCycle()
}

// Fig11Config parameterizes the placement study.
type Fig11Config struct {
	WorkingSet uint64
	Channels   []int
	Settings   []Setting
	Accesses   int
	Seed       int64
}

// DefaultFig11 returns the paper's setup: 8 GB data ORAM (4 GB working
// set), the four best configurations, 1/2/4 channels.
func DefaultFig11() Fig11Config {
	return Fig11Config{
		WorkingSet: 1 << 25,
		Channels:   []int{1, 2, 4},
		Settings:   []Setting{DZ3Pb12, DZ4Pb12, DZ3Pb32, DZ4Pb32},
		Accesses:   64,
		Seed:       13,
	}
}

// Fig11Point is one (setting, channels) measurement.
type Fig11Point struct {
	Setting     string
	Channels    int
	Naive       float64 // finish latency, DRAM cycles
	Subtree     float64
	Theoretical float64
	// Return-data latencies (used by Table 2).
	NaiveReturn, SubtreeReturn float64
}

// Fig11Result holds the sweep.
type Fig11Result struct {
	Config Fig11Config
	Points []Fig11Point
}

// RunFig11 measures naive vs subtree placement against the theoretical
// bound for every configuration and channel count.
func RunFig11(cfg Fig11Config) (*Fig11Result, error) {
	res := &Fig11Result{Config: cfg}
	for _, set := range cfg.Settings {
		h, err := set.Hierarchy(cfg.WorkingSet)
		if err != nil {
			return nil, err
		}
		for _, ch := range cfg.Channels {
			pt := Fig11Point{Setting: set.Name, Channels: ch,
				Theoretical: TheoreticalLatency(h, ch)}
			for _, strat := range []string{"naive", "subtree"} {
				sim, err := newHierSim(h, ch, strat, cfg.Seed)
				if err != nil {
					return nil, err
				}
				r, f := sim.measure(cfg.Accesses, false)
				if strat == "naive" {
					pt.Naive, pt.NaiveReturn = f, r
				} else {
					pt.Subtree, pt.SubtreeReturn = f, r
				}
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// Table renders Figure 11.
func (r *Fig11Result) Table() *Table {
	t := &Table{
		Title:  "Figure 11: hierarchical ORAM latency on DRAM (cycles per access)",
		Header: []string{"config", "channels", "naive", "subtree", "theoretical", "naive/theory", "subtree/theory"},
		Note:   fmt.Sprintf("working set %d blocks; DDR3 micron timing", r.Config.WorkingSet),
	}
	for _, p := range r.Points {
		t.AddRow(p.Setting, fmt.Sprintf("%d", p.Channels),
			f1(p.Naive), f1(p.Subtree), f1(p.Theoretical),
			f2(p.Naive/p.Theoretical), f2(p.Subtree/p.Theoretical))
	}
	return t
}

// Find returns the point for (setting, channels).
func (r *Fig11Result) Find(name string, channels int) *Fig11Point {
	for i := range r.Points {
		if r.Points[i].Setting == name && r.Points[i].Channels == channels {
			return &r.Points[i]
		}
	}
	return nil
}

// Fig5Result compares the two hierarchical access orders (Figure 5).
type Fig5Result struct {
	Setting                     string
	Channels                    int
	SeqReturn, SeqFinish        float64
	PipelinedReturn, PipeFinish float64
}

// RunFig5 measures sequential (per-ORAM read+write) vs pipelined
// (read-all-then-write-all) ordering for one setting.
func RunFig5(set Setting, wsBlocks uint64, channels, accesses int, seed int64) (*Fig5Result, error) {
	h, err := set.Hierarchy(wsBlocks)
	if err != nil {
		return nil, err
	}
	seqSim, err := newHierSim(h, channels, "subtree", seed)
	if err != nil {
		return nil, err
	}
	sr, sf := seqSim.measure(accesses, true)
	pipeSim, err := newHierSim(h, channels, "subtree", seed)
	if err != nil {
		return nil, err
	}
	pr, pf := pipeSim.measure(accesses, false)
	return &Fig5Result{
		Setting: set.Name, Channels: channels,
		SeqReturn: sr, SeqFinish: sf,
		PipelinedReturn: pr, PipeFinish: pf,
	}, nil
}

// Table renders the Figure 5 comparison.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title:  "Figure 5: hierarchical access ordering (DRAM cycles)",
		Header: []string{"order", "return data", "finish access"},
		Note:   fmt.Sprintf("%s, %d channel(s); pipelined = read all paths, then write all paths", r.Setting, r.Channels),
	}
	t.AddRow("sequential (a)", f1(r.SeqReturn), f1(r.SeqFinish))
	t.AddRow("pipelined (b)", f1(r.PipelinedReturn), f1(r.PipeFinish))
	return t
}

// Table2Config parameterizes the Table 2 reproduction.
type Table2Config struct {
	WorkingSet uint64
	Channels   int
	Settings   []Setting
	Accesses   int
	// DecryptCPUCycles is the per-hierarchy-level decryption latency in
	// CPU cycles (the paper's H x latency_decryption term).
	DecryptCPUCycles uint64
	// CPUPerDRAM is the clock ratio (the paper assumes 4x).
	CPUPerDRAM uint64
	Stash      int
	Seed       int64
}

// DefaultTable2 returns the paper's Table 2 setup.
func DefaultTable2() Table2Config {
	return Table2Config{
		WorkingSet:       1 << 25,
		Channels:         4,
		Settings:         []Setting{BaseORAM, DZ3Pb32, DZ4Pb32},
		Accesses:         64,
		DecryptCPUCycles: 84,
		CPUPerDRAM:       4,
		Stash:            200,
		Seed:             17,
	}
}

// Table2Row is one configuration's latency and storage summary.
type Table2Row struct {
	Setting       string
	NumORAMs      int
	ReturnCycles  uint64 // CPU cycles
	FinishCycles  uint64
	StashKB       float64
	PositionMapKB float64
}

// Table2Result holds the rows.
type Table2Result struct {
	Config Table2Config
	Rows   []Table2Row
}

// RunTable2 computes latencyCPU = CPUPerDRAM x latencyDRAM + H x decrypt
// (Section 4.3) with subtree placement, plus the on-chip storage columns.
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	res := &Table2Result{Config: cfg}
	for _, set := range cfg.Settings {
		h, err := set.Hierarchy(cfg.WorkingSet)
		if err != nil {
			return nil, err
		}
		sim, err := newHierSim(h, cfg.Channels, set.PlacementStrategy(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		r, f := sim.measure(cfg.Accesses, set.SequentialOrder)
		hn := uint64(h.NumORAMs())
		res.Rows = append(res.Rows, Table2Row{
			Setting:       set.Name,
			NumORAMs:      h.NumORAMs(),
			ReturnCycles:  uint64(r)*cfg.CPUPerDRAM + hn*cfg.DecryptCPUCycles,
			FinishCycles:  uint64(f)*cfg.CPUPerDRAM + hn*cfg.DecryptCPUCycles,
			StashKB:       float64(h.StashBits(cfg.Stash)) / 8 / 1024,
			PositionMapKB: float64(h.OnChipPosMapBits) / 8 / 1024,
		})
	}
	return res, nil
}

// Table renders Table 2.
func (r *Table2Result) Table() *Table {
	t := &Table{
		Title:  "Table 2: Path ORAM latency and on-chip storage",
		Header: []string{"config", "H", "return data (cyc)", "finish access (cyc)", "stash KB", "posmap KB"},
		Note: fmt.Sprintf("%d channels, CPU at %dx DDR3 clock, %d CPU cycles decrypt/level",
			r.Config.Channels, r.Config.CPUPerDRAM, r.Config.DecryptCPUCycles),
	}
	for _, row := range r.Rows {
		t.AddRow(row.Setting, fmt.Sprintf("%d", row.NumORAMs),
			fmt.Sprintf("%d", row.ReturnCycles), fmt.Sprintf("%d", row.FinishCycles),
			f1(row.StashKB), f1(row.PositionMapKB))
	}
	return t
}

// Find returns the row for a named setting.
func (r *Table2Result) Find(name string) *Table2Row {
	for i := range r.Rows {
		if r.Rows[i].Setting == name {
			return &r.Rows[i]
		}
	}
	return nil
}
