package exp

import (
	"strings"
	"testing"
)

func smallFig12() Fig12Config {
	cfg := DefaultFig12()
	cfg.Benchmarks = []string{"mcf", "libquantum", "hmmer"}
	cfg.Instructions = 150_000
	// The warmup must populate hmmer's ~512 KB hot set or cold misses
	// masquerade as memory-boundedness.
	cfg.Warmup = 350_000
	cfg.SimWorkingSet = 1 << 12
	cfg.SimAccesses = 1 << 13
	cfg.Table2.Accesses = 16
	return cfg
}

func TestBuildORAMModels(t *testing.T) {
	models, err := BuildORAMModels(smallFig12())
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 4 {
		t.Fatalf("got %d models want 4", len(models))
	}
	byName := map[string]ORAMModel{}
	for _, m := range models {
		byName[m.Setting.Name] = m
		if m.Return == 0 || m.Finish <= m.Return {
			t.Errorf("%s: nonsense latencies return=%d finish=%d", m.Setting.Name, m.Return, m.Finish)
		}
	}
	// baseORAM (strawman buckets, naive placement, sequential order) must
	// be much slower than the optimized configs.
	if byName["baseORAM"].Return < byName["DZ3Pb32"].Return*2 {
		t.Errorf("baseORAM return %d not clearly above DZ3Pb32 %d",
			byName["baseORAM"].Return, byName["DZ3Pb32"].Return)
	}
	// The +SB variant shares latencies with its base config but has a
	// higher (or equal) dummy rate.
	if byName["DZ3Pb32+SB"].Finish != byName["DZ3Pb32"].Finish {
		t.Error("+SB variant should share tree latencies")
	}
	if byName["DZ3Pb32+SB"].DummyRate < byName["DZ3Pb32"].DummyRate {
		t.Error("+SB dummy rate below base config")
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := RunFig12(smallFig12())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	row := map[string]Fig12Row{}
	for _, r := range res.Rows {
		row[r.Benchmark] = r
	}
	// Memory-bound benchmarks suffer far more than compute-bound ones
	// under every ORAM config (the paper's core Figure 12 observation).
	for i := range res.Models {
		if row["mcf"].Slowdowns[i] < 2*row["hmmer"].Slowdowns[i] {
			t.Errorf("config %d: mcf slowdown %.2f not far above hmmer %.2f",
				i, row["mcf"].Slowdowns[i], row["hmmer"].Slowdowns[i])
		}
	}
	// Every slowdown is >= ~1 (an ORAM cannot beat DRAM).
	for _, r := range res.Rows {
		for i, s := range r.Slowdowns {
			if s < 0.99 {
				t.Errorf("%s config %d: slowdown %.2f below 1", r.Benchmark, i, s)
			}
		}
	}
	// The optimized configuration must improve on baseORAM on average.
	imp, err := res.ImprovementVsBase("DZ3Pb32")
	if err != nil {
		t.Fatal(err)
	}
	if imp < 0.2 {
		t.Errorf("DZ3Pb32 improvement %.1f%% below 20%% (paper: 43.9%%)", 100*imp)
	}
	// Rendering includes every model column and the average row.
	s := res.Table().String()
	for _, want := range []string{"baseORAM", "DZ3Pb32+SB", "average", "mcf"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q", want)
		}
	}
	if _, err := res.ImprovementVsBase("nope"); err == nil {
		t.Error("unknown setting accepted")
	}
}

func TestFig12UnknownBenchmark(t *testing.T) {
	cfg := smallFig12()
	cfg.Benchmarks = []string{"not-a-benchmark"}
	if _, err := RunFig12(cfg); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
