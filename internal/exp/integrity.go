package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/encrypt"
)

// IntegrityConfig parameterizes the Section 5 study: the cost of the
// mirrored authentication tree versus the strawman Merkle tree over data
// blocks.
type IntegrityConfig struct {
	LeafLevel  int
	Z          int
	BlockBytes int
	Blocks     uint64
	Accesses   int
	Seed       int64
}

// DefaultIntegrity returns a representative data-ORAM shape (scaled; the
// per-access hash counts depend only on L and Z).
func DefaultIntegrity() IntegrityConfig {
	return IntegrityConfig{
		LeafLevel:  10,
		Z:          4,
		BlockBytes: 64,
		Blocks:     1 << 11,
		Accesses:   2000,
		Seed:       29,
	}
}

// IntegrityResult compares measured traffic against the analytical bounds.
type IntegrityResult struct {
	Config IntegrityConfig
	// Measured per access.
	HashReadsPerAccess  float64
	HashWritesPerAccess float64
	// Bounds (Section 5): ours reads at most L sibling hashes; the
	// strawman Merkle tree needs Z(L+1)^2 hashes per access.
	OurBound      int
	StrawmanBound int
	Verifications uint64
}

// RunIntegrity drives an authenticated, encrypted ORAM over uninitialized
// memory and reports per-access hash traffic.
func RunIntegrity(cfg IntegrityConfig) (*IntegrityResult, error) {
	scheme, err := encrypt.NewCounterScheme(make([]byte, encrypt.KeySize), 1<<uint(cfg.LeafLevel+1)-1)
	if err != nil {
		return nil, err
	}
	auth := encrypt.NewAuthTree(cfg.LeafLevel, cfg.Z, cfg.BlockBytes, scheme)
	store, err := encrypt.NewStore(encrypt.StoreConfig{
		LeafLevel: cfg.LeafLevel, Z: cfg.Z, BlockBytes: cfg.BlockBytes,
		Scheme: scheme, Auth: auth,
		RandomizeMemory: rand.New(rand.NewSource(cfg.Seed)),
	})
	if err != nil {
		return nil, err
	}
	src := core.NewMathLeafSource(rand.New(rand.NewSource(cfg.Seed + 1)))
	p := core.Params{
		LeafLevel: cfg.LeafLevel, Z: cfg.Z, BlockBytes: cfg.BlockBytes,
		Blocks:             cfg.Blocks,
		StashCapacity:      cfg.Z*(cfg.LeafLevel+1) + 100,
		BackgroundEviction: true,
	}
	pos, err := core.NewOnChipPositionMap(p.Groups(), 1<<uint(cfg.LeafLevel), src)
	if err != nil {
		return nil, err
	}
	o, err := core.New(p, store, pos, src)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	buf := make([]byte, cfg.BlockBytes)
	for i := 0; i < cfg.Accesses; i++ {
		rng.Read(buf)
		if _, err := o.Access(rng.Uint64()%cfg.Blocks, core.OpWrite, buf); err != nil {
			return nil, err
		}
	}
	reads, writes, verifs := auth.Stats()
	total := float64(o.Stats().RealAccesses + o.Stats().DummyAccesses)
	return &IntegrityResult{
		Config:              cfg,
		HashReadsPerAccess:  float64(reads) / total,
		HashWritesPerAccess: float64(writes) / total,
		OurBound:            cfg.LeafLevel,
		StrawmanBound:       cfg.Z * (cfg.LeafLevel + 1) * (cfg.LeafLevel + 1),
		Verifications:       verifs,
	}, nil
}

// Table renders the Section 5 comparison.
func (r *IntegrityResult) Table() *Table {
	t := &Table{
		Title:  "Section 5: integrity verification cost per ORAM access",
		Header: []string{"scheme", "hashes read", "hashes written"},
		Note: fmt.Sprintf("L=%d, Z=%d; verify+update each reads sibling hashes once in this implementation",
			r.Config.LeafLevel, r.Config.Z),
	}
	t.AddRow("authentication tree (ours, measured)",
		f2(r.HashReadsPerAccess), f2(r.HashWritesPerAccess))
	t.AddRow("authentication tree (paper bound)",
		fmt.Sprintf("<= %d", 2*r.OurBound), fmt.Sprintf("<= %d", r.OurBound+1))
	t.AddRow("strawman Merkle tree (bound)",
		fmt.Sprintf("%d", r.StrawmanBound), fmt.Sprintf("~%d", r.Config.Z*(r.Config.LeafLevel+1)))
	return t
}
