package exp

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/treemath"
)

// Fig4Config parameterizes the common-path-length attack of Section 3.1.3:
// the adversary watches consecutive accessed paths and averages their CPL.
// Under the secure background-eviction scheme the average matches the
// uniform-leaf expectation 2 - 1/2^L regardless of workload; under the
// insecure block-remapping eviction it deviates measurably.
//
// Paper parameters: L=5, Z=1, threshold C - Z(L+1) = 2, 100 experiments.
// The magnitude (and even the sign) of the insecure bias depends on which
// blocks accumulate in the stash, which is implementation specific: the
// paper measures 1.79 (below the 1.969 expectation); our greedy eviction
// leaves recently-read path blocks congested, which biases the statistic
// upward instead. Either way |mean - expected| separates the schemes, which
// is the security claim. We therefore run two utilization regimes: the
// paper's low-utilization point (both schemes run; secure matches the
// expectation) and a congested point (insecure only — the secure scheme's
// dummy accesses cannot drain a 2-block threshold there) where the bias is
// unmistakable.
type Fig4Config struct {
	LeafLevel   int
	Z           int
	Headroom    int // threshold above Z(L+1)
	Experiments int
	Accesses    int // real accesses per experiment
	// Blocks is the low-utilization working set where both schemes run.
	Blocks uint64
	// CongestedBlocks is the high-utilization working set for the
	// insecure-only demonstration.
	CongestedBlocks uint64
	Seed            int64
}

// DefaultFig4 returns the paper's attack parameters. L=5 and Z=1 give 63
// slots; 24 blocks (38% utilization) keeps the secure scheme drainable
// with a 2-block threshold, 56 blocks (89%) is the congested regime.
func DefaultFig4() Fig4Config {
	return Fig4Config{
		LeafLevel:       5,
		Z:               1,
		Headroom:        2,
		Experiments:     100,
		Accesses:        3000,
		Blocks:          24,
		CongestedBlocks: 56,
		Seed:            7,
	}
}

// Fig4Result aggregates per-experiment mean CPLs.
type Fig4Result struct {
	Config   Fig4Config
	Expected float64
	// Low-utilization regime (paper parameters).
	Secure, Insecure stats.Running
	// Congested regime, insecure scheme only.
	InsecureCongested stats.Running
	SecureDummyRate   float64
	InsecureEvictRate float64
}

// RunFig4 mounts the attack on both eviction schemes.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	tree := treemath.New(cfg.LeafLevel)
	res := &Fig4Result{Config: cfg, Expected: tree.ExpectedCPL()}
	var dumTot, evcTot, realTot float64
	for e := 0; e < cfg.Experiments; e++ {
		seed := cfg.Seed + int64(e)*17
		mean, st, err := runCPLExperiment(cfg, core.EvictBackgroundDummy, cfg.Blocks, seed)
		if err != nil {
			return nil, err
		}
		res.Secure.Observe(mean)
		dumTot += float64(st.DummyAccesses)
		realTot += float64(st.RealAccesses)

		mean, st, err = runCPLExperiment(cfg, core.EvictInsecureRemap, cfg.Blocks, seed)
		if err != nil {
			return nil, err
		}
		res.Insecure.Observe(mean)
		evcTot += float64(st.EvictionAccesses)

		mean, _, err = runCPLExperiment(cfg, core.EvictInsecureRemap, cfg.CongestedBlocks, seed)
		if err != nil {
			return nil, err
		}
		res.InsecureCongested.Observe(mean)
	}
	if realTot > 0 {
		res.SecureDummyRate = dumTot / realTot
		res.InsecureEvictRate = evcTot / realTot
	}
	return res, nil
}

// runCPLExperiment runs one experiment and returns the mean CPL between
// consecutive observed paths.
func runCPLExperiment(cfg Fig4Config, policy core.EvictionPolicy, blocks uint64, seed int64) (float64, core.Stats, error) {
	tree := treemath.New(cfg.LeafLevel)
	var cpl stats.Running
	var prev uint64
	var havePrev bool
	p := core.Params{
		LeafLevel:          cfg.LeafLevel,
		Z:                  cfg.Z,
		Blocks:             blocks,
		StashCapacity:      cfg.Z*(cfg.LeafLevel+1) + cfg.Headroom,
		BackgroundEviction: true,
		Policy:             policy,
		MaxDummyRun:        1 << 16,
		OnPathAccess: func(leaf uint64, kind core.AccessKind) {
			if havePrev {
				cpl.Observe(float64(tree.CommonPathLength(prev, leaf)))
			}
			prev, havePrev = leaf, true
		},
	}
	o, err := buildMetaORAM(p, seed)
	if err != nil {
		return 0, core.Stats{}, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < cfg.Accesses; i++ {
		if _, err := o.Access(rng.Uint64()%blocks, core.OpWrite, nil); err != nil {
			if errors.Is(err, core.ErrLivelock) {
				// Report what was observed; the config is at the edge.
				return cpl.Mean(), o.Stats(), nil
			}
			return 0, core.Stats{}, err
		}
	}
	return cpl.Mean(), o.Stats(), nil
}

// Table renders the Figure 4 comparison.
func (r *Fig4Result) Table() *Table {
	bias := func(m float64) string { return fmt.Sprintf("%+.3f", m-r.Expected) }
	t := &Table{
		Title:  "Figure 4: average CPL between consecutively accessed paths",
		Header: []string{"scheme", "utilization", "mean CPL", "bias vs expected", "std"},
		Note: fmt.Sprintf("expected for uniform leaves: %.3f; L=%d, Z=%d, threshold=%d, %d experiments; "+
			"the paper's insecure bias is -0.18, ours is positive (see EXPERIMENTS.md) — both distinguishable",
			r.Expected, r.Config.LeafLevel, r.Config.Z, r.Config.Headroom, r.Config.Experiments),
	}
	lowU := fmt.Sprintf("%d/63 slots", r.Config.Blocks)
	hiU := fmt.Sprintf("%d/63 slots", r.Config.CongestedBlocks)
	t.AddRow("background eviction (secure)", lowU,
		f3(r.Secure.Mean()), bias(r.Secure.Mean()), f3(r.Secure.Std()))
	t.AddRow("block remapping (insecure)", lowU,
		f3(r.Insecure.Mean()), bias(r.Insecure.Mean()), f3(r.Insecure.Std()))
	t.AddRow("block remapping (insecure)", hiU,
		f3(r.InsecureCongested.Mean()), bias(r.InsecureCongested.Mean()), f3(r.InsecureCongested.Std()))
	return t
}
