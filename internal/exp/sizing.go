package exp

import "math"

// treeFor sizes a tree for a sweep point: the leaf level is chosen so the
// slot count Z*(2^(L+1)-1) is nearest wsBlocks/utilization in log space,
// and the valid-block count is then derived as utilization * slots, so the
// achieved utilization is exact. (Complete binary trees quantize capacity;
// the paper's utilization axis can only be realized this way — e.g. 80%
// at Z=1 has no power-of-two tree for a fixed working set.)
func treeFor(wsBlocks uint64, utilization float64, z int) (leafLevel int, valid uint64) {
	if utilization <= 0 || utilization > 1 {
		utilization = 1
	}
	target := float64(wsBlocks) / utilization / float64(z) // desired bucket count
	l := int(math.Round(math.Log2(target + 1)))
	if l < 1 {
		l = 1
	}
	if l > 30 {
		l = 30
	}
	leafLevel = l - 1
	slots := uint64(z) * (1<<uint(l) - 1)
	valid = uint64(math.Round(utilization * float64(slots)))
	if valid < 1 {
		valid = 1
	}
	if valid > slots {
		valid = slots
	}
	return leafLevel, valid
}
