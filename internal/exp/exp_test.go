package exp

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}, Note: "n"}
	tab.AddRow("1", "2")
	s := tab.String()
	for _, want := range []string{"== T ==", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestFig3SmallRun(t *testing.T) {
	cfg := DefaultFig3()
	cfg.WorkingSetBlocks = 1 << 10
	cfg.AccessesPerBlock = 6
	cfg.Zs = []int{2, 4}
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, h4 := res.Histograms[2], res.Histograms[4]
	if h2.Total() == 0 || h4.Total() == 0 {
		t.Fatal("no samples")
	}
	// The paper's core observation: smaller Z accumulates far more blocks
	// in the stash.
	if h2.Mean() <= h4.Mean() {
		t.Errorf("Z=2 mean occupancy %.1f not above Z=4 %.1f", h2.Mean(), h4.Mean())
	}
	// Z=4 should essentially never exceed a 100-block stash.
	if p := h4.TailProb(100); p > 1e-3 {
		t.Errorf("Z=4 P(>=100) = %v, want tiny", p)
	}
	if got := res.Table().String(); !strings.Contains(got, "Z=4") {
		t.Error("table missing Z=4 column")
	}
}

func TestFig4AttackSeparates(t *testing.T) {
	cfg := DefaultFig4()
	cfg.Experiments = 15
	cfg.Accesses = 1500
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Secure scheme: mean CPL near the uniform expectation (1.969 for
	// L=5), matching the paper's 1.979.
	if d := res.Secure.Mean() - res.Expected; d < -0.03 || d > 0.03 {
		t.Errorf("secure CPL %.4f not near expectation %.4f", res.Secure.Mean(), res.Expected)
	}
	// Insecure scheme under congestion: the attack statistic must deviate
	// strongly (the paper reports |bias| = 0.18; our implementation's
	// bias is positive — see EXPERIMENTS.md).
	bias := res.InsecureCongested.Mean() - res.Expected
	if bias < 0 {
		bias = -bias
	}
	if bias < 0.1 {
		t.Errorf("insecure congested CPL %.4f does not separate from %.4f",
			res.InsecureCongested.Mean(), res.Expected)
	}
	if res.SecureDummyRate <= 0 {
		t.Error("secure scheme issued no dummies in this tight config")
	}
	_ = res.Table().String()
}

func TestFig7RatiosOrdered(t *testing.T) {
	cfg := DefaultFig7()
	cfg.WorkingSetBlocks = 1 << 11
	cfg.AccessesPerBlock = 8
	cfg.StashSizes = []int{100, 400}
	res, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's finding: Z=1 needs far more dummies than Z=2, Z=3.
	if res.Ratio[1][100] < 5*res.Ratio[3][100] {
		t.Errorf("Z=1 ratio %.3f not far above Z=3 %.3f", res.Ratio[1][100], res.Ratio[3][100])
	}
	// Z>=2 ratios are low.
	if res.Ratio[3][100] > 0.5 {
		t.Errorf("Z=3 ratio %.3f unexpectedly high", res.Ratio[3][100])
	}
	_ = res.Table().String()
}

func TestFig8ShapeAndBest(t *testing.T) {
	// At 2^13 blocks (a "1 MB-class" ORAM in paper terms) the paper's
	// qualitative findings already hold: Z=1 is infeasible at high
	// utilization, moderate Z at moderate utilization wins, Z=8 wastes
	// bandwidth. (Z=3 only overtakes Z=2 at much larger trees, Fig. 9.)
	cfg := DefaultFig8()
	cfg.WorkingSetBlocks = 1 << 13
	cfg.AccessesPerBlock = 6
	cfg.Utilizations = []float64{0.25, 0.50, 0.80}
	cfg.Zs = []int{1, 2, 3, 4, 8}
	res, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Z=1 at 80% utilization must be infeasible (paper: missing bars).
	if pt := res.find(1, 0.80); pt == nil || !pt.Infeasible {
		t.Error("Z=1 at 80% should be infeasible")
	}
	// The best point should be Z=2..4 at moderate utilization; Z=8 and
	// Z=1 must not win.
	best := res.Best()
	if best == nil {
		t.Fatal("no feasible points")
	}
	if best.Z < 2 || best.Z > 4 {
		t.Errorf("best Z=%d at %.0f%%, expected Z in 2..4", best.Z, 100*best.Utilization)
	}
	// Z=8 carries much more overhead than Z=3 at 50%.
	z3 := res.find(3, 0.50)
	z8 := res.find(8, 0.50)
	if z3 == nil || z8 == nil || z8.Overhead < 1.5*z3.Overhead {
		t.Errorf("Z=8 (%.0f) should be far above Z=3 (%.0f) at 50%%", z8.Overhead, z3.Overhead)
	}
	// Low utilization costs more than moderate for Z=3 (longer paths).
	z3lo := res.find(3, 0.25)
	if z3lo == nil || z3lo.Overhead <= z3.Overhead {
		t.Errorf("Z=3: 25%% util (%.0f) should cost more than 50%% (%.0f)",
			z3lo.Overhead, z3.Overhead)
	}
	_ = res.Table().String()
}

func TestFig9Scaling(t *testing.T) {
	cfg := DefaultFig9()
	cfg.WorkingSets = []uint64{1 << 9, 1 << 13}
	cfg.AccessesPerBlock = 6
	cfg.Zs = []int{2, 3}
	res, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Overhead grows roughly linearly in L: capacity x16 adds 4 levels,
	// so overhead must grow, but by far less than 2x.
	for _, z := range cfg.Zs {
		var small, big float64
		for _, pt := range res.Points {
			if pt.Z != z {
				continue
			}
			if pt.WorkingSet == cfg.WorkingSets[0] {
				small = pt.Overhead
			} else {
				big = pt.Overhead
			}
		}
		if big <= small {
			t.Errorf("Z=%d: overhead should grow with capacity (%.0f vs %.0f)", z, small, big)
		}
		if big > 2*small {
			t.Errorf("Z=%d: overhead grew superlinearly (%.0f vs %.0f)", z, small, big)
		}
	}
	_ = res.Table().String()
}

func TestFig10ReductionVsBase(t *testing.T) {
	cfg := DefaultFig10()
	cfg.SimWorkingSet = 1 << 11
	cfg.SimAccesses = 1 << 14
	cfg.Settings = []Setting{DZ3Pb32, DZ4Pb32, BaseORAM}
	res, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	red, err := res.ReductionVsBase("DZ3Pb32")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 41.8% for DZ3Pb32. Require the shape: >= 25%.
	if red < 0.25 {
		t.Errorf("DZ3Pb32 reduction %.1f%% below 25%% (paper: 41.8%%)", 100*red)
	}
	red4, err := res.ReductionVsBase("DZ4Pb32")
	if err != nil {
		t.Fatal(err)
	}
	if red4 < 0.15 {
		t.Errorf("DZ4Pb32 reduction %.1f%% below 15%% (paper: 35.0%%)", 100*red4)
	}
	// DZ3Pb32 must beat DZ4Pb32 (paper ordering).
	if red <= red4 {
		t.Errorf("DZ3Pb32 (%.1f%%) should beat DZ4Pb32 (%.1f%%)", 100*red, 100*red4)
	}
	_ = res.Table().String()
}

func TestFig11SubtreeBeatsNaive(t *testing.T) {
	cfg := DefaultFig11()
	cfg.WorkingSet = 1 << 18 // scaled tree, same structure
	cfg.Channels = []int{2, 4}
	cfg.Settings = []Setting{DZ3Pb32}
	cfg.Accesses = 24
	res, err := RunFig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Subtree >= p.Naive {
			t.Errorf("%s ch=%d: subtree %.0f not faster than naive %.0f",
				p.Setting, p.Channels, p.Subtree, p.Naive)
		}
		if p.Subtree < p.Theoretical {
			t.Errorf("%s ch=%d: subtree %.0f beats the theoretical bound %.0f",
				p.Setting, p.Channels, p.Subtree, p.Theoretical)
		}
		// Paper: subtree within ~6-13% of theoretical; allow 35% at our
		// scaled size, naive must be clearly worse.
		if p.Subtree > 1.5*p.Theoretical {
			t.Errorf("%s ch=%d: subtree %.0f too far from theory %.0f",
				p.Setting, p.Channels, p.Subtree, p.Theoretical)
		}
	}
	// More channels must help.
	p2, p4 := res.Find("DZ3Pb32", 2), res.Find("DZ3Pb32", 4)
	if p4.Subtree >= p2.Subtree {
		t.Error("4 channels not faster than 2")
	}
	_ = res.Table().String()
}

func TestFig5PipelinedReturnsEarlier(t *testing.T) {
	res, err := RunFig5(DZ3Pb32, 1<<18, 2, 16, 31)
	if err != nil {
		t.Fatal(err)
	}
	if res.PipelinedReturn >= res.SeqReturn {
		t.Errorf("pipelined return %.0f not earlier than sequential %.0f",
			res.PipelinedReturn, res.SeqReturn)
	}
	_ = res.Table().String()
}

func TestTable2Shape(t *testing.T) {
	cfg := DefaultTable2() // paper scale: the DRAM replay never builds trees
	cfg.Accesses = 16
	res, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := res.Find("baseORAM")
	opt := res.Find("DZ3Pb32")
	if base == nil || opt == nil {
		t.Fatal("missing rows")
	}
	// The Table 2 ordering: DZ3Pb32 returns data much faster than
	// baseORAM (paper: 1892 vs 4868 cycles).
	if float64(opt.ReturnCycles) > 0.7*float64(base.ReturnCycles) {
		t.Errorf("DZ3Pb32 return %d not well below baseORAM %d", opt.ReturnCycles, base.ReturnCycles)
	}
	if opt.ReturnCycles >= opt.FinishCycles {
		t.Error("return data must precede finish access")
	}
	if base.NumORAMs != 3 {
		t.Errorf("baseORAM H=%d want 3", base.NumORAMs)
	}
	_ = res.Table().String()
}

func TestIntegrityOverheadBounds(t *testing.T) {
	cfg := DefaultIntegrity()
	cfg.Accesses = 400
	res, err := RunIntegrity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Measured sibling-hash reads: VerifyPath + UpdatePath each read at
	// most L per access.
	if res.HashReadsPerAccess > float64(2*cfg.LeafLevel) {
		t.Errorf("hash reads %.1f exceed 2L=%d", res.HashReadsPerAccess, 2*cfg.LeafLevel)
	}
	if res.HashWritesPerAccess > float64(cfg.LeafLevel+1) {
		t.Errorf("hash writes %.1f exceed L+1", res.HashWritesPerAccess)
	}
	// And the whole point: orders of magnitude below the strawman.
	if float64(res.StrawmanBound) < 10*res.HashReadsPerAccess {
		t.Errorf("strawman bound %d not >> measured %.1f", res.StrawmanBound, res.HashReadsPerAccess)
	}
	_ = res.Table().String()
}

func TestSettingHierarchyDZ3Pb32(t *testing.T) {
	h, err := DZ3Pb32.Hierarchy(1 << 25)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumORAMs() < 3 {
		t.Errorf("DZ3Pb32 H=%d want >=3 (paper: 4)", h.NumORAMs())
	}
}

func TestMeasureDummyRateSuperBlockCostsMore(t *testing.T) {
	// Section 3.2.3: statically merged super blocks behave like a smaller
	// Z, so they must need more dummy accesses at steady state.
	plain, err := DZ3Pb32.MeasureDummyRate(1<<13, 200, 1<<14, 3)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := DZ3Pb32SB.MeasureDummyRate(1<<13, 200, 1<<14, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sb <= plain {
		t.Errorf("super blocks dummy rate %.3f not above plain %.3f", sb, plain)
	}
}
