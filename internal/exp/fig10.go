package exp

import (
	"fmt"

	"repro/internal/analysis"
)

// Fig10Config parameterizes the hierarchical overhead breakdown: for each
// configuration the paper stacks each ORAM's contribution to Equation 2.
// The analytical hierarchy is sized at paper scale (bit-exact); the dummy
// rate is measured on a scaled functional hierarchy (see
// Setting.MeasureDummyRate).
type Fig10Config struct {
	// PaperWorkingSet sizes the analytical hierarchy (default 2^25 blocks
	// = 4 GB of 128-byte blocks).
	PaperWorkingSet uint64
	// SimWorkingSet sizes the scaled dummy-rate measurement.
	SimWorkingSet uint64
	SimAccesses   int
	Stash         int
	Settings      []Setting
	Seed          int64
}

// DefaultFig10 returns the paper's configuration sweep: position-map block
// sizes {8,12,16,32,64} for data Z in {3,4}, plus baseORAM.
func DefaultFig10() Fig10Config {
	var settings []Setting
	for _, z := range []int{3, 4} {
		for _, pb := range []int{8, 12, 16, 32, 64} {
			settings = append(settings, Setting{
				Name:           fmt.Sprintf("DZ%dPb%d", z, pb),
				DataZ:          z,
				PosZ:           3,
				DataBlockBytes: 128,
				PosBlockBytes:  pb,
				Scheme:         analysis.SchemeCounter,
				SuperBlock:     1,
			})
		}
	}
	settings = append(settings, BaseORAM)
	return Fig10Config{
		PaperWorkingSet: 1 << 25,
		SimWorkingSet:   1 << 14,
		SimAccesses:     1 << 17,
		Stash:           200,
		Settings:        settings,
		Seed:            11,
	}
}

// Fig10Row is one configuration's breakdown.
type Fig10Row struct {
	Setting   Setting
	DummyRate float64
	Breakdown []float64 // per-ORAM contribution to Equation 2
	Total     float64
	NumORAMs  int
	PosMapKB  float64 // final on-chip map
	Err       string  // non-empty if the config failed to size
}

// Fig10Result holds all configurations.
type Fig10Result struct {
	Config Fig10Config
	Rows   []Fig10Row
}

// RunFig10 sizes each hierarchy analytically and measures its dummy rate
// on the scaled simulation.
func RunFig10(cfg Fig10Config) (*Fig10Result, error) {
	res := &Fig10Result{Config: cfg}
	for i, s := range cfg.Settings {
		row := Fig10Row{Setting: s}
		h, err := s.Hierarchy(cfg.PaperWorkingSet)
		if err != nil {
			row.Err = err.Error()
			res.Rows = append(res.Rows, row)
			continue
		}
		rate, err := s.MeasureDummyRate(cfg.SimWorkingSet, cfg.Stash, cfg.SimAccesses, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		row.DummyRate = rate
		row.Breakdown = h.OverheadBreakdown(rate)
		row.Total = h.AccessOverhead(rate)
		row.NumORAMs = h.NumORAMs()
		row.PosMapKB = float64(h.OnChipPosMapBits) / 8 / 1024
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the Figure 10 stacked bars as columns per ORAM.
func (r *Fig10Result) Table() *Table {
	maxORAMs := 0
	for _, row := range r.Rows {
		if row.NumORAMs > maxORAMs {
			maxORAMs = row.NumORAMs
		}
	}
	t := &Table{
		Title:  "Figure 10: hierarchical access-overhead breakdown (Equation 2)",
		Header: []string{"config", "H", "DA/RA", "total"},
		Note:   "per-ORAM columns are each level's contribution; posmap KB is the final on-chip map",
	}
	for i := 1; i <= maxORAMs; i++ {
		t.Header = append(t.Header, fmt.Sprintf("ORAM%d", i))
	}
	t.Header = append(t.Header, "posmap KB")
	for _, row := range r.Rows {
		if row.Err != "" {
			t.AddRow(row.Setting.Name, "-", "-", "error: "+row.Err)
			continue
		}
		cells := []string{row.Setting.Name, fmt.Sprintf("%d", row.NumORAMs), f3(row.DummyRate), f1(row.Total)}
		for i := 0; i < maxORAMs; i++ {
			if i < len(row.Breakdown) {
				cells = append(cells, f1(row.Breakdown[i]))
			} else {
				cells = append(cells, "")
			}
		}
		cells = append(cells, f1(row.PosMapKB))
		t.AddRow(cells...)
	}
	return t
}

// Find returns the row for a named setting (nil if absent).
func (r *Fig10Result) Find(name string) *Fig10Row {
	for i := range r.Rows {
		if r.Rows[i].Setting.Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// ReductionVsBase returns 1 - overhead(name)/overhead(baseORAM), the
// paper's headline 41.8% metric.
func (r *Fig10Result) ReductionVsBase(name string) (float64, error) {
	base := r.Find("baseORAM")
	opt := r.Find(name)
	if base == nil || opt == nil || base.Err != "" || opt.Err != "" {
		return 0, fmt.Errorf("exp: missing rows for reduction (%q vs baseORAM)", name)
	}
	return 1 - opt.Total/base.Total, nil
}
