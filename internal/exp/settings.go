package exp

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/hierarchy"
)

// Setting names one hierarchical ORAM configuration from Section 4
// ("DZ3Pb32" = data ORAM Z=3, position-map ORAM blocks of 32 bytes).
type Setting struct {
	Name           string
	DataZ          int
	PosZ           int
	DataBlockBytes int
	PosBlockBytes  int
	Scheme         analysis.Scheme
	SuperBlock     int // 1 = off, 2 = the paper's static pairs
	// Placement selects the DRAM layout for latency studies ("subtree"
	// default; baseORAM uses "naive" since it predates the Section 3.3.4
	// optimization).
	Placement string
	// SequentialOrder selects the Figure 5(a) per-ORAM read+write order
	// instead of the pipelined 5(b) order (baseORAM predates the Section
	// 3.3.2 optimization too).
	SequentialOrder bool
}

// PlacementStrategy returns the DRAM layout for this setting.
func (s Setting) PlacementStrategy() string {
	if s.Placement == "" {
		return "subtree"
	}
	return s.Placement
}

// The configurations evaluated in Figures 10-12 and Table 2.
var (
	// BaseORAM is the paper's baseline from the Ascend publication [3]:
	// three ORAMs, all with 128-byte blocks, Z=4, strawman encryption,
	// and no subtree DRAM placement.
	BaseORAM = Setting{Name: "baseORAM", DataZ: 4, PosZ: 4,
		DataBlockBytes: 128, PosBlockBytes: 128, Scheme: analysis.SchemeStrawman,
		SuperBlock: 1, Placement: "naive", SequentialOrder: true}
	DZ3Pb32 = Setting{Name: "DZ3Pb32", DataZ: 3, PosZ: 3,
		DataBlockBytes: 128, PosBlockBytes: 32, Scheme: analysis.SchemeCounter, SuperBlock: 1}
	DZ4Pb32 = Setting{Name: "DZ4Pb32", DataZ: 4, PosZ: 3,
		DataBlockBytes: 128, PosBlockBytes: 32, Scheme: analysis.SchemeCounter, SuperBlock: 1}
	DZ3Pb12 = Setting{Name: "DZ3Pb12", DataZ: 3, PosZ: 3,
		DataBlockBytes: 128, PosBlockBytes: 12, Scheme: analysis.SchemeCounter, SuperBlock: 1}
	DZ4Pb12 = Setting{Name: "DZ4Pb12", DataZ: 4, PosZ: 3,
		DataBlockBytes: 128, PosBlockBytes: 12, Scheme: analysis.SchemeCounter, SuperBlock: 1}
	// Super-block variants used in Figure 12.
	DZ3Pb32SB = Setting{Name: "DZ3Pb32+SB", DataZ: 3, PosZ: 3,
		DataBlockBytes: 128, PosBlockBytes: 32, Scheme: analysis.SchemeCounter, SuperBlock: 2}
	DZ4Pb32SB = Setting{Name: "DZ4Pb32+SB", DataZ: 4, PosZ: 3,
		DataBlockBytes: 128, PosBlockBytes: 32, Scheme: analysis.SchemeCounter, SuperBlock: 2}
)

// Hierarchy builds the bit-exact analytical hierarchy for a setting at the
// given working-set size (the paper's Figures 10-12 use 2^25 blocks = 4 GB).
func (s Setting) Hierarchy(wsBlocks uint64) (analysis.Hierarchy, error) {
	return analysis.BuildHierarchy(analysis.HierarchyConfig{
		WorkingSetBlocks: wsBlocks,
		DataUtilization:  0.5,
		DataZ:            s.DataZ,
		DataBlockBytes:   s.DataBlockBytes,
		PosZ:             s.PosZ,
		PosBlockBytes:    s.PosBlockBytes,
		DataScheme:       s.Scheme,
		PosScheme:        s.Scheme,
	})
}

// MeasureDummyRate fills a scaled functional hierarchy, then measures the
// steady-state DA/RA ratio (Equations 1-2) under uniform random accesses.
// The rate depends on Z, utilization and stash headroom more than on
// absolute capacity (Figure 9), but it does grow with tree depth; see
// EXPERIMENTS.md for the scales used versus the paper's.
func (s Setting) MeasureDummyRate(wsBlocks uint64, stash int, accesses int, seed int64) (float64, error) {
	h, err := hierarchy.New(hierarchy.Config{
		Blocks:             wsBlocks,
		DataBlockBytes:     0, // metadata-only data ORAM
		DataZ:              s.DataZ,
		PosZ:               s.PosZ,
		PosBlockBytes:      s.PosBlockBytes,
		OnChipPosMapMax:    1 << 10,
		SuperBlock:         s.SuperBlock,
		StashCapacity:      stash,
		BackgroundEviction: true,
		MaxDummyRun:        1 << 14, // declare infeasibility early
		Leaves:             core.NewMathLeafSource(rand.New(rand.NewSource(seed))),
	})
	if err != nil {
		return 0, err
	}
	// Fill phase: the paper's experiments run on a populated ORAM.
	for b := uint64(0); b < wsBlocks; b++ {
		if _, err := h.Access(b, core.OpWrite, nil); err != nil {
			if errors.Is(err, core.ErrLivelock) {
				return math.Inf(1), nil // infeasible configuration
			}
			return 0, err
		}
	}
	h.ResetStats()
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < accesses; i++ {
		if _, err := h.Access(rng.Uint64()%wsBlocks, core.OpWrite, nil); err != nil {
			if errors.Is(err, core.ErrLivelock) {
				return math.Inf(1), nil
			}
			return 0, err
		}
	}
	return h.DummyPerReal(), nil
}
