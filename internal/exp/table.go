// Package exp contains the experiment runners that regenerate every table
// and figure of the paper's evaluation (Sections 4 and 5). Each runner
// returns a Table whose rows mirror what the paper plots; cmd/ binaries and
// the root-level benchmarks drive them. Default problem sizes are scaled
// down from the paper's 4-8 GB ORAMs so the suite runs in seconds; the
// cmd tools expose flags for paper-scale runs (see EXPERIMENTS.md for the
// scales used and the paper-vs-measured comparison).
package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func sci(v float64) string { return fmt.Sprintf("%.2e", v) }
