package exp

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/trace"
)

// This file contains ablation studies beyond the paper's printed figures,
// isolating the design decisions the paper argues for qualitatively:
// super-block size (Section 3.2 fixes |S|=2), the exclusive-ORAM interface
// (Section 3.3.1), the counter-based encryption (Section 2.2.2), and the
// stash-capacity choice C=200 (Section 4.1.2).

// SuperBlockAblationConfig sweeps the static super-block size.
type SuperBlockAblationConfig struct {
	Sizes         []int
	DataZs        []int
	SimWorkingSet uint64
	SimAccesses   int
	Stash         int
	Seed          int64
}

// DefaultSuperBlockAblation returns the default sweep.
func DefaultSuperBlockAblation() SuperBlockAblationConfig {
	return SuperBlockAblationConfig{
		Sizes:         []int{1, 2, 4},
		DataZs:        []int{3, 4},
		SimWorkingSet: 1 << 13,
		SimAccesses:   1 << 14,
		Stash:         200,
		Seed:          41,
	}
}

// SuperBlockAblationRow is one (Z, |S|) measurement.
type SuperBlockAblationRow struct {
	DataZ     int
	Size      int
	DummyRate float64
	// MissRatio is the L2 miss ratio on a spatially local workload
	// relative to |S|=1 (the prefetch benefit side of the trade-off).
	MissRatio float64
	// NetSpeedup is the wall-clock ratio vs |S|=1 on that workload,
	// including the dummy-rate occupancy penalty.
	NetSpeedup float64
}

// SuperBlockAblationResult holds the sweep.
type SuperBlockAblationResult struct {
	Config SuperBlockAblationConfig
	Rows   []SuperBlockAblationRow
}

// RunSuperBlockAblation measures, for each super-block size: the dummy-rate
// cost (protocol side) and the miss/runtime benefit on a streaming
// workload (processor side).
func RunSuperBlockAblation(cfg SuperBlockAblationConfig) (*SuperBlockAblationResult, error) {
	res := &SuperBlockAblationResult{Config: cfg}
	prof := trace.Profile{
		Name: "stream", MemFrac: 0.3, StoreFrac: 0.3,
		SeqFrac: 0.3, StackFrac: 0.4, WorkingSet: 256 << 20,
	}
	coreCfg := cpu.Default()
	for _, z := range cfg.DataZs {
		var baseMisses, baseCycles float64
		for _, size := range cfg.Sizes {
			set := Setting{
				Name: fmt.Sprintf("DZ%dS%d", z, size), DataZ: z, PosZ: 3,
				DataBlockBytes: 128, PosBlockBytes: 32,
				Scheme: analysis.SchemeCounter, SuperBlock: size,
			}
			rate, err := set.MeasureDummyRate(cfg.SimWorkingSet, cfg.Stash, cfg.SimAccesses, cfg.Seed)
			if err != nil {
				return nil, err
			}
			if math.IsInf(rate, 1) {
				// Background eviction cannot keep up: the configuration
				// is infeasible (effective Z below 1).
				res.Rows = append(res.Rows, SuperBlockAblationRow{
					DataZ: z, Size: size, DummyRate: rate,
				})
				continue
			}
			// Processor side: super blocks of size s prefetch the s-line
			// group; the CPU model supports pairs, so model larger sizes
			// as pairs plus the measured dummy rate (documented
			// approximation; the protocol side above is exact).
			mem := &cpu.ORAMMemory{
				ReturnLat: 1900, FinishLat: 3500,
				DummyRate:  rate,
				SuperBlock: size > 1,
			}
			r, err := cpu.RunWithWarmup(coreCfg, prof.Generator(cfg.Seed+7), mem, 100_000, 200_000)
			if err != nil {
				return nil, err
			}
			row := SuperBlockAblationRow{DataZ: z, Size: size, DummyRate: rate}
			if size == cfg.Sizes[0] {
				baseMisses = float64(r.L2Misses)
				baseCycles = float64(r.Cycles)
				row.MissRatio = 1
				row.NetSpeedup = 1
			} else {
				row.MissRatio = float64(r.L2Misses) / baseMisses
				row.NetSpeedup = baseCycles / float64(r.Cycles)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Table renders the super-block ablation.
func (r *SuperBlockAblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation: static super-block size (Section 3.2)",
		Header: []string{"config", "|S|", "dummy rate", "L2 miss ratio", "net speedup"},
		Note:   "streaming workload; miss ratio and speedup relative to |S|=1 at the same Z",
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("DZ%d", row.DataZ), fmt.Sprintf("%d", row.Size),
			f3(row.DummyRate), f2(row.MissRatio), f2(row.NetSpeedup))
	}
	return t
}

// ExclusiveAblationConfig compares the exclusive interface against an
// inclusive baseline.
type ExclusiveAblationConfig struct {
	Benchmarks   []string
	Instructions uint64
	Warmup       uint64
	Return       uint64
	Finish       uint64
	Seed         int64
}

// DefaultExclusiveAblation uses write-heavy benchmarks where the inclusive
// design pays for dirty write-backs. Windows are long enough for the 1 MB
// L2 to reach eviction steady state even under streaming.
func DefaultExclusiveAblation() ExclusiveAblationConfig {
	return ExclusiveAblationConfig{
		Benchmarks:   []string{"bzip2", "libquantum", "mcf", "hmmer"},
		Instructions: 1_500_000,
		Warmup:       1_000_000,
		Return:       1848,
		Finish:       3440,
		Seed:         43,
	}
}

// ExclusiveAblationRow is one benchmark's comparison.
type ExclusiveAblationRow struct {
	Benchmark        string
	ExclusiveCycles  uint64
	InclusiveCycles  uint64
	InclusivePenalty float64 // inclusive / exclusive
}

// ExclusiveAblationResult holds the comparison.
type ExclusiveAblationResult struct {
	Config ExclusiveAblationConfig
	Rows   []ExclusiveAblationRow
}

// RunExclusiveAblation runs each benchmark under both write-back policies.
func RunExclusiveAblation(cfg ExclusiveAblationConfig) (*ExclusiveAblationResult, error) {
	res := &ExclusiveAblationResult{Config: cfg}
	coreCfg := cpu.Default()
	for _, name := range cfg.Benchmarks {
		prof := trace.ProfileByName(name)
		if prof == nil {
			return nil, fmt.Errorf("exp: unknown benchmark %q", name)
		}
		var cycles [2]uint64
		for i, inclusive := range []bool{false, true} {
			mem := &cpu.ORAMMemory{
				ReturnLat: cfg.Return, FinishLat: cfg.Finish,
				InclusiveWriteback: inclusive,
			}
			r, err := cpu.RunWithWarmup(coreCfg, prof.Generator(cfg.Seed), mem, cfg.Warmup, cfg.Instructions)
			if err != nil {
				return nil, err
			}
			cycles[i] = r.Cycles
		}
		res.Rows = append(res.Rows, ExclusiveAblationRow{
			Benchmark:        name,
			ExclusiveCycles:  cycles[0],
			InclusiveCycles:  cycles[1],
			InclusivePenalty: float64(cycles[1]) / float64(cycles[0]),
		})
	}
	return res, nil
}

// Table renders the exclusive-vs-inclusive ablation.
func (r *ExclusiveAblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation: exclusive vs inclusive ORAM (Section 3.3.1)",
		Header: []string{"benchmark", "exclusive cycles", "inclusive cycles", "inclusive penalty"},
		Note:   "inclusive ORAM pays a full path access per dirty LLC eviction",
	}
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark,
			fmt.Sprintf("%d", row.ExclusiveCycles),
			fmt.Sprintf("%d", row.InclusiveCycles),
			f2(row.InclusivePenalty))
	}
	return t
}

// EncryptionAblationRow compares bucket footprints per scheme analytically.
type EncryptionAblationRow struct {
	Z              int
	CounterBucket  int
	StrawmanBucket int
	CounterOH      float64 // access overhead, no dummies
	StrawmanOH     float64
}

// EncryptionAblationResult holds the Section 2.2 comparison.
type EncryptionAblationResult struct {
	LeafLevel int
	Rows      []EncryptionAblationRow
}

// RunEncryptionAblation evaluates the counter-vs-strawman bucket sizes at a
// representative data-ORAM shape (the 2Z overhead factor of Section 2.2.2).
func RunEncryptionAblation(wsBlocks uint64) *EncryptionAblationResult {
	res := &EncryptionAblationResult{}
	for _, z := range []int{1, 2, 3, 4, 8} {
		l, valid := treeFor(wsBlocks, 0.5, z)
		res.LeafLevel = l
		ctr := analysis.ORAMConfig{LeafLevel: l, Z: z, BlockBytes: 128,
			ValidBlocks: valid, Scheme: analysis.SchemeCounter}
		straw := ctr
		straw.Scheme = analysis.SchemeStrawman
		res.Rows = append(res.Rows, EncryptionAblationRow{
			Z:              z,
			CounterBucket:  ctr.BucketBytes(),
			StrawmanBucket: straw.BucketBytes(),
			CounterOH:      ctr.AccessOverhead(0),
			StrawmanOH:     straw.AccessOverhead(0),
		})
	}
	return res
}

// Table renders the encryption ablation.
func (r *EncryptionAblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation: randomized encryption schemes (Section 2.2)",
		Header: []string{"Z", "counter bucket B", "strawman bucket B", "counter overhead", "strawman overhead"},
		Note:   "counter scheme adds 64 bits per bucket; strawman adds 128 bits per block (2Z more)",
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Z),
			fmt.Sprintf("%d", row.CounterBucket), fmt.Sprintf("%d", row.StrawmanBucket),
			f1(row.CounterOH), f1(row.StrawmanOH))
	}
	return t
}

// StashAblationResult sweeps stash capacity C for one hierarchy setting.
type StashAblationResult struct {
	Setting  Setting
	Stashes  []int
	Rates    []float64
	StashKBs []float64
}

// RunStashAblation measures the dummy rate and on-chip cost across stash
// capacities (complementing Figure 7 at the hierarchy level).
func RunStashAblation(set Setting, wsBlocks uint64, accesses int, stashes []int, seed int64) (*StashAblationResult, error) {
	res := &StashAblationResult{Setting: set, Stashes: stashes}
	h, err := set.Hierarchy(1 << 25)
	if err != nil {
		return nil, err
	}
	for _, c := range stashes {
		rate, err := set.MeasureDummyRate(wsBlocks, c, accesses, seed)
		if err != nil {
			return nil, err
		}
		res.Rates = append(res.Rates, rate)
		res.StashKBs = append(res.StashKBs, float64(h.StashBits(c))/8/1024)
	}
	return res, nil
}

// Table renders the stash ablation.
func (r *StashAblationResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: stash capacity (%s)", r.Setting.Name),
		Header: []string{"C (blocks)", "dummy rate", "on-chip stash KB (paper scale)"},
		Note:   "the paper picks C=200 (Section 4.1.2)",
	}
	for i, c := range r.Stashes {
		t.AddRow(fmt.Sprintf("%d", c), f3(r.Rates[i]), f1(r.StashKBs[i]))
	}
	return t
}

// DRAMChannelScalingResult measures how ORAM latency scales with channels
// (extending Figure 11's 1/2/4 to 8).
type DRAMChannelScalingResult struct {
	Setting  string
	Channels []int
	Subtree  []float64
	Theory   []float64
}

// RunDRAMChannelScaling extends the channel sweep.
func RunDRAMChannelScaling(set Setting, wsBlocks uint64, channels []int, accesses int, seed int64) (*DRAMChannelScalingResult, error) {
	h, err := set.Hierarchy(wsBlocks)
	if err != nil {
		return nil, err
	}
	res := &DRAMChannelScalingResult{Setting: set.Name, Channels: channels}
	for _, ch := range channels {
		sim, err := newHierSim(h, ch, "subtree", seed)
		if err != nil {
			return nil, err
		}
		_, f := sim.measure(accesses, false)
		res.Subtree = append(res.Subtree, f)
		res.Theory = append(res.Theory, TheoreticalLatency(h, ch))
	}
	return res, nil
}

// Table renders the channel-scaling ablation.
func (r *DRAMChannelScalingResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: DRAM channel scaling (%s, subtree placement)", r.Setting),
		Header: []string{"channels", "latency (DRAM cyc)", "theoretical", "ratio"},
		Note:   "keeping many channels busy is the challenge Section 4.2 calls out",
	}
	for i, ch := range r.Channels {
		t.AddRow(fmt.Sprintf("%d", ch), f1(r.Subtree[i]), f1(r.Theory[i]),
			f2(r.Subtree[i]/r.Theory[i]))
	}
	return t
}

// dram import is used by RunDRAMChannelScaling indirectly through
// newHierSim; keep an explicit reference for clarity of dependencies.
var _ = dram.DDR3Micron
