package exp

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
)

// sweepPoint fills a metadata-only single ORAM to its valid-block count,
// then measures the steady-state DA/RA ratio under uniform random writes.
// infeasible is reported when the dummy budget is exhausted — the regime
// the paper describes as "so inefficient that we cannot finish 10*N
// accesses" (Section 4.1.3).
func sweepPoint(leafLevel, z int, validBlocks uint64, stash int, accesses int, seed int64, dummyBudget uint64) (rate float64, infeasible bool, err error) {
	p := core.Params{
		LeafLevel:          leafLevel,
		Z:                  z,
		Blocks:             validBlocks,
		StashCapacity:      stash,
		BackgroundEviction: true,
		MaxDummyRun:        1 << 16, // treat runaway drains as infeasible, not fatal
	}
	if p.EvictionThreshold() < 1 {
		return 0, true, nil // stash cannot even hold one path's worth
	}
	o, err := buildMetaORAM(p, seed)
	if err != nil {
		return 0, false, err
	}
	overBudget := func() bool { return o.Stats().DummyAccesses > dummyBudget }
	for b := uint64(0); b < validBlocks; b++ {
		if _, err := o.Access(b, core.OpWrite, nil); err != nil {
			if errors.Is(err, core.ErrLivelock) {
				return 0, true, nil
			}
			return 0, false, err
		}
		if overBudget() {
			return 0, true, nil
		}
	}
	o.ResetStats()
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < accesses; i++ {
		if _, err := o.Access(rng.Uint64()%validBlocks, core.OpWrite, nil); err != nil {
			if errors.Is(err, core.ErrLivelock) {
				return 0, true, nil
			}
			return 0, false, err
		}
		if overBudget() {
			return 0, true, nil
		}
	}
	return o.Stats().DummyPerReal(), false, nil
}

// Fig7Config parameterizes the dummy-ratio vs stash-size study.
type Fig7Config struct {
	WorkingSetBlocks uint64
	Utilization      float64
	Zs               []int
	StashSizes       []int
	AccessesPerBlock int
	Seed             int64
}

// DefaultFig7 returns the scaled defaults (paper: 4 GB ORAM, 2 GB working
// set, stash 100..800, Z=1..3).
func DefaultFig7() Fig7Config {
	return Fig7Config{
		WorkingSetBlocks: 1 << 14,
		Utilization:      0.5,
		Zs:               []int{1, 2, 3},
		StashSizes:       []int{100, 200, 400, 800},
		AccessesPerBlock: 10,
		Seed:             3,
	}
}

// Fig7Result holds DA/RA per (Z, stash size).
type Fig7Result struct {
	Config Fig7Config
	Ratio  map[int]map[int]float64 // [z][stash]
}

// RunFig7 measures the dummy/real ratio for each configuration.
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	res := &Fig7Result{Config: cfg, Ratio: map[int]map[int]float64{}}
	for _, z := range cfg.Zs {
		res.Ratio[z] = map[int]float64{}
		l, valid := treeFor(cfg.WorkingSetBlocks, cfg.Utilization, z)
		accesses := int(valid) * cfg.AccessesPerBlock
		for _, c := range cfg.StashSizes {
			rate, infeasible, err := sweepPoint(l, z, valid, c,
				accesses, cfg.Seed+int64(z*1000+c), uint64(accesses)*100)
			if err != nil {
				return nil, err
			}
			if infeasible {
				rate = -1
			}
			res.Ratio[z][c] = rate
		}
	}
	return res, nil
}

// Table renders Figure 7.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title:  "Figure 7: dummy accesses / real accesses vs stash size",
		Header: []string{"stash size"},
		Note: fmt.Sprintf("working set %d blocks at %.0f%% utilization",
			r.Config.WorkingSetBlocks, 100*r.Config.Utilization),
	}
	for _, z := range r.Config.Zs {
		t.Header = append(t.Header, fmt.Sprintf("Z=%d", z))
	}
	for _, c := range r.Config.StashSizes {
		row := []string{fmt.Sprintf("%d", c)}
		for _, z := range r.Config.Zs {
			row = append(row, f3(r.Ratio[z][c]))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig8Config parameterizes the utilization sweep.
type Fig8Config struct {
	WorkingSetBlocks uint64
	Utilizations     []float64
	Zs               []int
	Stash            int
	BlockBytes       int
	AccessesPerBlock int
	// DummyBudgetPerReal aborts hopeless configurations (the paper's
	// missing bars for Z=1 at >=67% and Z=2 at >=75%).
	DummyBudgetPerReal float64
	Seed               int64
}

// DefaultFig8 returns the scaled defaults.
func DefaultFig8() Fig8Config {
	return Fig8Config{
		WorkingSetBlocks:   1 << 14,
		Utilizations:       []float64{0.02, 0.05, 0.125, 0.25, 0.50, 0.67, 0.75, 0.80},
		Zs:                 []int{1, 2, 3, 4, 8},
		Stash:              200,
		BlockBytes:         128,
		AccessesPerBlock:   10,
		DummyBudgetPerReal: 50,
		Seed:               5,
	}
}

// Fig8Point is one measured configuration.
type Fig8Point struct {
	Z           int
	Utilization float64 // requested
	Achieved    float64 // after tree quantization
	LeafLevel   int
	DummyRate   float64
	Overhead    float64 // Equation 1
	Infeasible  bool
}

// Fig8Result holds the sweep.
type Fig8Result struct {
	Config Fig8Config
	Points []Fig8Point
}

// RunFig8 sweeps utilization for each Z and evaluates Equation 1 with the
// measured dummy rates.
func RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	res := &Fig8Result{Config: cfg}
	for _, z := range cfg.Zs {
		for _, u := range cfg.Utilizations {
			l, valid := treeFor(cfg.WorkingSetBlocks, u, z)
			accesses := int(valid) * cfg.AccessesPerBlock
			budget := uint64(float64(accesses) * cfg.DummyBudgetPerReal)
			ac := analysis.ORAMConfig{
				LeafLevel: l, Z: z, BlockBytes: cfg.BlockBytes,
				ValidBlocks: valid, Scheme: analysis.SchemeCounter,
			}
			pt := Fig8Point{Z: z, Utilization: u, Achieved: ac.Utilization(), LeafLevel: l}
			rate, infeasible, err := sweepPoint(l, z, valid, cfg.Stash,
				accesses, cfg.Seed+int64(z)*31+int64(u*1000), budget)
			if err != nil {
				return nil, err
			}
			if infeasible {
				pt.Infeasible = true
			} else {
				pt.DummyRate = rate
				pt.Overhead = ac.AccessOverhead(rate)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// Table renders Figure 8: access overhead by utilization and Z.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title:  "Figure 8: access overhead vs utilization (Equation 1)",
		Header: []string{"utilization"},
		Note:   "'-' marks configurations whose dummy-access budget exploded (paper: missing bars)",
	}
	for _, z := range r.Config.Zs {
		t.Header = append(t.Header, fmt.Sprintf("Z=%d", z))
	}
	for _, u := range r.Config.Utilizations {
		row := []string{fmt.Sprintf("%.1f%%", 100*u)}
		for _, z := range r.Config.Zs {
			pt := r.find(z, u)
			if pt == nil || pt.Infeasible {
				row = append(row, "-")
			} else {
				row = append(row, f1(pt.Overhead))
			}
		}
		t.AddRow(row...)
	}
	return t
}

func (r *Fig8Result) find(z int, u float64) *Fig8Point {
	for i := range r.Points {
		if r.Points[i].Z == z && r.Points[i].Utilization == u {
			return &r.Points[i]
		}
	}
	return nil
}

// Best returns the point with the lowest feasible overhead.
func (r *Fig8Result) Best() *Fig8Point {
	var best *Fig8Point
	for i := range r.Points {
		p := &r.Points[i]
		if p.Infeasible {
			continue
		}
		if best == nil || p.Overhead < best.Overhead {
			best = p
		}
	}
	return best
}

// Fig9Config parameterizes the capacity sweep at fixed utilization.
type Fig9Config struct {
	WorkingSets      []uint64 // blocks
	Utilization      float64
	Zs               []int
	Stash            int
	BlockBytes       int
	AccessesPerBlock int
	Seed             int64
}

// DefaultFig9 returns scaled defaults (paper: 1 MB .. 16 GB at 50%).
func DefaultFig9() Fig9Config {
	return Fig9Config{
		WorkingSets:      []uint64{1 << 10, 1 << 12, 1 << 14, 1 << 16},
		Utilization:      0.5,
		Zs:               []int{1, 2, 3, 4},
		Stash:            200,
		BlockBytes:       128,
		AccessesPerBlock: 10,
		Seed:             9,
	}
}

// Fig9Point is one measured capacity point.
type Fig9Point struct {
	Z          int
	WorkingSet uint64
	LeafLevel  int
	DummyRate  float64
	Overhead   float64
	Infeasible bool
}

// Fig9Result holds the sweep.
type Fig9Result struct {
	Config Fig9Config
	Points []Fig9Point
}

// RunFig9 sweeps ORAM capacity.
func RunFig9(cfg Fig9Config) (*Fig9Result, error) {
	res := &Fig9Result{Config: cfg}
	for _, ws := range cfg.WorkingSets {
		for _, z := range cfg.Zs {
			l, valid := treeFor(ws, cfg.Utilization, z)
			ac := analysis.ORAMConfig{
				LeafLevel: l, Z: z, BlockBytes: cfg.BlockBytes,
				ValidBlocks: valid, Scheme: analysis.SchemeCounter,
			}
			accesses := int(valid) * cfg.AccessesPerBlock
			rate, infeasible, err := sweepPoint(l, z, valid, cfg.Stash,
				accesses, cfg.Seed+int64(z)*7+int64(ws), uint64(accesses)*50)
			if err != nil {
				return nil, err
			}
			pt := Fig9Point{Z: z, WorkingSet: ws, LeafLevel: l, Infeasible: infeasible}
			if !infeasible {
				pt.DummyRate = rate
				pt.Overhead = ac.AccessOverhead(rate)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// Table renders Figure 9.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:  "Figure 9: access overhead vs capacity at fixed utilization",
		Header: []string{"working set (blocks)"},
		Note:   fmt.Sprintf("utilization %.0f%%, stash %d", 100*r.Config.Utilization, r.Config.Stash),
	}
	for _, z := range r.Config.Zs {
		t.Header = append(t.Header, fmt.Sprintf("Z=%d", z))
	}
	for _, ws := range r.Config.WorkingSets {
		row := []string{fmt.Sprintf("%d", ws)}
		for _, pt := range r.Points {
			if pt.WorkingSet == ws {
				if pt.Infeasible {
					row = append(row, "-")
				} else {
					row = append(row, f1(pt.Overhead))
				}
			}
		}
		t.AddRow(row...)
	}
	return t
}
