package exp

import (
	"math"
	"testing"
)

func TestSuperBlockAblation(t *testing.T) {
	cfg := DefaultSuperBlockAblation()
	cfg.SimWorkingSet = 1 << 12
	cfg.SimAccesses = 1 << 13
	res, err := RunSuperBlockAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	find := func(z, s int) *SuperBlockAblationRow {
		for i := range res.Rows {
			if res.Rows[i].DataZ == z && res.Rows[i].Size == s {
				return &res.Rows[i]
			}
		}
		return nil
	}
	// |S|=2 at Z=4 must be a clear win on a streaming workload
	// (the paper's chosen Figure 12 configuration).
	z4s2 := find(4, 2)
	if z4s2 == nil || z4s2.NetSpeedup <= 1.1 {
		t.Errorf("DZ4 |S|=2 speedup %v, want > 1.1", z4s2)
	}
	if z4s2.MissRatio > 0.65 {
		t.Errorf("DZ4 |S|=2 miss ratio %.2f, want ~0.5", z4s2.MissRatio)
	}
	// Dummy rate must be monotone in |S| for fixed Z.
	for _, z := range cfg.DataZs {
		prev := -1.0
		for _, s := range cfg.Sizes {
			row := find(z, s)
			if row == nil {
				t.Fatalf("missing row Z=%d S=%d", z, s)
			}
			if row.DummyRate < prev {
				t.Errorf("Z=%d: dummy rate not monotone in |S|", z)
			}
			prev = row.DummyRate
		}
	}
	_ = res.Table().String()
}

func TestExclusiveAblation(t *testing.T) {
	cfg := DefaultExclusiveAblation()
	cfg.Benchmarks = []string{"mcf", "hmmer"}
	cfg.Instructions = 400_000
	cfg.Warmup = 400_000
	res, err := RunExclusiveAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.InclusivePenalty < 0.999 {
			t.Errorf("%s: inclusive faster than exclusive (%.3f)?", row.Benchmark, row.InclusivePenalty)
		}
	}
	// mcf writes enough to show a real penalty.
	if res.Rows[0].Benchmark != "mcf" || res.Rows[0].InclusivePenalty < 1.02 {
		t.Errorf("mcf inclusive penalty %.3f, want > 1.02", res.Rows[0].InclusivePenalty)
	}
	_ = res.Table().String()
}

func TestEncryptionAblation(t *testing.T) {
	res := RunEncryptionAblation(1 << 20)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.StrawmanBucket < row.CounterBucket {
			t.Errorf("Z=%d: strawman bucket %d smaller than counter %d",
				row.Z, row.StrawmanBucket, row.CounterBucket)
		}
		if row.StrawmanOH < row.CounterOH {
			t.Errorf("Z=%d: strawman overhead below counter", row.Z)
		}
	}
	// At large Z the padding can no longer hide the 16B/block premium.
	last := res.Rows[len(res.Rows)-1]
	if last.StrawmanBucket == last.CounterBucket {
		t.Errorf("Z=%d buckets identical; expected strawman premium", last.Z)
	}
	_ = res.Table().String()
}

func TestStashAblationMonotone(t *testing.T) {
	res, err := RunStashAblation(DZ3Pb32SB, 1<<12, 1<<13, []int{120, 200, 400}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rates); i++ {
		if res.Rates[i] > res.Rates[i-1]+1e-9 {
			t.Errorf("dummy rate not non-increasing in C: %v", res.Rates)
		}
	}
	for i := 1; i < len(res.StashKBs); i++ {
		if res.StashKBs[i] <= res.StashKBs[i-1] {
			t.Errorf("stash KB not increasing in C: %v", res.StashKBs)
		}
	}
	_ = res.Table().String()
}

func TestDRAMChannelScaling(t *testing.T) {
	res, err := RunDRAMChannelScaling(DZ3Pb32, 1<<20, []int{1, 2, 4}, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Subtree); i++ {
		if res.Subtree[i] >= res.Subtree[i-1] {
			t.Errorf("latency not decreasing with channels: %v", res.Subtree)
		}
	}
	// Efficiency (ratio to theory) degrades as channels grow — the
	// Section 4.2 "keep all channels busy" challenge.
	first := res.Subtree[0] / res.Theory[0]
	lastIdx := len(res.Subtree) - 1
	last := res.Subtree[lastIdx] / res.Theory[lastIdx]
	if last < first {
		t.Errorf("channel efficiency improved with more channels (%.2f -> %.2f)?", first, last)
	}
	if math.IsNaN(first) || math.IsNaN(last) {
		t.Error("NaN ratios")
	}
	_ = res.Table().String()
}

func TestSettingOrderingAndPlacement(t *testing.T) {
	if BaseORAM.PlacementStrategy() != "naive" || !BaseORAM.SequentialOrder {
		t.Error("baseORAM must predate the placement and ordering optimizations")
	}
	if DZ3Pb32.PlacementStrategy() != "subtree" || DZ3Pb32.SequentialOrder {
		t.Error("optimized settings must use subtree placement and pipelined order")
	}
}
