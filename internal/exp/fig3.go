package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/stats"
)

// Fig3Config parameterizes the stash-occupancy study (Figure 3): an ORAM
// with an infinite stash and no background eviction, filled to the target
// utilization and then sampled after every access. The paper uses a 4 GB
// ORAM with a 2 GB working set; occupancy distributions depend on Z and
// utilization, not absolute capacity, so the default is scaled down.
type Fig3Config struct {
	WorkingSetBlocks uint64
	Utilization      float64
	Zs               []int
	// AccessesPerBlock: the paper simulates 10*N accesses.
	AccessesPerBlock int
	Thresholds       []int
	Seed             int64
}

// DefaultFig3 returns the scaled default configuration.
func DefaultFig3() Fig3Config {
	return Fig3Config{
		WorkingSetBlocks: 1 << 15,
		Utilization:      0.5,
		Zs:               []int{1, 2, 3, 4},
		AccessesPerBlock: 10,
		Thresholds:       []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000},
		Seed:             1,
	}
}

// Fig3Result carries the per-Z occupancy histograms.
type Fig3Result struct {
	Config     Fig3Config
	Histograms map[int]*stats.Histogram // by Z
	Valid      map[int]uint64           // realized working set per Z
}

// RunFig3 fills each ORAM, then samples stash occupancy after every access.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	res := &Fig3Result{
		Config:     cfg,
		Histograms: map[int]*stats.Histogram{},
		Valid:      map[int]uint64{},
	}
	for _, z := range cfg.Zs {
		leafLevel, valid := treeFor(cfg.WorkingSetBlocks, cfg.Utilization, z)
		h := stats.NewHistogram(1 << 16)
		measuring := false
		p := core.Params{
			LeafLevel:     leafLevel,
			Z:             z,
			Blocks:        valid,
			StashCapacity: 0, // infinite stash
			AfterAccess: func(n int, kind core.AccessKind) {
				if measuring {
					h.Observe(n)
				}
			},
		}
		o, err := buildMetaORAM(p, cfg.Seed+int64(z))
		if err != nil {
			return nil, err
		}
		for b := uint64(0); b < valid; b++ {
			if _, err := o.Access(b, core.OpWrite, nil); err != nil {
				return nil, err
			}
		}
		measuring = true
		rng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(z)))
		n := int(valid) * cfg.AccessesPerBlock
		for i := 0; i < n; i++ {
			if _, err := o.Access(rng.Uint64()%valid, core.OpWrite, nil); err != nil {
				return nil, err
			}
		}
		res.Histograms[z] = h
		res.Valid[z] = valid
	}
	return res, nil
}

// Table renders P(stash occupancy >= m) per Z, the quantity Figure 3 plots.
func (r *Fig3Result) Table() *Table {
	t := &Table{
		Title:  "Figure 3: P(blocks in stash >= m), infinite stash, no background eviction",
		Header: []string{"m"},
		Note: fmt.Sprintf("~%d-block working set at %.0f%% utilization, %d accesses per block, steady state",
			r.Config.WorkingSetBlocks, 100*r.Config.Utilization, r.Config.AccessesPerBlock),
	}
	for _, z := range r.Config.Zs {
		t.Header = append(t.Header, fmt.Sprintf("Z=%d", z))
	}
	for _, m := range r.Config.Thresholds {
		row := []string{fmt.Sprintf("%d", m)}
		for _, z := range r.Config.Zs {
			row = append(row, sci(r.Histograms[z].TailProb(m)))
		}
		t.AddRow(row...)
	}
	return t
}

// buildMetaORAM wires a metadata-only ORAM with an on-chip map.
func buildMetaORAM(p core.Params, seed int64) (*core.ORAM, error) {
	store, err := core.NewMemStore(p.LeafLevel, p.Z, 0)
	if err != nil {
		return nil, err
	}
	src := core.NewMathLeafSource(rand.New(rand.NewSource(seed)))
	pos, err := core.NewOnChipPositionMap(p.Groups(), 1<<uint(p.LeafLevel), src)
	if err != nil {
		return nil, err
	}
	return core.New(p, store, pos, src)
}
