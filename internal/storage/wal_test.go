package storage_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// walFixture writes n random single-path frames (3 buckets each) through
// a WAL over a file backend without checkpointing, and returns the paths
// plus a mem shadow holding what was acknowledged.
func walFixture(t *testing.T, dir string, numBuckets uint64, stride, frames int, seed int64) (tree, wal string, shadow *storage.Mem) {
	t.Helper()
	tree = filepath.Join(dir, "tree.oram")
	wal = filepath.Join(dir, "tree.wal")
	inner, err := storage.OpenFile(tree, numBuckets, stride)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.OpenWAL(inner, wal, storage.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	shadow = mustMem(t, numBuckets, stride)
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < frames; i++ {
		flats := make([]uint64, 3)
		recs := make([][]byte, 3)
		for j := range flats {
			flats[j] = uint64(r.Intn(int(numBuckets)))
			recs[j] = make([]byte, stride)
			fillRand(r, recs[j])
		}
		if err := w.WriteBuckets(flats, recs); err != nil {
			t.Fatal(err)
		}
		if err := shadow.WriteBuckets(flats, recs); err != nil {
			t.Fatal(err)
		}
	}
	// Simulated crash: drop the WAL without checkpointing. The log file
	// keeps the appended frames; the tree file keeps only the (empty)
	// checkpoint image.
	return tree, wal, shadow
}

func requireSameBytes(t *testing.T, s storage.Storage, shadow *storage.Mem) {
	t.Helper()
	for flat := uint64(0); flat < s.NumBuckets(); flat++ {
		a, err := s.ReadBucket(flat)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := shadow.ReadBucket(flat)
		if !bytes.Equal(a, b) {
			t.Fatalf("bucket %d differs from shadow", flat)
		}
	}
}

// TestWALRecoveryReplaysAcknowledgedFrames pins log-before-ack: frames
// acknowledged but never checkpointed must reappear after a reopen.
func TestWALRecoveryReplaysAcknowledgedFrames(t *testing.T) {
	const (
		numBuckets = 15
		stride     = 64
		frames     = 40
	)
	tree, wal, shadow := walFixture(t, t.TempDir(), numBuckets, stride, frames, 3)

	inner, err := storage.OpenFile(tree, numBuckets, stride)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.OpenWAL(inner, wal, storage.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.Recovered(); got != frames {
		t.Fatalf("recovered %d frames, want %d", got, frames)
	}
	requireSameBytes(t, w, shadow)
	// Recovery checkpointed: the log must be empty again.
	if st, err := os.Stat(wal); err != nil || st.Size() != 0 {
		t.Fatalf("log not truncated after recovery: size=%v err=%v", st.Size(), err)
	}
}

// TestWALTornTailRecovery truncates the log at every prefix length and
// requires recovery to replay exactly the longest valid frame prefix —
// never an error, never a partial frame.
func TestWALTornTailRecovery(t *testing.T) {
	const (
		numBuckets = 15
		stride     = 64
		frames     = 8
	)
	dir := t.TempDir()
	_, wal, _ := walFixture(t, dir, numBuckets, stride, frames, 5)
	logBytes, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(logBytes) / frames
	if frameLen*frames != len(logBytes) {
		t.Fatalf("unexpected log size %d for %d frames", len(logBytes), frames)
	}
	for cut := 0; cut <= len(logBytes); cut++ {
		tornPath := filepath.Join(dir, fmt.Sprintf("torn-%d.wal", cut))
		if err := os.WriteFile(tornPath, logBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		applied := 0
		n, err := storage.ReplayLog(tornPath, stride, func(flats []uint64, recs [][]byte) error {
			applied++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if want := cut / frameLen; n != want || applied != want {
			t.Fatalf("cut %d: replayed %d frames, want %d", cut, n, want)
		}
		os.Remove(tornPath)
	}
}

// TestWALCorruptTailStopsReplay flips a byte in the last frame and
// requires replay to stop right before it.
func TestWALCorruptTailStopsReplay(t *testing.T) {
	const (
		numBuckets = 15
		stride     = 64
		frames     = 6
	)
	dir := t.TempDir()
	_, wal, _ := walFixture(t, dir, numBuckets, stride, frames, 9)
	logBytes, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(logBytes) / frames
	logBytes[(frames-1)*frameLen+frameLen/2] ^= 0xff
	if err := os.WriteFile(wal, logBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := storage.ReplayLog(wal, stride, func([]uint64, [][]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != frames-1 {
		t.Fatalf("replayed %d frames, want %d", n, frames-1)
	}
}

// TestWALCheckpointTruncatesAndPersists pins the epoch protocol: after
// Sync the log is empty, the overlay is drained into the inner file, and
// a plain reopen of the tree file (no WAL) sees the bytes.
func TestWALCheckpointTruncatesAndPersists(t *testing.T) {
	const (
		numBuckets = 15
		stride     = 64
	)
	dir := t.TempDir()
	tree := filepath.Join(dir, "tree.oram")
	wal := filepath.Join(dir, "tree.wal")
	inner, err := storage.OpenFile(tree, numBuckets, stride)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.OpenWAL(inner, wal, storage.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	shadow := mustMem(t, numBuckets, stride)
	r := rand.New(rand.NewSource(11))
	rec := make([]byte, stride)
	for i := 0; i < 30; i++ {
		flat := uint64(r.Intn(numBuckets))
		fillRand(r, rec)
		if err := w.WriteBucket(flat, rec); err != nil {
			t.Fatal(err)
		}
		shadow.WriteBucket(flat, rec)
	}
	if w.PendingFrames() == 0 {
		t.Fatal("expected pending frames before checkpoint")
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.PendingFrames() != 0 {
		t.Fatal("pending frames survived checkpoint")
	}
	if st, err := os.Stat(wal); err != nil || st.Size() != 0 {
		t.Fatalf("log not truncated: size=%v err=%v", st.Size(), err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := storage.OpenFile(tree, numBuckets, stride)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	requireSameBytes(t, re, shadow)
}

// TestWALAutoCheckpoint pins CheckpointEvery: the overlay self-bounds.
func TestWALAutoCheckpoint(t *testing.T) {
	const (
		numBuckets = 15
		stride     = 64
	)
	dir := t.TempDir()
	inner, err := storage.OpenFile(filepath.Join(dir, "t.oram"), numBuckets, stride)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.OpenWAL(inner, filepath.Join(dir, "t.wal"), storage.WALConfig{CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rec := make([]byte, stride)
	for i := 0; i < 10; i++ {
		if err := w.WriteBucket(uint64(i%numBuckets), rec); err != nil {
			t.Fatal(err)
		}
		if w.PendingFrames() >= 4 {
			t.Fatalf("after write %d: %d pending frames, checkpoint at 4 never fired", i, w.PendingFrames())
		}
	}
}

// TestWALFaultWedges pins the crash simulation: once the fault hook
// fires, the faulted step does not happen and every later operation
// fails with the same error.
func TestWALFaultWedges(t *testing.T) {
	const (
		numBuckets = 15
		stride     = 64
	)
	dir := t.TempDir()
	inner, err := storage.OpenFile(filepath.Join(dir, "t.oram"), numBuckets, stride)
	if err != nil {
		t.Fatal(err)
	}
	killAt := uint64(3)
	boom := fmt.Errorf("boom")
	w, err := storage.OpenWAL(inner, filepath.Join(dir, "t.wal"), storage.WALConfig{
		Fault: func(op storage.Op, seq uint64) error {
			if seq >= killAt {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, stride)
	var firstErr error
	for i := 0; i < 6; i++ {
		if err := w.WriteBucket(uint64(i), rec); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("fault never fired")
	}
	if err := w.WriteBucket(0, rec); err == nil {
		t.Fatal("wedged WAL accepted a write")
	}
	if _, err := w.ReadBucket(0); err == nil {
		t.Fatal("wedged WAL served a read")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("wedged WAL accepted a sync")
	}
	if err := w.Close(); err == nil {
		t.Fatal("wedged WAL closed cleanly")
	}
}
