package storage

import (
	"fmt"
	"io"
)

// Mem is the in-memory Storage: one flat arena, stride bytes per bucket.
// It is the zero-overhead backing for the encrypting store's hot path —
// reads alias the arena and writes are a bounds-checked copy, so the
// seam adds no per-operation allocations.
type Mem struct {
	numBuckets uint64
	stride     int
	arena      []byte
	closed     bool
}

// NewMem allocates a zeroed arena for numBuckets records of stride bytes.
func NewMem(numBuckets uint64, stride int) (*Mem, error) {
	if numBuckets == 0 || stride <= 0 {
		return nil, fmt.Errorf("storage: bad geometry (%d buckets, stride %d)", numBuckets, stride)
	}
	return &Mem{
		numBuckets: numBuckets,
		stride:     stride,
		arena:      make([]byte, numBuckets*uint64(stride)),
	}, nil
}

// NumBuckets implements Storage.
func (m *Mem) NumBuckets() uint64 { return m.numBuckets }

// Stride implements Storage.
func (m *Mem) Stride() int { return m.stride }

// ReadBucket implements Storage; the returned slice aliases the arena.
func (m *Mem) ReadBucket(flat uint64) ([]byte, error) {
	if m.closed {
		return nil, ErrClosed
	}
	if err := checkRecord(m, flat, nil); err != nil {
		return nil, err
	}
	off := flat * uint64(m.stride)
	return m.arena[off : off+uint64(m.stride) : off+uint64(m.stride)], nil
}

// WriteBucket implements Storage; rec is copied in.
func (m *Mem) WriteBucket(flat uint64, rec []byte) error {
	if m.closed {
		return ErrClosed
	}
	if err := checkRecord(m, flat, rec); err != nil {
		return err
	}
	copy(m.arena[flat*uint64(m.stride):], rec)
	return nil
}

// ReadBuckets implements Storage; dst[i] receives an arena alias.
func (m *Mem) ReadBuckets(flats []uint64, dst [][]byte) error {
	if m.closed {
		return ErrClosed
	}
	if len(flats) != len(dst) {
		return fmt.Errorf("storage: %d flats but %d dst slots", len(flats), len(dst))
	}
	for i, flat := range flats {
		if err := checkRecord(m, flat, nil); err != nil {
			return err
		}
		off := flat * uint64(m.stride)
		dst[i] = m.arena[off : off+uint64(m.stride) : off+uint64(m.stride)]
	}
	return nil
}

// WriteBuckets implements Storage; records are copied in.
func (m *Mem) WriteBuckets(flats []uint64, recs [][]byte) error {
	if m.closed {
		return ErrClosed
	}
	if len(flats) != len(recs) {
		return fmt.Errorf("storage: %d flats but %d records", len(flats), len(recs))
	}
	for i, flat := range flats {
		if err := checkRecord(m, flat, recs[i]); err != nil {
			return err
		}
		copy(m.arena[flat*uint64(m.stride):], recs[i])
	}
	return nil
}

// Sync implements Storage (a no-op: the arena is always "durable" for the
// lifetime of the process).
func (m *Mem) Sync() error {
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Storage. Closing twice is allowed.
func (m *Mem) Close() error {
	m.closed = true
	return nil
}

// MemoryBytes implements Storage.
func (m *Mem) MemoryBytes() uint64 { return uint64(len(m.arena)) }

// Fill overwrites every record with bytes from r (test/simulation hook
// mirroring encrypt.StoreConfig.RandomizeMemory).
func (m *Mem) Fill(r io.Reader) error {
	if m.closed {
		return ErrClosed
	}
	_, err := io.ReadFull(r, m.arena)
	return err
}
