package storage_test

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/treemath"
)

func fillRand(r *rand.Rand, b []byte) {
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
}

// TestStorageMemFileEquivalence drives the same random write/read
// sequence through the arena and the file backend and requires identical
// records, then reopens the file and requires the bytes to have
// persisted.
func TestStorageMemFileEquivalence(t *testing.T) {
	const (
		numBuckets = 31
		stride     = 128
	)
	dir := t.TempDir()
	mem, err := storage.NewMem(numBuckets, stride)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "tree.oram")
	file, err := storage.OpenFile(path, numBuckets, stride)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	rec := make([]byte, stride)
	for i := 0; i < 500; i++ {
		flat := uint64(r.Intn(numBuckets))
		fillRand(r, rec)
		if err := mem.WriteBucket(flat, rec); err != nil {
			t.Fatal(err)
		}
		if err := file.WriteBucket(flat, rec); err != nil {
			t.Fatal(err)
		}
	}
	for flat := uint64(0); flat < numBuckets; flat++ {
		a, err := mem.ReadBucket(flat)
		if err != nil {
			t.Fatal(err)
		}
		b, err := file.ReadBucket(flat)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("bucket %d differs between mem and file", flat)
		}
	}
	if err := file.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	if err := file.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	re, err := storage.OpenFile(path, numBuckets, stride)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for flat := uint64(0); flat < numBuckets; flat++ {
		a, _ := mem.ReadBucket(flat)
		b, err := re.ReadBucket(flat)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("bucket %d lost across reopen", flat)
		}
	}
}

// TestStorageFileGeometryValidation pins the header checks: a reopen
// with the wrong stride, bucket count, or magic must fail loudly.
func TestStorageFileGeometryValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.oram")
	f, err := storage.OpenFile(path, 15, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.OpenFile(path, 15, 128); err == nil {
		t.Fatal("stride mismatch not rejected")
	}
	if _, err := storage.OpenFile(path, 31, 64); err == nil {
		t.Fatal("bucket-count mismatch not rejected")
	}
	if _, err := storage.OpenFile(path, 15, 63); err == nil {
		t.Fatal("unaligned stride not rejected")
	}
}

// TestStorageBatchedVariants pins the path-granularity calls and the
// bounds checks shared by every backend.
func TestStorageBatchedVariants(t *testing.T) {
	backends := map[string]storage.Storage{}
	mem, err := storage.NewMem(7, 64)
	if err != nil {
		t.Fatal(err)
	}
	backends["mem"] = mem
	file, err := storage.OpenFile(filepath.Join(t.TempDir(), "t.oram"), 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	backends["file"] = file
	wal, err := storage.OpenWAL(mustMem(t, 7, 64), filepath.Join(t.TempDir(), "t.wal"), storage.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	backends["wal"] = wal
	for name, s := range backends {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			flats := []uint64{0, 2, 6}
			recs := make([][]byte, len(flats))
			r := rand.New(rand.NewSource(7))
			for i := range recs {
				recs[i] = make([]byte, 64)
				fillRand(r, recs[i])
			}
			if err := s.WriteBuckets(flats, recs); err != nil {
				t.Fatal(err)
			}
			dst := make([][]byte, len(flats))
			if err := s.ReadBuckets(flats, dst); err != nil {
				t.Fatal(err)
			}
			for i := range flats {
				if !bytes.Equal(dst[i], recs[i]) {
					t.Fatalf("bucket %d round-trip mismatch", flats[i])
				}
			}
			if err := s.WriteBucket(7, recs[0]); err == nil {
				t.Fatal("out-of-range bucket accepted")
			}
			if err := s.WriteBucket(0, recs[0][:10]); err == nil {
				t.Fatal("short record accepted")
			}
			if _, err := s.ReadBucket(7); err == nil {
				t.Fatal("out-of-range read accepted")
			}
			if err := s.WriteBuckets(flats, recs[:2]); err == nil {
				t.Fatal("length-mismatched batch accepted")
			}
		})
	}
}

func mustMem(t *testing.T, buckets uint64, stride int) *storage.Mem {
	t.Helper()
	m, err := storage.NewMem(buckets, stride)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStoragePathStoreMatchesMemStore replays a random path workload
// through the plain serializing adapter (over mem and file backings) and
// core.MemStore and requires identical ReadPath results throughout —
// the adapter is a drop-in PathStore.
func TestStoragePathStoreMatchesMemStore(t *testing.T) {
	const (
		leafLevel  = 4
		z          = 4
		blockBytes = 24
	)
	tree := treemath.New(leafLevel)
	ref, err := core.NewMemStore(leafLevel, z, blockBytes)
	if err != nil {
		t.Fatal(err)
	}
	stride := storage.PlainRecordBytes(z, blockBytes)
	adapters := map[string]*storage.PathStore{}
	memBack := mustMem(t, tree.NumBuckets(), stride)
	a1, err := storage.NewPathStore(memBack, leafLevel, z, blockBytes)
	if err != nil {
		t.Fatal(err)
	}
	adapters["mem"] = a1
	fileBack, err := storage.OpenFile(filepath.Join(t.TempDir(), "p.oram"), tree.NumBuckets(), stride)
	if err != nil {
		t.Fatal(err)
	}
	defer fileBack.Close()
	a2, err := storage.NewPathStore(fileBack, leafLevel, z, blockBytes)
	if err != nil {
		t.Fatal(err)
	}
	adapters["file"] = a2

	r := rand.New(rand.NewSource(42))
	leaves := tree.NumLeaves()
	var nextAddr uint64 = 1
	for step := 0; step < 300; step++ {
		leaf := uint64(r.Intn(int(leaves)))
		got, err := ref.ReadPath(leaf, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		snapshots := map[string][][]core.Slot{}
		for name, a := range adapters {
			g, err := a.ReadPath(leaf, nil, nil)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			snapshots[name] = g
		}
		for name, g := range snapshots {
			if len(g) != len(got) {
				t.Fatalf("%s: level count mismatch", name)
			}
			for d := range got {
				if len(g[d]) != len(got[d]) {
					t.Fatalf("%s: step %d level %d: %d slots, want %d", name, step, d, len(g[d]), len(got[d]))
				}
				for i := range got[d] {
					if g[d][i].Addr != got[d][i].Addr || g[d][i].Leaf != got[d][i].Leaf || !bytes.Equal(g[d][i].Data, got[d][i].Data) {
						t.Fatalf("%s: step %d level %d slot %d mismatch", name, step, d, i)
					}
				}
			}
		}
		// Write a fresh random path back everywhere.
		buckets := make([][]core.Slot, tree.Levels())
		for d := range buckets {
			n := r.Intn(z + 1)
			for i := 0; i < n; i++ {
				data := make([]byte, blockBytes)
				fillRand(r, data)
				buckets[d] = append(buckets[d], core.Slot{Addr: nextAddr, Leaf: uint32(leaf), Data: data})
				nextAddr++
			}
		}
		if err := ref.WritePath(leaf, buckets); err != nil {
			t.Fatal(err)
		}
		for name, a := range adapters {
			if err := a.WritePath(leaf, buckets); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}
