package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/treemath"
)

// slotHeaderBytes is the byte-aligned per-slot header shared with the
// encrypting store's serialization: 8-byte address stored as Addr+1 (0
// marks a dummy slot, so a zero-filled fresh file or arena decodes as an
// all-dummy tree) plus a 4-byte leaf label.
const slotHeaderBytes = 12

// PlainRecordBytes returns the Storage stride for a plaintext-at-rest
// bucket of z slots: serialized slots padded to node alignment.
func PlainRecordBytes(z, blockBytes int) int {
	raw := z * (slotHeaderBytes + blockBytes)
	if r := raw % RecordAlign; r != 0 {
		raw += RecordAlign - r
	}
	return raw
}

// PathStore adapts a Storage to core.PathStore with plaintext
// serialization — the Backend(file) x Encrypt(none) configurations,
// where durability is wanted without encryption at rest. It mirrors
// core.MemStore's ownership contract: WritePath copies payloads into the
// backing, ReadPath emits Slot.Data slices that alias backing records
// and stay valid only until the next operation on this store.
type PathStore struct {
	backing    Storage
	tree       treemath.Tree
	z          int
	blockBytes int

	// Reusable per-path scratch, sized once at construction.
	idsBuf  []uint64
	recRefs [][]byte
	wrecs   [][]byte
}

// NewPathStore builds the adapter; the backing's geometry must match
// PlainRecordBytes for the tree shape.
func NewPathStore(backing Storage, leafLevel, z, blockBytes int) (*PathStore, error) {
	if z < 1 {
		return nil, fmt.Errorf("storage: Z=%d must be >= 1", z)
	}
	if blockBytes < 1 {
		return nil, fmt.Errorf("storage: serialized stores need payloads (BlockBytes >= 1)")
	}
	tree := treemath.New(leafLevel)
	stride := PlainRecordBytes(z, blockBytes)
	if backing.NumBuckets() != tree.NumBuckets() || backing.Stride() != stride {
		return nil, fmt.Errorf("storage: backing geometry (%d buckets, stride %d) does not match tree (%d buckets, stride %d)",
			backing.NumBuckets(), backing.Stride(), tree.NumBuckets(), stride)
	}
	s := &PathStore{
		backing:    backing,
		tree:       tree,
		z:          z,
		blockBytes: blockBytes,
		idsBuf:     make([]uint64, tree.Levels()),
		recRefs:    make([][]byte, tree.Levels()),
		wrecs:      make([][]byte, tree.Levels()),
	}
	arena := make([]byte, tree.Levels()*stride)
	for d := range s.wrecs {
		s.wrecs[d] = arena[d*stride : (d+1)*stride : (d+1)*stride]
	}
	return s, nil
}

// ReadPath implements core.PathStore.
func (s *PathStore) ReadPath(leaf uint64, skip []bool, dst [][]core.Slot) ([][]core.Slot, error) {
	var err error
	if dst, err = core.PrepareReadBuf(dst, s.tree.Levels()); err != nil {
		return dst, err
	}
	if !s.tree.ValidLeaf(leaf) {
		return dst, fmt.Errorf("storage: leaf %d out of range", leaf)
	}
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		s.idsBuf[d] = s.tree.PathBucket(leaf, d)
	}
	if err := s.backing.ReadBuckets(s.idsBuf, s.recRefs); err != nil {
		return dst, err
	}
	slotBytes := slotHeaderBytes + s.blockBytes
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		if skip != nil && skip[d] {
			// Live content is in the caller's pending write-back.
			continue
		}
		for i := 0; i < s.z; i++ {
			rec := s.recRefs[d][i*slotBytes : (i+1)*slotBytes]
			addr1 := binary.LittleEndian.Uint64(rec[:8])
			if addr1 == 0 {
				continue // dummy slot
			}
			dst[d] = append(dst[d], core.Slot{
				Addr: addr1 - 1,
				Leaf: binary.LittleEndian.Uint32(rec[8:12]),
				Data: rec[slotHeaderBytes:slotBytes:slotBytes],
			})
		}
	}
	return dst, nil
}

// WritePath implements core.PathStore.
func (s *PathStore) WritePath(leaf uint64, buckets [][]core.Slot) error {
	if !s.tree.ValidLeaf(leaf) {
		return fmt.Errorf("storage: leaf %d out of range", leaf)
	}
	if len(buckets) != s.tree.Levels() {
		return fmt.Errorf("storage: got %d buckets, want %d", len(buckets), s.tree.Levels())
	}
	slotBytes := slotHeaderBytes + s.blockBytes
	for d := 0; d <= s.tree.LeafLevel(); d++ {
		if len(buckets[d]) > s.z {
			return fmt.Errorf("storage: bucket at level %d overfull (%d > %d)", d, len(buckets[d]), s.z)
		}
		s.idsBuf[d] = s.tree.PathBucket(leaf, d)
		rec := s.wrecs[d]
		for i := 0; i < s.z; i++ {
			slot := rec[i*slotBytes : (i+1)*slotBytes]
			if i < len(buckets[d]) {
				b := buckets[d][i]
				binary.LittleEndian.PutUint64(slot[:8], b.Addr+1)
				binary.LittleEndian.PutUint32(slot[8:12], b.Leaf)
				if len(b.Data) != s.blockBytes {
					return fmt.Errorf("storage: block %d payload %dB, want %dB", b.Addr, len(b.Data), s.blockBytes)
				}
				copy(slot[slotHeaderBytes:], b.Data)
			} else {
				for j := range slot {
					slot[j] = 0
				}
			}
		}
	}
	return s.backing.WriteBuckets(s.idsBuf, s.wrecs)
}

// MemoryBytes reports the backing's external-memory footprint.
func (s *PathStore) MemoryBytes() uint64 { return s.backing.MemoryBytes() }
