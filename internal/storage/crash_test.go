package storage_test

// Full-stack crash-recovery property suite: a real client stack —
// core.ORAM with deferred write-back, over the encrypting store, over a
// WAL-wrapped mmap'd tree file — is killed at fuzzed points through the
// WAL's fault-injection hook, and the recovered tree is checked against
// an independently maintained shadow of exactly the writes the stack
// acknowledged. Everything is seeded, so the synchronous file-only run
// is a byte-exact reference for the fully flushed asynchronous one.
//
// The crash model (WALConfig.Fault): the faulted step does not happen
// and the WAL wedges. With SyncAppends off — the mode under test — the
// only fault point inside WriteBuckets before acknowledgment is the
// frame append itself, so after a kill the durable state is exactly
//
//	(acknowledged writes)                    if the kill hit OpAppend,
//	(acknowledged writes) + (failed frame)   if it hit a checkpoint step
//
// — the second case is the classic ambiguity of a failed write that was
// already logged (an auto-checkpoint failing inside WriteBuckets). The
// suite asserts the recovered bytes equal the deterministic expectation
// for the observed kill, not merely one of several allowed outcomes.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/encrypt"
	"repro/internal/storage"
	"repro/internal/treemath"
)

const (
	crashLeafLevel  = 4 // 31 buckets, 16 leaves — small enough to fuzz many kills
	crashZ          = 4
	crashBlockBytes = 16
	crashBlocks     = 40
	crashOps        = 60
	crashCkptEvery  = 8 // auto-checkpoints interleave with appends mid-run
	crashDeferred   = 3 // small queue: inline completions mix into the stream
	crashSeed       = 0x7e57_0a11
)

var crashKey = bytes.Repeat([]byte{0x5A}, encrypt.KeySize)

// crashStack is one assembled client stack over a file (+ optional WAL).
type crashStack struct {
	oram     *core.ORAM
	backing  storage.Storage // what the encrypting store writes through
	wal      *storage.WAL    // nil for the file-only reference
	rec      *ackRecorder    // nil unless shadow recording was requested
	treePath string
	logPath  string
}

// ackRecorder sits between the encrypting store and the WAL and mirrors
// every acknowledged write into a shadow Mem — the ground truth for
// "state the client was promised" at any kill point. The first failed
// write is kept separately: it is the only frame that may have reached
// the log without being acknowledged.
type ackRecorder struct {
	storage.Storage
	shadow      *storage.Mem
	ackedFrames int
	failedFlats []uint64
	failedRecs  [][]byte
	failed      bool
}

func (a *ackRecorder) WriteBucket(flat uint64, rec []byte) error {
	return a.WriteBuckets([]uint64{flat}, [][]byte{rec})
}

func (a *ackRecorder) WriteBuckets(flats []uint64, recs [][]byte) error {
	if err := a.Storage.WriteBuckets(flats, recs); err != nil {
		if !a.failed {
			// Only the first failure can be log-resident: the wedged WAL
			// rejects every later call before touching the log.
			a.failed = true
			a.failedFlats = append([]uint64(nil), flats...)
			for _, r := range recs {
				a.failedRecs = append(a.failedRecs, append([]byte(nil), r...))
			}
		}
		return err
	}
	a.ackedFrames++
	return a.shadow.WriteBuckets(flats, recs)
}

func crashStride(t *testing.T) int {
	t.Helper()
	scheme, err := encrypt.NewCounterScheme(crashKey, treemath.New(crashLeafLevel).NumBuckets())
	if err != nil {
		t.Fatal(err)
	}
	return encrypt.PaddedBucketBytes(scheme, crashZ, crashBlockBytes)
}

// buildCrashStack assembles ORAM ← encrypt.Store ← [recorder ←] [WAL ←]
// File in dir. Identical seeds give bit-identical runs: the leaf source,
// the position map's initial assignment and the counter scheme's pads
// are all deterministic functions of (seed, key, write sequence).
func buildCrashStack(t *testing.T, dir string, useWAL, record, deferWB bool, fault func(storage.Op, uint64) error) *crashStack {
	t.Helper()
	tree := treemath.New(crashLeafLevel)
	scheme, err := encrypt.NewCounterScheme(crashKey, tree.NumBuckets())
	if err != nil {
		t.Fatal(err)
	}
	stride := encrypt.PaddedBucketBytes(scheme, crashZ, crashBlockBytes)
	s := &crashStack{
		treePath: filepath.Join(dir, "crash.tree"),
		logPath:  filepath.Join(dir, "crash.wal"),
	}
	f, err := storage.OpenFile(s.treePath, tree.NumBuckets(), stride)
	if err != nil {
		t.Fatal(err)
	}
	s.backing = f
	if useWAL {
		w, err := storage.OpenWAL(f, s.logPath, storage.WALConfig{CheckpointEvery: crashCkptEvery, Fault: fault})
		if err != nil {
			t.Fatal(err)
		}
		s.wal, s.backing = w, w
	}
	if record {
		shadow, err := storage.NewMem(tree.NumBuckets(), stride)
		if err != nil {
			t.Fatal(err)
		}
		s.rec = &ackRecorder{Storage: s.backing, shadow: shadow}
		s.backing = s.rec
	}
	store, err := encrypt.NewStore(encrypt.StoreConfig{
		LeafLevel:  crashLeafLevel,
		Z:          crashZ,
		BlockBytes: crashBlockBytes,
		Scheme:     scheme,
		Backing:    s.backing,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{
		LeafLevel:             crashLeafLevel,
		Z:                     crashZ,
		BlockBytes:            crashBlockBytes,
		Blocks:                crashBlocks,
		DeferWriteBack:        deferWB,
		MaxDeferredWriteBacks: crashDeferred,
	}
	src := core.NewMathLeafSource(rand.New(rand.NewSource(crashSeed)))
	pos, err := core.NewOnChipPositionMap(p.Groups(), tree.NumLeaves(), src)
	if err != nil {
		t.Fatal(err)
	}
	if s.oram, err = core.New(p, store, pos, src); err != nil {
		t.Fatal(err)
	}
	return s
}

// driveCrashOps runs the deterministic workload — a seeded read/write mix
// ending in a Flush that drains every deferred write-back — and returns
// the first error (the simulated crash surfacing to the client).
func driveCrashOps(o *core.ORAM) error {
	rng := rand.New(rand.NewSource(crashSeed ^ 0x0dd))
	buf := make([]byte, crashBlockBytes)
	for i := 0; i < crashOps; i++ {
		addr := uint64(rng.Intn(crashBlocks))
		if rng.Intn(3) == 0 {
			if _, err := o.Access(addr, core.OpRead, nil); err != nil {
				return err
			}
			continue
		}
		rng.Read(buf) //nolint:errcheck // math/rand Read never fails
		if _, err := o.Access(addr, core.OpWrite, buf); err != nil {
			return err
		}
	}
	return o.Flush()
}

// referenceTree runs the synchronous, file-only stack to completion and
// returns the tree file's bytes — the no-crash ground truth.
func referenceTree(t *testing.T) []byte {
	t.Helper()
	s := buildCrashStack(t, t.TempDir(), false, false, false, nil)
	if err := driveCrashOps(s.oram); err != nil {
		t.Fatal(err)
	}
	if err := s.backing.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.backing.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(s.treePath)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStorageCrashAsyncWALMatchesSyncFile extends PR 3's bit-identity
// claim across the persistence seam: the deferred-write-back stack over
// WAL-over-file, once flushed and closed, leaves a tree file
// byte-identical to the synchronous file-only run of the same seed —
// ciphertext and all — and an empty (checkpointed) log.
func TestStorageCrashAsyncWALMatchesSyncFile(t *testing.T) {
	ref := referenceTree(t)
	s := buildCrashStack(t, t.TempDir(), true, false, true, nil)
	if err := driveCrashOps(s.oram); err != nil {
		t.Fatal(err)
	}
	if err := s.backing.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.backing.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(s.treePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("flushed async+WAL tree file differs from the synchronous reference")
	}
	if st, err := os.Stat(s.logPath); err != nil {
		t.Fatal(err)
	} else if st.Size() != 0 {
		t.Fatalf("closed WAL log holds %d bytes, want 0 (final checkpoint truncates)", st.Size())
	}
}

// countCrashSteps runs the async+WAL stack to completion with a counting
// fault hook and returns the total number of fault-consulted steps — the
// kill-point space of the fuzz test.
func countCrashSteps(t *testing.T) uint64 {
	t.Helper()
	var max uint64
	s := buildCrashStack(t, t.TempDir(), true, false, true, func(_ storage.Op, seq uint64) error {
		max = seq
		return nil
	})
	if err := driveCrashOps(s.oram); err != nil {
		t.Fatal(err)
	}
	if err := s.backing.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.backing.Close(); err != nil {
		t.Fatal(err)
	}
	return max
}

var errCrashKill = errors.New("crash-test kill")

// TestStorageCrashRecoveryFuzzedKillPoints kills the async+WAL stack at
// every boundary step and a fuzzed sample of interior steps, reopens the
// tree, and asserts the recovered bytes equal the deterministic
// expectation for the observed kill: the acknowledged-write shadow, plus
// the first failed frame exactly when that frame reached the log. Kills
// after the workload's final Flush must additionally reproduce the
// synchronous reference file byte for byte.
func TestStorageCrashRecoveryFuzzedKillPoints(t *testing.T) {
	total := countCrashSteps(t)
	if total < 10 {
		t.Fatalf("only %d fault steps; workload too small to fuzz", total)
	}
	ref := referenceTree(t)

	kills := map[uint64]bool{1: true, 2: true, 3: true, total - 2: true, total - 1: true, total: true}
	rng := rand.New(rand.NewSource(0xC0FFEE))
	for len(kills) < 16 {
		kills[1+uint64(rng.Int63n(int64(total)))] = true
	}
	for k := range kills {
		t.Run(fmt.Sprintf("kill=%d", k), func(t *testing.T) {
			dir := t.TempDir()
			var killedOp storage.Op = -1
			s := buildCrashStack(t, dir, true, true, true, func(op storage.Op, seq uint64) error {
				if seq >= k {
					if killedOp < 0 {
						killedOp = op
					}
					return errCrashKill
				}
				return nil
			})
			opsErr := driveCrashOps(s.oram)
			syncErr := s.backing.Sync()
			s.backing.Close() //nolint:errcheck // a wedged close reports the kill; handles are released either way
			if killedOp < 0 {
				t.Fatalf("kill point %d never fired (run took fewer steps than the counting run)", k)
			}
			if opsErr != nil && !errors.Is(opsErr, errCrashKill) {
				t.Fatalf("client saw a non-kill error: %v", opsErr)
			}

			// The recovery a restarted process performs: reopen the tree
			// file and let OpenWAL replay the surviving frame prefix.
			replayed, err := storage.ReplayLog(s.logPath, crashStride(t), func([]uint64, [][]byte) error { return nil })
			if err != nil {
				t.Fatalf("replaying log: %v", err)
			}
			tree := treemath.New(crashLeafLevel)
			f2, err := storage.OpenFile(s.treePath, tree.NumBuckets(), crashStride(t))
			if err != nil {
				t.Fatalf("reopening tree: %v", err)
			}
			w2, err := storage.OpenWAL(f2, s.logPath, storage.WALConfig{})
			if err != nil {
				t.Fatalf("recovering WAL: %v", err)
			}
			if w2.Recovered() != replayed {
				t.Fatalf("OpenWAL replayed %d frames, independent ReplayLog saw %d", w2.Recovered(), replayed)
			}

			// Deterministic expectation: everything acknowledged, plus the
			// first failed frame iff the kill let it reach the log (any
			// checkpoint-step kill; an OpAppend kill precedes the write).
			expect := s.rec.shadow
			if s.rec.failed && killedOp != storage.OpAppend {
				if err := expect.WriteBuckets(s.rec.failedFlats, s.rec.failedRecs); err != nil {
					t.Fatal(err)
				}
			}
			for flat := uint64(0); flat < tree.NumBuckets(); flat++ {
				want, err := expect.ReadBucket(flat)
				if err != nil {
					t.Fatal(err)
				}
				got, err := w2.ReadBucket(flat)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("bucket %d diverges from the acknowledged-write shadow after recovery (killed at %v, %d frames acked)",
						flat, killedOp, s.rec.ackedFrames)
				}
			}
			if err := w2.Close(); err != nil {
				t.Fatalf("closing recovered WAL: %v", err)
			}

			// Kills after the final Flush (every append acknowledged) must
			// recover the exact synchronous reference image.
			if opsErr == nil {
				got, err := os.ReadFile(s.treePath)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, ref) {
					t.Fatalf("post-Flush kill at %v recovered a tree differing from the synchronous reference", killedOp)
				}
				if syncErr == nil && killedOp != storage.OpTruncate && killedOp != storage.OpSyncInner && killedOp != storage.OpSyncLog && killedOp != storage.OpApply {
					t.Fatalf("Sync succeeded yet the kill fired at %v before Close", killedOp)
				}
			}
		})
	}
}
