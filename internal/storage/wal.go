package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// WAL makes any Storage crash-consistent for the deferred write-back
// pipeline: every WriteBucket(s) call is serialized into one CRC-framed
// log record and appended to the log file BEFORE it is acknowledged, and
// the acknowledged records are held in an in-memory overlay that serves
// reads. The inner Storage is only touched at checkpoint time (Sync):
// log fsync -> apply overlay to inner -> inner.Sync -> truncate log.
// Because the inner tree file therefore never holds un-logged data, the
// durable state at any instant is exactly (last checkpoint image) +
// (logged frame prefix), and recovery is a pure replay: OpenWAL parses
// the longest valid frame prefix of the log (a torn tail is expected
// after a crash and simply ignored), applies it to the inner Storage in
// order, and checkpoints. Replay is idempotent — frames are whole-record
// overwrites applied oldest-first — so a crash during a previous
// checkpoint's apply phase re-replays to the same bytes.
//
// The overlay is bounded by CheckpointEvery (self-checkpoint after that
// many frames) and emptied on every explicit Sync, which the ORAM layer
// calls on Flush — the epoch barrier.
type WAL struct {
	inner Storage
	f     *os.File
	path  string
	cfg   WALConfig

	// overlay holds the newest acknowledged record per dirty bucket;
	// buffers are owned by the WAL and reused across epochs.
	overlay map[uint64][]byte
	free    [][]byte // spare record buffers from previous epochs

	frames    int // frames in the log since the last checkpoint
	seq       uint64
	recovered int
	frameBuf  []byte
	applyIDs  []uint64
	err       error // wedged by a simulated fault; sticky
	closed    bool
}

// Op names the WAL's crash-relevant steps for the fault-injection hook.
type Op int

// The fault-injectable steps, in the order they occur: frame append,
// log fsync, per-bucket apply to the inner storage, inner Sync, log
// truncate.
const (
	OpAppend Op = iota
	OpSyncLog
	OpApply
	OpSyncInner
	OpTruncate
)

func (o Op) String() string {
	switch o {
	case OpAppend:
		return "append"
	case OpSyncLog:
		return "sync-log"
	case OpApply:
		return "apply"
	case OpSyncInner:
		return "sync-inner"
	case OpTruncate:
		return "truncate"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// WALConfig parameterizes a WAL.
type WALConfig struct {
	// CheckpointEvery, when > 0, self-checkpoints after that many logged
	// frames, bounding both the overlay and the replay work after a
	// crash; 0 checkpoints only on explicit Sync (the epoch barrier).
	CheckpointEvery int
	// SyncAppends fsyncs the log after every frame, making each
	// acknowledgment individually durable. The default is group
	// durability: appends hit the OS file cache immediately and are
	// fsynced at the next checkpoint.
	SyncAppends bool
	// Fault, when non-nil, is consulted before every crash-relevant step
	// with a monotone sequence number. A non-nil return simulates the
	// process dying at that point: the step does not happen and the WAL
	// wedges — every later operation fails with the same error. Test
	// hook for the crash-recovery property suite.
	Fault func(op Op, seq uint64) error
}

// frame layout: u32 payload length, u32 CRC-32 (IEEE) of the payload,
// payload = u32 bucket count then count x (u64 flat, stride record bytes).
const frameHeaderBytes = 8

// OpenWAL wraps inner with a write-ahead log at path, first replaying
// any valid frame prefix left by a crash (and checkpointing it into
// inner). The log file is then held open for appends.
func OpenWAL(inner Storage, path string, cfg WALConfig) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	w := &WAL{
		inner:   inner,
		f:       f,
		path:    path,
		cfg:     cfg,
		overlay: make(map[uint64][]byte),
	}
	n, err := ReplayLog(path, inner.Stride(), func(flats []uint64, recs [][]byte) error {
		return inner.WriteBuckets(flats, recs)
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	w.recovered = n
	if n > 0 {
		if err := inner.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: wal recovery sync: %w", err)
		}
	}
	// Truncate even a torn-tail-only log so appends start clean.
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: wal recovery truncate: %w", err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

// ReplayLog parses the longest valid frame prefix of the log at path and
// hands each frame, oldest first, to apply. It returns the number of
// complete frames seen; a torn or corrupt tail terminates the replay
// without error (that is the expected post-crash state). Exposed so the
// crash-recovery tests can reconstruct the durable state independently
// of OpenWAL.
func ReplayLog(path string, stride int, apply func(flats []uint64, recs [][]byte) error) (int, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("storage: read wal: %w", err)
	}
	frames := 0
	for len(buf) >= frameHeaderBytes {
		plen := binary.LittleEndian.Uint32(buf[0:4])
		want := binary.LittleEndian.Uint32(buf[4:8])
		if uint64(len(buf)-frameHeaderBytes) < uint64(plen) {
			break // torn tail
		}
		payload := buf[frameHeaderBytes : frameHeaderBytes+int(plen)]
		if crc32.ChecksumIEEE(payload) != want {
			break // corrupt tail
		}
		flats, recs, ok := parseFrame(payload, stride)
		if !ok {
			break
		}
		if err := apply(flats, recs); err != nil {
			return frames, fmt.Errorf("storage: wal replay: %w", err)
		}
		frames++
		buf = buf[frameHeaderBytes+int(plen):]
	}
	return frames, nil
}

func parseFrame(payload []byte, stride int) (flats []uint64, recs [][]byte, ok bool) {
	if len(payload) < 4 {
		return nil, nil, false
	}
	count := int(binary.LittleEndian.Uint32(payload[0:4]))
	payload = payload[4:]
	per := 8 + stride
	if count < 0 || len(payload) != count*per {
		return nil, nil, false
	}
	flats = make([]uint64, count)
	recs = make([][]byte, count)
	for i := 0; i < count; i++ {
		flats[i] = binary.LittleEndian.Uint64(payload[i*per : i*per+8])
		recs[i] = payload[i*per+8 : (i+1)*per : (i+1)*per]
	}
	return flats, recs, true
}

// Recovered returns the number of frames replayed by OpenWAL.
func (w *WAL) Recovered() int { return w.recovered }

// PendingFrames returns the number of logged-but-not-checkpointed frames.
func (w *WAL) PendingFrames() int { return w.frames }

// NumBuckets implements Storage.
func (w *WAL) NumBuckets() uint64 { return w.inner.NumBuckets() }

// Stride implements Storage.
func (w *WAL) Stride() int { return w.inner.Stride() }

func (w *WAL) fault(op Op) error {
	if w.cfg.Fault == nil {
		return nil
	}
	w.seq++
	if err := w.cfg.Fault(op, w.seq); err != nil {
		w.err = fmt.Errorf("storage: wal killed at %s (seq %d): %w", op, w.seq, err)
		return w.err
	}
	return nil
}

// ReadBucket implements Storage: the overlay (acknowledged, not yet
// checkpointed records) shadows the inner Storage.
func (w *WAL) ReadBucket(flat uint64) ([]byte, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.closed {
		return nil, ErrClosed
	}
	if rec, ok := w.overlay[flat]; ok {
		return rec, nil
	}
	return w.inner.ReadBucket(flat)
}

// ReadBuckets implements Storage.
func (w *WAL) ReadBuckets(flats []uint64, dst [][]byte) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrClosed
	}
	if len(flats) != len(dst) {
		return fmt.Errorf("storage: %d flats but %d dst slots", len(flats), len(dst))
	}
	for i, flat := range flats {
		rec, err := w.ReadBucket(flat)
		if err != nil {
			return err
		}
		dst[i] = rec
	}
	return nil
}

// WriteBucket implements Storage: a one-bucket frame.
func (w *WAL) WriteBucket(flat uint64, rec []byte) error {
	return w.WriteBuckets([]uint64{flat}, [][]byte{rec})
}

// WriteBuckets implements Storage: log one frame for the whole path,
// then acknowledge by installing the records in the overlay.
func (w *WAL) WriteBuckets(flats []uint64, recs [][]byte) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrClosed
	}
	if len(flats) != len(recs) {
		return fmt.Errorf("storage: %d flats but %d records", len(flats), len(recs))
	}
	for i, flat := range flats {
		if err := checkRecord(w, flat, recs[i]); err != nil {
			return err
		}
	}
	// Log before ack.
	if err := w.fault(OpAppend); err != nil {
		return err
	}
	w.encodeFrame(flats, recs)
	if _, err := w.f.Write(w.frameBuf); err != nil {
		return fmt.Errorf("storage: wal append: %w", err)
	}
	if w.cfg.SyncAppends {
		if err := w.fault(OpSyncLog); err != nil {
			return err
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("storage: wal append sync: %w", err)
		}
	}
	// Ack: install in the overlay (reusing buffers from past epochs).
	for i, flat := range flats {
		buf, ok := w.overlay[flat]
		if !ok {
			if n := len(w.free); n > 0 {
				buf, w.free = w.free[n-1], w.free[:n-1]
			} else {
				buf = make([]byte, w.Stride())
			}
		}
		copy(buf, recs[i])
		w.overlay[flat] = buf
	}
	w.frames++
	if w.cfg.CheckpointEvery > 0 && w.frames >= w.cfg.CheckpointEvery {
		return w.checkpoint()
	}
	return nil
}

func (w *WAL) encodeFrame(flats []uint64, recs [][]byte) {
	stride := w.Stride()
	plen := 4 + len(flats)*(8+stride)
	need := frameHeaderBytes + plen
	if cap(w.frameBuf) < need {
		w.frameBuf = make([]byte, need)
	}
	w.frameBuf = w.frameBuf[:need]
	payload := w.frameBuf[frameHeaderBytes:]
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(flats)))
	per := 8 + stride
	for i, flat := range flats {
		binary.LittleEndian.PutUint64(payload[4+i*per:], flat)
		copy(payload[4+i*per+8:4+(i+1)*per], recs[i])
	}
	binary.LittleEndian.PutUint32(w.frameBuf[0:4], uint32(plen))
	binary.LittleEndian.PutUint32(w.frameBuf[4:8], crc32.ChecksumIEEE(payload))
}

// checkpoint is the WAL epoch protocol: make the log durable, apply the
// overlay to the inner Storage (deterministic bucket order), make the
// inner Storage durable, then truncate the log and recycle the overlay.
func (w *WAL) checkpoint() error {
	if err := w.fault(OpSyncLog); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: wal checkpoint sync: %w", err)
	}
	w.applyIDs = w.applyIDs[:0]
	for flat := range w.overlay {
		w.applyIDs = append(w.applyIDs, flat)
	}
	sort.Slice(w.applyIDs, func(i, j int) bool { return w.applyIDs[i] < w.applyIDs[j] })
	for _, flat := range w.applyIDs {
		if err := w.fault(OpApply); err != nil {
			return err
		}
		if err := w.inner.WriteBucket(flat, w.overlay[flat]); err != nil {
			return fmt.Errorf("storage: wal apply: %w", err)
		}
	}
	if err := w.fault(OpSyncInner); err != nil {
		return err
	}
	if err := w.inner.Sync(); err != nil {
		return fmt.Errorf("storage: wal inner sync: %w", err)
	}
	if err := w.fault(OpTruncate); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: wal truncate: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: wal truncate sync: %w", err)
	}
	for _, flat := range w.applyIDs {
		w.free = append(w.free, w.overlay[flat])
		delete(w.overlay, flat)
	}
	w.frames = 0
	return nil
}

// Sync implements Storage: an explicit checkpoint (the Flush/epoch
// barrier).
func (w *WAL) Sync() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrClosed
	}
	return w.checkpoint()
}

// Close implements Storage: final checkpoint, then close the log and the
// inner Storage. Closing twice is allowed. A wedged WAL (simulated
// crash) skips the checkpoint — the crash already happened — but still
// releases file handles, and reports the wedge error.
func (w *WAL) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.err
	if err == nil {
		err = w.checkpoint()
	}
	if e := w.f.Close(); err == nil {
		err = e
	}
	if e := w.inner.Close(); err == nil {
		err = e
	}
	return err
}

// MemoryBytes implements Storage: the inner footprint plus the overlay.
func (w *WAL) MemoryBytes() uint64 {
	return w.inner.MemoryBytes() + uint64(len(w.overlay)+len(w.free))*uint64(w.Stride())
}

// LogPath returns the log file's path (for tests and stats).
func (w *WAL) LogPath() string { return w.path }
