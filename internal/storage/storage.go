// Package storage is the bucket-granularity persistence seam beneath the
// ORAM tree stores. A Storage holds one fixed-stride record per flat
// bucket index and nothing else — no serialization, no encryption, no
// path semantics — so the same interface can be backed by an in-memory
// arena (Mem), a flat mmap'd tree file (File), or a write-ahead log
// wrapping either (WAL). The encrypting store (internal/encrypt) writes
// its padded ciphertext buckets through a Storage, and PathStore in this
// package adapts a Storage directly to core.PathStore for the
// plaintext-at-rest configurations, so every pathoram.Backend composes
// with every Storage.
package storage

import "fmt"

// RecordAlign is the node alignment of bucket records: every record
// length is padded to a multiple of it, matching the DRAM access
// granularity used by the encrypting store (encrypt.PadGranularity) so a
// record never straddles an access-granule boundary in the file or the
// arena.
const RecordAlign = 64

// Storage stores one fixed-length record per bucket of a flattened ORAM
// tree. Records are exactly Stride() bytes; flat indices run
// [0, NumBuckets()).
//
// ReadBucket and ReadBuckets may return slices aliasing internal memory
// (the arena or the mmap'd file); aliases stay valid until the next write
// of the same bucket, and mutating them bypasses the write path (only the
// tamper-simulation test hooks do). WriteBucket and WriteBuckets copy the
// caller's records in — callers keep their buffers.
//
// WriteBuckets commits the records of one path as a unit: the WAL
// implementation logs the whole call as a single atomic frame, so a
// crash either keeps all of a path write-back or none of it.
//
// Sync is the epoch barrier: when it returns, every write acknowledged
// before the call is durable (msync for File, checkpoint-and-truncate
// for WAL, no-op for Mem). Close releases OS resources after a final
// Sync; a closed Storage rejects further I/O.
type Storage interface {
	NumBuckets() uint64
	Stride() int
	ReadBucket(flat uint64) ([]byte, error)
	WriteBucket(flat uint64, rec []byte) error
	ReadBuckets(flats []uint64, dst [][]byte) error
	WriteBuckets(flats []uint64, recs [][]byte) error
	Sync() error
	Close() error
	// MemoryBytes reports the external-memory footprint of the tree
	// (arena bytes, mapped file bytes, plus any overlay the WAL holds).
	MemoryBytes() uint64
}

// ErrClosed is returned by operations on a closed Storage.
var ErrClosed = fmt.Errorf("storage: closed")

func checkRecord(s Storage, flat uint64, rec []byte) error {
	if flat >= s.NumBuckets() {
		return fmt.Errorf("storage: bucket %d out of range (have %d)", flat, s.NumBuckets())
	}
	if rec != nil && len(rec) != s.Stride() {
		return fmt.Errorf("storage: record is %dB, want stride %dB", len(rec), s.Stride())
	}
	return nil
}
