package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// File layout: one flat tree file per ORAM. A fixed-size header page
// records the geometry (so a reopen with mismatched parameters fails
// loudly instead of decoding garbage), followed by NumBuckets records of
// exactly Stride bytes each at offset fileHeaderSize + flat*Stride.
// Stride is a multiple of RecordAlign and fileHeaderSize is page-sized,
// so records are node-aligned: no record straddles an access granule.
const (
	fileMagic      = uint64(0x45455254_4d41524f) // "ORAMTREE", little-endian
	fileVersion    = uint32(1)
	fileHeaderSize = 4096
)

// File is the persistent Storage: the whole tree lives in one flat file,
// mapped shared read/write. Reads alias the mapping (zero-copy), writes
// copy into it, and Sync is an msync(MS_SYNC) — the epoch barrier that
// makes everything written so far durable. A fresh file is created
// zero-filled, which decodes as an all-dummy tree under both the plain
// and the encrypted serialization.
type File struct {
	f          *os.File
	mm         []byte
	numBuckets uint64
	stride     int
	closed     bool
}

// OpenFile creates or reopens the tree file at path for the given
// geometry. A new (empty) file is sized and stamped; an existing file
// must match the geometry exactly.
func OpenFile(path string, numBuckets uint64, stride int) (*File, error) {
	if numBuckets == 0 || stride <= 0 || stride%RecordAlign != 0 {
		return nil, fmt.Errorf("storage: bad file geometry (%d buckets, stride %d)", numBuckets, stride)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open tree file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat tree file: %w", err)
	}
	want := int64(fileHeaderSize) + int64(numBuckets)*int64(stride)
	fresh := st.Size() == 0
	if fresh {
		if err := f.Truncate(want); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: size tree file: %w", err)
		}
	} else if st.Size() != want {
		f.Close()
		return nil, fmt.Errorf("storage: tree file %s is %dB, want %dB for %d buckets x stride %d",
			path, st.Size(), want, numBuckets, stride)
	}
	mm, err := syscall.Mmap(int(f.Fd()), 0, int(want), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: mmap tree file: %w", err)
	}
	fs := &File{f: f, mm: mm, numBuckets: numBuckets, stride: stride}
	if fresh {
		binary.LittleEndian.PutUint64(mm[0:8], fileMagic)
		binary.LittleEndian.PutUint32(mm[8:12], fileVersion)
		binary.LittleEndian.PutUint32(mm[12:16], uint32(stride))
		binary.LittleEndian.PutUint64(mm[16:24], numBuckets)
		// Persist header and size now so a crash before the first epoch
		// leaves a valid (all-dummy) tree, not an unstampable file.
		if err := fs.Sync(); err != nil {
			fs.Close()
			return nil, err
		}
	} else {
		if got := binary.LittleEndian.Uint64(mm[0:8]); got != fileMagic {
			fs.Close()
			return nil, fmt.Errorf("storage: %s is not a tree file (magic %#x)", path, got)
		}
		if got := binary.LittleEndian.Uint32(mm[8:12]); got != fileVersion {
			fs.Close()
			return nil, fmt.Errorf("storage: tree file version %d, want %d", got, fileVersion)
		}
		if got := binary.LittleEndian.Uint32(mm[12:16]); int(got) != stride {
			fs.Close()
			return nil, fmt.Errorf("storage: tree file stride %d, want %d", got, stride)
		}
		if got := binary.LittleEndian.Uint64(mm[16:24]); got != numBuckets {
			fs.Close()
			return nil, fmt.Errorf("storage: tree file has %d buckets, want %d", got, numBuckets)
		}
	}
	return fs, nil
}

// NumBuckets implements Storage.
func (fs *File) NumBuckets() uint64 { return fs.numBuckets }

// Stride implements Storage.
func (fs *File) Stride() int { return fs.stride }

func (fs *File) record(flat uint64) []byte {
	off := uint64(fileHeaderSize) + flat*uint64(fs.stride)
	return fs.mm[off : off+uint64(fs.stride) : off+uint64(fs.stride)]
}

// ReadBucket implements Storage; the returned slice aliases the mapping.
func (fs *File) ReadBucket(flat uint64) ([]byte, error) {
	if fs.closed {
		return nil, ErrClosed
	}
	if err := checkRecord(fs, flat, nil); err != nil {
		return nil, err
	}
	return fs.record(flat), nil
}

// WriteBucket implements Storage; rec is copied into the mapping.
func (fs *File) WriteBucket(flat uint64, rec []byte) error {
	if fs.closed {
		return ErrClosed
	}
	if err := checkRecord(fs, flat, rec); err != nil {
		return err
	}
	copy(fs.record(flat), rec)
	return nil
}

// ReadBuckets implements Storage; dst[i] receives a mapping alias.
func (fs *File) ReadBuckets(flats []uint64, dst [][]byte) error {
	if fs.closed {
		return ErrClosed
	}
	if len(flats) != len(dst) {
		return fmt.Errorf("storage: %d flats but %d dst slots", len(flats), len(dst))
	}
	for i, flat := range flats {
		if err := checkRecord(fs, flat, nil); err != nil {
			return err
		}
		dst[i] = fs.record(flat)
	}
	return nil
}

// WriteBuckets implements Storage; records are copied into the mapping.
func (fs *File) WriteBuckets(flats []uint64, recs [][]byte) error {
	if fs.closed {
		return ErrClosed
	}
	if len(flats) != len(recs) {
		return fmt.Errorf("storage: %d flats but %d records", len(flats), len(recs))
	}
	for i, flat := range flats {
		if err := checkRecord(fs, flat, recs[i]); err != nil {
			return err
		}
		copy(fs.record(flat), recs[i])
	}
	return nil
}

// Sync implements Storage: msync(MS_SYNC) over the whole mapping — when
// it returns, every record written so far is on stable storage.
func (fs *File) Sync() error {
	if fs.closed {
		return ErrClosed
	}
	return msync(fs.mm)
}

// Close implements Storage: final msync, unmap, close. Closing twice is
// allowed (the second call is a no-op).
func (fs *File) Close() error {
	if fs.closed {
		return nil
	}
	fs.closed = true
	err := msync(fs.mm)
	if e := syscall.Munmap(fs.mm); err == nil {
		err = e
	}
	fs.mm = nil
	if e := fs.f.Close(); err == nil {
		err = e
	}
	return err
}

// MemoryBytes implements Storage: the mapped tree-file bytes.
func (fs *File) MemoryBytes() uint64 { return uint64(fileHeaderSize) + fs.numBuckets*uint64(fs.stride) }

// msync flushes a shared mapping to stable storage. The syscall package
// has no wrapper on Linux, so this issues SYS_MSYNC directly (no
// dependency outside the standard library).
func msync(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC, uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return fmt.Errorf("storage: msync: %w", errno)
	}
	return nil
}
