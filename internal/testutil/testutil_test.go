package testutil

import (
	"math"
	"math/rand"
	"testing"
)

func TestChiSquareUniformBelowThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]uint64, 64)
	for i := 0; i < 64000; i++ {
		counts[rng.Intn(len(counts))]++
	}
	if x2, thr := ChiSquare(counts), UniformThreshold(len(counts)); x2 > thr {
		t.Errorf("uniform draws rejected: chi2=%.1f > %.1f", x2, thr)
	}
}

func TestChiSquareBiasAboveThreshold(t *testing.T) {
	counts := make([]uint64, 64)
	for i := range counts {
		counts[i] = 100
	}
	counts[7] = 400 // one hot bin
	if x2, thr := ChiSquare(counts), UniformThreshold(len(counts)); x2 <= thr {
		t.Errorf("biased histogram accepted: chi2=%.1f <= %.1f", x2, thr)
	}
}

func TestUniformThresholdFormula(t *testing.T) {
	// 64 bins -> 63 dof -> 63 + 6*sqrt(126).
	want := 63 + 6*math.Sqrt(126)
	if got := UniformThreshold(64); math.Abs(got-want) > 1e-9 {
		t.Errorf("UniformThreshold(64) = %v, want %v", got, want)
	}
}

func TestFillDistinct(t *testing.T) {
	type inner struct {
		A uint64
		B float64
	}
	type outer struct {
		X int
		Y inner
		Z uint32
	}
	var o outer
	if n := FillDistinct(&o); n != 4 {
		t.Fatalf("filled %d fields, want 4", n)
	}
	seen := map[float64]bool{float64(o.X): true, float64(o.Y.A): true, o.Y.B: true, float64(o.Z): true}
	if len(seen) != 4 || seen[0] {
		t.Errorf("fields not distinct non-zero: %+v", o)
	}
}

func TestFillDistinctPanicsOnNonNumeric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for a slice field")
		}
	}()
	var s struct{ S []int }
	FillDistinct(&s)
}
