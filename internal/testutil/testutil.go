// Package testutil holds the statistical and reflection helpers the
// security and stats test suites share: the chi-square uniformity check
// that pins every construction's leaf/shard distributions (one
// implementation with one documented significance threshold, instead of a
// copy per suite), and the struct-filling helper behind the
// Merge/Reset field-completeness tests.
package testutil

import (
	"fmt"
	"math"
	"reflect"
)

// ChiSquare returns the chi-square statistic of counts against the uniform
// distribution over len(counts) bins. Degrees of freedom: len(counts)-1.
func ChiSquare(counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	expected := float64(total) / float64(len(counts))
	var x2 float64
	for _, c := range counts {
		d := float64(c) - expected
		x2 += d * d / expected
	}
	return x2
}

// UniformThreshold returns the rejection threshold the uniformity tests
// hold ChiSquare to, for a histogram of bins cells: df + 6·sqrt(2·df)
// with df = bins-1. A chi-square variable has mean df and variance 2·df,
// so this is six standard deviations above the mean — far beyond the
// 99.99% quantile for every df the suites use (for 63 dof it is ≈130 vs
// ≈103 at 99.9%), which keeps the tests robust across seeds while still
// failing loudly on any real bias (an address-correlated leaf or shard
// choice shifts the statistic by orders of magnitude, not by sigmas).
func UniformThreshold(bins int) float64 {
	df := float64(bins - 1)
	return df + 6*math.Sqrt(2*df)
}

// FillDistinct sets every numeric leaf field of the struct pointed to by
// ptr — recursing into nested structs — to a distinct non-zero value, and
// returns how many fields it set. The Merge/Reset field-completeness
// tests use it to build a snapshot in which every counter is observably
// live: a Merge or Reset that misses a field then produces a struct that
// differs from the expected one in exactly that field. Panics on
// non-numeric leaf fields (slices, maps, strings) so a Stats struct
// growing one forces the caller to decide how it aggregates.
func FillDistinct(ptr any) int {
	v := reflect.ValueOf(ptr)
	if v.Kind() != reflect.Pointer || v.Elem().Kind() != reflect.Struct {
		panic("testutil: FillDistinct needs a pointer to a struct")
	}
	n := 0
	fill(v.Elem(), &n)
	return n
}

func fill(v reflect.Value, n *int) {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Struct:
			fill(f, n)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			*n++
			f.SetInt(int64(*n))
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			*n++
			f.SetUint(uint64(*n))
		case reflect.Float32, reflect.Float64:
			*n++
			f.SetFloat(float64(*n))
		default:
			panic(fmt.Sprintf("testutil: FillDistinct: field %s of %s has unsupported kind %s — decide how it merges and extend the completeness test",
				v.Type().Field(i).Name, v.Type(), f.Kind()))
		}
	}
}
