package cache

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 128); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(1024, 0, 128); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := New(1024, 4, 0); err == nil {
		t.Error("zero line accepted")
	}
	if _, err := New(1000, 3, 128); err == nil {
		t.Error("indivisible geometry accepted")
	}
}

func TestLookupInsertBasics(t *testing.T) {
	c, err := New(1024, 2, 64) // 16 lines, 8 sets, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	if c.Lookup(5, false) {
		t.Error("hit on empty cache")
	}
	c.Insert(5, false)
	if !c.Lookup(5, false) {
		t.Error("miss after insert")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats=(%d,%d) want (1,1)", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(2*64, 2, 64) // one set, two ways
	c.Insert(0, false)
	c.Insert(1, false)
	// Touch 0 so 1 becomes LRU.
	c.Lookup(0, false)
	v, evicted := c.Insert(2, false)
	if !evicted || v.LineAddr != 1 {
		t.Errorf("evicted %+v want line 1", v)
	}
	if !c.Contains(0) || !c.Contains(2) || c.Contains(1) {
		t.Error("LRU state wrong after eviction")
	}
}

func TestDirtyPropagation(t *testing.T) {
	c, _ := New(2*64, 2, 64)
	c.Insert(0, false)
	c.Lookup(0, true) // write marks dirty
	c.Insert(1, false)
	c.Insert(2, false) // evicts line 1 (LRU) -- wait: 0 touched most recently
	// Order: after Lookup(0), MRU=0; Insert(1) -> MRU=1; Insert(2) evicts 0.
	v, evicted := c.Insert(3, false)
	if !evicted {
		t.Fatal("expected eviction")
	}
	_ = v
	// Pull line 0's dirty state out via Remove if still present, else it
	// was evicted dirty above. Track explicitly instead:
	c2, _ := New(2*64, 2, 64)
	c2.Insert(7, false)
	c2.Lookup(7, true)
	dirty, present := c2.Remove(7)
	if !present || !dirty {
		t.Error("dirty bit lost")
	}
}

func TestRemove(t *testing.T) {
	c, _ := New(1024, 4, 64)
	c.Insert(9, true)
	dirty, ok := c.Remove(9)
	if !ok || !dirty {
		t.Error("Remove lost the line or its dirty bit")
	}
	if _, ok := c.Remove(9); ok {
		t.Error("double remove")
	}
	if c.LinesResident() != 0 {
		t.Error("line count wrong")
	}
}

func TestSetIsolation(t *testing.T) {
	c, _ := New(4*64, 1, 64) // 4 sets, direct-mapped
	c.Insert(0, false)
	c.Insert(1, false)
	c.Insert(2, false)
	c.Insert(3, false)
	if c.LinesResident() != 4 {
		t.Error("distinct sets should not conflict")
	}
	// 4 maps to the same set as 0.
	v, evicted := c.Insert(4, false)
	if !evicted || v.LineAddr != 0 {
		t.Errorf("conflict eviction wrong: %+v", v)
	}
}

func TestHierarchyExclusive(t *testing.T) {
	l1, _ := New(2*64, 2, 64)
	l2, _ := New(8*64, 2, 64)
	h, err := NewHierarchy(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	r := h.Access(10, false)
	if r.L1Hit || r.L2Hit || !r.MemFill {
		t.Errorf("first access should be a memory fill: %+v", r)
	}
	// The line is in L1 only (exclusive).
	if !l1.Contains(10) || l2.Contains(10) {
		t.Error("exclusivity violated after fill")
	}
	// Hit in L1.
	if r := h.Access(10, false); !r.L1Hit {
		t.Error("expected L1 hit")
	}
	// Force 10 out of L1: lines 10 and 12 share set 0 (2 sets? 64B lines,
	// 2 ways, 2*64B -> 1 set). Insert two more lines.
	h.Access(11, false)
	h.Access(12, false) // evicts 10 (LRU) into L2
	if l1.Contains(10) || !l2.Contains(10) {
		t.Error("L1 victim did not fall into L2")
	}
	// Access 10 again: must be an L2 hit that moves it back up.
	r = h.Access(10, false)
	if !r.L2Hit || r.MemFill {
		t.Errorf("expected L2 hit: %+v", r)
	}
	if !l1.Contains(10) || l2.Contains(10) {
		t.Error("exclusivity violated after promotion")
	}
}

func TestHierarchyVictimsReachMemory(t *testing.T) {
	l1, _ := New(2*64, 2, 64)
	l2, _ := New(4*64, 2, 64)
	h, _ := NewHierarchy(l1, l2)
	var victims []Victim
	// Stream enough distinct lines through one set to overflow both
	// levels; all map to set 0 of both caches by stride.
	for i := uint64(0); i < 32; i++ {
		r := h.Access(i*4, i%2 == 0) // stride keeps sets aligned; alternate dirty
		victims = append(victims, r.Victims...)
	}
	if len(victims) == 0 {
		t.Fatal("no victims escaped the hierarchy")
	}
	sawDirty := false
	for _, v := range victims {
		if v.Dirty {
			sawDirty = true
		}
	}
	if !sawDirty {
		t.Error("dirty victims lost their dirty bit")
	}
}

func TestNoLineInBothLevels(t *testing.T) {
	l1, _ := New(4*64, 2, 64)
	l2, _ := New(16*64, 4, 64)
	h, _ := NewHierarchy(l1, l2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		line := rng.Uint64() % 64
		h.Access(line, rng.Intn(2) == 0)
		if l1.Contains(line) && l2.Contains(line) {
			t.Fatalf("line %d in both levels", line)
		}
	}
}

func TestInsertPrefetch(t *testing.T) {
	l1, _ := New(2*64, 2, 64)
	l2, _ := New(4*64, 2, 64)
	h, _ := NewHierarchy(l1, l2)
	h.Access(8, false) // 8 in L1
	// Prefetching a line already on-chip is a no-op.
	if v := h.InsertPrefetch(8); v != nil {
		t.Error("prefetch duplicated an on-chip line")
	}
	if v := h.InsertPrefetch(9); v != nil {
		t.Error("prefetch into empty L2 should not evict")
	}
	if !l2.Contains(9) {
		t.Error("prefetch did not land in L2")
	}
	if h.Access(9, false); !l1.Contains(9) {
		t.Error("prefetched line should promote on access")
	}
}

func TestHierarchyLineMismatch(t *testing.T) {
	l1, _ := New(1024, 2, 64)
	l2, _ := New(1024, 2, 128)
	if _, err := NewHierarchy(l1, l2); err == nil {
		t.Error("line size mismatch accepted")
	}
}

func TestHierarchyStats(t *testing.T) {
	l1, _ := New(2*64, 2, 64)
	l2, _ := New(4*64, 2, 64)
	h, _ := NewHierarchy(l1, l2)
	h.Access(1, false)
	h.Access(1, false)
	h.Access(2, false)
	acc, m1, m2 := h.Stats()
	if acc != 3 || m1 != 2 || m2 != 2 {
		t.Errorf("stats=(%d,%d,%d) want (3,2,2)", acc, m1, m2)
	}
}
