// Package cache provides the set-associative LRU caches and the exclusive
// two-level hierarchy of the paper's processor model (Table 1: 32 KB 4-way
// L1, 1 MB 16-way L2, 128-byte lines, exclusive). Exclusivity matters for
// the ORAM integration (Section 3.3.1): a line lives in exactly one of
// {L1, L2, ORAM}, so every L2 eviction — clean or dirty — must be handed
// back to the ORAM stash.
package cache

import "fmt"

// Victim is a line pushed out of the hierarchy toward memory.
type Victim struct {
	LineAddr uint64
	Dirty    bool
}

// Cache is one set-associative LRU cache. Addresses are line-granular
// (byte address / line size).
type Cache struct {
	sets     [][]entry // each set ordered MRU-first
	numSets  uint64
	ways     int
	lineSize int

	hits, misses, evictions uint64
}

type entry struct {
	line  uint64
	dirty bool
}

// New builds a cache of sizeBytes with the given associativity and line
// size. sizeBytes must divide evenly into sets.
func New(sizeBytes, ways, lineBytes int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cache: all parameters must be positive")
	}
	lines := sizeBytes / lineBytes
	if lines == 0 || lines%ways != 0 {
		return nil, fmt.Errorf("cache: %dB / %dB lines not divisible into %d ways", sizeBytes, lineBytes, ways)
	}
	numSets := uint64(lines / ways)
	c := &Cache{
		sets:     make([][]entry, numSets),
		numSets:  numSets,
		ways:     ways,
		lineSize: lineBytes,
	}
	for i := range c.sets {
		c.sets[i] = make([]entry, 0, ways)
	}
	return c, nil
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineSize }

// Stats returns (hits, misses, evictions).
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

func (c *Cache) set(line uint64) int { return int(line % c.numSets) }

// Lookup probes for a line; on a hit it refreshes LRU order and optionally
// marks the line dirty.
func (c *Cache) Lookup(line uint64, makeDirty bool) bool {
	s := c.sets[c.set(line)]
	for i := range s {
		if s[i].line == line {
			e := s[i]
			e.dirty = e.dirty || makeDirty
			copy(s[1:i+1], s[:i])
			s[0] = e
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Contains probes without touching LRU state or counters.
func (c *Cache) Contains(line uint64) bool {
	s := c.sets[c.set(line)]
	for i := range s {
		if s[i].line == line {
			return true
		}
	}
	return false
}

// Remove extracts a line (for exclusive moves between levels). It does not
// touch hit/miss counters.
func (c *Cache) Remove(line uint64) (dirty, present bool) {
	idx := c.set(line)
	s := c.sets[idx]
	for i := range s {
		if s[i].line == line {
			dirty = s[i].dirty
			c.sets[idx] = append(s[:i], s[i+1:]...)
			return dirty, true
		}
	}
	return false, false
}

// Insert places a line as MRU, evicting the LRU entry if the set is full.
// The caller must ensure the line is not already present.
func (c *Cache) Insert(line uint64, dirty bool) (victim Victim, evicted bool) {
	idx := c.set(line)
	s := c.sets[idx]
	if len(s) == c.ways {
		lru := s[len(s)-1]
		victim = Victim{LineAddr: lru.line, Dirty: lru.dirty}
		evicted = true
		s = s[:len(s)-1]
		c.evictions++
	}
	s = append(s, entry{})
	copy(s[1:], s)
	s[0] = entry{line: line, dirty: dirty}
	c.sets[idx] = s
	return victim, evicted
}

// LinesResident returns the number of lines currently cached.
func (c *Cache) LinesResident() int {
	n := 0
	for _, s := range c.sets {
		n += len(s)
	}
	return n
}

// Hierarchy is the exclusive L1D + L2 pair. Instruction fetches are modeled
// as always hitting L1I (the synthetic traces carry no code addresses), so
// only the data side is simulated.
type Hierarchy struct {
	L1, L2 *Cache

	l1Misses, l2Misses uint64
	accesses           uint64
}

// NewHierarchy wires an exclusive pair; both caches must share a line size.
func NewHierarchy(l1, l2 *Cache) (*Hierarchy, error) {
	if l1.lineSize != l2.lineSize {
		return nil, fmt.Errorf("cache: L1 line %dB != L2 line %dB", l1.lineSize, l2.lineSize)
	}
	return &Hierarchy{L1: l1, L2: l2}, nil
}

// Result describes one hierarchy access.
type Result struct {
	L1Hit, L2Hit bool
	// MemFill is true when the line had to come from memory.
	MemFill bool
	// Victims are the lines pushed out of the L2 toward memory by this
	// access (at most a couple per access).
	Victims []Victim
}

// Access performs a data access at line granularity, maintaining
// exclusivity: a hit in L2 moves the line to L1; fills from memory go to
// L1; L1 victims fall to L2; L2 victims leave the chip.
func (h *Hierarchy) Access(line uint64, write bool) Result {
	h.accesses++
	if h.L1.Lookup(line, write) {
		return Result{L1Hit: true}
	}
	h.l1Misses++
	if dirty, ok := h.L2.Remove(line); ok {
		// Count as an L2 hit (Remove bypasses counters).
		h.L2.hits++
		return Result{L2Hit: true, Victims: h.fillL1(line, dirty || write)}
	}
	h.L2.misses++
	h.l2Misses++
	return Result{MemFill: true, Victims: h.fillL1(line, write)}
}

// InsertPrefetch places a prefetched line (a super-block sibling) into the
// L2 if it is not already on-chip, returning any displaced victim.
func (h *Hierarchy) InsertPrefetch(line uint64) []Victim {
	if h.L1.Contains(line) || h.L2.Contains(line) {
		return nil
	}
	if v, ok := h.L2.Insert(line, false); ok {
		return []Victim{v}
	}
	return nil
}

// Contains reports whether the line is anywhere on-chip.
func (h *Hierarchy) Contains(line uint64) bool {
	return h.L1.Contains(line) || h.L2.Contains(line)
}

// fillL1 inserts into L1 and cascades victims down to L2 and out.
func (h *Hierarchy) fillL1(line uint64, dirty bool) []Victim {
	var out []Victim
	if v1, ok := h.L1.Insert(line, dirty); ok {
		if v2, ok2 := h.L2.Insert(v1.LineAddr, v1.Dirty); ok2 {
			out = append(out, v2)
		}
	}
	return out
}

// Stats returns (accesses, l1Misses, l2Misses).
func (h *Hierarchy) Stats() (accesses, l1Misses, l2Misses uint64) {
	return h.accesses, h.l1Misses, h.l2Misses
}
