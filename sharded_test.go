package pathoram

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/testutil"
)

func shardedPartitions() []Partition { return []Partition{PartitionStripe, PartitionRange} }

func (p Partition) testName() string {
	if p == PartitionRange {
		return "range"
	}
	return "stripe"
}

// TestShardedMatchesSingleORAM replays one trace of mixed operations
// against a single ORAM and against Sharded configurations and requires
// byte-identical results: sharding must be purely an execution-layer
// change.
func TestShardedMatchesSingleORAM(t *testing.T) {
	const blocks = 300
	const blockSize = 32
	const ops = 3000

	type step struct {
		op   int // 0 read, 1 write, 2 update
		addr uint64
		data []byte
	}
	rng := rand.New(rand.NewSource(42))
	trace := make([]step, ops)
	for i := range trace {
		st := step{op: rng.Intn(3), addr: rng.Uint64() % blocks}
		if st.op == 1 {
			st.data = make([]byte, blockSize)
			rng.Read(st.data)
		}
		trace[i] = st
	}
	increment := func(d []byte) {
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)+1)
	}

	single, err := New(Config{Blocks: blocks, BlockSize: blockSize,
		Encryption: EncryptCounter, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, ops)
	for i, st := range trace {
		switch st.op {
		case 0:
			d, err := single.Read(st.addr)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = d
		case 1:
			if err := single.Write(st.addr, st.data); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := single.Update(st.addr, increment); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, part := range shardedPartitions() {
		for _, shards := range []int{1, 3, 4, 7} {
			t.Run(fmt.Sprintf("%s/shards=%d", part.testName(), shards), func(t *testing.T) {
				s, err := NewSharded(ShardedConfig{
					Shards: shards, Partition: part,
					Config: Config{Blocks: blocks, BlockSize: blockSize,
						Encryption: EncryptCounter, Integrity: true,
						Rand: rand.New(rand.NewSource(2))},
				})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				for i, st := range trace {
					switch st.op {
					case 0:
						d, err := s.Read(st.addr)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(d, want[i]) {
							t.Fatalf("op %d: read(%d) = %x, single ORAM read %x",
								i, st.addr, d, want[i])
						}
					case 1:
						if err := s.Write(st.addr, st.data); err != nil {
							t.Fatal(err)
						}
					case 2:
						if err := s.Update(st.addr, increment); err != nil {
							t.Fatal(err)
						}
					}
				}
				st := s.Stats()
				if st.RealAccesses == 0 {
					t.Error("merged stats report no real accesses")
				}
			})
		}
	}
}

// TestShardedPartitionCoverage checks that every logical address maps to
// exactly one (shard, local) slot and that per-shard sizes add up.
func TestShardedPartitionCoverage(t *testing.T) {
	for _, part := range shardedPartitions() {
		for _, tc := range []struct{ blocks, shards uint64 }{
			{10, 4}, {9, 4}, {16, 4}, {1, 1}, {5, 5}, {1000, 7},
		} {
			s, err := NewSharded(ShardedConfig{
				Shards: int(tc.shards), Partition: part,
				Config: Config{Blocks: tc.blocks},
			})
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[[2]uint64]bool)
			var total uint64
			for i := 0; i < s.NumShards(); i++ {
				total += s.shardBlocks(i)
			}
			if total != tc.blocks {
				t.Errorf("%s %d/%d: shard sizes sum to %d, want %d",
					part.testName(), tc.blocks, tc.shards, total, tc.blocks)
			}
			for a := uint64(0); a < tc.blocks; a++ {
				sh, local := s.shardOf(a)
				if sh < 0 || sh >= s.NumShards() {
					t.Fatalf("%s: addr %d mapped to shard %d", part.testName(), a, sh)
				}
				if local >= s.shardBlocks(sh) {
					t.Fatalf("%s: addr %d mapped to local %d beyond shard %d size %d",
						part.testName(), a, local, sh, s.shardBlocks(sh))
				}
				key := [2]uint64{uint64(sh), local}
				if seen[key] {
					t.Fatalf("%s: slot %v assigned twice", part.testName(), key)
				}
				seen[key] = true
			}
			s.Close()
		}
	}
}

// TestShardedConcurrentClients drives 8 concurrent clients over 4 shards
// (the acceptance configuration) with verified read-back. Run under -race.
func TestShardedConcurrentClients(t *testing.T) {
	const shards = 4
	const clients = 8
	const perClient = 64
	const blockSize = 24
	s, err := NewSharded(ShardedConfig{
		Shards: shards,
		Config: Config{Blocks: clients * perClient, BlockSize: blockSize,
			Encryption: EncryptCounter},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	value := func(addr uint64, round int) []byte {
		d := make([]byte, blockSize)
		binary.LittleEndian.PutUint64(d, addr)
		binary.LittleEndian.PutUint64(d[8:], uint64(round))
		return d
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			// Each client owns a disjoint address slice, so expected
			// values are deterministic even under interleaving.
			base := uint64(c * perClient)
			for round := 0; round < 3; round++ {
				for i := uint64(0); i < perClient; i++ {
					if err := s.Write(base+i, value(base+i, round)); err != nil {
						t.Errorf("client %d write: %v", c, err)
						return
					}
				}
				for n := 0; n < perClient; n++ {
					a := base + rng.Uint64()%perClient
					d, err := s.Read(a)
					if err != nil {
						t.Errorf("client %d read: %v", c, err)
						return
					}
					if !bytes.Equal(d, value(a, round)) {
						t.Errorf("client %d round %d: read(%d) = %x", c, round, a, d)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	st := s.Stats()
	if st.RealAccesses == 0 {
		t.Error("no real accesses recorded")
	}
	sched := s.SchedulerStats()
	var executed uint64
	for _, n := range sched.ExecutedPerShard {
		executed += n
	}
	if executed != sched.SingleOps {
		t.Errorf("executed %d requests, submitted %d", executed, sched.SingleOps)
	}
}

// TestShardedBatchOrder verifies ReadBatch returns results in input order
// and WriteBatch applies same-shard requests in slice order.
func TestShardedBatchOrder(t *testing.T) {
	const blocks = 256
	const blockSize = 16
	s, err := NewSharded(ShardedConfig{
		Shards: 4,
		Config: Config{Blocks: blocks, BlockSize: blockSize,
			Encryption: EncryptNone, Rand: rand.New(rand.NewSource(3))},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(4))
	addrs := make([]uint64, blocks)
	data := make([][]byte, blocks)
	for i := range addrs {
		addrs[i] = uint64(i)
		data[i] = make([]byte, blockSize)
		binary.LittleEndian.PutUint64(data[i], uint64(i)^0xABCD)
	}
	// Shuffle so batch order != address order != shard order.
	rng.Shuffle(len(addrs), func(i, j int) {
		addrs[i], addrs[j] = addrs[j], addrs[i]
		data[i], data[j] = data[j], data[i]
	})
	if err := s.WriteBatch(addrs, data); err != nil {
		t.Fatal(err)
	}

	readAddrs := make([]uint64, blocks)
	for i := range readAddrs {
		readAddrs[i] = rng.Uint64() % blocks
	}
	got, err := s.ReadBatch(readAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(readAddrs) {
		t.Fatalf("got %d results for %d addresses", len(got), len(readAddrs))
	}
	for i, a := range readAddrs {
		want := uint64(a) ^ 0xABCD
		if v := binary.LittleEndian.Uint64(got[i]); v != want {
			t.Errorf("result %d: read(%d) = %d, want %d — batch results out of input order", i, a, v, want)
		}
	}

	// A batch writing the same address twice must end with the later value.
	dup := []uint64{7, 7}
	v1 := make([]byte, blockSize)
	v2 := make([]byte, blockSize)
	v1[0], v2[0] = 1, 2
	if err := s.WriteBatch(dup, [][]byte{v1, v2}); err != nil {
		t.Fatal(err)
	}
	d, err := s.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 2 {
		t.Errorf("duplicate-address batch: final value %d, want 2", d[0])
	}

	// Empty batches are no-ops.
	if res, err := s.ReadBatch(nil); err != nil || res != nil {
		t.Errorf("empty ReadBatch = (%v, %v)", res, err)
	}
	if err := s.WriteBatch(nil, nil); err != nil {
		t.Errorf("empty WriteBatch = %v", err)
	}
	// Mismatched lengths and bad addresses fail fast.
	if err := s.WriteBatch([]uint64{1}, nil); err == nil {
		t.Error("mismatched WriteBatch accepted")
	}
	if _, err := s.ReadBatch([]uint64{blocks + 1}); err == nil {
		t.Error("out-of-range ReadBatch accepted")
	}
}

// TestShardedCloseDrains submits from concurrent clients while Close runs:
// every operation must either complete successfully or fail with ErrClosed
// — nothing hangs, nothing panics, and stats remain readable after Close.
func TestShardedCloseDrains(t *testing.T) {
	const blocks = 512
	s, err := NewSharded(ShardedConfig{
		Shards:     4,
		QueueDepth: 8,
		Config:     Config{Blocks: blocks, BlockSize: 16, Encryption: EncryptNone},
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				err := s.Write(uint64((c*200+i)%blocks), buf)
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("client %d: unexpected error %v", c, err)
					return
				}
			}
		}(c)
	}
	close(start)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Read(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Read after Close = %v, want ErrClosed", err)
	}
	if _, err := s.ReadBatch([]uint64{0}); !errors.Is(err, ErrClosed) {
		t.Errorf("ReadBatch after Close = %v, want ErrClosed", err)
	}
	// The drained shards stay inspectable: accepted writes are visible in
	// the merged counters.
	st := s.Stats()
	sched := s.SchedulerStats()
	var executed uint64
	for _, n := range sched.ExecutedPerShard {
		executed += n
	}
	if st.RealAccesses != executed {
		t.Errorf("merged RealAccesses = %d, scheduler executed %d", st.RealAccesses, executed)
	}
}

// TestShardedLeafSequencesUniform is the sharded layer's security test: no
// matter how adversarial the logical access pattern, every shard's observed
// path sequence must stay uniform over its leaves — the per-shard Path ORAM
// invariant survives the serving layer (scheduling, batching, per-shard key
// and randomness derivation).
func TestShardedLeafSequencesUniform(t *testing.T) {
	const shards = 4
	const blocks = 768 // 192 per shard
	const leafLevel = 6
	const accesses = 8000
	workloads := map[string]func(i int) uint64{
		// Hammer one address: all traffic lands on one shard — its leaf
		// sequence must still be uniform.
		"hammer": func(i int) uint64 { return 7 },
		// Sequential scan round-robins the shards under striping.
		"scan": func(i int) uint64 { return uint64(i) % blocks },
		// Stride chosen adversarially equal to the shard count: under
		// striping all traffic hits a single shard.
		"shard-aligned-stride": func(i int) uint64 { return uint64(i*shards) % blocks },
	}
	for name, w := range workloads {
		t.Run(name, func(t *testing.T) {
			hists := make([][]uint64, shards)
			for i := range hists {
				hists[i] = make([]uint64, 1<<leafLevel)
			}
			s, err := NewSharded(ShardedConfig{
				Shards: shards,
				Config: Config{
					Blocks: blocks, LeafLevel: leafLevel, Z: 4,
					StashCapacity: 150,
					Rand:          rand.New(rand.NewSource(9001)),
				},
				// Per-shard slots: workers write disjoint histograms.
				OnShardPathAccess: func(sh int, leaf uint64) { hists[sh][leaf]++ },
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < accesses; i++ {
				if err := s.Write(w(i), nil); err != nil {
					t.Fatal(err)
				}
			}
			for sh, counts := range hists {
				var total uint64
				for _, c := range counts {
					total += c
				}
				if total == 0 {
					continue // adversarial pattern never touched this shard
				}
				if total < 500 {
					continue // too few samples for a meaningful chi-square
				}
				if x2 := testutil.ChiSquare(counts); x2 > testutil.UniformThreshold(len(counts)) {
					t.Errorf("shard %d: leaf distribution not uniform under %q: chi2=%.1f (%d samples, %d dof)",
						sh, name, x2, total, len(counts)-1)
				}
			}
		})
	}
}

// TestShardedDeterministicReplay checks the per-shard Rand derivation: the
// same parent seed must reproduce the exact same per-shard path sequences.
func TestShardedDeterministicReplay(t *testing.T) {
	observe := func(seed int64) [][]uint64 {
		var mu sync.Mutex
		seqs := make([][]uint64, 3)
		s, err := NewSharded(ShardedConfig{
			Shards: 3,
			Config: Config{Blocks: 300, Rand: rand.New(rand.NewSource(seed))},
			OnShardPathAccess: func(sh int, leaf uint64) {
				mu.Lock()
				seqs[sh] = append(seqs[sh], leaf)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for i := 0; i < 500; i++ {
			if err := s.Write(uint64(i)%300, nil); err != nil {
				t.Fatal(err)
			}
		}
		return seqs
	}
	a, b := observe(77), observe(77)
	c := observe(78)
	for sh := range a {
		if fmt.Sprint(a[sh]) != fmt.Sprint(b[sh]) {
			t.Errorf("shard %d: same seed produced different path sequences", sh)
		}
	}
	same := 0
	for sh := range a {
		if fmt.Sprint(a[sh]) == fmt.Sprint(c[sh]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different parent seeds produced identical per-shard sequences")
	}
}

// TestShardedKeyDerivation checks shard keys are pairwise distinct and
// differ from the master key.
func TestShardedKeyDerivation(t *testing.T) {
	master := bytes.Repeat([]byte{0x5A}, 16)
	keys, err := deriveShardKeys(master, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{string(master): true}
	for i, k := range keys {
		if seen[string(k)] {
			t.Errorf("shard key %d collides (with master or an earlier shard)", i)
		}
		seen[string(k)] = true
	}
	if _, err := deriveShardKeys([]byte{1, 2, 3}, 2); err == nil {
		t.Error("short master key accepted")
	}
	// Domain separation: under one master secret, shard i's key must
	// differ from hierarchy level i's key (hierarchy.go deriveKey), or the
	// two constructions would share counter-scheme pads.
	for i, k := range keys {
		hk, err := deriveKey(master, i)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(k, hk) {
			t.Errorf("shard key %d equals hierarchy level-%d key: missing domain separation", i, i)
		}
	}
}

func TestShardedConfigValidation(t *testing.T) {
	if _, err := NewSharded(ShardedConfig{Config: Config{Blocks: 0}}); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := NewSharded(ShardedConfig{Shards: -1, Config: Config{Blocks: 8}}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := NewSharded(ShardedConfig{Shards: 9, Config: Config{Blocks: 8}}); err == nil {
		t.Error("more shards than blocks accepted")
	}
	if _, err := NewSharded(ShardedConfig{Partition: Partition(9), Config: Config{Blocks: 8}}); err == nil {
		t.Error("unknown partition accepted")
	}
	// An unused Key of arbitrary length must not break plaintext configs
	// (metadata-only forces EncryptNone; the key is never touched) ...
	if s, err := NewSharded(ShardedConfig{Shards: 2,
		Config: Config{Blocks: 8, Key: []byte("20-byte-test-token!!")}}); err != nil {
		t.Errorf("metadata-only config with odd key rejected: %v", err)
	} else {
		s.Close()
	}
	// ... but an encrypted config demands a 16-byte master: a longer key
	// must be rejected loudly, not silently downgraded to AES-128 subkeys.
	if _, err := NewSharded(ShardedConfig{Shards: 2,
		Config: Config{Blocks: 8, BlockSize: 8, Key: make([]byte, 32)}}); err == nil {
		t.Error("32-byte master key silently accepted for encrypted shards")
	}
	s, err := NewSharded(ShardedConfig{Config: Config{Blocks: 8, BlockSize: 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumShards() != 1 {
		t.Errorf("default shard count = %d, want 1", s.NumShards())
	}
	if s.Blocks() != 8 {
		t.Errorf("Blocks() = %d, want 8", s.Blocks())
	}
	if _, err := s.Read(8); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := s.Write(8, make([]byte, 8)); err == nil {
		t.Error("out-of-range write accepted")
	}
	if err := s.Update(8, func([]byte) {}); err == nil {
		t.Error("out-of-range update accepted")
	}
}
