package pathoram

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/testutil"
)

// Tests for the unified Client API and the Open(Spec) composition matrix.
// Everything here is named TestClient* so CI can run the suite with
// `-run 'Client|Hierarchy'`.

// hierEngine unwraps shard i's engine as a *Hierarchy (recursive configs).
func hierEngine(t *testing.T, c Client, i int) *Hierarchy {
	t.Helper()
	s, ok := c.(*Sharded)
	if !ok {
		t.Fatalf("Open returned %T, want *Sharded", c)
	}
	e, ok := s.engines[i].(hierarchyEngine)
	if !ok {
		t.Fatalf("shard %d engine is %T, want a hierarchy", i, s.engines[i])
	}
	return e.Hierarchy
}

// TestClientInterfaceCompliance drives every construction — flat ORAM,
// hierarchy, sharded fleet — through the Client interface alone: the same
// generic workload must behave identically against all of them.
func TestClientInterfaceCompliance(t *testing.T) {
	const blocks = 512
	const blockSize = 16
	builds := map[string]func() (Client, error){
		"oram": func() (Client, error) {
			return New(Config{Blocks: blocks, BlockSize: blockSize,
				Encryption: EncryptNone, Rand: rand.New(rand.NewSource(1))})
		},
		"hierarchy": func() (Client, error) {
			return NewHierarchy(HierarchyConfig{Blocks: blocks, BlockSize: blockSize,
				PosBlockSize: 16, OnChipPosMapMax: 128,
				Encryption: EncryptNone, Rand: rand.New(rand.NewSource(2))})
		},
		"sharded-flat": func() (Client, error) {
			return Open(Spec{Blocks: blocks, BlockSize: blockSize, Shards: 3,
				Encryption: EncryptNone, Rand: rand.New(rand.NewSource(3))})
		},
		"sharded-recursive": func() (Client, error) {
			return Open(Spec{Blocks: blocks, BlockSize: blockSize, Shards: 3,
				PosMap: PosMapRecursive, PosBlockSize: 16, OnChipPosMapMax: 128,
				Encryption: EncryptNone, Rand: rand.New(rand.NewSource(4))})
		},
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			c, err := build()
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			// Batched writes, batched readback.
			addrs := make([]uint64, 64)
			data := make([][]byte, 64)
			for i := range addrs {
				addrs[i] = uint64(i * 7 % blocks)
				data[i] = bytes.Repeat([]byte{byte(i + 1)}, blockSize)
			}
			if err := c.WriteBatch(addrs, data); err != nil {
				t.Fatal(err)
			}
			got, err := c.ReadBatch(addrs)
			if err != nil {
				t.Fatal(err)
			}
			// Duplicates in addrs: later write wins; verify against a shadow.
			shadow := map[uint64][]byte{}
			for i, a := range addrs {
				shadow[a] = data[i]
			}
			for i, a := range addrs {
				if !bytes.Equal(got[i], shadow[a]) {
					t.Fatalf("slot %d (addr %d): got %x", i, a, got[i][0])
				}
			}
			// Single ops and update.
			if err := c.Update(addrs[0], func(d []byte) { d[0] = 0xEE }); err != nil {
				t.Fatal(err)
			}
			one, err := c.Read(addrs[0])
			if err != nil {
				t.Fatal(err)
			}
			if one[0] != 0xEE {
				t.Fatalf("update not visible: %x", one[0])
			}
			// Exclusive checkout round-trip.
			d, found, group, err := c.Load(addrs[1])
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatal("loaded block not found")
			}
			if err := c.Store(addrs[1], d); err != nil {
				t.Fatal(err)
			}
			for _, g := range group {
				if err := c.Store(g.Addr, g.Data); err != nil {
					t.Fatal(err)
				}
			}
			// Padding, background work, flush: must not perturb contents.
			if err := c.PaddingAccess(); err != nil {
				t.Fatal(err)
			}
			if _, err := c.StepBackground(true); err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			if c.PendingWriteBacks() != 0 {
				t.Errorf("pending write-backs after Flush: %d", c.PendingWriteBacks())
			}
			st := c.Stats()
			if st.RealAccesses == 0 || st.PaddingAccesses == 0 {
				t.Errorf("stats flat: %+v", st)
			}
			if c.StashSize() < 0 {
				t.Error("negative stash")
			}
			c.ResetStats()
			if c.Stats().RealAccesses != 0 {
				t.Error("ResetStats left counters")
			}
			final, err := c.Read(addrs[1])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(final, shadow[addrs[1]]) {
				t.Fatal("contents perturbed by padding/background work")
			}
			if _, ok := c.TimingStats(); ok {
				t.Error("untimed construction claimed timing stats")
			}
		})
	}
}

// TestClientShardedRecursiveEquivalence is the composition acceptance
// test: the same seeded workload replayed against a flat Sharded and an
// Open sharded-recursive client must agree with the shadow model (and
// therefore with each other) at every step and after a full readback,
// while every level of every shard's hierarchy keeps a uniform leaf
// distribution — the per-shard Path ORAM invariant survives both the
// serving layer and the recursion.
func TestClientShardedRecursiveEquivalence(t *testing.T) {
	const blocks = 1536
	const blockSize = 16
	const shards = 3
	const ops = 4000

	type leafKey struct{ shard, level int }
	var mu sync.Mutex
	hists := map[leafKey][]uint64{}

	rec, err := Open(Spec{
		Blocks: blocks, BlockSize: blockSize, Shards: shards,
		PosMap: PosMapRecursive, PosBlockSize: 16, OnChipPosMapMax: 256,
		Encryption: EncryptNone,
		Rand:       rand.New(rand.NewSource(42)),
		OnPathAccess: func(shard, level int, leaf uint64) {
			mu.Lock()
			k := leafKey{shard, level}
			for uint64(len(hists[k])) <= leaf {
				hists[k] = append(hists[k], 0)
			}
			hists[k][leaf]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.(*Sharded).NumORAMs(); got < 2 {
		t.Fatalf("recursive spec built a chain of depth %d, want >= 2", got)
	}

	flat, err := NewSharded(ShardedConfig{
		Shards: shards,
		Config: Config{Blocks: blocks, BlockSize: blockSize,
			Encryption: EncryptNone, Rand: rand.New(rand.NewSource(43))},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()

	shadow := map[uint64][]byte{}
	expect := func(addr uint64) []byte {
		if d, ok := shadow[addr]; ok {
			return d
		}
		return make([]byte, blockSize)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < ops; i++ {
		addr := rng.Uint64() % blocks
		if rng.Intn(2) == 0 {
			d := make([]byte, blockSize)
			rng.Read(d)
			if err := rec.Write(addr, d); err != nil {
				t.Fatal(err)
			}
			if err := flat.Write(addr, d); err != nil {
				t.Fatal(err)
			}
			shadow[addr] = d
		} else {
			want := expect(addr)
			gotR, err := rec.Read(addr)
			if err != nil {
				t.Fatal(err)
			}
			gotF, err := flat.Read(addr)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotR, want) || !bytes.Equal(gotF, want) {
				t.Fatalf("op %d: read(%d) recursive=%x flat=%x want %x", i, addr, gotR, gotF, want)
			}
		}
	}
	// Full logical readback: both compositions hold identical contents.
	all := make([]uint64, blocks)
	for i := range all {
		all[i] = uint64(i)
	}
	gotR, err := rec.ReadBatch(all)
	if err != nil {
		t.Fatal(err)
	}
	gotF, err := flat.ReadBatch(all)
	if err != nil {
		t.Fatal(err)
	}
	for a := range all {
		want := expect(uint64(a))
		if !bytes.Equal(gotR[a], want) || !bytes.Equal(gotF[a], want) {
			t.Fatalf("readback diverges at %d", a)
		}
	}
	// Per-level leaf uniformity, shard by shard: chi-square against the
	// uniform distribution with a +6-sigma bound on the statistic.
	for i := 0; i < shards; i++ {
		layout := hierEngine(t, rec, i).Layout()
		for lvl, info := range layout {
			counts := hists[leafKey{i, lvl}]
			leaves := uint64(1) << uint(info.LeafLevel)
			for uint64(len(counts)) < leaves {
				counts = append(counts, 0)
			}
			var total uint64
			for _, c := range counts {
				total += c
			}
			if total < 8*leaves {
				continue // too few samples for a meaningful statistic
			}
			if x2 := testutil.ChiSquare(counts); x2 > testutil.UniformThreshold(len(counts)) {
				t.Errorf("shard %d level %d: leaf distribution not uniform: chi2=%.1f over %d leaves (%d samples)",
					i, lvl, x2, leaves, total)
			}
		}
	}
}

// TestClientShardedHierarchyConcurrent hammers an async sharded-recursive
// client from many goroutines under the race detector: exclusive engine
// ownership, the shared bus discipline and read-your-writes must all
// survive the composition.
func TestClientShardedHierarchyConcurrent(t *testing.T) {
	const blocks = 1024
	const shards = 4
	const clients = 8
	const opsPer = 40
	c, err := Open(Spec{
		Blocks: blocks, BlockSize: 16, Shards: shards,
		PosMap: PosMapRecursive, PosBlockSize: 16, OnChipPosMapMax: 256,
		Encryption:    EncryptNone,
		AsyncEviction: true,
		Rand:          rand.New(rand.NewSource(11)),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			base := uint64(cl) * (blocks / clients)
			buf := make([]byte, 16)
			for i := 0; i < opsPer; i++ {
				addr := base + uint64(i)%(blocks/clients)
				buf[0] = byte(addr)
				if err := c.Write(addr, buf); err != nil {
					t.Errorf("client %d: %v", cl, err)
					return
				}
				got, err := c.Read(addr)
				if err != nil {
					t.Errorf("client %d: %v", cl, err)
					return
				}
				if got[0] != byte(addr) {
					t.Errorf("client %d: read-your-writes violated at %d", cl, addr)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.PendingWriteBacks() != 0 {
		t.Errorf("pending write-backs after Close: %d", c.PendingWriteBacks())
	}
	if st := c.Stats(); st.RealAccesses == 0 {
		t.Error("no accesses recorded")
	}
}

// TestClientDRAMRecursiveReplay extends the timed-backend acceptance test
// to the recursive composition: a seeded trace against Open sharded
// hierarchies on BackendMem and BackendDRAM must touch the same
// (shard, level, leaf) sequence, read identically, and leave every level
// of every shard's chain byte-identical after Flush — timing is
// observation-only through the whole recursive stack.
func TestClientDRAMRecursiveReplay(t *testing.T) {
	const blocks = 600
	const shards = 2
	const ops = 900
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			type access struct {
				shard, level int
				leaf         uint64
			}
			build := func(backend Backend) (Client, *[]access) {
				log := &[]access{}
				var mu sync.Mutex
				spec := Spec{
					Blocks: blocks, BlockSize: 16, Shards: shards,
					PosMap: PosMapRecursive, PosBlockSize: 16, OnChipPosMapMax: 128,
					Encryption:    EncryptNone,
					Backend:       backend,
					AsyncEviction: async,
					// Idle evictions fire on the goroutine scheduler's whim
					// and would consume randomness nondeterministically;
					// write-back completions are the only other idle work and
					// never change the post-Flush state.
					EvictionsPerIdle: -1,
					Rand:             rand.New(rand.NewSource(77)),
					OnPathAccess: func(sh, lvl int, leaf uint64) {
						mu.Lock()
						*log = append(*log, access{sh, lvl, leaf})
						mu.Unlock()
					},
				}
				if backend == BackendDRAM {
					spec.DRAMChannels = 2
				}
				c, err := Open(spec)
				if err != nil {
					t.Fatal(err)
				}
				return c, log
			}
			memC, memLog := build(BackendMem)
			defer memC.Close()
			dramC, dramLog := build(BackendDRAM)
			defer dramC.Close()

			shadow := map[uint64][]byte{}
			rng := rand.New(rand.NewSource(123))
			for i := 0; i < ops; i++ {
				addr := rng.Uint64() % blocks
				if rng.Intn(2) == 0 {
					d := make([]byte, 16)
					rng.Read(d)
					if err := memC.Write(addr, d); err != nil {
						t.Fatal(err)
					}
					if err := dramC.Write(addr, d); err != nil {
						t.Fatal(err)
					}
					shadow[addr] = d
				} else {
					want, ok := shadow[addr]
					if !ok {
						want = make([]byte, 16)
					}
					gotM, err := memC.Read(addr)
					if err != nil {
						t.Fatal(err)
					}
					gotD, err := dramC.Read(addr)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gotM, want) || !bytes.Equal(gotD, want) {
						t.Fatalf("op %d: read(%d) mem=%x dram=%x", i, addr, gotM, gotD)
					}
				}
			}
			if err := memC.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := dramC.Flush(); err != nil {
				t.Fatal(err)
			}
			// Identical (shard, level, leaf) sequences.
			if len(*memLog) != len(*dramLog) {
				t.Fatalf("access counts diverge: mem %d, dram %d", len(*memLog), len(*dramLog))
			}
			for j := range *memLog {
				if (*memLog)[j] != (*dramLog)[j] {
					t.Fatalf("access sequences diverge at %d: mem %+v dram %+v", j, (*memLog)[j], (*dramLog)[j])
				}
			}
			// Byte-identical trees, shard by shard, level by level.
			for i := 0; i < shards; i++ {
				mh, dh := hierEngine(t, memC, i), hierEngine(t, dramC, i)
				if mh.NumORAMs() != dh.NumORAMs() {
					t.Fatalf("shard %d: chain depths diverge", i)
				}
				for lvl := 0; lvl < mh.NumORAMs(); lvl++ {
					mt := treeSnapshot(memTreeOf(t, mh.inner.Level(lvl).BucketStore()))
					dt := treeSnapshot(memTreeOf(t, dh.inner.Level(lvl).BucketStore()))
					if len(mt) != len(dt) {
						t.Fatalf("shard %d level %d: block counts diverge (mem %d, dram %d)", i, lvl, len(mt), len(dt))
					}
					for j := range mt {
						if mt[j] != dt[j] {
							t.Fatalf("shard %d level %d: trees diverge at block %d: mem %q dram %q", i, lvl, j, mt[j], dt[j])
						}
					}
				}
			}
			// The timed run really drove the model through every level.
			ts, ok := dramC.TimingStats()
			if !ok {
				t.Fatal("DRAM recursive client reported no timing stats")
			}
			if ts.PathReads == 0 || ts.PathWrites == 0 || ts.DRAM.Reads == 0 {
				t.Fatalf("timing stats flat: %+v", ts)
			}
			// Every access walks H trees: path reads charged must be the
			// per-level real+dummy+padding access total, not just data-ORAM
			// traffic.
			st := dramC.Stats()
			wantReads := st.RealAccesses + st.DummyAccesses + st.PaddingAccesses
			if ts.PathReads != wantReads {
				t.Errorf("PathReads=%d, protocol accesses (all levels)=%d", ts.PathReads, wantReads)
			}
			if async && ts.DeferredWrites == 0 {
				t.Error("async timed run charged no deferred write-backs")
			}
			if _, ok := memC.TimingStats(); ok {
				t.Error("mem backend claimed timing stats")
			}
		})
	}
}

// TestClientShardedLoadStore covers the exclusive-checkout path through
// the serving layer: group members come back with correctly translated
// logical addresses under both fixed partitions, and the oblivious
// routing mode rejects checkout.
func TestClientShardedLoadStore(t *testing.T) {
	for _, part := range []Partition{PartitionStripe, PartitionRange} {
		t.Run(partName(part), func(t *testing.T) {
			c, err := Open(Spec{
				Blocks: 256, BlockSize: 8, Shards: 3, Partition: part,
				SuperBlockSize: 2,
				Encryption:     EncryptNone,
				Rand:           rand.New(rand.NewSource(5)),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			s := c.(*Sharded)
			// Two shard-local neighbors: local addresses 2k and 2k+1 of one
			// shard form a super-block group.
			sh := 1
			a0, a1 := s.globalOf(sh, 6), s.globalOf(sh, 7)
			if err := c.Write(a0, bytes.Repeat([]byte{1}, 8)); err != nil {
				t.Fatal(err)
			}
			if err := c.Write(a1, bytes.Repeat([]byte{2}, 8)); err != nil {
				t.Fatal(err)
			}
			data, found, group, err := c.Load(a0)
			if err != nil {
				t.Fatal(err)
			}
			if !found || data[0] != 1 {
				t.Fatalf("Load(%d): found=%v data=%x", a0, found, data)
			}
			if len(group) != 1 || group[0].Addr != a1 || group[0].Data[0] != 2 {
				t.Fatalf("group sibling mistranslated: %+v (want addr %d)", group, a1)
			}
			// While checked out, a plain access must fail on that shard.
			if _, err := c.Read(a0); err == nil {
				t.Error("read of checked-out block succeeded")
			}
			if err := c.Store(a0, bytes.Repeat([]byte{9}, 8)); err != nil {
				t.Fatal(err)
			}
			if err := c.Store(a1, group[0].Data); err != nil {
				t.Fatal(err)
			}
			got, err := c.Read(a0)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != 9 {
				t.Fatalf("after Store: %x", got[0])
			}
		})
	}
	t.Run("random-rejects", func(t *testing.T) {
		c, err := Open(Spec{
			Blocks: 64, BlockSize: 8, Shards: 2, Partition: PartitionRandom,
			Encryption: EncryptNone, Rand: rand.New(rand.NewSource(6)),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, _, _, err := c.Load(3); err == nil {
			t.Error("Load under PartitionRandom succeeded")
		}
		if err := c.Store(3, make([]byte, 8)); err == nil {
			t.Error("Store under PartitionRandom succeeded")
		}
		// PaddingAccess must mirror the two-leg shape real operations have
		// here: exactly two scheduler padding ops per call.
		if err := c.PaddingAccess(); err != nil {
			t.Fatal(err)
		}
		if got := c.(*Sharded).SchedulerStats().PaddingOps; got != 2 {
			t.Errorf("PaddingAccess under PartitionRandom issued %d legs, want 2", got)
		}
	})
	t.Run("fixed-single-leg", func(t *testing.T) {
		c, err := Open(Spec{
			Blocks: 64, BlockSize: 8, Shards: 2,
			Encryption: EncryptNone, Rand: rand.New(rand.NewSource(7)),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.PaddingAccess(); err != nil {
			t.Fatal(err)
		}
		if got := c.(*Sharded).SchedulerStats().PaddingOps; got != 1 {
			t.Errorf("PaddingAccess under a fixed partition issued %d legs, want 1", got)
		}
	})
}

// TestClientOpenValidation pins Open's config hygiene: recursion knobs on
// a flat spec are rejected (a sweep must never vary an inert field), and
// unknown policies fail.
func TestClientOpenValidation(t *testing.T) {
	if _, err := Open(Spec{Blocks: 64, BlockSize: 8, PosBlockSize: 16}); err == nil {
		t.Error("flat spec with PosBlockSize accepted")
	}
	if _, err := Open(Spec{Blocks: 64, BlockSize: 8, OnChipPosMapMax: 64}); err == nil {
		t.Error("flat spec with OnChipPosMapMax accepted")
	}
	if _, err := Open(Spec{Blocks: 64, BlockSize: 8, PosMap: PosMapPolicy(99)}); err == nil {
		t.Error("unknown posmap policy accepted")
	}
	if _, err := Open(Spec{Blocks: 64, BlockSize: 8, DRAMChannels: 4}); err == nil {
		t.Error("untimed spec with DRAMChannels accepted")
	}
	if _, err := Open(Spec{Blocks: 64, BlockSize: 8, DRAMSerialize: true}); err == nil {
		t.Error("untimed spec with DRAMSerialize accepted")
	}
	if _, err := Open(Spec{BlockSize: 8}); err == nil {
		t.Error("zero Blocks accepted")
	}
	// The composed construction reports its shape.
	c, err := Open(Spec{Blocks: 256, BlockSize: 8, Shards: 2,
		PosMap: PosMapRecursive, PosBlockSize: 16, OnChipPosMapMax: 64,
		Encryption: EncryptNone, Rand: rand.New(rand.NewSource(8))})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.(*Sharded)
	if s.NumORAMs() < 2 {
		t.Errorf("recursive chain depth %d", s.NumORAMs())
	}
	if b := s.OnChipPositionMapBytes(); b == 0 || b > 2*64 {
		t.Errorf("on-chip posmap bytes %d, want in (0, %d]", b, 2*64)
	}
	flatC, err := Open(Spec{Blocks: 256, BlockSize: 8, Shards: 2,
		Encryption: EncryptNone, Rand: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	defer flatC.Close()
	fs := flatC.(*Sharded)
	if fs.NumORAMs() != 1 {
		t.Errorf("flat chain depth %d", fs.NumORAMs())
	}
	// Flat on-chip state is the whole map: 4 bytes per block.
	if b := fs.OnChipPositionMapBytes(); b != 4*256 {
		t.Errorf("flat on-chip posmap bytes %d, want %d", b, 4*256)
	}
}

// TestClientClosedErrors pins the post-Close contract of the new Client
// entry points on the serving layer.
func TestClientClosedErrors(t *testing.T) {
	c, err := Open(Spec{Blocks: 64, BlockSize: 8, Shards: 2,
		Encryption: EncryptNone, Rand: rand.New(rand.NewSource(10))})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Load(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Load after Close = %v, want ErrClosed", err)
	}
	if err := c.Store(1, make([]byte, 8)); !errors.Is(err, ErrClosed) {
		t.Errorf("Store after Close = %v, want ErrClosed", err)
	}
	if err := c.PaddingAccess(); !errors.Is(err, ErrClosed) {
		t.Errorf("PaddingAccess after Close = %v, want ErrClosed", err)
	}
	// StepBackground degrades to a direct pump on the quiescent engines.
	if _, err := c.StepBackground(false); err != nil {
		t.Errorf("StepBackground after Close: %v", err)
	}
}
