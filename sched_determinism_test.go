package pathoram

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// Tests named TestQueue* run in the CI `-run 'FRFCFS|Queue|Paced'` shard.

// queueDeterminismRun drives one full load against a fresh multi-shard
// timed instance and returns its closing timing snapshot. Batches span
// every shard, so the shard workers charge the shared bus concurrently —
// exactly the regime where lock-acquisition order used to leak into the
// modeled cycle totals. The config is flat and synchronous: per-shard
// request streams are then functions of the (seeded) protocol alone, and
// the event-ordered bus must make the totals a function of those streams.
func queueDeterminismRun(t *testing.T, sched MemSched, seed int64) TimingStats {
	t.Helper()
	const shards, blocks, batch, ops = 4, 256, 16, 200
	cfg := dramConfig(shards, blocks, PartitionStripe, false, seed)
	cfg.DRAMSched = sched
	s, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	buf := make([]byte, 16)
	addrs := make([]uint64, batch)
	data := make([][]byte, batch)
	for j := range data {
		data[j] = buf
	}
	for lo := uint64(0); lo < blocks; lo += batch {
		for j := range addrs {
			addrs[j] = lo + uint64(j)
		}
		if err := s.WriteBatch(addrs, data); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(seed + 1))
	for op := 0; op < ops; op += batch {
		for j := range addrs {
			addrs[j] = rng.Uint64() % blocks
		}
		if rng.Intn(2) == 0 {
			if err := s.WriteBatch(addrs, data); err != nil {
				t.Fatal(err)
			}
		} else if _, err := s.ReadBatch(addrs); err != nil {
			t.Fatal(err)
		}
	}
	ts, ok := s.TimingStats()
	if !ok {
		t.Fatal("no timing stats on the dram backend")
	}
	return ts
}

// TestQueueDeterministicAcrossGOMAXPROCS is the reproducibility
// acceptance check: repeated runs of the same seeded multi-shard load
// must produce byte-identical TimingStats — every modeled cycle total,
// latency sum and DRAM counter — whatever GOMAXPROCS the goroutine
// scheduler is given, under both scheduling policies.
func TestQueueDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, sched := range []MemSched{MemSchedInOrder, MemSchedFRFCFS} {
		for _, seed := range []int64{3, 11} {
			var ref TimingStats
			have := false
			for _, procs := range []int{1, 4} {
				runtime.GOMAXPROCS(procs)
				for rep := 0; rep < 2; rep++ {
					ts := queueDeterminismRun(t, sched, seed)
					if !have {
						ref, have = ts, true
						continue
					}
					if !reflect.DeepEqual(ts, ref) {
						t.Fatalf("sched=%v seed=%d GOMAXPROCS=%d rep=%d: timing diverged\nref %+v\ngot %+v",
							sched, seed, procs, rep, ref, ts)
					}
				}
			}
			if ref.Cycles == 0 {
				t.Fatalf("sched=%v seed=%d: modeled clock never advanced", sched, seed)
			}
		}
	}
}
