package pathoram

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/testutil"
)

// Adversary-view tests for the oblivious routing modes (PartitionRandom,
// ShardedConfig.Padded). The adversary observes, per shard, every path
// access (OnShardPathAccess) — real, padding and background-eviction
// accesses are indistinguishable on the wire, so the observable is the
// per-shard access schedule. SECURITY.md states the properties these tests
// pin down.

// adversarialPatterns are address patterns chosen to maximally skew naive
// routing: hammering one address, hammering a different one (a pair that
// must be indistinguishable), sequential scans over different windows,
// shard-aligned strides, and a spread-out pseudo-random set.
func adversarialPatterns(k int, blocks uint64) map[string][]uint64 {
	pat := func(f func(i int) uint64) []uint64 {
		out := make([]uint64, k)
		for i := range out {
			out[i] = f(i) % blocks
		}
		return out
	}
	rng := rand.New(rand.NewSource(555))
	return map[string][]uint64{
		"hammer-7":    pat(func(int) uint64 { return 7 }),
		"hammer-401":  pat(func(int) uint64 { return 401 }),
		"scan-low":    pat(func(i int) uint64 { return uint64(i) }),
		"scan-high":   pat(func(i int) uint64 { return uint64(100 + i) }),
		"stride-4":    pat(func(i int) uint64 { return uint64(i * 4) }),
		"pseudo-rand": pat(func(int) uint64 { return rng.Uint64() }),
	}
}

// paddedRandomCounts runs one batch (a WriteBatch when write is true, else
// a ReadBatch) of the given addresses against a fresh padded
// PartitionRandom store seeded identically every time, and returns the
// per-shard access counts the adversary would observe.
func paddedRandomCounts(t *testing.T, shards int, blocks uint64, addrs []uint64, write bool) []uint64 {
	t.Helper()
	counts := make([]uint64, shards)
	s, err := NewSharded(ShardedConfig{
		Shards:    shards,
		Partition: PartitionRandom,
		Padded:    true,
		Config: Config{
			Blocks: blocks, BlockSize: 16,
			// Generous stash: background eviction must never fire, so the
			// observed counts are exactly the batch schedule.
			StashCapacity: 400,
			Rand:          rand.New(rand.NewSource(31337)),
		},
		OnShardPathAccess: func(sh int, _ uint64) { counts[sh]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if write {
		data := make([][]byte, len(addrs))
		for i := range data {
			data[i] = make([]byte, 16)
			binary.LittleEndian.PutUint64(data[i], uint64(i))
		}
		if err := s.WriteBatch(addrs, data); err != nil {
			t.Fatal(err)
		}
	} else if _, err := s.ReadBatch(addrs); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PaddingAccesses == 0 {
		t.Fatalf("padded batch issued no padding accesses (stats: %+v)", st)
	}
	return counts
}

// TestPaddedRandomScheduleInputIndependent is the acceptance test for the
// oblivious routing modes: under PartitionRandom with Padded batches, the
// per-shard access schedule of a batch is a function of the router's
// internal coins alone. Replaying adversarially different address patterns
// of the same batch size against the same seed must produce *identical*
// per-shard access counts — and within every batch, all shards must be
// touched equally often (the schedule is flat, so no shard stands out).
func TestPaddedRandomScheduleInputIndependent(t *testing.T) {
	const shards = 4
	const blocks = 512
	const k = 64
	for _, write := range []bool{false, true} {
		name := "read-batch"
		if write {
			name = "write-batch"
		}
		t.Run(name, func(t *testing.T) {
			var refName string
			var ref []uint64
			for pname, addrs := range adversarialPatterns(k, blocks) {
				counts := paddedRandomCounts(t, shards, blocks, addrs, write)
				for sh := 1; sh < shards; sh++ {
					if counts[sh] != counts[0] {
						t.Fatalf("%s: schedule not flat: per-shard counts %v", pname, counts)
					}
				}
				// Two phases (fetch + relocate), each at least
				// ceil(k/shards) slots on every shard.
				if min := uint64(2 * k / shards); counts[0] < min {
					t.Fatalf("%s: shard counts %v below the fixed shape minimum %d", pname, counts, min)
				}
				if ref == nil {
					refName, ref = pname, counts
					continue
				}
				if fmt.Sprint(counts) != fmt.Sprint(ref) {
					t.Errorf("adversary distinguishes %q from %q: per-shard counts %v vs %v",
						pname, refName, counts, ref)
				}
			}
		})
	}
}

// TestPaddedBatchesStayFlatAcrossBatches checks the always-true guarantee
// for multi-batch traffic: within every padded batch — whatever came
// before it — each shard is touched exactly as often as every other.
func TestPaddedBatchesStayFlatAcrossBatches(t *testing.T) {
	const shards = 4
	const blocks = 256
	counts := make([]uint64, shards)
	s, err := NewSharded(ShardedConfig{
		Shards:    shards,
		Partition: PartitionRandom,
		Padded:    true,
		Config: Config{
			Blocks: blocks, BlockSize: 8, StashCapacity: 400,
			Rand: rand.New(rand.NewSource(99)),
		},
		OnShardPathAccess: func(sh int, _ uint64) { counts[sh]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, 8)
	batch := func(addrs []uint64) {
		t.Helper()
		before := append([]uint64(nil), counts...)
		if rng.Intn(2) == 0 {
			if _, err := s.ReadBatch(addrs); err != nil {
				t.Fatal(err)
			}
		} else {
			data := make([][]byte, len(addrs))
			for i := range data {
				data[i] = payload
			}
			if err := s.WriteBatch(addrs, data); err != nil {
				t.Fatal(err)
			}
		}
		delta := make([]uint64, shards)
		for sh := range delta {
			delta[sh] = counts[sh] - before[sh]
		}
		for sh := 1; sh < shards; sh++ {
			if delta[sh] != delta[0] {
				t.Fatalf("batch schedule not flat: per-shard delta %v", delta)
			}
		}
	}
	for round := 0; round < 12; round++ {
		addrs := make([]uint64, 32)
		switch round % 3 {
		case 0: // hammer
			for i := range addrs {
				addrs[i] = uint64(round)
			}
		case 1: // scan
			for i := range addrs {
				addrs[i] = uint64(round*17+i) % blocks
			}
		default: // random with duplicates
			for i := range addrs {
				addrs[i] = rng.Uint64() % 64
			}
		}
		batch(addrs)
	}
}

// TestPaddedFixedPartitionFlatCounts checks the padded mode under the
// stripe partition: even a batch crafted to land entirely on one shard
// produces a flat per-shard schedule (every shard executes exactly the
// busiest shard's demand), so the adversary cannot tell which slots were
// real. The shape's height still tracks the demand — that residual leak is
// the decision-table trade documented in DESIGN.md.
func TestPaddedFixedPartitionFlatCounts(t *testing.T) {
	const shards = 4
	const blocks = 256
	const k = 32
	s, err := NewSharded(ShardedConfig{
		Shards: shards,
		Padded: true,
		Config: Config{Blocks: blocks, BlockSize: 8, StashCapacity: 400,
			Rand: rand.New(rand.NewSource(5))},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Every address ≡ 0 (mod shards): under striping all real requests hit
	// shard 0.
	addrs := make([]uint64, k)
	data := make([][]byte, k)
	for i := range addrs {
		addrs[i] = uint64(i*shards) % blocks
		data[i] = make([]byte, 8)
		binary.LittleEndian.PutUint64(data[i], uint64(i))
	}
	if err := s.WriteBatch(addrs, data); err != nil {
		t.Fatal(err)
	}
	sched := s.SchedulerStats()
	// On-the-wire traffic per shard is real executed requests plus padding
	// (ExecutedPerShard alone deliberately counts only real traffic).
	wire := make([]uint64, shards)
	for sh := range wire {
		wire[sh] = sched.ExecutedPerShard[sh] + sched.PaddingPerShard[sh]
	}
	for sh := 1; sh < shards; sh++ {
		if wire[sh] != wire[0] {
			t.Fatalf("padded stripe batch not flat on the wire: %v (executed %v, padding %v)",
				wire, sched.ExecutedPerShard, sched.PaddingPerShard)
		}
	}
	// The crafted batch puts every real request on shard 0; executed must
	// now say exactly that instead of being smeared by padding.
	if sched.ExecutedPerShard[0] != k {
		t.Errorf("ExecutedPerShard[0] = %d, want %d real requests", sched.ExecutedPerShard[0], k)
	}
	for sh := 1; sh < shards; sh++ {
		if sched.ExecutedPerShard[sh] != 0 {
			t.Errorf("ExecutedPerShard[%d] = %d, want 0 (all real traffic was crafted onto shard 0)",
				sh, sched.ExecutedPerShard[sh])
		}
	}
	// All k requests were real on shard 0, so every shard ran k slots:
	// k real + (shards-1)*k padding.
	if want := uint64((shards - 1) * k); sched.PaddingOps != want {
		t.Errorf("PaddingOps = %d, want %d", sched.PaddingOps, want)
	}
	// The data still round-trips through the padded path.
	got, err := s.ReadBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range addrs {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("padded read-back mismatch at %d", i)
		}
	}
}

// TestRandomPartitionShardChoiceUniform is the chi-square test for the
// router's shard draws: over many single operations, the per-shard
// executed-request counts must be uniform across shards — the routing
// carries no address signal even for adversarial patterns.
func TestRandomPartitionShardChoiceUniform(t *testing.T) {
	const shards = 8
	const blocks = 1024
	const ops = 4000
	workloads := map[string]func(i int) uint64{
		"hammer": func(int) uint64 { return 12 },
		"scan":   func(i int) uint64 { return uint64(i) % blocks },
		"stride": func(i int) uint64 { return uint64(i*shards) % blocks },
	}
	for name, w := range workloads {
		t.Run(name, func(t *testing.T) {
			s, err := NewSharded(ShardedConfig{
				Shards:    shards,
				Partition: PartitionRandom,
				Config: Config{Blocks: blocks,
					Rand: rand.New(rand.NewSource(2024))},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < ops; i++ {
				if err := s.Write(w(i), nil); err != nil {
					t.Fatal(err)
				}
			}
			// Each operation issues two legs, each on an independently
			// uniform shard: 2*ops draws over `shards` bins.
			counts := s.SchedulerStats().ExecutedPerShard
			var total uint64
			for _, c := range counts {
				total += c
			}
			if total != 2*ops {
				t.Fatalf("executed %d legs, want %d", total, 2*ops)
			}
			if x2 := testutil.ChiSquare(counts); x2 > testutil.UniformThreshold(len(counts)) {
				t.Errorf("shard choices not uniform under %q: chi2=%.1f, counts %v", name, x2, counts)
			}
		})
	}
}

// TestRandomPartitionMatchesSingleORAM replays a mixed trace against a
// single ORAM and against PartitionRandom configurations (plain and
// padded, singles and batches): oblivious routing must be purely an
// execution-layer change.
func TestRandomPartitionMatchesSingleORAM(t *testing.T) {
	const blocks = 200
	const blockSize = 16
	const steps = 60

	rng := rand.New(rand.NewSource(8))
	// A step is either a burst of single ops or a batch.
	type step struct {
		batch bool
		write bool
		addrs []uint64
		data  [][]byte
	}
	trace := make([]step, steps)
	for i := range trace {
		st := step{batch: rng.Intn(2) == 0, write: rng.Intn(2) == 0}
		n := 1 + rng.Intn(24)
		st.addrs = make([]uint64, n)
		for j := range st.addrs {
			st.addrs[j] = rng.Uint64() % blocks
		}
		if st.write {
			st.data = make([][]byte, n)
			for j := range st.data {
				st.data[j] = make([]byte, blockSize)
				rng.Read(st.data[j])
			}
		}
		trace[i] = st
	}

	run := func(t *testing.T, read func([]uint64, bool) [][]byte, write func([]uint64, [][]byte, bool)) [][][]byte {
		t.Helper()
		var out [][][]byte
		for _, st := range trace {
			if st.write {
				write(st.addrs, st.data, st.batch)
			} else {
				out = append(out, read(st.addrs, st.batch))
			}
		}
		return out
	}

	single, err := New(Config{Blocks: blocks, BlockSize: blockSize,
		Encryption: EncryptCounter, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	want := run(t,
		func(addrs []uint64, _ bool) [][]byte {
			out := make([][]byte, len(addrs))
			for i, a := range addrs {
				d, err := single.Read(a)
				if err != nil {
					t.Fatal(err)
				}
				out[i] = d
			}
			return out
		},
		func(addrs []uint64, data [][]byte, _ bool) {
			for i, a := range addrs {
				if err := single.Write(a, data[i]); err != nil {
					t.Fatal(err)
				}
			}
		})

	for _, padded := range []bool{false, true} {
		for _, shards := range []int{1, 3, 4} {
			t.Run(fmt.Sprintf("padded=%v/shards=%d", padded, shards), func(t *testing.T) {
				s, err := NewSharded(ShardedConfig{
					Shards: shards, Partition: PartitionRandom, Padded: padded,
					Config: Config{Blocks: blocks, BlockSize: blockSize,
						Encryption: EncryptCounter, Integrity: true,
						Rand: rand.New(rand.NewSource(2))},
				})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				got := run(t,
					func(addrs []uint64, batch bool) [][]byte {
						if batch {
							out, err := s.ReadBatch(addrs)
							if err != nil {
								t.Fatal(err)
							}
							return out
						}
						out := make([][]byte, len(addrs))
						for i, a := range addrs {
							d, err := s.Read(a)
							if err != nil {
								t.Fatal(err)
							}
							out[i] = d
						}
						return out
					},
					func(addrs []uint64, data [][]byte, batch bool) {
						if batch {
							if err := s.WriteBatch(addrs, data); err != nil {
								t.Fatal(err)
							}
							return
						}
						for i, a := range addrs {
							if err := s.Write(a, data[i]); err != nil {
								t.Fatal(err)
							}
						}
					})
				for i := range want {
					for j := range want[i] {
						if !bytes.Equal(got[i][j], want[i][j]) {
							t.Fatalf("read group %d slot %d: got %x want %x", i, j, got[i][j], want[i][j])
						}
					}
				}
			})
		}
	}
}

// TestRandomPartitionSemantics pins the API edges of the oblivious router:
// duplicate handling, Update, copies, validation and close behavior.
func TestRandomPartitionSemantics(t *testing.T) {
	const blocks = 128
	const blockSize = 8
	newStore := func(padded bool) *Sharded {
		t.Helper()
		s, err := NewSharded(ShardedConfig{
			Shards: 4, Partition: PartitionRandom, Padded: padded,
			Config: Config{Blocks: blocks, BlockSize: blockSize,
				Rand: rand.New(rand.NewSource(6))},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for _, padded := range []bool{false, true} {
		t.Run(fmt.Sprintf("padded=%v", padded), func(t *testing.T) {
			s := newStore(padded)
			defer s.Close()

			// A batch writing one address twice ends with the later value.
			v1, v2 := make([]byte, blockSize), make([]byte, blockSize)
			v1[0], v2[0] = 1, 2
			if err := s.WriteBatch([]uint64{9, 9}, [][]byte{v1, v2}); err != nil {
				t.Fatal(err)
			}
			d, err := s.Read(9)
			if err != nil {
				t.Fatal(err)
			}
			if d[0] != 2 {
				t.Errorf("duplicate-address batch: final value %d, want 2", d[0])
			}

			// Duplicate reads return independently mutable copies.
			got, err := s.ReadBatch([]uint64{9, 9, 9})
			if err != nil {
				t.Fatal(err)
			}
			got[0][0] = 0xFF
			if got[1][0] != 2 || got[2][0] != 2 {
				t.Error("duplicate read results share backing storage")
			}

			// Update is one logical read-modify-write.
			if err := s.Update(9, func(d []byte) { d[0]++ }); err != nil {
				t.Fatal(err)
			}
			if d, err := s.Read(9); err != nil || d[0] != 3 {
				t.Errorf("after update: (%v, %v), want value 3", d, err)
			}

			// Validation matches the fixed partitions.
			if _, err := s.Read(blocks); err == nil {
				t.Error("out-of-range read accepted")
			}
			if _, err := s.ReadBatch([]uint64{blocks}); err == nil {
				t.Error("out-of-range batch accepted")
			}

			// Close drains; later operations fail with ErrClosed.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Read(1); err == nil {
				t.Error("read after close accepted")
			}
			if err := s.Write(1, v1); err == nil {
				t.Error("write after close accepted")
			}
			if _, err := s.ReadBatch([]uint64{1, 2}); err == nil {
				t.Error("batch after close accepted")
			}
		})
	}

	// Metadata-only stores reject Update like a single ORAM does.
	s, err := NewSharded(ShardedConfig{
		Shards: 2, Partition: PartitionRandom,
		Config: Config{Blocks: 16, Rand: rand.New(rand.NewSource(6))},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Update(3, func([]byte) {}); err == nil {
		t.Error("metadata-only Update accepted under PartitionRandom")
	}
}

// TestRandomPartitionConcurrentClients exercises the router's striped
// locking under the race detector: concurrent clients on overlapping
// addresses must serialize per address and keep values consistent.
func TestRandomPartitionConcurrentClients(t *testing.T) {
	const shards = 4
	const clients = 8
	const perClient = 32
	const blockSize = 16
	s, err := NewSharded(ShardedConfig{
		Shards:    shards,
		Partition: PartitionRandom,
		Config:    Config{Blocks: clients * perClient, BlockSize: blockSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	value := func(addr uint64, round int) []byte {
		d := make([]byte, blockSize)
		binary.LittleEndian.PutUint64(d, addr)
		binary.LittleEndian.PutUint64(d[8:], uint64(round))
		return d
	}
	done := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			base := uint64(c * perClient)
			for round := 0; round < 2; round++ {
				for i := uint64(0); i < perClient; i++ {
					if err := s.Write(base+i, value(base+i, round)); err != nil {
						done <- err
						return
					}
				}
				for i := uint64(0); i < perClient; i++ {
					d, err := s.Read(base + i)
					if err != nil {
						done <- err
						return
					}
					if !bytes.Equal(d, value(base+i, round)) {
						done <- fmt.Errorf("client %d round %d: read(%d) = %x", c, round, base+i, d)
						return
					}
				}
			}
			done <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
